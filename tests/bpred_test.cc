/**
 * @file
 * Unit tests for the branch predictors: learning behaviour, speculative
 * history update/repair, component interplay in the McFarling combiner,
 * and per-branch histories in SAg.
 */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "bpred/gselect.hh"
#include "bpred/gshare.hh"
#include "bpred/mcfarling.hh"
#include "bpred/pas.hh"
#include "bpred/sag.hh"

namespace confsim
{
namespace
{

constexpr Addr PC_A = 0x1000;
constexpr Addr PC_B = 0x2004;

/** Train a predictor with one outcome at one PC, immediate update. */
void
train(BranchPredictor &pred, Addr pc, bool taken, int times)
{
    for (int i = 0; i < times; ++i) {
        const BpInfo info = pred.predict(pc);
        pred.update(pc, taken, info);
    }
}

// ------------------------------------------------------------------ bimodal

TEST(BimodalTest, LearnsBias)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 4);
    EXPECT_TRUE(pred.predict(PC_A).predTaken);
    train(pred, PC_A, false, 4);
    EXPECT_FALSE(pred.predict(PC_A).predTaken);
}

TEST(BimodalTest, SitesAreIndependent)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 4);
    train(pred, PC_B, false, 4);
    EXPECT_TRUE(pred.predict(PC_A).predTaken);
    EXPECT_FALSE(pred.predict(PC_B).predTaken);
}

TEST(BimodalTest, ExposesCounterState)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 4);
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.counterValue, info.counterMax);
    EXPECT_EQ(info.counterMax, 3u);
}

TEST(BimodalTest, AliasesAtTableSize)
{
    BimodalPredictor pred({16, 2});
    const Addr alias = PC_A + 16 * 4; // same index mod 16 entries
    train(pred, PC_A, true, 4);
    EXPECT_TRUE(pred.predict(alias).predTaken); // shared counter
}

TEST(BimodalTest, ResetRestoresNeutral)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 8);
    pred.reset();
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.counterValue, 2u); // weakly taken power-on state
}

TEST(BimodalDeathTest, NonPowerOfTwoFatal)
{
    BimodalConfig cfg;
    cfg.tableEntries = 1000;
    EXPECT_EXIT(BimodalPredictor pred(cfg),
                ::testing::ExitedWithCode(1), "power of two");
}

// ------------------------------------------------------------------- gshare

TEST(GshareTest, LearnsAlternatingPatternViaHistory)
{
    // A strictly alternating branch is unpredictable for bimodal but
    // trivial for gshare once the history distinguishes the phases.
    GsharePredictor pred;
    bool outcome = false;
    int correct_late = 0;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        const BpInfo info = pred.predict(PC_A);
        if (i >= 100 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 98);
}

TEST(GshareTest, SpeculativeHistoryShiftsPrediction)
{
    GsharePredictor pred({16, 4, 2, true});
    const std::uint64_t before = pred.history();
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(pred.history(),
              ((before << 1) | (info.predTaken ? 1 : 0)) & 0xf);
}

TEST(GshareTest, MispredictionRepairsHistory)
{
    GsharePredictor pred({16, 4, 2, true});
    const BpInfo info = pred.predict(PC_A);
    // Pollute with younger speculative bits (wrong-path predictions).
    pred.predict(PC_A);
    pred.predict(PC_A);
    const bool actual = !info.predTaken; // mispredicted
    pred.update(PC_A, actual, info);
    EXPECT_EQ(pred.history(),
              ((info.globalHistory << 1) | (actual ? 1 : 0)) & 0xf);
}

TEST(GshareTest, CorrectPredictionKeepsSpeculativeBits)
{
    GsharePredictor pred({16, 4, 2, true});
    const BpInfo info = pred.predict(PC_A);
    const std::uint64_t after_first = pred.history();
    pred.update(PC_A, info.predTaken, info); // correct
    EXPECT_EQ(pred.history(), after_first);
}

TEST(GshareTest, NonSpeculativeModeUpdatesAtResolve)
{
    GsharePredictor pred({16, 4, 2, false});
    const std::uint64_t before = pred.history();
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(pred.history(), before); // untouched at predict
    pred.update(PC_A, true, info);
    EXPECT_EQ(pred.history(), ((before << 1) | 1) & 0xf);
}

TEST(GshareTest, InfoCarriesHistorySnapshot)
{
    GsharePredictor pred;
    pred.predict(PC_A);
    const std::uint64_t hist = pred.history();
    const BpInfo info = pred.predict(PC_B);
    EXPECT_EQ(info.globalHistory, hist);
    EXPECT_EQ(info.globalHistoryBits, 12u);
}

TEST(GshareDeathTest, NonPowerOfTwoFatal)
{
    GshareConfig cfg;
    cfg.tableEntries = 100;
    EXPECT_EXIT(GsharePredictor pred(cfg),
                ::testing::ExitedWithCode(1), "power of two");
}

// ---------------------------------------------------------------- McFarling

TEST(McFarlingTest, LearnsBiasedBranch)
{
    McFarlingPredictor pred;
    train(pred, PC_A, true, 8);
    EXPECT_TRUE(pred.predict(PC_A).predTaken);
}

TEST(McFarlingTest, ExposesComponentState)
{
    McFarlingPredictor pred;
    train(pred, PC_A, true, 8);
    const BpInfo info = pred.predict(PC_A);
    EXPECT_TRUE(info.hasComponents);
    EXPECT_TRUE(info.bimodalStrong);
}

TEST(McFarlingTest, MetaPrefersBetterComponent)
{
    // An alternating branch: gshare learns it, bimodal cannot. After
    // training, the meta predictor should choose gshare.
    McFarlingPredictor pred;
    bool outcome = false;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        const BpInfo info = pred.predict(PC_A);
        pred.update(PC_A, outcome, info);
    }
    const BpInfo info = pred.predict(PC_A);
    EXPECT_TRUE(info.metaChoseGshare);
}

TEST(McFarlingTest, BeatsComponentsOnMixedWorkload)
{
    // Two branches: one alternating (needs gshare), one biased with
    // rare flips (bimodal is fine). The combiner should predict both
    // well once warmed up.
    McFarlingPredictor pred;
    bool alt = false;
    int correct = 0, total = 0;
    for (int i = 0; i < 600; ++i) {
        alt = !alt;
        {
            const BpInfo info = pred.predict(PC_A);
            if (i >= 300) {
                ++total;
                correct += info.predTaken == alt;
            }
            pred.update(PC_A, alt, info);
        }
        {
            const bool outcome = true;
            const BpInfo info = pred.predict(PC_B);
            if (i >= 300) {
                ++total;
                correct += info.predTaken == outcome;
            }
            pred.update(PC_B, outcome, info);
        }
    }
    EXPECT_GE(static_cast<double>(correct) / total, 0.95);
}

TEST(McFarlingTest, MispredictionRepairsHistory)
{
    McFarlingPredictor pred;
    const BpInfo info = pred.predict(PC_A);
    pred.predict(PC_A); // speculative pollution
    const bool actual = !info.predTaken;
    pred.update(PC_A, actual, info);
    EXPECT_EQ(pred.history(),
              ((info.globalHistory << 1) | (actual ? 1 : 0)) & 0xfff);
}

TEST(McFarlingTest, ResetClearsState)
{
    McFarlingPredictor pred;
    train(pred, PC_A, true, 20);
    pred.reset();
    EXPECT_EQ(pred.history(), 0u);
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.counterValue, 2u);
}

// ---------------------------------------------------------------------- SAg

TEST(SAgTest, LearnsPeriodicPerBranchPattern)
{
    // Period-3 pattern T T N: local history should make this exactly
    // predictable after warmup.
    SAgPredictor pred;
    const bool pattern[3] = {true, true, false};
    int correct_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool outcome = pattern[i % 3];
        const BpInfo info = pred.predict(PC_A);
        if (i >= 300 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 295);
}

TEST(SAgTest, ExposesLocalHistory)
{
    SAgPredictor pred;
    for (int i = 0; i < 5; ++i) {
        const BpInfo info = pred.predict(PC_A);
        pred.update(PC_A, true, info);
    }
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.localHistory, 0b11111u);
    EXPECT_EQ(info.localHistoryBits, 13u);
}

TEST(SAgTest, HistoriesArePerBranch)
{
    SAgPredictor pred;
    for (int i = 0; i < 4; ++i) {
        const BpInfo ia = pred.predict(PC_A);
        pred.update(PC_A, true, ia);
        const BpInfo ib = pred.predict(PC_B);
        pred.update(PC_B, false, ib);
    }
    EXPECT_EQ(pred.predict(PC_A).localHistory, 0b1111u);
    EXPECT_EQ(pred.predict(PC_B).localHistory, 0u);
}

TEST(SAgTest, PredictDoesNotTouchHistory)
{
    SAgPredictor pred;
    const BpInfo a = pred.predict(PC_A);
    const BpInfo b = pred.predict(PC_A);
    EXPECT_EQ(a.localHistory, b.localHistory);
}

TEST(SAgDeathTest, NonPowerOfTwoFatal)
{
    SAgConfig cfg;
    cfg.phtEntries = 1000;
    EXPECT_EXIT(SAgPredictor pred(cfg), ::testing::ExitedWithCode(1),
                "powers of two");
}

// ---------------------------------------------------------------------- PAs

TEST(PAsTest, LearnsPeriodicPerBranchPattern)
{
    PAsPredictor pred;
    const bool pattern[3] = {true, true, false};
    int correct_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool outcome = pattern[i % 3];
        const BpInfo info = pred.predict(PC_A);
        if (i >= 300 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 295);
}

TEST(PAsTest, TagsPreventHistoryAliasing)
{
    // Two branches that would share one tagless SAg history slot keep
    // distinct tagged histories in PAs.
    PAsConfig cfg;
    cfg.historyEntries = 8;
    cfg.ways = 2; // 4 sets; PC_A and PC_A + 16 map to the same set
    PAsPredictor pred(cfg);
    const Addr same_set = PC_A + 4 * 4;
    for (int i = 0; i < 6; ++i) {
        const BpInfo ia = pred.predict(PC_A);
        pred.update(PC_A, true, ia);
        const BpInfo ib = pred.predict(same_set);
        pred.update(same_set, false, ib);
    }
    EXPECT_EQ(pred.predict(PC_A).localHistory, 0b111111u);
    EXPECT_EQ(pred.predict(same_set).localHistory, 0u);
}

TEST(PAsTest, CapacityEvictionForgetsHistory)
{
    PAsConfig cfg;
    cfg.historyEntries = 2;
    cfg.ways = 2; // one set of two entries
    PAsPredictor pred(cfg);
    train(pred, PC_A, true, 4);
    EXPECT_TRUE(pred.tracks(PC_A));
    // Two more branches in the same set evict the LRU entry (PC_A).
    train(pred, PC_A + 4, true, 1);
    train(pred, PC_A + 8, true, 1);
    EXPECT_FALSE(pred.tracks(PC_A));
    // An untracked branch predicts from the empty history.
    EXPECT_EQ(pred.predict(PC_A).localHistory, 0u);
}

TEST(PAsTest, ExposesLocalHistoryForPatternEstimator)
{
    PAsPredictor pred;
    for (int i = 0; i < 5; ++i) {
        const BpInfo info = pred.predict(PC_A);
        pred.update(PC_A, true, info);
    }
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.localHistory, 0b11111u);
    EXPECT_EQ(info.localHistoryBits, 13u);
}

TEST(PAsDeathTest, BadGeometryFatal)
{
    PAsConfig cfg;
    cfg.ways = 0;
    EXPECT_EXIT(PAsPredictor pred(cfg), ::testing::ExitedWithCode(1),
                "associativity");
    PAsConfig cfg2;
    cfg2.phtEntries = 1000;
    EXPECT_EXIT(PAsPredictor pred2(cfg2),
                ::testing::ExitedWithCode(1), "power");
}

// ------------------------------------------------------------------ gselect

TEST(GselectTest, LearnsAlternatingPattern)
{
    GselectPredictor pred;
    bool outcome = false;
    int correct_late = 0;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        const BpInfo info = pred.predict(PC_A);
        if (i >= 100 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 98);
}

TEST(GselectTest, ConcatenationSeparatesAddresses)
{
    // Unlike gshare's xor, gselect dedicates address bits: two
    // branches with different low PC bits can never collide.
    GselectConfig cfg;
    cfg.addrBits = 4;
    cfg.historyBits = 2;
    GselectPredictor pred(cfg);
    train(pred, PC_A, true, 8);
    // Different address slot: untouched neutral counter.
    const BpInfo info = pred.predict(PC_A + 4);
    EXPECT_EQ(info.counterValue, 2u);
}

TEST(GselectTest, SpeculativeHistoryRepair)
{
    GselectPredictor pred;
    const BpInfo info = pred.predict(PC_A);
    pred.predict(PC_A); // speculative pollution
    const bool actual = !info.predTaken;
    pred.update(PC_A, actual, info);
    EXPECT_EQ(pred.history(),
              ((info.globalHistory << 1) | (actual ? 1 : 0))
                  & lowBitMask(6));
}

TEST(GselectTest, GAgModeIsHistoryOnly)
{
    GselectConfig cfg;
    cfg.addrBits = 0;
    cfg.historyBits = 8;
    GselectPredictor pred(cfg);
    EXPECT_EQ(pred.name(), "gag");
    // All addresses share state when only history indexes the table.
    train(pred, PC_A, true, 8);
    const BpInfo a = pred.predict(PC_A);
    pred.update(PC_A, true, a);
    // Reset history to the trained pattern and probe another address.
    GselectPredictor pred2(cfg);
    train(pred2, PC_A, true, 8);
    train(pred2, PC_B, true, 1);
    EXPECT_TRUE(pred2.predict(PC_B).predTaken);
}

TEST(GselectDeathTest, BadIndexWidthFatal)
{
    GselectConfig cfg;
    cfg.addrBits = 0;
    cfg.historyBits = 0;
    EXPECT_EXIT(GselectPredictor pred(cfg),
                ::testing::ExitedWithCode(1), "index width");
    GselectConfig cfg2;
    cfg2.addrBits = 20;
    cfg2.historyBits = 20;
    EXPECT_EXIT(GselectPredictor pred2(cfg2),
                ::testing::ExitedWithCode(1), "index width");
}

// ------------------------------------------------------------------ factory

TEST(FactoryTest, MakesEveryKind)
{
    for (auto kind :
         {PredictorKind::Bimodal, PredictorKind::Gshare,
          PredictorKind::McFarling, PredictorKind::SAg,
          PredictorKind::Gselect, PredictorKind::GAg,
          PredictorKind::PAs}) {
        auto pred = makePredictor(kind);
        ASSERT_NE(pred, nullptr);
        EXPECT_EQ(pred->name(), predictorKindName(kind));
        // Must be immediately usable.
        const BpInfo info = pred->predict(PC_A);
        pred->update(PC_A, info.predTaken, info);
    }
}

} // anonymous namespace
} // namespace confsim
