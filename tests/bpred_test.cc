/**
 * @file
 * Unit tests for the branch predictors: learning behaviour, speculative
 * history update/repair, component interplay in the McFarling combiner,
 * and per-branch histories in SAg.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "bpred/bimodal.hh"
#include "bpred/estimator_input.hh"
#include "bpred/gselect.hh"
#include "bpred/gshare.hh"
#include "bpred/mcfarling.hh"
#include "bpred/pas.hh"
#include "bpred/perceptron.hh"
#include "bpred/sag.hh"
#include "bpred/tage.hh"

namespace confsim
{
namespace
{

constexpr Addr PC_A = 0x1000;
constexpr Addr PC_B = 0x2004;

/** Train a predictor with one outcome at one PC, immediate update. */
void
train(BranchPredictor &pred, Addr pc, bool taken, int times)
{
    for (int i = 0; i < times; ++i) {
        const BpInfo info = pred.predict(pc);
        pred.update(pc, taken, info);
    }
}

// ------------------------------------------------------------------ bimodal

TEST(BimodalTest, LearnsBias)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 4);
    EXPECT_TRUE(pred.predict(PC_A).predTaken);
    train(pred, PC_A, false, 4);
    EXPECT_FALSE(pred.predict(PC_A).predTaken);
}

TEST(BimodalTest, SitesAreIndependent)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 4);
    train(pred, PC_B, false, 4);
    EXPECT_TRUE(pred.predict(PC_A).predTaken);
    EXPECT_FALSE(pred.predict(PC_B).predTaken);
}

TEST(BimodalTest, ExposesCounterState)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 4);
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.counterValue, info.counterMax);
    EXPECT_EQ(info.counterMax, 3u);
}

TEST(BimodalTest, AliasesAtTableSize)
{
    BimodalPredictor pred({16, 2});
    const Addr alias = PC_A + 16 * 4; // same index mod 16 entries
    train(pred, PC_A, true, 4);
    EXPECT_TRUE(pred.predict(alias).predTaken); // shared counter
}

TEST(BimodalTest, ResetRestoresNeutral)
{
    BimodalPredictor pred;
    train(pred, PC_A, true, 8);
    pred.reset();
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.counterValue, 2u); // weakly taken power-on state
}

TEST(BimodalDeathTest, NonPowerOfTwoFatal)
{
    BimodalConfig cfg;
    cfg.tableEntries = 1000;
    EXPECT_EXIT(BimodalPredictor pred(cfg),
                ::testing::ExitedWithCode(1), "power of two");
}

// ------------------------------------------------------------------- gshare

TEST(GshareTest, LearnsAlternatingPatternViaHistory)
{
    // A strictly alternating branch is unpredictable for bimodal but
    // trivial for gshare once the history distinguishes the phases.
    GsharePredictor pred;
    bool outcome = false;
    int correct_late = 0;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        const BpInfo info = pred.predict(PC_A);
        if (i >= 100 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 98);
}

TEST(GshareTest, SpeculativeHistoryShiftsPrediction)
{
    GsharePredictor pred({16, 4, 2, true});
    const std::uint64_t before = pred.history();
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(pred.history(),
              ((before << 1) | (info.predTaken ? 1 : 0)) & 0xf);
}

TEST(GshareTest, MispredictionRepairsHistory)
{
    GsharePredictor pred({16, 4, 2, true});
    const BpInfo info = pred.predict(PC_A);
    // Pollute with younger speculative bits (wrong-path predictions).
    pred.predict(PC_A);
    pred.predict(PC_A);
    const bool actual = !info.predTaken; // mispredicted
    pred.update(PC_A, actual, info);
    EXPECT_EQ(pred.history(),
              ((info.globalHistory << 1) | (actual ? 1 : 0)) & 0xf);
}

TEST(GshareTest, CorrectPredictionKeepsSpeculativeBits)
{
    GsharePredictor pred({16, 4, 2, true});
    const BpInfo info = pred.predict(PC_A);
    const std::uint64_t after_first = pred.history();
    pred.update(PC_A, info.predTaken, info); // correct
    EXPECT_EQ(pred.history(), after_first);
}

TEST(GshareTest, NonSpeculativeModeUpdatesAtResolve)
{
    GsharePredictor pred({16, 4, 2, false});
    const std::uint64_t before = pred.history();
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(pred.history(), before); // untouched at predict
    pred.update(PC_A, true, info);
    EXPECT_EQ(pred.history(), ((before << 1) | 1) & 0xf);
}

TEST(GshareTest, InfoCarriesHistorySnapshot)
{
    GsharePredictor pred;
    pred.predict(PC_A);
    const std::uint64_t hist = pred.history();
    const BpInfo info = pred.predict(PC_B);
    EXPECT_EQ(info.globalHistory, hist);
    EXPECT_EQ(info.globalHistoryBits, 12u);
}

TEST(GshareDeathTest, NonPowerOfTwoFatal)
{
    GshareConfig cfg;
    cfg.tableEntries = 100;
    EXPECT_EXIT(GsharePredictor pred(cfg),
                ::testing::ExitedWithCode(1), "power of two");
}

// ---------------------------------------------------------------- McFarling

TEST(McFarlingTest, LearnsBiasedBranch)
{
    McFarlingPredictor pred;
    train(pred, PC_A, true, 8);
    EXPECT_TRUE(pred.predict(PC_A).predTaken);
}

TEST(McFarlingTest, ExposesComponentState)
{
    McFarlingPredictor pred;
    train(pred, PC_A, true, 8);
    const BpInfo info = pred.predict(PC_A);
    EXPECT_TRUE(info.hasComponents);
    EXPECT_TRUE(info.bimodalStrong);
}

TEST(McFarlingTest, MetaPrefersBetterComponent)
{
    // An alternating branch: gshare learns it, bimodal cannot. After
    // training, the meta predictor should choose gshare.
    McFarlingPredictor pred;
    bool outcome = false;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        const BpInfo info = pred.predict(PC_A);
        pred.update(PC_A, outcome, info);
    }
    const BpInfo info = pred.predict(PC_A);
    EXPECT_TRUE(info.metaChoseGshare);
}

TEST(McFarlingTest, BeatsComponentsOnMixedWorkload)
{
    // Two branches: one alternating (needs gshare), one biased with
    // rare flips (bimodal is fine). The combiner should predict both
    // well once warmed up.
    McFarlingPredictor pred;
    bool alt = false;
    int correct = 0, total = 0;
    for (int i = 0; i < 600; ++i) {
        alt = !alt;
        {
            const BpInfo info = pred.predict(PC_A);
            if (i >= 300) {
                ++total;
                correct += info.predTaken == alt;
            }
            pred.update(PC_A, alt, info);
        }
        {
            const bool outcome = true;
            const BpInfo info = pred.predict(PC_B);
            if (i >= 300) {
                ++total;
                correct += info.predTaken == outcome;
            }
            pred.update(PC_B, outcome, info);
        }
    }
    EXPECT_GE(static_cast<double>(correct) / total, 0.95);
}

TEST(McFarlingTest, MispredictionRepairsHistory)
{
    McFarlingPredictor pred;
    const BpInfo info = pred.predict(PC_A);
    pred.predict(PC_A); // speculative pollution
    const bool actual = !info.predTaken;
    pred.update(PC_A, actual, info);
    EXPECT_EQ(pred.history(),
              ((info.globalHistory << 1) | (actual ? 1 : 0)) & 0xfff);
}

TEST(McFarlingTest, ResetClearsState)
{
    McFarlingPredictor pred;
    train(pred, PC_A, true, 20);
    pred.reset();
    EXPECT_EQ(pred.history(), 0u);
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.counterValue, 2u);
}

// ---------------------------------------------------------------------- SAg

TEST(SAgTest, LearnsPeriodicPerBranchPattern)
{
    // Period-3 pattern T T N: local history should make this exactly
    // predictable after warmup.
    SAgPredictor pred;
    const bool pattern[3] = {true, true, false};
    int correct_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool outcome = pattern[i % 3];
        const BpInfo info = pred.predict(PC_A);
        if (i >= 300 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 295);
}

TEST(SAgTest, ExposesLocalHistory)
{
    SAgPredictor pred;
    for (int i = 0; i < 5; ++i) {
        const BpInfo info = pred.predict(PC_A);
        pred.update(PC_A, true, info);
    }
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.localHistory, 0b11111u);
    EXPECT_EQ(info.localHistoryBits, 13u);
}

TEST(SAgTest, HistoriesArePerBranch)
{
    SAgPredictor pred;
    for (int i = 0; i < 4; ++i) {
        const BpInfo ia = pred.predict(PC_A);
        pred.update(PC_A, true, ia);
        const BpInfo ib = pred.predict(PC_B);
        pred.update(PC_B, false, ib);
    }
    EXPECT_EQ(pred.predict(PC_A).localHistory, 0b1111u);
    EXPECT_EQ(pred.predict(PC_B).localHistory, 0u);
}

TEST(SAgTest, PredictDoesNotTouchHistory)
{
    SAgPredictor pred;
    const BpInfo a = pred.predict(PC_A);
    const BpInfo b = pred.predict(PC_A);
    EXPECT_EQ(a.localHistory, b.localHistory);
}

TEST(SAgDeathTest, NonPowerOfTwoFatal)
{
    SAgConfig cfg;
    cfg.phtEntries = 1000;
    EXPECT_EXIT(SAgPredictor pred(cfg), ::testing::ExitedWithCode(1),
                "powers of two");
}

// ---------------------------------------------------------------------- PAs

TEST(PAsTest, LearnsPeriodicPerBranchPattern)
{
    PAsPredictor pred;
    const bool pattern[3] = {true, true, false};
    int correct_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool outcome = pattern[i % 3];
        const BpInfo info = pred.predict(PC_A);
        if (i >= 300 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 295);
}

TEST(PAsTest, TagsPreventHistoryAliasing)
{
    // Two branches that would share one tagless SAg history slot keep
    // distinct tagged histories in PAs.
    PAsConfig cfg;
    cfg.historyEntries = 8;
    cfg.ways = 2; // 4 sets; PC_A and PC_A + 16 map to the same set
    PAsPredictor pred(cfg);
    const Addr same_set = PC_A + 4 * 4;
    for (int i = 0; i < 6; ++i) {
        const BpInfo ia = pred.predict(PC_A);
        pred.update(PC_A, true, ia);
        const BpInfo ib = pred.predict(same_set);
        pred.update(same_set, false, ib);
    }
    EXPECT_EQ(pred.predict(PC_A).localHistory, 0b111111u);
    EXPECT_EQ(pred.predict(same_set).localHistory, 0u);
}

TEST(PAsTest, CapacityEvictionForgetsHistory)
{
    PAsConfig cfg;
    cfg.historyEntries = 2;
    cfg.ways = 2; // one set of two entries
    PAsPredictor pred(cfg);
    train(pred, PC_A, true, 4);
    EXPECT_TRUE(pred.tracks(PC_A));
    // Two more branches in the same set evict the LRU entry (PC_A).
    train(pred, PC_A + 4, true, 1);
    train(pred, PC_A + 8, true, 1);
    EXPECT_FALSE(pred.tracks(PC_A));
    // An untracked branch predicts from the empty history.
    EXPECT_EQ(pred.predict(PC_A).localHistory, 0u);
}

TEST(PAsTest, ExposesLocalHistoryForPatternEstimator)
{
    PAsPredictor pred;
    for (int i = 0; i < 5; ++i) {
        const BpInfo info = pred.predict(PC_A);
        pred.update(PC_A, true, info);
    }
    const BpInfo info = pred.predict(PC_A);
    EXPECT_EQ(info.localHistory, 0b11111u);
    EXPECT_EQ(info.localHistoryBits, 13u);
}

TEST(PAsDeathTest, BadGeometryFatal)
{
    PAsConfig cfg;
    cfg.ways = 0;
    EXPECT_EXIT(PAsPredictor pred(cfg), ::testing::ExitedWithCode(1),
                "associativity");
    PAsConfig cfg2;
    cfg2.phtEntries = 1000;
    EXPECT_EXIT(PAsPredictor pred2(cfg2),
                ::testing::ExitedWithCode(1), "power");
}

// ------------------------------------------------------------------ gselect

TEST(GselectTest, LearnsAlternatingPattern)
{
    GselectPredictor pred;
    bool outcome = false;
    int correct_late = 0;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        const BpInfo info = pred.predict(PC_A);
        if (i >= 100 && info.predTaken == outcome)
            ++correct_late;
        pred.update(PC_A, outcome, info);
    }
    EXPECT_GE(correct_late, 98);
}

TEST(GselectTest, ConcatenationSeparatesAddresses)
{
    // Unlike gshare's xor, gselect dedicates address bits: two
    // branches with different low PC bits can never collide.
    GselectConfig cfg;
    cfg.addrBits = 4;
    cfg.historyBits = 2;
    GselectPredictor pred(cfg);
    train(pred, PC_A, true, 8);
    // Different address slot: untouched neutral counter.
    const BpInfo info = pred.predict(PC_A + 4);
    EXPECT_EQ(info.counterValue, 2u);
}

TEST(GselectTest, SpeculativeHistoryRepair)
{
    GselectPredictor pred;
    const BpInfo info = pred.predict(PC_A);
    pred.predict(PC_A); // speculative pollution
    const bool actual = !info.predTaken;
    pred.update(PC_A, actual, info);
    EXPECT_EQ(pred.history(),
              ((info.globalHistory << 1) | (actual ? 1 : 0))
                  & lowBitMask(6));
}

TEST(GselectTest, GAgModeIsHistoryOnly)
{
    GselectConfig cfg;
    cfg.addrBits = 0;
    cfg.historyBits = 8;
    GselectPredictor pred(cfg);
    EXPECT_EQ(pred.name(), "gag");
    // All addresses share state when only history indexes the table.
    train(pred, PC_A, true, 8);
    const BpInfo a = pred.predict(PC_A);
    pred.update(PC_A, true, a);
    // Reset history to the trained pattern and probe another address.
    GselectPredictor pred2(cfg);
    train(pred2, PC_A, true, 8);
    train(pred2, PC_B, true, 1);
    EXPECT_TRUE(pred2.predict(PC_B).predTaken);
}

TEST(GselectDeathTest, BadIndexWidthFatal)
{
    GselectConfig cfg;
    cfg.addrBits = 0;
    cfg.historyBits = 0;
    EXPECT_EXIT(GselectPredictor pred(cfg),
                ::testing::ExitedWithCode(1), "index width");
    GselectConfig cfg2;
    cfg2.addrBits = 20;
    cfg2.historyBits = 20;
    EXPECT_EXIT(GselectPredictor pred2(cfg2),
                ::testing::ExitedWithCode(1), "index width");
}

// --------------------------------------------------------------- perceptron

TEST(PerceptronTest, LearnsBiasedBranch)
{
    PerceptronPredictor pred;
    train(pred, PC_A, true, 64);
    const BpInfo info = pred.predict(PC_A);
    EXPECT_TRUE(info.predTaken);
    // A heavily-trained branch sits above the training threshold.
    EXPECT_GT(info.nativeConf, 32u);
    EXPECT_TRUE(info.hasNativeConf);
    // Pseudo 2-bit counter mapping: taken prediction reads as 2 or 3.
    EXPECT_EQ(info.counterMax, 3u);
    EXPECT_GE(info.counterValue, 2u);
}

TEST(PerceptronTest, NativeConfIsWeightSumMargin)
{
    PerceptronPredictor pred;
    train(pred, PC_A, true, 40);
    const BpInfo info = pred.predict(PC_A);
    const int sum = pred.weightSum(PC_A, info.globalHistory);
    const unsigned margin = static_cast<unsigned>(
            sum < 0 ? -sum : sum);
    EXPECT_EQ(info.nativeConf,
              std::min(margin, PERC_CONF_LEVEL_MAX));
    EXPECT_EQ(info.predTaken, sum >= 0);
}

TEST(PerceptronTest, WeightsSaturateAtWeightMax)
{
    PerceptronConfig cfg;
    cfg.weightBits = 4; // weights clamp to [-8, 7]
    PerceptronPredictor pred(cfg);
    train(pred, PC_A, true, 500);
    // 4 history tables + bias, each contributing at most +7: the sum
    // is bounded no matter how long the branch trains.
    const int cap =
        static_cast<int>(cfg.historyLengths.size() + 1) * 7;
    const int sum = pred.weightSum(PC_A, pred.history());
    EXPECT_GT(sum, 0);
    EXPECT_LE(sum, cap);
}

TEST(PerceptronTest, ThetaGatesTraining)
{
    PerceptronPredictor pred; // theta = 32
    train(pred, PC_A, true, 200);
    const std::uint64_t h = pred.history();
    const int before = pred.weightSum(PC_A, h);
    // Steady state: margin above theta, so a correct prediction must
    // not train any weight.
    ASSERT_GT(before, 32);
    BpInfo info = pred.predict(PC_A);
    pred.update(PC_A, true, info);
    EXPECT_EQ(pred.weightSum(PC_A, h), before);
    // A misprediction always trains, pulling the sum down.
    info = pred.predict(PC_A);
    pred.update(PC_A, false, info);
    EXPECT_LT(pred.weightSum(PC_A, h), before);
}

TEST(PerceptronTest, MispredictionRepairsHistory)
{
    PerceptronPredictor pred;
    train(pred, PC_A, true, 16);
    const BpInfo info = pred.predict(PC_A);
    const bool actual = !info.predTaken;
    pred.update(PC_A, actual, info);
    EXPECT_EQ(pred.history(),
              ((info.globalHistory << 1) | (actual ? 1 : 0))
                  & lowBitMask(63));
}

TEST(PerceptronTest, ExportsMarginInputChannel)
{
    PerceptronPredictor pred;
    const auto plugins = pred.estimatorInputPlugins();
    ASSERT_EQ(plugins.size(), 4u); // 3 classic + the margin channel
    const auto &margin = *plugins.back();
    EXPECT_EQ(margin.channel(), CHANNEL_PERC_MARGIN);
    EXPECT_EQ(margin.width(), InputWidth::U16);
    EXPECT_EQ(margin.levelMax(), PERC_CONF_LEVEL_MAX);
    // The channel reads straight from BpInfo::nativeConf.
    BpInfo info;
    info.hasNativeConf = true;
    info.nativeConf = 321;
    EXPECT_EQ(margin.derive(PC_A, info), 321u);
}

TEST(PerceptronDeathTest, BadGeometryFatal)
{
    PerceptronConfig cfg;
    cfg.tableEntries = 1000; // not a power of two
    EXPECT_EXIT(PerceptronPredictor pred(cfg),
                ::testing::ExitedWithCode(1), "power of two");
    PerceptronConfig cfg2;
    cfg2.historyLengths = {8, 8}; // not ascending
    EXPECT_EXIT(PerceptronPredictor pred2(cfg2),
                ::testing::ExitedWithCode(1), "ascending");
}

// --------------------------------------------------------------------- tage

TEST(TageTest, LearnsAlternatingPatternViaTaggedTables)
{
    TagePredictor pred;
    int correct_tail = 0;
    for (int i = 0; i < 200; ++i) {
        const bool actual = (i % 2) == 0;
        const BpInfo info = pred.predict(PC_A);
        if (i >= 120 && info.predTaken == actual)
            ++correct_tail;
        pred.update(PC_A, actual, info);
    }
    // Bimodal alone oscillates near 50% on alternation; the tagged
    // tables see the 0101... history context and lock on.
    EXPECT_GE(correct_tail, 70) << "of 80 tail predictions";
}

TEST(TageTest, MispredictionAllocatesTaggedEntry)
{
    TagePredictor pred;
    // PC_B under empty history: tag (pc>>2) & 0x1ff = 1, which no
    // fresh (all-zero) entry matches, so the base provides. Feed a
    // misprediction directly: allocation must land in the first
    // tagged table with the branch's tag and a weak counter. The
    // mispredict is toward not-taken so the history repair keeps the
    // history at 0 and the next lookup sees the same context.
    BpInfo info;
    info.predTaken = true;
    info.globalHistory = 0;
    info.globalHistoryBits = 63;
    pred.update(PC_B, false, info);
    // Row for PC_B, hist 0, table 0: (pc>>2) ^ (pc>>12) = 0x803; the
    // 1024-entry mask keeps 3.
    EXPECT_EQ(pred.entryTag(0, 3), 1u);
    EXPECT_EQ(pred.usefulCounter(0, 3), 0u);
    // The allocated entry now provides a (weak) not-taken prediction.
    const BpInfo after = pred.predict(PC_B);
    EXPECT_FALSE(after.predTaken);
    EXPECT_EQ(after.counterMax, 7u); // tagged 3-bit provider
}

TEST(TageTest, UsefulCountsProviderWinsAndAges)
{
    TageConfig cfg;
    cfg.usefulAgingPeriod = 7;
    TagePredictor pred(cfg);
    // PC_A under empty history tags as 0, which every fresh table
    // matches; the longest table (3) provides with alt = table 2.
    BpInfo info;
    info.predTaken = true;
    info.globalHistory = 0;
    info.globalHistoryBits = 63;
    // Raise the provider's counter to taken (mid = 4) — provider and
    // alt agree (both weak-NT) on the way up, so useful stays 0.
    for (int i = 0; i < 4; ++i)
        pred.update(PC_A, true, info);
    const std::size_t row = 1; // (0x400 ^ 1) & 0x3ff
    EXPECT_EQ(pred.usefulCounter(3, row), 0u);
    // Now the provider says taken while alt still says not-taken:
    // each correct disagreement bumps the useful counter.
    pred.update(PC_A, true, info);
    EXPECT_EQ(pred.usefulCounter(3, row), 1u);
    pred.update(PC_A, true, info);
    EXPECT_EQ(pred.usefulCounter(3, row), 2u);
    // The 7th update trips the aging period: useful is incremented to
    // 3, then every counter halves.
    pred.update(PC_A, true, info);
    EXPECT_EQ(pred.usefulCounter(3, row), 1u);
}

TEST(TageTest, NativeConfPacksDistanceAndUseful)
{
    TagePredictor pred;
    // Fresh predictor, PC_B: base provider in its weak-taken reset
    // state — distance 0, no useful bits.
    BpInfo info = pred.predict(PC_B);
    EXPECT_TRUE(info.hasNativeConf);
    EXPECT_EQ(info.nativeConf, 0u);
    // Saturate the base counter: strong state reads full distance.
    TagePredictor pred2;
    train(pred2, PC_B, true, 8);
    info = pred2.predict(PC_B);
    if (info.counterMax == 3u) { // still base-provided
        EXPECT_EQ(info.nativeConf, 3u << 2);
    }
    EXPECT_LE(info.nativeConf, TAGE_CONF_LEVEL_MAX);
}

TEST(TageTest, ExportsConfInputChannel)
{
    TagePredictor pred;
    const auto plugins = pred.estimatorInputPlugins();
    ASSERT_EQ(plugins.size(), 4u);
    const auto &conf = *plugins.back();
    EXPECT_EQ(conf.channel(), CHANNEL_TAGE_CONF);
    EXPECT_EQ(conf.width(), InputWidth::U16);
    EXPECT_EQ(conf.levelMax(), TAGE_CONF_LEVEL_MAX);
}

TEST(TageDeathTest, BadGeometryFatal)
{
    TageConfig cfg;
    cfg.historyLengths = {24, 11}; // not ascending
    EXPECT_EXIT(TagePredictor pred(cfg),
                ::testing::ExitedWithCode(1), "ascending");
    TageConfig cfg2;
    cfg2.tagBits = 17;
    EXPECT_EXIT(TagePredictor pred2(cfg2),
                ::testing::ExitedWithCode(1), "tag width");
}

// ------------------------------------------------------------------ factory

TEST(FactoryTest, MakesEveryKind)
{
    for (auto kind : allPredictorKinds()) {
        auto pred = makePredictor(kind);
        ASSERT_NE(pred, nullptr);
        EXPECT_EQ(pred->name(), predictorKindName(kind));
        // Must be immediately usable.
        const BpInfo info = pred->predict(PC_A);
        pred->update(PC_A, info.predTaken, info);
    }
}

TEST(FactoryTest, NameListCoversEveryKind)
{
    const std::string &names = predictorKindNameList();
    // The frontier predictors are registered alongside the classics.
    EXPECT_NE(names.find("perceptron"), std::string::npos) << names;
    EXPECT_NE(names.find("tage"), std::string::npos) << names;
    for (PredictorKind kind : allPredictorKinds()) {
        EXPECT_NE(names.find(predictorKindName(kind)),
                  std::string::npos)
            << names;
        PredictorKind parsed;
        EXPECT_TRUE(
                predictorKindFromName(predictorKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    PredictorKind parsed;
    EXPECT_FALSE(predictorKindFromName("nope", parsed));
}

TEST(FactoryTest, EveryPredictorExportsClassicChannels)
{
    for (PredictorKind kind : allPredictorKinds()) {
        const auto plugins =
            makePredictor(kind)->estimatorInputPlugins();
        ASSERT_GE(plugins.size(), 3u) << predictorKindName(kind);
        EXPECT_EQ(plugins[0]->channel(), CHANNEL_SAT_BITS);
        EXPECT_EQ(plugins[1]->channel(), CHANNEL_PATTERN_CONF);
        EXPECT_EQ(plugins[2]->channel(), CHANNEL_JRS_KEY);
    }
}

} // anonymous namespace
} // namespace confsim
