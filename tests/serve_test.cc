/**
 * The confsim serve subsystem, tested without sockets or processes:
 * the LineSplitter framing, the SweepTaskPlan indexing the daemon and
 * workers share, the protocol's rejection of malformed requests (no
 * state change), admission control (dedupe, quotas, bounded queue,
 * priorities), crash-retry bookkeeping and worker-pool degradation,
 * end-to-end byte-identity of a core-driven job against
 * runSweepGrid(), restart recovery from persisted jobs + journals,
 * and the flock-guarded artifact-store writes that make concurrent
 * stores safe across store instances.
 *
 * The daemon's actual fork/exec + poll loop is covered by the
 * serve_integration ctest (tests/serve/run_serve.sh), which SIGKILLs
 * real worker processes and the daemon itself.
 */

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/confsim_error.hh"
#include "common/fault_injection.hh"
#include "common/local_socket.hh"
#include "harness/artifact_store.hh"
#include "harness/experiment_cache.hh"
#include "harness/sweep.hh"
#include "harness/sweep_service.hh"

namespace confsim
{
namespace
{

// ------------------------------------------------------- line splitter

TEST(LineSplitterTest, ReassemblesLinesAcrossChunks)
{
    LineSplitter lines;
    lines.feed("ab");
    EXPECT_FALSE(lines.nextLine().has_value());
    lines.feed("c\nde");
    EXPECT_EQ(lines.nextLine().value_or(""), "abc");
    EXPECT_FALSE(lines.nextLine().has_value());
    EXPECT_EQ(lines.pendingBytes(), 2u);
    lines.feed("f\n\n");
    EXPECT_EQ(lines.nextLine().value_or("x"), "def");
    EXPECT_EQ(lines.nextLine().value_or("x"), "");
    EXPECT_FALSE(lines.nextLine().has_value());
}

TEST(LineSplitterTest, OverflowWithoutNewlineIsSticky)
{
    LineSplitter lines(8);
    lines.feed("123456789"); // 9 bytes, no newline
    EXPECT_TRUE(lines.overflowed());
    EXPECT_FALSE(lines.nextLine().has_value());
    lines.feed("\n"); // too late: the splitter stays dead
    EXPECT_TRUE(lines.overflowed());
    EXPECT_FALSE(lines.nextLine().has_value());
}

TEST(LineSplitterTest, OverlongLineWithNewlineOverflows)
{
    LineSplitter lines(4);
    lines.feed("ok\n123456\n");
    EXPECT_EQ(lines.nextLine().value_or(""), "ok");
    EXPECT_FALSE(lines.nextLine().has_value());
    EXPECT_TRUE(lines.overflowed());
}

TEST(LineSplitterTest, CompactionPreservesTheStream)
{
    LineSplitter lines;
    std::vector<std::string> got;
    for (int i = 0; i < 2000; ++i) {
        lines.feed("line-" + std::to_string(i) + "\n");
        while (auto line = lines.nextLine())
            got.push_back(*line);
    }
    ASSERT_EQ(got.size(), 2000u);
    EXPECT_EQ(got.front(), "line-0");
    EXPECT_EQ(got.back(), "line-1999");
    EXPECT_EQ(lines.pendingBytes(), 0u);
    EXPECT_FALSE(lines.overflowed());
}

// ----------------------------------------------------- sweep task plan

SweepGrid
tinyGrid()
{
    SweepGrid grid;
    grid.workloads = {"compress", "go"};
    grid.thresholds = {4, 15};
    grid.shardSize = 2; // 3 configs -> 2 shards per workload
    grid.estimators = {
        {"jrs-15", "jrs", {}},
        {"satcnt", "satcnt", {}},
        {"distance", "distance", {}},
    };
    return grid;
}

TEST(SweepTaskPlanTest, CoversEveryConfigExactlyOnce)
{
    const SweepGrid grid = tinyGrid();
    const SweepTaskPlan plan = sweepTaskPlan(grid);
    EXPECT_EQ(plan.kinds, 1u);
    EXPECT_EQ(plan.entries, 2u);
    EXPECT_EQ(plan.configs, 3u);
    EXPECT_EQ(plan.shards, 2u);
    EXPECT_EQ(plan.tasks(), 4u);

    // Every (kind, entry) must see each config index exactly once
    // across its shards, in order and without overlap.
    std::vector<std::set<std::size_t>> seen(plan.kinds * plan.entries);
    for (std::size_t t = 0; t < plan.tasks(); ++t) {
        const std::size_t ki = plan.kindIndex(t);
        const std::size_t wi = plan.entryIndex(t);
        ASSERT_LT(ki, plan.kinds);
        ASSERT_LT(wi, plan.entries);
        const std::size_t first = plan.firstConfig(t);
        const std::size_t count = plan.configCount(t);
        ASSERT_GE(count, 1u);
        ASSERT_LE(first + count, plan.configs);
        for (std::size_t c = first; c < first + count; ++c)
            EXPECT_TRUE(seen[ki * plan.entries + wi].insert(c).second)
                << "config " << c << " covered twice by task " << t;
    }
    for (const auto &configs : seen)
        EXPECT_EQ(configs.size(), plan.configs);
}

TEST(SweepTaskPlanTest, MixedPredictorGridsScaleTheTaskSpace)
{
    SweepGrid grid = tinyGrid();
    grid.kinds = {PredictorKind::Bimodal, PredictorKind::Gshare,
                  PredictorKind::McFarling};
    const SweepTaskPlan plan = sweepTaskPlan(grid);
    EXPECT_EQ(plan.kinds, 3u);
    EXPECT_EQ(plan.tasks(), 12u);
    EXPECT_EQ(plan.kindIndex(plan.tasks() - 1), 2u);
}

TEST(SweepTaskPlanTest, PayloadValidationRejectsNonShardDocuments)
{
    std::string err;
    EXPECT_FALSE(sweepTaskPayloadValid(JsonValue::object(), &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(sweepTaskPayloadValid(JsonValue::array(), &err));
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue("not a config result"));
    EXPECT_FALSE(sweepTaskPayloadValid(arr, &err));
}

// ------------------------------------------------ fault-plan extensions

TEST(ServeFaultPlanTest, ParsesKillWorkerAndDropConnection)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultPlan("kill-worker=2,drop-connection=3", plan,
                               &err))
        << err;
    EXPECT_EQ(plan.killWorker, 2u);
    EXPECT_EQ(plan.dropConnection, 3u);

    ScopedFaultPlan armed(plan);
    EXPECT_FALSE(FaultInjector::instance().onWorkerSpawn());
    EXPECT_TRUE(FaultInjector::instance().onWorkerSpawn());
    EXPECT_FALSE(FaultInjector::instance().onWorkerSpawn());
    EXPECT_FALSE(FaultInjector::instance().onClientResponse());
    EXPECT_FALSE(FaultInjector::instance().onClientResponse());
    EXPECT_TRUE(FaultInjector::instance().onClientResponse());
    EXPECT_FALSE(FaultInjector::instance().onClientResponse());
}

TEST(ServeFaultPlanTest, HooksAreInertWhenDisarmed)
{
    EXPECT_FALSE(FaultInjector::instance().onWorkerSpawn());
    EXPECT_FALSE(FaultInjector::instance().onClientResponse());
}

// ------------------------------------------------------------ core fixture

class ServeCoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path()
              / ("confsim-serve-test-" + std::to_string(::getpid())
                 + "-"
                 + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    ServeOptions
    options() const
    {
        ServeOptions o;
        o.artifactDir = dir.string();
        return o;
    }

    static JsonValue
    submitRequest(const SweepGrid &grid,
                  const std::string &client = std::string(),
                  std::optional<std::int64_t> priority = std::nullopt)
    {
        JsonValue req = JsonValue::object();
        req["op"] = JsonValue("submit");
        req["grid"] = sweepGridToJson(grid);
        if (!client.empty())
            req["client"] = JsonValue(client);
        if (priority)
            req["priority"] = JsonValue(*priority);
        return req;
    }

    static std::string
    errorCode(const JsonValue &resp)
    {
        const JsonValue *err = resp.find("error");
        const JsonValue *code =
            err != nullptr ? err->find("code") : nullptr;
        return code != nullptr && code->isString() ? code->asString()
                                                   : std::string();
    }

    static bool
    isOk(const JsonValue &resp)
    {
        const JsonValue *ok = resp.find("ok");
        return ok != nullptr && ok->isBool() && ok->asBool();
    }

    static std::string
    statusDump(ServeCore &core)
    {
        return core.handleRequest(R"({"op":"status"})").dump(0);
    }

    /** Run every pending shard in-process, exactly as a worker would,
     *  feeding the results back into the core. */
    static void
    drainAllTasks(ServeCore &core)
    {
        while (auto ref = core.nextReadyTask()) {
            const SweepGrid *grid = core.jobGrid(ref->job);
            ASSERT_NE(grid, nullptr);
            core.taskCompleted(*ref,
                               sweepTaskPayloadJson(*grid, ref->task));
        }
    }

    std::filesystem::path dir;
};

// -------------------------------------------- protocol robustness (fuzz)

TEST_F(ServeCoreTest, MalformedRequestsAreRejectedWithoutStateChange)
{
    ServeCore core(options());
    const std::string before = statusDump(core);

    const std::vector<std::string> malformed = {
        "",
        "   ",
        "not json at all",
        "{",                       // truncated object
        R"({"op":"subm)",          // truncated mid-string
        "[1,2,3]",                 // not an object
        "42",
        "\"submit\"",
        "{}",                      // missing op
        R"({"op":7})",             // op with wrong type
        R"({"op":null})",
        R"({"op":"frobnicate"})",  // unknown op
        R"({"op":"submit"})",      // missing grid
        R"({"op":"submit","grid":5})",
        R"({"op":"submit","grid":{"predictor":"nope"}})",
        R"({"op":"submit","grid":{},"boost":true})", // unknown key
        R"({"op":"ping","extra":1})",
        R"({"op":"status","job":17})",   // job with wrong type
        R"({"op":"result"})",            // missing job
        R"({"op":"result","job":"j999"})",
        R"({"op":"cancel","job":"j999"})",
        R"({"op":"cancel"})",
        R"({"op":"submit","grid":{"estimators":[]}})",
        std::string("{\"op\":\"ping\"}\x00trailing", 22),
    };
    for (const std::string &line : malformed) {
        const JsonValue resp = core.handleRequest(line);
        EXPECT_FALSE(isOk(resp)) << "accepted: " << line;
        EXPECT_FALSE(errorCode(resp).empty()) << "no code: " << line;
        const JsonValue *err = resp.find("error");
        ASSERT_NE(err, nullptr) << line;
        EXPECT_NE(err->find("message"), nullptr) << line;
    }

    EXPECT_EQ(statusDump(core), before)
        << "a rejected request mutated daemon state";
    EXPECT_FALSE(core.shutdownRequested());
    EXPECT_FALSE(core.hasPendingWork());
}

TEST_F(ServeCoreTest, PingAndShutdownRoundTrip)
{
    ServeCore core(options());
    EXPECT_TRUE(isOk(core.handleRequest(R"({"op":"ping"})")));
    EXPECT_FALSE(core.shutdownRequested());
    EXPECT_TRUE(isOk(core.handleRequest(R"({"op":"shutdown"})")));
    EXPECT_TRUE(core.shutdownRequested());
}

// ---------------------------------------------------- admission control

TEST_F(ServeCoreTest, IdenticalGridsDedupeOntoOneJob)
{
    ServeCore core(options());
    const JsonValue first =
        core.handleRequest(submitRequest(tinyGrid()).dump(0));
    ASSERT_TRUE(isOk(first));
    EXPECT_FALSE(first.find("deduped")->asBool());

    const JsonValue second =
        core.handleRequest(submitRequest(tinyGrid()).dump(0));
    ASSERT_TRUE(isOk(second));
    EXPECT_TRUE(second.find("deduped")->asBool());
    EXPECT_EQ(first.find("job")->asString(),
              second.find("job")->asString());
}

TEST_F(ServeCoreTest, PerClientQuotaIsEnforced)
{
    ServeOptions o = options();
    o.maxClientJobs = 1;
    ServeCore core(o);
    ASSERT_TRUE(isOk(core.handleRequest(
            submitRequest(tinyGrid(), "alice").dump(0))));

    SweepGrid other = tinyGrid();
    other.thresholds = {8}; // different grid key
    const JsonValue rejected = core.handleRequest(
            submitRequest(other, "alice").dump(0));
    EXPECT_FALSE(isOk(rejected));
    EXPECT_EQ(errorCode(rejected), "quota-exceeded");

    // Another client is unaffected by alice's quota.
    EXPECT_TRUE(isOk(core.handleRequest(
            submitRequest(other, "bob").dump(0))));
}

TEST_F(ServeCoreTest, FullQueueRejectsWithReason)
{
    ServeOptions o = options();
    o.maxQueuedJobs = 1;
    ServeCore core(o);
    ASSERT_TRUE(isOk(core.handleRequest(
            submitRequest(tinyGrid(), "alice").dump(0))));

    SweepGrid other = tinyGrid();
    other.thresholds = {8};
    const JsonValue rejected = core.handleRequest(
            submitRequest(other, "bob").dump(0));
    EXPECT_FALSE(isOk(rejected));
    EXPECT_EQ(errorCode(rejected), "admission-rejected");
}

TEST_F(ServeCoreTest, HigherPriorityJobsDispatchFirst)
{
    ServeCore core(options());
    const JsonValue low = core.handleRequest(
            submitRequest(tinyGrid(), "c", 0).dump(0));
    SweepGrid urgent = tinyGrid();
    urgent.thresholds = {8};
    const JsonValue high = core.handleRequest(
            submitRequest(urgent, "c", 5).dump(0));
    ASSERT_TRUE(isOk(low));
    ASSERT_TRUE(isOk(high));

    const std::string highId = high.find("job")->asString();
    const SweepTaskPlan plan = sweepTaskPlan(urgent);
    for (std::size_t t = 0; t < plan.tasks(); ++t) {
        const auto ref = core.nextReadyTask();
        ASSERT_TRUE(ref.has_value());
        EXPECT_EQ(ref->job, highId)
            << "low-priority shard dispatched before the high-"
               "priority job drained";
    }
    const auto ref = core.nextReadyTask();
    ASSERT_TRUE(ref.has_value());
    EXPECT_EQ(ref->job, low.find("job")->asString());
}

TEST_F(ServeCoreTest, CancelStopsDispatchAndRejectsResult)
{
    ServeCore core(options());
    const JsonValue sub =
        core.handleRequest(submitRequest(tinyGrid()).dump(0));
    ASSERT_TRUE(isOk(sub));
    const std::string id = sub.find("job")->asString();

    const JsonValue notDone = core.handleRequest(
            R"({"op":"result","job":")" + id + "\"}");
    EXPECT_EQ(errorCode(notDone), "job-not-done");

    EXPECT_TRUE(isOk(core.handleRequest(
            R"({"op":"cancel","job":")" + id + "\"}")));
    EXPECT_FALSE(core.jobActive(id));
    EXPECT_FALSE(core.nextReadyTask().has_value());

    const JsonValue again = core.handleRequest(
            R"({"op":"cancel","job":")" + id + "\"}");
    EXPECT_EQ(errorCode(again), "job-finished");

    // A cancelled job does not dedupe: resubmission starts fresh.
    const JsonValue resub =
        core.handleRequest(submitRequest(tinyGrid()).dump(0));
    ASSERT_TRUE(isOk(resub));
    EXPECT_FALSE(resub.find("deduped")->asBool());
    EXPECT_NE(resub.find("job")->asString(), id);
}

// -------------------------------------------- retry + degradation logic

TEST_F(ServeCoreTest, CrashedShardsRetryWithBackoffThenFail)
{
    ServeOptions o = options();
    o.policy.maxAttempts = 3;
    ServeCore core(o);
    ASSERT_TRUE(isOk(
            core.handleRequest(submitRequest(tinyGrid()).dump(0))));

    auto ref = core.nextReadyTask();
    ASSERT_TRUE(ref.has_value());

    // Two transient losses retry with the parallel runner's backoff…
    for (unsigned attempt = 1; attempt < 3; ++attempt) {
        const auto delay =
            core.taskFailed(*ref, "worker died", true);
        ASSERT_TRUE(delay.has_value()) << "attempt " << attempt;
        EXPECT_EQ(*delay,
                  ParallelRunner::backoffDelay(
                          o.policy,
                          static_cast<std::size_t>(ref->task),
                          attempt));
        core.requeueTask(*ref);
        ref = core.nextReadyTask();
        ASSERT_TRUE(ref.has_value());
    }
    // …and the third loss exhausts the budget and fails the job.
    EXPECT_FALSE(core.taskFailed(*ref, "worker died", true)
                     .has_value());
    const JsonValue status = core.handleRequest(R"({"op":"status"})");
    const JsonValue &job = status.find("jobs")->at(0);
    EXPECT_EQ(job.find("state")->asString(), "failed");
    EXPECT_NE(job.find("error"), nullptr);
}

TEST_F(ServeCoreTest, FatalFailuresDoNotRetry)
{
    ServeCore core(options());
    ASSERT_TRUE(isOk(
            core.handleRequest(submitRequest(tinyGrid()).dump(0))));
    const auto ref = core.nextReadyTask();
    ASSERT_TRUE(ref.has_value());
    EXPECT_FALSE(
            core.taskFailed(*ref, "invalid-config", false).has_value());
    EXPECT_FALSE(core.jobActive(ref->job));
}

TEST_F(ServeCoreTest, CrashStreaksDegradeTheWorkerPoolToOne)
{
    ServeOptions o = options();
    o.workers = 4;
    ServeCore core(o);
    EXPECT_EQ(core.targetWorkers(), 4u);
    core.workerCrashed();
    core.workerCrashed();
    EXPECT_EQ(core.targetWorkers(), 2u);
    core.workerCrashed();
    core.workerCrashed();
    core.workerCrashed();
    EXPECT_EQ(core.targetWorkers(), 1u) << "never degrades below one";
    core.workerSucceeded();
    EXPECT_EQ(core.targetWorkers(), 4u) << "success resets the streak";
}

// ------------------------------------- end-to-end byte-identity + resume

class ServeCoreSweepTest : public ServeCoreTest
{
  protected:
    void
    SetUp() override
    {
        ServeCoreTest::SetUp();
        clearExperimentCaches();
        setGlobalArtifactStore(std::make_shared<ArtifactStore>(
                (dir / "store").string()));
    }

    void
    TearDown() override
    {
        setGlobalArtifactStore(nullptr);
        clearExperimentCaches();
        ServeCoreTest::TearDown();
    }
};

TEST_F(ServeCoreSweepTest, CoreDrivenJobMatchesRunSweepGridByteForByte)
{
    const SweepGrid grid = tinyGrid();
    const std::string reference =
        sweepResultToJson(runSweepGrid(grid, 0)).dump(2);

    ServeCore core(options());
    const JsonValue sub =
        core.handleRequest(submitRequest(grid).dump(0));
    ASSERT_TRUE(isOk(sub));
    const std::string id = sub.find("job")->asString();
    drainAllTasks(core);

    const JsonValue status = core.handleRequest(
            R"({"op":"status","job":")" + id + "\"}");
    ASSERT_EQ(status.find("state")->asString(), "done")
        << status.dump(0);
    EXPECT_EQ(status.find("tasks_done")->asUint(),
              sweepTaskPlan(grid).tasks());

    const JsonValue result = core.handleRequest(
            R"({"op":"result","job":")" + id + "\"}");
    ASSERT_TRUE(isOk(result)) << result.dump(0);
    EXPECT_EQ(result.find("result")->dump(2), reference);
}

TEST_F(ServeCoreSweepTest, RestartRecoversJournaledShardsByteForByte)
{
    const SweepGrid grid = tinyGrid();
    const SweepTaskPlan plan = sweepTaskPlan(grid);
    const std::string reference =
        sweepResultToJson(runSweepGrid(grid, 0)).dump(2);
    std::string id;

    {
        ServeCore first(options());
        const JsonValue sub =
            first.handleRequest(submitRequest(grid).dump(0));
        ASSERT_TRUE(isOk(sub));
        id = sub.find("job")->asString();
        // Complete half the shards, then "crash" (destroy the core
        // with the journal mid-grid, like a SIGKILLed daemon).
        for (std::size_t t = 0; t < plan.tasks() / 2; ++t) {
            const auto ref = first.nextReadyTask();
            ASSERT_TRUE(ref.has_value());
            first.taskCompleted(
                    *ref, sweepTaskPayloadJson(grid, ref->task));
        }
    }

    ServeCore second(options());
    const JsonValue status = second.handleRequest(
            R"({"op":"status","job":")" + id + "\"}");
    ASSERT_TRUE(isOk(status)) << status.dump(0);
    EXPECT_EQ(status.find("state")->asString(), "queued");
    EXPECT_EQ(status.find("tasks_done")->asUint(), plan.tasks() / 2)
        << "journaled shards were not recovered";

    // The resumed job only dispatches the shards the journal lost.
    std::size_t resumed = 0;
    while (auto ref = second.nextReadyTask()) {
        ++resumed;
        second.taskCompleted(*ref,
                             sweepTaskPayloadJson(grid, ref->task));
    }
    EXPECT_EQ(resumed, plan.tasks() - plan.tasks() / 2);

    const JsonValue result = second.handleRequest(
            R"({"op":"result","job":")" + id + "\"}");
    ASSERT_TRUE(isOk(result)) << result.dump(0);
    EXPECT_EQ(result.find("result")->dump(2), reference);

    // A third core recovers the terminal job for status/result only.
    ServeCore third(options());
    const JsonValue after = third.handleRequest(
            R"({"op":"status","job":")" + id + "\"}");
    ASSERT_TRUE(isOk(after)) << after.dump(0);
    EXPECT_EQ(after.find("state")->asString(), "done");
    EXPECT_EQ(after.find("tasks_done")->asUint(), plan.tasks());
    EXPECT_FALSE(third.hasPendingWork());
    const JsonValue again = third.handleRequest(
            R"({"op":"result","job":")" + id + "\"}");
    ASSERT_TRUE(isOk(again));
    EXPECT_EQ(again.find("result")->dump(2), reference);
}

TEST_F(ServeCoreSweepTest, InvalidWorkerPayloadFailsTheJob)
{
    ServeCore core(options());
    const JsonValue sub =
        core.handleRequest(submitRequest(tinyGrid()).dump(0));
    ASSERT_TRUE(isOk(sub));
    const auto ref = core.nextReadyTask();
    ASSERT_TRUE(ref.has_value());
    JsonValue bogus = JsonValue::array();
    bogus.push(JsonValue("garbage"));
    core.taskCompleted(*ref, bogus);
    EXPECT_FALSE(core.jobActive(ref->job));
    const JsonValue status = core.handleRequest(
            R"({"op":"status","job":")" + ref->job + "\"}");
    EXPECT_EQ(status.find("state")->asString(), "failed");
}

// ------------------------------------------- flock'd artifact-store races

TEST(ArtifactStoreLockTest, ConcurrentStoresFromTwoInstancesStayIntact)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path()
        / ("confsim-flock-test-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    {
        // Two independent store instances (two open-file-description
        // domains, like daemon + CLI) hammering the same keys: every
        // load must observe one writer's bytes in full, never a torn
        // or quarantined mix.
        ArtifactStore a(dir.string());
        ArtifactStore b(dir.string());
        const std::string payloadA(4096, 'A');
        const std::string payloadB(4096, 'B');

        auto hammer = [](ArtifactStore &store,
                         const std::string &payload) {
            for (int i = 0; i < 50; ++i)
                store.store("race", "key-" + std::to_string(i % 5),
                            payload);
        };
        std::thread ta(hammer, std::ref(a), std::cref(payloadA));
        std::thread tb(hammer, std::ref(b), std::cref(payloadB));
        ta.join();
        tb.join();

        for (int i = 0; i < 5; ++i) {
            std::string loaded;
            ASSERT_TRUE(a.load("race", "key-" + std::to_string(i),
                               loaded));
            EXPECT_TRUE(loaded == payloadA || loaded == payloadB)
                << "torn write on key-" << i;
        }
        EXPECT_EQ(a.stats().corruptArtifacts, 0u);
        EXPECT_EQ(b.stats().corruptArtifacts, 0u);
    }
    std::filesystem::remove_all(dir);
}

} // anonymous namespace
} // namespace confsim
