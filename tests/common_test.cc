/**
 * @file
 * Unit tests for the common substrate: saturating counters, history
 * registers, the RNG, bit utilities, statistics and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bit_utils.hh"
#include "common/history_register.hh"
#include "common/random.hh"
#include "common/ring_buffer.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace confsim
{
namespace
{

// ---------------------------------------------------------------- SatCounter

TEST(SatCounterTest, InitialValueClamped)
{
    SatCounter ctr(2, 7);
    EXPECT_EQ(ctr.read(), 3u);
    EXPECT_EQ(ctr.max(), 3u);
}

TEST(SatCounterTest, IncrementSaturates)
{
    SatCounter ctr(2, 0);
    for (int i = 0; i < 10; ++i)
        ctr.increment();
    EXPECT_EQ(ctr.read(), 3u);
}

TEST(SatCounterTest, DecrementSaturatesAtZero)
{
    SatCounter ctr(2, 1);
    ctr.decrement();
    ctr.decrement();
    ctr.decrement();
    EXPECT_EQ(ctr.read(), 0u);
}

TEST(SatCounterTest, TakenThresholdIsUpperHalf)
{
    SatCounter ctr(2, 0);
    EXPECT_FALSE(ctr.taken()); // 0
    ctr.increment();
    EXPECT_FALSE(ctr.taken()); // 1
    ctr.increment();
    EXPECT_TRUE(ctr.taken()); // 2
    ctr.increment();
    EXPECT_TRUE(ctr.taken()); // 3
}

TEST(SatCounterTest, WeakStatesAreTransitional)
{
    SatCounter ctr(2, 0);
    EXPECT_TRUE(ctr.isStrong()); // 0 strongly NT
    ctr.increment();
    EXPECT_TRUE(ctr.isWeak()); // 1
    ctr.increment();
    EXPECT_TRUE(ctr.isWeak()); // 2
    ctr.increment();
    EXPECT_TRUE(ctr.isStrong()); // 3 strongly T
}

TEST(SatCounterTest, ResetAndSaturate)
{
    SatCounter ctr(4, 9);
    ctr.reset();
    EXPECT_EQ(ctr.read(), 0u);
    ctr.saturate();
    EXPECT_EQ(ctr.read(), 15u);
}

TEST(SatCounterTest, UpdateMovesTowardOutcome)
{
    SatCounter ctr(2, 1);
    ctr.update(true);
    EXPECT_EQ(ctr.read(), 2u);
    ctr.update(false);
    EXPECT_EQ(ctr.read(), 1u);
}

TEST(SatCounterTest, FourBitRange)
{
    SatCounter ctr(4, 0);
    for (int i = 0; i < 100; ++i)
        ctr.increment();
    EXPECT_EQ(ctr.read(), 15u);
    EXPECT_EQ(ctr.max(), 15u);
}

TEST(SatCounterDeathTest, ZeroWidthRejected)
{
    EXPECT_EXIT(SatCounter(0), ::testing::ExitedWithCode(1), "width");
}

TEST(SatCounterDeathTest, OversizeWidthRejected)
{
    EXPECT_EXIT(SatCounter(17), ::testing::ExitedWithCode(1), "width");
}

class SatCounterWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidthTest, SaturationBoundsMatchWidth)
{
    const unsigned bits = GetParam();
    SatCounter ctr(bits, 0);
    EXPECT_EQ(ctr.max(), (1u << bits) - 1);
    for (unsigned i = 0; i < (2u << bits); ++i)
        ctr.increment();
    EXPECT_EQ(ctr.read(), ctr.max());
    EXPECT_TRUE(ctr.taken());
    for (unsigned i = 0; i < (2u << bits); ++i)
        ctr.decrement();
    EXPECT_EQ(ctr.read(), 0u);
    EXPECT_FALSE(ctr.taken());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidthTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

// ---------------------------------------------------------- HistoryRegister

TEST(HistoryRegisterTest, ShiftBuildsPattern)
{
    HistoryRegister h(4);
    h.shiftIn(true);
    h.shiftIn(false);
    h.shiftIn(true);
    h.shiftIn(true);
    EXPECT_EQ(h.value(), 0b1011u);
}

TEST(HistoryRegisterTest, WidthMaskApplies)
{
    HistoryRegister h(3);
    for (int i = 0; i < 10; ++i)
        h.shiftIn(true);
    EXPECT_EQ(h.value(), 0b111u);
}

TEST(HistoryRegisterTest, RestoreMasksValue)
{
    HistoryRegister h(4);
    h.restore(0xff);
    EXPECT_EQ(h.value(), 0xfu);
}

TEST(HistoryRegisterTest, ClearZeroes)
{
    HistoryRegister h(8);
    h.shiftIn(true);
    h.clear();
    EXPECT_EQ(h.value(), 0u);
}

TEST(HistoryRegisterTest, WidthAccessor)
{
    HistoryRegister h(13);
    EXPECT_EQ(h.width(), 13u);
}

TEST(HistoryRegisterDeathTest, ZeroWidthRejected)
{
    EXPECT_EXIT(HistoryRegister(0), ::testing::ExitedWithCode(1),
                "width");
}

TEST(HistoryRegisterDeathTest, OversizeWidthRejected)
{
    EXPECT_EXIT(HistoryRegister(64), ::testing::ExitedWithCode(1),
                "width");
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() != b.next())
            ++differing;
    EXPECT_GT(differing, 60);
}

TEST(RngTest, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// --------------------------------------------------------------- bit utils

TEST(BitUtilsTest, IsPowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(4097));
}

TEST(BitUtilsTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(5), 2u);
}

TEST(BitUtilsTest, LowBitMask)
{
    EXPECT_EQ(lowBitMask(0), 0u);
    EXPECT_EQ(lowBitMask(4), 0xfu);
    EXPECT_EQ(lowBitMask(64), ~std::uint64_t{0});
}

TEST(BitUtilsTest, FoldAddressStaysInRange)
{
    for (Addr a : {Addr{0x1000}, Addr{0xdeadbeef}, Addr{0x123456789a}})
        EXPECT_LT(foldAddress(a, 12), 1u << 12);
}

TEST(BitUtilsTest, FoldAddressIgnoresAlignmentBits)
{
    EXPECT_EQ(foldAddress(0x1000, 12), foldAddress(0x1003, 12));
}

// -------------------------------------------------------------------- stats

TEST(RunningStatTest, MeanMinMax)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStatTest, VarianceMatchesClosedForm)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, ResetClears)
{
    RunningStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RatioStatTest, RatioAndReset)
{
    RatioStat r;
    r.record(true);
    r.record(true);
    r.record(false);
    EXPECT_EQ(r.hits(), 2u);
    EXPECT_EQ(r.total(), 3u);
    EXPECT_NEAR(r.ratio(), 2.0 / 3.0, 1e-12);
    r.reset();
    EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(4);
    h.add(0);
    h.add(1);
    h.add(1);
    h.add(9);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h(2);
    h.add(0);
    h.add(5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(GeometricMeanTest, MatchesHandComputation)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(GeometricMeanTest, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(GeometricMeanTest, ZeroValueClamped)
{
    EXPECT_GT(geometricMean({0.0, 4.0}), 0.0);
}

// -------------------------------------------------------------------- table

TEST(TextTableTest, RenderContainsCells)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TextTableTest, CsvHasCommas)
{
    TextTable t({"x", "y", "z"});
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.renderCsv(), "x,y,z\n1,2,3\n");
}

TEST(TextTableTest, Formatters)
{
    EXPECT_EQ(TextTable::pct(0.964), "96%");
    EXPECT_EQ(TextTable::pct(0.9641, 1), "96.4%");
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::count(1234), "1234");
}

TEST(TextTableDeathTest, RowWidthMismatchFatal)
{
    TextTable t({"a", "b"});
    EXPECT_EXIT(t.addRow({"1"}), ::testing::ExitedWithCode(1),
                "width");
}

TEST(TextTableDeathTest, EmptyHeaderFatal)
{
    EXPECT_EXIT(TextTable({}), ::testing::ExitedWithCode(1), "column");
}

// ---------------------------------------------------------------- RingBuffer

TEST(RingBufferTest, StartsEmpty)
{
    RingBuffer<int> rb;
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 0u);
}

TEST(RingBufferTest, FifoOrder)
{
    RingBuffer<int> rb;
    rb.push_back(1);
    rb.push_back(2);
    rb.push_back(3);
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb.front(), 1);
    EXPECT_EQ(rb.back(), 3);
    rb.pop_front();
    EXPECT_EQ(rb.front(), 2);
    rb.pop_front();
    rb.pop_front();
    EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, LogicalIndexingIsFrontRelative)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 6; ++i)
        rb.push_back(i);
    rb.pop_front();
    rb.pop_front();
    ASSERT_EQ(rb.size(), 4u);
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb[i], static_cast<int>(i) + 2);
    rb[0] = 99;
    EXPECT_EQ(rb.front(), 99);
}

TEST(RingBufferTest, WrapAroundPreservesOrder)
{
    RingBuffer<int> rb(4); // capacity rounds to a power of two
    const std::size_t cap = rb.capacity();
    // March the head around the array several times.
    int next_in = 0, next_out = 0;
    for (std::size_t i = 0; i < cap - 1; ++i)
        rb.push_back(next_in++);
    for (int round = 0; round < 20; ++round) {
        rb.push_back(next_in++);
        ASSERT_EQ(rb.front(), next_out);
        rb.pop_front();
        ++next_out;
        ASSERT_EQ(rb.size(), cap - 1);
        ASSERT_EQ(rb.capacity(), cap) << "wrapped traffic reallocated";
    }
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb[i], next_out + static_cast<int>(i));
}

TEST(RingBufferTest, RegrowWhileWrappedKeepsContents)
{
    RingBuffer<int> rb(4);
    const std::size_t cap = rb.capacity();
    for (std::size_t i = 0; i < cap; ++i)
        rb.push_back(static_cast<int>(i));
    // Rotate so the live window straddles the physical end.
    for (int i = 0; i < 3; ++i) {
        rb.pop_front();
        rb.push_back(static_cast<int>(cap) + i);
    }
    rb.push_back(1000); // forces regrow mid-wrap
    EXPECT_GT(rb.capacity(), cap);
    ASSERT_EQ(rb.size(), cap + 1);
    EXPECT_EQ(rb.front(), 3);
    EXPECT_EQ(rb.back(), 1000);
    for (std::size_t i = 0; i + 1 < rb.size(); ++i)
        EXPECT_EQ(rb[i], static_cast<int>(i) + 3);
}

TEST(RingBufferTest, ReserveRoundsUpAndAvoidsRealloc)
{
    RingBuffer<int> rb;
    rb.reserve(10);
    const std::size_t cap = rb.capacity();
    EXPECT_GE(cap, 10u);
    EXPECT_EQ(cap & (cap - 1), 0u) << "capacity not a power of two";
    for (std::size_t i = 0; i < cap; ++i)
        rb.push_back(static_cast<int>(i));
    EXPECT_EQ(rb.capacity(), cap);
    rb.reserve(4); // shrinking is a no-op
    EXPECT_EQ(rb.capacity(), cap);
}

TEST(RingBufferTest, PushSlotRecyclesStorage)
{
    RingBuffer<int> rb;
    rb.push_slot() = 1;
    rb.push_slot() = 2;
    EXPECT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.front(), 1);
    EXPECT_EQ(rb.back(), 2);
    rb.pop_front();
    rb.pop_front();
    // A recycled slot keeps its old value until assigned.
    int &slot = rb.push_slot();
    EXPECT_EQ(rb.size(), 1u);
    slot = 9;
    EXPECT_EQ(rb.front(), 9);
}

TEST(RingBufferTest, ClearKeepsCapacity)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 100; ++i)
        rb.push_back(i);
    const std::size_t cap = rb.capacity();
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), cap);
    rb.push_back(7);
    EXPECT_EQ(rb.front(), 7);
    EXPECT_EQ(rb.back(), 7);
}

} // anonymous namespace
} // namespace confsim
