/**
 * @file
 * Ground-truth validation of the metrics machinery against synthetic
 * streams with *known* statistical properties. On an IID stream every
 * conditional structure (distance, clustering, boosting) must collapse
 * to closed-form values; with injected clustering the machinery must
 * detect exactly what was injected.
 */

#include <gtest/gtest.h>

#include "confidence/boosting.hh"
#include "confidence/distance.hh"
#include "harness/collectors.hh"
#include "harness/distance_profile.hh"
#include "harness/synthetic_stream.hh"
#include "metrics/analytic.hh"

namespace confsim
{
namespace
{

SyntheticStreamConfig
iidStream(double accuracy, std::uint64_t n = 200'000)
{
    SyntheticStreamConfig cfg;
    cfg.branches = n;
    cfg.accuracy = accuracy;
    cfg.clusterBoost = 0.0;
    cfg.seed = 42;
    return cfg;
}

TEST(SyntheticStreamTest, RealisedAccuracyMatchesTarget)
{
    const SyntheticStreamConfig cfg = iidStream(0.85);
    std::uint64_t events = 0;
    const std::uint64_t misses = generateSyntheticStream(
            cfg, nullptr, [&events](const BranchEvent &) {
                ++events;
            });
    EXPECT_EQ(events, cfg.branches);
    EXPECT_NEAR(static_cast<double>(misses) / cfg.branches, 0.15,
                0.01);
}

TEST(SyntheticStreamTest, IidStreamHasFlatDistanceProfile)
{
    // On an unclustered stream, the misprediction rate must be (about)
    // the same at every distance — the paper's null hypothesis for
    // Figs. 6-9.
    DistanceProfile profile(32);
    generateSyntheticStream(iidStream(0.9), nullptr,
                            [&profile](const BranchEvent &ev) {
                                profile.record(ev.preciseDistAll,
                                               !ev.correct);
                            });
    const double avg = profile.averageRate();
    for (unsigned d = 1; d <= 10; ++d) {
        if (profile.countAt(d) < 2000)
            continue; // too few samples for a tight bound
        EXPECT_NEAR(profile.rateAt(d), avg, 0.02) << "distance " << d;
    }
}

TEST(SyntheticStreamTest, InjectedClusteringIsDetected)
{
    SyntheticStreamConfig cfg = iidStream(0.9);
    cfg.clusterBoost = 0.4;
    cfg.clusterDecay = 0.5;
    DistanceProfile profile(32);
    generateSyntheticStream(cfg, nullptr,
                            [&profile](const BranchEvent &ev) {
                                profile.record(ev.preciseDistAll,
                                               !ev.correct);
                            });
    // Distance-1 branches carry the full boost (~0.1 + 0.4*0.5).
    EXPECT_GT(profile.rateAt(1), 1.5 * profile.averageRate());
    // The boost decays: far distances sit near the baseline.
    EXPECT_LT(profile.rateAt(10), profile.rateAt(1));
}

TEST(SyntheticStreamTest, DistanceEstimatorPvnEqualsMissRateOnIid)
{
    // The distance estimator exploits clustering; with none, its PVN
    // must equal the plain misprediction rate at every threshold.
    for (const unsigned threshold : {1u, 3u, 6u}) {
        DistanceEstimator est(threshold);
        QuadrantCounts q;
        generateSyntheticStream(iidStream(0.9), &est,
                                [&q](const BranchEvent &ev) {
                                    q.record(ev.correct,
                                             ev.estimate(0));
                                });
        EXPECT_NEAR(q.pvn(), 0.1, 0.015) << "threshold " << threshold;
        EXPECT_NEAR(q.pvp(), 0.9, 0.015) << "threshold " << threshold;
    }
}

TEST(SyntheticStreamTest, DistanceEstimatorGainsPvnUnderClustering)
{
    SyntheticStreamConfig cfg = iidStream(0.9);
    cfg.clusterBoost = 0.5;
    cfg.clusterDecay = 0.6;
    DistanceEstimator est(3);
    QuadrantCounts q;
    const std::uint64_t misses = generateSyntheticStream(
            cfg, &est, [&q](const BranchEvent &ev) {
                q.record(ev.correct, ev.estimate(0));
            });
    const double miss_rate =
        static_cast<double>(misses) / cfg.branches;
    // Low-confidence branches (near a miss) now mispredict more often
    // than the population: PVN > misprediction rate.
    EXPECT_GT(q.pvn(), miss_rate + 0.03);
}

TEST(SyntheticStreamTest, BoostingFollowsBernoulliExactlyOnIid)
{
    // With an always-low base estimator on an IID stream, a window of
    // N branches contains >= 1 misprediction with probability exactly
    // 1 - accuracy^N.
    const double accuracy = 0.9;
    for (const unsigned n : {2u, 3u}) {
        std::uint64_t windows = 0, hit_windows = 0, in_window = 0;
        bool window_hit = false;
        generateSyntheticStream(
                iidStream(accuracy, 300'000), nullptr,
                [&](const BranchEvent &ev) {
                    window_hit = window_hit || !ev.correct;
                    if (++in_window == n) {
                        ++windows;
                        if (window_hit)
                            ++hit_windows;
                        in_window = 0;
                        window_hit = false;
                    }
                });
        const double measured =
            static_cast<double>(hit_windows)
            / static_cast<double>(windows);
        EXPECT_NEAR(measured, boostedPvn(1.0 - accuracy, n), 0.01)
            << "N = " << n;
    }
}

TEST(SyntheticStreamTest, QuadrantTotalsConserved)
{
    DistanceEstimator est(2);
    ConfidenceCollector collector(1);
    const SyntheticStreamConfig cfg = iidStream(0.8, 50'000);
    generateSyntheticStream(cfg, &est,
                            [&collector](const BranchEvent &ev) {
                                collector.onEvent(ev);
                            });
    EXPECT_EQ(collector.committed(0).total(), cfg.branches);
    EXPECT_EQ(collector.all(0).total(), cfg.branches);
}

TEST(SyntheticStreamDeathTest, InvalidConfigFatal)
{
    SyntheticStreamConfig cfg;
    cfg.accuracy = 1.5;
    EXPECT_EXIT(generateSyntheticStream(
                        cfg, nullptr, [](const BranchEvent &) {}),
                ::testing::ExitedWithCode(1), "accuracy");
    SyntheticStreamConfig cfg2;
    cfg2.numSites = 0;
    EXPECT_EXIT(generateSyntheticStream(
                        cfg2, nullptr, [](const BranchEvent &) {}),
                ::testing::ExitedWithCode(1), "site");
    EXPECT_EXIT(generateSyntheticStream(SyntheticStreamConfig{},
                                        nullptr, {}),
                ::testing::ExitedWithCode(1), "sink");
}

} // anonymous namespace
} // namespace confsim
