/**
 * Sampled-execution tests: window layout properties, CLT interval
 * math, degenerate-plan bit-identity with the full batched engine,
 * scalar-vs-vector bit-identity of windowed replay, 99% CI containment
 * of the full-replay ground truth for every predictor kind, adaptive
 * stride halving, and checkpoint-journal separation between sampled
 * and full-replay grids.
 */

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/distance.hh"
#include "confidence/jrs.hh"
#include "harness/experiment.hh"
#include "harness/experiment_cache.hh"
#include "harness/sampled_replay.hh"
#include "harness/sweep.hh"
#include "harness/synthetic_workload.hh"
#include "sweep/batch_replayer.hh"
#include "sweep/sampling.hh"
#include "sweep/sweep_kernels.hh"

namespace confsim
{
namespace
{

const WorkloadSpec &
spec(const std::string &name)
{
    for (const auto &wl : standardWorkloads())
        if (wl.name == name)
            return wl;
    throw std::runtime_error("unknown workload " + name);
}

const std::vector<PredictorKind> &
allKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Bimodal,    PredictorKind::Gshare,
        PredictorKind::McFarling,  PredictorKind::SAg,
        PredictorKind::Gselect,    PredictorKind::GAg,
        PredictorKind::PAs,        PredictorKind::Perceptron,
        PredictorKind::Tage,
    };
    return kinds;
}

/** The shared decoded compress trace for @p kind (aliasing pointer). */
std::shared_ptr<const DecodedTrace>
compressTrace(PredictorKind kind)
{
    const ExperimentConfig cfg;
    const auto decoded = cachedDecodedRun(kind, spec("compress"),
                                          cfg.workload, cfg.pipeline);
    return {decoded, &decoded->trace};
}

/** Attach the standard kernel-lane trio (jrs, satcnt, pattern). */
void
attachKernelLanes(BatchReplayer &replayer, PredictorKind kind)
{
    replayer.attachJrs(JrsConfig{}, true);
    replayer.attachSatCounters(kind == PredictorKind::McFarling
                                       ? SatCountersVariant::BothStrong
                                       : SatCountersVariant::Selected);
    replayer.attachPattern();
}

void
expectLaneEqual(const BatchReplayer &a, const BatchReplayer &b,
                unsigned lane)
{
    EXPECT_EQ(a.committed(lane), b.committed(lane)) << "lane " << lane;
    EXPECT_EQ(a.all(lane), b.all(lane)) << "lane " << lane;
    EXPECT_EQ(a.estimatorStats(lane).estimates,
              b.estimatorStats(lane).estimates);
    EXPECT_EQ(a.estimatorStats(lane).lowEstimates,
              b.estimatorStats(lane).lowEstimates);
    EXPECT_EQ(a.estimatorStats(lane).updates,
              b.estimatorStats(lane).updates);
}

// --------------------------------------------------- window layout

TEST(SamplingLayoutTest, DegenerateAndDisabledPlansCoverEverything)
{
    const SamplingPlan disabled;
    auto w = layoutSampleWindows(1000, disabled);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], (SampleWindow{0, 0, 1000}));

    SamplingPlan huge;
    huge.windowOps = 1000;
    huge.warmupOps = 64; // degenerate windows take no warm-up
    w = layoutSampleWindows(1000, huge);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], (SampleWindow{0, 0, 1000}));

    EXPECT_TRUE(layoutSampleWindows(0, huge).empty());
}

TEST(SamplingLayoutTest, WindowsAreSystematicBoundedAndWarmedUp)
{
    SamplingPlan plan;
    plan.windowOps = 100;
    plan.strideOps = 1000;
    plan.warmupOps = 50;
    const std::uint64_t total = 100000;
    const auto windows = layoutSampleWindows(total, plan);
    ASSERT_GE(windows.size(), 99u);
    const std::uint64_t phase = windows[0].begin;
    EXPECT_LT(phase, plan.strideOps);
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const SampleWindow &w = windows[i];
        EXPECT_EQ(w.begin, phase + i * plan.strideOps);
        EXPECT_LE(w.end, total);
        EXPECT_LE(w.end - w.begin, plan.windowOps);
        EXPECT_EQ(w.warmBegin,
                  w.begin
                      - std::min<std::uint64_t>(plan.warmupOps,
                                                w.begin));
        if (i > 0) {
            EXPECT_GE(w.warmBegin, windows[i - 1].end);
        }
    }

    // Deterministic for a fixed seed; the seed moves the phase.
    EXPECT_EQ(layoutSampleWindows(total, plan), windows);
    std::vector<std::uint64_t> phases;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SamplingPlan p = plan;
        p.seed = seed;
        phases.push_back(layoutSampleWindows(total, p)[0].begin);
    }
    std::sort(phases.begin(), phases.end());
    phases.erase(std::unique(phases.begin(), phases.end()),
                 phases.end());
    EXPECT_GT(phases.size(), 1u);
}

TEST(SamplingLayoutTest, FullCoverageStrideTilesExactly)
{
    SamplingPlan plan;
    plan.windowOps = 128;
    plan.strideOps = 0; // clamped up to windowOps
    const auto windows = layoutSampleWindows(1000, plan);
    std::uint64_t covered = 0;
    for (const SampleWindow &w : windows) {
        EXPECT_EQ(w.begin, covered);
        covered = w.end;
    }
    EXPECT_EQ(covered, 1000u);
}

TEST(SamplingLayoutTest, PhasePastShortTraceFallsBackToOneWindow)
{
    SamplingPlan plan;
    plan.windowOps = 100;
    plan.strideOps = std::uint64_t{1} << 40; // phase ~always > total
    plan.warmupOps = 10;
    const auto windows = layoutSampleWindows(150, plan);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].begin, 50u);
    EXPECT_EQ(windows[0].end, 150u);
    EXPECT_EQ(windows[0].warmBegin, 40u);
}

// ------------------------------------------------- interval math

QuadrantCounts
quad(std::uint64_t chc, std::uint64_t ihc, std::uint64_t clc,
     std::uint64_t ilc)
{
    QuadrantCounts q;
    q.chc = chc;
    q.ihc = ihc;
    q.clc = clc;
    q.ilc = ilc;
    return q;
}

TEST(WindowAccumulatorTest, PooledAndIntervalMatchHandComputation)
{
    WindowStatAccumulator acc;
    acc.addWindow(quad(80, 10, 6, 4));  // 100 branches, 14 mispredicts
    acc.addWindow(quad(35, 10, 2, 3));  // 50 branches, 13 mispredicts
    const double fraction = 0.36;
    const SampledLaneStats s = acc.finalize(fraction);

    // Point estimate and CI centre: the pooled ratio of sums — NOT
    // the unweighted mean of window rates (0.2), which would weight
    // the half-size second window double.
    EXPECT_DOUBLE_EQ(s.mispredictRate.value, 27.0 / 150.0);
    EXPECT_DOUBLE_EQ(s.mispredictRate.mean, 27.0 / 150.0);
    EXPECT_EQ(s.mispredictRate.windows, 2u);
    // Ratio-estimator half-width: residuals d_i = y_i - R * x_i are
    // 14 - 0.18*100 = -4 and 13 - 0.18*50 = +4, so s_d^2 = 32, and
    // hw = Z99 * sqrt(32/2) / mean(x) * sqrt(1 - f), mean(x) = 75.
    const double expected = SAMPLING_Z99 * std::sqrt(32.0 / 2.0)
                            / 75.0 * std::sqrt(1.0 - fraction);
    ASSERT_TRUE(s.mispredictRate.defined());
    EXPECT_NEAR(s.mispredictRate.halfWidth, expected, 1e-12);

    // sens = chc / (chc + clc) pooled: 115 / 123.
    EXPECT_DOUBLE_EQ(s.sens.value, 115.0 / 123.0);
    // spec = ilc / (ihc + ilc) pooled: 7 / 27.
    EXPECT_DOUBLE_EQ(s.spec.value, 7.0 / 27.0);
}

TEST(WindowAccumulatorTest, FullCoverageIsExact)
{
    WindowStatAccumulator acc;
    acc.addWindow(quad(80, 10, 6, 4));
    acc.addWindow(quad(70, 20, 4, 6));
    const SampledLaneStats s = acc.finalize(1.0);
    for (const SampledMetric *m :
         {&s.mispredictRate, &s.sens, &s.spec, &s.pvp, &s.pvn}) {
        ASSERT_TRUE(m->defined());
        EXPECT_EQ(m->halfWidth, 0.0);
        EXPECT_EQ(m->mean, m->value); // centre collapses onto pooled
    }
}

TEST(WindowAccumulatorTest, UndefinedMetricsAreReportedAsSuch)
{
    WindowStatAccumulator acc;
    // One window only: point value exists, no variance estimate.
    acc.addWindow(quad(90, 5, 3, 2));
    SampledLaneStats s = acc.finalize(0.1);
    EXPECT_FALSE(s.mispredictRate.defined());
    EXPECT_EQ(s.mispredictRate.windows, 1u);
    EXPECT_DOUBLE_EQ(s.mispredictRate.value, 7.0 / 100.0);
    EXPECT_LT(s.maxHalfWidth(), 0.0);

    // No window ever mispredicted: spec's denominator is always zero.
    acc.reset();
    acc.addWindow(quad(50, 0, 10, 0));
    acc.addWindow(quad(60, 0, 12, 0));
    s = acc.finalize(0.1);
    EXPECT_TRUE(s.mispredictRate.defined());
    EXPECT_FALSE(s.spec.defined());
    EXPECT_EQ(s.spec.windows, 0u);
    // pvn's denominator (clc+ilc) is nonzero in both windows, so it is
    // observed — constant zero, hence an exact zero-width interval.
    ASSERT_TRUE(s.pvn.defined());
    EXPECT_EQ(s.pvn.windows, 2u);
    EXPECT_EQ(s.pvn.halfWidth, 0.0);
}

// ------------------------------------ degenerate-plan bit-identity

TEST(SampledReplayTest, DegeneratePlanBitIdenticalToFullRun)
{
    const PredictorKind kind = PredictorKind::Gshare;
    const auto trace = compressTrace(kind);

    BatchReplayer full(trace);
    attachKernelLanes(full, kind);
    DistanceEstimator distFull(4);
    full.attachEstimator(&distFull);
    std::string error;
    ASSERT_TRUE(full.run(&error)) << error;

    BatchReplayer sampled(trace);
    attachKernelLanes(sampled, kind);
    DistanceEstimator distSampled(4);
    sampled.attachEstimator(&distSampled);

    SamplingPlan plan;
    plan.windowOps = trace->schedule.size(); // window >= trace
    plan.warmupOps = 1024;                   // must be ignored
    MaterializedOpSource source(trace);
    std::vector<SampledLaneStats> stats;
    ASSERT_TRUE(runSampledReplay(sampled, source, plan, stats, &error))
            << error;

    ASSERT_EQ(stats.size(), 4u);
    for (unsigned lane = 0; lane < 4; ++lane) {
        expectLaneEqual(full, sampled, lane);
        const SampledLaneStats &s = stats[lane];
        EXPECT_EQ(s.windows, 1u);
        EXPECT_EQ(s.passes, 1u);
        EXPECT_EQ(s.opsWarmup, 0u);
        EXPECT_EQ(s.opsSkipped, 0u);
        EXPECT_EQ(s.opsDetailed, s.opsTotal);
        for (const SampledMetric *m :
             {&s.mispredictRate, &s.sens, &s.spec, &s.pvp, &s.pvn}) {
            ASSERT_TRUE(m->defined());
            EXPECT_EQ(m->halfWidth, 0.0);
            EXPECT_EQ(m->mean, m->value);
        }
    }
    // The level sweep must be intact too (thresholds all derivable).
    ASSERT_TRUE(sampled.hasLevels(0));
    for (unsigned t : {0u, 4u, 8u, 12u, 15u, 16u})
        EXPECT_EQ(sampled.levels(0).atThresholdGe(t),
                  full.levels(0).atThresholdGe(t));
}

TEST(SampledReplayTest, TiledRunOpsWindowsSumToFullRunOnEveryTier)
{
    const PredictorKind kind = PredictorKind::Gshare;
    const auto trace = compressTrace(kind);
    const std::size_t total = trace->schedule.size();

    for (const KernelDispatch tier :
         {KernelDispatch::Scalar, selectedKernelDispatch()}) {
        if (!kernelDispatchSupported(tier))
            continue;
        BatchReplayer full(trace);
        attachKernelLanes(full, kind);
        full.setKernelOverride(tier);
        std::string error;
        ASSERT_TRUE(full.run(&error)) << error;

        BatchReplayer tiled(trace);
        attachKernelLanes(tiled, kind);
        tiled.setKernelOverride(tier);
        tiled.resetLanes();
        for (std::size_t begin = 0; begin < total; begin += 9973) {
            const std::size_t end = std::min(begin + 9973, total);
            ASSERT_TRUE(tiled.runOps(begin, end, &error)) << error;
        }
        for (unsigned lane = 0; lane < 3; ++lane)
            expectLaneEqual(full, tiled, lane);
    }
}

TEST(SampledReplayTest, ScalarAndVectorSampledRunsAreBitIdentical)
{
    const PredictorKind kind = PredictorKind::McFarling;
    const auto trace = compressTrace(kind);

    SamplingPlan plan;
    plan.windowOps = 4096;
    plan.strideOps = 20480;
    plan.warmupOps = 2048;

    std::vector<std::vector<SampledLaneStats>> runs;
    std::vector<QuadrantCounts> committed;
    for (const KernelDispatch tier :
         {KernelDispatch::Scalar, selectedKernelDispatch()}) {
        BatchReplayer replayer(trace);
        attachKernelLanes(replayer, kind);
        replayer.setKernelOverride(tier);
        MaterializedOpSource source(trace);
        std::vector<SampledLaneStats> stats;
        std::string error;
        ASSERT_TRUE(runSampledReplay(replayer, source, plan, stats,
                                     &error))
                << error;
        runs.push_back(std::move(stats));
        for (unsigned lane = 0; lane < 3; ++lane)
            committed.push_back(replayer.committed(lane));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (std::size_t lane = 0; lane < runs[0].size(); ++lane) {
        EXPECT_EQ(committed[lane], committed[3 + lane]);
        const SampledLaneStats &a = runs[0][lane];
        const SampledLaneStats &b = runs[1][lane];
        EXPECT_EQ(a.windows, b.windows);
        EXPECT_EQ(a.opsDetailed, b.opsDetailed);
        // Identical integer window deltas make the derived doubles
        // identical expressions — compare them exactly.
        for (auto field : {&SampledLaneStats::mispredictRate,
                           &SampledLaneStats::sens,
                           &SampledLaneStats::spec,
                           &SampledLaneStats::pvp,
                           &SampledLaneStats::pvn}) {
            EXPECT_EQ((a.*field).value, (b.*field).value);
            EXPECT_EQ((a.*field).mean, (b.*field).mean);
            EXPECT_EQ((a.*field).halfWidth, (b.*field).halfWidth);
        }
    }
}

// ------------------------------------------- CI containment

class SampledAccuracyTest : public testing::TestWithParam<PredictorKind>
{
};

TEST_P(SampledAccuracyTest, IntervalsContainFullReplayGroundTruth)
{
    const PredictorKind kind = GetParam();
    const auto trace = compressTrace(kind);

    BatchReplayer full(trace);
    attachKernelLanes(full, kind);
    std::string error;
    ASSERT_TRUE(full.run(&error)) << error;

    BatchReplayer sampled(trace);
    attachKernelLanes(sampled, kind);
    SamplingPlan plan;
    plan.windowOps = 2048;
    plan.strideOps = 6144;
    plan.warmupOps = 2048;
    MaterializedOpSource source(trace);
    std::vector<SampledLaneStats> stats;
    ASSERT_TRUE(runSampledReplay(sampled, source, plan, stats, &error))
            << error;

    ASSERT_EQ(stats.size(), 3u);
    for (unsigned lane = 0; lane < 3; ++lane) {
        const QuadrantCounts &q = full.committed(lane);
        const auto truth = [](std::uint64_t num, std::uint64_t den) {
            return den == 0 ? 0.0
                            : static_cast<double>(num)
                                  / static_cast<double>(den);
        };
        const SampledLaneStats &s = stats[lane];
        EXPECT_GT(s.windows, 8u);
        EXPECT_GT(s.opsSkipped, 0u);
        struct Check
        {
            const char *name;
            const SampledMetric *metric;
            double value;
        } checks[] = {
            {"mispredict", &s.mispredictRate,
             truth(q.ihc + q.ilc, q.total())},
            {"sens", &s.sens, truth(q.chc, q.chc + q.clc)},
            {"spec", &s.spec, truth(q.ilc, q.ihc + q.ilc)},
            {"pvp", &s.pvp, truth(q.chc, q.chc + q.ihc)},
            {"pvn", &s.pvn, truth(q.ilc, q.clc + q.ilc)},
        };
        for (const Check &c : checks) {
            if (!c.metric->defined())
                continue;
            EXPECT_TRUE(c.metric->contains(c.value))
                    << predictorKindName(kind) << " lane " << lane
                    << " " << c.name << ": truth " << c.value
                    << " outside " << c.metric->mean << " +/- "
                    << c.metric->halfWidth;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SampledAccuracyTest,
                         testing::ValuesIn(allKinds()),
                         [](const auto &info) {
                             return std::string(
                                     predictorKindName(info.param));
                         });

// ------------------------------------------------ adaptive passes

TEST(SampledReplayTest, AdaptiveStrideHalvingReachesExactCoverage)
{
    SyntheticScenario scn;
    scn.name = "adaptive";
    scn.branches = 100000;

    SamplingPlan plan;
    plan.windowOps = 4096;
    plan.strideOps = 16384;
    plan.targetHalfWidth = 1e-9; // unreachable without full coverage
    plan.maxPasses = 5;

    SyntheticOpSource source(scn);
    std::uint64_t local = 0, covered = 0;
    BatchReplayer replayer(source.cover(0, 2, local, covered));
    replayer.attachSatCounters(SatCountersVariant::Selected);
    std::vector<SampledLaneStats> stats;
    std::string error;
    ASSERT_TRUE(
            runSampledReplay(replayer, source, plan, stats, &error))
            << error;

    // Stride halves 16384 -> 8192 -> 4096 == window: full coverage on
    // pass 3, where every interval is exact and the loop must stop.
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].passes, 3u);
    EXPECT_EQ(stats[0].opsSkipped, 0u);
    EXPECT_EQ(stats[0].opsDetailed, stats[0].opsTotal);
    EXPECT_EQ(stats[0].maxHalfWidth(), 0.0);

    // Full coverage means the pooled quadrants equal a full replay.
    SyntheticOpSource fullSource(scn);
    BatchReplayer full(fullSource.cover(0, 2, local, covered));
    full.attachSatCounters(SatCountersVariant::Selected);
    ASSERT_TRUE(runFullReplayStreamed(full, fullSource, &error))
            << error;
    EXPECT_EQ(replayer.committed(0), full.committed(0));
    EXPECT_EQ(replayer.all(0), full.all(0));
}

// ------------------------------------------------ journal separation

std::filesystem::path
tempJournalPath()
{
    return std::filesystem::temp_directory_path()
           / ("confsim-sampling-journal-" + std::to_string(getpid())
              + ".journal");
}

SweepGrid
syntheticGrid()
{
    SweepGrid grid;
    grid.kind = PredictorKind::Gshare;
    SyntheticScenario scn;
    scn.name = "iid-small";
    scn.branches = 50000;
    grid.synthetic.push_back(scn);
    SweepEstimatorSpec jrs;
    jrs.estimator = "jrs";
    SweepEstimatorSpec sat;
    sat.estimator = "satcnt";
    grid.estimators = {jrs, sat};
    return grid;
}

TEST(SamplingJournalTest, SampledGridsCheckpointUnderTheirOwnKey)
{
    const SweepGrid full = syntheticGrid();
    SweepGrid sampled = syntheticGrid();
    sampled.sampling.windowOps = 4096;
    sampled.sampling.strideOps = 16384;
    sampled.sampling.warmupOps = 1024;

    // The sampling plan is part of the grid identity...
    EXPECT_NE(sweepGridKey(full), sweepGridKey(sampled));
    // ...because the key'd JSON carries it exactly when enabled.
    EXPECT_EQ(sweepGridToJson(full).find("sampling"), nullptr);
    EXPECT_NE(sweepGridToJson(sampled).find("sampling"), nullptr);

    // A default grid emits neither new key: pre-sampling grids keep
    // their journal identity across this change.
    SweepGrid vanilla;
    vanilla.estimators = full.estimators;
    EXPECT_EQ(sweepGridToJson(vanilla).find("sampling"), nullptr);
    EXPECT_EQ(sweepGridToJson(vanilla).find("synthetic"), nullptr);

    const auto path = tempJournalPath();
    std::filesystem::remove(path);
    SweepExecOptions exec;
    exec.jobs = 0;
    exec.journalPath = path.string();

    // Populate the journal with the full-replay run...
    SweepExecReport fullReport;
    const SweepResult fullRun = runSweepGrid(full, exec, &fullReport);
    EXPECT_EQ(fullReport.resumedShards, 0u);

    // ...then run the sampled grid against the same journal file: it
    // must start cold, never resuming full-replay shards.
    SweepExecReport sampledReport;
    const SweepResult sampledRun =
        runSweepGrid(sampled, exec, &sampledReport);
    EXPECT_EQ(sampledReport.resumedShards, 0u);
    ASSERT_EQ(sampledRun.workloads.size(), 1u);
    for (const SweepConfigResult &c : sampledRun.workloads[0].configs)
        ASSERT_TRUE(c.sampled.has_value());

    // Sanity both ways: rerunning the sampled grid resumes it and
    // reproduces the result byte for byte; and the sampled totals do
    // differ from the full-replay totals (it really sampled).
    SweepExecReport resumeReport;
    const SweepResult resumed =
        runSweepGrid(sampled, exec, &resumeReport);
    EXPECT_GT(resumeReport.resumedShards, 0u);
    EXPECT_EQ(sweepResultToJson(resumed).dump(0),
              sweepResultToJson(sampledRun).dump(0));
    EXPECT_NE(sampledRun.workloads[0].configs[0].committed,
              fullRun.workloads[0].configs[0].committed);

    std::filesystem::remove(path);
}

TEST(SamplingJournalTest, SampledConfigResultsRoundTripThroughJson)
{
    SweepGrid sampled = syntheticGrid();
    sampled.sampling.windowOps = 4096;
    sampled.sampling.strideOps = 16384;

    // Grid JSON round-trips the plan and the scenarios.
    SweepGrid reparsed;
    std::string error;
    ASSERT_TRUE(sweepGridFromJson(sweepGridToJson(sampled), reparsed,
                                  &error))
            << error;
    EXPECT_TRUE(reparsed.sampling == sampled.sampling);
    EXPECT_TRUE(reparsed.synthetic == sampled.synthetic);

    // Config results round-trip their sampled block (the journal's
    // shard payload is exactly this serialization).
    const SweepResult run = runSweepGrid(sampled, 0);
    ASSERT_EQ(run.workloads.size(), 1u);
    for (const SweepConfigResult &c : run.workloads[0].configs) {
        ASSERT_TRUE(c.sampled.has_value());
        SweepConfigResult back;
        ASSERT_TRUE(sweepConfigResultFromJson(
                sweepConfigResultToJson(c), back, &error))
                << error;
        ASSERT_TRUE(back.sampled.has_value());
        EXPECT_EQ(back.committed, c.committed);
        EXPECT_EQ(back.sampled->windows, c.sampled->windows);
        EXPECT_EQ(back.sampled->opsDetailed, c.sampled->opsDetailed);
        EXPECT_EQ(back.sampled->mispredictRate.value,
                  c.sampled->mispredictRate.value);
        EXPECT_EQ(back.sampled->mispredictRate.halfWidth,
                  c.sampled->mispredictRate.halfWidth);
    }
}

} // namespace
} // namespace confsim
