/**
 * @file
 * Tests for the extension components beyond the paper's core: the
 * Jacobsen-style CIR estimators, the McFarling-structured JRS (§5
 * future work), HC-mode boosting, and the static-threshold tuner
 * (§5 future work).
 */

#include <gtest/gtest.h>

#include "confidence/boosting.hh"
#include "confidence/cir.hh"
#include "confidence/jrs.hh"
#include "confidence/mcf_jrs.hh"
#include "harness/static_tuner.hh"
#include "uarch/machine.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

constexpr Addr PC_A = 0x1000;
constexpr Addr PC_B = 0x2004;

// ----------------------------------------------------------------- CIR

TEST(CirTest, OnesCountThreshold)
{
    CirConfig cfg;
    cfg.mode = CirMode::OnesCount;
    cfg.cirBits = 4;
    cfg.onesThreshold = 4;
    CirEstimator est(cfg);
    const BpInfo info;
    EXPECT_FALSE(est.estimate(PC_A, info)); // empty CIR
    for (int i = 0; i < 3; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_FALSE(est.estimate(PC_A, info)); // 3 of 4
    est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_A, info)); // 4 of 4
}

TEST(CirTest, IncorrectOutcomeLowersOnesCount)
{
    CirConfig cfg;
    cfg.mode = CirMode::OnesCount;
    cfg.cirBits = 4;
    cfg.onesThreshold = 4;
    CirEstimator est(cfg);
    const BpInfo info;
    for (int i = 0; i < 4; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_A, info));
    est.update(PC_A, true, false, info); // a miss enters the CIR
    EXPECT_FALSE(est.estimate(PC_A, info));
    EXPECT_EQ(est.cirOnes(PC_A), 3u);
}

TEST(CirTest, GlobalModeSharesRegister)
{
    CirConfig cfg;
    cfg.mode = CirMode::OnesCount;
    cfg.cirBits = 4;
    cfg.onesThreshold = 4;
    cfg.perAddress = false;
    CirEstimator est(cfg);
    const BpInfo info;
    for (int i = 0; i < 4; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_B, info)); // different site, same CIR
}

TEST(CirTest, PerAddressModeSeparatesSites)
{
    CirConfig cfg;
    cfg.mode = CirMode::OnesCount;
    cfg.cirBits = 4;
    cfg.onesThreshold = 4;
    cfg.perAddress = true;
    CirEstimator est(cfg);
    const BpInfo info;
    for (int i = 0; i < 4; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_A, info));
    EXPECT_FALSE(est.estimate(PC_B, info));
}

TEST(CirTest, PatternTableLearnsResettingCounters)
{
    CirConfig cfg;
    cfg.mode = CirMode::PatternTable;
    cfg.cirBits = 4;
    cfg.counterThreshold = 3;
    CirEstimator est(cfg);
    const BpInfo info;
    // Keep the CIR saturated at all-correct; train the indexed entry.
    for (int i = 0; i < 8; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_A, info));
    est.update(PC_A, true, false, info); // reset
    // CIR changed too, but after re-saturating correctness history the
    // counter must climb again from zero.
    for (int i = 0; i < 2; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_FALSE(est.estimate(PC_A, info));
}

TEST(CirTest, NamesEncodeModeAndScope)
{
    CirConfig cfg;
    cfg.mode = CirMode::OnesCount;
    EXPECT_EQ(CirEstimator(cfg).name(), "cir-ones-g");
    cfg.mode = CirMode::PatternTable;
    cfg.perAddress = true;
    EXPECT_EQ(CirEstimator(cfg).name(), "cir-table-pa");
}

TEST(CirTest, ResetClearsState)
{
    CirConfig cfg;
    cfg.mode = CirMode::OnesCount;
    cfg.onesThreshold = 1;
    CirEstimator est(cfg);
    const BpInfo info;
    est.update(PC_A, true, true, info);
    est.reset();
    EXPECT_EQ(est.cirOnes(PC_A), 0u);
    EXPECT_FALSE(est.estimate(PC_A, info));
}

TEST(CirDeathTest, BadGeometryFatal)
{
    CirConfig cfg;
    cfg.cirBits = 0;
    EXPECT_EXIT(CirEstimator est(cfg), ::testing::ExitedWithCode(1),
                "CIR length");
    CirConfig cfg2;
    cfg2.perAddress = true;
    cfg2.cirTableEntries = 1000;
    EXPECT_EXIT(CirEstimator est2(cfg2),
                ::testing::ExitedWithCode(1), "power of two");
}

// ----------------------------------------------------------- McfJrs

BpInfo
mcfInfo(bool gshare_taken, bool bimodal_taken, bool chose_gshare,
        std::uint64_t hist = 0)
{
    BpInfo info;
    info.hasComponents = true;
    info.gsharePredTaken = gshare_taken;
    info.bimodalPredTaken = bimodal_taken;
    info.metaChoseGshare = chose_gshare;
    info.predTaken = chose_gshare ? gshare_taken : bimodal_taken;
    info.globalHistory = hist;
    info.globalHistoryBits = 12;
    return info;
}

TEST(McfJrsTest, ComponentsTrainIndependently)
{
    McfJrsEstimator est;
    // gshare component always right, bimodal always wrong.
    const BpInfo info = mcfInfo(true, false, true);
    for (int i = 0; i < 16; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_EQ(est.readGshareCounter(PC_A, info), 15u);
    EXPECT_EQ(est.readBimodalCounter(PC_A), 0u);
}

TEST(McfJrsTest, SelectedRuleFollowsMeta)
{
    McfJrsEstimator est;
    const BpInfo info = mcfInfo(true, false, true);
    for (int i = 0; i < 16; ++i)
        est.update(PC_A, true, true, info);
    // Meta chose gshare (confident component) -> HC.
    EXPECT_TRUE(est.estimate(PC_A, mcfInfo(true, false, true)));
    // Meta chose bimodal (reset component) -> LC.
    EXPECT_FALSE(est.estimate(PC_A, mcfInfo(true, false, false)));
}

TEST(McfJrsTest, BothAboveIsStricterThanEither)
{
    McfJrsConfig both_cfg;
    both_cfg.combine = McfJrsCombine::BothAbove;
    McfJrsConfig either_cfg;
    either_cfg.combine = McfJrsCombine::EitherAbove;
    McfJrsEstimator both(both_cfg), either(either_cfg);

    const BpInfo info = mcfInfo(true, false, true);
    for (int i = 0; i < 16; ++i) {
        both.update(PC_A, true, true, info);
        either.update(PC_A, true, true, info);
    }
    // gshare MDC saturated, bimodal MDC zero.
    EXPECT_FALSE(both.estimate(PC_A, info));
    EXPECT_TRUE(either.estimate(PC_A, info));
}

TEST(McfJrsTest, FallsBackToPlainJrsWithoutComponents)
{
    McfJrsEstimator est;
    BpInfo info; // hasComponents = false
    info.predTaken = true;
    for (int i = 0; i < 15; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_A, info));
}

TEST(McfJrsTest, NamesEncodeCombineRule)
{
    McfJrsConfig cfg;
    cfg.combine = McfJrsCombine::BothAbove;
    EXPECT_EQ(McfJrsEstimator(cfg).name(), "mcf-jrs-both");
}

TEST(McfJrsTest, ResetClearsBothTables)
{
    McfJrsEstimator est;
    const BpInfo info = mcfInfo(true, true, true);
    for (int i = 0; i < 16; ++i)
        est.update(PC_A, true, true, info);
    est.reset();
    EXPECT_EQ(est.readGshareCounter(PC_A, info), 0u);
    EXPECT_EQ(est.readBimodalCounter(PC_A), 0u);
}

// ----------------------------------------------------- HC boosting

TEST(BoostHcTest, RequiresConsecutiveHighEstimates)
{
    BoostingEstimator boost(std::make_unique<ConstantEstimator>(true),
                            3, BoostMode::HighConfidence);
    const BpInfo info;
    EXPECT_FALSE(boost.estimate(PC_A, info)); // 1 HC
    EXPECT_FALSE(boost.estimate(PC_A, info)); // 2 HC
    EXPECT_TRUE(boost.estimate(PC_A, info));  // 3 HC: fires
    EXPECT_TRUE(boost.estimate(PC_A, info));  // stays high
}

TEST(BoostHcTest, LowEstimateBreaksRun)
{
    struct TwoHighOneLow : ConfidenceEstimator
    {
        int i = 0;
        std::string name() const override { return "hhl"; }

      protected:
        bool
        doEstimate(Addr, const BpInfo &) override
        {
            return ++i % 3 != 0; // H H L H H L ...
        }
        void doUpdate(Addr, bool, bool, const BpInfo &) override {}
        void doReset() override { i = 0; }
    };
    BoostingEstimator boost(std::make_unique<TwoHighOneLow>(), 3,
                            BoostMode::HighConfidence);
    const BpInfo info;
    for (int k = 0; k < 9; ++k)
        EXPECT_FALSE(boost.estimate(PC_A, info)); // never 3 in a row
}

TEST(BoostHcTest, NameHasHcTag)
{
    BoostingEstimator boost(std::make_unique<ConstantEstimator>(true),
                            2, BoostMode::HighConfidence);
    EXPECT_EQ(boost.name(), "boost-hc2(always-high)");
    EXPECT_EQ(boost.boostMode(), BoostMode::HighConfidence);
}

TEST(BoostHcTest, TradesSensWithoutWreckingPvp)
{
    // HC boosting marks strictly fewer branches high confidence
    // (lower SENS). Per branch the PVP stays in the base estimator's
    // neighbourhood — the boosting gain is in the *joint* event that
    // all N branches of the run are correct (pipeline state), not in
    // any single branch's PVP, per the paper's §4.2 caveat.
    const Program prog = makeWorkload("gcc");
    auto run = [&prog](unsigned degree) {
        auto pred = makePredictor(PredictorKind::Gshare);
        BoostingEstimator est(std::make_unique<JrsEstimator>(), degree,
                              BoostMode::HighConfidence);
        QuadrantCounts q;
        Machine machine(prog);
        while (!machine.halted()) {
            const StepInfo si = machine.step();
            if (si.halted)
                break;
            if (!si.isCond)
                continue;
            const BpInfo info = pred->predict(si.addr);
            const bool correct = info.predTaken == si.taken;
            q.record(correct, est.estimate(si.addr, info));
            pred->update(si.addr, si.taken, info);
            est.update(si.addr, si.taken, correct, info);
        }
        return q;
    };
    const QuadrantCounts base = run(1);
    const QuadrantCounts boosted = run(3);
    EXPECT_LE(boosted.sens(), base.sens());
    EXPECT_NEAR(boosted.pvp(), base.pvp(), 0.05);
    EXPECT_GT(boosted.total(), 0u);
}

// ----------------------------------------------------- static tuner

TEST(StaticTunerTest, SpecThresholdMonotone)
{
    StaticTuner tuner;
    // Three site classes: 99% accurate, 80% accurate, 50% accurate.
    for (int i = 0; i < 99; ++i)
        tuner.record(0.99, true);
    tuner.record(0.99, false);
    for (int i = 0; i < 80; ++i)
        tuner.record(0.80, true);
    for (int i = 0; i < 20; ++i)
        tuner.record(0.80, false);
    for (int i = 0; i < 50; ++i)
        tuner.record(0.50, true);
    for (int i = 0; i < 50; ++i)
        tuner.record(0.50, false);

    const QuadrantCounts lo = tuner.quadrantsAt(0.6);
    const QuadrantCounts hi = tuner.quadrantsAt(0.9);
    EXPECT_GE(hi.spec(), lo.spec());
    EXPECT_LE(hi.sens(), lo.sens());
}

TEST(StaticTunerTest, FindsSpecTarget)
{
    StaticTuner tuner;
    for (int i = 0; i < 95; ++i)
        tuner.record(0.95, true);
    for (int i = 0; i < 5; ++i)
        tuner.record(0.95, false);
    for (int i = 0; i < 50; ++i)
        tuner.record(0.50, true);
    for (int i = 0; i < 50; ++i)
        tuner.record(0.50, false);

    const auto thr = tuner.thresholdForSpec(0.9);
    ASSERT_TRUE(thr.has_value());
    const QuadrantCounts q = tuner.quadrantsAt(*thr);
    EXPECT_GE(q.spec(), 0.9);
    // The tuner should not have gone further than needed: excluding
    // only the 50% sites already reaches SPEC 50/55 ≈ 0.91.
    EXPECT_GT(q.sens(), 0.0);
}

TEST(StaticTunerTest, FindsPvnTarget)
{
    StaticTuner tuner;
    for (int i = 0; i < 90; ++i)
        tuner.record(0.9, true);
    for (int i = 0; i < 10; ++i)
        tuner.record(0.9, false);
    for (int i = 0; i < 30; ++i)
        tuner.record(0.3, true);
    for (int i = 0; i < 70; ++i)
        tuner.record(0.3, false);

    const auto thr = tuner.thresholdForPvn(0.6);
    ASSERT_TRUE(thr.has_value());
    EXPECT_GE(tuner.quadrantsAt(*thr).pvn(), 0.6);
}

TEST(StaticTunerTest, UnreachableTargetsReturnNullopt)
{
    StaticTuner tuner;
    for (int i = 0; i < 100; ++i)
        tuner.record(0.9, true); // no mispredictions at all
    EXPECT_FALSE(tuner.thresholdForSpec(0.5).has_value());
    EXPECT_FALSE(tuner.thresholdForPvn(0.5).has_value());
}

TEST(StaticTunerTest, EndToEndOnWorkload)
{
    const Program prog = makeWorkload("compress");
    const StaticTuner tuner =
        buildStaticTuner(prog, PredictorKind::Gshare);
    EXPECT_GT(tuner.total(), 0u);

    const auto spec_thr = tuner.thresholdForSpec(0.8);
    ASSERT_TRUE(spec_thr.has_value());
    EXPECT_GE(tuner.quadrantsAt(*spec_thr).spec(), 0.8);

    // Any PVN at least the misprediction rate is reachable (threshold
    // 1.0 marks nearly everything LC).
    const QuadrantCounts all = tuner.quadrantsAt(0.0);
    const double miss_rate = all.mispredictRate();
    const auto pvn_thr = tuner.thresholdForPvn(miss_rate);
    ASSERT_TRUE(pvn_thr.has_value());
    EXPECT_GE(tuner.quadrantsAt(*pvn_thr).pvn(), miss_rate);
}

} // anonymous namespace
} // namespace confsim
