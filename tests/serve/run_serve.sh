#!/bin/sh
# Integration test of `confsim serve`: a real daemon with real worker
# processes, exercised through the public CLI only.
#
#   1. kill-worker: a worker is SIGKILLed mid-shard (injected fault);
#      the daemon retries the lost shard and the submitted grid's
#      result is byte-identical to single-process `confsim --sweep`.
#   2. restart-resume: the daemon itself is SIGKILLed mid-grid; a
#      restarted daemon recovers the job from its persisted record +
#      journal, completes only the missing shards, and the result is
#      again byte-identical.
#   3. drop-connection: the daemon truncates one response mid-line
#      (injected fault); the client reports the half-delivered
#      response as an error and the daemon keeps serving.
#   4. admission: a full queue and an exhausted per-client quota are
#      rejected with structured reasons, never queued silently.
#
# usage: run_serve.sh CONFSIM_BIN [WORKDIR]
set -eu

BIN=$1
WORK=${2:-$(mktemp -d)}
SOCK="$WORK/serve.sock"

DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

start_daemon() {
    # $1 = fault plan ('' = none), $2 = artifact dir, $3 = log file,
    # remaining = extra serve flags
    plan=$1
    art=$2
    log=$3
    shift 3
    env CONFSIM_FAULT_PLAN="$plan" \
        "$BIN" serve --socket "$SOCK" --artifact-dir "$art" \
        --workers 2 "$@" > "$log" 2>&1 &
    DAEMON_PID=$!
    for i in $(seq 1 100); do
        [ -S "$SOCK" ] && break
        sleep 0.05
    done
    [ -S "$SOCK" ] || fail "daemon did not create $SOCK"
}

stop_daemon() {
    "$BIN" shutdown --socket "$SOCK" > /dev/null
    wait "$DAEMON_PID" || fail "daemon exited nonzero"
    DAEMON_PID=""
}

cat > "$WORK/grid.json" <<'EOF'
{
  "predictor": "gshare",
  "workloads": ["compress", "go"],
  "thresholds": [8, 15],
  "shard_size": 2,
  "estimators": [
    {"label": "jrs-15", "estimator": "jrs"},
    {"estimator": "satcnt"},
    {"estimator": "pattern"},
    {"estimator": "static"}
  ]
}
EOF

# Reference: the same grid through the single-process CLI sweep.
"$BIN" --sweep "$WORK/grid.json" --jobs 0 > "$WORK/clean.json"

# --- scenario 1: SIGKILLed worker mid-shard ---------------------------
mkdir -p "$WORK/art1"
start_daemon kill-worker=1 "$WORK/art1" "$WORK/daemon1.log"
"$BIN" submit --socket "$SOCK" "$WORK/grid.json" --wait \
    > "$WORK/served1.json" \
    || fail "submit --wait failed (daemon log: $(cat "$WORK/daemon1.log"))"
grep -q "died mid-shard" "$WORK/daemon1.log" \
    || fail "the kill-worker fault never fired"
cmp "$WORK/clean.json" "$WORK/served1.json" \
    || fail "result after a worker SIGKILL differs from --sweep"
stop_daemon
echo "OK: worker SIGKILL mid-shard, byte-identical result"

# --- scenario 2: daemon SIGKILLed mid-grid, restarted -----------------
mkdir -p "$WORK/art2"
start_daemon "" "$WORK/art2" "$WORK/daemon2.log"
"$BIN" submit --socket "$SOCK" "$WORK/grid.json" > "$WORK/submit2.json"
# Wait until at least one shard landed in the shared journal, so the
# restart genuinely resumes partial work when the timing allows it.
for i in $(seq 1 200); do
    n=$(grep -ao CSJE "$WORK/art2"/sweep-*.journal 2>/dev/null \
        | wc -l)
    [ "${n:-0}" -ge 1 ] && break
    sleep 0.05
done
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
# SIGKILL leaves the socket file behind; remove it so start_daemon's
# readiness probe sees the *new* daemon's socket, not the stale one.
rm -f "$SOCK"

start_daemon "" "$WORK/art2" "$WORK/daemon3.log"
# The resubmit dedupes onto the recovered job; --wait rides it to Done.
"$BIN" submit --socket "$SOCK" "$WORK/grid.json" --wait \
    > "$WORK/served2.json" \
    || fail "resumed submit failed (daemon log: $(cat "$WORK/daemon3.log"))"
cmp "$WORK/clean.json" "$WORK/served2.json" \
    || fail "result after a daemon restart differs from --sweep"
stop_daemon
echo "OK: daemon SIGKILL + restart, byte-identical result"

# --- scenario 3: dropped client connection ----------------------------
mkdir -p "$WORK/art3"
start_daemon drop-connection=1 "$WORK/art3" "$WORK/daemon4.log"
if "$BIN" status --socket "$SOCK" > /dev/null 2> "$WORK/drop.err"; then
    fail "client accepted a half-delivered response"
fi
grep -q "full response" "$WORK/drop.err" \
    || fail "client did not report the truncated response: \
$(cat "$WORK/drop.err")"
# The daemon survives the injected drop and keeps serving.
"$BIN" status --socket "$SOCK" > /dev/null \
    || fail "daemon died after dropping one connection"
stop_daemon
echo "OK: dropped connection detected by client, daemon unaffected"

# --- scenario 4: bounded admission + quotas ---------------------------
mkdir -p "$WORK/art4"
start_daemon "" "$WORK/art4" "$WORK/daemon5.log" \
    --max-jobs 1 --max-client-jobs 1
"$BIN" submit --socket "$SOCK" "$WORK/grid.json" > /dev/null
sed 's/"compress", "go"/"compress"/' "$WORK/grid.json" \
    > "$WORK/grid-b.json"
if "$BIN" submit --socket "$SOCK" "$WORK/grid-b.json" \
        > "$WORK/quota.json" 2>&1; then
    fail "second job admitted past --max-client-jobs 1"
fi
grep -q "quota-exceeded" "$WORK/quota.json" \
    || fail "quota rejection has no structured reason"
if "$BIN" submit --socket "$SOCK" "$WORK/grid-b.json" \
        --client other > "$WORK/admission.json" 2>&1; then
    fail "second job admitted past --max-jobs 1"
fi
grep -q "admission-rejected" "$WORK/admission.json" \
    || fail "admission rejection has no structured reason"
stop_daemon
echo "OK: quota and admission rejections are structured"

echo "serve integration OK"
