/**
 * @file
 * Tests for the parallel execution layer: the thread pool, the
 * deterministic ParallelRunner, the program/profile caches, and the
 * headline guarantee — runStandardSuiteParallel is bit-identical to
 * the serial suite for every predictor kind.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "harness/experiment.hh"
#include "harness/experiment_cache.hh"
#include "harness/parallel_runner.hh"

namespace confsim
{
namespace
{

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FuturesCarryResults)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto f = pool.submit(
            []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    const auto submitter = std::this_thread::get_id();
    auto f = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_EQ(f.get(), submitter);
}

TEST(ThreadPoolTest, WorkersRunOffTheSubmittingThread)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const auto submitter = std::this_thread::get_id();
    auto f = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_NE(f.get(), submitter);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&counter] { ++counter; });
        // No get(): the destructor must still run everything queued.
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

// --------------------------------------------------------- parallel runner

TEST(ParallelRunnerTest, ResultsInSubmissionOrder)
{
    for (const unsigned jobs : {0u, 1u, 4u, 8u}) {
        ParallelRunner runner(jobs);
        const auto out = runner.map(
                200, [](std::size_t i) { return i * i; });
        ASSERT_EQ(out.size(), 200u);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(ParallelRunnerTest, FirstExceptionRethrownAfterDrain)
{
    ParallelRunner runner(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(runner.map(50,
                            [&completed](std::size_t i) -> int {
                                if (i == 7)
                                    throw std::runtime_error("task 7");
                                ++completed;
                                return 0;
                            }),
                 std::runtime_error);
    // Every non-throwing task still ran to completion.
    EXPECT_EQ(completed.load(), 49);
}

TEST(ParallelRunnerTest, EmptyMapIsFine)
{
    ParallelRunner runner(2);
    const auto out =
        runner.map(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

// ------------------------------------------------------------------ caches

class ExperimentCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearExperimentCaches(); }
    void TearDown() override { clearExperimentCaches(); }
};

TEST_F(ExperimentCacheTest, SameSpecAndConfigShareOneProgram)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig cfg;
    const auto a = cachedProgram(spec, cfg);
    const auto b = cachedProgram(spec, cfg);
    EXPECT_EQ(a.get(), b.get());
    const ExperimentCacheStats stats = experimentCacheStats();
    EXPECT_EQ(stats.programMisses, 1u);
    EXPECT_EQ(stats.programHits, 1u);
}

TEST_F(ExperimentCacheTest, DifferentSeedsBuildDifferentPrograms)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig cfg_a, cfg_b;
    cfg_b.seed = cfg_a.seed + 1;
    const auto a = cachedProgram(spec, cfg_a);
    const auto b = cachedProgram(spec, cfg_b);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(experimentCacheStats().programMisses, 2u);
}

TEST_F(ExperimentCacheTest, ProfileCacheKeyedOnPredictorKind)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig cfg;
    const auto a = cachedProfile(PredictorKind::Gshare, spec, cfg);
    const auto b = cachedProfile(PredictorKind::Gshare, spec, cfg);
    const auto c = cachedProfile(PredictorKind::SAg, spec, cfg);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    const ExperimentCacheStats stats = experimentCacheStats();
    EXPECT_EQ(stats.profileMisses, 2u);
    EXPECT_EQ(stats.profileHits, 1u);
}

TEST_F(ExperimentCacheTest, ConcurrentMissesBuildOnce)
{
    const WorkloadSpec &spec = standardWorkloads()[1];
    WorkloadConfig cfg;
    ParallelRunner runner(8);
    const auto progs = runner.map(32, [&](std::size_t) {
        return cachedProgram(spec, cfg);
    });
    for (const auto &p : progs)
        EXPECT_EQ(p.get(), progs[0].get());
    EXPECT_EQ(experimentCacheStats().programMisses, 1u);
}

// ------------------------------------------------------------- determinism

TEST(ParallelSuiteTest, BitIdenticalToSerialForEveryPredictor)
{
    ExperimentConfig cfg; // scale 1 keeps this quick
    for (const auto kind :
         {PredictorKind::Gshare, PredictorKind::McFarling,
          PredictorKind::SAg}) {
        const std::vector<WorkloadResult> serial =
            runStandardSuite(kind, cfg);
        const std::vector<WorkloadResult> parallel =
            runStandardSuiteParallel(kind, cfg, 8);

        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].workload, parallel[i].workload);
            EXPECT_TRUE(serial[i].pipe == parallel[i].pipe);
            ASSERT_EQ(serial[i].quadrants.size(),
                      parallel[i].quadrants.size());
            for (std::size_t e = 0; e < serial[i].quadrants.size();
                 ++e) {
                EXPECT_EQ(serial[i].quadrants[e],
                          parallel[i].quadrants[e]);
                EXPECT_EQ(serial[i].quadrantsAll[e],
                          parallel[i].quadrantsAll[e]);
            }
        }
    }
}

TEST(ParallelSuiteTest, RepeatedParallelRunsAreIdentical)
{
    ExperimentConfig cfg;
    const auto a =
        runStandardSuiteParallel(PredictorKind::Gshare, cfg, 8);
    const auto b =
        runStandardSuiteParallel(PredictorKind::Gshare, cfg, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].pipe == b[i].pipe);
        EXPECT_EQ(a[i].quadrants, b[i].quadrants);
    }
}

} // anonymous namespace
} // namespace confsim
