/**
 * @file
 * Tests for the parallel execution layer: the thread pool, the
 * deterministic ParallelRunner, the program/profile caches, and the
 * headline guarantee — runStandardSuiteParallel is bit-identical to
 * the serial suite for every predictor kind.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/confsim_error.hh"
#include "common/fault_injection.hh"
#include "common/thread_pool.hh"
#include "harness/experiment.hh"
#include "harness/experiment_cache.hh"
#include "harness/parallel_runner.hh"

namespace confsim
{
namespace
{

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FuturesCarryResults)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto f = pool.submit(
            []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    const auto submitter = std::this_thread::get_id();
    auto f = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_EQ(f.get(), submitter);
}

TEST(ThreadPoolTest, WorkersRunOffTheSubmittingThread)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const auto submitter = std::this_thread::get_id();
    auto f = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_NE(f.get(), submitter);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&counter] { ++counter; });
        // No get(): the destructor must still run everything queued.
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

// --------------------------------------------------------- parallel runner

TEST(ParallelRunnerTest, ResultsInSubmissionOrder)
{
    for (const unsigned jobs : {0u, 1u, 4u, 8u}) {
        ParallelRunner runner(jobs);
        const auto out = runner.map(
                200, [](std::size_t i) { return i * i; });
        ASSERT_EQ(out.size(), 200u);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(ParallelRunnerTest, ExceptionRethrownAfterDrain)
{
    ParallelRunner runner(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(runner.map(50,
                            [&completed](std::size_t i) -> int {
                                if (i == 7)
                                    throw std::runtime_error("task 7");
                                ++completed;
                                return 0;
                            }),
                 std::runtime_error);
    // Every non-throwing task still ran to completion.
    EXPECT_EQ(completed.load(), 49);
}

TEST(ParallelRunnerTest, EveryTaskErrorRetainedInAggregate)
{
    ParallelRunner runner(4);
    try {
        runner.map(10, [](std::size_t i) -> int {
            if (i % 3 == 0) // tasks 0, 3, 6, 9
                throw std::runtime_error(
                        "boom " + std::to_string(i));
            return 0;
        });
        FAIL() << "map() must throw when tasks fail";
    } catch (const ConfsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TaskFailed);
        EXPECT_EQ(e.message(), "4 of 10 tasks failed");
        ASSERT_EQ(e.context().size(), 4u);
        const std::string what = e.what();
        for (const std::size_t i : {0u, 3u, 6u, 9u}) {
            EXPECT_NE(what.find("boom " + std::to_string(i)),
                      std::string::npos)
                    << "error of task " << i << " lost: " << what;
        }
    }
}

TEST(ParallelRunnerTest, TransientFailuresRetriedToSuccess)
{
    ParallelRunner runner(0);
    RunnerPolicy policy;
    policy.maxAttempts = 3;
    policy.backoffBase = std::chrono::milliseconds(0);

    const auto outcome = runner.mapReported(
            3,
            [](TaskContext &ctx) -> int {
                if (ctx.index == 1 && ctx.attempt < 3)
                    throw ConfsimError(ErrorCode::Transient,
                                       "flaky dependency");
                return static_cast<int>(ctx.index);
            },
            policy);

    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(*outcome.results[1], 1);
    EXPECT_EQ(outcome.reports[1].attempts, 3u);
    EXPECT_EQ(outcome.reports[1].errors.size(), 2u);
    const RunnerSummary summary = outcome.summary();
    EXPECT_EQ(summary.succeeded, 3u);
    EXPECT_EQ(summary.retries, 2u);
}

TEST(ParallelRunnerTest, NonTransientFailureIsNotRetried)
{
    ParallelRunner runner(0);
    RunnerPolicy policy;
    policy.maxAttempts = 5;
    policy.backoffBase = std::chrono::milliseconds(0);

    const auto outcome = runner.mapReported(
            1,
            [](TaskContext &) -> int {
                throw ConfsimError(ErrorCode::Io, "disk gone");
            },
            policy);

    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.reports[0].status, TaskStatus::Failed);
    EXPECT_EQ(outcome.reports[0].attempts, 1u);
    EXPECT_FALSE(outcome.results[0].has_value());
}

TEST(ParallelRunnerTest, TransientRetryViaFaultPlan)
{
    // Serial execution (jobs = 0) makes attempt ordinals
    // deterministic: task 0 is ordinal 1; task 1 is ordinals 2 and 3
    // (the injected transient window) and succeeds on ordinal 4.
    FaultPlan plan;
    plan.transientTask = 2;
    plan.transientCount = 2;
    ScopedFaultPlan scoped(plan);

    ParallelRunner runner(0);
    RunnerPolicy policy;
    policy.maxAttempts = 3;
    policy.backoffBase = std::chrono::milliseconds(0);
    const auto outcome = runner.mapReported(
            3, [](TaskContext &ctx) { return ctx.index; }, policy);

    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.reports[1].attempts, 3u);
    EXPECT_EQ(outcome.summary().retries, 2u);
}

TEST(ParallelRunnerTest, FatalFailureCancelsQueuedTasks)
{
    // One worker runs tasks in submission order, so every task after
    // the injected fatal one is still queued when the flag trips.
    FaultPlan plan;
    plan.failTask = 3;
    ScopedFaultPlan scoped(plan);

    ParallelRunner runner(1);
    RunnerPolicy policy;
    policy.cancelOnFatal = true;
    const auto outcome = runner.mapReported(
            8, [](TaskContext &ctx) { return ctx.index; }, policy);

    EXPECT_FALSE(outcome.ok());
    const TaskReport &failed = outcome.reports[2];
    EXPECT_EQ(failed.status, TaskStatus::Failed);
    EXPECT_EQ(failed.attempts, 1u);
    EXPECT_GE(failed.wallMs, 0.0);
    ASSERT_EQ(failed.errors.size(), 1u);
    EXPECT_NE(failed.errors[0].find("injected fatal task fault"),
              std::string::npos);

    const RunnerSummary summary = outcome.summary();
    EXPECT_EQ(summary.succeeded, 2u);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.cancelled, 5u);
    for (const std::size_t i : {3u, 4u, 5u, 6u, 7u}) {
        EXPECT_EQ(outcome.reports[i].status, TaskStatus::Cancelled);
        EXPECT_FALSE(outcome.results[i].has_value());
    }
}

TEST(ParallelRunnerTest, WatchdogCancelsStalledTask)
{
    // The injected stall blocks on the task's cancel token, so any
    // deadline works and the test never sleeps longer than the
    // watchdog takes to fire — deterministic, not timing-tuned.
    FaultPlan plan;
    plan.stallTask = 2;
    ScopedFaultPlan scoped(plan);

    ParallelRunner runner(1);
    RunnerPolicy policy;
    policy.deadline = std::chrono::milliseconds(5);
    const auto outcome = runner.mapReported(
            3, [](TaskContext &ctx) { return ctx.index; }, policy);

    EXPECT_FALSE(outcome.ok());
    const TaskReport &stalled = outcome.reports[1];
    EXPECT_EQ(stalled.status, TaskStatus::TimedOut);
    ASSERT_GE(stalled.errors.size(), 1u);
    EXPECT_NE(stalled.errors.back().find("[timeout]"),
              std::string::npos);
    EXPECT_FALSE(outcome.results[1].has_value());
    EXPECT_TRUE(outcome.reports[0].ok());
    EXPECT_TRUE(outcome.reports[2].ok());
    EXPECT_EQ(outcome.summary().timedOut, 1u);
}

TEST(ParallelRunnerTest, BackoffIsDeterministicAndCapped)
{
    RunnerPolicy policy;
    policy.backoffBase = std::chrono::milliseconds(2);
    policy.backoffCap = std::chrono::milliseconds(8);
    // Jitter is a pure function of (seed, index, attempt): two tasks
    // with the same coordinates back off identically, and the total
    // delay never exceeds cap + jitter <= 2 * cap.
    for (unsigned attempt = 1; attempt <= 10; ++attempt) {
        const auto a =
            ParallelRunner::backoffDelay(policy, 7, attempt);
        const auto b =
            ParallelRunner::backoffDelay(policy, 7, attempt);
        EXPECT_EQ(a, b);
        EXPECT_LE(a, 2 * policy.backoffCap);
    }
}

TEST(ParallelRunnerTest, EmptyMapIsFine)
{
    ParallelRunner runner(2);
    const auto out =
        runner.map(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

// ------------------------------------------------------------------ caches

class ExperimentCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearExperimentCaches(); }
    void TearDown() override { clearExperimentCaches(); }
};

TEST_F(ExperimentCacheTest, SameSpecAndConfigShareOneProgram)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig cfg;
    const auto a = cachedProgram(spec, cfg);
    const auto b = cachedProgram(spec, cfg);
    EXPECT_EQ(a.get(), b.get());
    const ExperimentCacheStats stats = experimentCacheStats();
    EXPECT_EQ(stats.programMisses, 1u);
    EXPECT_EQ(stats.programHits, 1u);
}

TEST_F(ExperimentCacheTest, DifferentSeedsBuildDifferentPrograms)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig cfg_a, cfg_b;
    cfg_b.seed = cfg_a.seed + 1;
    const auto a = cachedProgram(spec, cfg_a);
    const auto b = cachedProgram(spec, cfg_b);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(experimentCacheStats().programMisses, 2u);
}

TEST_F(ExperimentCacheTest, ProfileCacheKeyedOnPredictorKind)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig cfg;
    const auto a = cachedProfile(PredictorKind::Gshare, spec, cfg);
    const auto b = cachedProfile(PredictorKind::Gshare, spec, cfg);
    const auto c = cachedProfile(PredictorKind::SAg, spec, cfg);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    const ExperimentCacheStats stats = experimentCacheStats();
    EXPECT_EQ(stats.profileMisses, 2u);
    EXPECT_EQ(stats.profileHits, 1u);
}

TEST_F(ExperimentCacheTest, ConcurrentMissesBuildOnce)
{
    const WorkloadSpec &spec = standardWorkloads()[1];
    WorkloadConfig cfg;
    ParallelRunner runner(8);
    const auto progs = runner.map(32, [&](std::size_t) {
        return cachedProgram(spec, cfg);
    });
    for (const auto &p : progs)
        EXPECT_EQ(p.get(), progs[0].get());
    EXPECT_EQ(experimentCacheStats().programMisses, 1u);
}

TEST_F(ExperimentCacheTest, ClearRacesConcurrentDecodedMisses)
{
    // clearExperimentCaches() while worker threads drive
    // cachedDecodedRun() misses: every returned run must be complete
    // and usable, and the suite's TSan job must stay clean. Distinct
    // seeds force real misses on both sides of each clear().
    const WorkloadSpec &spec = standardWorkloads()[0];
    PipelineConfig pipeCfg;

    std::atomic<bool> stop{false};
    std::thread clearer([&stop] {
        while (!stop.load(std::memory_order_acquire))
            clearExperimentCaches();
    });

    std::vector<std::thread> readers;
    std::atomic<int> bad{0};
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            for (int i = 0; i < 6; ++i) {
                WorkloadConfig cfg;
                cfg.seed = 0x5eed + t * 16 + i;
                const auto run = cachedDecodedRun(
                        PredictorKind::Gshare, spec, cfg, pipeCfg);
                if (!run || run->trace.size() == 0)
                    ++bad;
            }
        });
    }
    for (auto &r : readers)
        r.join();
    stop.store(true, std::memory_order_release);
    clearer.join();
    EXPECT_EQ(bad.load(), 0);
}

// ------------------------------------------------------------- determinism

TEST(ParallelSuiteTest, BitIdenticalToSerialForEveryPredictor)
{
    ExperimentConfig cfg; // scale 1 keeps this quick
    for (const auto kind :
         {PredictorKind::Gshare, PredictorKind::McFarling,
          PredictorKind::SAg}) {
        const std::vector<WorkloadResult> serial =
            runStandardSuite(kind, cfg);
        const std::vector<WorkloadResult> parallel =
            runStandardSuiteParallel(kind, cfg, 8);

        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].workload, parallel[i].workload);
            EXPECT_TRUE(serial[i].pipe == parallel[i].pipe);
            ASSERT_EQ(serial[i].quadrants.size(),
                      parallel[i].quadrants.size());
            for (std::size_t e = 0; e < serial[i].quadrants.size();
                 ++e) {
                EXPECT_EQ(serial[i].quadrants[e],
                          parallel[i].quadrants[e]);
                EXPECT_EQ(serial[i].quadrantsAll[e],
                          parallel[i].quadrantsAll[e]);
            }
        }
    }
}

TEST(ParallelSuiteTest, RepeatedParallelRunsAreIdentical)
{
    ExperimentConfig cfg;
    const auto a =
        runStandardSuiteParallel(PredictorKind::Gshare, cfg, 8);
    const auto b =
        runStandardSuiteParallel(PredictorKind::Gshare, cfg, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].pipe == b[i].pipe);
        EXPECT_EQ(a[i].quadrants, b[i].quadrants);
    }
}

} // anonymous namespace
} // namespace confsim
