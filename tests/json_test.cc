/**
 * @file
 * Unit tests for the dependency-free JSON document model: writer
 * output, strict parsing, and the bit-exact integer round trips the
 * stats serialization relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/json.hh"

namespace confsim
{
namespace
{

TEST(JsonValueTest, KindsAndAccessors)
{
    EXPECT_TRUE(JsonValue().isNull());
    EXPECT_TRUE(JsonValue(true).asBool());
    EXPECT_EQ(JsonValue(std::int64_t{-7}).asInt(), -7);
    EXPECT_EQ(JsonValue(std::uint64_t{7}).asUint(), 7u);
    EXPECT_DOUBLE_EQ(JsonValue(1.5).asDouble(), 1.5);
    EXPECT_EQ(JsonValue("hi").asString(), "hi");
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj["zebra"] = JsonValue(std::uint64_t{1});
    obj["apple"] = JsonValue(std::uint64_t{2});
    obj["mango"] = JsonValue(std::uint64_t{3});
    ASSERT_EQ(obj.members().size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "zebra");
    EXPECT_EQ(obj.members()[1].first, "apple");
    EXPECT_EQ(obj.members()[2].first, "mango");
}

TEST(JsonValueTest, FindAndContains)
{
    JsonValue obj = JsonValue::object();
    obj["key"] = JsonValue(std::uint64_t{42});
    EXPECT_TRUE(obj.contains("key"));
    EXPECT_FALSE(obj.contains("missing"));
    ASSERT_NE(obj.find("key"), nullptr);
    EXPECT_EQ(obj.find("key")->asUint(), 42u);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonDumpTest, CompactAndPretty)
{
    JsonValue obj = JsonValue::object();
    obj["a"] = JsonValue(std::uint64_t{1});
    obj["b"].push(JsonValue(true));
    EXPECT_EQ(obj.dump(0), "{\"a\":1,\"b\":[true]}");
    // Pretty dumps end with a newline so shell redirection yields a
    // well-formed text file.
    EXPECT_EQ(obj.dump(2),
              "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}\n");
}

TEST(JsonDumpTest, StringEscapes)
{
    JsonValue v(std::string("a\"b\\c\n\t\x01"));
    EXPECT_EQ(v.dump(0), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonDumpTest, DoublesKeepMarker)
{
    // A fraction-free double must still read back as a double.
    EXPECT_EQ(JsonValue(2.0).dump(0), "2.0");
    const JsonValue back = JsonValue::parse(JsonValue(2.0).dump(0));
    EXPECT_EQ(back.kind(), JsonValue::Kind::Double);
}

TEST(JsonParseTest, Scalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool(true));
    EXPECT_EQ(JsonValue::parse("123").kind(), JsonValue::Kind::Uint);
    EXPECT_EQ(JsonValue::parse("-123").kind(), JsonValue::Kind::Int);
    EXPECT_EQ(JsonValue::parse("1.25").kind(), JsonValue::Kind::Double);
    EXPECT_EQ(JsonValue::parse("1e3").kind(), JsonValue::Kind::Double);
    EXPECT_EQ(JsonValue::parse("\"s\"").asString(), "s");
}

TEST(JsonParseTest, Uint64MaxRoundTripsBitExactly)
{
    const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
    const JsonValue v(big);
    const JsonValue back = JsonValue::parse(v.dump(0));
    EXPECT_EQ(back.kind(), JsonValue::Kind::Uint);
    EXPECT_EQ(back.asUint(), big);
}

TEST(JsonParseTest, Int64MinRoundTripsBitExactly)
{
    const std::int64_t small = std::numeric_limits<std::int64_t>::min();
    const JsonValue back = JsonValue::parse(JsonValue(small).dump(0));
    EXPECT_EQ(back.kind(), JsonValue::Kind::Int);
    EXPECT_EQ(back.asInt(), small);
}

TEST(JsonParseTest, NestedDocumentRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc["stats"]["pipeline"]["cycles"] =
        JsonValue(std::uint64_t{123456789});
    doc["list"].push(JsonValue(std::uint64_t{1}));
    doc["list"].push(JsonValue("two"));
    doc["list"].push(JsonValue::object());
    for (int indent : {0, 2, 4}) {
        std::string err;
        const JsonValue back = JsonValue::parse(doc.dump(indent), &err);
        EXPECT_TRUE(err.empty()) << err;
        EXPECT_EQ(back, doc) << "indent=" << indent;
    }
}

TEST(JsonParseTest, UnicodeEscapes)
{
    const JsonValue v = JsonValue::parse("\"\\u0041\\u00e9\\u20ac\"");
    EXPECT_EQ(v.asString(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParseTest, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.",
          "\"unterminated", "{\"a\":1} extra", "[1 2]", "+1", "nan"}) {
        std::string err;
        JsonValue::parse(bad, &err);
        EXPECT_FALSE(err.empty()) << "accepted: " << bad;
    }
}

TEST(JsonParseTest, ReportsErrorOffset)
{
    std::string err;
    JsonValue::parse("{\"a\": tru}", &err);
    EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(JsonParseTest, DepthLimitStopsRunawayNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    std::string err;
    JsonValue::parse(deep, &err);
    EXPECT_FALSE(err.empty());
}

TEST(JsonEqualityTest, NumericKindsCompareByValue)
{
    EXPECT_EQ(JsonValue(std::uint64_t{5}), JsonValue(std::int64_t{5}));
    EXPECT_EQ(JsonValue(std::uint64_t{5}), JsonValue(5.0));
    EXPECT_FALSE(JsonValue(std::uint64_t{5}) == JsonValue(std::uint64_t{6}));
    EXPECT_FALSE(JsonValue(std::uint64_t{5}) == JsonValue("5"));
}

} // anonymous namespace
} // namespace confsim
