/**
 * Synthetic workload generator tests: preset registry, strict JSON
 * parsing, counter-based seekability (any chunk of the stream matches
 * the same branches generated from index zero), statistical knob
 * fidelity, streamed-vs-materialized replay equality across chunk
 * boundaries, and sampled synthetic CIs containing the full-streamed
 * ground truth.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "confidence/jrs.hh"
#include "harness/sampled_replay.hh"
#include "harness/synthetic_workload.hh"
#include "sweep/batch_replayer.hh"
#include "sweep/decoded_trace.hh"
#include "sweep/sampling.hh"

namespace confsim
{
namespace
{

JsonValue
parseJson(const std::string &text)
{
    std::string error;
    JsonValue v = JsonValue::parse(text, &error);
    if (!error.empty())
        throw std::runtime_error("bad test JSON: " + error);
    return v;
}

void
attachLanes(BatchReplayer &replayer)
{
    replayer.attachJrs(JrsConfig{}, true);
    replayer.attachSatCounters(SatCountersVariant::Selected);
    replayer.attachPattern();
}

// ------------------------------------------------------ registry

TEST(SyntheticPresetTest, RegistryIsCompleteAndLookupWorks)
{
    const auto &presets = syntheticPresets();
    ASSERT_FALSE(presets.empty());
    std::vector<std::string> names;
    for (const SyntheticScenario &p : presets) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.branches, 0u);
        names.push_back(p.name);
        SyntheticScenario found;
        ASSERT_TRUE(findSyntheticPreset(p.name, found)) << p.name;
        EXPECT_TRUE(found == p);
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()),
              names.end())
            << "duplicate preset names";
    for (const char *expected :
         {"iid", "clustered", "biased", "high-entropy", "loopy",
          "phased", "mixed"})
        EXPECT_TRUE(std::find(names.begin(), names.end(),
                              std::string(expected))
                    != names.end())
                << expected;

    SyntheticScenario out;
    EXPECT_FALSE(findSyntheticPreset("nosuchpreset", out));
}

// ---------------------------------------------------------- JSON

TEST(SyntheticJsonTest, RoundTripAndPresetOverride)
{
    SyntheticScenario s;
    s.name = "custom";
    s.branches = 123456;
    s.sites = 97;
    s.accuracy = 0.83;
    s.entropy = 0.1;
    s.correlationDepth = 7;
    s.phases = 3;
    s.phaseSwing = 0.04;
    s.burstFraction = 0.02;
    s.seed = 42;

    SyntheticScenario back;
    std::string error;
    ASSERT_TRUE(syntheticScenarioFromJson(syntheticScenarioToJson(s),
                                          back, &error))
            << error;
    EXPECT_TRUE(back == s);

    // "preset" selects the base; later keys override it.
    SyntheticScenario fromPreset;
    ASSERT_TRUE(syntheticScenarioFromJson(
            parseJson("{\"preset\": \"biased\", \"branches\": 5000,"
                      " \"seed\": 9}"),
            fromPreset, &error))
            << error;
    SyntheticScenario biased;
    ASSERT_TRUE(findSyntheticPreset("biased", biased));
    EXPECT_EQ(fromPreset.branches, 5000u);
    EXPECT_EQ(fromPreset.seed, 9u);
    EXPECT_EQ(fromPreset.sites, biased.sites);
    EXPECT_EQ(fromPreset.accuracy, biased.accuracy);
    EXPECT_EQ(fromPreset.name, biased.name);
}

TEST(SyntheticJsonTest, StrictValidationRejectsBadScenarios)
{
    const char *bad[] = {
        "{\"nosuchknob\": 1}",
        "{\"preset\": \"nosuchpreset\"}",
        "{\"branches\": 0}",
        "{\"sites\": 0}",
        "{\"accuracy\": 1.5}",
        "{\"entropy\": 0.6, \"loop_fraction\": 0.3,"
        " \"call_mix\": 0.2}", // fractions sum past 1
        "{\"history_bits\": 0}",
        "{\"history_bits\": 33}",
        "{\"branches\": \"many\"}", // type mismatch
    };
    for (const char *text : bad) {
        SyntheticScenario s;
        std::string error;
        EXPECT_FALSE(syntheticScenarioFromJson(parseJson(text), s,
                                               &error))
                << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

// ------------------------------------------------- seekability

TEST(SyntheticGeneratorTest, ChunksAreDeterministicAndSeekable)
{
    SyntheticScenario scn;
    ASSERT_TRUE(findSyntheticPreset("mixed", scn));
    scn.branches = 60000;
    const SyntheticWorkloadGenerator gen(scn);

    const auto whole = gen.chunk(0, scn.branches);
    ASSERT_EQ(whole->flags.size(), scn.branches);
    ASSERT_EQ(whole->schedule.size(), 2 * scn.branches);

    // Regeneration is bit-identical.
    const auto again = gen.chunk(0, scn.branches);
    for (std::uint64_t i = 0; i < scn.branches; ++i) {
        ASSERT_EQ(whole->flags[i], again->flags[i]) << i;
        ASSERT_EQ(whole->pc[i], again->pc[i]) << i;
    }

    // A mid-stream chunk equals the same branches of the whole run —
    // the rolling global history must reconstruct exactly at the seek
    // point. The chosen offset is deliberately "odd".
    const std::uint64_t b0 = 31337, b1 = b0 + 4096;
    const auto piece = gen.chunk(b0, b1);
    ASSERT_EQ(piece->flags.size(), b1 - b0);
    for (std::uint64_t i = 0; i < b1 - b0; ++i) {
        const std::uint64_t g = b0 + i;
        ASSERT_EQ(piece->flags[i], whole->flags[g]) << g;
        ASSERT_EQ(piece->pc[i], whole->pc[g]) << g;
        ASSERT_EQ(piece->info[i].predTaken, whole->info[g].predTaken);
        ASSERT_EQ(piece->info[i].globalHistory,
                  whole->info[g].globalHistory)
                << g;
        ASSERT_EQ(piece->info[i].globalHistoryBits,
                  whole->info[g].globalHistoryBits);
    }
    ASSERT_EQ(piece->channels.size(), whole->channels.size());
    for (std::size_t c = 0; c < whole->channels.size(); ++c) {
        EXPECT_EQ(piece->channels[c].name, whole->channels[c].name);
        for (std::uint64_t i = 0; i < b1 - b0; ++i)
            ASSERT_EQ(piece->channels[c].value(i),
                      whole->channels[c].value(b0 + i))
                    << whole->channels[c].name << " @" << (b0 + i);
    }

    // End clamped to the stream.
    const auto tail = gen.chunk(scn.branches - 10, scn.branches + 50);
    EXPECT_EQ(tail->flags.size(), 10u);
}

TEST(SyntheticGeneratorTest, AccuracyKnobControlsCorrectFraction)
{
    SyntheticScenario scn; // defaults off: plain iid-style population
    scn.branches = 400000;
    scn.entropy = 0.0;
    scn.loopFraction = 0.0;
    scn.callMix = 0.0;
    scn.accuracy = 0.90;
    const SyntheticWorkloadGenerator gen(scn);
    const auto trace = gen.chunk(0, scn.branches);
    std::uint64_t correct = 0;
    for (const std::uint8_t f : trace->flags)
        correct += (f & DecodedTrace::FLAG_CORRECT) != 0;
    const double fraction =
        static_cast<double>(correct) / static_cast<double>(scn.branches);
    EXPECT_NEAR(fraction, 0.90, 0.01);
}

// --------------------------------------------- streamed replay

TEST(SyntheticStreamTest, StreamedReplayEqualsMaterializedAcrossChunks)
{
    SyntheticScenario scn;
    ASSERT_TRUE(findSyntheticPreset("clustered", scn));
    // Just past one SyntheticOpSource chunk, so the streamed replay
    // crosses a chunk boundary mid-run.
    scn.branches = SyntheticOpSource::CHUNK_BRANCHES + 50000;

    SyntheticOpSource source(scn);
    std::uint64_t local = 0, covered = 0;
    BatchReplayer streamed(source.cover(0, 2, local, covered));
    attachLanes(streamed);
    std::string error;
    ASSERT_TRUE(runFullReplayStreamed(streamed, source, &error))
            << error;

    const auto whole =
        source.generator().chunk(0, scn.branches);
    BatchReplayer materialized(whole);
    attachLanes(materialized);
    ASSERT_TRUE(materialized.run(&error)) << error;

    for (unsigned lane = 0; lane < 3; ++lane) {
        EXPECT_EQ(streamed.committed(lane), materialized.committed(lane))
                << "lane " << lane;
        EXPECT_EQ(streamed.all(lane), materialized.all(lane));
        EXPECT_EQ(streamed.estimatorStats(lane).estimates,
                  materialized.estimatorStats(lane).estimates);
        EXPECT_EQ(streamed.estimatorStats(lane).lowEstimates,
                  materialized.estimatorStats(lane).lowEstimates);
    }
    ASSERT_TRUE(streamed.hasLevels(0));
    for (unsigned t : {0u, 4u, 8u, 12u, 16u})
        EXPECT_EQ(streamed.levels(0).atThresholdGe(t),
                  materialized.levels(0).atThresholdGe(t));
}

TEST(SyntheticStreamTest, SampledIntervalsContainStreamedGroundTruth)
{
    SyntheticScenario scn;
    ASSERT_TRUE(findSyntheticPreset("mixed", scn));
    scn.branches = 2000000;

    SyntheticOpSource truthSource(scn);
    std::uint64_t local = 0, covered = 0;
    BatchReplayer truth(truthSource.cover(0, 2, local, covered));
    attachLanes(truth);
    std::string error;
    ASSERT_TRUE(runFullReplayStreamed(truth, truthSource, &error))
            << error;

    // Deep functional warm-up: the JRS lane's interval brackets
    // sampling error only, so the table must be near its trained
    // state when each window opens.
    SamplingPlan plan;
    plan.windowOps = 16384;
    plan.strideOps = 131072;
    plan.warmupOps = 16384;
    SyntheticOpSource source(scn);
    BatchReplayer sampled(source.cover(0, 2, local, covered));
    attachLanes(sampled);
    std::vector<SampledLaneStats> stats;
    ASSERT_TRUE(runSampledReplay(sampled, source, plan, stats, &error))
            << error;

    ASSERT_EQ(stats.size(), 3u);
    for (unsigned lane = 0; lane < 3; ++lane) {
        const QuadrantCounts &q = truth.committed(lane);
        const SampledLaneStats &s = stats[lane];
        EXPECT_GT(s.windows, 16u);
        EXPECT_GT(s.opsSkipped, s.opsDetailed);
        const struct
        {
            const char *name;
            const SampledMetric *metric;
            double value;
        } checks[] = {
            {"mispredict", &s.mispredictRate, q.mispredictRate()},
            {"sens", &s.sens, q.sens()},
            {"spec", &s.spec, q.spec()},
            {"pvp", &s.pvp, q.pvp()},
            {"pvn", &s.pvn, q.pvn()},
        };
        for (const auto &c : checks) {
            ASSERT_TRUE(c.metric->defined())
                    << "lane " << lane << " " << c.name;
            EXPECT_TRUE(c.metric->contains(c.value))
                    << "lane " << lane << " " << c.name << ": truth "
                    << c.value << " outside " << c.metric->mean
                    << " +/- " << c.metric->halfWidth;
        }
    }
}

} // namespace
} // namespace confsim
