/**
 * @file
 * Tests for the fault-tolerance layer: XXH64 checksums, structured
 * ConfsimError, fault-plan parsing, the checksummed artifact store
 * (framing, corruption quarantine, torn writes), the sweep checkpoint
 * journal (recovery, torn-tail truncation, foreign-grid rejection),
 * and the artifact-backed recorded-run cache's regeneration paths.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/checksum.hh"
#include "common/confsim_error.hh"
#include "common/fault_injection.hh"
#include "harness/artifact_store.hh"
#include "harness/decoded_artifact.hh"
#include "harness/experiment_cache.hh"
#include "harness/sweep.hh"
#include "harness/sweep_journal.hh"
#include "sweep/decoded_trace.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

// ---------------------------------------------------------------- checksum

TEST(ChecksumTest, KnownVectors)
{
    // Reference digests of the XXH64 specification (seed 0).
    EXPECT_EQ(xxhash64("", 0), 0xef46db3751d8e999ull);
    EXPECT_EQ(xxhash64("a", 1), 0xd24ec4f1a98c6e5bull);
    EXPECT_EQ(xxhash64("abc", 3), 0x44bc2cf5ad770999ull);
    const std::string long_input(
            "Nobody inspects the spammish repetition");
    EXPECT_EQ(xxhash64(long_input.data(), long_input.size()),
              0xfbcea83c8a378bf1ull);
}

TEST(ChecksumTest, SeedChangesDigest)
{
    const std::string s = "confsim";
    EXPECT_NE(xxhash64(s.data(), s.size(), 0),
              xxhash64(s.data(), s.size(), 1));
}

TEST(ChecksumTest, EveryByteMatters)
{
    std::string s(100, '\0');
    for (std::size_t i = 0; i < s.size(); ++i)
        s[i] = static_cast<char>(i * 7 + 1);
    const std::uint64_t base = xxhash64(s.data(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        std::string flipped = s;
        flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
        EXPECT_NE(xxhash64(flipped.data(), flipped.size()), base)
                << "flip at offset " << i << " went undetected";
    }
}

TEST(ChecksumTest, HexDigestIsFixedWidth)
{
    EXPECT_EQ(hexDigest(0), "0000000000000000");
    EXPECT_EQ(hexDigest(0xdeadbeefull), "00000000deadbeef");
    EXPECT_EQ(hexDigest(~0ull), "ffffffffffffffff");
}

// ------------------------------------------------------------ ConfsimError

TEST(ConfsimErrorTest, CarriesCodeMessageAndContext)
{
    ConfsimError e(ErrorCode::CorruptArtifact, "bad frame");
    e.addContext("load recorded run").addContext("sweep shard 3");
    EXPECT_EQ(e.code(), ErrorCode::CorruptArtifact);
    EXPECT_EQ(e.message(), "bad frame");
    ASSERT_EQ(e.context().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("[corrupt-artifact]"), std::string::npos);
    EXPECT_NE(what.find("bad frame"), std::string::npos);
    EXPECT_NE(what.find("load recorded run"), std::string::npos);
    EXPECT_NE(what.find("sweep shard 3"), std::string::npos);
}

TEST(ConfsimErrorTest, IsARuntimeError)
{
    // Pre-existing catch (const std::runtime_error &) sites keep
    // working.
    try {
        throw ConfsimError(ErrorCode::Io, "disk gone");
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("disk gone"),
                  std::string::npos);
    }
}

TEST(ConfsimErrorTest, CodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Io), "io");
    EXPECT_STREQ(errorCodeName(ErrorCode::Transient), "transient");
    EXPECT_STREQ(errorCodeName(ErrorCode::TaskFailed), "task-failed");
}

// -------------------------------------------------------------- fault plan

TEST(FaultPlanTest, ParsesFullSpec)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(parseFaultPlan("flip-artifact-read=2,"
                               "truncate-artifact-write=1,"
                               "flip-trace-read=4,fail-task=3,"
                               "transient-task=5:2,stall-task=6",
                               plan, &error))
            << error;
    EXPECT_EQ(plan.flipArtifactRead, 2u);
    EXPECT_EQ(plan.truncateArtifactWrite, 1u);
    EXPECT_EQ(plan.flipTraceRead, 4u);
    EXPECT_EQ(plan.failTask, 3u);
    EXPECT_EQ(plan.transientTask, 5u);
    EXPECT_EQ(plan.transientCount, 2u);
    EXPECT_EQ(plan.stallTask, 6u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(parseFaultPlan("bogus-fault=1", plan, &error));
    EXPECT_FALSE(parseFaultPlan("fail-task", plan, &error));
    EXPECT_FALSE(parseFaultPlan("fail-task=x", plan, &error));
    EXPECT_FALSE(parseFaultPlan("fail-task=", plan, &error));
    EXPECT_FALSE(parseFaultPlan("transient-task=1:0", plan, &error));
    EXPECT_FALSE(parseFaultPlan("fail-task=99999999999999999999999",
                                plan, &error));
    // Empty items (stray/trailing commas) are tolerated by design.
    EXPECT_TRUE(parseFaultPlan("fail-task=1,,", plan, &error));
}

TEST(FaultPlanTest, HooksAreNoOpsWhenDisarmed)
{
    FaultInjector::instance().disarm();
    std::string bytes = "untouched";
    FaultInjector::instance().onArtifactRead(bytes);
    FaultInjector::instance().onArtifactWrite(bytes);
    FaultInjector::instance().onTraceFileRead(bytes);
    EXPECT_EQ(bytes, "untouched");
    EXPECT_EQ(FaultInjector::instance().onTaskAttempt(),
              TaskFault::None);
}

// ---------------------------------------------------------- artifact store

class ArtifactStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path()
              / ("confsim-store-test-"
                 + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::filesystem::path dir;
};

TEST_F(ArtifactStoreTest, StoreThenLoadRoundTrips)
{
    ArtifactStore store(dir.string());
    const std::string payload("the payload\0with a nul inside", 29);
    ASSERT_TRUE(store.store("kind", "key-1", payload));
    std::string loaded;
    ASSERT_TRUE(store.load("kind", "key-1", loaded));
    EXPECT_EQ(loaded, payload);
    const ArtifactStoreStats s = store.stats();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.corruptArtifacts, 0u);
}

TEST_F(ArtifactStoreTest, MissingArtifactIsAMiss)
{
    ArtifactStore store(dir.string());
    std::string payload;
    EXPECT_FALSE(store.load("kind", "no-such-key", payload));
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST_F(ArtifactStoreTest, EveryCorruptByteIsQuarantinedNotTrusted)
{
    ArtifactStore store(dir.string());
    ASSERT_TRUE(store.store("kind", "key", "payload-bytes"));
    const std::string path = store.artifactPath("kind", "key");
    std::string good;
    {
        std::ifstream in(path, std::ios::binary);
        good.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }

    for (std::size_t off = 0; off < good.size(); ++off) {
        std::string bad = good;
        bad[off] = static_cast<char>(bad[off] ^ 0xff);
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(bad.data(),
                      static_cast<std::streamsize>(bad.size()));
        }
        std::string loaded;
        EXPECT_FALSE(store.load("kind", "key", loaded))
                << "corrupt byte at offset " << off
                << " loaded as valid";
        // The bad frame was quarantined, never deleted silently while
        // valid — and never left in place to be re-read.
        EXPECT_FALSE(std::filesystem::exists(path));
        std::filesystem::remove(path + ".corrupt");
    }
    const ArtifactStoreStats s = store.stats();
    EXPECT_EQ(s.corruptArtifacts, good.size());
    EXPECT_EQ(s.quarantined, good.size());
    EXPECT_EQ(s.hits, 0u);
}

TEST_F(ArtifactStoreTest, TruncatedFrameIsAMissAtEveryLength)
{
    ArtifactStore store(dir.string());
    ASSERT_TRUE(store.store("kind", "key", "some payload data"));
    const std::string path = store.artifactPath("kind", "key");
    std::string good;
    {
        std::ifstream in(path, std::ios::binary);
        good.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    for (std::size_t len = 0; len < good.size(); ++len) {
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(good.data(),
                      static_cast<std::streamsize>(len));
        }
        std::string loaded;
        EXPECT_FALSE(store.load("kind", "key", loaded))
                << "truncation to " << len << " bytes loaded";
        std::filesystem::remove(path + ".corrupt");
    }
}

TEST_F(ArtifactStoreTest, HashCollisionDegradesToAMiss)
{
    // Force a "collision" by renaming one key's artifact onto
    // another key's path: the stored full key no longer matches the
    // requested one, so load() must miss, not return the wrong data.
    ArtifactStore store(dir.string());
    ASSERT_TRUE(store.store("kind", "key-a", "payload A"));
    std::filesystem::rename(store.artifactPath("kind", "key-a"),
                            store.artifactPath("kind", "key-b"));
    std::string loaded;
    EXPECT_FALSE(store.load("kind", "key-b", loaded));
}

TEST_F(ArtifactStoreTest, InjectedReadFlipIsCaught)
{
    ArtifactStore store(dir.string());
    ASSERT_TRUE(store.store("kind", "key", "payload"));

    FaultPlan plan;
    plan.flipArtifactRead = 1;
    ScopedFaultPlan scoped(plan);

    std::string loaded;
    EXPECT_FALSE(store.load("kind", "key", loaded));
    EXPECT_EQ(store.stats().corruptArtifacts, 1u);

    // The fault fired once; a rebuilt artifact loads cleanly again.
    ASSERT_TRUE(store.store("kind", "key", "payload"));
    ASSERT_TRUE(store.load("kind", "key", loaded));
    EXPECT_EQ(loaded, "payload");
}

TEST_F(ArtifactStoreTest, InjectedTornWriteNeverServesHalfAFrame)
{
    ArtifactStore store(dir.string());
    {
        FaultPlan plan;
        plan.truncateArtifactWrite = 1;
        ScopedFaultPlan scoped(plan);
        // The torn frame still lands on disk (the write itself
        // succeeds) — the *next* load must reject it.
        ASSERT_TRUE(store.store("kind", "key", "full payload"));
    }
    std::string loaded;
    EXPECT_FALSE(store.load("kind", "key", loaded));
    EXPECT_EQ(store.stats().corruptArtifacts, 1u);
}

// ------------------------------------------------- mmap-able container

/** Two small sections with recognizable bytes + a meta blob. */
std::vector<std::pair<const void *, std::uint64_t>>
sampleSections(const std::string &a, const std::string &b)
{
    return {{a.data(), a.size()}, {b.data(), b.size()}};
}

TEST_F(ArtifactStoreTest, MappedStoreThenLoadRoundTrips)
{
    ArtifactStore store(dir.string());
    const std::string a("column A bytes");
    const std::string b("column B\0with a nul", 19);
    ASSERT_TRUE(store.storeMapped("kind", "key", "{\"meta\":1}",
                                  sampleSections(a, b)));

    ArtifactStore::MappedArtifact art;
    ASSERT_TRUE(store.loadMapped("kind", "key", art));
    EXPECT_EQ(art.meta, "{\"meta\":1}");
    ASSERT_EQ(art.sections.size(), 2u);
    EXPECT_EQ(std::string(reinterpret_cast<const char *>(
                                  art.sections[0].data),
                          art.sections[0].size),
              a);
    EXPECT_EQ(std::string(reinterpret_cast<const char *>(
                                  art.sections[1].data),
                          art.sections[1].size),
              b);
    // Sections sit at 64-byte-aligned file offsets, and the mapping
    // is page-aligned, so the views cast to any column type.
    for (const auto &sec : art.sections)
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(sec.data) % 64,
                  0u);
    const ArtifactStoreStats s = store.stats();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.corruptArtifacts, 0u);
}

TEST_F(ArtifactStoreTest, MappedEveryCorruptByteIsAMiss)
{
    // Flip every byte of the container — header fields, section
    // table, key, meta, alignment padding, payload — one at a time;
    // each single-byte lie must be caught, quarantined and reported
    // as a miss. No byte of the file is outside some check.
    ArtifactStore store(dir.string());
    const std::string a("0123456789");
    const std::string b("abcdefghij");
    ASSERT_TRUE(store.storeMapped("kind", "key", "meta-blob",
                                  sampleSections(a, b)));
    const std::string path = store.mappedArtifactPath("kind", "key");
    std::string good;
    {
        std::ifstream in(path, std::ios::binary);
        good.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }

    for (std::size_t off = 0; off < good.size(); ++off) {
        std::string bad = good;
        bad[off] = static_cast<char>(bad[off] ^ 0xff);
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(bad.data(),
                      static_cast<std::streamsize>(bad.size()));
        }
        ArtifactStore::MappedArtifact art;
        EXPECT_FALSE(store.loadMapped("kind", "key", art))
                << "corrupt byte at offset " << off
                << " mapped as valid";
        EXPECT_FALSE(std::filesystem::exists(path))
                << "corrupt file left in place at offset " << off;
        std::filesystem::remove(path + ".corrupt");
    }
    const ArtifactStoreStats s = store.stats();
    EXPECT_EQ(s.corruptArtifacts, good.size());
    EXPECT_EQ(s.quarantined, good.size());
    EXPECT_EQ(s.hits, 0u);
}

TEST_F(ArtifactStoreTest, MappedTruncationIsAMissAtEveryLength)
{
    ArtifactStore store(dir.string());
    const std::string a("section data here");
    const std::string b("more section data");
    ASSERT_TRUE(store.storeMapped("kind", "key", "meta",
                                  sampleSections(a, b)));
    const std::string path = store.mappedArtifactPath("kind", "key");
    std::string good;
    {
        std::ifstream in(path, std::ios::binary);
        good.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    for (std::size_t len = 0; len < good.size(); ++len) {
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(good.data(),
                      static_cast<std::streamsize>(len));
        }
        ArtifactStore::MappedArtifact art;
        EXPECT_FALSE(store.loadMapped("kind", "key", art))
                << "truncation to " << len << " bytes mapped";
        std::filesystem::remove(path + ".corrupt");
    }
}

TEST_F(ArtifactStoreTest, MappedForeignEndiannessIsRejected)
{
    // The endian tag is written natively; a foreign-endian writer's
    // file shows the tag bytes reversed. Simulate one by reversing
    // the 4 tag bytes in place — everything else intact.
    ArtifactStore store(dir.string());
    const std::string a("payload");
    ASSERT_TRUE(store.storeMapped("kind", "key", "meta",
                                  {{a.data(), a.size()}}));
    const std::string path = store.mappedArtifactPath("kind", "key");
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GE(bytes.size(), 12u);
    std::swap(bytes[8], bytes[11]);
    std::swap(bytes[9], bytes[10]);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    ArtifactStore::MappedArtifact art;
    EXPECT_FALSE(store.loadMapped("kind", "key", art));
    EXPECT_EQ(store.stats().corruptArtifacts, 1u);
    EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST_F(ArtifactStoreTest, MappedMissingFileIsAPlainMiss)
{
    ArtifactStore store(dir.string());
    ArtifactStore::MappedArtifact art;
    EXPECT_FALSE(store.loadMapped("kind", "absent", art));
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().corruptArtifacts, 0u);
}

// ------------------------------------------------ artifact-backed rebuilds

class RecordedArtifactTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path()
              / ("confsim-recorded-test-"
                 + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        clearExperimentCaches();
        setGlobalArtifactStore(
                std::make_shared<ArtifactStore>(dir.string()));
    }

    void
    TearDown() override
    {
        setGlobalArtifactStore(nullptr);
        clearExperimentCaches();
        std::filesystem::remove_all(dir);
    }

    std::filesystem::path dir;
};

TEST_F(RecordedArtifactTest, SpillReloadAndCorruptionRecovery)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig wl;
    PipelineConfig pipe;

    // Cold: live simulation, spilled to disk.
    const auto cold =
        cachedRecordedRun(PredictorKind::Gshare, spec, wl, pipe);
    const auto store = globalArtifactStore();
    ASSERT_TRUE(store != nullptr);
    EXPECT_EQ(store->stats().stores, 1u);

    // Warm (fresh in-memory cache): served from the artifact,
    // bit-identical to the live build.
    clearExperimentCaches();
    const auto warm =
        cachedRecordedRun(PredictorKind::Gshare, spec, wl, pipe);
    EXPECT_EQ(store->stats().hits, 1u);
    EXPECT_EQ(warm->trace, cold->trace);
    EXPECT_TRUE(warm->pipe == cold->pipe);
    EXPECT_EQ(warm->statsSubtree.dump(), cold->statsSubtree.dump());
    EXPECT_EQ(warm->configSubtree.dump(),
              cold->configSubtree.dump());

    // Corrupt the artifact on disk: the next build quarantines it and
    // regenerates from live simulation with identical results.
    std::string artifact;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".art")
            artifact = entry.path().string();
    }
    ASSERT_FALSE(artifact.empty());
    {
        std::fstream f(artifact, std::ios::binary | std::ios::in
                                     | std::ios::out);
        f.seekp(10);
        f.put(static_cast<char>(0xff));
    }
    clearExperimentCaches();
    const auto regen =
        cachedRecordedRun(PredictorKind::Gshare, spec, wl, pipe);
    EXPECT_GE(store->stats().corruptArtifacts, 1u);
    EXPECT_GE(store->stats().quarantined, 1u);
    EXPECT_EQ(regen->trace, cold->trace);
    EXPECT_TRUE(regen->pipe == cold->pipe);
}

/** Byte-level equality of two decoded traces, column by column. */
template <typename T>
void
expectColumnEq(const ColumnView<T> &a, const ColumnView<T> &b,
               const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)),
              0)
            << what;
}

void
expectDecodedTraceEq(const DecodedTrace &a, const DecodedTrace &b)
{
    EXPECT_EQ(a.meta, b.meta);
    expectColumnEq(a.pc, b.pc, "pc");
    expectColumnEq(a.info, b.info, "info");
    expectColumnEq(a.flags, b.flags, "flags");
    expectColumnEq(a.fetchCycle, b.fetchCycle, "fetchCycle");
    expectColumnEq(a.resolveCycle, b.resolveCycle, "resolveCycle");
    expectColumnEq(a.schedule, b.schedule, "schedule");
    expectColumnEq(a.preciseDistAll, b.preciseDistAll,
                   "preciseDistAll");
    expectColumnEq(a.preciseDistCommitted, b.preciseDistCommitted,
                   "preciseDistCommitted");
    expectColumnEq(a.perceivedDistAll, b.perceivedDistAll,
                   "perceivedDistAll");
    expectColumnEq(a.perceivedDistCommitted,
                   b.perceivedDistCommitted,
                   "perceivedDistCommitted");
    EXPECT_TRUE(a.counters == b.counters);
    ASSERT_EQ(a.channels.size(), b.channels.size());
    for (std::size_t c = 0; c < a.channels.size(); ++c) {
        EXPECT_EQ(a.channels[c].name, b.channels[c].name);
        EXPECT_EQ(a.channels[c].width, b.channels[c].width);
        EXPECT_EQ(a.channels[c].levelMax, b.channels[c].levelMax);
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a.channels[c].value(i), b.channels[c].value(i))
                    << a.channels[c].name << " [" << i << "]";
        }
    }
}

TEST_F(RecordedArtifactTest, DecodedSpillMmapReloadAndRecovery)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig wl;
    PipelineConfig pipe;

    // Cold: live simulation + decode, columns spilled to the
    // mmap-able container (alongside the recorded-run frame).
    const auto cold =
        cachedDecodedRun(PredictorKind::Gshare, spec, wl, pipe);
    const auto store = globalArtifactStore();
    ASSERT_TRUE(store != nullptr);
    EXPECT_EQ(store->stats().stores, 2u); // recorded + decoded
    EXPECT_TRUE(cold->trace.backing == nullptr);

    // Warm (fresh in-memory cache): the decoded columns come straight
    // off the mapping — zero-copy (backing held), with *no* recorded-
    // run rebuild, varint decode or plugin derivation on the path.
    clearExperimentCaches();
    const auto warm =
        cachedDecodedRun(PredictorKind::Gshare, spec, wl, pipe);
    EXPECT_TRUE(warm->trace.backing != nullptr);
    const ExperimentCacheStats warmStats = experimentCacheStats();
    EXPECT_EQ(warmStats.recordedMisses, 0u);
    EXPECT_EQ(warmStats.recordedHits, 0u);
    expectDecodedTraceEq(warm->trace, cold->trace);
    EXPECT_TRUE(warm->pipe == cold->pipe);
    EXPECT_EQ(warm->statsSubtree.dump(), cold->statsSubtree.dump());
    EXPECT_EQ(warm->configSubtree.dump(),
              cold->configSubtree.dump());

    // Corrupt the .cart container: the next build quarantines it,
    // regenerates bit-identically from the recorded trace, and
    // re-spills.
    std::string cart;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".cart")
            cart = entry.path().string();
    }
    ASSERT_FALSE(cart.empty());
    {
        std::fstream f(cart, std::ios::binary | std::ios::in
                                 | std::ios::out);
        f.seekp(100);
        f.put(static_cast<char>(0xff));
    }
    clearExperimentCaches();
    const auto regen =
        cachedDecodedRun(PredictorKind::Gshare, spec, wl, pipe);
    EXPECT_GE(store->stats().corruptArtifacts, 1u);
    EXPECT_GE(store->stats().quarantined, 1u);
    EXPECT_TRUE(regen->trace.backing == nullptr);
    expectDecodedTraceEq(regen->trace, cold->trace);

    // And the re-spilled artifact serves the *next* warm run again.
    clearExperimentCaches();
    const auto rewarm =
        cachedDecodedRun(PredictorKind::Gshare, spec, wl, pipe);
    EXPECT_TRUE(rewarm->trace.backing != nullptr);
    expectDecodedTraceEq(rewarm->trace, cold->trace);
}

TEST_F(RecordedArtifactTest, DecodedArtifactRejectsSchemaDamage)
{
    const WorkloadSpec &spec = standardWorkloads()[0];
    WorkloadConfig wl;
    PipelineConfig pipe;
    const auto run =
        cachedDecodedRun(PredictorKind::Gshare, spec, wl, pipe);
    const auto store = globalArtifactStore();
    ASSERT_TRUE(store != nullptr);

    // A container that passes every frame check but lost a column
    // must fail the codec's geometry validation, not crash.
    DecodedArtifactParts parts = encodeDecodedArtifact(*run);
    parts.sections.pop_back();
    ASSERT_TRUE(store->storeMapped("test-decoded", "k", parts.meta,
                                   parts.sections));
    ArtifactStore::MappedArtifact art;
    ASSERT_TRUE(store->loadMapped("test-decoded", "k", art));
    DecodedRun out;
    std::string error;
    EXPECT_FALSE(decodeDecodedArtifact(art, out, &error));
    EXPECT_FALSE(error.empty());

    // Same for a BpInfo ABI mismatch advertised in the metadata.
    DecodedArtifactParts full = encodeDecodedArtifact(*run);
    const std::string bad = [&] {
        std::string m = full.meta;
        const std::string key = "\"bpinfo_size\":";
        const std::size_t at = m.find(key);
        EXPECT_NE(at, std::string::npos);
        m.insert(at + key.size(), "1");
        return m;
    }();
    ASSERT_TRUE(store->storeMapped("test-decoded", "k2", bad,
                                   full.sections));
    ASSERT_TRUE(store->loadMapped("test-decoded", "k2", art));
    EXPECT_FALSE(decodeDecodedArtifact(art, out, &error));
}

// ------------------------------------------------------------ sweep journal

class SweepJournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = (std::filesystem::temp_directory_path()
                / ("confsim-journal-test-"
                   + std::to_string(::getpid())))
                   .string();
        std::filesystem::remove(path);
    }

    void TearDown() override { std::filesystem::remove(path); }

    std::string path;
};

TEST_F(SweepJournalTest, AppendsSurviveReopen)
{
    {
        SweepJournal journal(path, 0x1234);
        EXPECT_EQ(journal.recovered(), 0u);
        EXPECT_TRUE(journal.append(0, "shard zero"));
        EXPECT_TRUE(journal.append(2, "shard two"));
    }
    SweepJournal journal(path, 0x1234);
    EXPECT_EQ(journal.recovered(), 2u);
    std::string payload;
    ASSERT_TRUE(journal.lookup(0, payload));
    EXPECT_EQ(payload, "shard zero");
    ASSERT_TRUE(journal.lookup(2, payload));
    EXPECT_EQ(payload, "shard two");
    EXPECT_FALSE(journal.lookup(1, payload));
}

TEST_F(SweepJournalTest, ForeignGridKeyDiscardsJournal)
{
    {
        SweepJournal journal(path, 0x1111);
        EXPECT_TRUE(journal.append(0, "stale shard"));
    }
    SweepJournal journal(path, 0x2222);
    EXPECT_EQ(journal.recovered(), 0u);
    std::string payload;
    EXPECT_FALSE(journal.lookup(0, payload));
}

TEST_F(SweepJournalTest, TornTailIsTruncatedAtEveryLength)
{
    std::string full;
    {
        SweepJournal journal(path, 0xabcd);
        EXPECT_TRUE(journal.append(0, "first entry payload"));
        EXPECT_TRUE(journal.append(1, "second entry payload"));
    }
    {
        std::ifstream in(path, std::ios::binary);
        full.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    // Chop the file anywhere: recovery keeps the longest valid entry
    // prefix, never crashes, never serves a damaged entry.
    for (std::size_t len = 0; len <= full.size(); ++len) {
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(full.data(),
                      static_cast<std::streamsize>(len));
        }
        SweepJournal journal(path, 0xabcd);
        std::string payload;
        if (journal.lookup(0, payload)) {
            EXPECT_EQ(payload, "first entry payload");
        }
        if (journal.lookup(1, payload)) {
            EXPECT_EQ(payload, "second entry payload");
            EXPECT_EQ(len, full.size());
        }
    }
}

TEST_F(SweepJournalTest, CorruptEntryEndsTheValidPrefix)
{
    {
        SweepJournal journal(path, 0xabcd);
        EXPECT_TRUE(journal.append(0, "first entry payload"));
        EXPECT_TRUE(journal.append(1, "second entry payload"));
    }
    std::string full;
    {
        std::ifstream in(path, std::ios::binary);
        full.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    // Flip a byte inside the *second* entry's payload.
    full[full.size() - 3] =
        static_cast<char>(full[full.size() - 3] ^ 0xff);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(full.data(),
                  static_cast<std::streamsize>(full.size()));
    }
    SweepJournal journal(path, 0xabcd);
    EXPECT_EQ(journal.recovered(), 1u);
    std::string payload;
    ASSERT_TRUE(journal.lookup(0, payload));
    EXPECT_EQ(payload, "first entry payload");
    EXPECT_FALSE(journal.lookup(1, payload));
}

// ------------------------------------------------- config result round trip

TEST(SweepConfigResultJsonTest, RoundTripsThroughJson)
{
    SweepConfigResult c;
    c.label = "jrs@15";
    c.estimator = "jrs";
    c.committed = {10, 20, 30, 40};
    c.all = {11, 21, 31, 41};
    c.stats.estimates = 100;
    c.stats.lowEstimates = 25;
    c.stats.updates = 99;
    c.hasLevels = true;
    c.thresholds.push_back({7, {1, 2, 3, 4}});

    SweepConfigResult back;
    std::string error;
    ASSERT_TRUE(sweepConfigResultFromJson(sweepConfigResultToJson(c),
                                          back, &error))
            << error;
    EXPECT_EQ(back.label, c.label);
    EXPECT_EQ(back.estimator, c.estimator);
    EXPECT_EQ(back.committed, c.committed);
    EXPECT_EQ(back.all, c.all);
    EXPECT_EQ(back.stats.estimates, c.stats.estimates);
    EXPECT_EQ(back.stats.lowEstimates, c.stats.lowEstimates);
    EXPECT_EQ(back.stats.updates, c.stats.updates);
    EXPECT_TRUE(back.hasLevels);
    ASSERT_EQ(back.thresholds.size(), 1u);
    EXPECT_EQ(back.thresholds[0].threshold, 7u);
    EXPECT_EQ(back.thresholds[0].committed, c.thresholds[0].committed);

    // Dump equality too: the journal replays these bytes verbatim.
    EXPECT_EQ(sweepConfigResultToJson(back).dump(),
              sweepConfigResultToJson(c).dump());
}

TEST(SweepConfigResultJsonTest, RejectsDamage)
{
    SweepConfigResult c;
    c.label = "x";
    c.estimator = "jrs";
    JsonValue v = sweepConfigResultToJson(c);
    JsonValue broken = v;
    broken["quadrants"] = JsonValue(std::string("not an object"));
    SweepConfigResult back;
    EXPECT_FALSE(sweepConfigResultFromJson(broken, back));
    EXPECT_FALSE(
            sweepConfigResultFromJson(JsonValue(std::uint64_t{1}),
                                      back));
}

} // anonymous namespace
} // namespace confsim
