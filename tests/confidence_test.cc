/**
 * @file
 * Unit tests for the confidence estimators: JRS (base and enhanced),
 * saturating-counter variants, pattern history, static profile,
 * misprediction distance, and the boosting wrapper.
 */

#include <gtest/gtest.h>

#include "common/bit_utils.hh"
#include "confidence/boosting.hh"
#include "confidence/distance.hh"
#include "confidence/estimator.hh"
#include "confidence/jrs.hh"
#include "confidence/native.hh"
#include "confidence/pattern.hh"
#include "confidence/sat_counters.hh"
#include "confidence/static_profile.hh"

namespace confsim
{
namespace
{

constexpr Addr PC_A = 0x1000;

BpInfo
gshareInfo(bool pred_taken, std::uint64_t hist = 0,
           unsigned hist_bits = 12)
{
    BpInfo info;
    info.predTaken = pred_taken;
    info.globalHistory = hist;
    info.globalHistoryBits = hist_bits;
    return info;
}

// ---------------------------------------------------------------------- JRS

TEST(JrsTest, StartsLowConfidence)
{
    JrsEstimator jrs;
    EXPECT_FALSE(jrs.estimate(PC_A, gshareInfo(true)));
}

TEST(JrsTest, ReachesHighConfidenceAfterThresholdCorrects)
{
    JrsConfig cfg;
    cfg.threshold = 15;
    JrsEstimator jrs(cfg);
    const BpInfo info = gshareInfo(true);
    for (int i = 0; i < 14; ++i)
        jrs.update(PC_A, true, true, info);
    EXPECT_FALSE(jrs.estimate(PC_A, info)); // 14 < 15
    jrs.update(PC_A, true, true, info);
    EXPECT_TRUE(jrs.estimate(PC_A, info)); // 15 >= 15
}

TEST(JrsTest, MispredictionResetsCounter)
{
    JrsEstimator jrs;
    const BpInfo info = gshareInfo(true);
    for (int i = 0; i < 20; ++i)
        jrs.update(PC_A, true, true, info);
    EXPECT_TRUE(jrs.estimate(PC_A, info));
    jrs.update(PC_A, false, false, info); // miss -> reset
    EXPECT_FALSE(jrs.estimate(PC_A, info));
    EXPECT_EQ(jrs.readCounter(PC_A, info), 0u);
}

TEST(JrsTest, CounterSaturatesAtWidth)
{
    JrsEstimator jrs;
    const BpInfo info = gshareInfo(true);
    for (int i = 0; i < 100; ++i)
        jrs.update(PC_A, true, true, info);
    EXPECT_EQ(jrs.readCounter(PC_A, info), 15u);
}

TEST(JrsTest, EnhancedVariantSeparatesDirections)
{
    JrsConfig cfg;
    cfg.enhanced = true;
    JrsEstimator jrs(cfg);
    const BpInfo taken = gshareInfo(true);
    const BpInfo not_taken = gshareInfo(false);
    for (int i = 0; i < 16; ++i)
        jrs.update(PC_A, true, true, taken);
    // The taken-direction stream is confident...
    EXPECT_TRUE(jrs.estimate(PC_A, taken));
    // ...but the not-taken-direction stream shares no state.
    EXPECT_EQ(jrs.readCounter(PC_A, not_taken), 0u);
}

TEST(JrsTest, BaseVariantSharesDirections)
{
    JrsConfig cfg;
    cfg.enhanced = false;
    JrsEstimator jrs(cfg);
    const BpInfo taken = gshareInfo(true);
    const BpInfo not_taken = gshareInfo(false);
    for (int i = 0; i < 16; ++i)
        jrs.update(PC_A, true, true, taken);
    EXPECT_EQ(jrs.readCounter(PC_A, not_taken), 15u);
}

TEST(JrsTest, IndexUsesHistory)
{
    JrsEstimator jrs;
    const BpInfo h0 = gshareInfo(true, 0);
    const BpInfo h1 = gshareInfo(true, 1);
    for (int i = 0; i < 16; ++i)
        jrs.update(PC_A, true, true, h0);
    EXPECT_TRUE(jrs.estimate(PC_A, h0));
    EXPECT_FALSE(jrs.estimate(PC_A, h1)); // different MDC entry
}

TEST(JrsTest, FallsBackToLocalHistoryForSAg)
{
    JrsEstimator jrs;
    BpInfo info;
    info.predTaken = true;
    info.localHistory = 0x55;
    info.localHistoryBits = 13;
    for (int i = 0; i < 16; ++i)
        jrs.update(PC_A, true, true, info);
    EXPECT_TRUE(jrs.estimate(PC_A, info));
    BpInfo other = info;
    other.localHistory = 0x56;
    EXPECT_FALSE(jrs.estimate(PC_A, other));
}

TEST(JrsTest, NamesReflectVariant)
{
    JrsConfig cfg;
    cfg.enhanced = false;
    EXPECT_EQ(JrsEstimator(cfg).name(), "jrs");
    cfg.enhanced = true;
    EXPECT_EQ(JrsEstimator(cfg).name(), "jrs-enhanced");
}

TEST(JrsTest, ResetClearsAllCounters)
{
    JrsEstimator jrs;
    const BpInfo info = gshareInfo(true);
    for (int i = 0; i < 16; ++i)
        jrs.update(PC_A, true, true, info);
    jrs.reset();
    EXPECT_EQ(jrs.readCounter(PC_A, info), 0u);
}

TEST(JrsTest, Threshold16IsUnreachable)
{
    // The paper's Fig. 4 note: threshold 16 cannot be reached by a
    // 4-bit MDC, so every branch is low confidence.
    JrsConfig cfg;
    cfg.threshold = 16;
    JrsEstimator jrs(cfg);
    const BpInfo info = gshareInfo(true);
    for (int i = 0; i < 100; ++i)
        jrs.update(PC_A, true, true, info);
    EXPECT_FALSE(jrs.estimate(PC_A, info));
}

TEST(JrsDeathTest, NonPowerOfTwoFatal)
{
    JrsConfig cfg;
    cfg.tableEntries = 1000;
    EXPECT_EXIT(JrsEstimator jrs(cfg), ::testing::ExitedWithCode(1),
                "power of two");
}

// ------------------------------------------------------- saturating counters

BpInfo
counterInfo(unsigned value, unsigned max = 3)
{
    BpInfo info;
    info.counterValue = value;
    info.counterMax = max;
    return info;
}

TEST(SatCountersTest, StrongStatesAreConfident)
{
    SatCountersEstimator est;
    EXPECT_TRUE(est.estimate(PC_A, counterInfo(0)));
    EXPECT_FALSE(est.estimate(PC_A, counterInfo(1)));
    EXPECT_FALSE(est.estimate(PC_A, counterInfo(2)));
    EXPECT_TRUE(est.estimate(PC_A, counterInfo(3)));
}

BpInfo
componentInfo(bool bimodal_strong, bool gshare_strong)
{
    BpInfo info;
    info.hasComponents = true;
    info.bimodalStrong = bimodal_strong;
    info.gshareStrong = gshare_strong;
    info.counterValue = 1; // selected counter weak
    return info;
}

TEST(SatCountersTest, BothStrongRequiresBoth)
{
    SatCountersEstimator est(SatCountersVariant::BothStrong);
    EXPECT_TRUE(est.estimate(PC_A, componentInfo(true, true)));
    EXPECT_FALSE(est.estimate(PC_A, componentInfo(true, false)));
    EXPECT_FALSE(est.estimate(PC_A, componentInfo(false, true)));
    EXPECT_FALSE(est.estimate(PC_A, componentInfo(false, false)));
}

TEST(SatCountersTest, EitherStrongRequiresOne)
{
    SatCountersEstimator est(SatCountersVariant::EitherStrong);
    EXPECT_TRUE(est.estimate(PC_A, componentInfo(true, true)));
    EXPECT_TRUE(est.estimate(PC_A, componentInfo(true, false)));
    EXPECT_TRUE(est.estimate(PC_A, componentInfo(false, true)));
    EXPECT_FALSE(est.estimate(PC_A, componentInfo(false, false)));
}

TEST(SatCountersTest, SelectedVariantIgnoresComponents)
{
    SatCountersEstimator est(SatCountersVariant::Selected);
    BpInfo info = componentInfo(true, true);
    info.counterValue = 1; // weak selected counter
    EXPECT_FALSE(est.estimate(PC_A, info));
}

TEST(SatCountersTest, NamesIncludeVariant)
{
    EXPECT_EQ(SatCountersEstimator(SatCountersVariant::BothStrong)
                      .name(),
              "satcnt-both-strong");
}

// ----------------------------------------------------------------- patterns

TEST(PatternTest, AllOnesAndZerosAreConfident)
{
    EXPECT_TRUE(PatternEstimator::isConfidentPattern(0xff, 8));
    EXPECT_TRUE(PatternEstimator::isConfidentPattern(0, 8));
}

TEST(PatternTest, SingleDissentIsConfident)
{
    EXPECT_TRUE(PatternEstimator::isConfidentPattern(0b11101111, 8));
    EXPECT_TRUE(PatternEstimator::isConfidentPattern(0b00010000, 8));
}

TEST(PatternTest, AlternatingIsConfident)
{
    EXPECT_TRUE(PatternEstimator::isConfidentPattern(0b01010101, 8));
    EXPECT_TRUE(PatternEstimator::isConfidentPattern(0b10101010, 8));
}

TEST(PatternTest, MixedPatternsAreNotConfident)
{
    EXPECT_FALSE(PatternEstimator::isConfidentPattern(0b11001010, 8));
    EXPECT_FALSE(PatternEstimator::isConfidentPattern(0b00110011, 8));
}

TEST(PatternTest, ZeroWidthNeverConfident)
{
    EXPECT_FALSE(PatternEstimator::isConfidentPattern(0, 0));
}

class PatternExhaustiveTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PatternExhaustiveTest, MatchesReferenceClassifier)
{
    // Reference implementation: popcount-based, straight from the
    // pattern definitions.
    const unsigned bits = GetParam();
    const std::uint64_t mask = lowBitMask(bits);
    for (std::uint64_t h = 0; h <= mask; ++h) {
        unsigned ones = 0;
        for (unsigned i = 0; i < bits; ++i)
            ones += (h >> i) & 1;
        bool alternating = true;
        for (unsigned i = 1; i < bits; ++i)
            if (((h >> i) & 1) == ((h >> (i - 1)) & 1))
                alternating = false;
        const bool expected = ones == 0 || ones == bits || ones == 1
            || ones == bits - 1 || alternating;
        EXPECT_EQ(PatternEstimator::isConfidentPattern(h, bits),
                  expected)
            << "history " << h << " bits " << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, PatternExhaustiveTest,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 10u));

TEST(PatternTest, PrefersLocalHistory)
{
    PatternEstimator est;
    BpInfo info;
    info.localHistory = 0xff; // confident
    info.localHistoryBits = 8;
    info.globalHistory = 0b1100110011; // unconfident
    info.globalHistoryBits = 10;
    EXPECT_TRUE(est.estimate(PC_A, info));
}

TEST(PatternTest, FallsBackToGlobalHistory)
{
    PatternEstimator est;
    BpInfo info;
    info.globalHistory = 0b1100110011;
    info.globalHistoryBits = 10;
    EXPECT_FALSE(est.estimate(PC_A, info));
}

// -------------------------------------------------------------- static

TEST(StaticTest, ThresholdSeparatesSites)
{
    ProfileTable profile;
    for (int i = 0; i < 95; ++i)
        profile.record(PC_A, true);
    for (int i = 0; i < 5; ++i)
        profile.record(PC_A, false);
    for (int i = 0; i < 50; ++i) {
        profile.record(PC_A + 4, true);
        profile.record(PC_A + 4, false);
    }
    StaticEstimator est(profile, 0.9);
    EXPECT_TRUE(est.estimate(PC_A, BpInfo{}));       // 95% >= 90%
    EXPECT_FALSE(est.estimate(PC_A + 4, BpInfo{})); // 50%
}

TEST(StaticTest, UnseenSitesAreLowConfidence)
{
    ProfileTable profile;
    StaticEstimator est(profile, 0.9);
    EXPECT_FALSE(est.estimate(PC_A, BpInfo{}));
}

TEST(StaticTest, ProfileAccuracyComputation)
{
    ProfileTable profile;
    profile.record(PC_A, true);
    profile.record(PC_A, true);
    profile.record(PC_A, false);
    EXPECT_NEAR(profile.accuracy(PC_A), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(profile.size(), 1u);
    profile.clear();
    EXPECT_EQ(profile.size(), 0u);
    EXPECT_DOUBLE_EQ(profile.accuracy(PC_A), 0.0);
}

TEST(StaticTest, ExactThresholdIsHighConfidence)
{
    ProfileTable profile;
    for (int i = 0; i < 9; ++i)
        profile.record(PC_A, true);
    profile.record(PC_A, false);
    StaticEstimator est(profile, 0.9);
    EXPECT_TRUE(est.estimate(PC_A, BpInfo{})); // exactly 90%
}

// ------------------------------------------------------------- distance

TEST(DistanceTest, LowConfidenceNearMiss)
{
    DistanceEstimator est(4);
    const BpInfo info;
    EXPECT_FALSE(est.estimate(PC_A, info)); // distance 0
    for (int i = 0; i < 4; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_FALSE(est.estimate(PC_A, info)); // distance 4, need > 4
    est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_A, info)); // distance 5
}

TEST(DistanceTest, MispredictionResetsDistance)
{
    DistanceEstimator est(2);
    const BpInfo info;
    for (int i = 0; i < 10; ++i)
        est.update(PC_A, true, true, info);
    EXPECT_TRUE(est.estimate(PC_A, info));
    est.update(PC_A, true, false, info);
    EXPECT_FALSE(est.estimate(PC_A, info));
    EXPECT_EQ(est.currentDistance(), 0u);
}

TEST(DistanceTest, GlobalAcrossSites)
{
    DistanceEstimator est(1);
    const BpInfo info;
    est.update(PC_A, true, true, info);
    est.update(PC_A + 4, true, true, info);
    // Distance is global (single register), not per branch.
    EXPECT_TRUE(est.estimate(PC_A + 8, info));
}

// -------------------------------------------------------------- boosting

TEST(BoostingTest, RequiresConsecutiveLowEstimates)
{
    auto base = std::make_unique<ConstantEstimator>(false);
    BoostingEstimator boost(std::move(base), 2);
    const BpInfo info;
    EXPECT_TRUE(boost.estimate(PC_A, info));  // first LC: suppressed
    EXPECT_FALSE(boost.estimate(PC_A, info)); // second LC: fires
    EXPECT_FALSE(boost.estimate(PC_A, info)); // stays low
}

TEST(BoostingTest, HighEstimateResetsRun)
{
    // Base alternates high/low via a distance estimator driven by
    // updates; simpler: wrap a constant-low base, reset via a high.
    struct Alternating : ConfidenceEstimator
    {
        bool next = false;
        std::string name() const override { return "alt"; }

      protected:
        bool
        doEstimate(Addr, const BpInfo &) override
        {
            next = !next;
            return next;
        }
        void doUpdate(Addr, bool, bool, const BpInfo &) override {}
        void doReset() override { next = false; }
    };
    BoostingEstimator boost(std::make_unique<Alternating>(), 2);
    const BpInfo info;
    // Sequence: high, low, high, low... never two consecutive lows.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(boost.estimate(PC_A, info));
}

TEST(BoostingTest, DegreeOneIsTransparent)
{
    BoostingEstimator boost(
            std::make_unique<ConstantEstimator>(false), 1);
    EXPECT_FALSE(boost.estimate(PC_A, BpInfo{}));
}

TEST(BoostingTest, ZeroDegreeClampedToOne)
{
    BoostingEstimator boost(
            std::make_unique<ConstantEstimator>(false), 0);
    EXPECT_EQ(boost.degree(), 1u);
}

TEST(BoostingTest, NameMentionsDegreeAndBase)
{
    BoostingEstimator boost(
            std::make_unique<ConstantEstimator>(false), 3);
    EXPECT_EQ(boost.name(), "boost3(always-low)");
}

// -------------------------------------------------------------- constant

TEST(ConstantTest, AlwaysHighAndLow)
{
    ConstantEstimator hi(true), lo(false);
    EXPECT_TRUE(hi.estimate(PC_A, BpInfo{}));
    EXPECT_FALSE(lo.estimate(PC_A, BpInfo{}));
    EXPECT_EQ(hi.name(), "always-high");
    EXPECT_EQ(lo.name(), "always-low");
}

// ------------------------------------------------------- native confidence

TEST(NativeConfidenceTest, ThresholdsNativeLevel)
{
    NativeConfidenceEstimator est(
            NativeConfidenceEstimator::percConfig(64));
    EXPECT_EQ(est.name(), "perc-conf");
    BpInfo info = gshareInfo(true);
    info.hasNativeConf = true;
    info.nativeConf = 63;
    EXPECT_FALSE(est.estimate(PC_A, info));
    info.nativeConf = 64; // inclusive threshold
    EXPECT_TRUE(est.estimate(PC_A, info));
    info.nativeConf = 1000;
    EXPECT_TRUE(est.estimate(PC_A, info));
}

TEST(NativeConfidenceTest, ReadsLevelVerbatim)
{
    NativeConfidenceEstimator est(
            NativeConfidenceEstimator::tageConfig());
    EXPECT_EQ(est.name(), "tage-conf");
    BpInfo info = gshareInfo(true);
    info.hasNativeConf = true;
    info.nativeConf = 13;
    EXPECT_EQ(est.readLevel(PC_A, info), 13u);
    EXPECT_TRUE(est.estimate(PC_A, info)); // default threshold 12
    info.nativeConf = 11;
    EXPECT_FALSE(est.estimate(PC_A, info));
}

TEST(NativeConfidenceTest, NoNativeSignalIsAlwaysLow)
{
    // Classic predictors never set nativeConf, so the comparator
    // degrades to always-low (threshold >= 1) rather than misfiring.
    NativeConfidenceEstimator est(
            NativeConfidenceEstimator::percConfig(1));
    const BpInfo info = gshareInfo(true, 0x2b);
    EXPECT_FALSE(est.estimate(PC_A, info));
    EXPECT_EQ(est.readLevel(PC_A, info), 0u);
}

TEST(NativeConfidenceTest, StatsTrackOutcomes)
{
    NativeConfidenceEstimator est(
            NativeConfidenceEstimator::percConfig(10));
    BpInfo info = gshareInfo(true);
    info.hasNativeConf = true;
    info.nativeConf = 20;
    EXPECT_TRUE(est.estimate(PC_A, info));
    est.update(PC_A, true, true, info);
    info.nativeConf = 5;
    EXPECT_FALSE(est.estimate(PC_A, info));
    est.update(PC_A, true, false, info);
    EXPECT_EQ(est.stats().estimates, 2u);
    EXPECT_EQ(est.stats().updates, 2u);
}

TEST(NativeConfidenceDeathTest, BadConfigFatal)
{
    NativeConfidenceConfig cfg;
    cfg.name = "";
    EXPECT_EXIT(NativeConfidenceEstimator est(cfg),
                ::testing::ExitedWithCode(1), "name");
    NativeConfidenceConfig cfg2;
    cfg2.levelMax = 15;
    cfg2.threshold = 16; // beyond the declared range
    EXPECT_EXIT(NativeConfidenceEstimator est2(cfg2),
                ::testing::ExitedWithCode(1), "threshold");
}

} // anonymous namespace
} // namespace confsim
