/**
 * @file
 * Tests for the eight SPECint95-analog workloads. Every workload
 * carries an in-program self-check (the algorithm's result is verified
 * against a build-time replica), so these tests validate end-to-end
 * algorithmic correctness, not just liveness.
 */

#include <gtest/gtest.h>

#include <set>

#include "uarch/machine.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

struct RunSummary
{
    std::uint64_t steps = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken = 0;
    std::set<Addr> sites;
    Word flag = 0;
    Word result = 0;
    bool halted = false;
};

RunSummary
runWorkload(const Program &prog, std::uint64_t bound = 80'000'000)
{
    RunSummary s;
    Machine m(prog);
    while (!m.halted() && s.steps < bound) {
        const StepInfo si = m.step();
        if (si.halted)
            break;
        ++s.steps;
        if (si.isCond) {
            ++s.branches;
            if (si.taken)
                ++s.taken;
            s.sites.insert(si.addr);
        }
    }
    s.halted = m.halted();
    s.flag = m.mem(CHECK_FLAG_ADDR);
    s.result = m.mem(RESULT_ADDR);
    return s;
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadSpec>
{
};

TEST_P(WorkloadTest, RunsToCompletion)
{
    const RunSummary s = runWorkload(GetParam().factory({}));
    EXPECT_TRUE(s.halted) << GetParam().name;
}

TEST_P(WorkloadTest, SelfCheckPasses)
{
    const RunSummary s = runWorkload(GetParam().factory({}));
    EXPECT_EQ(s.flag, 1) << GetParam().name
                         << " failed its algorithmic self-check";
}

TEST_P(WorkloadTest, CommitsSubstantialWork)
{
    const RunSummary s = runWorkload(GetParam().factory({}));
    EXPECT_GE(s.steps, 100'000u) << GetParam().name;
    EXPECT_LE(s.steps, 10'000'000u) << GetParam().name;
}

TEST_P(WorkloadTest, BranchDensityIsRealistic)
{
    // SPECint-class codes are roughly 10-30% conditional branches.
    const RunSummary s = runWorkload(GetParam().factory({}));
    const double density =
        static_cast<double>(s.branches) / static_cast<double>(s.steps);
    EXPECT_GE(density, 0.05) << GetParam().name;
    EXPECT_LE(density, 0.45) << GetParam().name;
}

TEST_P(WorkloadTest, TakenRateNotDegenerate)
{
    const RunSummary s = runWorkload(GetParam().factory({}));
    const double taken_rate =
        static_cast<double>(s.taken) / static_cast<double>(s.branches);
    EXPECT_GT(taken_rate, 0.01) << GetParam().name;
    EXPECT_LT(taken_rate, 0.99) << GetParam().name;
}

TEST_P(WorkloadTest, HasManyStaticBranchSites)
{
    const RunSummary s = runWorkload(GetParam().factory({}));
    EXPECT_GE(s.sites.size(), 5u) << GetParam().name;
}

TEST_P(WorkloadTest, DeterministicForEqualConfig)
{
    WorkloadConfig cfg;
    cfg.seed = 99;
    const RunSummary a = runWorkload(GetParam().factory(cfg));
    const RunSummary b = runWorkload(GetParam().factory(cfg));
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.result, b.result);
}

TEST_P(WorkloadTest, ScaleIncreasesWork)
{
    WorkloadConfig small, large;
    small.scale = 1;
    large.scale = 2;
    const RunSummary a = runWorkload(GetParam().factory(small));
    const RunSummary c = runWorkload(GetParam().factory(large));
    EXPECT_TRUE(c.halted);
    EXPECT_EQ(c.flag, 1);
    EXPECT_GE(c.steps, a.steps + a.steps / 2) << GetParam().name;
}

TEST_P(WorkloadTest, SelfCheckHoldsUnderDifferentSeed)
{
    WorkloadConfig cfg;
    cfg.seed = 0xdecaf;
    const RunSummary s = runWorkload(GetParam().factory(cfg));
    EXPECT_TRUE(s.halted) << GetParam().name;
    EXPECT_EQ(s.flag, 1) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
        All, WorkloadTest, ::testing::ValuesIn(standardWorkloads()),
        [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
            return info.param.name;
        });

TEST(WorkloadRegistryTest, HasEightInPaperOrder)
{
    const auto &specs = standardWorkloads();
    ASSERT_EQ(specs.size(), 8u);
    EXPECT_EQ(specs[0].name, "compress");
    EXPECT_EQ(specs[1].name, "gcc");
    EXPECT_EQ(specs[2].name, "perl");
    EXPECT_EQ(specs[3].name, "go");
    EXPECT_EQ(specs[4].name, "m88ksim");
    EXPECT_EQ(specs[5].name, "xlisp");
    EXPECT_EQ(specs[6].name, "vortex");
    EXPECT_EQ(specs[7].name, "ijpeg");
}

TEST(WorkloadRegistryTest, MakeByName)
{
    const Program p = makeWorkload("go");
    EXPECT_EQ(p.name, "go");
    EXPECT_FALSE(p.code.empty());
}

TEST(WorkloadRegistryDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT(makeWorkload("spice"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(WorkloadCharacterTest, GoIsHardestToPredictStatically)
{
    // The playout phase branches on rng bits; the per-branch taken
    // rates should be far less skewed than e.g. ijpeg's loop branches.
    const RunSummary go = runWorkload(makeWorkload("go"));
    const RunSummary jpeg = runWorkload(makeWorkload("ijpeg"));
    const double go_rate =
        static_cast<double>(go.taken) / go.branches;
    const double jpeg_rate =
        static_cast<double>(jpeg.taken) / jpeg.branches;
    // ijpeg loop branches are strongly biased toward taken.
    EXPECT_GT(jpeg_rate, 0.55);
    EXPECT_LT(go_rate, 0.45);
}

} // anonymous namespace
} // namespace confsim
