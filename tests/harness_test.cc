/**
 * @file
 * Tests for the experiment harness: trace runs, profiling, level
 * sweeps (single-pass threshold evaluation), distance profiles, the
 * collectors and the standard experiment assembly.
 */

#include <gtest/gtest.h>

#include "bpred/gshare.hh"
#include "confidence/jrs.hh"
#include "harness/collectors.hh"
#include "harness/experiment.hh"
#include "harness/trace_run.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

// ---------------------------------------------------------------- trace run

TEST(TraceRunTest, CountsMatchFunctionalExecution)
{
    const Program prog = makeWorkload("compress");
    std::uint64_t steps = 0, branches = 0;
    runProgram(prog, [&branches](const StepInfo &) { ++branches; });
    {
        Machine m(prog);
        while (!m.halted()) {
            if (m.step().halted)
                break;
            ++steps;
        }
    }
    GsharePredictor pred;
    const TraceRunStats s = runTrace(prog, pred);
    EXPECT_EQ(s.instructions, steps);
    EXPECT_EQ(s.condBranches, branches);
    EXPECT_GT(s.accuracy(), 0.5);
    EXPECT_LT(s.accuracy(), 1.0);
}

TEST(TraceRunTest, AccuracyIsPerfectOnBranchFreeRun)
{
    // No opportunities, no mistakes: an empty committed stream must
    // report accuracy 1.0, not 0.0 (regression: gating policies read
    // this as "everything mispredicted" and stalled branch-free runs).
    TraceRunStats s;
    s.instructions = 100;
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);

    s.condBranches = 4;
    s.mispredicts = 1;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.75);
}

TEST(TraceRunTest, SinkSeesEveryBranch)
{
    const Program prog = makeWorkload("m88ksim");
    GsharePredictor pred;
    std::uint64_t events = 0;
    CallbackSink sink([&events](const BranchEvent &) { ++events; });
    const TraceRunStats s = runTrace(prog, pred, {}, {}, &sink);
    EXPECT_EQ(events, s.condBranches);
}

TEST(TraceRunTest, EventsAreAllCommittedWithConsistentDistances)
{
    const Program prog = makeWorkload("ijpeg");
    GsharePredictor pred;
    CallbackSink sink([](const BranchEvent &ev) {
        ASSERT_TRUE(ev.willCommit);
        ASSERT_EQ(ev.preciseDistAll, ev.perceivedDistAll);
        ASSERT_GE(ev.preciseDistCommitted, 1u);
    });
    runTrace(prog, pred, {}, {}, &sink);
}

TEST(TraceRunTest, EstimatorUpdatesFlow)
{
    const Program prog = makeWorkload("compress");
    GsharePredictor pred;
    JrsEstimator jrs;
    ConfidenceCollector collector(1);
    runTrace(prog, pred, {&jrs}, {}, &collector);
    const QuadrantCounts &q = collector.committed(0);
    EXPECT_GT(q.total(), 0u);
    // JRS must mark *some* branches high confidence once trained.
    EXPECT_GT(q.chc, 0u);
    EXPECT_GT(q.ilc, 0u);
}

TEST(TraceRunTest, MaxStepsBounds)
{
    const Program prog = makeWorkload("go");
    GsharePredictor pred;
    const TraceRunStats s = runTrace(prog, pred, {}, {}, {}, 5000);
    EXPECT_LE(s.instructions, 5000u);
}

// ------------------------------------------------------------------ profile

TEST(ProfileTest, ProfileCoversBranchSitesWithSaneAccuracies)
{
    const Program prog = makeWorkload("perl");
    GsharePredictor pred;
    const ProfileTable profile = buildProfile(prog, pred);
    EXPECT_GT(profile.size(), 5u);
    // Every observed site reports an accuracy in [0, 1]; probing a few
    // known branch addresses must return nonzero totals.
    std::size_t probed = 0;
    for (std::uint32_t pc = 0; pc < prog.code.size(); ++pc) {
        if (!isCondBranch(prog.code[pc].op))
            continue;
        const double acc = profile.accuracy(Program::pcToAddr(pc));
        EXPECT_GE(acc, 0.0);
        EXPECT_LE(acc, 1.0);
        ++probed;
    }
    EXPECT_GE(probed, profile.size());
}

TEST(ProfileTest, SelfProfiledStaticEstimatorIsUseful)
{
    const Program prog = makeWorkload("gcc");
    GsharePredictor profiling_pred;
    const ProfileTable profile = buildProfile(prog, profiling_pred);
    StaticEstimator est(profile, 0.9);

    GsharePredictor pred;
    ConfidenceCollector collector(1);
    std::vector<ConfidenceEstimator *> ests = {&est};
    runTrace(prog, pred, ests, {}, &collector);
    const QuadrantCounts &q = collector.committed(0);
    // Self-profiled static estimation should be strongly informative:
    // PVP well above the base accuracy.
    EXPECT_GT(q.pvp(), q.accuracy());
    EXPECT_GT(q.spec(), 0.5);
}

// -------------------------------------------------------------- level sweep

TEST(LevelSweepTest, ThresholdExtraction)
{
    LevelSweep sweep(15);
    sweep.record(0, false);
    sweep.record(5, true);
    sweep.record(15, true);
    sweep.record(15, false);
    const QuadrantCounts q = sweep.atThresholdGe(10);
    EXPECT_EQ(q.chc, 1u); // level 15 correct
    EXPECT_EQ(q.ihc, 1u); // level 15 incorrect
    EXPECT_EQ(q.clc, 1u); // level 5 correct
    EXPECT_EQ(q.ilc, 1u); // level 0 incorrect
}

TEST(LevelSweepTest, GtIsGePlusOne)
{
    LevelSweep sweep(8);
    sweep.record(3, true);
    EXPECT_EQ(sweep.atThresholdGt(3).clc, 1u);
    EXPECT_EQ(sweep.atThresholdGe(3).chc, 1u);
}

TEST(LevelSweepTest, ClampsToMaxLevel)
{
    LevelSweep sweep(4);
    sweep.record(100, true);
    EXPECT_EQ(sweep.atThresholdGe(4).chc, 1u);
}

TEST(LevelSweepTest, ThresholdZeroIsAllHighConfidence)
{
    LevelSweep sweep(4);
    sweep.record(0, true);
    sweep.record(2, false);
    const QuadrantCounts q = sweep.atThresholdGe(0);
    EXPECT_EQ(q.total(), q.chc + q.ihc);
}

TEST(LevelSweepTest, MergeAccumulates)
{
    LevelSweep a(4), b(4);
    a.record(1, true);
    b.record(1, true);
    a += b;
    EXPECT_EQ(a.total(), 2u);
}

TEST(LevelSweepTest, SweepEquivalentToDirectEstimator)
{
    // The single-pass sweep must reproduce exactly what a JRS
    // estimator with a fixed threshold measures directly.
    const Program prog = makeWorkload("compress");
    const unsigned threshold = 15;

    // Direct measurement.
    QuadrantCounts direct;
    {
        GsharePredictor pred;
        JrsEstimator jrs; // threshold 15 default
        ConfidenceCollector collector(1);
        runTrace(prog, pred, {&jrs}, {}, &collector);
        direct = collector.committed(0);
    }

    // Sweep measurement via level reader.
    QuadrantCounts swept;
    {
        GsharePredictor pred;
        JrsEstimator jrs;
        LevelSweep sweep(16);
        std::vector<ConfidenceEstimator *> ests = {&jrs};
        std::vector<const LevelSource *> readers = {&jrs};
        CallbackSink sink([&sweep](const BranchEvent &ev) {
            sweep.record(ev.levels[0], ev.correct);
        });
        runTrace(prog, pred, ests, readers, &sink);
        swept = sweep.atThresholdGe(threshold);
    }

    EXPECT_EQ(direct.chc, swept.chc);
    EXPECT_EQ(direct.ihc, swept.ihc);
    EXPECT_EQ(direct.clc, swept.clc);
    EXPECT_EQ(direct.ilc, swept.ilc);
}

// --------------------------------------------------------- distance profile

TEST(DistanceProfileTest, RatesAndCounts)
{
    DistanceProfile p(8);
    p.record(1, true);
    p.record(1, false);
    p.record(5, false);
    EXPECT_NEAR(p.rateAt(1), 0.5, 1e-12);
    EXPECT_NEAR(p.rateAt(5), 0.0, 1e-12);
    EXPECT_EQ(p.countAt(1), 2u);
    EXPECT_NEAR(p.averageRate(), 1.0 / 3.0, 1e-12);
    EXPECT_EQ(p.total(), 3u);
}

TEST(DistanceProfileTest, TailBucketAbsorbsLargeDistances)
{
    DistanceProfile p(4);
    p.record(100, true);
    p.record(200, false);
    EXPECT_EQ(p.countAt(4), 2u);
    EXPECT_NEAR(p.rateAt(4), 0.5, 1e-12);
}

TEST(DistanceProfileTest, MergeAccumulates)
{
    DistanceProfile a(4), b(4);
    a.record(1, true);
    b.record(1, true);
    a += b;
    EXPECT_EQ(a.countAt(1), 2u);
    EXPECT_EQ(a.total(), 2u);
}

// --------------------------------------------------------------- collectors

TEST(CollectorTest, ConfidenceSplitsCommittedAndAll)
{
    ConfidenceCollector c(1);
    BranchEvent ev;
    ev.correct = true;
    ev.estimateBits = 1;
    ev.willCommit = true;
    c.onEvent(ev);
    ev.willCommit = false;
    c.onEvent(ev);
    EXPECT_EQ(c.committed(0).total(), 1u);
    EXPECT_EQ(c.all(0).total(), 2u);
}

TEST(CollectorTest, MisestimationTracksDistance)
{
    MisestimationCollector c(1, 8);
    BranchEvent ev;
    ev.willCommit = true;
    // Mis-estimation: HC but incorrect.
    ev.estimateBits = 1;
    ev.correct = false;
    c.onEvent(ev);
    // Correct estimation (LC and incorrect).
    ev.estimateBits = 0;
    c.onEvent(ev);
    const DistanceProfile &p = c.profile(0);
    EXPECT_EQ(p.total(), 2u);
    EXPECT_NEAR(p.rateAt(1), 0.5, 1e-12); // both at distance 1
}

// --------------------------------------------------------------- experiment

TEST(ExperimentTest, StandardBundleProvidesFiveEstimators)
{
    const Program prog = makeWorkload("compress");
    ExperimentConfig cfg;
    StandardBundle bundle(PredictorKind::Gshare, prog, cfg);
    EXPECT_EQ(bundle.estimators().size(), NUM_STANDARD_ESTIMATORS);
    EXPECT_EQ(standardEstimatorNames().size(),
              NUM_STANDARD_ESTIMATORS);
    EXPECT_GT(bundle.profile().size(), 0u);
}

TEST(ExperimentTest, McFarlingBundleUsesBothStrong)
{
    const Program prog = makeWorkload("compress");
    ExperimentConfig cfg;
    StandardBundle bundle(PredictorKind::McFarling, prog, cfg);
    EXPECT_EQ(bundle.estimators()[EST_SATCNT]->name(),
              "satcnt-both-strong");
}

TEST(ExperimentTest, StandardExperimentEndToEnd)
{
    ExperimentConfig cfg;
    const WorkloadResult r = runStandardExperiment(
            PredictorKind::Gshare, standardWorkloads()[0], cfg);
    EXPECT_EQ(r.workload, "compress");
    ASSERT_EQ(r.quadrants.size(), NUM_STANDARD_ESTIMATORS);
    for (const auto &q : r.quadrants) {
        EXPECT_EQ(q.total(), r.pipe.committedCondBranches);
    }
    // JRS on gshare: the paper's headline result — very high PVP.
    EXPECT_GT(r.quadrants[EST_JRS].pvp(), 0.9);
}

/** Standard experiment must work end to end for every predictor. */
class ExperimentMatrixTest
    : public ::testing::TestWithParam<PredictorKind>
{
};

TEST_P(ExperimentMatrixTest, ProducesConsistentQuadrants)
{
    ExperimentConfig cfg;
    const WorkloadResult r = runStandardExperiment(
            GetParam(), standardWorkloads()[5] /* xlisp */, cfg);
    ASSERT_EQ(r.quadrants.size(), NUM_STANDARD_ESTIMATORS);
    for (std::size_t e = 0; e < NUM_STANDARD_ESTIMATORS; ++e) {
        const QuadrantCounts &q = r.quadrants[e];
        EXPECT_EQ(q.total(), r.pipe.committedCondBranches);
        // Accuracy is an estimator-independent property.
        EXPECT_NEAR(q.accuracy(), r.pipe.committedAccuracy(), 1e-12);
        // All-branch view covers at least the committed view.
        EXPECT_GE(r.quadrantsAll[e].total(), q.total());
    }
}

INSTANTIATE_TEST_SUITE_P(
        Predictors, ExperimentMatrixTest,
        ::testing::Values(PredictorKind::Gshare,
                          PredictorKind::McFarling,
                          PredictorKind::SAg,
                          PredictorKind::Gselect),
        [](const ::testing::TestParamInfo<PredictorKind> &info) {
            return std::string(predictorKindName(info.param));
        });

TEST(ExperimentTest, AggregateMatchesSingleWorkload)
{
    ExperimentConfig cfg;
    const WorkloadResult r = runStandardExperiment(
            PredictorKind::Gshare, standardWorkloads()[4], cfg);
    const QuadrantFractions agg = aggregateEstimator({r}, EST_JRS);
    EXPECT_NEAR(agg.sens(), r.quadrants[EST_JRS].sens(), 1e-9);
    EXPECT_NEAR(agg.pvn(), r.quadrants[EST_JRS].pvn(), 1e-9);
}

} // anonymous namespace
} // namespace confsim
