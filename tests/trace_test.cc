/**
 * @file
 * Tests for the branch-trace capture/replay engine: golden equivalence
 * (a replayed trace must reproduce a live pipeline run bit for bit —
 * events, quadrants, distance histograms, estimator and predictor
 * stats), encode/decode round trips, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/fault_injection.hh"
#include "harness/collectors.hh"
#include "harness/experiment.hh"
#include "harness/experiment_cache.hh"
#include "pipeline/pipeline.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_replayer.hh"
#include "trace/trace_writer.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

const WorkloadSpec &
spec(const std::string &name)
{
    for (const auto &s : standardWorkloads())
        if (s.name == name)
            return s;
    ADD_FAILURE() << "no workload " << name;
    return standardWorkloads().front();
}

void
expectEventsEqual(const BranchEvent &a, const BranchEvent &b,
                  std::size_t i)
{
    EXPECT_EQ(a.seq, b.seq) << "event " << i;
    EXPECT_EQ(a.pc, b.pc) << "event " << i;
    EXPECT_EQ(a.taken, b.taken) << "event " << i;
    EXPECT_EQ(a.correct, b.correct) << "event " << i;
    EXPECT_EQ(a.willCommit, b.willCommit) << "event " << i;
    EXPECT_EQ(a.fetchCycle, b.fetchCycle) << "event " << i;
    EXPECT_EQ(a.resolveCycle, b.resolveCycle) << "event " << i;
    EXPECT_EQ(a.estimateBits, b.estimateBits) << "event " << i;
    for (unsigned j = 0; j < MAX_LEVEL_READERS; ++j)
        EXPECT_EQ(a.levels[j], b.levels[j]) << "event " << i;
    EXPECT_EQ(a.preciseDistAll, b.preciseDistAll) << "event " << i;
    EXPECT_EQ(a.preciseDistCommitted, b.preciseDistCommitted)
        << "event " << i;
    EXPECT_EQ(a.perceivedDistAll, b.perceivedDistAll) << "event " << i;
    EXPECT_EQ(a.perceivedDistCommitted, b.perceivedDistCommitted)
        << "event " << i;
    EXPECT_EQ(a.info.predTaken, b.info.predTaken) << "event " << i;
    EXPECT_EQ(a.info.counterValue, b.info.counterValue)
        << "event " << i;
    EXPECT_EQ(a.info.counterMax, b.info.counterMax) << "event " << i;
    EXPECT_EQ(a.info.globalHistory, b.info.globalHistory)
        << "event " << i;
    EXPECT_EQ(a.info.globalHistoryBits, b.info.globalHistoryBits)
        << "event " << i;
    EXPECT_EQ(a.info.localHistory, b.info.localHistory)
        << "event " << i;
    EXPECT_EQ(a.info.localHistoryBits, b.info.localHistoryBits)
        << "event " << i;
    EXPECT_EQ(a.info.hasComponents, b.info.hasComponents)
        << "event " << i;
    EXPECT_EQ(a.info.bimodalStrong, b.info.bimodalStrong)
        << "event " << i;
    EXPECT_EQ(a.info.gshareStrong, b.info.gshareStrong)
        << "event " << i;
    EXPECT_EQ(a.info.bimodalPredTaken, b.info.bimodalPredTaken)
        << "event " << i;
    EXPECT_EQ(a.info.gsharePredTaken, b.info.gsharePredTaken)
        << "event " << i;
    EXPECT_EQ(a.info.metaChoseGshare, b.info.metaChoseGshare)
        << "event " << i;
}

void
expectProfilesEqual(const DistanceProfile &a, const DistanceProfile &b)
{
    ASSERT_EQ(a.buckets(), b.buckets());
    EXPECT_EQ(a.total(), b.total());
    for (std::uint64_t d = 0; d <= a.buckets() + 1; ++d) {
        EXPECT_EQ(a.countAt(d), b.countAt(d)) << "distance " << d;
        EXPECT_DOUBLE_EQ(a.rateAt(d), b.rateAt(d)) << "distance " << d;
    }
}

/**
 * The heart of the golden test: run one workload live with the full
 * standard estimator set, a level reader, and event capture; record
 * the trace along the way; replay it with fresh predictor/estimator
 * state; and require the two event streams to match field for field.
 */
void
runGoldenEquivalence(PredictorKind kind, const std::string &workload)
{
    ExperimentConfig cfg;
    const auto prog = cachedProgram(spec(workload), cfg.workload);

    // Live run: record and capture simultaneously.
    StandardBundle liveBundle(kind, *prog, cfg);
    auto livePred = makePredictor(kind);
    Pipeline pipe(*prog, *livePred, cfg.pipeline);
    for (auto *estimator : liveBundle.estimators())
        pipe.attachEstimator(estimator);
    pipe.attachLevelReader(&liveBundle.jrs());

    std::vector<BranchEvent> liveEvents;
    CallbackSink liveCapture(
            [&](const BranchEvent &ev) { liveEvents.push_back(ev); });
    DistanceCollector liveDistances;
    TraceWriter writer;
    pipe.attachSink(&liveCapture);
    pipe.attachSink(&liveDistances);
    pipe.attachSink(&writer);
    const PipelineStats liveStats = pipe.run();

    ASSERT_EQ(writer.branchCount(), liveStats.allCondBranches);

    // Replay with fresh mutable state.
    StandardBundle replayBundle(kind, *prog, cfg);
    auto replayPred = makePredictor(kind);
    TraceReplayer replayer;
    replayer.attachPredictor(replayPred.get());
    for (auto *estimator : replayBundle.estimators())
        replayer.attachEstimator(estimator);
    replayer.attachLevelReader(&replayBundle.jrs());

    std::vector<BranchEvent> replayEvents;
    CallbackSink replayCapture(
            [&](const BranchEvent &ev) { replayEvents.push_back(ev); });
    DistanceCollector replayDistances;
    replayer.attachSink(&replayCapture);
    replayer.attachSink(&replayDistances);

    ReplayStats stats;
    std::string error;
    ASSERT_TRUE(replayer.replay(writer.encode(), &stats, &error))
        << error;

    EXPECT_EQ(stats.branches, liveStats.allCondBranches);
    EXPECT_EQ(stats.committedBranches, liveStats.committedCondBranches);
    EXPECT_EQ(stats.mispredicts, liveStats.allMispredicts);
    EXPECT_EQ(stats.committedMispredicts,
              liveStats.committedMispredicts);

    ASSERT_EQ(replayEvents.size(), liveEvents.size());
    for (std::size_t i = 0; i < liveEvents.size(); ++i)
        expectEventsEqual(liveEvents[i], replayEvents[i], i);

    expectProfilesEqual(liveDistances.preciseAll,
                        replayDistances.preciseAll);
    expectProfilesEqual(liveDistances.preciseCommitted,
                        replayDistances.preciseCommitted);
    expectProfilesEqual(liveDistances.perceivedAll,
                        replayDistances.perceivedAll);
    expectProfilesEqual(liveDistances.perceivedCommitted,
                        replayDistances.perceivedCommitted);
}

TEST(TraceGoldenTest, GshareEventStreamBitIdentical)
{
    runGoldenEquivalence(PredictorKind::Gshare, "compress");
}

TEST(TraceGoldenTest, McFarlingEventStreamBitIdentical)
{
    runGoldenEquivalence(PredictorKind::McFarling, "go");
}

TEST(TraceGoldenTest, SAgEventStreamBitIdentical)
{
    runGoldenEquivalence(PredictorKind::SAg, "xlisp");
}

/** The replay-backed standard experiment must match the live one on
 *  every reported artifact, including the serialized stats/config. */
TEST(TraceGoldenTest, StandardExperimentMatchesLive)
{
    clearExperimentCaches();
    const PredictorKind kinds[] = {PredictorKind::Gshare,
                                   PredictorKind::McFarling,
                                   PredictorKind::SAg};
    for (const auto kind : kinds) {
        ExperimentConfig cfg;
        const WorkloadSpec &wl = spec("m88ksim");
        const WorkloadResult live =
            runStandardExperimentLive(kind, wl, cfg);
        const WorkloadResult replayed =
            runStandardExperiment(kind, wl, cfg);

        EXPECT_EQ(replayed.workload, live.workload);
        EXPECT_EQ(replayed.pipe, live.pipe);
        ASSERT_EQ(replayed.quadrants.size(), live.quadrants.size());
        for (std::size_t i = 0; i < live.quadrants.size(); ++i) {
            EXPECT_EQ(replayed.quadrants[i], live.quadrants[i]);
            EXPECT_EQ(replayed.quadrantsAll[i], live.quadrantsAll[i]);
        }
        EXPECT_EQ(replayed.statsDoc.dump(), live.statsDoc.dump());
        EXPECT_EQ(replayed.componentsDoc.dump(),
                  live.componentsDoc.dump());
    }
}

/** Repeated experiments share one recorded trace. */
TEST(TraceGoldenTest, RecordedRunIsCached)
{
    clearExperimentCaches();
    ExperimentConfig cfg;
    const WorkloadSpec &wl = spec("compress");
    runStandardExperiment(PredictorKind::Gshare, wl, cfg);
    runStandardExperiment(PredictorKind::Gshare, wl, cfg);
    const ExperimentCacheStats stats = experimentCacheStats();
    // The pipeline is simulated once (building the decoded trace pulls
    // the recorded run in); repeat runs hit the decoded cache and
    // never reach the recorded one again.
    EXPECT_EQ(stats.recordedMisses, 1u);
    EXPECT_EQ(stats.decodedMisses, 1u);
    EXPECT_GE(stats.decodedHits, 1u);
    clearExperimentCaches();
}

std::string
recordWorkload(PredictorKind kind, const std::string &workload,
               std::string *meta = nullptr)
{
    ExperimentConfig cfg;
    const auto recorded =
        cachedRecordedRun(kind, spec(workload), cfg.workload,
                          cfg.pipeline);
    if (meta != nullptr)
        *meta = "";
    return recorded->trace;
}

TEST(TraceFormatTest, DecodeEncodeRoundTripIsByteIdentical)
{
    const std::string encoded =
        recordWorkload(PredictorKind::McFarling, "compress");
    BranchTrace trace;
    std::string error;
    ASSERT_TRUE(decodeTrace(encoded, trace, &error)) << error;
    ASSERT_FALSE(trace.records.empty());
    EXPECT_EQ(encodeTrace(trace), encoded);

    // Amortized record cost stays within the format's budget.
    const double bytes_per_branch =
        static_cast<double>(encoded.size())
        / static_cast<double>(trace.records.size());
    EXPECT_LE(bytes_per_branch, 8.0);
}

TEST(TraceFormatTest, ReaderCountsAndMetaSurvive)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.pc = 100;
    ev.info.counterMax = 3;
    ev.taken = true;
    ev.correct = true;
    ev.willCommit = true;
    ev.fetchCycle = 1;
    ev.resolveCycle = 4;
    writer.onEvent(ev);
    ev.pc = 40;
    ev.fetchCycle = 2;
    ev.resolveCycle = 5;
    ev.correct = false;
    writer.onEvent(ev);

    const std::string encoded = writer.encode("{\"hello\":1}");
    TraceReader reader(encoded);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.meta(), "{\"hello\":1}");

    TraceRecord rec;
    ASSERT_EQ(reader.next(rec), TraceReader::Status::Record);
    EXPECT_EQ(rec.pc, 100u);
    EXPECT_TRUE(rec.correct);
    ASSERT_EQ(reader.next(rec), TraceReader::Status::Record);
    EXPECT_EQ(rec.pc, 40u);
    EXPECT_FALSE(rec.correct);
    EXPECT_EQ(rec.fetchCycle, 2u);
    EXPECT_EQ(rec.resolveCycle, 5u);
    EXPECT_EQ(reader.next(rec), TraceReader::Status::End);
    EXPECT_EQ(reader.recordsRead(), 2u);
    // End is sticky.
    EXPECT_EQ(reader.next(rec), TraceReader::Status::End);
}

TEST(TraceFormatTest, BadMagicRejected)
{
    std::string data = "NOPE";
    data.push_back(1);
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(data, trace, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(TraceFormatTest, WrongVersionRejected)
{
    std::string data(TRACE_MAGIC, sizeof(TRACE_MAGIC));
    traceAppendVarint(data, TRACE_VERSION_NATIVE + 1);
    traceAppendVarint(data, 0);
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(data, trace, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

/** A trace with no native confidence anywhere must still encode as
 *  the baseline version — old readers stay compatible. */
TEST(TraceFormatTest, ClassicTraceStaysVersion1)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    writer.onEvent(ev);
    EXPECT_EQ(writer.version(), TRACE_VERSION);
    const std::string encoded = writer.encode();
    TraceReader reader(encoded);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.version(), TRACE_VERSION);
}

/** Native confidence survives an encode/decode round trip, and its
 *  presence bumps the header version to TRACE_VERSION_NATIVE. */
TEST(TraceFormatTest, NativeConfidenceRoundTrip)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    ev.pc = 64;
    ev.info.hasNativeConf = true;
    ev.info.nativeConf = 517;
    writer.onEvent(ev);
    ev.pc = 72;
    ev.info.hasNativeConf = false;
    ev.info.nativeConf = 0;
    writer.onEvent(ev);
    ev.pc = 80;
    ev.info.hasNativeConf = true;
    ev.info.nativeConf = 0; // flag set, value zero: still round-trips
    writer.onEvent(ev);
    EXPECT_EQ(writer.version(), TRACE_VERSION_NATIVE);

    const std::string encoded = writer.encode();
    TraceReader reader(encoded);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.version(), TRACE_VERSION_NATIVE);

    BranchTrace trace;
    std::string error;
    ASSERT_TRUE(decodeTrace(encoded, trace, &error)) << error;
    ASSERT_EQ(trace.records.size(), 3u);
    EXPECT_TRUE(trace.records[0].info.hasNativeConf);
    EXPECT_EQ(trace.records[0].info.nativeConf, 517u);
    EXPECT_FALSE(trace.records[1].info.hasNativeConf);
    EXPECT_EQ(trace.records[1].info.nativeConf, 0u);
    EXPECT_TRUE(trace.records[2].info.hasNativeConf);
    EXPECT_EQ(trace.records[2].info.nativeConf, 0u);

    // decode -> encode is byte-identical, version included.
    EXPECT_EQ(encodeTrace(trace), encoded);
}

/** The native-confidence flag is rejected in a version-1 header: the
 *  bit only exists in TRACE_VERSION_NATIVE. */
TEST(TraceFormatTest, NativeFlagRejectedInVersion1)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    ev.info.hasNativeConf = true;
    ev.info.nativeConf = 5;
    writer.onEvent(ev);
    std::string encoded = writer.encode();

    // Rewrite the header version back to 1 (both are 1-byte varints).
    const std::size_t version_at = sizeof(TRACE_MAGIC);
    ASSERT_EQ(static_cast<unsigned char>(encoded[version_at]),
              TRACE_VERSION_NATIVE);
    encoded[version_at] = static_cast<char>(TRACE_VERSION);

    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(encoded, trace, &error));
    EXPECT_NE(error.find("unknown flag"), std::string::npos) << error;
}

/** Every strict prefix of a valid trace must fail cleanly: the end
 *  marker makes truncation detectable at any byte boundary. */
TEST(TraceFormatTest, EveryTruncationRejected)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    for (unsigned i = 0; i < 5; ++i) {
        ev.pc = 10 + i;
        ev.taken = (i % 2) == 0;
        ev.correct = i != 3;
        ev.willCommit = i != 4;
        ev.fetchCycle = i;
        ev.resolveCycle = i + 3;
        writer.onEvent(ev);
    }
    const std::string encoded = writer.encode("meta");
    for (std::size_t len = 0; len < encoded.size(); ++len) {
        BranchTrace trace;
        std::string error;
        EXPECT_FALSE(decodeTrace(encoded.substr(0, len), trace, &error))
            << "prefix of length " << len << " decoded";
        EXPECT_FALSE(error.empty()) << "prefix " << len;
    }
}

TEST(TraceFormatTest, TrailingBytesRejected)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    writer.onEvent(ev);
    std::string encoded = writer.encode();
    encoded.push_back('\0');
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(encoded, trace, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(TraceFormatTest, CountMismatchRejected)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    writer.onEvent(ev);
    writer.onEvent(ev);
    std::string encoded = writer.encode();
    // The final varint is the record count (2); bump it.
    encoded.back() = static_cast<char>(encoded.back() + 1);
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(encoded, trace, &error));
    EXPECT_NE(error.find("count"), std::string::npos) << error;
}

TEST(TraceFormatTest, UnknownFlagBitsRejected)
{
    std::string data(TRACE_MAGIC, sizeof(TRACE_MAGIC));
    traceAppendVarint(data, TRACE_VERSION);
    traceAppendVarint(data, 0);
    traceAppendVarint(data, TRACE_FLAG_END << 1); // future flag bit
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(data, trace, &error));
    EXPECT_NE(error.find("flag"), std::string::npos) << error;
}

TEST(TraceFormatTest, FirstRecordWithoutMetaRejected)
{
    std::string data(TRACE_MAGIC, sizeof(TRACE_MAGIC));
    traceAppendVarint(data, TRACE_VERSION);
    traceAppendVarint(data, 0);
    traceAppendVarint(data, TRACE_FLAG_TAKEN); // no FLAG_META
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(data, trace, &error));
    EXPECT_NE(error.find("meta"), std::string::npos) << error;
}

TEST(TraceFormatTest, HistoryShiftWithoutHistoryRejected)
{
    std::string data(TRACE_MAGIC, sizeof(TRACE_MAGIC));
    traceAppendVarint(data, TRACE_VERSION);
    traceAppendVarint(data, 0);
    traceAppendVarint(data,
                      TRACE_FLAG_META | TRACE_FLAG_GH_SHIFT);
    traceAppendVarint(data, 3); // counterMax
    traceAppendVarint(data, 0); // globalHistoryBits
    traceAppendVarint(data, 0); // localHistoryBits
    traceAppendVarint(data, 0); // pc delta
    traceAppendVarint(data, 0); // counterValue
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(data, trace, &error));
    EXPECT_NE(error.find("GH_SHIFT"), std::string::npos) << error;
}

/**
 * Flip every byte of a valid trace (two masks: a single bit and a
 * full-byte inversion) and require the decoder to stay well-defined:
 * either reject with a non-empty error or decode records — never
 * crash, hang, or read out of bounds (the sanitizer builds run this
 * test too). When a damaged trace does decode, its re-encoding must be
 * a fixed point of the format, i.e. the decoder's acceptance always
 * describes a real trace.
 */
TEST(TraceFormatTest, EveryByteFlipIsRejectedOrWellFormed)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    ev.info.globalHistoryBits = 8;
    for (unsigned i = 0; i < 6; ++i) {
        ev.pc = 100 + 4 * (i % 3);
        ev.taken = (i % 2) == 0;
        ev.correct = i != 2;
        ev.willCommit = i != 5;
        ev.fetchCycle = i;
        ev.resolveCycle = i + 4;
        ev.info.globalHistory = (i * 37) & 0xff;
        ev.info.predTaken = ev.taken == ev.correct;
        writer.onEvent(ev);
    }
    const std::string encoded = writer.encode("{\"m\":1}");

    for (const unsigned char mask : {0x01u, 0xffu}) {
        for (std::size_t off = 0; off < encoded.size(); ++off) {
            std::string bad = encoded;
            bad[off] = static_cast<char>(bad[off] ^ mask);
            if (bad == encoded)
                continue;
            BranchTrace trace;
            std::string error;
            if (!decodeTrace(bad, trace, &error)) {
                EXPECT_FALSE(error.empty())
                    << "offset " << off << " mask " << unsigned(mask)
                    << ": rejected without an error message";
                continue;
            }
            // A flip the format cannot detect (e.g. inside a pc
            // delta) must still describe a self-consistent trace.
            const std::string reencoded = encodeTrace(trace);
            BranchTrace again;
            ASSERT_TRUE(decodeTrace(reencoded, again, &error))
                << "offset " << off << " mask " << unsigned(mask)
                << ": accepted trace does not re-decode: " << error;
            EXPECT_EQ(encodeTrace(again), reencoded)
                << "offset " << off << " mask " << unsigned(mask);
        }
    }
}

/** The flip-trace-read fault hook corrupts the nth readTraceFile()
 *  result deterministically, and the decoder downstream treats the
 *  damage like any other corruption — no crash. */
TEST(TraceFormatTest, InjectedTraceReadFlipIsSurvivable)
{
    TraceWriter writer;
    BranchEvent ev;
    ev.info.counterMax = 3;
    for (unsigned i = 0; i < 4; ++i) {
        ev.pc = 50 + i;
        ev.fetchCycle = i;
        ev.resolveCycle = i + 2;
        writer.onEvent(ev);
    }
    const std::string encoded = writer.encode();

    const std::string path =
        (std::filesystem::temp_directory_path()
         / ("confsim-trace-flip-" + std::to_string(::getpid())))
            .string();
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(encoded.data(),
                  static_cast<std::streamsize>(encoded.size()));
    }

    std::string data;
    std::string error;
    {
        FaultPlan plan;
        plan.flipTraceRead = 1;
        ScopedFaultPlan scoped(plan);
        ASSERT_TRUE(readTraceFile(path, data, &error)) << error;
    }
    std::filesystem::remove(path);
    EXPECT_NE(data, encoded) << "fault hook did not fire";

    // Decoding the damaged bytes must be well-defined either way.
    BranchTrace trace;
    if (!decodeTrace(data, trace, &error)) {
        EXPECT_FALSE(error.empty());
    }

    // Without a plan the same file round-trips untouched.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(encoded.data(),
                  static_cast<std::streamsize>(encoded.size()));
    }
    ASSERT_TRUE(readTraceFile(path, data, &error)) << error;
    std::filesystem::remove(path);
    EXPECT_EQ(data, encoded);
}

TEST(TraceFormatTest, OverlongVarintRejected)
{
    std::string data(TRACE_MAGIC, sizeof(TRACE_MAGIC));
    // 11 continuation bytes: longer than any legal uint64 varint.
    for (int i = 0; i < 11; ++i)
        data.push_back(static_cast<char>(0x80));
    BranchTrace trace;
    std::string error;
    EXPECT_FALSE(decodeTrace(data, trace, &error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceReplayerTest, MismatchedPredictorFailsLoudly)
{
    const std::string encoded =
        recordWorkload(PredictorKind::Gshare, "compress");
    auto wrong = makePredictor(PredictorKind::Bimodal);
    TraceReplayer replayer;
    replayer.attachPredictor(wrong.get());
    ReplayStats stats;
    std::string error;
    EXPECT_FALSE(replayer.replay(encoded, &stats, &error));
    EXPECT_NE(error.find("diverged"), std::string::npos) << error;
}

TEST(TraceReplayerTest, ReplayerIsReusable)
{
    const std::string encoded =
        recordWorkload(PredictorKind::Gshare, "compress");
    TraceReplayer replayer;
    ReplayStats first, second;
    std::string error;
    ASSERT_TRUE(replayer.replay(encoded, &first, &error)) << error;
    ASSERT_TRUE(replayer.replay(encoded, &second, &error)) << error;
    EXPECT_EQ(first, second);
    EXPECT_GT(first.branches, 0u);
}

} // anonymous namespace
} // namespace confsim
