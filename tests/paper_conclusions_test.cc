/**
 * @file
 * Integration tests that assert the *paper's conclusions* hold on our
 * reproduction end to end. Each test corresponds to a claim in the
 * paper's text; together they are the "does it still reproduce?"
 * regression suite. Expensive simulations are run once per process in
 * a shared fixture.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness/collectors.hh"
#include "harness/experiment.hh"
#include "metrics/analytic.hh"
#include "speccontrol/inverter.hh"

namespace confsim
{
namespace
{

/** Shared simulation results across all tests in this file. */
class PaperConclusionsTest : public ::testing::Test
{
  protected:
    struct SuiteData
    {
        std::vector<WorkloadResult> results;
        QuadrantFractions agg[NUM_STANDARD_ESTIMATORS];
        double meanAccuracy = 0.0;
    };

    static void
    SetUpTestSuite()
    {
        ExperimentConfig cfg; // scale 1 keeps this fast
        for (const auto kind :
             {PredictorKind::Gshare, PredictorKind::McFarling,
              PredictorKind::SAg}) {
            SuiteData data;
            data.results = runStandardSuiteParallel(kind, cfg);
            for (std::size_t e = 0; e < NUM_STANDARD_ESTIMATORS; ++e)
                data.agg[e] = aggregateEstimator(data.results, e);
            for (const auto &r : data.results)
                data.meanAccuracy += r.pipe.committedAccuracy();
            data.meanAccuracy /=
                static_cast<double>(data.results.size());
            suites()[kind] = std::move(data);
        }

        // Distance profiles under gshare.
        for (const auto &spec : standardWorkloads()) {
            const Program prog = spec.factory(cfg.workload);
            auto pred = makePredictor(PredictorKind::Gshare);
            Pipeline pipe(prog, *pred, cfg.pipeline);
            pipe.attachSink(&distance());
            pipe.run();
        }
    }

    static std::map<PredictorKind, SuiteData> &
    suites()
    {
        static std::map<PredictorKind, SuiteData> data;
        return data;
    }

    static DistanceCollector &
    distance()
    {
        static DistanceCollector collector(64);
        return collector;
    }
};

TEST_F(PaperConclusionsTest, JrsHasHighestPvpOnGshare)
{
    // §3.2: "the JRS estimator has the highest PVP".
    const auto &g = suites()[PredictorKind::Gshare];
    for (std::size_t e = 0; e < 4; ++e) {
        if (e == EST_JRS)
            continue;
        EXPECT_GE(g.agg[EST_JRS].pvp() + 1e-9, g.agg[e].pvp())
            << "estimator " << standardEstimatorNames()[e];
    }
}

TEST_F(PaperConclusionsTest, SatCountersHasBestPvnWorstSpecOnGshare)
{
    // §3.2: "the saturating counter method has a better PVN than the
    // JRS or profile method, but at the expense of a lower PVP...
    // the test is not very specific".
    const auto &g = suites()[PredictorKind::Gshare];
    EXPECT_GT(g.agg[EST_SATCNT].pvn(), g.agg[EST_JRS].pvn());
    EXPECT_GT(g.agg[EST_SATCNT].pvn(), g.agg[EST_STATIC].pvn());
    EXPECT_LT(g.agg[EST_SATCNT].pvp(), g.agg[EST_JRS].pvp());
    EXPECT_LT(g.agg[EST_SATCNT].spec(), g.agg[EST_JRS].spec());
}

TEST_F(PaperConclusionsTest, SatCountersHasHighestSensOnGshare)
{
    // Table 2: saturating counters lead SENS (88% in the paper).
    const auto &g = suites()[PredictorKind::Gshare];
    for (std::size_t e = 0; e < 4; ++e) {
        if (e == EST_SATCNT)
            continue;
        EXPECT_GE(g.agg[EST_SATCNT].sens(), g.agg[e].sens())
            << "estimator " << standardEstimatorNames()[e];
    }
}

TEST_F(PaperConclusionsTest, PatternEstimatorNeedsPerAddressHistory)
{
    // §3.5: "the History Pattern technique has excellent performance
    // when using a SAg, but poor performance when using a global
    // history". Its SENS must improve dramatically on SAg.
    const double sens_gshare =
        suites()[PredictorKind::Gshare].agg[EST_PATTERN].sens();
    const double sens_sag =
        suites()[PredictorKind::SAg].agg[EST_PATTERN].sens();
    EXPECT_GT(sens_sag, 2.0 * sens_gshare);
    // And on SAg it becomes competitive in PVP.
    EXPECT_GT(suites()[PredictorKind::SAg].agg[EST_PATTERN].pvp(),
              0.9);
}

TEST_F(PaperConclusionsTest, BetterPredictorLowersPvn)
{
    // §5: "as prediction accuracy increases, the PVN decreases in
    // every confidence estimator we examined".
    const auto &g = suites()[PredictorKind::Gshare];
    const auto &m = suites()[PredictorKind::McFarling];
    ASSERT_GT(m.meanAccuracy, g.meanAccuracy);
    // Allow a small tolerance: the accuracy gap between our gshare
    // and McFarling is narrower than the paper's.
    EXPECT_LT(m.agg[EST_JRS].pvn(), g.agg[EST_JRS].pvn() + 0.01);
    EXPECT_LT(m.agg[EST_SATCNT].pvn(),
              g.agg[EST_SATCNT].pvn() + 0.01);
}

TEST_F(PaperConclusionsTest, InversionNeverImproves)
{
    // §2.2/§3.5: no estimator reaches PVN > 50%, so inverting
    // low-confidence predictions never helps.
    for (const auto &[kind, data] : suites()) {
        for (const auto &r : data.results) {
            for (std::size_t e = 0; e < NUM_STANDARD_ESTIMATORS;
                 ++e) {
                EXPECT_LT(r.quadrants[e].pvn(), 0.5)
                    << predictorKindName(kind) << "/" << r.workload
                    << "/" << standardEstimatorNames()[e];
                EXPECT_FALSE(inversionWouldImprove(r.quadrants[e]));
            }
        }
    }
}

TEST_F(PaperConclusionsTest, MispredictionsCluster)
{
    // §4.1: "branches immediately following a misprediction are more
    // likely to be mispredicted".
    const auto &profile = distance().preciseAll;
    EXPECT_GT(profile.rateAt(1), 1.5 * profile.averageRate());
}

TEST_F(PaperConclusionsTest, DetectionLagSkewsPerceivedDistances)
{
    // §4.1/Figs. 8-9: perceived distances push the clustering away
    // from distance 1 (detection lags the actual misprediction).
    EXPECT_LT(distance().perceivedAll.rateAt(1),
              distance().preciseAll.rateAt(1));
}

TEST_F(PaperConclusionsTest, GoIsHardestM88ksimEasiest)
{
    // Table 1 character: go mispredicts most, m88ksim least.
    const auto &g = suites()[PredictorKind::Gshare];
    double go_acc = 1.0, m88_acc = 0.0;
    double min_acc = 1.0, max_acc = 0.0;
    for (const auto &r : g.results) {
        const double acc = r.pipe.committedAccuracy();
        if (r.workload == "go")
            go_acc = acc;
        if (r.workload == "m88ksim")
            m88_acc = acc;
        min_acc = std::min(min_acc, acc);
        max_acc = std::max(max_acc, acc);
    }
    EXPECT_DOUBLE_EQ(go_acc, min_acc);
    EXPECT_DOUBLE_EQ(m88_acc, max_acc);
}

TEST_F(PaperConclusionsTest, SpeculationExecutesExtraInstructions)
{
    // Table 1: "the processor will typically issue 20-100% more
    // instructions than actually commit". Aggregate ratio must exceed
    // 1.2 on mispredict-heavy workloads and 1.0 overall.
    const auto &g = suites()[PredictorKind::Gshare];
    for (const auto &r : g.results) {
        EXPECT_GE(r.pipe.ratioAllToCommitted(), 1.0);
        if (r.workload == "go") {
            EXPECT_GT(r.pipe.ratioAllToCommitted(), 1.2);
        }
    }
}

TEST_F(PaperConclusionsTest, AnalyticModelMatchesMeasuredQuadrants)
{
    // Fig. 1's model is exact by construction: feeding a measured
    // (SENS, SPEC, accuracy) back through it must reproduce the
    // measured PVP/PVN.
    const auto &g = suites()[PredictorKind::Gshare];
    for (const auto &r : g.results) {
        const QuadrantCounts &q = r.quadrants[EST_JRS];
        if (q.total() == 0)
            continue;
        EXPECT_NEAR(analyticPvp(q.sens(), q.spec(), q.accuracy()),
                    q.pvp(), 1e-9);
        EXPECT_NEAR(analyticPvn(q.sens(), q.spec(), q.accuracy()),
                    q.pvn(), 1e-9);
    }
}

TEST_F(PaperConclusionsTest, EstimatorsAgreeOnBranchTotals)
{
    // All five standard estimators observe the same committed stream.
    for (const auto &[kind, data] : suites()) {
        for (const auto &r : data.results) {
            for (std::size_t e = 1; e < NUM_STANDARD_ESTIMATORS; ++e)
                EXPECT_EQ(r.quadrants[e].total(),
                          r.quadrants[0].total())
                    << predictorKindName(kind) << "/" << r.workload;
        }
    }
}

} // anonymous namespace
} // namespace confsim
