/**
 * @file
 * Tests for the speculation-control applications: SMT fetch policies,
 * pipeline gating, the eager-execution model and the
 * predictor-inversion analysis.
 */

#include <gtest/gtest.h>

#include "speccontrol/eager.hh"
#include "speccontrol/gating.hh"
#include "speccontrol/inverter.hh"
#include "speccontrol/smt.hh"

namespace confsim
{
namespace
{

// ---------------------------------------------------------------------- SMT

SmtConfig
smtConfig(FetchPolicy policy)
{
    SmtConfig cfg;
    cfg.policy = policy;
    cfg.fetchThreadsPerCycle = 1;
    return cfg;
}

TEST(SmtTest, AllThreadsFinishUnderEveryPolicy)
{
    for (const auto policy :
         {FetchPolicy::RoundRobin, FetchPolicy::FewestInFlight,
          FetchPolicy::LowConfidence}) {
        SmtSimulator sim(smtConfig(policy));
        sim.addThread(standardWorkloads()[0]); // compress
        sim.addThread(standardWorkloads()[4]); // m88ksim
        const SmtStats s = sim.run();
        EXPECT_GT(s.cycles, 0u) << fetchPolicyName(policy);
        ASSERT_EQ(s.perThreadCommitted.size(), 2u);
        EXPECT_GT(s.perThreadCommitted[0], 0u);
        EXPECT_GT(s.perThreadCommitted[1], 0u);
    }
}

TEST(SmtTest, CommittedWorkIndependentOfPolicy)
{
    // Fetch policy changes *when* instructions run, never *what*
    // commits.
    std::vector<std::uint64_t> committed;
    for (const auto policy :
         {FetchPolicy::RoundRobin, FetchPolicy::LowConfidence}) {
        SmtSimulator sim(smtConfig(policy));
        sim.addThread(standardWorkloads()[0]);
        sim.addThread(standardWorkloads()[3]); // go
        const SmtStats s = sim.run();
        committed.push_back(s.committedInsts);
    }
    EXPECT_EQ(committed[0], committed[1]);
}

TEST(SmtTest, ConfidencePolicyWastesLessWork)
{
    // The point of the paper's SMT application: steering fetch away
    // from low-confidence threads reduces wrong-path work.
    auto run_policy = [](FetchPolicy policy) {
        SmtSimulator sim(smtConfig(policy));
        sim.addThread(standardWorkloads()[3]); // go (mispredicts a lot)
        sim.addThread(standardWorkloads()[4]); // m88ksim (predictable)
        return sim.run();
    };
    const SmtStats rr = run_policy(FetchPolicy::RoundRobin);
    const SmtStats conf = run_policy(FetchPolicy::LowConfidence);
    EXPECT_LT(conf.wastedWorkFraction(),
              rr.wastedWorkFraction() + 0.01);
}

TEST(SmtTest, SingleThreadDegeneratesToPipeline)
{
    SmtSimulator sim(smtConfig(FetchPolicy::RoundRobin));
    sim.addThread(standardWorkloads()[0]);
    const SmtStats s = sim.run();
    EXPECT_GT(s.throughput(), 0.5);
}

TEST(SmtTest, MultiPortFetchRunsFaster)
{
    auto run_ports = [](unsigned ports) {
        SmtConfig cfg = smtConfig(FetchPolicy::RoundRobin);
        cfg.fetchThreadsPerCycle = ports;
        SmtSimulator sim(cfg);
        sim.addThread(standardWorkloads()[0]);
        sim.addThread(standardWorkloads()[7]); // ijpeg
        return sim.run();
    };
    const SmtStats one = run_ports(1);
    const SmtStats two = run_ports(2);
    EXPECT_EQ(one.committedInsts, two.committedInsts);
    EXPECT_LT(two.cycles, one.cycles);
    EXPECT_GT(two.throughput(), one.throughput());
}

TEST(SmtTest, PolicyNames)
{
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::FewestInFlight),
                 "fewest-in-flight");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::LowConfidence),
                 "low-confidence");
}

TEST(SmtDeathTest, RunWithoutThreadsFatal)
{
    SmtSimulator sim(smtConfig(FetchPolicy::RoundRobin));
    EXPECT_EXIT(sim.run(), ::testing::ExitedWithCode(1), "no threads");
}

// ------------------------------------------------------------------- gating

TEST(GatingTest, PreservesCommittedWorkAndReducesWaste)
{
    ExperimentConfig cfg;
    const GatingResult r = runGatingExperiment(
            standardWorkloads()[3], PredictorKind::Gshare, cfg, 1);
    EXPECT_EQ(r.baseline.committedInsts, r.gated.committedInsts);
    EXPECT_LE(r.gatedWrongPath(), r.baselineWrongPath());
    EXPECT_GT(r.extraWorkReduction(), 0.0);
    EXPECT_GE(r.slowdown(), 1.0);
}

TEST(GatingTest, LooserThresholdGatesLess)
{
    ExperimentConfig cfg;
    const GatingResult tight = runGatingExperiment(
            standardWorkloads()[1], PredictorKind::Gshare, cfg, 1);
    const GatingResult loose = runGatingExperiment(
            standardWorkloads()[1], PredictorKind::Gshare, cfg, 3);
    EXPECT_LE(loose.gated.gatedCycles, tight.gated.gatedCycles);
    EXPECT_LE(loose.slowdown(), tight.slowdown() + 0.01);
}

// -------------------------------------------------------------------- eager

TEST(EagerTest, NoLowConfidenceMeansNoForks)
{
    QuadrantCounts q;
    q.chc = 100;
    q.ihc = 5;
    PipelineStats pipe;
    pipe.cycles = 1000;
    const EagerEstimate e = evaluateEagerExecution(q, pipe);
    EXPECT_DOUBLE_EQ(e.forkRate, 0.0);
    EXPECT_DOUBLE_EQ(e.savedCycles, 0.0);
}

TEST(EagerTest, HighPvnYieldsSpeedup)
{
    QuadrantCounts q;
    q.chc = 800;
    q.ihc = 10;
    q.clc = 50;
    q.ilc = 140; // PVN ~ 74%
    PipelineStats pipe;
    pipe.cycles = 10000;
    const EagerEstimate e = evaluateEagerExecution(q, pipe);
    EXPECT_GT(e.forkYield, 0.7);
    EXPECT_GT(e.netSavedCycles, 0.0);
    EXPECT_GT(e.estimatedSpeedup, 1.0);
}

TEST(EagerTest, LowPvnCanLose)
{
    QuadrantCounts q;
    q.chc = 500;
    q.clc = 480; // forks mostly wasted
    q.ilc = 20;
    PipelineStats pipe;
    pipe.cycles = 10000;
    const EagerEstimate e = evaluateEagerExecution(q, pipe);
    EXPECT_LT(e.netSavedCycles, 0.0);
    EXPECT_LT(e.estimatedSpeedup, 1.0);
}

TEST(EagerTest, EmptyInputsAreSafe)
{
    const EagerEstimate e =
        evaluateEagerExecution(QuadrantCounts{}, PipelineStats{});
    EXPECT_DOUBLE_EQ(e.estimatedSpeedup, 1.0);
}

// ----------------------------------------------------------------- inverter

TEST(InverterTest, InversionArithmetic)
{
    QuadrantCounts q;
    q.chc = 61;
    q.ihc = 2;
    q.clc = 19;
    q.ilc = 18;
    // Inverting LC: correct = chc + ilc = 79 of 100.
    EXPECT_NEAR(accuracyInvertingLowConfidence(q), 0.79, 1e-12);
    // Inverting HC: correct = ihc + clc = 21 of 100.
    EXPECT_NEAR(accuracyInvertingHighConfidence(q), 0.21, 1e-12);
    // Base accuracy 80% > 79%: inversion would not help (PVN < 50%).
    EXPECT_FALSE(inversionWouldImprove(q));
}

TEST(InverterTest, HighPvnMakesInversionProfitable)
{
    QuadrantCounts q;
    q.chc = 70;
    q.ihc = 5;
    q.clc = 5;
    q.ilc = 20; // PVN = 80% > 50%
    EXPECT_TRUE(inversionWouldImprove(q));
    EXPECT_GT(accuracyInvertingLowConfidence(q), q.accuracy());
}

TEST(InverterTest, EmptyQuadrantsSafe)
{
    QuadrantCounts q;
    EXPECT_DOUBLE_EQ(accuracyInvertingLowConfidence(q), 0.0);
    EXPECT_FALSE(inversionWouldImprove(q));
}

} // anonymous namespace
} // namespace confsim
