/**
 * @file
 * Unit tests for the metrics framework, anchored on the worked
 * examples in the paper itself: the §2.1 quadrant example (100
 * branches, 20 mispredicted) and the §1.1 ELISA diagnostic-test
 * numbers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/analytic.hh"
#include "metrics/quadrant.hh"

namespace confsim
{
namespace
{

/** The paper's §2.1 example table: HC row (61, 2), LC row (19, 18). */
QuadrantCounts
paperExample()
{
    QuadrantCounts q;
    q.chc = 61;
    q.ihc = 2;
    q.clc = 19;
    q.ilc = 18;
    return q;
}

TEST(QuadrantTest, PaperExampleSens)
{
    // "The SENS would be 61/(61+19) = 76%"
    EXPECT_NEAR(paperExample().sens(), 61.0 / 80.0, 1e-12);
}

TEST(QuadrantTest, PaperExamplePvp)
{
    // "the PVP would be 61/(61+2) = 97%"
    EXPECT_NEAR(paperExample().pvp(), 61.0 / 63.0, 1e-12);
}

TEST(QuadrantTest, PaperExampleSpec)
{
    // "The SPEC would be 18/(18+2) = 90%"
    EXPECT_NEAR(paperExample().spec(), 18.0 / 20.0, 1e-12);
}

TEST(QuadrantTest, PaperExamplePvn)
{
    // "The PVN would be 18/(18+19) = 49%"
    EXPECT_NEAR(paperExample().pvn(), 18.0 / 37.0, 1e-12);
}

TEST(QuadrantTest, AccuracyIsChcPlusClc)
{
    EXPECT_NEAR(paperExample().accuracy(), 0.80, 1e-12);
    EXPECT_NEAR(paperExample().mispredictRate(), 0.20, 1e-12);
}

TEST(QuadrantTest, JacobsenMetrics)
{
    const QuadrantCounts q = paperExample();
    // Confidence mispredictions: I_HC + C_LC = 2 + 19.
    EXPECT_NEAR(q.jacobsenMispredictRate(), 21.0 / 100.0, 1e-12);
    // Coverage: C_LC + I_LC = 19 + 18.
    EXPECT_NEAR(q.coverage(), 37.0 / 100.0, 1e-12);
}

TEST(QuadrantTest, RecordRoutesCorrectly)
{
    QuadrantCounts q;
    q.record(true, true);   // chc
    q.record(true, false);  // clc
    q.record(false, true);  // ihc
    q.record(false, false); // ilc
    EXPECT_EQ(q.chc, 1u);
    EXPECT_EQ(q.clc, 1u);
    EXPECT_EQ(q.ihc, 1u);
    EXPECT_EQ(q.ilc, 1u);
    EXPECT_EQ(q.total(), 4u);
}

TEST(QuadrantTest, EmptyIsAllZero)
{
    QuadrantCounts q;
    EXPECT_DOUBLE_EQ(q.sens(), 0.0);
    EXPECT_DOUBLE_EQ(q.spec(), 0.0);
    EXPECT_DOUBLE_EQ(q.pvp(), 0.0);
    EXPECT_DOUBLE_EQ(q.pvn(), 0.0);
    EXPECT_DOUBLE_EQ(q.accuracy(), 0.0);
}

TEST(QuadrantTest, MergeAddsCounts)
{
    QuadrantCounts a = paperExample();
    a += paperExample();
    EXPECT_EQ(a.chc, 122u);
    EXPECT_EQ(a.total(), 200u);
    EXPECT_NEAR(a.sens(), paperExample().sens(), 1e-12);
}

TEST(QuadrantFractionsTest, NormalizeSumsToOne)
{
    const QuadrantFractions f =
        QuadrantFractions::normalize(paperExample());
    EXPECT_NEAR(f.chc + f.ihc + f.clc + f.ilc, 1.0, 1e-12);
    EXPECT_NEAR(f.sens(), paperExample().sens(), 1e-12);
    EXPECT_NEAR(f.pvn(), paperExample().pvn(), 1e-12);
}

TEST(QuadrantFractionsTest, NormalizeEmptyIsZero)
{
    const QuadrantFractions f =
        QuadrantFractions::normalize(QuadrantCounts{});
    EXPECT_DOUBLE_EQ(f.chc + f.ihc + f.clc + f.ilc, 0.0);
}

TEST(AggregateTest, EqualRunsAggregateToThemselves)
{
    const auto agg =
        aggregateQuadrants({paperExample(), paperExample()});
    EXPECT_NEAR(agg.sens(), paperExample().sens(), 1e-12);
    EXPECT_NEAR(agg.spec(), paperExample().spec(), 1e-12);
}

TEST(AggregateTest, WorkloadsWeightedEquallyNotByBranchCount)
{
    // One small and one large run with different quadrant shapes: the
    // paper averages normalized fractions, so each workload counts
    // once regardless of its branch count.
    QuadrantCounts small;
    small.chc = 1; // 100% HC/correct
    QuadrantCounts large;
    large.ilc = 1000; // 100% LC/incorrect
    const auto agg = aggregateQuadrants({small, large});
    EXPECT_NEAR(agg.chc, 0.5, 1e-12);
    EXPECT_NEAR(agg.ilc, 0.5, 1e-12);
}

TEST(AggregateTest, EmptyInputIsZero)
{
    const auto agg = aggregateQuadrants({});
    EXPECT_DOUBLE_EQ(agg.chc, 0.0);
}

// ------------------------------------------------------------- analytic

TEST(AnalyticTest, QuadrantConstruction)
{
    const QuadrantFractions f = analyticQuadrants(0.7, 0.9, 0.8);
    EXPECT_NEAR(f.chc, 0.7 * 0.8, 1e-12);
    EXPECT_NEAR(f.clc, 0.3 * 0.8, 1e-12);
    EXPECT_NEAR(f.ilc, 0.9 * 0.2, 1e-12);
    EXPECT_NEAR(f.ihc, 0.1 * 0.2, 1e-12);
    EXPECT_NEAR(f.chc + f.ihc + f.clc + f.ilc, 1.0, 1e-12);
}

TEST(AnalyticTest, PvpPvnMatchDefinitions)
{
    const double sens = 0.7, spec = 0.9, p = 0.8;
    const double pvp = analyticPvp(sens, spec, p);
    const double pvn = analyticPvn(sens, spec, p);
    EXPECT_NEAR(pvp,
                (sens * p) / (sens * p + (1 - spec) * (1 - p)), 1e-12);
    EXPECT_NEAR(pvn,
                (spec * (1 - p))
                    / (spec * (1 - p) + (1 - sens) * p),
                1e-12);
}

TEST(AnalyticTest, PerfectEstimatorHasUnitPredictiveValues)
{
    EXPECT_NEAR(analyticPvp(1.0, 1.0, 0.9), 1.0, 1e-12);
    EXPECT_NEAR(analyticPvn(1.0, 1.0, 0.9), 1.0, 1e-12);
}

TEST(AnalyticTest, HigherAccuracyLowersPvn)
{
    // The paper's closing observation: as prediction accuracy rises,
    // PVN falls for every estimator.
    const double lo = analyticPvn(0.7, 0.9, 0.7);
    const double hi = analyticPvn(0.7, 0.9, 0.95);
    EXPECT_GT(lo, hi);
}

TEST(AnalyticTest, HigherSensRaisesPvn)
{
    EXPECT_GT(analyticPvn(0.9, 0.9, 0.9),
              analyticPvn(0.5, 0.9, 0.9));
}

TEST(AnalyticTest, ElisaExampleFromPaper)
{
    // §1.1: SENS = 0.977, SPEC = 0.926, prevalence 0.0001
    // -> PVP = 0.001319.
    const double pvp = diagnosticPvp(0.977, 0.926, 0.0001);
    EXPECT_NEAR(pvp, 0.001319, 5e-6);
}

TEST(AnalyticTest, BoostedPvnFormula)
{
    // §4.2: two LC estimates with PVN 30% -> about 51%.
    EXPECT_NEAR(boostedPvn(0.3, 2), 1.0 - 0.49, 1e-12);
    EXPECT_NEAR(boostedPvn(0.3, 1), 0.3, 1e-12);
    EXPECT_NEAR(boostedPvn(0.0, 5), 0.0, 1e-12);
    EXPECT_NEAR(boostedPvn(1.0, 1), 1.0, 1e-12);
}

TEST(AnalyticTest, BoostedPvnMonotoneInDegree)
{
    for (unsigned n = 1; n < 6; ++n)
        EXPECT_LT(boostedPvn(0.25, n), boostedPvn(0.25, n + 1));
}

TEST(ParametricCurveTest, SweepsRequestedParameter)
{
    const auto points =
        parametricCurve(SweepParam::Sens, 0.0, 0.9, 0.8, 0.0, 1.0, 10);
    ASSERT_EQ(points.size(), 11u);
    EXPECT_NEAR(points.front().varied, 0.0, 1e-12);
    EXPECT_NEAR(points.back().varied, 1.0, 1e-12);
    // At SENS = 1 every correct branch is HC: PVN = 1 (no C_LC).
    EXPECT_NEAR(points.back().pvn, 1.0, 1e-12);
}

TEST(ParametricCurveTest, PvpRisesWithSens)
{
    const auto points =
        parametricCurve(SweepParam::Sens, 0.0, 0.9, 0.8, 0.1, 1.0, 9);
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_GE(points[i].pvp, points[i - 1].pvp - 1e-12);
}

TEST(ParametricCurveTest, PvnRisesWithSpec)
{
    const auto points =
        parametricCurve(SweepParam::Spec, 0.7, 0.0, 0.8, 0.1, 1.0, 9);
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_GE(points[i].pvn, points[i - 1].pvn - 1e-12);
}

TEST(ParametricCurveDeathTest, ZeroStepsFatal)
{
    EXPECT_EXIT(parametricCurve(SweepParam::Sens, 0, 0, 0, 0, 1, 0),
                ::testing::ExitedWithCode(1), "step");
}

/**
 * Property sweep: for any (SENS, SPEC, p) grid point, reconstructing
 * SENS/SPEC from the analytic quadrants must return the inputs, and
 * PVP/PVN must lie in [0, 1].
 */
class AnalyticGridTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(AnalyticGridTest, RoundTripsAndBounds)
{
    const auto [sens, spec, p] = GetParam();
    const QuadrantFractions f = analyticQuadrants(sens, spec, p);
    EXPECT_NEAR(f.sens(), sens, 1e-9);
    EXPECT_NEAR(f.spec(), spec, 1e-9);
    EXPECT_NEAR(f.accuracy(), p, 1e-9);
    EXPECT_GE(f.pvp(), 0.0);
    EXPECT_LE(f.pvp(), 1.0);
    EXPECT_GE(f.pvn(), 0.0);
    EXPECT_LE(f.pvn(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
        Grid, AnalyticGridTest,
        ::testing::Combine(::testing::Values(0.2, 0.5, 0.7, 0.99),
                           ::testing::Values(0.3, 0.7, 0.96),
                           ::testing::Values(0.7, 0.9, 0.98)));

} // anonymous namespace
} // namespace confsim
