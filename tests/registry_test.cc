/**
 * @file
 * Unit tests for the SimObject/StatsRegistry architecture: hierarchical
 * path construction, per-object reset zeroing, the PipelineStats
 * field-count guard, and reset-then-rerun determinism.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "bpred/branch_predictor.hh"
#include "common/stats_registry.hh"
#include "confidence/jrs.hh"
#include "harness/experiment_cache.hh"
#include "pipeline/pipeline.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

/** Minimal SimObject exercising manual registration. */
class ToyObject : public SimObject
{
  public:
    std::string name() const override { return "toy"; }

    void reset() override { events = 0; misses = 0; }

    void
    registerStats(StatsRegistry &reg) override
    {
        reg.addCounter("events", &events, "toy events");
        reg.addCounter("misses", &misses, "toy misses");
        reg.addRatio("miss_rate", &misses, &events, "toy miss rate");
    }

    void
    describeConfig(ConfigWriter &out) const override
    {
        out.putUint("knob", 7);
    }

    std::uint64_t events = 0;
    std::uint64_t misses = 0;
};

TEST(StatsRegistryTest, DottedPathsFollowScopes)
{
    StatsRegistry reg;
    ToyObject toy;
    reg.registerObject("outer.inner", toy);
    ASSERT_EQ(reg.entries().size(), 3u);
    EXPECT_EQ(reg.entries()[0].path, "outer.inner.events");
    EXPECT_EQ(reg.entries()[1].path, "outer.inner.misses");
    EXPECT_EQ(reg.entries()[2].path, "outer.inner.miss_rate");
    ASSERT_EQ(reg.objects().size(), 1u);
    EXPECT_EQ(reg.objects()[0].path, "outer.inner");
}

TEST(StatsRegistryTest, CountersTrackLiveFields)
{
    StatsRegistry reg;
    ToyObject toy;
    reg.registerObject("toy", toy);
    toy.events = 10;
    toy.misses = 4;
    const JsonValue stats = reg.statsJson();
    EXPECT_EQ(stats.find("toy")->find("events")->asUint(), 10u);
    EXPECT_EQ(stats.find("toy")->find("misses")->asUint(), 4u);
    EXPECT_DOUBLE_EQ(stats.find("toy")->find("miss_rate")->asDouble(),
                     0.4);
}

TEST(StatsRegistryTest, RatioWithZeroDenominatorIsZero)
{
    StatsRegistry reg;
    ToyObject toy;
    reg.registerObject("toy", toy);
    const JsonValue stats = reg.statsJson();
    EXPECT_DOUBLE_EQ(stats.find("toy")->find("miss_rate")->asDouble(),
                     0.0);
}

TEST(StatsRegistryTest, ConfigJsonCarriesNameAndDescribeConfig)
{
    StatsRegistry reg;
    ToyObject toy;
    reg.registerObject("toy", toy);
    const JsonValue cfg = reg.configJson();
    EXPECT_EQ(cfg.find("toy")->find("name")->asString(), "toy");
    EXPECT_EQ(cfg.find("toy")->find("knob")->asUint(), 7u);
}

TEST(StatsRegistryTest, ZeroCountersClearsEveryCounter)
{
    StatsRegistry reg;
    ToyObject toy;
    reg.registerObject("toy", toy);
    toy.events = 99;
    toy.misses = 12;
    reg.zeroCounters();
    EXPECT_EQ(toy.events, 0u);
    EXPECT_EQ(toy.misses, 0u);
}

/**
 * Every registered SimObject's reset() must zero every counter that
 * object registered — the contract regression harnesses rely on.
 */
TEST(StatsRegistryTest, ResetZeroesEveryRegisteredCounterPerObject)
{
    const WorkloadConfig wl;
    const auto &spec = standardWorkloads().front();
    const auto prog = cachedProgram(spec, wl);

    auto pred = makePredictor(PredictorKind::Gshare);
    JrsEstimator jrs;
    Pipeline pipe(*prog, *pred);
    pipe.attachEstimator(&jrs);

    StatsRegistry reg;
    reg.registerObject("predictor", *pred);
    reg.registerObject("estimator", jrs);
    reg.registerObject("pipeline", pipe);

    pipe.run();
    // The run must have produced nonzero counters somewhere.
    bool any_nonzero = false;
    for (const auto &entry : reg.entries())
        if (entry.kind == StatsRegistry::StatKind::Counter
            && *entry.counter != 0)
            any_nonzero = true;
    ASSERT_TRUE(any_nonzero);

    for (const auto &record : reg.objects()) {
        record.object->reset();
        EXPECT_TRUE(reg.countersZeroFor(*record.object))
                << record.path << " left a counter nonzero after "
                << "reset()";
    }
}

/**
 * Guard: when a field is added to PipelineStats, it must also be
 * registered in Pipeline::registerStats. PipelineStats is all 64-bit
 * counters, so the field count is sizeof-derivable.
 */
TEST(StatsRegistryTest, PipelineStatsFieldCountMatchesRegistration)
{
    const WorkloadConfig wl;
    const auto &spec = standardWorkloads().front();
    const auto prog = cachedProgram(spec, wl);
    auto pred = makePredictor(PredictorKind::Gshare);
    Pipeline pipe(*prog, *pred);

    StatsRegistry reg;
    reg.registerObject("pipeline", pipe);

    static_assert(sizeof(PipelineStats) % sizeof(std::uint64_t) == 0,
                  "PipelineStats must stay all-uint64 for this guard");
    EXPECT_EQ(reg.countersOwnedBy(pipe),
              sizeof(PipelineStats) / sizeof(std::uint64_t))
            << "PipelineStats and Pipeline::registerStats are out of "
            << "sync: register every new stats field";
}

TEST(StatsRegistryTest, ChildObjectsNestUnderPipeline)
{
    const WorkloadConfig wl;
    const auto &spec = standardWorkloads().front();
    const auto prog = cachedProgram(spec, wl);
    auto pred = makePredictor(PredictorKind::Gshare);
    Pipeline pipe(*prog, *pred);

    StatsRegistry reg;
    reg.registerObject("pipeline", pipe);

    bool icache_seen = false, dcache_seen = false, btb_seen = false;
    for (const auto &record : reg.objects()) {
        icache_seen |= record.path == "pipeline.icache";
        dcache_seen |= record.path == "pipeline.dcache";
        btb_seen |= record.path == "pipeline.btb";
    }
    EXPECT_TRUE(icache_seen);
    EXPECT_TRUE(dcache_seen);
    EXPECT_TRUE(btb_seen);

    const JsonValue stats = reg.statsJson();
    const JsonValue *pipeline = stats.find("pipeline");
    ASSERT_NE(pipeline, nullptr);
    ASSERT_NE(pipeline->find("icache"), nullptr);
    EXPECT_NE(pipeline->find("icache")->find("accesses"), nullptr);
}

/** resetObjects() + rerun must reproduce the run bit-identically. */
TEST(StatsRegistryTest, ResetThenRerunIsDeterministic)
{
    const WorkloadConfig wl;
    const auto &spec = standardWorkloads().front();
    const auto prog = cachedProgram(spec, wl);

    auto pred = makePredictor(PredictorKind::Gshare);
    JrsEstimator jrs;
    Pipeline pipe(*prog, *pred);
    pipe.attachEstimator(&jrs);

    StatsRegistry reg;
    reg.registerObject("predictor", *pred);
    reg.registerObject("estimator", jrs);
    reg.registerObject("pipeline", pipe);

    const PipelineStats first = pipe.run();
    const JsonValue first_doc = reg.statsJson();

    reg.resetObjects();
    EXPECT_TRUE(reg.countersZeroFor(pipe));

    const PipelineStats second = pipe.run();
    EXPECT_EQ(first, second);
    EXPECT_EQ(first_doc, reg.statsJson());
}

TEST(StatsRegistryTest, PredictorStatsCountNvi)
{
    auto pred = makePredictor(PredictorKind::Bimodal);
    StatsRegistry reg;
    reg.registerObject("predictor", *pred);

    const BpInfo info = pred->predict(0x40);
    pred->update(0x40, !info.predTaken, info); // force a mispredict

    const JsonValue stats = reg.statsJson();
    const JsonValue *p = stats.find("predictor");
    EXPECT_EQ(p->find("predicts")->asUint(), 1u);
    EXPECT_EQ(p->find("updates")->asUint(), 1u);
    EXPECT_EQ(p->find("mispredicts")->asUint(), 1u);

    pred->reset();
    EXPECT_TRUE(reg.countersZeroFor(*pred));
}

TEST(StatsRegistryTest, EstimatorStatsCountNvi)
{
    JrsEstimator jrs;
    StatsRegistry reg;
    reg.registerObject("estimator", jrs);

    const BpInfo info;
    // Fresh MDC is 0 < threshold: low confidence.
    EXPECT_FALSE(jrs.estimate(0x40, info));
    jrs.update(0x40, true, true, info);

    const JsonValue stats = reg.statsJson();
    const JsonValue *e = stats.find("estimator");
    EXPECT_EQ(e->find("estimates")->asUint(), 1u);
    EXPECT_EQ(e->find("low_estimates")->asUint(), 1u);
    EXPECT_EQ(e->find("updates")->asUint(), 1u);
    EXPECT_DOUBLE_EQ(e->find("low_fraction")->asDouble(), 1.0);

    jrs.reset();
    EXPECT_TRUE(reg.countersZeroFor(jrs));
}

} // anonymous namespace
} // namespace confsim
