/**
 * @file
 * Round-trip tests for config JSON serialization and end-to-end
 * serialization determinism: every config struct must survive
 * toJson -> dump -> parse -> fromJson field-identically, and the
 * standard suite must emit identical JSON documents whether it runs
 * serially or in parallel.
 */

#include <gtest/gtest.h>

#include "harness/config_json.hh"
#include "harness/experiment.hh"

namespace confsim
{
namespace
{

/** toJson -> dump -> parse -> fromJson must reproduce @p original. */
template <typename Config>
void
expectRoundTrip(const Config &original)
{
    const JsonValue doc = toJson(original);
    std::string parse_err;
    const JsonValue reparsed =
        JsonValue::parse(doc.dump(2), &parse_err);
    ASSERT_TRUE(parse_err.empty()) << parse_err;

    Config restored; // defaults, then overridden field by field
    std::string err;
    ASSERT_TRUE(fromJson(reparsed, restored, &err)) << err;
    EXPECT_TRUE(restored == original);
}

TEST(ConfigRoundTripTest, Bimodal)
{
    BimodalConfig cfg;
    cfg.tableEntries = 1024;
    cfg.counterBits = 3;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, Gshare)
{
    GshareConfig cfg;
    cfg.tableEntries = 8192;
    cfg.historyBits = 10;
    cfg.speculativeHistory = false;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, Gselect)
{
    GselectConfig cfg;
    cfg.addrBits = 5;
    cfg.historyBits = 7;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, McFarling)
{
    McFarlingConfig cfg;
    cfg.gshareEntries = 2048;
    cfg.metaEntries = 1024;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, SAg)
{
    SAgConfig cfg;
    cfg.bhtEntries = 512;
    cfg.historyBits = 9;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, PAs)
{
    PAsConfig cfg;
    cfg.historyEntries = 4096;
    cfg.ways = 2;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, Btb)
{
    BtbConfig cfg;
    cfg.entries = 256;
    cfg.ways = 8;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, Cache)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.missLatency = 42;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, PipelineIncludingNestedConfigs)
{
    PipelineConfig cfg;
    cfg.fetchWidth = 8;
    cfg.mispredictPenalty = 7;
    cfg.useBtb = true;
    cfg.btb.entries = 128;
    cfg.icache.sizeBytes = 16 * 1024;
    cfg.dcache.missLatency = 99;
    cfg.maxForksInFlight = 2;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, Jrs)
{
    JrsConfig cfg;
    cfg.tableEntries = 256;
    cfg.threshold = 7;
    cfg.enhanced = false;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, CirBothModes)
{
    CirConfig ones;
    ones.mode = CirMode::OnesCount;
    ones.cirBits = 12;
    ones.perAddress = true;
    expectRoundTrip(ones);

    CirConfig table;
    table.mode = CirMode::PatternTable;
    table.counterThreshold = 2;
    expectRoundTrip(table);
}

TEST(ConfigRoundTripTest, McfJrsAllCombineRules)
{
    for (auto rule : {McfJrsCombine::Selected, McfJrsCombine::BothAbove,
                      McfJrsCombine::EitherAbove}) {
        McfJrsConfig cfg;
        cfg.combine = rule;
        cfg.threshold = 9;
        expectRoundTrip(cfg);
    }
}

TEST(ConfigRoundTripTest, Workload)
{
    WorkloadConfig cfg;
    cfg.scale = 3;
    cfg.seed = 0xdeadbeefcafef00dull;
    expectRoundTrip(cfg);
}

TEST(ConfigRoundTripTest, ExperimentIncludingNestedConfigs)
{
    ExperimentConfig cfg;
    cfg.workload.scale = 2;
    cfg.pipeline.fetchWidth = 2;
    cfg.pipeline.icache.sizeBytes = 8 * 1024;
    cfg.jrs.threshold = 3;
    cfg.staticThreshold = 0.85;
    cfg.distanceThreshold = 9;
    expectRoundTrip(cfg);
}

TEST(ConfigFromJsonTest, RejectsUnknownKey)
{
    JsonValue doc = toJson(GshareConfig{});
    doc["tabel_entries"] = JsonValue(std::uint64_t{64}); // typo
    GshareConfig cfg;
    std::string err;
    EXPECT_FALSE(fromJson(doc, cfg, &err));
    EXPECT_NE(err.find("tabel_entries"), std::string::npos);
}

TEST(ConfigFromJsonTest, RejectsTypeMismatch)
{
    JsonValue doc = toJson(JrsConfig{});
    doc["threshold"] = JsonValue("fifteen");
    JrsConfig cfg;
    std::string err;
    EXPECT_FALSE(fromJson(doc, cfg, &err));
    EXPECT_NE(err.find("threshold"), std::string::npos);
}

TEST(ConfigFromJsonTest, RejectsNegativeForUnsignedField)
{
    JsonValue doc = JsonValue::object();
    doc["scale"] = JsonValue(std::int64_t{-1});
    WorkloadConfig cfg;
    std::string err;
    EXPECT_FALSE(fromJson(doc, cfg, &err));
}

TEST(ConfigFromJsonTest, PartialDocumentKeepsDefaults)
{
    JsonValue doc = JsonValue::object();
    doc["threshold"] = JsonValue(std::uint64_t{3});
    JrsConfig cfg;
    std::string err;
    ASSERT_TRUE(fromJson(doc, cfg, &err)) << err;
    EXPECT_EQ(cfg.threshold, 3u);
    EXPECT_EQ(cfg.tableEntries, JrsConfig{}.tableEntries);
    EXPECT_TRUE(cfg.enhanced);
}

TEST(ConfigFromJsonTest, RejectsNonObjectRoot)
{
    JrsConfig cfg;
    std::string err;
    EXPECT_FALSE(fromJson(JsonValue(std::uint64_t{5}), cfg, &err));
}

/** The same config must reproduce the same run, stats docs included. */
TEST(SerializedSuiteTest, ConfigRoundTripReproducesRunBitIdentically)
{
    ExperimentConfig cfg;
    const auto &spec = standardWorkloads().front();
    const WorkloadResult first =
        runStandardExperiment(PredictorKind::Gshare, spec, cfg);

    ExperimentConfig restored;
    std::string err;
    ASSERT_TRUE(fromJson(
            JsonValue::parse(toJson(cfg).dump(2)), restored, &err))
            << err;
    ASSERT_TRUE(restored == cfg);

    const WorkloadResult second =
        runStandardExperiment(PredictorKind::Gshare, spec, restored);
    EXPECT_TRUE(first.pipe == second.pipe);
    EXPECT_EQ(first.statsDoc, second.statsDoc);
    EXPECT_EQ(first.componentsDoc, second.componentsDoc);
}

/** Serial and parallel suites must emit identical JSON documents. */
TEST(SerializedSuiteTest, SerialAndParallelSuiteStatsJsonIdentical)
{
    ExperimentConfig cfg;
    const auto serial = runStandardSuite(PredictorKind::Gshare, cfg);
    const auto parallel =
        runStandardSuiteParallel(PredictorKind::Gshare, cfg, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].pipe == parallel[i].pipe);
        EXPECT_EQ(serial[i].statsDoc, parallel[i].statsDoc)
                << serial[i].workload;
        EXPECT_EQ(serial[i].componentsDoc, parallel[i].componentsDoc)
                << serial[i].workload;
        EXPECT_EQ(serial[i].statsDoc.dump(2),
                  parallel[i].statsDoc.dump(2))
                << serial[i].workload;
    }
}

/** The per-run stats document nests every component of the run. */
TEST(SerializedSuiteTest, StatsDocCoversAllComponents)
{
    ExperimentConfig cfg;
    const auto &spec = standardWorkloads().front();
    const WorkloadResult result =
        runStandardExperiment(PredictorKind::McFarling, spec, cfg);

    const JsonValue &stats = result.statsDoc;
    ASSERT_NE(stats.find("predictor"), nullptr);
    ASSERT_NE(stats.find("estimators"), nullptr);
    for (const auto &slug : standardEstimatorSlugs())
        EXPECT_NE(stats.find("estimators")->find(slug), nullptr)
                << slug;
    const JsonValue *pipeline = stats.find("pipeline");
    ASSERT_NE(pipeline, nullptr);
    EXPECT_NE(pipeline->find("cycles"), nullptr);
    EXPECT_NE(pipeline->find("icache"), nullptr);
    EXPECT_NE(pipeline->find("dcache"), nullptr);
    EXPECT_NE(pipeline->find("btb"), nullptr);

    // Pipeline snapshot counters and the live cache counters must
    // agree once the run has finished.
    EXPECT_EQ(pipeline->find("icache_accesses")->asUint(),
              pipeline->find("icache")->find("accesses")->asUint());
    EXPECT_EQ(pipeline->find("dcache_misses")->asUint(),
              pipeline->find("dcache")->find("misses")->asUint());

    const JsonValue &components = result.componentsDoc;
    EXPECT_EQ(components.find("predictor")->find("name")->asString(),
              "mcfarling");
}

} // anonymous namespace
} // namespace confsim
