/**
 * @file
 * Unit tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace confsim
{
namespace
{

CacheConfig
tinyCache(unsigned ways = 2)
{
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.lineBytes = 32;
    cfg.associativity = ways;
    cfg.hitLatency = 2;
    cfg.missLatency = 10;
    return cfg;
}

TEST(CacheTest, ColdMissThenHit)
{
    Cache c(tinyCache());
    EXPECT_EQ(c.access(0x100), 12u); // miss: hit + miss latency
    EXPECT_EQ(c.access(0x100), 2u);  // hit
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, SameLineSharesBlock)
{
    Cache c(tinyCache());
    c.access(0x100);
    EXPECT_EQ(c.access(0x11f), 2u); // same 32B line
    EXPECT_EQ(c.access(0x120), 12u); // next line
}

TEST(CacheTest, GeometryComputed)
{
    Cache c(tinyCache());
    EXPECT_EQ(c.numSets(), 4u); // 256 / (32*2)
}

TEST(CacheTest, LruEvictsOldest)
{
    // 4 sets, 2 ways: three blocks mapping to set 0.
    Cache c(tinyCache());
    const Addr a = 0x000, b = 0x080, d = 0x100; // set 0 stride = 128
    c.access(a);
    c.access(b);
    c.access(a);      // a is now MRU
    c.access(d);      // evicts b (LRU)
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(CacheTest, ContainsHasNoSideEffects)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_EQ(c.accesses(), 0u);
    c.access(0x100);
    EXPECT_TRUE(c.contains(0x100));
}

TEST(CacheTest, DirectMappedConflicts)
{
    Cache c(tinyCache(1)); // 8 sets, direct mapped
    const Addr a = 0x000, b = 0x100; // both set 0 (stride 256)
    c.access(a);
    c.access(b); // evicts a
    EXPECT_FALSE(c.contains(a));
    EXPECT_TRUE(c.contains(b));
}

TEST(CacheTest, FullyAssociativeKeepsWorkingSet)
{
    CacheConfig cfg = tinyCache(8); // 1 set, 8 ways
    Cache c(cfg);
    for (Addr a = 0; a < 8 * 32; a += 32)
        c.access(a);
    for (Addr a = 0; a < 8 * 32; a += 32)
        EXPECT_TRUE(c.contains(a));
    EXPECT_EQ(c.misses(), 8u);
}

TEST(CacheTest, MissRate)
{
    Cache c(tinyCache());
    c.access(0x0);
    c.access(0x0);
    c.access(0x0);
    c.access(0x0);
    EXPECT_NEAR(c.missRate(), 0.25, 1e-12);
}

TEST(CacheTest, ResetInvalidatesAndClearsStats)
{
    Cache c(tinyCache());
    c.access(0x100);
    c.reset();
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.0);
}

TEST(CacheTest, PaperConfigurationsConstruct)
{
    // 64 kB D / 128 kB I with 2-cycle access, per §3.1.
    Cache dcache({64 * 1024, 32, 2, 2, 10}, "dcache");
    Cache icache({128 * 1024, 32, 2, 2, 10}, "icache");
    EXPECT_EQ(dcache.numSets(), 1024u);
    EXPECT_EQ(icache.numSets(), 2048u);
    EXPECT_EQ(dcache.access(0x1234), 12u);
    EXPECT_EQ(dcache.access(0x1234), 2u);
}

TEST(CacheDeathTest, NonPowerOfTwoLineFatal)
{
    CacheConfig cfg = tinyCache();
    cfg.lineBytes = 24;
    EXPECT_EXIT(Cache c(cfg), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(CacheDeathTest, ZeroWaysFatal)
{
    CacheConfig cfg = tinyCache();
    cfg.associativity = 0;
    EXPECT_EXIT(Cache c(cfg), ::testing::ExitedWithCode(1),
                "associativity");
}

TEST(CacheDeathTest, IndivisibleGeometryFatal)
{
    CacheConfig cfg = tinyCache();
    cfg.sizeBytes = 300;
    EXPECT_EXIT(Cache c(cfg), ::testing::ExitedWithCode(1),
                "divisible");
}

/** Sweep: every legal geometry must keep hits after a fill pass within
 *  capacity. */
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometryTest, WorkingSetWithinCapacityHits)
{
    const auto [size_kb, ways] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size_kb * 1024;
    cfg.lineBytes = 32;
    cfg.associativity = ways;
    Cache c(cfg);
    const std::size_t lines = cfg.sizeBytes / cfg.lineBytes;
    // Fill exactly to capacity, then touch everything again: with LRU
    // and a sequential fill, the second pass must be all hits.
    for (std::size_t i = 0; i < lines; ++i)
        c.access(static_cast<Addr>(i * cfg.lineBytes));
    const std::uint64_t misses_after_fill = c.misses();
    for (std::size_t i = 0; i < lines; ++i)
        c.access(static_cast<Addr>(i * cfg.lineBytes));
    EXPECT_EQ(c.misses(), misses_after_fill);
}

INSTANTIATE_TEST_SUITE_P(
        Geometries, CacheGeometryTest,
        ::testing::Combine(::testing::Values(1u, 4u, 64u),
                           ::testing::Values(1u, 2u, 4u, 8u)));

} // anonymous namespace
} // namespace confsim
