/**
 * Golden-equivalence tests of the batched sweep engine: every lane
 * kind, over every predictor family, must reproduce an independent
 * TraceReplayer pass bit for bit — quadrants, estimator stats, level
 * sweeps, and distance streams — and the grid runner must emit
 * byte-identical JSON for any job count.
 */

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/confsim_error.hh"
#include "common/fault_injection.hh"
#include "confidence/distance.hh"
#include "confidence/jrs.hh"
#include "confidence/native.hh"
#include "confidence/pattern.hh"
#include "confidence/sat_counters.hh"
#include "confidence/static_profile.hh"
#include "harness/collectors.hh"
#include "harness/experiment.hh"
#include "harness/experiment_cache.hh"
#include "common/random.hh"
#include "harness/sweep.hh"
#include "sweep/batch_replayer.hh"
#include "sweep/sweep_kernels.hh"
#include "trace/trace_replayer.hh"

namespace confsim
{
namespace
{

const WorkloadSpec &
spec(const std::string &name)
{
    for (const auto &wl : standardWorkloads())
        if (wl.name == name)
            return wl;
    throw std::runtime_error("unknown workload " + name);
}

const std::vector<PredictorKind> &
allKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Bimodal,  PredictorKind::Gshare,
        PredictorKind::McFarling, PredictorKind::SAg,
        PredictorKind::Gselect,  PredictorKind::GAg,
        PredictorKind::PAs,
    };
    return kinds;
}

/** One independent reference pass: fresh TraceReplayer + estimator. */
struct ReferenceRun
{
    QuadrantCounts committed;
    QuadrantCounts all;
    ConfidenceEstimator::Stats stats;
    LevelSweep levels{0};
    bool hasLevels = false;
};

ReferenceRun
referencePass(const std::string &trace, ConfidenceEstimator &est,
              const LevelSource *levels, unsigned max_level)
{
    TraceReplayer replayer;
    replayer.attachEstimator(&est);
    ConfidenceCollector quads(1);
    replayer.attachSink(&quads);
    LevelCollector level_sink(1, max_level);
    if (levels != nullptr) {
        replayer.attachLevelReader(levels);
        replayer.attachSink(&level_sink);
    }
    std::string error;
    EXPECT_TRUE(replayer.replay(trace, nullptr, &error)) << error;

    ReferenceRun run;
    run.committed = quads.committed(0);
    run.all = quads.all(0);
    run.stats = est.stats();
    if (levels != nullptr) {
        run.levels = level_sink.sweep(0);
        run.hasLevels = true;
    }
    return run;
}

void
expectLaneMatches(const BatchReplayer &batch, unsigned lane,
                  const ReferenceRun &ref,
                  const std::vector<unsigned> &thresholds)
{
    EXPECT_EQ(batch.committed(lane), ref.committed);
    EXPECT_EQ(batch.all(lane), ref.all);
    EXPECT_EQ(batch.estimatorStats(lane).estimates,
              ref.stats.estimates);
    EXPECT_EQ(batch.estimatorStats(lane).lowEstimates,
              ref.stats.lowEstimates);
    EXPECT_EQ(batch.estimatorStats(lane).updates, ref.stats.updates);
    if (ref.hasLevels) {
        ASSERT_TRUE(batch.hasLevels(lane));
        for (unsigned t : thresholds) {
            EXPECT_EQ(batch.levels(lane).atThresholdGe(t),
                      ref.levels.atThresholdGe(t))
                    << "threshold " << t;
        }
    }
}

class SweepGoldenTest : public testing::TestWithParam<PredictorKind>
{
};

TEST_P(SweepGoldenTest, BatchedLanesMatchIndependentReplays)
{
    const PredictorKind kind = GetParam();
    const ExperimentConfig cfg;
    const WorkloadSpec &wl = spec("compress");
    const auto recorded =
        cachedRecordedRun(kind, wl, cfg.workload, cfg.pipeline);
    const auto decoded =
        cachedDecodedRun(kind, wl, cfg.workload, cfg.pipeline);
    const auto profile = cachedProfile(kind, wl, cfg.workload);

    const std::vector<unsigned> thresholds = {0, 4, 8, 12, 15, 16};

    JrsConfig jrs_small;
    jrs_small.tableEntries = 256;
    jrs_small.counterBits = 2;
    jrs_small.threshold = 3;
    jrs_small.enhanced = false;
    const SatCountersVariant selected =
        kind == PredictorKind::McFarling
            ? SatCountersVariant::BothStrong
            : SatCountersVariant::Selected;

    BatchReplayer batch(std::shared_ptr<const DecodedTrace>(
            decoded, &decoded->trace));
    const unsigned jrs_lane = batch.attachJrs(JrsConfig{}, true);
    const unsigned jrs_small_lane = batch.attachJrs(jrs_small, true);
    const unsigned sat_lane = batch.attachSatCounters(selected);
    const unsigned sat_either_lane =
        batch.attachSatCounters(SatCountersVariant::EitherStrong);
    const unsigned pattern_lane = batch.attachPattern();
    StaticEstimator static_batch(*profile, cfg.staticThreshold);
    const unsigned static_lane = batch.attachEstimator(&static_batch);
    DistanceEstimator dist_batch(cfg.distanceThreshold);
    JrsEstimator jrs_virtual_batch{JrsConfig{}};
    const unsigned dist_lane = batch.attachEstimator(&dist_batch);
    // A virtual lane with a level source must match the kernel lane.
    const unsigned jrs_virtual_lane = batch.attachEstimator(
            &jrs_virtual_batch, &jrs_virtual_batch,
            (1u << JrsConfig{}.counterBits) - 1);
    auto pred = makePredictor(kind);
    batch.attachPredictor(pred.get());

    std::string error;
    ASSERT_TRUE(batch.run(&error)) << error;

    {
        JrsEstimator est{JrsConfig{}};
        expectLaneMatches(
                batch, jrs_lane,
                referencePass(recorded->trace, est, &est,
                              (1u << JrsConfig{}.counterBits) - 1),
                thresholds);
    }
    {
        JrsEstimator est(jrs_small);
        expectLaneMatches(
                batch, jrs_small_lane,
                referencePass(recorded->trace, est, &est,
                              (1u << jrs_small.counterBits) - 1),
                thresholds);
    }
    {
        SatCountersEstimator est(selected);
        expectLaneMatches(batch, sat_lane,
                          referencePass(recorded->trace, est, nullptr,
                                        0),
                          thresholds);
    }
    {
        SatCountersEstimator est(SatCountersVariant::EitherStrong);
        expectLaneMatches(batch, sat_either_lane,
                          referencePass(recorded->trace, est, nullptr,
                                        0),
                          thresholds);
    }
    {
        PatternEstimator est;
        expectLaneMatches(batch, pattern_lane,
                          referencePass(recorded->trace, est, nullptr,
                                        0),
                          thresholds);
    }
    {
        StaticEstimator est(*profile, cfg.staticThreshold);
        expectLaneMatches(batch, static_lane,
                          referencePass(recorded->trace, est, nullptr,
                                        0),
                          thresholds);
    }
    {
        DistanceEstimator est(cfg.distanceThreshold);
        expectLaneMatches(batch, dist_lane,
                          referencePass(recorded->trace, est, nullptr,
                                        0),
                          thresholds);
    }
    {
        JrsEstimator est{JrsConfig{}};
        expectLaneMatches(
                batch, jrs_virtual_lane,
                referencePass(recorded->trace, est, &est,
                              (1u << JrsConfig{}.counterBits) - 1),
                thresholds);
    }
    // The virtual JRS lane and the kernel JRS lane agree with each
    // other, not just with their references.
    EXPECT_EQ(batch.committed(jrs_lane),
              batch.committed(jrs_virtual_lane));
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, SweepGoldenTest,
                         testing::ValuesIn(allKinds()),
                         [](const auto &info) {
                             return std::string(
                                     predictorKindName(info.param));
                         });

TEST(SweepGoldenTest, PrecomputedDistancesMatchCollector)
{
    const ExperimentConfig cfg;
    const WorkloadSpec &wl = spec("compress");
    const auto recorded = cachedRecordedRun(
            PredictorKind::Gshare, wl, cfg.workload, cfg.pipeline);
    const auto decoded = cachedDecodedRun(
            PredictorKind::Gshare, wl, cfg.workload, cfg.pipeline);

    TraceReplayer replayer;
    DistanceCollector reference;
    replayer.attachSink(&reference);
    std::string error;
    ASSERT_TRUE(replayer.replay(recorded->trace, nullptr, &error))
            << error;

    // Rebuild the four profiles from the decoded trace's precomputed
    // distance streams (sinks deliver in fetch order, so index order
    // reproduces the event order).
    DistanceCollector batched;
    const DecodedTrace &t = decoded->trace;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const bool correct =
            (t.flags[i] & DecodedTrace::FLAG_CORRECT) != 0;
        const bool commits =
            (t.flags[i] & DecodedTrace::FLAG_COMMIT) != 0;
        batched.preciseAll.record(t.preciseDistAll[i], !correct);
        batched.perceivedAll.record(t.perceivedDistAll[i], !correct);
        if (commits) {
            batched.preciseCommitted.record(t.preciseDistCommitted[i],
                                            !correct);
            batched.perceivedCommitted.record(
                    t.perceivedDistCommitted[i], !correct);
        }
    }

    const auto expect_profiles_equal = [](const DistanceProfile &a,
                                          const DistanceProfile &b) {
        ASSERT_EQ(a.buckets(), b.buckets());
        EXPECT_EQ(a.total(), b.total());
        for (std::uint64_t d = 0; d <= a.buckets() + 1; ++d) {
            EXPECT_EQ(a.countAt(d), b.countAt(d)) << "distance " << d;
            EXPECT_DOUBLE_EQ(a.rateAt(d), b.rateAt(d));
        }
    };
    expect_profiles_equal(reference.preciseAll, batched.preciseAll);
    expect_profiles_equal(reference.preciseCommitted,
                          batched.preciseCommitted);
    expect_profiles_equal(reference.perceivedAll,
                          batched.perceivedAll);
    expect_profiles_equal(reference.perceivedCommitted,
                          batched.perceivedCommitted);
}

TEST(SweepGoldenTest, ReplayCountersMatchReplayStats)
{
    const ExperimentConfig cfg;
    const WorkloadSpec &wl = spec("compress");
    const auto recorded = cachedRecordedRun(
            PredictorKind::Gshare, wl, cfg.workload, cfg.pipeline);
    const auto decoded = cachedDecodedRun(
            PredictorKind::Gshare, wl, cfg.workload, cfg.pipeline);

    TraceReplayer replayer;
    ReplayStats reference;
    std::string error;
    ASSERT_TRUE(replayer.replay(recorded->trace, &reference, &error))
            << error;
    EXPECT_EQ(decoded->trace.counters, reference);
}

SweepGrid
smallGrid()
{
    SweepGrid grid;
    grid.workloads = {"compress", "go"};
    grid.thresholds = {4, 8, 15};
    grid.shardSize = 3; // force multiple shards over 6 configs
    JrsConfig jrs8;
    jrs8.threshold = 8;
    grid.estimators = {
        {"jrs-15", "jrs", {}},
        {"jrs-8", "jrs", {jrs8, 4, 0.9}},
        {"satcnt", "satcnt", {}},
        {"pattern", "pattern", {}},
        {"static", "static", {}},
        {"distance", "distance", {}},
    };
    return grid;
}

TEST(SweepGridTest, SerialAndParallelRunsAreByteIdentical)
{
    const SweepGrid grid = smallGrid();
    const JsonValue serial = sweepResultToJson(runSweepGrid(grid, 0));
    const JsonValue parallel =
        sweepResultToJson(runSweepGrid(grid, 4));
    EXPECT_EQ(serial.dump(2), parallel.dump(2));
}

TEST(SweepGridTest, GridMatchesIndependentReplays)
{
    const SweepGrid grid = smallGrid();
    const SweepResult result = runSweepGrid(grid, 0);
    ASSERT_EQ(result.workloads.size(), 2u);

    const ExperimentConfig cfg;
    for (const SweepWorkloadResult &wl : result.workloads) {
        const auto recorded = cachedRecordedRun(
                grid.kind, spec(wl.workload), grid.workload,
                grid.pipeline);
        ASSERT_EQ(wl.configs.size(), grid.estimators.size());
        const auto profile = cachedProfile(grid.kind,
                                           spec(wl.workload),
                                           grid.workload);
        for (std::size_t c = 0; c < wl.configs.size(); ++c) {
            auto est = makeNamedEstimator(
                    grid.estimators[c].estimator,
                    grid.estimators[c].params, grid.kind, *profile);
            ASSERT_NE(est, nullptr);
            const ReferenceRun ref =
                referencePass(recorded->trace, *est, nullptr, 0);
            EXPECT_EQ(wl.configs[c].committed, ref.committed)
                    << wl.workload << " " << wl.configs[c].label;
            EXPECT_EQ(wl.configs[c].all, ref.all);
        }
    }
}

TEST(SweepGridTest, JsonRoundTripsAndRejectsUnknownKeys)
{
    const SweepGrid grid = smallGrid();
    const JsonValue doc = sweepGridToJson(grid);
    SweepGrid parsed;
    std::string error;
    ASSERT_TRUE(sweepGridFromJson(doc, parsed, &error)) << error;
    EXPECT_EQ(sweepGridToJson(parsed).dump(2), doc.dump(2));

    JsonValue bad = sweepGridToJson(grid);
    bad["bogus"] = JsonValue(std::uint64_t{1});
    EXPECT_FALSE(sweepGridFromJson(bad, parsed, &error));
    EXPECT_NE(error.find("bogus"), std::string::npos);

    JsonValue bad_est = sweepGridToJson(grid);
    JsonValue unknown = JsonValue::object();
    unknown["estimator"] = JsonValue(std::string("no-such"));
    bad_est["estimators"].push(unknown);
    EXPECT_FALSE(sweepGridFromJson(bad_est, parsed, &error));
    EXPECT_NE(error.find("no-such"), std::string::npos);
}

class SweepResumeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        journal = (std::filesystem::temp_directory_path()
                   / ("confsim-sweep-resume-"
                      + std::to_string(::getpid()) + ".journal"))
                      .string();
        std::filesystem::remove(journal);
    }

    void TearDown() override { std::filesystem::remove(journal); }

    std::string journal;
};

TEST_F(SweepResumeTest, JournaledRunMatchesPlainRun)
{
    const SweepGrid grid = smallGrid();
    const std::string plain =
        sweepResultToJson(runSweepGrid(grid, 0)).dump(2);

    SweepExecOptions options;
    options.jobs = 0;
    options.journalPath = journal;
    SweepExecReport report;
    const std::string journaled =
        sweepResultToJson(runSweepGrid(grid, options, &report))
            .dump(2);
    EXPECT_EQ(journaled, plain);
    EXPECT_EQ(report.resumedShards, 0u);
    EXPECT_GT(report.runner.tasks, 0u);

    // Second run of the same grid: every shard replays from the
    // journal, output stays byte-identical.
    SweepExecReport resumed;
    const std::string replayed =
        sweepResultToJson(runSweepGrid(grid, options, &resumed))
            .dump(2);
    EXPECT_EQ(replayed, plain);
    EXPECT_EQ(resumed.resumedShards, report.runner.tasks);
    EXPECT_EQ(resumed.runner.tasks, 0u);
}

TEST_F(SweepResumeTest, InterruptedRunResumesByteIdentical)
{
    const SweepGrid grid = smallGrid();
    const std::string plain =
        sweepResultToJson(runSweepGrid(grid, 0)).dump(2);

    SweepExecOptions options;
    options.jobs = 0;
    options.journalPath = journal;

    // First attempt dies on an injected fatal fault partway through
    // the grid — the model of a crash/kill mid-sweep.
    std::uint64_t failedTasks = 0;
    {
        FaultPlan plan;
        plan.failTask = 3;
        ScopedFaultPlan scoped(plan);
        try {
            runSweepGrid(grid, options);
            FAIL() << "expected the injected fault to surface";
        } catch (const ConfsimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::TaskFailed);
            EXPECT_NE(std::string(e.what())
                          .find("injected fatal task fault"),
                      std::string::npos);
            failedTasks = e.context().size();
        }
    }
    EXPECT_GT(failedTasks, 0u);

    // Resume: journaled shards replay, only the failures recompute,
    // and the final document is byte-identical to the clean run.
    SweepExecReport report;
    const std::string resumed =
        sweepResultToJson(runSweepGrid(grid, options, &report))
            .dump(2);
    EXPECT_EQ(resumed, plain);
    EXPECT_GT(report.resumedShards, 0u);
    EXPECT_EQ(report.runner.tasks + report.resumedShards,
              static_cast<std::uint64_t>(grid.workloads.size())
                  * 2 /* shards per workload */);
}

TEST_F(SweepResumeTest, JournalFromDifferentJobCountResumes)
{
    const SweepGrid grid = smallGrid();
    const std::string plain =
        sweepResultToJson(runSweepGrid(grid, 0)).dump(2);

    // Interrupt a parallel run; task indices in the journal are
    // grid-determined, so a serial resume may reuse them.
    SweepExecOptions parallelOpts;
    parallelOpts.jobs = 4;
    parallelOpts.journalPath = journal;
    {
        FaultPlan plan;
        plan.failTask = 2;
        ScopedFaultPlan scoped(plan);
        EXPECT_THROW(runSweepGrid(grid, parallelOpts), ConfsimError);
    }

    SweepExecOptions serialOpts;
    serialOpts.jobs = 0;
    serialOpts.journalPath = journal;
    SweepExecReport report;
    const std::string resumed =
        sweepResultToJson(runSweepGrid(grid, serialOpts, &report))
            .dump(2);
    EXPECT_EQ(resumed, plain);
}

TEST(SweepGridKeyTest, KeyIsGridContentSensitive)
{
    const SweepGrid grid = smallGrid();
    EXPECT_EQ(sweepGridKey(grid), sweepGridKey(smallGrid()));
    SweepGrid other = smallGrid();
    other.thresholds.push_back(31);
    EXPECT_NE(sweepGridKey(other), sweepGridKey(grid));
}

TEST(SweepLevelSweepTest, MergeGrowsToLargerMaxLevel)
{
    // Regression: merging a larger sweep into a smaller one used to
    // silently drop every count above the smaller max level.
    LevelSweep small(4);
    small.record(2, true);
    LevelSweep large(16);
    large.record(10, true);
    large.record(16, false);

    small += large;
    EXPECT_EQ(small.maxLevel(), 16u);
    EXPECT_EQ(small.total(), 3u);
    const QuadrantCounts q = small.atThresholdGe(8);
    EXPECT_EQ(q.chc, 1u); // level 10, correct
    EXPECT_EQ(q.ihc, 1u); // level 16, incorrect
    EXPECT_EQ(q.clc, 1u); // level 2, correct

    // The small-into-large direction is unchanged.
    LevelSweep big(16);
    big += small;
    EXPECT_EQ(big.maxLevel(), 16u);
    EXPECT_EQ(big.total(), 0u + 3u);
}

// ------------------------------------------------- estimator-input channels

TEST(InputChannelTest, DecodedTraceCarriesPluginChannels)
{
    const ExperimentConfig cfg;
    const auto decoded = cachedDecodedRun(
            PredictorKind::Perceptron, spec("compress"), cfg.workload,
            cfg.pipeline);
    const DecodedTrace &t = decoded->trace;
    ASSERT_EQ(t.channels.size(), 4u);
    for (const char *name :
         {CHANNEL_SAT_BITS, CHANNEL_PATTERN_CONF, CHANNEL_JRS_KEY,
          CHANNEL_PERC_MARGIN}) {
        const InputChannel *chan = t.findChannel(name);
        ASSERT_NE(chan, nullptr) << name;
        // Values respect the plugin's declared level range.
        if (chan->levelMax > 0) {
            for (std::size_t i = 0; i < t.counters.branches; ++i)
                ASSERT_LE(chan->value(i), chan->levelMax) << name;
        }
    }
    EXPECT_EQ(t.findChannel(CHANNEL_TAGE_CONF), nullptr);
    EXPECT_EQ(t.findChannel(CHANNEL_PERC_MARGIN)->width,
              InputWidth::U16);
}

TEST(InputChannelTest, ChannelLaneMatchesVirtualNativeEstimator)
{
    const ExperimentConfig cfg;
    const auto decoded = cachedDecodedRun(
            PredictorKind::Perceptron, spec("compress"), cfg.workload,
            cfg.pipeline);
    BatchReplayer replayer(std::shared_ptr<const DecodedTrace>(
            decoded, &decoded->trace));
    const unsigned kernel =
        replayer.attachChannelThreshold(CHANNEL_PERC_MARGIN, 64, true);
    NativeConfidenceEstimator reference(
            NativeConfidenceEstimator::percConfig(64));
    const unsigned virt = replayer.attachEstimator(&reference);
    std::string error;
    ASSERT_TRUE(replayer.run(&error)) << error;

    EXPECT_EQ(replayer.committed(kernel), replayer.committed(virt));
    EXPECT_EQ(replayer.all(kernel), replayer.all(virt));
    // The lane's level sweep is self-consistent: slicing it at the
    // lane threshold reproduces the lane's own quadrants.
    ASSERT_TRUE(replayer.hasLevels(kernel));
    EXPECT_EQ(replayer.levels(kernel).atThresholdGe(64),
              replayer.committed(kernel));
}

TEST(InputChannelTest, MissingChannelReadsAllZero)
{
    // A native-confidence lane over a classic predictor's trace (no
    // perc-margin channel) must degrade to always-low, not die.
    const ExperimentConfig cfg;
    const auto decoded = cachedDecodedRun(
            PredictorKind::Gshare, spec("compress"), cfg.workload,
            cfg.pipeline);
    BatchReplayer replayer(std::shared_ptr<const DecodedTrace>(
            decoded, &decoded->trace));
    const unsigned lane =
        replayer.attachChannelThreshold(CHANNEL_PERC_MARGIN, 64);
    std::string error;
    ASSERT_TRUE(replayer.run(&error)) << error;
    EXPECT_EQ(replayer.committed(lane).chc, 0u);
    EXPECT_EQ(replayer.committed(lane).ihc, 0u);
    EXPECT_GT(replayer.committed(lane).clc
                  + replayer.committed(lane).ilc,
              0u);
}

// ------------------------------------------------------ mixed-predictor grid

SweepGrid
mixedGrid()
{
    SweepGrid grid;
    grid.kinds = {PredictorKind::Gshare, PredictorKind::Perceptron,
                  PredictorKind::Tage};
    grid.workloads = {"compress", "go"};
    grid.thresholds = {4, 64};
    grid.shardSize = 3;
    grid.estimators = {
        {"jrs", "jrs", {}},
        {"satcnt", "satcnt", {}},
        {"perc-conf", "perc-conf", {}},
        {"tage-conf", "tage-conf", {}},
    };
    return grid;
}

TEST(MixedGridTest, RunsEveryPredictorKindMajor)
{
    const SweepGrid grid = mixedGrid();
    const SweepResult result = runSweepGrid(grid, 0);
    ASSERT_EQ(result.workloads.size(), 6u); // 3 kinds x 2 workloads
    const char *expected[][2] = {
        {"gshare", "compress"},     {"gshare", "go"},
        {"perceptron", "compress"}, {"perceptron", "go"},
        {"tage", "compress"},       {"tage", "go"},
    };
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(result.workloads[i].predictor, expected[i][0]);
        EXPECT_EQ(result.workloads[i].workload, expected[i][1]);
        ASSERT_EQ(result.workloads[i].configs.size(), 4u);
    }

    // Native lanes only fire on their own predictor: perc-conf sees
    // zero high-confidence estimates everywhere but the perceptron.
    for (const SweepWorkloadResult &wl : result.workloads) {
        const SweepConfigResult &perc = wl.configs[2];
        const SweepConfigResult &tage = wl.configs[3];
        ASSERT_EQ(perc.estimator, "perc-conf");
        ASSERT_EQ(tage.estimator, "tage-conf");
        const auto high = [](const QuadrantCounts &q) {
            return q.chc + q.ihc;
        };
        if (wl.predictor == "perceptron")
            EXPECT_GT(high(perc.committed), 0u) << wl.workload;
        else
            EXPECT_EQ(high(perc.committed), 0u)
                << wl.predictor << " " << wl.workload;
        if (wl.predictor == "tage")
            EXPECT_GT(high(tage.committed), 0u) << wl.workload;
        else
            EXPECT_EQ(high(tage.committed), 0u)
                << wl.predictor << " " << wl.workload;
    }
}

TEST(MixedGridTest, SerialAndParallelRunsAreByteIdentical)
{
    const SweepGrid grid = mixedGrid();
    const std::string serial =
        sweepResultToJson(runSweepGrid(grid, 0)).dump(2);
    const std::string parallel =
        sweepResultToJson(runSweepGrid(grid, 4)).dump(2);
    EXPECT_EQ(serial, parallel);
}

TEST(MixedGridTest, ResultJsonTagsPredictorsPerGroup)
{
    const SweepGrid grid = mixedGrid();
    const JsonValue doc = sweepResultToJson(runSweepGrid(grid, 0));
    // Every workload entry and every aggregate row names its
    // predictor; aggregates come per (predictor, config).
    ASSERT_TRUE(doc.find("aggregate")->isArray());
    EXPECT_EQ(doc.find("aggregate")->size(), 12u); // 3 kinds x 4 cfgs
    for (const JsonValue &w : doc.find("workloads")->elements())
        EXPECT_NE(w.find("predictor"), nullptr);
    for (const JsonValue &a : doc.find("aggregate")->elements())
        EXPECT_NE(a.find("predictor"), nullptr);

    // Single-predictor documents keep the pre-plugin shape: no
    // predictor tags anywhere.
    SweepGrid single = smallGrid();
    const JsonValue singleDoc =
        sweepResultToJson(runSweepGrid(single, 0));
    for (const JsonValue &w : singleDoc.find("workloads")->elements())
        EXPECT_EQ(w.find("predictor"), nullptr);
    for (const JsonValue &a : singleDoc.find("aggregate")->elements())
        EXPECT_EQ(a.find("predictor"), nullptr);
    EXPECT_EQ(singleDoc.find("grid")->find("predictors"), nullptr);
}

TEST(MixedGridTest, GridJsonRoundTripsPredictorsAndThresholds)
{
    SweepGrid grid = mixedGrid();
    grid.estimators[2].params.percThreshold = 100;
    grid.estimators[3].params.tageThreshold = 14;
    const JsonValue doc = sweepGridToJson(grid);
    EXPECT_NE(doc.find("predictors"), nullptr);

    SweepGrid parsed;
    std::string error;
    ASSERT_TRUE(sweepGridFromJson(doc, parsed, &error)) << error;
    ASSERT_EQ(parsed.kinds.size(), 3u);
    EXPECT_EQ(parsed.kinds[1], PredictorKind::Perceptron);
    EXPECT_EQ(parsed.estimators[2].params.percThreshold, 100u);
    EXPECT_EQ(parsed.estimators[3].params.tageThreshold, 14u);
    EXPECT_EQ(sweepGridToJson(parsed).dump(2), doc.dump(2));

    // Default thresholds stay un-emitted (byte-stability of existing
    // grid echoes).
    const std::string plain = sweepGridToJson(smallGrid()).dump(2);
    EXPECT_EQ(plain.find("perc_threshold"), std::string::npos);
    EXPECT_EQ(plain.find("tage_threshold"), std::string::npos);

    JsonValue bad = sweepGridToJson(grid);
    bad["predictors"].push(JsonValue(std::string("no-such")));
    EXPECT_FALSE(sweepGridFromJson(bad, parsed, &error));
    EXPECT_NE(error.find("predictors"), std::string::npos);

    SweepGrid outOfRange = grid;
    outOfRange.estimators[2].params.percThreshold = 5000;
    EXPECT_FALSE(sweepGridFromJson(sweepGridToJson(outOfRange),
                                   parsed, &error));
    EXPECT_NE(error.find("perc_threshold"), std::string::npos);
}

TEST(MixedGridTest, NativeFrontierSanityAcrossWorkloads)
{
    // Satellite sanity: SENS/SPEC/PVP/PVN of the native estimators on
    // their own predictors, aggregated over every standard workload,
    // are well-formed probabilities and the lanes actually separate
    // branches (both confidence classes populated somewhere).
    SweepGrid grid;
    grid.kinds = {PredictorKind::Perceptron, PredictorKind::Tage};
    grid.estimators = {
        {"perc-conf", "perc-conf", {}},
        {"tage-conf", "tage-conf", {}},
        {"jrs", "jrs", {}},
    };
    const SweepResult result = runSweepGrid(grid, 0);
    const std::size_t n = standardWorkloads().size();
    ASSERT_EQ(result.workloads.size(), 2 * n);

    for (std::size_t g = 0; g < 2; ++g) {
        const std::string &pred = result.workloads[g * n].predictor;
        const std::size_t own = g == 0 ? 0 : 1; // matching native lane
        std::vector<QuadrantCounts> runs;
        for (std::size_t wi = 0; wi < n; ++wi)
            runs.push_back(
                    result.workloads[g * n + wi].configs[own].committed);
        const QuadrantFractions f = aggregateQuadrants(runs);
        for (double v : {f.sens(), f.spec(), f.pvp(), f.pvn()}) {
            EXPECT_GE(v, 0.0) << pred;
            EXPECT_LE(v, 1.0) << pred;
        }
        // The native signal must mark some branches high confidence
        // and some low — otherwise the threshold is degenerate.
        EXPECT_GT(f.chc + f.ihc, 0.0) << pred;
        EXPECT_GT(f.clc + f.ilc, 0.0) << pred;
        // Concentration property (the paper's core claim): the
        // misprediction rate inside the high-confidence class must be
        // lower than inside the low-confidence class.
        EXPECT_LT(1.0 - f.pvp(), f.pvn()) << pred;
    }
}

/** Every dispatch tier the host can actually run, scalar excluded. */
std::vector<KernelDispatch>
supportedVectorDispatches()
{
    std::vector<KernelDispatch> out;
    for (const KernelDispatch d :
         {KernelDispatch::Swar, KernelDispatch::Sse2,
          KernelDispatch::Avx2, KernelDispatch::Neon}) {
        if (kernelDispatchSupported(d))
            out.push_back(d);
    }
    return out;
}

TEST(SweepKernelTest, DispatchTiersMatchScalarOnRandomColumns)
{
    Rng rng(0xc01a55);
    // Lengths straddle the SIMD register width, the SWAR word and the
    // scalar tail; thresholds cover both halves of each width's
    // compare trick plus the out-of-range early-outs.
    const std::size_t lengths[] = {0, 1, 7, 8, 15, 16, 31, 32, 100};
    const std::uint64_t u8_thresholds[] = {0, 1, 2, 127, 128,
                                           129, 255, 256};
    const std::uint64_t u16_thresholds[] = {0,     1,     255,
                                            256,   32767, 32768,
                                            32769, 65535, 65536};

    for (const std::size_t n : lengths) {
        std::vector<std::uint8_t> vals8(n);
        std::vector<std::uint16_t> vals16(n);
        std::vector<std::uint8_t> flags(n);
        for (std::size_t i = 0; i < n; ++i) {
            vals8[i] = static_cast<std::uint8_t>(rng.next());
            vals16[i] = static_cast<std::uint16_t>(rng.next());
            flags[i] = static_cast<std::uint8_t>(rng.next() & 0xf);
        }
        for (const KernelDispatch d : supportedVectorDispatches()) {
            for (const std::uint64_t t : u8_thresholds) {
                EXPECT_EQ(countGeU8(d, vals8.data(), flags.data(), n,
                                    t),
                          countGeU8(KernelDispatch::Scalar,
                                    vals8.data(), flags.data(), n, t))
                        << kernelDispatchName(d) << " n=" << n
                        << " t=" << t;
            }
            for (const std::uint64_t t : u16_thresholds) {
                EXPECT_EQ(countGeU16(d, vals16.data(), flags.data(),
                                     n, t),
                          countGeU16(KernelDispatch::Scalar,
                                     vals16.data(), flags.data(), n,
                                     t))
                        << kernelDispatchName(d) << " n=" << n
                        << " t=" << t;
            }
            for (const std::uint8_t bit : {0, 1, 2, 4, 8}) {
                EXPECT_EQ(countBitU8(d, vals8.data(), flags.data(), n,
                                     bit),
                          countBitU8(KernelDispatch::Scalar,
                                     vals8.data(), flags.data(), n,
                                     bit))
                        << kernelDispatchName(d) << " n=" << n
                        << " bit=" << unsigned(bit);
            }
        }
    }
}

/** Everything one lane reports after a run, for cross-dispatch
 *  comparison. */
struct LaneSnapshot
{
    QuadrantCounts committed;
    QuadrantCounts all;
    std::uint64_t estimates = 0;
    std::uint64_t lowEstimates = 0;
    std::uint64_t updates = 0;
    bool hasLevels = false;
    std::vector<QuadrantCounts> levelQuads;

    bool operator==(const LaneSnapshot &) const = default;
};

/** Run the full lane mix (kernel + virtual) over @p decoded with one
 *  forced dispatch tier and snapshot every lane. */
std::vector<LaneSnapshot>
runLaneMix(PredictorKind kind,
           const std::shared_ptr<const DecodedRun> &decoded,
           KernelDispatch dispatch)
{
    const ExperimentConfig cfg;
    JrsConfig jrs_small;
    jrs_small.tableEntries = 256;
    jrs_small.counterBits = 2;
    jrs_small.threshold = 3;
    jrs_small.enhanced = false;

    BatchReplayer batch(std::shared_ptr<const DecodedTrace>(
            decoded, &decoded->trace));
    batch.setKernelOverride(dispatch);
    batch.attachJrs(JrsConfig{}, true);
    batch.attachJrs(jrs_small, true);
    batch.attachSatCounters(kind == PredictorKind::McFarling
                                ? SatCountersVariant::BothStrong
                                : SatCountersVariant::Selected);
    batch.attachSatCounters(SatCountersVariant::EitherStrong);
    batch.attachPattern();
    // Present on the matching native predictor's trace, absent (with
    // distinct zero/non-zero threshold behaviour) everywhere else.
    batch.attachChannelThreshold(CHANNEL_PERC_MARGIN, 64, true);
    batch.attachChannelThreshold(CHANNEL_TAGE_CONF, 0, true);
    // A virtual lane rides along so the block-interleaved walk is
    // exercised alongside the kernel lanes.
    DistanceEstimator dist(cfg.distanceThreshold);
    batch.attachEstimator(&dist);

    std::string error;
    EXPECT_TRUE(batch.run(&error)) << error;

    std::vector<LaneSnapshot> out;
    for (unsigned lane = 0; lane < batch.laneCount(); ++lane) {
        LaneSnapshot snap;
        snap.committed = batch.committed(lane);
        snap.all = batch.all(lane);
        snap.estimates = batch.estimatorStats(lane).estimates;
        snap.lowEstimates = batch.estimatorStats(lane).lowEstimates;
        snap.updates = batch.estimatorStats(lane).updates;
        snap.hasLevels = batch.hasLevels(lane);
        if (snap.hasLevels) {
            for (const unsigned t : {0u, 1u, 3u, 7u, 15u, 16u})
                snap.levelQuads.push_back(
                        batch.levels(lane).atThresholdGe(t));
        }
        out.push_back(std::move(snap));
    }
    return out;
}

class KernelEquivalenceTest
    : public testing::TestWithParam<PredictorKind>
{
};

TEST_P(KernelEquivalenceTest, VectorTiersMatchScalarLaneForLane)
{
    const PredictorKind kind = GetParam();
    const ExperimentConfig cfg;
    const auto decoded = cachedDecodedRun(kind, spec("compress"),
                                          cfg.workload, cfg.pipeline);
    const auto scalar =
        runLaneMix(kind, decoded, KernelDispatch::Scalar);
    for (const KernelDispatch d : supportedVectorDispatches()) {
        const auto vec = runLaneMix(kind, decoded, d);
        ASSERT_EQ(vec.size(), scalar.size());
        for (std::size_t lane = 0; lane < scalar.size(); ++lane)
            EXPECT_EQ(vec[lane], scalar[lane])
                    << kernelDispatchName(d) << " lane " << lane;
    }
}

INSTANTIATE_TEST_SUITE_P(
        AllPredictors, KernelEquivalenceTest,
        testing::Values(PredictorKind::Bimodal, PredictorKind::Gshare,
                        PredictorKind::McFarling, PredictorKind::SAg,
                        PredictorKind::PAs, PredictorKind::Gselect,
                        PredictorKind::GAg, PredictorKind::Perceptron,
                        PredictorKind::Tage),
        [](const auto &info) {
            return std::string(predictorKindName(info.param));
        });

} // anonymous namespace
} // namespace confsim
