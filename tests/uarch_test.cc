/**
 * @file
 * Unit tests for the mini-ISA: assembler, interpreter semantics, and
 * the speculative checkpoint/rollback machinery the pipeline depends
 * on.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "uarch/machine.hh"
#include "uarch/program_builder.hh"

namespace confsim
{
namespace
{

/** Run @p prog until halt (bounded) and return the machine. */
Machine
runToHalt(const Program &prog, std::uint64_t bound = 100000)
{
    Machine m(prog);
    std::uint64_t steps = 0;
    while (!m.halted() && steps++ < bound)
        m.step();
    EXPECT_TRUE(m.halted()) << "program did not halt";
    return m;
}

// ------------------------------------------------------------ ProgramBuilder

TEST(ProgramBuilderTest, ForwardLabelResolves)
{
    ProgramBuilder b("t", 64);
    b.jmp("end");
    b.li(1, 99); // skipped
    b.label("end");
    b.halt();
    const Program p = b.build();
    EXPECT_EQ(p.code[0].target, 2u);
}

TEST(ProgramBuilderTest, BackwardLabelResolves)
{
    ProgramBuilder b("t", 64);
    b.label("top");
    b.addi(1, 1, 1);
    b.jmp("top");
    const Program p = b.build();
    EXPECT_EQ(p.code[1].target, 0u);
}

TEST(ProgramBuilderTest, DataInitialisation)
{
    ProgramBuilder b("t", 64);
    b.data(5, 1234);
    b.halt();
    const Program p = b.build();
    ASSERT_EQ(p.initialData.size(), 64u);
    EXPECT_EQ(p.initialData[5], 1234);
    EXPECT_EQ(p.initialData[6], 0);
}

TEST(ProgramBuilderTest, SizeTracksEmission)
{
    ProgramBuilder b("t", 8);
    EXPECT_EQ(b.size(), 0u);
    b.nop();
    b.nop();
    EXPECT_EQ(b.size(), 2u);
}

TEST(ProgramBuilderDeathTest, DuplicateLabelFatal)
{
    ProgramBuilder b("t", 8);
    b.label("x");
    EXPECT_EXIT(b.label("x"), ::testing::ExitedWithCode(1),
                "duplicate label");
}

TEST(ProgramBuilderDeathTest, UndefinedLabelFatal)
{
    ProgramBuilder b("t", 8);
    b.jmp("nowhere");
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1),
                "undefined label");
}

TEST(ProgramBuilderDeathTest, DataOutOfRangeFatal)
{
    ProgramBuilder b("t", 8);
    EXPECT_EXIT(b.data(8, 1), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ProgramBuilderDeathTest, RegisterOutOfRangeFatal)
{
    ProgramBuilder b("t", 8);
    EXPECT_EXIT(b.add(32, 0, 0), ::testing::ExitedWithCode(1),
                "register");
}

// ----------------------------------------------------------------- ISA info

TEST(IsaTest, OpClassification)
{
    EXPECT_EQ(opClass(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClass(Opcode::Mul), OpClass::IntMult);
    EXPECT_EQ(opClass(Opcode::Ld), OpClass::Load);
    EXPECT_EQ(opClass(Opcode::St), OpClass::Store);
    EXPECT_EQ(opClass(Opcode::Beq), OpClass::CondBranch);
    EXPECT_EQ(opClass(Opcode::Jmp), OpClass::UncondBranch);
    EXPECT_EQ(opClass(Opcode::Halt), OpClass::Other);
    EXPECT_TRUE(isCondBranch(Opcode::Bgt));
    EXPECT_FALSE(isCondBranch(Opcode::Jmp));
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_FALSE(isControl(Opcode::Add));
}

TEST(IsaTest, AddressMapping)
{
    EXPECT_EQ(Program::pcToAddr(0), CODE_BASE);
    EXPECT_EQ(Program::pcToAddr(3), CODE_BASE + 12);
    EXPECT_EQ(Program::addrToPc(Program::pcToAddr(117)), 117u);
}

TEST(IsaTest, EveryOpcodeDisassembles)
{
    // The disassembler must name every opcode; a silent "???" would
    // make debug traces useless.
    for (int op = 0; op <= static_cast<int>(Opcode::Halt); ++op) {
        Inst inst;
        inst.op = static_cast<Opcode>(op);
        inst.rd = 1;
        inst.rs1 = 2;
        inst.rs2 = 3;
        inst.imm = 7;
        inst.target = 9;
        const std::string text = disassemble(inst);
        EXPECT_FALSE(text.empty());
        EXPECT_EQ(text.find("???"), std::string::npos)
            << "opcode " << op;
        EXPECT_EQ(text.find(mnemonic(inst.op)), 0u)
            << "opcode " << op;
    }
}

TEST(IsaTest, DisassemblyMentionsMnemonic)
{
    Inst i;
    i.op = Opcode::Beq;
    i.rs1 = 1;
    i.rs2 = 2;
    i.target = 7;
    const std::string text = disassemble(i);
    EXPECT_NE(text.find("beq"), std::string::npos);
    EXPECT_NE(text.find("@7"), std::string::npos);
}

// ------------------------------------------------------- Machine arithmetic

struct AluCase
{
    const char *name;
    void (*emit)(ProgramBuilder &);
    Word expected;
};

void emitAdd(ProgramBuilder &b) { b.add(3, 1, 2); }
void emitSub(ProgramBuilder &b) { b.sub(3, 1, 2); }
void emitMul(ProgramBuilder &b) { b.mul(3, 1, 2); }
void emitDiv(ProgramBuilder &b) { b.div(3, 1, 2); }
void emitRem(ProgramBuilder &b) { b.rem(3, 1, 2); }
void emitAnd(ProgramBuilder &b) { b.and_(3, 1, 2); }
void emitOr(ProgramBuilder &b) { b.or_(3, 1, 2); }
void emitXor(ProgramBuilder &b) { b.xor_(3, 1, 2); }
void emitSlt(ProgramBuilder &b) { b.slt(3, 1, 2); }
void emitSltu(ProgramBuilder &b) { b.sltu(3, 1, 2); }

class MachineAluTest : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(MachineAluTest, ComputesExpected)
{
    // r1 = 21, r2 = 6, result in r3.
    ProgramBuilder b("alu", 16);
    b.li(1, 21);
    b.li(2, 6);
    GetParam().emit(b);
    b.halt();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(3), GetParam().expected) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
        Ops, MachineAluTest,
        ::testing::Values(AluCase{"add", &emitAdd, 27},
                          AluCase{"sub", &emitSub, 15},
                          AluCase{"mul", &emitMul, 126},
                          AluCase{"div", &emitDiv, 3},
                          AluCase{"rem", &emitRem, 3},
                          AluCase{"and", &emitAnd, 21 & 6},
                          AluCase{"or", &emitOr, 21 | 6},
                          AluCase{"xor", &emitXor, 21 ^ 6},
                          AluCase{"slt", &emitSlt, 0},
                          AluCase{"sltu", &emitSltu, 0}),
        [](const ::testing::TestParamInfo<AluCase> &info) {
            return info.param.name;
        });

TEST(MachineTest, ImmediateOps)
{
    ProgramBuilder b("imm", 16);
    b.li(1, 10);
    b.addi(2, 1, 5);
    b.muli(3, 1, -2);
    b.andi(4, 1, 3);
    b.ori(5, 1, 5);
    b.xori(6, 1, 2);
    b.slli(7, 1, 2);
    b.srli(8, 1, 1);
    b.slti(9, 1, 11);
    b.halt();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(2), 15);
    EXPECT_EQ(m.reg(3), -20);
    EXPECT_EQ(m.reg(4), 2);
    EXPECT_EQ(m.reg(5), 15);
    EXPECT_EQ(m.reg(6), 8);
    EXPECT_EQ(m.reg(7), 40);
    EXPECT_EQ(m.reg(8), 5);
    EXPECT_EQ(m.reg(9), 1);
}

TEST(MachineTest, ShiftRightArithmeticKeepsSign)
{
    ProgramBuilder b("sra", 16);
    b.li(1, -16);
    b.srai(2, 1, 2);
    b.halt();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(2), -4);
}

TEST(MachineTest, RegisterZeroIsImmutable)
{
    ProgramBuilder b("r0", 16);
    b.li(0, 42); // write to r0 is dropped
    b.addi(1, 0, 7);
    b.halt();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(0), 0);
    EXPECT_EQ(m.reg(1), 7);
}

TEST(MachineTest, LoadStoreRoundTrip)
{
    ProgramBuilder b("mem", 16);
    b.li(1, 3);  // base
    b.li(2, 77); // value
    b.st(2, 1, 2);  // mem[5] = 77
    b.ld(3, 1, 2);  // r3 = mem[5]
    b.halt();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(3), 77);
    EXPECT_EQ(m.mem(5), 77);
}

TEST(MachineTest, BranchDirections)
{
    // Each branch kind: one taken, one not-taken instance.
    ProgramBuilder b("br", 16);
    b.li(1, 5);
    b.li(2, 5);
    b.li(3, 9);
    b.li(10, 0); // bitmask of taken branches
    b.beq(1, 2, "t1"); // taken
    b.jmp("n1");
    b.label("t1");
    b.ori(10, 10, 1);
    b.label("n1");
    b.bne(1, 3, "t2"); // taken
    b.jmp("n2");
    b.label("t2");
    b.ori(10, 10, 2);
    b.label("n2");
    b.blt(1, 3, "t3"); // taken
    b.jmp("n3");
    b.label("t3");
    b.ori(10, 10, 4);
    b.label("n3");
    b.bge(1, 3, "t4"); // NOT taken
    b.jmp("n4");
    b.label("t4");
    b.ori(10, 10, 8);
    b.label("n4");
    b.ble(1, 2, "t5"); // taken
    b.jmp("n5");
    b.label("t5");
    b.ori(10, 10, 16);
    b.label("n5");
    b.bgt(3, 1, "t6"); // taken
    b.jmp("n6");
    b.label("t6");
    b.ori(10, 10, 32);
    b.label("n6");
    b.halt();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(10), 1 | 2 | 4 | 16 | 32);
}

TEST(MachineTest, CallAndReturn)
{
    ProgramBuilder b("call", 64);
    b.call("fn");
    b.li(2, 1); // executed after return
    b.halt();
    b.label("fn");
    b.li(1, 42);
    b.ret();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(1), 42);
    EXPECT_EQ(m.reg(2), 1);
}

TEST(MachineTest, NestedCallsWithPushPop)
{
    ProgramBuilder b("nest", 64);
    b.call("outer");
    b.halt();
    b.label("outer");
    b.push(REG_LR);
    b.call("inner");
    b.pop(REG_LR);
    b.addi(1, 1, 100);
    b.ret();
    b.label("inner");
    b.li(1, 5);
    b.ret();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.reg(1), 105);
}

TEST(MachineTest, StepInfoForBranch)
{
    ProgramBuilder b("si", 16);
    b.li(1, 1);
    b.beq(1, 1, "t");
    b.label("t");
    b.halt();
    Machine m(b.build());
    m.step(); // li
    const StepInfo si = m.step();
    EXPECT_TRUE(si.isCond);
    EXPECT_TRUE(si.taken);
    EXPECT_EQ(si.op, Opcode::Beq);
    EXPECT_EQ(si.targetPc, 2u);
    EXPECT_EQ(si.nextPc, 2u);
    EXPECT_EQ(si.addr, Program::pcToAddr(1));
}

TEST(MachineTest, StepInfoForMemory)
{
    ProgramBuilder b("sim", 16);
    b.li(1, 4);
    b.st(1, 1, 3); // mem[7] = 4
    b.halt();
    Machine m(b.build());
    m.step();
    const StepInfo si = m.step();
    EXPECT_TRUE(si.isMem);
    EXPECT_EQ(si.memAddr, 7u);
    EXPECT_EQ(si.cls, OpClass::Store);
}

TEST(MachineTest, HaltSetsFlagAndStops)
{
    ProgramBuilder b("h", 16);
    b.halt();
    Machine m(b.build());
    const StepInfo si = m.step();
    EXPECT_TRUE(si.halted);
    EXPECT_TRUE(m.halted());
    // Further steps are inert.
    const StepInfo si2 = m.step();
    EXPECT_TRUE(si2.halted);
}

TEST(MachineTest, ResetRestoresInitialState)
{
    ProgramBuilder b("r", 16);
    b.data(3, 11);
    b.li(1, 5);
    b.st(1, 0, 3);
    b.halt();
    Machine m = runToHalt(b.build());
    EXPECT_EQ(m.mem(3), 5);
    m.reset();
    EXPECT_FALSE(m.halted());
    EXPECT_EQ(m.mem(3), 11);
    EXPECT_EQ(m.reg(1), 0);
    EXPECT_EQ(m.pc(), 0u);
}

TEST(MachineTest, StackPointerInitialisedToTopOfMemory)
{
    ProgramBuilder b("sp", 128);
    b.halt();
    Machine m(b.build());
    EXPECT_EQ(m.reg(REG_SP), 128);
}

TEST(MachineDeathTest, ArchitectedDivByZeroPanics)
{
    ProgramBuilder b("dz", 16);
    b.li(1, 1);
    b.div(2, 1, 0);
    b.halt();
    Machine m(b.build());
    m.step();
    EXPECT_DEATH(m.step(), "division by zero");
}

TEST(MachineDeathTest, ArchitectedOutOfRangeLoadPanics)
{
    ProgramBuilder b("oob", 16);
    b.li(1, 1000);
    b.ld(2, 1, 0);
    b.halt();
    Machine m(b.build());
    m.step();
    EXPECT_DEATH(m.step(), "out-of-range load");
}

TEST(MachineDeathTest, ArchitectedRunawayPcPanics)
{
    ProgramBuilder b("run", 16);
    b.nop(); // falls off the end
    Machine m(b.build());
    m.step();
    EXPECT_DEATH(m.step(), "out of code segment");
}

// ------------------------------------------------- checkpoints and rollback

TEST(MachineSpecTest, RollbackRestoresRegisters)
{
    ProgramBuilder b("cp", 16);
    b.li(1, 10);
    b.li(1, 20);
    b.halt();
    Machine m(b.build());
    m.step(); // r1 = 10
    const CheckpointId cp = m.takeCheckpoint();
    EXPECT_EQ(m.specDepth(), 1u);
    m.step(); // r1 = 20 (speculative)
    EXPECT_EQ(m.reg(1), 20);
    m.rollback(cp);
    EXPECT_EQ(m.reg(1), 10);
    EXPECT_EQ(m.specDepth(), 0u);
    EXPECT_EQ(m.pc(), 1u);
}

TEST(MachineSpecTest, RollbackUndoesMemoryWrites)
{
    ProgramBuilder b("cpm", 16);
    b.data(4, 7);
    b.li(1, 99);
    b.st(1, 0, 4);
    b.halt();
    Machine m(b.build());
    m.step(); // li
    const CheckpointId cp = m.takeCheckpoint();
    m.step(); // speculative store
    EXPECT_EQ(m.mem(4), 99);
    m.rollback(cp);
    EXPECT_EQ(m.mem(4), 7);
}

TEST(MachineSpecTest, NestedCheckpointsUnwindInOrder)
{
    ProgramBuilder b("nest", 16);
    b.data(4, 1);
    b.li(1, 10);
    b.st(1, 0, 4); // mem[4] = 10
    b.li(1, 20);
    b.st(1, 0, 4); // mem[4] = 20
    b.halt();
    Machine m(b.build());
    m.step(); // li 10
    const CheckpointId outer = m.takeCheckpoint();
    m.step(); // st 10
    const CheckpointId inner = m.takeCheckpoint();
    m.step(); // li 20
    m.step(); // st 20
    EXPECT_EQ(m.mem(4), 20);
    EXPECT_EQ(m.specDepth(), 2u);
    m.rollback(inner);
    EXPECT_EQ(m.mem(4), 10);
    EXPECT_EQ(m.reg(1), 10);
    EXPECT_EQ(m.specDepth(), 1u);
    m.rollback(outer);
    EXPECT_EQ(m.mem(4), 1);
    EXPECT_EQ(m.specDepth(), 0u);
}

TEST(MachineSpecTest, RollbackToOldestSkipsIntermediate)
{
    ProgramBuilder b("skip", 16);
    b.data(4, 1);
    b.li(1, 5);
    b.st(1, 0, 4);
    b.li(1, 6);
    b.st(1, 0, 4);
    b.halt();
    Machine m(b.build());
    const CheckpointId outer = m.takeCheckpoint();
    m.step();
    m.step();
    m.takeCheckpoint(); // inner, intentionally bypassed
    m.step();
    m.step();
    EXPECT_EQ(m.mem(4), 6);
    m.rollback(outer); // unwinds both levels at once
    EXPECT_EQ(m.mem(4), 1);
    EXPECT_EQ(m.reg(1), 0);
    EXPECT_EQ(m.specDepth(), 0u);
}

TEST(MachineSpecTest, WrongPathOutOfRangeLoadIsBenign)
{
    ProgramBuilder b("wp", 16);
    b.li(1, 5000);
    b.ld(2, 1, 0); // executed only speculatively
    b.halt();
    Machine m(b.build());
    m.step();
    m.takeCheckpoint();
    const StepInfo si = m.step(); // wrong-path OOB load
    EXPECT_FALSE(si.halted);
    EXPECT_EQ(m.reg(2), 0); // benign zero
}

TEST(MachineSpecTest, WrongPathOutOfRangeStoreIsDropped)
{
    ProgramBuilder b("wps", 16);
    b.li(1, 5000);
    b.st(1, 1, 0);
    b.halt();
    Machine m(b.build());
    m.step();
    m.takeCheckpoint();
    m.step(); // dropped store
    EXPECT_EQ(m.mem(15), 0);
}

TEST(MachineSpecTest, WrongPathDivByZeroYieldsZero)
{
    ProgramBuilder b("wpd", 16);
    b.li(1, 9);
    b.div(2, 1, 0);
    b.halt();
    Machine m(b.build());
    m.step();
    m.takeCheckpoint();
    m.step();
    EXPECT_EQ(m.reg(2), 0);
}

TEST(MachineSpecTest, WrongPathHaltRestoredOnRollback)
{
    ProgramBuilder b("wph", 16);
    b.li(1, 1);
    b.halt();
    Machine m(b.build());
    m.step();
    const CheckpointId cp = m.takeCheckpoint();
    m.step(); // wrong-path halt
    EXPECT_TRUE(m.halted());
    m.rollback(cp);
    EXPECT_FALSE(m.halted());
}

TEST(MachineSpecTest, RedirectChangesFetchPc)
{
    ProgramBuilder b("rd", 16);
    b.li(1, 1);
    b.li(2, 2);
    b.li(3, 3);
    b.halt();
    Machine m(b.build());
    m.step();
    m.takeCheckpoint();
    m.redirect(2);
    const StepInfo si = m.step();
    EXPECT_EQ(si.pc, 2u);
}

TEST(MachineSpecTest, RandomizedCheckpointRollbackMatchesShadowState)
{
    // Stress the speculation machinery: run a store-heavy loop while
    // taking checkpoints, speculating random distances ahead, and
    // rolling back — each time comparing registers and memory against
    // a full shadow copy captured at checkpoint time.
    ProgramBuilder b("fuzz", 64);
    b.li(1, 1);
    b.li(2, 0);
    b.label("top");
    b.add(2, 2, 1);       // r2 += r1
    b.andi(3, 2, 15);     // addr = r2 & 15
    b.addi(3, 3, 16);     // |16..31|
    b.st(2, 3, 0);        // mem[addr] = r2
    b.muli(1, 1, 3);      // r1 *= 3
    b.andi(1, 1, 1023);
    b.ori(1, 1, 1);       // keep r1 nonzero
    b.jmp("top");         // endless: test bounds the run

    Machine m(b.build());
    Rng rng(0xf422);

    struct Shadow
    {
        CheckpointId id;
        std::array<Word, NUM_REGS> regs;
        std::vector<Word> mem;
        std::uint32_t pc;
    };

    auto capture = [&m]() {
        Shadow s;
        s.id = 0;
        for (unsigned r = 0; r < NUM_REGS; ++r)
            s.regs[static_cast<std::size_t>(r)] = m.reg(r);
        s.mem.resize(64);
        for (std::size_t a = 0; a < 64; ++a)
            s.mem[a] = m.mem(a);
        s.pc = m.pc();
        return s;
    };

    for (int round = 0; round < 200; ++round) {
        // Advance non-speculatively a random distance.
        for (std::uint64_t i = rng.below(20); i-- > 0; )
            m.step();

        const Shadow shadow = capture();
        const CheckpointId cp = m.takeCheckpoint();

        // Speculate ahead, possibly with a nested checkpoint.
        const bool nested = rng.chance(0.3);
        for (std::uint64_t i = 1 + rng.below(30); i-- > 0; )
            m.step();
        if (nested) {
            m.takeCheckpoint();
            for (std::uint64_t i = rng.below(20); i-- > 0; )
                m.step();
        }

        m.rollback(cp);

        ASSERT_EQ(m.pc(), shadow.pc) << "round " << round;
        ASSERT_EQ(m.specDepth(), 0u);
        for (unsigned r = 0; r < NUM_REGS; ++r)
            ASSERT_EQ(m.reg(r),
                      shadow.regs[static_cast<std::size_t>(r)])
                << "round " << round << " reg " << r;
        for (std::size_t a = 0; a < 64; ++a)
            ASSERT_EQ(m.mem(a), shadow.mem[a])
                << "round " << round << " mem " << a;
    }
}

TEST(MachineSpecTest, RunProgramVisitsCondBranches)
{
    ProgramBuilder b("rp", 16);
    b.li(1, 3);
    b.label("top");
    b.addi(1, 1, -1);
    b.bgt(1, 0, "top");
    b.halt();
    int visits = 0;
    int taken = 0;
    runProgram(b.build(), [&](const StepInfo &si) {
        ++visits;
        if (si.taken)
            ++taken;
    });
    EXPECT_EQ(visits, 3);
    EXPECT_EQ(taken, 2);
}

} // anonymous namespace
} // namespace confsim
