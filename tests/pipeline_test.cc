/**
 * @file
 * Tests for the pipeline simulator: committed-stream correctness under
 * wrong-path execution (the central invariant — speculation must never
 * change architected results), event delivery, distance bookkeeping,
 * gating, and timing sanity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bpred/bimodal.hh"
#include "bpred/gshare.hh"
#include "confidence/jrs.hh"
#include "harness/collectors.hh"
#include "harness/trace_run.hh"
#include "pipeline/pipeline.hh"
#include "uarch/program_builder.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

/** Countdown loop: highly predictable single branch. */
Program
countdownLoop(Word n)
{
    ProgramBuilder b("count", 64);
    b.li(1, n);
    b.label("top");
    b.addi(1, 1, -1);
    b.bgt(1, REG_ZERO, "top");
    b.halt();
    return b.build();
}

/** Loop with a strictly alternating branch: bimodal mispredicts it. */
Program
alternatingLoop(Word n)
{
    ProgramBuilder b("alt", 64);
    b.li(1, n);
    b.li(2, 0);
    b.label("top");
    b.xori(2, 2, 1);
    b.beq(2, REG_ZERO, "skip");
    b.addi(4, 4, 1);
    b.label("skip");
    b.addi(1, 1, -1);
    b.bgt(1, REG_ZERO, "top");
    b.halt();
    return b.build();
}

TEST(PipelineTest, PredictableLoopHasFewRecoveries)
{
    const Program prog = countdownLoop(2000);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    const PipelineStats s = pipe.run();
    EXPECT_EQ(s.committedCondBranches, 2000u);
    // Warmup plus the final fall-through are the only mispredictions.
    EXPECT_LE(s.committedMispredicts, 3u);
    EXPECT_LE(s.recoveries, 3u);
    EXPECT_NEAR(s.ratioAllToCommitted(), 1.0, 0.02);
}

TEST(PipelineTest, MispredictionsCauseWrongPathWork)
{
    const Program prog = alternatingLoop(2000);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    const PipelineStats s = pipe.run();
    // The alternating branch defeats bimodal roughly half the time.
    EXPECT_GT(s.committedMispredicts, 500u);
    EXPECT_GT(s.allInsts, s.committedInsts * 5 / 4);
    EXPECT_EQ(s.recoveries, s.committedMispredicts);
}

TEST(PipelineTest, CommittedWorkMatchesFunctionalRun)
{
    const Program prog = makeWorkload("compress");
    std::uint64_t functional_steps = 0;
    std::uint64_t functional_branches = 0;
    {
        Machine m(prog);
        while (!m.halted()) {
            const StepInfo si = m.step();
            if (si.halted)
                break;
            ++functional_steps;
            if (si.isCond)
                ++functional_branches;
        }
    }
    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    const PipelineStats s = pipe.run();
    EXPECT_EQ(s.committedInsts, functional_steps);
    EXPECT_EQ(s.committedCondBranches, functional_branches);
    EXPECT_GE(s.allInsts, s.committedInsts);
}

TEST(PipelineTest, CommittedBranchStreamUnchangedBySpeculation)
{
    // The decisive invariant: the committed (pc, outcome) sequence seen
    // through the speculating pipeline must be bit-identical to the
    // plain functional execution — rollback must be airtight.
    const Program prog = makeWorkload("perl");
    std::vector<std::pair<Addr, bool>> functional;
    {
        Machine m(prog);
        while (!m.halted()) {
            const StepInfo si = m.step();
            if (si.halted)
                break;
            if (si.isCond)
                functional.emplace_back(si.addr, si.taken);
        }
    }

    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    std::vector<std::pair<Addr, bool>> committed;
    CallbackSink sink([&committed](const BranchEvent &ev) {
        if (ev.willCommit)
            committed.emplace_back(ev.pc, ev.taken);
    });
    pipe.attachSink(&sink);
    pipe.run();
    ASSERT_EQ(committed.size(), functional.size());
    EXPECT_TRUE(committed == functional);
}

TEST(PipelineTest, EveryBranchEventDeliveredExactlyOnce)
{
    const Program prog = makeWorkload("gcc");
    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    std::uint64_t committed_events = 0, squashed_events = 0;
    CallbackSink sink([&](const BranchEvent &ev) {
        if (ev.willCommit)
            ++committed_events;
        else
            ++squashed_events;
    });
    pipe.attachSink(&sink);
    const PipelineStats s = pipe.run();
    EXPECT_EQ(committed_events, s.committedCondBranches);
    EXPECT_EQ(committed_events + squashed_events, s.allCondBranches);
    EXPECT_GT(squashed_events, 0u);
}

TEST(PipelineTest, AccuracyCloseToTraceDriven)
{
    const Program prog = makeWorkload("xlisp");
    GsharePredictor trace_pred;
    const TraceRunStats trace = runTrace(prog, trace_pred);
    GsharePredictor pipe_pred;
    Pipeline pipe(prog, pipe_pred);
    const PipelineStats s = pipe.run();
    EXPECT_NEAR(s.committedAccuracy(), trace.accuracy(), 0.05);
}

TEST(PipelineTest, PerceivedDistanceRestartsAfterRecovery)
{
    const Program prog = alternatingLoop(500);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    std::uint64_t ones = 0, committed = 0;
    CallbackSink sink([&](const BranchEvent &ev) {
        if (!ev.willCommit)
            return;
        ++committed;
        if (ev.perceivedDistCommitted == 1)
            ++ones;
    });
    pipe.attachSink(&sink);
    const PipelineStats s = pipe.run();
    // Every recovery resets the perceived distance, so distance-1
    // branches must be at least as frequent as recoveries.
    EXPECT_GE(ones, s.recoveries / 2);
    EXPECT_GT(committed, 0u);
}

TEST(PipelineTest, MispredictionClusteringVisibleInProfile)
{
    const Program prog = makeWorkload("go");
    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    DistanceCollector dist;
    pipe.attachSink(&dist);
    pipe.run();
    // The paper's Fig. 6 shape: branches right after a misprediction
    // mispredict far more often than average.
    const auto &profile = dist.preciseAll;
    EXPECT_GT(profile.rateAt(1), profile.averageRate());
}

TEST(PipelineTest, EstimatorBitsFollowAttachOrder)
{
    const Program prog = countdownLoop(50);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    ConstantEstimator low(false), high(true);
    const unsigned i_low = pipe.attachEstimator(&low);
    const unsigned i_high = pipe.attachEstimator(&high);
    bool checked = false;
    CallbackSink sink([&](const BranchEvent &ev) {
        EXPECT_FALSE(ev.estimate(i_low));
        EXPECT_TRUE(ev.estimate(i_high));
        checked = true;
    });
    pipe.attachSink(&sink);
    pipe.run();
    EXPECT_TRUE(checked);
}

TEST(PipelineTest, LevelReadersSampled)
{
    const Program prog = countdownLoop(50);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    CallbackLevelSource counter_level(
            [](Addr, const BpInfo &info) { return info.counterValue; });
    const unsigned idx = pipe.attachLevelReader(&counter_level);
    std::uint64_t committed_samples = 0;
    CallbackSink sink([&](const BranchEvent &ev) {
        EXPECT_LE(ev.levels[idx], 3u);
        if (ev.willCommit)
            ++committed_samples;
    });
    pipe.attachSink(&sink);
    pipe.run();
    EXPECT_EQ(committed_samples, 50u);
}

TEST(PipelineTest, MaxCommittedCutoffStopsEarly)
{
    const Program prog = makeWorkload("ijpeg");
    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    const PipelineStats s = pipe.run(10'000);
    EXPECT_GE(s.committedInsts, 10'000u);
    EXPECT_LT(s.committedInsts, 12'000u);
}

TEST(PipelineTest, RunWithoutCachesWorks)
{
    PipelineConfig cfg;
    cfg.useCaches = false;
    const Program prog = countdownLoop(100);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred, cfg);
    const PipelineStats s = pipe.run();
    EXPECT_EQ(s.committedCondBranches, 100u);
    EXPECT_EQ(s.icacheAccesses, 0u);
}

TEST(PipelineTest, CacheStatisticsPopulated)
{
    const Program prog = makeWorkload("compress");
    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    const PipelineStats s = pipe.run();
    EXPECT_GT(s.icacheAccesses, 0u);
    EXPECT_GT(s.dcacheAccesses, 0u);
    EXPECT_GT(s.icacheMisses, 0u); // cold misses at least
}

TEST(PipelineTest, TickWithoutFetchOnlyDrains)
{
    const Program prog = countdownLoop(100);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    for (int i = 0; i < 50; ++i)
        pipe.tick(false);
    EXPECT_EQ(pipe.snapshotStats().committedInsts, 0u);
    EXPECT_FALSE(pipe.done());
    while (pipe.tick(true)) {
    }
    EXPECT_TRUE(pipe.done());
    EXPECT_EQ(pipe.snapshotStats().committedCondBranches, 100u);
}

TEST(PipelineTest, DoneAfterRun)
{
    const Program prog = countdownLoop(10);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    pipe.run();
    EXPECT_TRUE(pipe.done());
    EXPECT_FALSE(pipe.tick(true));
}

/**
 * run() fast-forwards idle gaps (fetch stalled or gated with nothing
 * resolving); the result must be bit-identical to ticking every cycle.
 */
TEST(PipelineTest, RunFastForwardMatchesTickLoop)
{
    const Program prog = makeWorkload("compress");
    JrsConfig jrs_cfg;

    auto run_one = [&](bool gated, bool fast) {
        GsharePredictor pred;
        JrsEstimator jrs(jrs_cfg);
        Pipeline pipe(prog, pred);
        const unsigned idx = pipe.attachEstimator(&jrs);
        if (gated)
            pipe.enableGating(idx, 1);
        if (fast)
            return pipe.run();
        while (pipe.tick(true)) {
        }
        return pipe.snapshotStats();
    };

    for (const bool gated : {false, true}) {
        const PipelineStats fast = run_one(gated, true);
        const PipelineStats slow = run_one(gated, false);
        EXPECT_EQ(fast, slow) << (gated ? "gated" : "plain");
    }
}

TEST(PipelineTest, GatingReducesWrongPathWork)
{
    const Program prog = makeWorkload("go");
    JrsConfig jrs_cfg;

    auto run_one = [&](bool gated) {
        GsharePredictor pred;
        JrsEstimator jrs(jrs_cfg);
        Pipeline pipe(prog, pred);
        const unsigned idx = pipe.attachEstimator(&jrs);
        if (gated)
            pipe.enableGating(idx, 1);
        return pipe.run();
    };

    const PipelineStats base = run_one(false);
    const PipelineStats gated = run_one(true);
    EXPECT_EQ(base.committedInsts, gated.committedInsts);
    EXPECT_LT(gated.allInsts - gated.committedInsts,
              base.allInsts - base.committedInsts);
    EXPECT_GT(gated.gatedCycles, 0u);
    EXPECT_GE(gated.cycles, base.cycles); // gating costs performance
}

TEST(PipelineTest, WrongPathWorkBoundedByRecoveries)
{
    // Each recovery can fetch wrong-path work only between the
    // misprediction and its resolution; bound it loosely by the
    // product of fetch width and the worst resolution latency.
    const Program prog = makeWorkload("gcc");
    GsharePredictor pred;
    PipelineConfig cfg;
    Pipeline pipe(prog, pred, cfg);
    const PipelineStats s = pipe.run();
    const std::uint64_t wrong_path = s.allInsts - s.committedInsts;
    const std::uint64_t worst_resolution = cfg.frontendDepth
        + cfg.multLatency + cfg.dcache.missLatency + 4;
    EXPECT_LE(wrong_path,
              s.recoveries * cfg.fetchWidth * worst_resolution);
    EXPECT_GT(wrong_path, s.recoveries); // at least one per flush
}

TEST(PipelineTest, IpcWithinPipelineBounds)
{
    const Program prog = makeWorkload("m88ksim");
    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    const PipelineStats s = pipe.run();
    EXPECT_GT(s.ipc(), 0.5);
    EXPECT_LE(s.ipc(), 4.0); // fetch width bound
}

TEST(PipelineDeathTest, GatingIndexOutOfRangeFatal)
{
    const Program prog = countdownLoop(10);
    BimodalPredictor pred;
    Pipeline pipe(prog, pred);
    EXPECT_EXIT(pipe.enableGating(0, 1), ::testing::ExitedWithCode(1),
                "index");
}

/**
 * The committed-stream invariant must hold for every workload and
 * predictor — this is the broad safety net for the speculation
 * machinery.
 */
class PipelineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 PredictorKind>>
{
};

TEST_P(PipelineEquivalenceTest, CommittedCountsMatchFunctionalRun)
{
    const auto &[workload, kind] = GetParam();
    const Program prog = makeWorkload(workload);
    std::uint64_t functional_steps = 0;
    {
        Machine m(prog);
        while (!m.halted()) {
            if (m.step().halted)
                break;
            ++functional_steps;
        }
    }
    auto pred = makePredictor(kind);
    Pipeline pipe(prog, *pred);
    const PipelineStats s = pipe.run();
    EXPECT_EQ(s.committedInsts, functional_steps);
}

INSTANTIATE_TEST_SUITE_P(
        Matrix, PipelineEquivalenceTest,
        ::testing::Combine(
                ::testing::Values("compress", "go", "m88ksim",
                                  "vortex"),
                ::testing::Values(PredictorKind::Gshare,
                                  PredictorKind::McFarling,
                                  PredictorKind::SAg)),
        [](const auto &info) {
            return std::get<0>(info.param) + "_"
                + predictorKindName(std::get<1>(info.param));
        });

} // anonymous namespace
} // namespace confsim
