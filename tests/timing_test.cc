/**
 * @file
 * Timing-model tests: BTB behaviour, and property sweeps showing that
 * pipeline configuration changes timing only — never architected
 * results or confidence measurements' denominators.
 */

#include <gtest/gtest.h>

#include "bpred/btb.hh"
#include "bpred/gshare.hh"
#include "confidence/jrs.hh"
#include "harness/collectors.hh"
#include "pipeline/pipeline.hh"
#include "workloads/workload.hh"

namespace confsim
{
namespace
{

// --------------------------------------------------------------------- BTB

TEST(BtbTest, MissThenHit)
{
    Btb btb;
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    const auto target = btb.lookup(0x1000);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 0x2000u);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.misses(), 1u);
}

TEST(BtbTest, UpdateRefreshesTarget)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(BtbTest, TaggedEntriesDoNotAlias)
{
    // Unlike the tagless predictor tables, the BTB is tagged: a
    // different branch mapping to the same set must miss.
    BtbConfig cfg;
    cfg.entries = 8;
    cfg.ways = 2;
    Btb btb(cfg);
    btb.update(0x1000, 0x2000);
    const Addr alias = 0x1000 + 4 * 4; // same set (4 sets)
    EXPECT_FALSE(btb.lookup(alias).has_value());
}

TEST(BtbTest, LruEviction)
{
    BtbConfig cfg;
    cfg.entries = 2;
    cfg.ways = 2; // one set
    Btb btb(cfg);
    btb.update(0x1000, 0xa);
    btb.update(0x2000, 0xb);
    btb.lookup(0x1000); // refresh 0x1000
    btb.update(0x3000, 0xc); // evicts 0x2000
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
    EXPECT_FALSE(btb.lookup(0x2000).has_value());
    EXPECT_TRUE(btb.lookup(0x3000).has_value());
}

TEST(BtbTest, ResetClears)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    btb.reset();
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.lookups(), 1u);
    EXPECT_EQ(btb.misses(), 1u);
    EXPECT_DOUBLE_EQ(btb.missRate(), 1.0);
}

TEST(BtbDeathTest, BadGeometryFatal)
{
    BtbConfig cfg;
    cfg.ways = 0;
    EXPECT_EXIT(Btb btb(cfg), ::testing::ExitedWithCode(1),
                "associativity");
    BtbConfig cfg2;
    cfg2.entries = 10;
    cfg2.ways = 2;
    EXPECT_EXIT(Btb btb2(cfg2), ::testing::ExitedWithCode(1),
                "power of two");
}

// ----------------------------------------------------- pipeline with BTB

TEST(PipelineBtbTest, BtbCostsCyclesButPreservesResults)
{
    const Program prog = makeWorkload("ijpeg"); // taken-heavy loops
    PipelineStats ideal, with_btb;
    {
        GsharePredictor pred;
        Pipeline pipe(prog, pred);
        ideal = pipe.run();
    }
    {
        PipelineConfig cfg;
        cfg.useBtb = true;
        GsharePredictor pred;
        Pipeline pipe(prog, pred, cfg);
        with_btb = pipe.run();
    }
    EXPECT_EQ(with_btb.committedInsts, ideal.committedInsts);
    EXPECT_EQ(with_btb.committedCondBranches,
              ideal.committedCondBranches);
    EXPECT_GE(with_btb.cycles, ideal.cycles);
    EXPECT_GT(with_btb.btbLookups, 0u);
    EXPECT_GT(with_btb.btbMisses, 0u); // cold misses at minimum
    EXPECT_EQ(ideal.btbLookups, 0u);   // off by default
}

TEST(PipelineBtbTest, WarmBtbMissesAreRare)
{
    const Program prog = makeWorkload("m88ksim"); // small hot loop
    PipelineConfig cfg;
    cfg.useBtb = true;
    GsharePredictor pred;
    Pipeline pipe(prog, pred, cfg);
    const PipelineStats s = pipe.run();
    ASSERT_GT(s.btbLookups, 0u);
    EXPECT_LT(static_cast<double>(s.btbMisses)
                  / static_cast<double>(s.btbLookups),
              0.05);
}

// -------------------------------------------------- configuration sweeps

struct TimingCase
{
    const char *name;
    unsigned fetchWidth;
    unsigned issueWidth;
    Cycle penalty;
    bool caches;
    bool btb;
};

class PipelineTimingSweep : public ::testing::TestWithParam<TimingCase>
{
};

TEST_P(PipelineTimingSweep, TimingNeverChangesArchitectedWork)
{
    const TimingCase &tc = GetParam();
    const Program prog = makeWorkload("compress");

    // Reference: plain functional execution.
    std::uint64_t functional_steps = 0;
    {
        Machine m(prog);
        while (!m.halted()) {
            if (m.step().halted)
                break;
            ++functional_steps;
        }
    }

    PipelineConfig cfg;
    cfg.fetchWidth = tc.fetchWidth;
    cfg.issueWidth = tc.issueWidth;
    cfg.mispredictPenalty = tc.penalty;
    cfg.useCaches = tc.caches;
    cfg.useBtb = tc.btb;
    GsharePredictor pred;
    Pipeline pipe(prog, pred, cfg);
    const PipelineStats s = pipe.run();

    EXPECT_EQ(s.committedInsts, functional_steps);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_LE(s.ipc(), static_cast<double>(tc.fetchWidth) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
        Configs, PipelineTimingSweep,
        ::testing::Values(
                TimingCase{"narrow", 1, 1, 3, true, false},
                TimingCase{"wide", 8, 8, 3, true, false},
                TimingCase{"no_penalty", 4, 4, 0, true, false},
                TimingCase{"big_penalty", 4, 4, 20, true, false},
                TimingCase{"no_caches", 4, 4, 3, false, false},
                TimingCase{"with_btb", 4, 4, 3, true, true},
                TimingCase{"asymmetric", 4, 2, 3, true, true}),
        [](const ::testing::TestParamInfo<TimingCase> &info) {
            return info.param.name;
        });

TEST(PipelineTimingTest, NarrowerIssueLowersIpc)
{
    const Program prog = makeWorkload("ijpeg");
    double ipc[2];
    int i = 0;
    for (const unsigned width : {1u, 4u}) {
        PipelineConfig cfg;
        cfg.issueWidth = width;
        GsharePredictor pred;
        Pipeline pipe(prog, pred, cfg);
        ipc[i++] = pipe.run().ipc();
    }
    EXPECT_LT(ipc[0], ipc[1]);
    EXPECT_LE(ipc[0], 1.0 + 1e-9);
}

TEST(PipelineTimingTest, LargerPenaltyCostsCycles)
{
    const Program prog = makeWorkload("go"); // mispredict-heavy
    Cycle cycles[2];
    int i = 0;
    for (const Cycle penalty : {Cycle{0}, Cycle{10}}) {
        PipelineConfig cfg;
        cfg.mispredictPenalty = penalty;
        GsharePredictor pred;
        Pipeline pipe(prog, pred, cfg);
        cycles[i++] = pipe.run().cycles;
    }
    EXPECT_GT(cycles[1], cycles[0]);
}

TEST(PipelineTimingTest, ConfidenceMetricsTimingInsensitive)
{
    // The quadrant *totals* are architectural: they must be identical
    // across timing configurations (wrong-path counts differ, but the
    // committed stream does not).
    const Program prog = makeWorkload("perl");
    QuadrantCounts q[2];
    int i = 0;
    for (const bool btb_on : {false, true}) {
        PipelineConfig cfg;
        cfg.useBtb = btb_on;
        cfg.issueWidth = btb_on ? 2 : 4;
        GsharePredictor pred;
        JrsEstimator jrs;
        Pipeline pipe(prog, pred, cfg);
        pipe.attachEstimator(&jrs);
        ConfidenceCollector collector(1);
        pipe.attachSink(&collector);
        pipe.run();
        q[i++] = collector.committed(0);
    }
    EXPECT_EQ(q[0].total(), q[1].total());
    // The estimates themselves may shift slightly (different wrong-
    // path depths train nothing, but perceived timing of updates can
    // move) — accuracy, an architected property of the predictor's
    // update stream, stays very close.
    EXPECT_NEAR(q[0].accuracy(), q[1].accuracy(), 0.01);
}

// ------------------------------------------------------ eager execution

TEST(EagerPipelineTest, ForkingPreservesArchitectedWork)
{
    const Program prog = makeWorkload("go");
    PipelineStats base, eager;
    {
        GsharePredictor pred;
        Pipeline pipe(prog, pred);
        base = pipe.run();
    }
    {
        GsharePredictor pred;
        JrsEstimator jrs;
        Pipeline pipe(prog, pred);
        const unsigned idx = pipe.attachEstimator(&jrs);
        pipe.enableEagerExecution(idx);
        eager = pipe.run();
    }
    EXPECT_EQ(eager.committedInsts, base.committedInsts);
    EXPECT_EQ(eager.committedCondBranches,
              base.committedCondBranches);
    EXPECT_GT(eager.forkedBranches, 0u);
    EXPECT_GT(eager.forkRescues, 0u);
    EXPECT_LE(eager.forkRescues, eager.forkedBranches);
    EXPECT_GT(eager.forkedFetchCycles, 0u);
    EXPECT_EQ(base.forkedBranches, 0u); // off by default
}

TEST(EagerPipelineTest, RescueRateTracksPvn)
{
    // A forked branch is rescued iff it was mispredicted — so the
    // rescue rate must equal the forking estimator's committed PVN,
    // up to the fork-budget cutoff and wrong-path forks.
    const Program prog = makeWorkload("vortex");
    GsharePredictor pred;
    JrsEstimator jrs;
    PipelineConfig cfg;
    cfg.maxForksInFlight = 64; // effectively unlimited
    Pipeline pipe(prog, pred, cfg);
    const unsigned idx = pipe.attachEstimator(&jrs);
    pipe.enableEagerExecution(idx);
    ConfidenceCollector collector(1);
    pipe.attachSink(&collector);
    const PipelineStats s = pipe.run();
    const double rescue_rate = static_cast<double>(s.forkRescues)
        / static_cast<double>(s.forkedBranches);
    EXPECT_NEAR(rescue_rate, collector.all(0).pvn(), 0.05);
}

TEST(EagerPipelineTest, ForkBudgetRespected)
{
    const Program prog = makeWorkload("gcc");
    GsharePredictor pred;
    ConstantEstimator always_low(false);
    PipelineConfig cfg;
    cfg.maxForksInFlight = 2;
    Pipeline pipe(prog, pred, cfg);
    const unsigned idx = pipe.attachEstimator(&always_low);
    pipe.enableEagerExecution(idx);
    const PipelineStats s = pipe.run();
    // With a tiny budget, far fewer forks than branches.
    EXPECT_LT(s.forkedBranches, s.allCondBranches);
    EXPECT_GT(s.forkedBranches, 0u);
}

TEST(EagerPipelineDeathTest, BadEstimatorIndexFatal)
{
    const Program prog = makeWorkload("compress");
    GsharePredictor pred;
    Pipeline pipe(prog, pred);
    EXPECT_EXIT(pipe.enableEagerExecution(0),
                ::testing::ExitedWithCode(1), "index");
}

} // anonymous namespace
} // namespace confsim
