#!/bin/sh
# Regenerate the golden-equivalence baselines from a trusted confsim
# binary. Only run this deliberately (e.g. after an intentional output
# format change) — the whole point of the goldens is that refactors do
# NOT need to regenerate them.
#
# usage: regenerate.sh CONFSIM_BIN [GOLDEN_DIR]
set -eu

BIN=$1
GOLDEN=${2:-$(dirname "$0")}

PREDICTORS="bimodal gshare mcfarling sag gselect gag pas"
ESTIMATORS="jrs jrs-base satcnt satcnt-both satcnt-either pattern \
static distance cir-ones cir-table mcf-jrs boost2 boost3 always-high \
always-low"

mkdir -p "$GOLDEN/expected"
for pred in $PREDICTORS; do
    "$BIN" --sweep "$GOLDEN/grids/$pred.json" --jobs 0 \
        > "$GOLDEN/expected/sweep_$pred.json"
    : > "$GOLDEN/expected/cli_$pred.json"
    for est in $ESTIMATORS; do
        "$BIN" --workload compress --predictor "$pred" \
            --estimator "$est" --json \
            >> "$GOLDEN/expected/cli_$pred.json"
    done
    echo "captured $pred"
done
