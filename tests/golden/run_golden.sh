#!/bin/sh
# Golden-equivalence check for one predictor: the sweep-grid JSON and
# the per-estimator --json documents emitted by the current confsim
# binary must be byte-identical to the outputs captured before the
# estimator-input plugin refactor. Any estimator/predictor stats drift
# for pre-existing combinations fails this test.
#
# usage: run_golden.sh CONFSIM_BIN PREDICTOR GOLDEN_DIR [WORKDIR]
set -eu

BIN=$1
PRED=$2
GOLDEN=$3
WORK=${4:-$(mktemp -d)}

ESTIMATORS="jrs jrs-base satcnt satcnt-both satcnt-either pattern \
static distance cir-ones cir-table mcf-jrs boost2 boost3 always-high \
always-low"

# Sweep: full estimator grid over every standard workload, serial.
"$BIN" --sweep "$GOLDEN/grids/$PRED.json" --jobs 0 \
    > "$WORK/sweep_$PRED.json"
if ! cmp -s "$GOLDEN/expected/sweep_$PRED.json" \
        "$WORK/sweep_$PRED.json"; then
    echo "FAIL: --sweep output for '$PRED' differs from golden" >&2
    diff "$GOLDEN/expected/sweep_$PRED.json" \
        "$WORK/sweep_$PRED.json" | head -40 >&2 || true
    exit 1
fi

# Sweep again with workers: serial and parallel must be byte-identical.
"$BIN" --sweep "$GOLDEN/grids/$PRED.json" --jobs 2 \
    > "$WORK/sweep_par_$PRED.json"
if ! cmp -s "$GOLDEN/expected/sweep_$PRED.json" \
        "$WORK/sweep_par_$PRED.json"; then
    echo "FAIL: --sweep --jobs 2 output for '$PRED' differs" >&2
    exit 1
fi

# CLI --json: one document per estimator, concatenated in list order.
: > "$WORK/cli_$PRED.json"
for est in $ESTIMATORS; do
    "$BIN" --workload compress --predictor "$PRED" \
        --estimator "$est" --json >> "$WORK/cli_$PRED.json"
done
if ! cmp -s "$GOLDEN/expected/cli_$PRED.json" \
        "$WORK/cli_$PRED.json"; then
    echo "FAIL: --json output for '$PRED' differs from golden" >&2
    diff "$GOLDEN/expected/cli_$PRED.json" "$WORK/cli_$PRED.json" \
        | head -40 >&2 || true
    exit 1
fi

echo "golden equivalence OK for $PRED"
