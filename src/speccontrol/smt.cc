#include "speccontrol/smt.hh"

#include <algorithm>

#include "common/logging.hh"

namespace confsim
{

const char *
fetchPolicyName(FetchPolicy policy)
{
    switch (policy) {
      case FetchPolicy::RoundRobin: return "round-robin";
      case FetchPolicy::FewestInFlight: return "fewest-in-flight";
      case FetchPolicy::LowConfidence: return "low-confidence";
    }
    return "???";
}

bool
fetchPolicyFromName(const std::string &name, FetchPolicy &policy)
{
    if (name == "round-robin") {
        policy = FetchPolicy::RoundRobin;
        return true;
    }
    if (name == "fewest-in-flight") {
        policy = FetchPolicy::FewestInFlight;
        return true;
    }
    if (name == "low-confidence") {
        policy = FetchPolicy::LowConfidence;
        return true;
    }
    return false;
}

SmtSimulator::SmtSimulator(const SmtConfig &config)
    : cfg(config)
{
}

void
SmtSimulator::reset()
{
    for (auto &t : threads) {
        t->pred->reset();
        t->jrs->reset();
        t->pipe->reset();
        t->running = true;
    }
    rrCursor = 0;
}

void
SmtSimulator::registerStats(StatsRegistry &reg)
{
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const std::string prefix = "thread" + std::to_string(i);
        reg.registerObject(prefix + ".predictor", *threads[i]->pred);
        reg.registerObject(prefix + ".jrs", *threads[i]->jrs);
        reg.registerObject(prefix + ".pipeline", *threads[i]->pipe);
    }
}

void
SmtSimulator::describeConfig(ConfigWriter &out) const
{
    out.putString("policy", fetchPolicyName(cfg.policy));
    out.putUint("fetch_threads_per_cycle", cfg.fetchThreadsPerCycle);
    out.putString("predictor", predictorKindName(cfg.predictor));
    out.putUint("threads", threads.size());
}

void
SmtSimulator::addThread(const WorkloadSpec &spec)
{
    auto thread = std::make_unique<Thread>();
    thread->name = spec.name;
    thread->prog = spec.factory(cfg.experiment.workload);
    thread->pred = makePredictor(cfg.predictor);
    thread->jrs = std::make_unique<JrsEstimator>(cfg.jrs);
    thread->pipe = std::make_unique<Pipeline>(thread->prog,
                                              *thread->pred,
                                              cfg.pipeline);
    const unsigned idx = thread->pipe->attachEstimator(thread->jrs.get());
    thread->pipe->trackConfidence(idx);
    threads.push_back(std::move(thread));
}

std::vector<std::size_t>
SmtSimulator::selectFetchThreads()
{
    // Only threads that would actually fetch this cycle compete for
    // the port; granting it to a recovering/stalled thread wastes it.
    std::vector<std::size_t> runnable;
    for (std::size_t i = 0; i < threads.size(); ++i)
        if (threads[i]->running && threads[i]->pipe->fetchReady())
            runnable.push_back(i);
    if (runnable.empty())
        return runnable;

    const std::size_t grant =
        std::min<std::size_t>(cfg.fetchThreadsPerCycle, runnable.size());

    // Rotating tie-break so equal-priority threads share the port
    // fairly instead of starving high indices.
    const std::size_t rotation = rrCursor;
    rrCursor = (rrCursor + 1) % threads.size();
    auto rotated = [this, rotation](std::size_t i) {
        return (i + threads.size() - rotation) % threads.size();
    };

    switch (cfg.policy) {
      case FetchPolicy::RoundRobin:
        std::sort(runnable.begin(), runnable.end(),
                  [&rotated](std::size_t a, std::size_t b) {
                      return rotated(a) < rotated(b);
                  });
        break;
      case FetchPolicy::FewestInFlight:
        std::sort(runnable.begin(), runnable.end(),
                  [this, &rotated](std::size_t a, std::size_t b) {
                      const auto fa =
                          threads[a]->pipe->branchesInFlight();
                      const auto fb =
                          threads[b]->pipe->branchesInFlight();
                      if (fa != fb)
                          return fa < fb;
                      return rotated(a) < rotated(b);
                  });
        break;
      case FetchPolicy::LowConfidence:
        // Primary key: low-confidence in-flight branches; tie-break on
        // total in-flight (approximating ICOUNT behaviour when no
        // confidence signal distinguishes threads), then rotation.
        std::sort(runnable.begin(), runnable.end(),
                  [this, &rotated](std::size_t a, std::size_t b) {
                      const auto la =
                          threads[a]->pipe->lowConfInFlight();
                      const auto lb =
                          threads[b]->pipe->lowConfInFlight();
                      if (la != lb)
                          return la < lb;
                      const auto fa =
                          threads[a]->pipe->branchesInFlight();
                      const auto fb =
                          threads[b]->pipe->branchesInFlight();
                      if (fa != fb)
                          return fa < fb;
                      return rotated(a) < rotated(b);
                  });
        break;
    }
    runnable.resize(grant);
    return runnable;
}

SmtStats
SmtSimulator::run(Cycle max_cycles)
{
    if (threads.empty())
        fatal("SmtSimulator::run with no threads");

    SmtStats result;
    Cycle cycles = 0;

    while (cycles < max_cycles) {
        bool any_running = false;
        for (const auto &t : threads)
            if (t->running)
                any_running = true;
        if (!any_running)
            break;
        ++cycles;

        const std::vector<std::size_t> granted = selectFetchThreads();
        for (std::size_t i = 0; i < threads.size(); ++i) {
            Thread &t = *threads[i];
            if (!t.running)
                continue;
            const bool may_fetch =
                std::find(granted.begin(), granted.end(), i)
                != granted.end();
            if (!t.pipe->tick(may_fetch))
                t.running = false;
        }
    }

    result.cycles = cycles;
    for (const auto &t : threads) {
        const PipelineStats s = t->pipe->snapshotStats();
        result.committedInsts += s.committedInsts;
        result.allInsts += s.allInsts;
        result.perThreadCommitted.push_back(s.committedInsts);
    }
    return result;
}

} // namespace confsim
