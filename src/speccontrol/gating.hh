/**
 * @file
 * Pipeline-gating experiment driver (the paper's power-conservation
 * application [11], Manne et al.): run a workload twice — once
 * unconstrained, once with fetch gated when N in-flight branches are
 * low confidence — and compare wasted wrong-path work against the
 * performance cost.
 */

#ifndef CONFSIM_SPECCONTROL_GATING_HH
#define CONFSIM_SPECCONTROL_GATING_HH

#include "harness/experiment.hh"
#include "pipeline/pipeline.hh"
#include "workloads/workload.hh"

namespace confsim
{

/** Baseline-versus-gated comparison for one workload. */
struct GatingResult
{
    std::string workload;
    PipelineStats baseline;
    PipelineStats gated;

    /** Wrong-path instructions executed in the baseline run. */
    std::uint64_t
    baselineWrongPath() const
    {
        return baseline.allInsts - baseline.committedInsts;
    }

    /** Wrong-path instructions executed in the gated run. */
    std::uint64_t
    gatedWrongPath() const
    {
        return gated.allInsts - gated.committedInsts;
    }

    /** Fraction of wrong-path work eliminated by gating. */
    double
    extraWorkReduction() const
    {
        const auto base = baselineWrongPath();
        if (base == 0)
            return 0.0;
        return 1.0
            - static_cast<double>(gatedWrongPath())
                / static_cast<double>(base);
    }

    /** Execution-time cost of gating (1.0 = no slowdown). */
    double
    slowdown() const
    {
        return baseline.cycles == 0
            ? 0.0
            : static_cast<double>(gated.cycles)
                / static_cast<double>(baseline.cycles);
    }
};

/**
 * Run the gating comparison for one workload.
 *
 * @param spec workload.
 * @param kind branch predictor family.
 * @param cfg experiment knobs (the JRS config also configures the
 *        gating estimator).
 * @param gate_threshold gate fetch when this many in-flight branches
 *        are low confidence.
 */
GatingResult runGatingExperiment(const WorkloadSpec &spec,
                                 PredictorKind kind,
                                 const ExperimentConfig &cfg,
                                 unsigned gate_threshold);

} // namespace confsim

#endif // CONFSIM_SPECCONTROL_GATING_HH
