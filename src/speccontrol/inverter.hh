/**
 * @file
 * "Improving branch predictors" check (§2.2, after Jacobsen et al.):
 * if a confidence estimator's PVN exceeded 50%, inverting the
 * prediction of low-confidence branches would raise accuracy; if PVP
 * fell below 50%, inverting high-confidence predictions would. The
 * paper reports never observing either condition across programs —
 * these helpers let every bench verify that claim on our data.
 */

#ifndef CONFSIM_SPECCONTROL_INVERTER_HH
#define CONFSIM_SPECCONTROL_INVERTER_HH

#include "metrics/quadrant.hh"

namespace confsim
{

/**
 * Accuracy obtained by inverting every low-confidence prediction:
 * high-confidence branches keep their outcome (C_HC correct), while
 * low-confidence ones flip (I_LC becomes correct, C_LC incorrect).
 */
inline double
accuracyInvertingLowConfidence(const QuadrantCounts &q)
{
    const double total = static_cast<double>(q.total());
    if (total <= 0.0)
        return 0.0;
    return static_cast<double>(q.chc + q.ilc) / total;
}

/**
 * Accuracy obtained by inverting every high-confidence prediction
 * (the degenerate PVP < 50% case).
 */
inline double
accuracyInvertingHighConfidence(const QuadrantCounts &q)
{
    const double total = static_cast<double>(q.total());
    if (total <= 0.0)
        return 0.0;
    return static_cast<double>(q.ihc + q.clc) / total;
}

/** True when inverting low-confidence predictions would help. */
inline bool
inversionWouldImprove(const QuadrantCounts &q)
{
    return accuracyInvertingLowConfidence(q) > q.accuracy();
}

} // namespace confsim

#endif // CONFSIM_SPECCONTROL_INVERTER_HH
