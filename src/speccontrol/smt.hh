/**
 * @file
 * SMT fetch-policy simulation (§2.2 of the paper): several hardware
 * threads share one fetch port; each cycle a fetch policy picks which
 * thread(s) may fetch. The confidence-based policy deprioritises
 * threads whose in-flight branches carry low-confidence estimates —
 * those threads are speculating on instructions that are unlikely to
 * commit, so fetch bandwidth is better spent elsewhere.
 *
 * Simplification vs. real SMT: threads own private predictors and
 * caches (no destructive interference modelled); the shared resource
 * is fetch bandwidth, which is the lever the paper's policy uses.
 */

#ifndef CONFSIM_SPECCONTROL_SMT_HH
#define CONFSIM_SPECCONTROL_SMT_HH

#include <memory>
#include <string>
#include <vector>

#include "confidence/jrs.hh"
#include "harness/experiment.hh"
#include "pipeline/pipeline.hh"
#include "workloads/workload.hh"

namespace confsim
{

/** Thread-selection policies for the shared fetch port. */
enum class FetchPolicy
{
    RoundRobin,      ///< rotate through runnable threads
    FewestInFlight,  ///< ICOUNT-style: least unresolved branches
    LowConfidence,   ///< paper: fewest low-confidence in-flight branches
};

/** @return human-readable policy name. */
const char *fetchPolicyName(FetchPolicy policy);

/** Parse @p name back to a FetchPolicy. @return false on unknown. */
bool fetchPolicyFromName(const std::string &name, FetchPolicy &policy);

/** Configuration of an SMT simulation. */
struct SmtConfig
{
    FetchPolicy policy = FetchPolicy::RoundRobin;
    unsigned fetchThreadsPerCycle = 1; ///< threads granted fetch/cycle
    PredictorKind predictor = PredictorKind::Gshare;
    PipelineConfig pipeline;   ///< per-thread pipeline parameters
    JrsConfig jrs;             ///< confidence estimator per thread
    ExperimentConfig experiment; ///< workload scale etc.
};

/** Aggregate results of an SMT run. */
struct SmtStats
{
    Cycle cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t allInsts = 0; ///< incl. wrong-path work
    std::vector<std::uint64_t> perThreadCommitted;

    /** Aggregate throughput in committed instructions per cycle. */
    double
    throughput() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(committedInsts)
                / static_cast<double>(cycles);
    }

    /** Fraction of executed instructions that were wrong-path. */
    double
    wastedWorkFraction() const
    {
        return allInsts == 0
            ? 0.0
            : 1.0 - static_cast<double>(committedInsts)
                / static_cast<double>(allInsts);
    }
};

/**
 * Multi-threaded pipeline driver with a pluggable fetch policy.
 *
 * A SimObject whose children are the per-thread components: thread @c i
 * registers under `smt.thread<i>` with `predictor`, `jrs`, and
 * `pipeline` subtrees. reset() restores every thread to power-on state
 * so the simulation can be re-run deterministically.
 */
class SmtSimulator : public SimObject
{
  public:
    /** @param config simulation parameters. */
    explicit SmtSimulator(const SmtConfig &config);

    std::string name() const override { return "smt"; }
    void reset() override;
    void registerStats(StatsRegistry &reg) override;
    void describeConfig(ConfigWriter &out) const override;

    /** Add a hardware thread running the given workload. */
    void addThread(const WorkloadSpec &spec);

    /**
     * Run until every thread finishes (or the cycle bound trips).
     * @return aggregate statistics.
     */
    SmtStats run(Cycle max_cycles = 2'000'000'000ull);

  private:
    struct Thread
    {
        std::string name;
        Program prog;
        std::unique_ptr<BranchPredictor> pred;
        std::unique_ptr<JrsEstimator> jrs;
        std::unique_ptr<Pipeline> pipe;
        bool running = true;
    };

    std::vector<std::size_t> selectFetchThreads();

    SmtConfig cfg;
    std::vector<std::unique_ptr<Thread>> threads;
    std::size_t rrCursor = 0;
};

} // namespace confsim

#endif // CONFSIM_SPECCONTROL_SMT_HH
