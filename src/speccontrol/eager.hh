/**
 * @file
 * Eager (dual-path) execution model (§2.2). When a low-confidence
 * branch is fetched, an eager-execution architecture forks and follows
 * both paths, converting that branch's would-be misprediction penalty
 * into a (smaller) fetch-bandwidth cost. The model evaluates the net
 * effect from measured quadrant counts and pipeline statistics:
 *
 *  - Every LC branch forks: cost = forkOverheadCycles (split fetch).
 *  - A forked branch that would have mispredicted (I_LC) saves the
 *    misprediction penalty plus the average wrong-path drain.
 *  - HC branches never fork; I_HC mispredictions still pay in full.
 *
 * This follows the paper's framing: the PVN is the yield of forking
 * (fraction of forks that pay off) and the SPEC is the coverage
 * (fraction of mispredictions eligible for rescue).
 */

#ifndef CONFSIM_SPECCONTROL_EAGER_HH
#define CONFSIM_SPECCONTROL_EAGER_HH

#include "metrics/quadrant.hh"
#include "pipeline/pipeline.hh"

namespace confsim
{

/** Outcome of the eager-execution evaluation. */
struct EagerEstimate
{
    double forkRate = 0.0;        ///< fraction of branches forked (LC)
    double forkYield = 0.0;       ///< PVN: forks that rescue a miss
    double missCoverage = 0.0;    ///< SPEC: misses rescued
    double savedCycles = 0.0;     ///< penalty cycles avoided
    double overheadCycles = 0.0;  ///< fork bandwidth cost
    double netSavedCycles = 0.0;  ///< saved - overhead
    double estimatedSpeedup = 1.0; ///< baseline / eager cycles
};

/** Tunables of the eager model. */
struct EagerConfig
{
    /** Cycles of fetch bandwidth lost per fork (both paths fetched
     *  until the branch resolves). */
    double forkOverheadCycles = 1.5;
    /** Penalty cycles rescued per covered misprediction (recovery
     *  penalty plus average wrong-path drain). */
    double rescuedPenaltyCycles = 8.0;
};

/**
 * Evaluate eager execution over one run's measurements.
 *
 * @param q committed-branch quadrants of the forking estimator.
 * @param pipe baseline pipeline statistics.
 * @param cfg model tunables.
 */
inline EagerEstimate
evaluateEagerExecution(const QuadrantCounts &q, const PipelineStats &pipe,
                       const EagerConfig &cfg = {})
{
    EagerEstimate e;
    const double total = static_cast<double>(q.total());
    if (total <= 0.0 || pipe.cycles == 0)
        return e;

    const double forks = static_cast<double>(q.clc + q.ilc);
    e.forkRate = forks / total;
    e.forkYield = q.pvn();
    e.missCoverage = q.spec();

    e.savedCycles =
        static_cast<double>(q.ilc) * cfg.rescuedPenaltyCycles;
    e.overheadCycles = forks * cfg.forkOverheadCycles;
    e.netSavedCycles = e.savedCycles - e.overheadCycles;

    const double baseline = static_cast<double>(pipe.cycles);
    const double eager_cycles = baseline - e.netSavedCycles;
    e.estimatedSpeedup =
        eager_cycles > 0.0 ? baseline / eager_cycles : 1.0;
    return e;
}

} // namespace confsim

#endif // CONFSIM_SPECCONTROL_EAGER_HH
