#include "speccontrol/gating.hh"

#include "confidence/jrs.hh"

namespace confsim
{

namespace
{

PipelineStats
runOnce(const Program &prog, PredictorKind kind,
        const ExperimentConfig &cfg, bool gated,
        unsigned gate_threshold)
{
    auto pred = makePredictor(kind);
    JrsEstimator jrs(cfg.jrs);
    Pipeline pipe(prog, *pred, cfg.pipeline);
    const unsigned idx = pipe.attachEstimator(&jrs);
    if (gated)
        pipe.enableGating(idx, gate_threshold);
    return pipe.run();
}

} // anonymous namespace

GatingResult
runGatingExperiment(const WorkloadSpec &spec, PredictorKind kind,
                    const ExperimentConfig &cfg,
                    unsigned gate_threshold)
{
    const Program prog = spec.factory(cfg.workload);
    GatingResult result;
    result.workload = spec.name;
    result.baseline = runOnce(prog, kind, cfg, false, gate_threshold);
    result.gated = runOnce(prog, kind, cfg, true, gate_threshold);
    return result;
}

} // namespace confsim
