/**
 * @file
 * Hashed perceptron predictor (Jiménez & Lin style, hashed-table
 * variant): several small tables of signed weights, each indexed by
 * the branch address xor-folded with a *different length* of global
 * history, plus a per-address bias table. The prediction is the sign
 * of the weight sum; the magnitude of the sum is a natural confidence
 * margin, exposed through BpInfo::nativeConf as the "perc-margin"
 * estimator-input channel.
 *
 * Relation to the paper: the ISCA'98 estimators derive confidence
 * from counter/history state that exists anyway. A perceptron is the
 * frontier case of that idea — its |weight sum| is a free, finely
 * graded confidence signal, letting the sweep harness compare the
 * paper's external estimators against predictor-native confidence on
 * equal footing.
 */

#ifndef CONFSIM_BPRED_PERCEPTRON_HH
#define CONFSIM_BPRED_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/history_register.hh"

namespace confsim
{

/** Largest nativeConf level a perceptron reports (margin clamp). */
inline constexpr unsigned PERC_CONF_LEVEL_MAX = 1023;

/** Configuration for PerceptronPredictor. */
struct PerceptronConfig
{
    std::size_t tableEntries = 1024; ///< power-of-two weights per table
    unsigned weightBits = 8;         ///< signed weight width (2..8)
    /** Global-history length each weight table hashes over; ascending,
     *  each in [1, 63]. */
    std::vector<unsigned> historyLengths = {8, 16, 32, 63};
    /** Training threshold: train on every branch whose predict-time
     *  margin is at or below this, not just mispredictions. */
    int theta = 32;
    /** Speculative history update with repair (as the paper's
     *  speculative gshare); false = update only at resolution. */
    bool speculativeHistory = true;

    bool operator==(const PerceptronConfig &) const = default;
};

/**
 * Multi-table hashed perceptron over folded global histories.
 *
 * BpInfo compatibility: the saturating-counter confidence estimators
 * read counterValue/counterMax, so the weight sum is also mapped onto
 * a pseudo 2-bit counter — below/above theta plays weak/strong:
 * sum < 0 maps to 0 (strong NT) when |sum| > theta else 1 (weak NT),
 * and symmetrically 3/2 for taken. nativeConf carries the unquantized
 * margin min(|sum|, PERC_CONF_LEVEL_MAX).
 */
class PerceptronPredictor : public BranchPredictor
{
  public:
    /** @param config table geometry and training threshold. */
    explicit PerceptronPredictor(const PerceptronConfig &config = {});

    std::string name() const override { return "perceptron"; }
    void describeConfig(ConfigWriter &out) const override;

    std::vector<std::unique_ptr<EstimatorInputPlugin>>
    estimatorInputPlugins() const override;

    /** Current (speculative) global history value. */
    std::uint64_t history() const { return ghr.value(); }

    /**
     * The signed weight sum for @p pc under an explicit history value
     * (exposed for tests; does not touch predictor state).
     */
    int weightSum(Addr pc, std::uint64_t hist) const;

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    /** Fold the low @p len bits of @p hist into indexBits-wide chunks
     *  by xor (Seznec-style history folding, recomputed per access so
     *  update-time repair needs no folded-register state). */
    std::uint64_t foldHistory(std::uint64_t hist, unsigned len) const;

    std::size_t tableIndex(Addr pc, std::uint64_t hist,
                           unsigned len) const;
    std::size_t biasIndex(Addr pc) const;

    /** Saturating-increment @p w toward @p taken within weight range. */
    void train(std::int16_t &w, bool taken) const;

    PerceptronConfig cfg;
    unsigned indexBits;
    std::int16_t weightMax;

    /** One weight table per history length, then the bias table. */
    std::vector<std::vector<std::int16_t>> tables;
    std::vector<std::int16_t> bias;
    HistoryRegister ghr;
};

} // namespace confsim

#endif // CONFSIM_BPRED_PERCEPTRON_HH
