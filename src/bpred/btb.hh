/**
 * @file
 * Branch target buffer: a tagged, set-associative cache from branch
 * address to target address. The pipeline's fetch engine needs the
 * target of a taken-predicted branch *in the fetch cycle*; a BTB miss
 * costs a fetch bubble until decode produces the target. Optional in
 * the pipeline model (the paper's simulator treats fetch redirection
 * as free; the BTB is our opt-in realism ablation).
 */

#ifndef CONFSIM_BPRED_BTB_HH
#define CONFSIM_BPRED_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sim_object.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"

namespace confsim
{

/** Geometry of a Btb. */
struct BtbConfig
{
    std::size_t entries = 512; ///< total entries (power of two)
    unsigned ways = 4;         ///< associativity

    bool operator==(const BtbConfig &) const = default;
};

/**
 * Tagged target cache with true-LRU replacement.
 */
class Btb : public SimObject
{
  public:
    /** @param config geometry; entries must divide evenly by ways. */
    explicit Btb(const BtbConfig &config = {});

    /**
     * Look up the target for the branch at @p pc, updating LRU state.
     * @return the cached target, or nullopt on miss.
     */
    std::optional<Addr> lookup(Addr pc);

    /** Install or refresh the target mapping for @p pc. */
    void update(Addr pc, Addr target);

    std::string name() const override { return "btb"; }

    /** Invalidate all entries and clear statistics. */
    void reset() override;

    void
    registerStats(StatsRegistry &reg) override
    {
        reg.addCounter("lookups", &lookupCount, "target lookups");
        reg.addCounter("misses", &missCount, "lookups without a hit");
        reg.addRatio("miss_rate", &missCount, &lookupCount,
                     "misses / lookups");
    }

    void
    describeConfig(ConfigWriter &out) const override
    {
        out.putUint("entries", cfg.entries);
        out.putUint("ways", cfg.ways);
    }

    /** Lookups since reset. */
    std::uint64_t lookups() const { return lookupCount; }

    /** Lookup misses since reset. */
    std::uint64_t misses() const { return missCount; }

    /** Miss ratio; 0 when no lookups. */
    double
    missRate() const
    {
        return lookupCount == 0
            ? 0.0
            : static_cast<double>(missCount)
                / static_cast<double>(lookupCount);
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setOf(Addr pc) const;

    BtbConfig cfg;
    std::size_t sets;
    std::vector<Entry> entries;
    std::uint64_t lookupCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t useClock = 0;
};

} // namespace confsim

#endif // CONFSIM_BPRED_BTB_HH
