#include "bpred/mcfarling.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

McFarlingPredictor::McFarlingPredictor(const McFarlingConfig &config)
    : cfg(config), ghr(config.historyBits)
{
    if (!isPowerOfTwo(cfg.gshareEntries)
        || !isPowerOfTwo(cfg.bimodalEntries)
        || !isPowerOfTwo(cfg.metaEntries)) {
        fatal("McFarling table sizes must be powers of two");
    }
    const unsigned mid = (1u << cfg.counterBits) / 2;
    gshareTable.assign(cfg.gshareEntries, SatCounter(cfg.counterBits, mid));
    bimodalTable.assign(cfg.bimodalEntries,
                        SatCounter(cfg.counterBits, mid));
    metaTable.assign(cfg.metaEntries, SatCounter(cfg.counterBits, mid));
}

std::size_t
McFarlingPredictor::gshareIndex(Addr pc, std::uint64_t hist) const
{
    return ((pc >> 2) ^ hist) & (cfg.gshareEntries - 1);
}

std::size_t
McFarlingPredictor::bimodalIndex(Addr pc) const
{
    return (pc >> 2) & (cfg.bimodalEntries - 1);
}

std::size_t
McFarlingPredictor::metaIndex(Addr pc) const
{
    return (pc >> 2) & (cfg.metaEntries - 1);
}

BpInfo
McFarlingPredictor::doPredict(Addr pc)
{
    const std::uint64_t hist = ghr.value();
    const SatCounter &gctr = gshareTable[gshareIndex(pc, hist)];
    const SatCounter &bctr = bimodalTable[bimodalIndex(pc)];
    const SatCounter &meta = metaTable[metaIndex(pc)];

    BpInfo info;
    info.hasComponents = true;
    info.metaChoseGshare = meta.taken();
    info.gshareStrong = gctr.isStrong();
    info.bimodalStrong = bctr.isStrong();
    info.gsharePredTaken = gctr.taken();
    info.bimodalPredTaken = bctr.taken();
    info.globalHistory = hist;
    info.globalHistoryBits = cfg.historyBits;

    const SatCounter &chosen = info.metaChoseGshare ? gctr : bctr;
    info.predTaken = chosen.taken();
    info.counterValue = chosen.read();
    info.counterMax = chosen.max();

    // Speculative shared-history update with the predicted direction.
    ghr.shiftIn(info.predTaken);
    return info;
}

void
McFarlingPredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    SatCounter &gctr = gshareTable[gshareIndex(pc, info.globalHistory)];
    SatCounter &bctr = bimodalTable[bimodalIndex(pc)];
    SatCounter &meta = metaTable[metaIndex(pc)];

    const bool gshare_correct = gctr.taken() == taken;
    const bool bimodal_correct = bctr.taken() == taken;

    // Meta predictor trains toward the component that was right, only
    // when the components disagreed.
    if (gshare_correct != bimodal_correct)
        meta.update(gshare_correct);

    gctr.update(taken);
    bctr.update(taken);

    if (info.predTaken != taken) {
        // Repair the speculative history: drop squashed younger bits.
        ghr.restore((info.globalHistory << 1) | (taken ? 1 : 0));
    }
}

void
McFarlingPredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("gshare_entries", cfg.gshareEntries);
    out.putUint("bimodal_entries", cfg.bimodalEntries);
    out.putUint("meta_entries", cfg.metaEntries);
    out.putUint("history_bits", cfg.historyBits);
    out.putUint("counter_bits", cfg.counterBits);
}

void
McFarlingPredictor::doReset()
{
    const unsigned mid = (1u << cfg.counterBits) / 2;
    for (auto &c : gshareTable)
        c = SatCounter(cfg.counterBits, mid);
    for (auto &c : bimodalTable)
        c = SatCounter(cfg.counterBits, mid);
    for (auto &c : metaTable)
        c = SatCounter(cfg.counterBits, mid);
    ghr.clear();
}

} // namespace confsim
