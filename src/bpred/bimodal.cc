#include "bpred/bimodal.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

BimodalPredictor::BimodalPredictor(const BimodalConfig &config)
    : cfg(config)
{
    if (!isPowerOfTwo(cfg.tableEntries))
        fatal("bimodal table size must be a power of two");
    // Initialise to weakly taken: the customary neutral power-on state.
    table.assign(cfg.tableEntries,
                 SatCounter(cfg.counterBits,
                            (1u << cfg.counterBits) / 2));
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc >> 2) & (cfg.tableEntries - 1);
}

const SatCounter &
BimodalPredictor::counterAt(Addr pc) const
{
    return table[index(pc)];
}

void
BimodalPredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("table_entries", cfg.tableEntries);
    out.putUint("counter_bits", cfg.counterBits);
}

BpInfo
BimodalPredictor::doPredict(Addr pc)
{
    const SatCounter &ctr = table[index(pc)];
    BpInfo info;
    info.predTaken = ctr.taken();
    info.counterValue = ctr.read();
    info.counterMax = ctr.max();
    return info;
}

void
BimodalPredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    (void)info;
    table[index(pc)].update(taken);
}

void
BimodalPredictor::doReset()
{
    for (auto &ctr : table)
        ctr = SatCounter(cfg.counterBits, (1u << cfg.counterBits) / 2);
}

} // namespace confsim
