/**
 * @file
 * Abstract branch-predictor interface.
 *
 * The interface is designed around the needs of the paper's experiments:
 *
 *  - predict() returns a BpInfo that, besides the direction, exposes the
 *    *internal state* the prediction was derived from (counter values,
 *    component strengths, history registers). Confidence estimators such
 *    as the saturating-counters and pattern-history methods read that
 *    state instead of keeping their own tables — exactly the "reuse
 *    existing branch prediction state" idea of the paper.
 *
 *  - Global-history predictors update their history *speculatively* at
 *    predict() time with the predicted direction (as in the paper's
 *    speculative gshare/McFarling) and repair it in update() when the
 *    prediction turns out wrong. SAg updates history non-speculatively
 *    in update() only.
 */

#ifndef CONFSIM_BPRED_BRANCH_PREDICTOR_HH
#define CONFSIM_BPRED_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_object.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"

namespace confsim
{

class EstimatorInputPlugin;

/**
 * A prediction plus the predictor-internal state it was based on.
 * Fields that do not apply to a given predictor keep their defaults.
 */
struct BpInfo
{
    bool predTaken = false;      ///< predicted direction

    /// Direction-counter state backing this prediction (selected
    /// component for McFarling).
    unsigned counterValue = 0;
    unsigned counterMax = 3;

    /// Pre-prediction global history (gshare/McFarling); used for
    /// confidence-table indexing and misprediction repair.
    std::uint64_t globalHistory = 0;
    unsigned globalHistoryBits = 0;

    /// Per-branch (local) history for SAg-style predictors.
    std::uint64_t localHistory = 0;
    unsigned localHistoryBits = 0;

    /// McFarling component state: is each component counter saturated?
    bool bimodalStrong = false;
    bool gshareStrong = false;
    /// Per-component predicted directions (combining predictors).
    bool bimodalPredTaken = false;
    bool gsharePredTaken = false;
    /// Which component the meta-predictor selected (true = gshare).
    bool metaChoseGshare = false;
    /// True for predictors that actually have component state.
    bool hasComponents = false;

    /**
     * Predictor-native confidence level backing this prediction
     * (perceptron |weight-sum| margin, TAGE provider strength/useful
     * packing). Producers clamp the value to their declared
     * EstimatorInputPlugin::levelMax() so decode-time input channels,
     * trace round trips, and live estimates all see the same number.
     * Zero (with hasNativeConf false) for predictors without a native
     * confidence signal.
     */
    std::uint32_t nativeConf = 0;
    bool hasNativeConf = false;
};

/**
 * Interface shared by every direction predictor.
 *
 * The public predict()/update() entry points are non-virtual: they
 * maintain the predictor-level statistics every SimObject reports
 * through the StatsRegistry, then dispatch to the concrete
 * implementation (doPredict/doUpdate). reset() restores the power-on
 * table state *and* zeroes the statistics.
 */
class BranchPredictor : public SimObject
{
  public:
    /** Registry-visible predictor statistics. */
    struct Stats
    {
        std::uint64_t predicts = 0;    ///< predict() calls
        std::uint64_t updates = 0;     ///< resolved branches trained
        std::uint64_t mispredicts = 0; ///< trained with a wrong guess
    };

    /**
     * Predict the direction of the conditional branch at @p pc.
     * Speculative-history predictors shift the predicted direction into
     * their global history as a side effect.
     */
    BpInfo
    predict(Addr pc)
    {
        ++bpStats.predicts;
        return doPredict(pc);
    }

    /**
     * Train the predictor with the resolved outcome of a branch
     * previously predicted via predict().
     *
     * On a misprediction, speculative-history predictors restore their
     * global history from @p info and insert the actual outcome,
     * squashing any younger speculative bits (which belong to wrong-path
     * branches that are being squashed anyway).
     *
     * @param pc branch address.
     * @param taken resolved direction.
     * @param info the BpInfo returned by the corresponding predict().
     */
    void
    update(Addr pc, bool taken, const BpInfo &info)
    {
        ++bpStats.updates;
        if (info.predTaken != taken)
            ++bpStats.mispredicts;
        doUpdate(pc, taken, info);
    }

    /** Restore the power-on state and zero the statistics. */
    void
    reset() final
    {
        bpStats = {};
        doReset();
    }

    void
    registerStats(StatsRegistry &reg) override
    {
        reg.addCounter("predicts", &bpStats.predicts,
                       "direction predictions made");
        reg.addCounter("updates", &bpStats.updates,
                       "resolved branches trained");
        reg.addCounter("mispredicts", &bpStats.mispredicts,
                       "trained branches that were mispredicted");
        reg.addRatio("misprediction_rate", &bpStats.mispredicts,
                     &bpStats.updates,
                     "mispredicts / updates over resolved branches");
    }

    /** Statistics since construction or the last reset(). */
    const Stats &stats() const { return bpStats; }

    /**
     * The decode-time estimator-input channels this predictor
     * contributes to a DecodedTrace (see bpred/estimator_input.hh).
     * The base implementation returns the classic set shared by every
     * predictor (saturating-counter strength bits, pattern-history
     * confidence, JRS hash key); predictors with a native confidence
     * signal append their own channel.
     */
    virtual std::vector<std::unique_ptr<EstimatorInputPlugin>>
    estimatorInputPlugins() const;

  protected:
    /** Concrete prediction (see predict()). */
    virtual BpInfo doPredict(Addr pc) = 0;

    /** Concrete training (see update()). */
    virtual void doUpdate(Addr pc, bool taken, const BpInfo &info) = 0;

    /** Concrete power-on reset of tables and histories. */
    virtual void doReset() = 0;

  private:
    Stats bpStats;
};

/** Identifier of a concrete predictor family. */
enum class PredictorKind
{
    Bimodal,
    Gshare,
    McFarling,
    SAg,
    Gselect, ///< concatenated index (McFarling TN-36 baseline)
    GAg,     ///< history-only index (degenerate gselect)
    PAs,     ///< tagged per-address two-level (Yeh & Patt)
    Perceptron, ///< hashed perceptron (folded multi-length histories)
    Tage,       ///< TAGE-style tagged multi-table predictor
};

/** @return human-readable name of a predictor kind. */
const char *predictorKindName(PredictorKind kind);

/** Every registered predictor kind, in declaration order. */
const std::vector<PredictorKind> &allPredictorKinds();

/** Space-separated list of every registered predictor name, for
 *  unknown-predictor error messages and CLI help. */
const std::string &predictorKindNameList();

/**
 * Inverse of predictorKindName (also accepts the CLI spellings).
 * @param name predictor name, e.g. "gshare".
 * @param kind receives the parsed kind on success.
 * @return false for unknown names.
 */
bool predictorKindFromName(const std::string &name, PredictorKind &kind);

/**
 * Construct one of the paper's predictor configurations.
 * @param kind which predictor family.
 * @return freshly constructed predictor with paper-default geometry
 *         (gshare: 4096 counters / 12-bit history; McFarling: 4096-entry
 *         components; SAg: 2048-entry BHT, 13-bit histories, 8192 PHT).
 */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind);

} // namespace confsim

#endif // CONFSIM_BPRED_BRANCH_PREDICTOR_HH
