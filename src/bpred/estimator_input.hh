/**
 * @file
 * Estimator-input plugins: per-predictor decode-time derivation of the
 * inputs the batched sweep kernels consume.
 *
 * A DecodedTrace pre-computes, per branch, every confidence input that
 * is a pure function of the recorded BpInfo — so the sweep kernels
 * read one flat word per branch instead of the whole BpInfo record.
 * Historically those inputs were hard-coded in the decoder: bits
 * scavenged from the per-branch flag byte plus one ad-hoc u64 column
 * for the JRS hash key. That shape cannot express predictor-native
 * confidence signals (perceptron margins, TAGE provider state), which
 * is why the derivation now lives behind this interface.
 *
 * Each BranchPredictor contributes a *set* of plugins (see
 * BranchPredictor::estimatorInputPlugins()); buildDecodedTrace()
 * evaluates every plugin once per record into a named, typed SoA
 * column (an InputChannel), and BatchReplayer lanes bind to channels
 * by name with the loop specialized per channel width. Every
 * derivation must be a pure function of (pc, BpInfo) — that is what
 * makes the precomputation bit-identical to evaluating the estimator
 * live at each fetch.
 */

#ifndef CONFSIM_BPRED_ESTIMATOR_INPUT_HH
#define CONFSIM_BPRED_ESTIMATOR_INPUT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/types.hh"

namespace confsim
{

/** Storage width of one estimator-input channel. */
enum class InputWidth
{
    U8,
    U16,
    U32,
    U64,
};

/** @return human-readable width name ("u8", ...). */
const char *inputWidthName(InputWidth width);

/// @name Channel names of the standard plugins
/// @{
inline constexpr const char *CHANNEL_SAT_BITS = "sat-bits";
inline constexpr const char *CHANNEL_PATTERN_CONF = "pattern-conf";
inline constexpr const char *CHANNEL_JRS_KEY = "jrs-key";
inline constexpr const char *CHANNEL_PERC_MARGIN = "perc-margin";
inline constexpr const char *CHANNEL_TAGE_CONF = "tage-conf";
/// @}

/// @name Bit layout of the CHANNEL_SAT_BITS word
/// One bit per SatCountersVariant, mirroring
/// SatCountersEstimator::doEstimate() exactly.
/// @{
inline constexpr std::uint8_t SAT_BIT_SELECTED = 1u << 0;
inline constexpr std::uint8_t SAT_BIT_BOTH = 1u << 1;
inline constexpr std::uint8_t SAT_BIT_EITHER = 1u << 2;
/// @}

/**
 * Core pattern-history confidence classifier (Lick et al.): true when
 * the low @p bits bits of @p history form one of the empirically
 * confident patterns (all taken, all not-taken, exactly one dissenting
 * bit, or strictly alternating). PatternEstimator delegates here; the
 * definition lives in bpred so decode-time plugins can use it without
 * a bpred → confidence link cycle.
 */
bool confidentHistoryPattern(std::uint64_t history, unsigned bits);

/**
 * One decode-time input derivation. Implementations must be stateless
 * pure functions of (pc, BpInfo): derive() is called once per recorded
 * branch at decode time, and the resulting column must equal what the
 * corresponding live estimator would observe at every fetch.
 */
class EstimatorInputPlugin
{
  public:
    virtual ~EstimatorInputPlugin() = default;

    /** Channel name the derived column is registered under. */
    virtual std::string channel() const = 0;

    /** Storage width of the derived column. */
    virtual InputWidth width() const = 0;

    /**
     * Largest value derive() can produce. Sizes the LevelSweep
     * histogram of threshold-sweeping lanes bound to this channel;
     * values are clamped here at column-fill time.
     */
    virtual unsigned levelMax() const = 0;

    /** The per-branch input word (pure function of its arguments). */
    virtual std::uint64_t derive(Addr pc, const BpInfo &info) const = 0;
};

/** The plugin set one predictor contributes. */
using EstimatorInputPluginSet =
    std::vector<std::unique_ptr<EstimatorInputPlugin>>;

/**
 * Saturating-counter strength bits (CHANNEL_SAT_BITS, u8): the three
 * SatCountersVariant estimates packed as SAT_BIT_* flags.
 */
class SatBitsInputPlugin final : public EstimatorInputPlugin
{
  public:
    std::string channel() const override { return CHANNEL_SAT_BITS; }
    InputWidth width() const override { return InputWidth::U8; }
    unsigned levelMax() const override { return 7; }
    std::uint64_t derive(Addr pc, const BpInfo &info) const override;
};

/**
 * Pattern-history confidence (CHANNEL_PATTERN_CONF, u8): 1 when the
 * branch's history matches PatternEstimator's confident set.
 */
class PatternConfInputPlugin final : public EstimatorInputPlugin
{
  public:
    std::string
    channel() const override
    {
        return CHANNEL_PATTERN_CONF;
    }
    InputWidth width() const override { return InputWidth::U8; }
    unsigned levelMax() const override { return 1; }
    std::uint64_t derive(Addr pc, const BpInfo &info) const override;
};

/**
 * JRS hash base (CHANNEL_JRS_KEY, u64): (pc >> 2) ^ history with the
 * same global-else-local history selection as JrsEstimator. Every JRS
 * table geometry derives its index from this one value (enhanced
 * variants append the predicted direction, then mask).
 */
class JrsKeyInputPlugin final : public EstimatorInputPlugin
{
  public:
    std::string channel() const override { return CHANNEL_JRS_KEY; }
    InputWidth width() const override { return InputWidth::U64; }
    unsigned levelMax() const override { return 0; }
    std::uint64_t derive(Addr pc, const BpInfo &info) const override;
};

/**
 * Predictor-native confidence level (u16): the recorded
 * BpInfo::nativeConf, already clamped by the producing predictor to
 * its declared levelMax. Instantiated per native channel
 * (CHANNEL_PERC_MARGIN, CHANNEL_TAGE_CONF).
 */
class NativeConfInputPlugin final : public EstimatorInputPlugin
{
  public:
    /**
     * @param channel_name channel to register the column under.
     * @param level_max largest level the producing predictor emits.
     */
    NativeConfInputPlugin(std::string channel_name, unsigned level_max)
        : chan(std::move(channel_name)), maxLevel(level_max)
    {
    }

    std::string channel() const override { return chan; }
    InputWidth width() const override { return InputWidth::U16; }
    unsigned levelMax() const override { return maxLevel; }

    std::uint64_t
    derive(Addr, const BpInfo &info) const override
    {
        return info.nativeConf;
    }

  private:
    std::string chan;
    unsigned maxLevel;
};

/**
 * The classic plugin set every predictor shares: sat-bits,
 * pattern-conf, and jrs-key. This is exactly the derivation the
 * decoder used to hard-code, so traces decoded with it are
 * bit-identical to the pre-plugin pipeline.
 */
EstimatorInputPluginSet classicEstimatorInputPlugins();

} // namespace confsim

#endif // CONFSIM_BPRED_ESTIMATOR_INPUT_HH
