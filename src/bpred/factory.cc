#include "bpred/branch_predictor.hh"

#include "bpred/bimodal.hh"
#include "bpred/gselect.hh"
#include "bpred/gshare.hh"
#include "bpred/mcfarling.hh"
#include "bpred/pas.hh"
#include "bpred/sag.hh"
#include "common/logging.hh"

namespace confsim
{

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::Gshare: return "gshare";
      case PredictorKind::McFarling: return "mcfarling";
      case PredictorKind::SAg: return "sag";
      case PredictorKind::Gselect: return "gselect";
      case PredictorKind::GAg: return "gag";
      case PredictorKind::PAs: return "pas";
    }
    return "???";
}

bool
predictorKindFromName(const std::string &name, PredictorKind &kind)
{
    if (name == "bimodal")
        kind = PredictorKind::Bimodal;
    else if (name == "gshare")
        kind = PredictorKind::Gshare;
    else if (name == "mcfarling")
        kind = PredictorKind::McFarling;
    else if (name == "sag")
        kind = PredictorKind::SAg;
    else if (name == "gselect")
        kind = PredictorKind::Gselect;
    else if (name == "gag")
        kind = PredictorKind::GAg;
    else if (name == "pas")
        kind = PredictorKind::PAs;
    else
        return false;
    return true;
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>();
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>();
      case PredictorKind::McFarling:
        return std::make_unique<McFarlingPredictor>();
      case PredictorKind::SAg:
        return std::make_unique<SAgPredictor>();
      case PredictorKind::Gselect:
        return std::make_unique<GselectPredictor>();
      case PredictorKind::GAg:
        {
            GselectConfig cfg;
            cfg.addrBits = 0;
            cfg.historyBits = 12;
            return std::make_unique<GselectPredictor>(cfg);
        }
      case PredictorKind::PAs:
        return std::make_unique<PAsPredictor>();
    }
    panic("unknown predictor kind");
}

} // namespace confsim
