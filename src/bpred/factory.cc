#include "bpred/branch_predictor.hh"

#include "bpred/bimodal.hh"
#include "bpred/gselect.hh"
#include "bpred/gshare.hh"
#include "bpred/mcfarling.hh"
#include "bpred/pas.hh"
#include "bpred/perceptron.hh"
#include "bpred/sag.hh"
#include "bpred/tage.hh"
#include "common/logging.hh"

namespace confsim
{

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::Gshare: return "gshare";
      case PredictorKind::McFarling: return "mcfarling";
      case PredictorKind::SAg: return "sag";
      case PredictorKind::Gselect: return "gselect";
      case PredictorKind::GAg: return "gag";
      case PredictorKind::PAs: return "pas";
      case PredictorKind::Perceptron: return "perceptron";
      case PredictorKind::Tage: return "tage";
    }
    return "???";
}

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Bimodal,   PredictorKind::Gshare,
        PredictorKind::McFarling, PredictorKind::SAg,
        PredictorKind::Gselect,   PredictorKind::GAg,
        PredictorKind::PAs,       PredictorKind::Perceptron,
        PredictorKind::Tage,
    };
    return kinds;
}

const std::string &
predictorKindNameList()
{
    static const std::string names = [] {
        std::string list;
        for (PredictorKind kind : allPredictorKinds()) {
            if (!list.empty())
                list += ' ';
            list += predictorKindName(kind);
        }
        return list;
    }();
    return names;
}

bool
predictorKindFromName(const std::string &name, PredictorKind &kind)
{
    for (PredictorKind candidate : allPredictorKinds()) {
        if (name == predictorKindName(candidate)) {
            kind = candidate;
            return true;
        }
    }
    return false;
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>();
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>();
      case PredictorKind::McFarling:
        return std::make_unique<McFarlingPredictor>();
      case PredictorKind::SAg:
        return std::make_unique<SAgPredictor>();
      case PredictorKind::Gselect:
        return std::make_unique<GselectPredictor>();
      case PredictorKind::GAg:
        {
            GselectConfig cfg;
            cfg.addrBits = 0;
            cfg.historyBits = 12;
            return std::make_unique<GselectPredictor>(cfg);
        }
      case PredictorKind::PAs:
        return std::make_unique<PAsPredictor>();
      case PredictorKind::Perceptron:
        return std::make_unique<PerceptronPredictor>();
      case PredictorKind::Tage:
        return std::make_unique<TagePredictor>();
    }
    panic("unknown predictor kind");
}

} // namespace confsim
