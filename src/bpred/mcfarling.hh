/**
 * @file
 * McFarling combining predictor (DEC WRL TN-36, 1993): a gshare
 * component and a PC-indexed bimodal component, arbitrated by a meta
 * predictor of 2-bit counters. The global history is shared and updated
 * speculatively, as in the paper's "speculative McFarling".
 */

#ifndef CONFSIM_BPRED_MCFARLING_HH
#define CONFSIM_BPRED_MCFARLING_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/history_register.hh"
#include "common/sat_counter.hh"

namespace confsim
{

/** Configuration for McFarlingPredictor. */
struct McFarlingConfig
{
    std::size_t gshareEntries = 4096;  ///< gshare counter count
    std::size_t bimodalEntries = 4096; ///< bimodal counter count
    std::size_t metaEntries = 4096;    ///< meta counter count
    unsigned historyBits = 12;         ///< shared global history bits
    unsigned counterBits = 2;          ///< width of all counters

    bool operator==(const McFarlingConfig &) const = default;
};

/**
 * Combining predictor exposing component saturation state so the
 * "Both Strong" / "Either Strong" confidence estimators can read it.
 */
class McFarlingPredictor : public BranchPredictor
{
  public:
    /** @param config component geometry. */
    explicit McFarlingPredictor(const McFarlingConfig &config = {});

    std::string name() const override { return "mcfarling"; }
    void describeConfig(ConfigWriter &out) const override;

    /** Current (speculative) global history value. */
    std::uint64_t history() const { return ghr.value(); }

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t gshareIndex(Addr pc, std::uint64_t hist) const;
    std::size_t bimodalIndex(Addr pc) const;
    std::size_t metaIndex(Addr pc) const;

    McFarlingConfig cfg;
    std::vector<SatCounter> gshareTable;
    std::vector<SatCounter> bimodalTable;
    std::vector<SatCounter> metaTable;
    HistoryRegister ghr;
};

} // namespace confsim

#endif // CONFSIM_BPRED_MCFARLING_HH
