#include "bpred/perceptron.hh"

#include <algorithm>
#include <string>

#include "bpred/estimator_input.hh"
#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

PerceptronPredictor::PerceptronPredictor(const PerceptronConfig &config)
    : cfg(config),
      indexBits(floorLog2(config.tableEntries)),
      weightMax(0),
      ghr(63)
{
    if (!isPowerOfTwo(cfg.tableEntries))
        fatal("perceptron table size must be a power of two");
    if (cfg.weightBits < 2 || cfg.weightBits > 8)
        fatal("perceptron weight width must be in [2, 8]");
    if (cfg.historyLengths.empty())
        fatal("perceptron needs at least one history length");
    unsigned prev = 0;
    for (unsigned len : cfg.historyLengths) {
        if (len == 0 || len > 63)
            fatal("perceptron history lengths must be in [1, 63]");
        if (len <= prev)
            fatal("perceptron history lengths must be ascending");
        prev = len;
    }
    if (cfg.theta < 0)
        fatal("perceptron theta must be non-negative");

    weightMax =
        static_cast<std::int16_t>((1 << (cfg.weightBits - 1)) - 1);
    tables.assign(cfg.historyLengths.size(),
                  std::vector<std::int16_t>(cfg.tableEntries, 0));
    bias.assign(cfg.tableEntries, 0);
}

void
PerceptronPredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("table_entries", cfg.tableEntries);
    out.putUint("weight_bits", cfg.weightBits);
    std::string lengths;
    for (unsigned len : cfg.historyLengths) {
        if (!lengths.empty())
            lengths += ',';
        lengths += std::to_string(len);
    }
    out.putString("history_lengths", lengths);
    out.putInt("theta", cfg.theta);
    out.putBool("speculative_history", cfg.speculativeHistory);
}

std::vector<std::unique_ptr<EstimatorInputPlugin>>
PerceptronPredictor::estimatorInputPlugins() const
{
    auto set = classicEstimatorInputPlugins();
    set.push_back(std::make_unique<NativeConfInputPlugin>(
        CHANNEL_PERC_MARGIN, PERC_CONF_LEVEL_MAX));
    return set;
}

std::uint64_t
PerceptronPredictor::foldHistory(std::uint64_t hist, unsigned len) const
{
    std::uint64_t h = hist & lowBitMask(std::min(len, 63u));
    std::uint64_t folded = 0;
    while (h != 0) {
        folded ^= h & lowBitMask(indexBits);
        h >>= indexBits;
    }
    return folded;
}

std::size_t
PerceptronPredictor::tableIndex(Addr pc, std::uint64_t hist,
                                unsigned len) const
{
    return ((pc >> 2) ^ foldHistory(hist, len))
        & (cfg.tableEntries - 1);
}

std::size_t
PerceptronPredictor::biasIndex(Addr pc) const
{
    return (pc >> 2) & (cfg.tableEntries - 1);
}

int
PerceptronPredictor::weightSum(Addr pc, std::uint64_t hist) const
{
    int sum = bias[biasIndex(pc)];
    for (std::size_t t = 0; t < tables.size(); ++t)
        sum += tables[t][tableIndex(pc, hist, cfg.historyLengths[t])];
    return sum;
}

BpInfo
PerceptronPredictor::doPredict(Addr pc)
{
    const std::uint64_t hist = ghr.value();
    const int sum = weightSum(pc, hist);
    const bool taken = sum >= 0;
    const unsigned margin =
        static_cast<unsigned>(sum < 0 ? -sum : sum);

    BpInfo info;
    info.predTaken = taken;
    info.globalHistory = hist;
    info.globalHistoryBits = 63;
    info.nativeConf =
        std::min(margin, unsigned{PERC_CONF_LEVEL_MAX});
    info.hasNativeConf = true;
    // Pseudo 2-bit counter view for the sat-counter estimators:
    // margin above theta reads as the saturated (strong) state.
    const bool strong = margin > static_cast<unsigned>(cfg.theta);
    info.counterMax = 3;
    info.counterValue = taken ? (strong ? 3u : 2u)
                              : (strong ? 0u : 1u);

    if (cfg.speculativeHistory)
        ghr.shiftIn(taken);
    return info;
}

void
PerceptronPredictor::train(std::int16_t &w, bool taken) const
{
    if (taken) {
        if (w < weightMax)
            ++w;
    } else {
        if (w > static_cast<std::int16_t>(-weightMax - 1))
            --w;
    }
}

void
PerceptronPredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    // Standard perceptron rule: train on a misprediction or whenever
    // the predict-time margin (recorded in nativeConf) is within
    // theta. Using the recorded margin keeps update() a pure function
    // of (pc, taken, info), like every other predictor here.
    const bool mispredicted = info.predTaken != taken;
    if (mispredicted
        || info.nativeConf <= static_cast<unsigned>(cfg.theta)) {
        train(bias[biasIndex(pc)], taken);
        for (std::size_t t = 0; t < tables.size(); ++t) {
            train(tables[t][tableIndex(pc, info.globalHistory,
                                       cfg.historyLengths[t])],
                  taken);
        }
    }

    if (!cfg.speculativeHistory) {
        ghr.shiftIn(taken);
    } else if (mispredicted) {
        // Squash younger speculative bits: rebuild the history as
        // (pre-branch history, actual outcome).
        ghr.restore((info.globalHistory << 1) | (taken ? 1 : 0));
    }
}

void
PerceptronPredictor::doReset()
{
    for (auto &table : tables)
        std::fill(table.begin(), table.end(), std::int16_t{0});
    std::fill(bias.begin(), bias.end(), std::int16_t{0});
    ghr.clear();
}

} // namespace confsim
