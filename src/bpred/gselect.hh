/**
 * @file
 * gselect predictor (McFarling 1993): concatenate low branch-address
 * bits with global-history bits to index the counter table — the
 * classic alternative to gshare's xor that McFarling's TN-36 compares
 * against. Also provides GAg (history-only indexing) as the
 * degenerate addrBits = 0 case.
 */

#ifndef CONFSIM_BPRED_GSELECT_HH
#define CONFSIM_BPRED_GSELECT_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/history_register.hh"
#include "common/sat_counter.hh"

namespace confsim
{

/** Configuration for GselectPredictor. */
struct GselectConfig
{
    unsigned addrBits = 6;    ///< low PC bits in the index
    unsigned historyBits = 6; ///< global-history bits in the index
    unsigned counterBits = 2; ///< counter width
    /** Speculative history update with repair (as gshare). */
    bool speculativeHistory = true;

    bool operator==(const GselectConfig &) const = default;
};

/**
 * Concatenation-indexed two-level predictor. The table has
 * 2^(addrBits + historyBits) counters.
 */
class GselectPredictor : public BranchPredictor
{
  public:
    /** @param config index split; addrBits + historyBits <= 24. */
    explicit GselectPredictor(const GselectConfig &config = {});

    std::string name() const override;
    void describeConfig(ConfigWriter &out) const override;

    /** Current (possibly speculative) global history. */
    std::uint64_t history() const { return ghr.value(); }

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t index(Addr pc, std::uint64_t hist) const;

    GselectConfig cfg;
    std::vector<SatCounter> table;
    HistoryRegister ghr;
};

} // namespace confsim

#endif // CONFSIM_BPRED_GSELECT_HH
