#include "bpred/btb.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

Btb::Btb(const BtbConfig &config)
    : cfg(config)
{
    if (cfg.ways == 0)
        fatal("BTB associativity must be nonzero");
    if (cfg.entries % cfg.ways != 0)
        fatal("BTB entries must be divisible by ways");
    sets = cfg.entries / cfg.ways;
    if (!isPowerOfTwo(sets))
        fatal("BTB set count must be a power of two");
    entries.assign(cfg.entries, Entry{});
}

std::size_t
Btb::setOf(Addr pc) const
{
    return (pc >> 2) & (sets - 1);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++lookupCount;
    ++useClock;
    Entry *base = &entries[setOf(pc) * cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == pc) {
            e.lastUse = useClock;
            return e.target;
        }
    }
    ++missCount;
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    ++useClock;
    Entry *base = &entries[setOf(pc) * cfg.ways];
    Entry *victim = base;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lastUse = useClock;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = useClock;
}

void
Btb::reset()
{
    for (auto &e : entries)
        e = Entry{};
    lookupCount = 0;
    missCount = 0;
    useClock = 0;
}

} // namespace confsim
