#include "bpred/pas.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

PAsPredictor::PAsPredictor(const PAsConfig &config)
    : cfg(config)
{
    if (cfg.ways == 0)
        fatal("PAs associativity must be nonzero");
    if (cfg.historyEntries % cfg.ways != 0)
        fatal("PAs history entries must be divisible by ways");
    sets = cfg.historyEntries / cfg.ways;
    if (!isPowerOfTwo(sets) || !isPowerOfTwo(cfg.phtEntries))
        fatal("PAs table sizes must be powers of two");
    if (cfg.historyBits == 0 || cfg.historyBits > 63)
        fatal("PAs history length must be in [1, 63]");
    historyMask = lowBitMask(cfg.historyBits);
    entries.assign(cfg.historyEntries, Entry{});
    pht.assign(cfg.phtEntries,
               SatCounter(cfg.counterBits, (1u << cfg.counterBits) / 2));
}

std::size_t
PAsPredictor::setOf(Addr pc) const
{
    return (pc >> 2) & (sets - 1);
}

PAsPredictor::Entry *
PAsPredictor::find(Addr pc)
{
    Entry *base = &entries[setOf(pc) * cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w)
        if (base[w].valid && base[w].tag == pc)
            return &base[w];
    return nullptr;
}

const PAsPredictor::Entry *
PAsPredictor::find(Addr pc) const
{
    const Entry *base = &entries[setOf(pc) * cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w)
        if (base[w].valid && base[w].tag == pc)
            return &base[w];
    return nullptr;
}

PAsPredictor::Entry &
PAsPredictor::findOrAllocate(Addr pc)
{
    if (Entry *hit = find(pc)) {
        hit->lastUse = ++useClock;
        return *hit;
    }
    Entry *base = &entries[setOf(pc) * cfg.ways];
    Entry *victim = base;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->history = 0;
    victim->lastUse = ++useClock;
    return *victim;
}

std::size_t
PAsPredictor::phtIndex(std::uint64_t history) const
{
    return history & (cfg.phtEntries - 1);
}

bool
PAsPredictor::tracks(Addr pc) const
{
    return find(pc) != nullptr;
}

BpInfo
PAsPredictor::doPredict(Addr pc)
{
    const Entry *entry = find(pc);
    const std::uint64_t history = entry ? entry->history : 0;
    const SatCounter &ctr = pht[phtIndex(history)];

    BpInfo info;
    info.predTaken = ctr.taken();
    info.counterValue = ctr.read();
    info.counterMax = ctr.max();
    info.localHistory = history;
    info.localHistoryBits = cfg.historyBits;
    return info;
}

void
PAsPredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    pht[phtIndex(info.localHistory)].update(taken);
    Entry &entry = findOrAllocate(pc);
    entry.history =
        ((entry.history << 1) | (taken ? 1 : 0)) & historyMask;
}

void
PAsPredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("history_entries", cfg.historyEntries);
    out.putUint("ways", cfg.ways);
    out.putUint("history_bits", cfg.historyBits);
    out.putUint("pht_entries", cfg.phtEntries);
    out.putUint("counter_bits", cfg.counterBits);
}

void
PAsPredictor::doReset()
{
    for (auto &e : entries)
        e = Entry{};
    for (auto &ctr : pht)
        ctr = SatCounter(cfg.counterBits, (1u << cfg.counterBits) / 2);
    useClock = 0;
}

} // namespace confsim
