#include "bpred/gshare.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

GsharePredictor::GsharePredictor(const GshareConfig &config)
    : cfg(config), ghr(config.historyBits)
{
    if (!isPowerOfTwo(cfg.tableEntries))
        fatal("gshare table size must be a power of two");
    table.assign(cfg.tableEntries,
                 SatCounter(cfg.counterBits,
                            (1u << cfg.counterBits) / 2));
}

std::size_t
GsharePredictor::index(Addr pc, std::uint64_t hist) const
{
    return ((pc >> 2) ^ hist) & (cfg.tableEntries - 1);
}

void
GsharePredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("table_entries", cfg.tableEntries);
    out.putUint("history_bits", cfg.historyBits);
    out.putUint("counter_bits", cfg.counterBits);
    out.putBool("speculative_history", cfg.speculativeHistory);
}

BpInfo
GsharePredictor::doPredict(Addr pc)
{
    BpInfo info = predictWithHistory(pc, ghr.value());
    // Speculative history update: shift in the *predicted* direction.
    if (cfg.speculativeHistory)
        ghr.shiftIn(info.predTaken);
    return info;
}

BpInfo
GsharePredictor::predictWithHistory(Addr pc, std::uint64_t hist) const
{
    const SatCounter &ctr = table[index(pc, hist)];
    BpInfo info;
    info.predTaken = ctr.taken();
    info.counterValue = ctr.read();
    info.counterMax = ctr.max();
    info.globalHistory = hist;
    info.globalHistoryBits = cfg.historyBits;
    return info;
}

void
GsharePredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    updateWithHistory(pc, info.globalHistory, taken);
    if (!cfg.speculativeHistory) {
        // Non-speculative mode: history advances only at resolution.
        ghr.shiftIn(taken);
    } else if (info.predTaken != taken) {
        // Misprediction: younger speculative history bits belong to
        // squashed wrong-path branches. Rebuild the history as
        // (pre-branch history, actual outcome).
        ghr.restore((info.globalHistory << 1) | (taken ? 1 : 0));
    }
}

void
GsharePredictor::updateWithHistory(Addr pc, std::uint64_t hist, bool taken)
{
    table[index(pc, hist)].update(taken);
}

void
GsharePredictor::doReset()
{
    for (auto &ctr : table)
        ctr = SatCounter(cfg.counterBits, (1u << cfg.counterBits) / 2);
    ghr.clear();
}

} // namespace confsim
