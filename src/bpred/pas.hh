/**
 * @file
 * PAs two-level predictor (Yeh & Patt): per-address branch histories
 * kept in a *tagged*, BTB-like structure, feeding a shared pattern
 * table. The paper contrasts this with SAg: "The SAg model is similar
 * to the PAs, which is usually implemented with a branch target
 * buffer, but the SAg is 'tagless' and may alias branch histories."
 * PAs trades capacity misses (untracked branches fall back to an
 * empty history) for alias-free histories.
 *
 * Like SAg, history is updated non-speculatively at resolution.
 */

#ifndef CONFSIM_BPRED_PAS_HH
#define CONFSIM_BPRED_PAS_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace confsim
{

/** Configuration for PAsPredictor. */
struct PAsConfig
{
    std::size_t historyEntries = 2048; ///< tagged history slots
    unsigned ways = 4;                 ///< associativity
    unsigned historyBits = 13;         ///< per-branch history length
    std::size_t phtEntries = 8192;     ///< shared pattern counters
    unsigned counterBits = 2;          ///< counter width

    bool operator==(const PAsConfig &) const = default;
};

/**
 * Tagged per-address two-level predictor.
 */
class PAsPredictor : public BranchPredictor
{
  public:
    /** @param config table geometry. */
    explicit PAsPredictor(const PAsConfig &config = {});

    std::string name() const override { return "pas"; }
    void describeConfig(ConfigWriter &out) const override;

    /** True when the branch at @p pc currently holds a history slot. */
    bool tracks(Addr pc) const;

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    struct Entry
    {
        Addr tag = 0;
        std::uint64_t history = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setOf(Addr pc) const;
    Entry *find(Addr pc);
    const Entry *find(Addr pc) const;
    Entry &findOrAllocate(Addr pc);
    std::size_t phtIndex(std::uint64_t history) const;

    PAsConfig cfg;
    std::size_t sets;
    std::uint64_t historyMask;
    std::vector<Entry> entries;
    std::vector<SatCounter> pht;
    std::uint64_t useClock = 0;
};

} // namespace confsim

#endif // CONFSIM_BPRED_PAS_HH
