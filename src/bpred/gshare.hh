/**
 * @file
 * gshare predictor (McFarling 1993): a table of 2-bit counters indexed
 * by the xor of the branch address and the global history register.
 * History is updated *speculatively* with the predicted direction and
 * repaired on misprediction, matching the paper's "speculative gshare".
 */

#ifndef CONFSIM_BPRED_GSHARE_HH
#define CONFSIM_BPRED_GSHARE_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/history_register.hh"
#include "common/sat_counter.hh"

namespace confsim
{

/** Configuration for GsharePredictor. */
struct GshareConfig
{
    std::size_t tableEntries = 4096; ///< power-of-two counter count
    unsigned historyBits = 12;       ///< global history length
    unsigned counterBits = 2;        ///< counter width
    /** Shift the *predicted* outcome into the history at predict()
     *  (repaired on misprediction); false = update history only at
     *  resolution with the actual outcome (the ablation of §3.1). */
    bool speculativeHistory = true;

    bool operator==(const GshareConfig &) const = default;
};

/**
 * Global-history xor-indexed predictor with speculative history update.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    /** @param config table/history geometry. */
    explicit GsharePredictor(const GshareConfig &config = {});

    std::string name() const override { return "gshare"; }
    void describeConfig(ConfigWriter &out) const override;

    /** Current (speculative) global history value. */
    std::uint64_t history() const { return ghr.value(); }

    /**
     * Component-mode prediction for the combining predictor: compute the
     * prediction without touching the history register (the combiner
     * owns a shared history).
     */
    BpInfo predictWithHistory(Addr pc, std::uint64_t hist) const;

    /** Component-mode update with an explicit history value. */
    void updateWithHistory(Addr pc, std::uint64_t hist, bool taken);

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t index(Addr pc, std::uint64_t hist) const;

    GshareConfig cfg;
    std::vector<SatCounter> table;
    HistoryRegister ghr;
};

} // namespace confsim

#endif // CONFSIM_BPRED_GSHARE_HH
