/**
 * @file
 * SAg two-level predictor (Yeh & Patt): a tagless per-branch history
 * table (BHT) feeding a single global pattern history table (PHT) of
 * 2-bit counters. As in the paper, the SAg history is updated
 * *non-speculatively* — only in update(), with the resolved outcome —
 * because rolling back per-branch histories on a squash is impractical
 * in hardware.
 */

#ifndef CONFSIM_BPRED_SAG_HH
#define CONFSIM_BPRED_SAG_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/history_register.hh"
#include "common/sat_counter.hh"

namespace confsim
{

/** Configuration for SAgPredictor (paper defaults). */
struct SAgConfig
{
    std::size_t bhtEntries = 2048; ///< per-branch history registers
    unsigned historyBits = 13;     ///< length of each history register
    std::size_t phtEntries = 8192; ///< pattern-table counters
    unsigned counterBits = 2;      ///< counter width

    bool operator==(const SAgConfig &) const = default;
};

/**
 * Tagless two-level per-address predictor. The BpInfo carries the local
 * history pattern so the pattern-history confidence estimator (Lick et
 * al.) can classify it.
 */
class SAgPredictor : public BranchPredictor
{
  public:
    /** @param config table geometry. */
    explicit SAgPredictor(const SAgConfig &config = {});

    std::string name() const override { return "sag"; }
    void describeConfig(ConfigWriter &out) const override;

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t bhtIndex(Addr pc) const;
    std::size_t phtIndex(std::uint64_t hist) const;

    SAgConfig cfg;
    std::vector<HistoryRegister> bht;
    std::vector<SatCounter> pht;
};

} // namespace confsim

#endif // CONFSIM_BPRED_SAG_HH
