#include "bpred/tage.hh"

#include <algorithm>
#include <string>

#include "bpred/estimator_input.hh"
#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

TagePredictor::TagePredictor(const TageConfig &config)
    : cfg(config),
      indexBits(floorLog2(config.taggedEntries)),
      ghr(63)
{
    if (!isPowerOfTwo(cfg.baseEntries))
        fatal("tage base table size must be a power of two");
    if (!isPowerOfTwo(cfg.taggedEntries))
        fatal("tage tagged table size must be a power of two");
    if (cfg.tagBits == 0 || cfg.tagBits > 16)
        fatal("tage tag width must be in [1, 16]");
    if (cfg.counterBits < 2 || cfg.counterBits > 8)
        fatal("tage counter width must be in [2, 8]");
    if (cfg.usefulBits == 0 || cfg.usefulBits > 8)
        fatal("tage useful width must be in [1, 8]");
    if (cfg.historyLengths.empty())
        fatal("tage needs at least one tagged table");
    unsigned prev = 0;
    for (unsigned len : cfg.historyLengths) {
        if (len == 0 || len > 63)
            fatal("tage history lengths must be in [1, 63]");
        if (len <= prev)
            fatal("tage history lengths must be ascending");
        prev = len;
    }

    base.assign(cfg.baseEntries, SatCounter(2, 2));
    tagged.assign(cfg.historyLengths.size(),
                  std::vector<TaggedEntry>(cfg.taggedEntries));
}

void
TagePredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("base_entries", cfg.baseEntries);
    out.putUint("tagged_entries", cfg.taggedEntries);
    out.putUint("tag_bits", cfg.tagBits);
    out.putUint("counter_bits", cfg.counterBits);
    out.putUint("useful_bits", cfg.usefulBits);
    std::string lengths;
    for (unsigned len : cfg.historyLengths) {
        if (!lengths.empty())
            lengths += ',';
        lengths += std::to_string(len);
    }
    out.putString("history_lengths", lengths);
    out.putUint("useful_aging_period", cfg.usefulAgingPeriod);
    out.putBool("speculative_history", cfg.speculativeHistory);
}

std::vector<std::unique_ptr<EstimatorInputPlugin>>
TagePredictor::estimatorInputPlugins() const
{
    auto set = classicEstimatorInputPlugins();
    set.push_back(std::make_unique<NativeConfInputPlugin>(
        CHANNEL_TAGE_CONF, TAGE_CONF_LEVEL_MAX));
    return set;
}

std::uint64_t
TagePredictor::foldHistory(std::uint64_t hist, unsigned len,
                           unsigned bits) const
{
    if (bits == 0)
        return 0;
    std::uint64_t h = hist & lowBitMask(std::min(len, 63u));
    std::uint64_t folded = 0;
    while (h != 0) {
        folded ^= h & lowBitMask(bits);
        h >>= bits;
    }
    return folded;
}

std::size_t
TagePredictor::tableIndex(Addr pc, std::uint64_t hist,
                          unsigned len) const
{
    const std::uint64_t mixed = (pc >> 2) ^ (pc >> (2 + indexBits))
        ^ foldHistory(hist, len, indexBits);
    return mixed & (cfg.taggedEntries - 1);
}

std::uint16_t
TagePredictor::tableTag(Addr pc, std::uint64_t hist, unsigned len) const
{
    // Two differently-folded history hashes decorrelate the tag from
    // the index (Seznec's trick); the second fold is one bit narrower.
    const std::uint64_t mixed = (pc >> 2)
        ^ foldHistory(hist, len, cfg.tagBits)
        ^ (foldHistory(hist, len, cfg.tagBits - 1) << 1);
    return static_cast<std::uint16_t>(mixed & lowBitMask(cfg.tagBits));
}

std::size_t
TagePredictor::baseIndex(Addr pc) const
{
    return (pc >> 2) & (cfg.baseEntries - 1);
}

TagePredictor::Lookup
TagePredictor::lookup(Addr pc, std::uint64_t hist) const
{
    Lookup lk;
    for (int t = static_cast<int>(tagged.size()) - 1; t >= 0; --t) {
        const std::size_t row =
            tableIndex(pc, hist, cfg.historyLengths[t]);
        if (tagged[t][row].tag
            == tableTag(pc, hist, cfg.historyLengths[t])) {
            lk.provider = t;
            lk.row = row;
            lk.predTaken = tagged[t][row].ctr >= ctrMid();
            return lk;
        }
    }
    lk.row = baseIndex(pc);
    lk.predTaken = base[lk.row].taken();
    return lk;
}

unsigned
TagePredictor::usefulCounter(std::size_t table, std::size_t row) const
{
    return tagged[table][row].useful;
}

std::uint16_t
TagePredictor::entryTag(std::size_t table, std::size_t row) const
{
    return tagged[table][row].tag;
}

BpInfo
TagePredictor::doPredict(Addr pc)
{
    const std::uint64_t hist = ghr.value();
    const Lookup lk = lookup(pc, hist);

    BpInfo info;
    info.predTaken = lk.predTaken;
    info.globalHistory = hist;
    info.globalHistoryBits = 63;

    unsigned conf_dist = 0;
    unsigned useful = 0;
    if (lk.provider >= 0) {
        const TaggedEntry &e = tagged[lk.provider][lk.row];
        info.counterValue = e.ctr;
        info.counterMax = ctrMax();
        // Distance of the counter from its weak midpoint, 0..mid-1
        // on either side, clamped onto the 2-bit confidence scale.
        conf_dist = e.ctr >= ctrMid() ? e.ctr - ctrMid()
                                      : ctrMid() - 1 - e.ctr;
        conf_dist = std::min(conf_dist, 3u);
        useful = std::min<unsigned>(e.useful, 3u);
    } else {
        const SatCounter &ctr = base[lk.row];
        info.counterValue = ctr.read();
        info.counterMax = ctr.max();
        // 2-bit base: strong states scale to max confidence, weak
        // states to zero; the base has no useful counter.
        conf_dist = ctr.isStrong() ? 3u : 0u;
    }
    info.nativeConf = (conf_dist << 2) | useful;
    info.hasNativeConf = true;

    if (cfg.speculativeHistory)
        ghr.shiftIn(lk.predTaken);
    return info;
}

void
TagePredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    const std::uint64_t hist = info.globalHistory;

    // Re-derive the provider chain under the branch's own history.
    // Tables may have changed since predict() — live behaviour only
    // depends on (pc, taken, info), so record/replay runs agree.
    int provider = -1;
    std::size_t providerRow = 0;
    int alt = -1;
    std::size_t altRow = 0;
    for (int t = static_cast<int>(tagged.size()) - 1; t >= 0; --t) {
        const std::size_t row =
            tableIndex(pc, hist, cfg.historyLengths[t]);
        if (tagged[t][row].tag
            != tableTag(pc, hist, cfg.historyLengths[t]))
            continue;
        if (provider < 0) {
            provider = t;
            providerRow = row;
        } else {
            alt = t;
            altRow = row;
            break;
        }
    }

    if (provider >= 0) {
        TaggedEntry &e = tagged[provider][providerRow];
        const bool provider_pred = e.ctr >= ctrMid();
        const bool alt_pred = alt >= 0
            ? tagged[alt][altRow].ctr >= ctrMid()
            : base[baseIndex(pc)].taken();
        // The useful counter tracks predictions where the provider
        // disagreed with (and beat) its alternative.
        if (provider_pred != alt_pred) {
            if (provider_pred == taken) {
                if (e.useful < usefulMax())
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
        if (taken) {
            if (e.ctr < ctrMax())
                ++e.ctr;
        } else if (e.ctr > 0) {
            --e.ctr;
        }
    } else {
        base[baseIndex(pc)].update(taken);
    }

    // On a (pipeline-observed) misprediction, allocate an entry in a
    // longer-history table so the branch graduates to more context.
    if (info.predTaken != taken
        && provider + 1 < static_cast<int>(tagged.size())) {
        bool allocated = false;
        for (std::size_t t = provider + 1; t < tagged.size(); ++t) {
            const std::size_t row =
                tableIndex(pc, hist, cfg.historyLengths[t]);
            TaggedEntry &e = tagged[t][row];
            if (e.useful == 0) {
                e.tag = tableTag(pc, hist, cfg.historyLengths[t]);
                e.ctr = static_cast<std::uint8_t>(
                    taken ? ctrMid() : ctrMid() - 1);
                e.useful = 0;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // Everything longer is protected: age the contenders so a
            // later misprediction can allocate.
            for (std::size_t t = provider + 1; t < tagged.size(); ++t) {
                const std::size_t row =
                    tableIndex(pc, hist, cfg.historyLengths[t]);
                if (tagged[t][row].useful > 0)
                    --tagged[t][row].useful;
            }
        }
    }

    // Periodic graceful aging of every useful counter.
    if (cfg.usefulAgingPeriod > 0
        && ++updatesSinceAging >= cfg.usefulAgingPeriod) {
        updatesSinceAging = 0;
        for (auto &table : tagged) {
            for (TaggedEntry &e : table)
                e.useful >>= 1;
        }
    }

    if (!cfg.speculativeHistory) {
        ghr.shiftIn(taken);
    } else if (info.predTaken != taken) {
        // Squash younger speculative bits: rebuild the history as
        // (pre-branch history, actual outcome).
        ghr.restore((info.globalHistory << 1) | (taken ? 1 : 0));
    }
}

void
TagePredictor::doReset()
{
    for (auto &ctr : base)
        ctr = SatCounter(2, 2);
    for (auto &table : tagged)
        std::fill(table.begin(), table.end(), TaggedEntry{});
    ghr.clear();
    updatesSinceAging = 0;
}

} // namespace confsim
