#include "bpred/estimator_input.hh"

#include "common/bit_utils.hh"

namespace confsim
{

namespace
{

/** Population count over the low @p bits bits. */
unsigned
popcountLow(std::uint64_t v, unsigned bits)
{
    v &= lowBitMask(bits);
    unsigned count = 0;
    while (v) {
        v &= v - 1;
        ++count;
    }
    return count;
}

} // anonymous namespace

const char *
inputWidthName(InputWidth width)
{
    switch (width) {
      case InputWidth::U8:
        return "u8";
      case InputWidth::U16:
        return "u16";
      case InputWidth::U32:
        return "u32";
      case InputWidth::U64:
        return "u64";
    }
    return "unknown";
}

bool
confidentHistoryPattern(std::uint64_t history, unsigned bits)
{
    if (bits == 0)
        return false;
    const std::uint64_t mask = lowBitMask(bits);
    const std::uint64_t h = history & mask;

    // Always taken / always not-taken.
    if (h == mask || h == 0)
        return true;

    // Almost always taken / not-taken: exactly one dissenting bit.
    const unsigned ones = popcountLow(h, bits);
    if (ones == 1 || ones == bits - 1)
        return true;

    // Strictly alternating: 0101... or 1010...
    const std::uint64_t alt0 = 0x5555555555555555ull & mask;
    const std::uint64_t alt1 = 0xaaaaaaaaaaaaaaaaull & mask;
    if (h == alt0 || h == alt1)
        return true;

    return false;
}

std::uint64_t
SatBitsInputPlugin::derive(Addr, const BpInfo &info) const
{
    // Mirrors SatCountersEstimator::doEstimate() for each variant: a
    // single-component predictor answers every variant from the one
    // counter it has.
    const bool selected_strong = info.counterValue == 0
        || info.counterValue == info.counterMax;
    const bool both = info.hasComponents
        ? (info.bimodalStrong && info.gshareStrong) : selected_strong;
    const bool either = info.hasComponents
        ? (info.bimodalStrong || info.gshareStrong) : selected_strong;

    std::uint64_t bits = 0;
    if (selected_strong)
        bits |= SAT_BIT_SELECTED;
    if (both)
        bits |= SAT_BIT_BOTH;
    if (either)
        bits |= SAT_BIT_EITHER;
    return bits;
}

std::uint64_t
PatternConfInputPlugin::derive(Addr, const BpInfo &info) const
{
    // Same local-else-global history selection as PatternEstimator.
    const bool conf = info.localHistoryBits > 0
        ? confidentHistoryPattern(info.localHistory,
                                  info.localHistoryBits)
        : confidentHistoryPattern(info.globalHistory,
                                  info.globalHistoryBits);
    return conf ? 1 : 0;
}

std::uint64_t
JrsKeyInputPlugin::derive(Addr pc, const BpInfo &info) const
{
    // Same global-else-local history selection as JrsEstimator.
    const std::uint64_t hist = info.globalHistoryBits > 0
        ? info.globalHistory : info.localHistory;
    return (pc >> 2) ^ hist;
}

EstimatorInputPluginSet
classicEstimatorInputPlugins()
{
    EstimatorInputPluginSet set;
    set.push_back(std::make_unique<SatBitsInputPlugin>());
    set.push_back(std::make_unique<PatternConfInputPlugin>());
    set.push_back(std::make_unique<JrsKeyInputPlugin>());
    return set;
}

std::vector<std::unique_ptr<EstimatorInputPlugin>>
BranchPredictor::estimatorInputPlugins() const
{
    return classicEstimatorInputPlugins();
}

} // namespace confsim
