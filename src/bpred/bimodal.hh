/**
 * @file
 * Smith-style bimodal predictor: a table of 2-bit saturating counters
 * indexed by branch address. Serves standalone and as the PC-indexed
 * component of the McFarling combining predictor.
 */

#ifndef CONFSIM_BPRED_BIMODAL_HH
#define CONFSIM_BPRED_BIMODAL_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace confsim
{

/** Configuration for BimodalPredictor. */
struct BimodalConfig
{
    std::size_t tableEntries = 4096; ///< power-of-two counter count
    unsigned counterBits = 2;        ///< counter width

    bool operator==(const BimodalConfig &) const = default;
};

/**
 * PC-indexed table of saturating counters.
 */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param config table geometry. */
    explicit BimodalPredictor(const BimodalConfig &config = {});

    std::string name() const override { return "bimodal"; }
    void describeConfig(ConfigWriter &out) const override;

    /** Direct counter access for the combining predictor. */
    const SatCounter &counterAt(Addr pc) const;

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t index(Addr pc) const;

    BimodalConfig cfg;
    std::vector<SatCounter> table;
};

} // namespace confsim

#endif // CONFSIM_BPRED_BIMODAL_HH
