#include "bpred/gselect.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

GselectPredictor::GselectPredictor(const GselectConfig &config)
    : cfg(config),
      ghr(config.historyBits == 0 ? 1 : config.historyBits)
{
    if (cfg.addrBits + cfg.historyBits == 0
        || cfg.addrBits + cfg.historyBits > 24) {
        fatal("gselect index width must be in [1, 24]");
    }
    table.assign(std::size_t{1} << (cfg.addrBits + cfg.historyBits),
                 SatCounter(cfg.counterBits,
                            (1u << cfg.counterBits) / 2));
}

std::size_t
GselectPredictor::index(Addr pc, std::uint64_t hist) const
{
    const std::uint64_t addr_part =
        (pc >> 2) & lowBitMask(cfg.addrBits);
    const std::uint64_t hist_part = hist & lowBitMask(cfg.historyBits);
    return (addr_part << cfg.historyBits) | hist_part;
}

BpInfo
GselectPredictor::doPredict(Addr pc)
{
    const std::uint64_t hist = ghr.value();
    const SatCounter &ctr = table[index(pc, hist)];
    BpInfo info;
    info.predTaken = ctr.taken();
    info.counterValue = ctr.read();
    info.counterMax = ctr.max();
    info.globalHistory = hist;
    info.globalHistoryBits = cfg.historyBits;
    if (cfg.speculativeHistory && cfg.historyBits > 0)
        ghr.shiftIn(info.predTaken);
    return info;
}

void
GselectPredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    table[index(pc, info.globalHistory)].update(taken);
    if (cfg.historyBits == 0)
        return;
    if (!cfg.speculativeHistory) {
        ghr.shiftIn(taken);
    } else if (info.predTaken != taken) {
        ghr.restore((info.globalHistory << 1) | (taken ? 1 : 0));
    }
}

std::string
GselectPredictor::name() const
{
    return cfg.addrBits == 0 ? "gag" : "gselect";
}

void
GselectPredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("addr_bits", cfg.addrBits);
    out.putUint("history_bits", cfg.historyBits);
    out.putUint("counter_bits", cfg.counterBits);
    out.putBool("speculative_history", cfg.speculativeHistory);
}

void
GselectPredictor::doReset()
{
    for (auto &ctr : table)
        ctr = SatCounter(cfg.counterBits, (1u << cfg.counterBits) / 2);
    ghr.clear();
}

} // namespace confsim
