#include "bpred/sag.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

SAgPredictor::SAgPredictor(const SAgConfig &config)
    : cfg(config)
{
    if (!isPowerOfTwo(cfg.bhtEntries) || !isPowerOfTwo(cfg.phtEntries))
        fatal("SAg table sizes must be powers of two");
    bht.assign(cfg.bhtEntries, HistoryRegister(cfg.historyBits));
    pht.assign(cfg.phtEntries,
               SatCounter(cfg.counterBits, (1u << cfg.counterBits) / 2));
}

std::size_t
SAgPredictor::bhtIndex(Addr pc) const
{
    return (pc >> 2) & (cfg.bhtEntries - 1);
}

std::size_t
SAgPredictor::phtIndex(std::uint64_t hist) const
{
    return hist & (cfg.phtEntries - 1);
}

BpInfo
SAgPredictor::doPredict(Addr pc)
{
    const HistoryRegister &hist = bht[bhtIndex(pc)];
    const SatCounter &ctr = pht[phtIndex(hist.value())];

    BpInfo info;
    info.predTaken = ctr.taken();
    info.counterValue = ctr.read();
    info.counterMax = ctr.max();
    info.localHistory = hist.value();
    info.localHistoryBits = cfg.historyBits;
    // Non-speculative: history is not touched here.
    return info;
}

void
SAgPredictor::doUpdate(Addr pc, bool taken, const BpInfo &info)
{
    // Train the PHT entry that produced this prediction: use the local
    // history captured at predict() time (older in-flight branches may
    // already have shifted the live register by resolve time).
    pht[phtIndex(info.localHistory)].update(taken);
    bht[bhtIndex(pc)].shiftIn(taken);
}

void
SAgPredictor::describeConfig(ConfigWriter &out) const
{
    out.putUint("bht_entries", cfg.bhtEntries);
    out.putUint("history_bits", cfg.historyBits);
    out.putUint("pht_entries", cfg.phtEntries);
    out.putUint("counter_bits", cfg.counterBits);
}

void
SAgPredictor::doReset()
{
    for (auto &h : bht)
        h.clear();
    for (auto &c : pht)
        c = SatCounter(cfg.counterBits, (1u << cfg.counterBits) / 2);
}

} // namespace confsim
