/**
 * @file
 * TAGE-style predictor (Seznec & Michaud): a bimodal base predictor
 * plus several partially-tagged tables indexed by geometrically
 * increasing global-history lengths. The longest-history table whose
 * tag matches provides the prediction; mispredictions allocate a new
 * entry in a longer-history table.
 *
 * Relation to the paper: TAGE carries confidence state natively — the
 * provider counter's distance from its weak point and the entry's
 * "useful" bits. Both are packed into BpInfo::nativeConf and exported
 * as the "tage-conf" estimator-input channel, so the sweep harness can
 * pit the ISCA'98 external estimators against the predictor's own
 * confidence on one trace.
 */

#ifndef CONFSIM_BPRED_TAGE_HH
#define CONFSIM_BPRED_TAGE_HH

#include <cstdint>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/history_register.hh"
#include "common/sat_counter.hh"

namespace confsim
{

/**
 * Largest nativeConf level TAGE reports: (confDist << 2) | useful
 * with confDist and useful both in [0, 3].
 */
inline constexpr unsigned TAGE_CONF_LEVEL_MAX = 15;

/** Configuration for TagePredictor. */
struct TageConfig
{
    std::size_t baseEntries = 4096;   ///< bimodal base (2-bit counters)
    std::size_t taggedEntries = 1024; ///< entries per tagged table
    unsigned tagBits = 9;             ///< partial tag width (1..16)
    unsigned counterBits = 3;         ///< tagged direction counter width
    unsigned usefulBits = 2;          ///< useful counter width
    /** Geometric history lengths, one per tagged table, ascending,
     *  each in [1, 63]. */
    std::vector<unsigned> historyLengths = {5, 11, 24, 52};
    /** Updates between useful-counter agings (right-shift of every u);
     *  0 disables aging. */
    std::uint64_t usefulAgingPeriod = 262144;
    /** Speculative history update with repair (as the paper's
     *  speculative gshare); false = update only at resolution. */
    bool speculativeHistory = true;

    bool operator==(const TageConfig &) const = default;
};

/**
 * Tagged geometric-history predictor.
 *
 * BpInfo compatibility: counterValue/counterMax expose the provider's
 * direction counter (base 2-bit or tagged counterBits-wide), so the
 * saturating-counter estimators work unchanged. nativeConf packs the
 * provider confidence as (confDist << 2) | useful, where confDist is
 * the counter's distance from its weak midpoint scaled to [0, 3] and
 * useful is the provider entry's useful counter (0 for the base).
 */
class TagePredictor : public BranchPredictor
{
  public:
    /** @param config table geometry and aging period. */
    explicit TagePredictor(const TageConfig &config = {});

    std::string name() const override { return "tage"; }
    void describeConfig(ConfigWriter &out) const override;

    std::vector<std::unique_ptr<EstimatorInputPlugin>>
    estimatorInputPlugins() const override;

    /** Current (speculative) global history value. */
    std::uint64_t history() const { return ghr.value(); }

    /** Useful counter of tagged entry (@p table, @p row) — for tests. */
    unsigned usefulCounter(std::size_t table, std::size_t row) const;

    /** Tag of tagged entry (@p table, @p row) — for tests. */
    std::uint16_t entryTag(std::size_t table, std::size_t row) const;

  protected:
    BpInfo doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken, const BpInfo &info) override;
    void doReset() override;

  private:
    /** One partially-tagged table entry. */
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t ctr = 0;    ///< direction counter (taken >= mid)
        std::uint8_t useful = 0; ///< replacement-protection counter
    };

    /** Provider lookup result: which table (or the base) answers. */
    struct Lookup
    {
        int provider = -1;  ///< tagged table index, -1 = base bimodal
        std::size_t row = 0;
        bool predTaken = false;
    };

    std::uint64_t foldHistory(std::uint64_t hist, unsigned len,
                              unsigned bits) const;
    std::size_t tableIndex(Addr pc, std::uint64_t hist,
                           unsigned len) const;
    std::uint16_t tableTag(Addr pc, std::uint64_t hist,
                           unsigned len) const;
    std::size_t baseIndex(Addr pc) const;

    /** Find the longest-history tag match under @p hist. */
    Lookup lookup(Addr pc, std::uint64_t hist) const;

    /** Counter midpoint: values at or above predict taken. */
    unsigned ctrMid() const { return 1u << (cfg.counterBits - 1); }
    unsigned ctrMax() const { return (1u << cfg.counterBits) - 1; }
    unsigned usefulMax() const { return (1u << cfg.usefulBits) - 1; }

    TageConfig cfg;
    unsigned indexBits;

    std::vector<SatCounter> base;
    std::vector<std::vector<TaggedEntry>> tagged;
    HistoryRegister ghr;
    std::uint64_t updatesSinceAging = 0;
};

} // namespace confsim

#endif // CONFSIM_BPRED_TAGE_HH
