#include "cache/cache.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

Cache::Cache(const CacheConfig &config, std::string label)
    : cfg(config), label(std::move(label))
{
    if (!isPowerOfTwo(cfg.lineBytes))
        fatal("cache line size must be a power of two");
    if (cfg.associativity == 0)
        fatal("cache associativity must be nonzero");
    if (cfg.sizeBytes % (cfg.lineBytes * cfg.associativity) != 0)
        fatal("cache size must be divisible by line size * ways");

    sets = cfg.sizeBytes / (cfg.lineBytes * cfg.associativity);
    if (!isPowerOfTwo(sets))
        fatal("cache set count must be a power of two");
    lineShift = floorLog2(cfg.lineBytes);
    lines.assign(sets * cfg.associativity, Line{});
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr >> lineShift) / sets;
}

std::size_t
Cache::setOf(Addr addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

Cycle
Cache::access(Addr addr)
{
    ++accessCount;
    ++useClock;
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines[setOf(addr) * cfg.associativity];

    Line *victim = base;
    for (unsigned w = 0; w < cfg.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            return cfg.hitLatency;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++missCount;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    return cfg.hitLatency + cfg.missLatency;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t tag = tagOf(addr);
    const Line *base = &lines[setOf(addr) * cfg.associativity];
    for (unsigned w = 0; w < cfg.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    accessCount = 0;
    missCount = 0;
    useClock = 0;
}

} // namespace confsim
