/**
 * @file
 * Set-associative cache timing model with LRU replacement. Used by the
 * pipeline as the L1 instruction and data caches of the paper's
 * methodology (64 kB D / 128 kB I, 2-cycle access). This is a timing
 * filter only — data flows through the functional interpreter — so the
 * model tracks tags, not contents.
 */

#ifndef CONFSIM_CACHE_CACHE_HH
#define CONFSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace confsim
{

/** Geometry and latency configuration of a Cache. */
struct CacheConfig
{
    std::string name = "cache";  ///< label for statistics output
    std::size_t sizeBytes = 64 * 1024; ///< total capacity
    std::size_t lineBytes = 32;  ///< block size
    unsigned associativity = 2;  ///< ways per set
    Cycle hitLatency = 2;        ///< cycles for a hit
    Cycle missLatency = 12;      ///< additional cycles for a miss
};

/**
 * Tag-only set-associative cache with true-LRU replacement.
 */
class Cache
{
  public:
    /** @param config geometry; size/line/assoc must divide evenly. */
    explicit Cache(const CacheConfig &config);

    /**
     * Access the block containing @p addr, updating LRU state and
     * allocating on miss.
     * @return access latency in cycles (hit or miss path).
     */
    Cycle access(Addr addr);

    /**
     * Probe without side effects.
     * @return true when the block containing @p addr is resident.
     */
    bool contains(Addr addr) const;

    /** Invalidate every line. */
    void reset();

    /** Total accesses since reset. */
    std::uint64_t accesses() const { return accessCount; }

    /** Total misses since reset. */
    std::uint64_t misses() const { return missCount; }

    /** Miss ratio; 0 when no accesses. */
    double
    missRate() const
    {
        return accessCount == 0
            ? 0.0
            : static_cast<double>(missCount)
                / static_cast<double>(accessCount);
    }

    /** Configuration this cache was built with. */
    const CacheConfig &config() const { return cfg; }

    /** Number of sets. */
    std::size_t numSets() const { return sets; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; ///< LRU timestamp
        bool valid = false;
    };

    std::uint64_t tagOf(Addr addr) const;
    std::size_t setOf(Addr addr) const;

    CacheConfig cfg;
    std::size_t sets;
    unsigned lineShift;
    std::vector<Line> lines; ///< sets * associativity, set-major
    std::uint64_t accessCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t useClock = 0;
};

} // namespace confsim

#endif // CONFSIM_CACHE_CACHE_HH
