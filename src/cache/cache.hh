/**
 * @file
 * Set-associative cache timing model with LRU replacement. Used by the
 * pipeline as the L1 instruction and data caches of the paper's
 * methodology (64 kB D / 128 kB I, 2-cycle access). This is a timing
 * filter only — data flows through the functional interpreter — so the
 * model tracks tags, not contents.
 */

#ifndef CONFSIM_CACHE_CACHE_HH
#define CONFSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_object.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"

namespace confsim
{

/**
 * Geometry and latency configuration of a Cache. The cache's label
 * (e.g. "icache") is *not* part of the config: it is the SimObject
 * name, passed at construction, and the StatsRegistry path built from
 * it is the single source of truth for statistics labels.
 */
struct CacheConfig
{
    std::size_t sizeBytes = 64 * 1024; ///< total capacity
    std::size_t lineBytes = 32;  ///< block size
    unsigned associativity = 2;  ///< ways per set
    Cycle hitLatency = 2;        ///< cycles for a hit
    Cycle missLatency = 12;      ///< additional cycles for a miss

    bool operator==(const CacheConfig &) const = default;
};

/**
 * Tag-only set-associative cache with true-LRU replacement.
 */
class Cache : public SimObject
{
  public:
    /**
     * @param config geometry; size/line/assoc must divide evenly.
     * @param label SimObject name, e.g. "icache".
     */
    explicit Cache(const CacheConfig &config,
                   std::string label = "cache");

    /**
     * Access the block containing @p addr, updating LRU state and
     * allocating on miss.
     * @return access latency in cycles (hit or miss path).
     */
    Cycle access(Addr addr);

    /**
     * Probe without side effects.
     * @return true when the block containing @p addr is resident.
     */
    bool contains(Addr addr) const;

    std::string name() const override { return label; }

    /** Invalidate every line and clear statistics. */
    void reset() override;

    void
    registerStats(StatsRegistry &reg) override
    {
        reg.addCounter("accesses", &accessCount, "block accesses");
        reg.addCounter("misses", &missCount,
                       "accesses that missed and allocated");
        reg.addRatio("miss_rate", &missCount, &accessCount,
                     "misses / accesses");
    }

    void
    describeConfig(ConfigWriter &out) const override
    {
        out.putUint("size_bytes", cfg.sizeBytes);
        out.putUint("line_bytes", cfg.lineBytes);
        out.putUint("associativity", cfg.associativity);
        out.putUint("hit_latency", cfg.hitLatency);
        out.putUint("miss_latency", cfg.missLatency);
    }

    /** Total accesses since reset. */
    std::uint64_t accesses() const { return accessCount; }

    /** Total misses since reset. */
    std::uint64_t misses() const { return missCount; }

    /** Miss ratio; 0 when no accesses. */
    double
    missRate() const
    {
        return accessCount == 0
            ? 0.0
            : static_cast<double>(missCount)
                / static_cast<double>(accessCount);
    }

    /** Configuration this cache was built with. */
    const CacheConfig &config() const { return cfg; }

    /** Number of sets. */
    std::size_t numSets() const { return sets; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; ///< LRU timestamp
        bool valid = false;
    };

    std::uint64_t tagOf(Addr addr) const;
    std::size_t setOf(Addr addr) const;

    CacheConfig cfg;
    std::string label;
    std::size_t sets;
    unsigned lineShift;
    std::vector<Line> lines; ///< sets * associativity, set-major
    std::uint64_t accessCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t useClock = 0;
};

} // namespace confsim

#endif // CONFSIM_CACHE_CACHE_HH
