#include "metrics/analytic.hh"

#include <cmath>

#include "common/logging.hh"

namespace confsim
{

QuadrantFractions
analyticQuadrants(double sens, double spec, double accuracy)
{
    QuadrantFractions f;
    f.chc = sens * accuracy;
    f.clc = (1.0 - sens) * accuracy;
    f.ilc = spec * (1.0 - accuracy);
    f.ihc = (1.0 - spec) * (1.0 - accuracy);
    return f;
}

double
analyticPvp(double sens, double spec, double accuracy)
{
    return analyticQuadrants(sens, spec, accuracy).pvp();
}

double
analyticPvn(double sens, double spec, double accuracy)
{
    return analyticQuadrants(sens, spec, accuracy).pvn();
}

double
boostedPvn(double pvn, unsigned n)
{
    return 1.0 - std::pow(1.0 - pvn, static_cast<double>(n));
}

std::vector<ParametricPoint>
parametricCurve(SweepParam sweep, double sens, double spec,
                double accuracy, double lo, double hi, unsigned steps)
{
    if (steps == 0)
        fatal("parametricCurve needs at least one step");
    std::vector<ParametricPoint> points;
    points.reserve(steps + 1);
    for (unsigned i = 0; i <= steps; ++i) {
        const double v = lo + (hi - lo) * static_cast<double>(i)
            / static_cast<double>(steps);
        double s = sens, sp = spec, p = accuracy;
        switch (sweep) {
          case SweepParam::Sens: s = v; break;
          case SweepParam::Spec: sp = v; break;
          case SweepParam::Accuracy: p = v; break;
        }
        const QuadrantFractions f = analyticQuadrants(s, sp, p);
        points.push_back({v, f.pvp(), f.pvn()});
    }
    return points;
}

double
diagnosticPvp(double sens, double spec, double prevalence)
{
    const double true_pos = sens * prevalence;
    const double false_pos = (1.0 - spec) * (1.0 - prevalence);
    const double denom = true_pos + false_pos;
    return denom <= 0.0 ? 0.0 : true_pos / denom;
}

} // namespace confsim
