#include "metrics/quadrant.hh"

namespace confsim
{

QuadrantFractions
QuadrantFractions::normalize(const QuadrantCounts &counts)
{
    QuadrantFractions f;
    const double total = static_cast<double>(counts.total());
    if (total <= 0.0)
        return f;
    f.chc = static_cast<double>(counts.chc) / total;
    f.ihc = static_cast<double>(counts.ihc) / total;
    f.clc = static_cast<double>(counts.clc) / total;
    f.ilc = static_cast<double>(counts.ilc) / total;
    return f;
}

QuadrantFractions
aggregateQuadrants(const std::vector<QuadrantCounts> &runs)
{
    QuadrantFractions sum;
    if (runs.empty())
        return sum;
    for (const auto &counts : runs) {
        const QuadrantFractions f = QuadrantFractions::normalize(counts);
        sum.chc += f.chc;
        sum.ihc += f.ihc;
        sum.clc += f.clc;
        sum.ilc += f.ilc;
    }
    const double n = static_cast<double>(runs.size());
    sum.chc /= n;
    sum.ihc /= n;
    sum.clc /= n;
    sum.ilc /= n;
    return sum;
}

} // namespace confsim
