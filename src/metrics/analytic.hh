/**
 * @file
 * Closed-form diagnostic-test model behind Figure 1 of the paper: given
 * sensitivity, specificity and prediction accuracy, derive the quadrant
 * fractions and thus PVP/PVN, plus the §4.2 boosting approximation and
 * the §1.1 ELISA-style PVP computation.
 */

#ifndef CONFSIM_METRICS_ANALYTIC_HH
#define CONFSIM_METRICS_ANALYTIC_HH

#include <vector>

#include "metrics/quadrant.hh"

namespace confsim
{

/**
 * Build the quadrant fraction table implied by (SENS, SPEC, p):
 *   C_HC = SENS * p          C_LC = (1 - SENS) * p
 *   I_LC = SPEC * (1 - p)    I_HC = (1 - SPEC) * (1 - p)
 *
 * @param sens sensitivity in [0, 1].
 * @param spec specificity in [0, 1].
 * @param accuracy branch prediction accuracy p in [0, 1].
 */
QuadrantFractions analyticQuadrants(double sens, double spec,
                                    double accuracy);

/** PVP implied by (SENS, SPEC, p). */
double analyticPvp(double sens, double spec, double accuracy);

/** PVN implied by (SENS, SPEC, p). */
double analyticPvn(double sens, double spec, double accuracy);

/**
 * §4.2 boosting model: probability that at least one of @p n
 * low-confidence estimates is an actual misprediction, treating each as
 * an independent Bernoulli trial with success probability @p pvn.
 * @return 1 - (1 - pvn)^n.
 */
double boostedPvn(double pvn, unsigned n);

/** One point of a Figure-1 parametric curve. */
struct ParametricPoint
{
    double varied;  ///< value of the swept parameter
    double pvp;     ///< resulting predictive value of a positive test
    double pvn;     ///< resulting predictive value of a negative test
};

/** Which of the three parameters a Figure-1 curve sweeps. */
enum class SweepParam { Sens, Spec, Accuracy };

/**
 * Generate one parametric curve of Figure 1: hold two of
 * (SENS, SPEC, p) fixed and sweep the third from @p lo to @p hi in
 * @p steps uniform steps.
 *
 * @param sweep which parameter varies.
 * @param sens fixed sensitivity (ignored if swept).
 * @param spec fixed specificity (ignored if swept).
 * @param accuracy fixed prediction accuracy (ignored if swept).
 */
std::vector<ParametricPoint>
parametricCurve(SweepParam sweep, double sens, double spec,
                double accuracy, double lo = 0.0, double hi = 1.0,
                unsigned steps = 100);

/**
 * §1.1 worked example: predictive value of a positive diagnostic test
 * with the given sensitivity, specificity and disease prevalence.
 * @return P[D|S] = sens*p / (sens*p + (1-spec)*(1-p)).
 */
double diagnosticPvp(double sens, double spec, double prevalence);

} // namespace confsim

#endif // CONFSIM_METRICS_ANALYTIC_HH
