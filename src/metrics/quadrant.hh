/**
 * @file
 * The 2x2 confidence-outcome quadrant table of the paper (§2) and the
 * diagnostic-test metrics derived from it: SENS, SPEC, PVP, PVN, plus
 * Jacobsen et al.'s earlier "confidence misprediction rate" and
 * "coverage" for comparison.
 *
 * Quadrants: rows are the estimate (HC/LC), columns the prediction
 * outcome (Correct/Incorrect):
 *
 *          C       I
 *   HC   C_HC    I_HC
 *   LC   C_LC    I_LC
 */

#ifndef CONFSIM_METRICS_QUADRANT_HH
#define CONFSIM_METRICS_QUADRANT_HH

#include <cstdint>
#include <vector>

namespace confsim
{

/**
 * Raw event counts for one (estimator, predictor, workload) run.
 */
struct QuadrantCounts
{
    std::uint64_t chc = 0; ///< correct prediction, high confidence
    std::uint64_t ihc = 0; ///< incorrect prediction, high confidence
    std::uint64_t clc = 0; ///< correct prediction, low confidence
    std::uint64_t ilc = 0; ///< incorrect prediction, low confidence

    /** Record one resolved branch. */
    void
    record(bool correct, bool high_confidence)
    {
        if (correct) {
            if (high_confidence) ++chc; else ++clc;
        } else {
            if (high_confidence) ++ihc; else ++ilc;
        }
    }

    /** Total branches recorded. */
    std::uint64_t total() const { return chc + ihc + clc + ilc; }

    /** Field-wise equality (used by the determinism tests). */
    bool operator==(const QuadrantCounts &) const = default;

    /** Merge counts from another run. */
    QuadrantCounts &
    operator+=(const QuadrantCounts &other)
    {
        chc += other.chc;
        ihc += other.ihc;
        clc += other.clc;
        ilc += other.ilc;
        return *this;
    }

    /** SENS = P[HC|C]: fraction of correct predictions marked HC. */
    double sens() const { return ratio(chc, chc + clc); }

    /** SPEC = P[LC|I]: fraction of incorrect predictions marked LC. */
    double spec() const { return ratio(ilc, ihc + ilc); }

    /** PVP = P[C|HC]: probability a high-confidence estimate is right. */
    double pvp() const { return ratio(chc, chc + ihc); }

    /** PVN = P[I|LC]: probability a low-confidence estimate is right. */
    double pvn() const { return ratio(ilc, clc + ilc); }

    /** Branch prediction accuracy p = P[C]. */
    double accuracy() const { return ratio(chc + clc, total()); }

    /** Branch misprediction rate 1 - p. */
    double mispredictRate() const { return ratio(ihc + ilc, total()); }

    /**
     * Jacobsen et al.'s "confidence misprediction rate": the fraction
     * of branches where the estimate disagreed with the outcome.
     */
    double
    jacobsenMispredictRate() const
    {
        return ratio(ihc + clc, total());
    }

    /** Jacobsen et al.'s "coverage": fraction estimated low confidence. */
    double coverage() const { return ratio(clc + ilc, total()); }

  private:
    static double
    ratio(std::uint64_t num, std::uint64_t den)
    {
        return den == 0
            ? 0.0
            : static_cast<double>(num) / static_cast<double>(den);
    }
};

/**
 * Quadrants normalised to fractions summing to one; also the result type
 * of cross-workload aggregation.
 */
struct QuadrantFractions
{
    double chc = 0.0;
    double ihc = 0.0;
    double clc = 0.0;
    double ilc = 0.0;

    /** @return fractions of @p counts (all zero when empty). */
    static QuadrantFractions normalize(const QuadrantCounts &counts);

    /** SENS on the fraction table. */
    double sens() const { return ratio(chc, chc + clc); }
    /** SPEC on the fraction table. */
    double spec() const { return ratio(ilc, ihc + ilc); }
    /** PVP on the fraction table. */
    double pvp() const { return ratio(chc, chc + ihc); }
    /** PVN on the fraction table. */
    double pvn() const { return ratio(ilc, clc + ilc); }
    /** Prediction accuracy on the fraction table. */
    double accuracy() const { return chc + clc; }

  private:
    static double
    ratio(double num, double den)
    {
        return den <= 0.0 ? 0.0 : num / den;
    }
};

/**
 * Paper-style aggregation across workloads: normalise each workload's
 * quadrants, average the four fractions, and derive metrics from those
 * averages ("the averages are computed from the averages of the
 * original data", §3.2).
 */
QuadrantFractions
aggregateQuadrants(const std::vector<QuadrantCounts> &runs);

} // namespace confsim

#endif // CONFSIM_METRICS_QUADRANT_HH
