#include "sweep/batch_replayer.hh"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

namespace
{

constexpr std::size_t BLOCK_OPS = BatchReplayer::BLOCK_OPS;

/**
 * The devirtualized block walk shared by every lane kind. Estimate and
 * update are inlineable functors receiving (index, flag byte), so each
 * instantiation compiles to a closed loop over flat arrays — this is
 * the sweep's inner loop. Kernel lanes consume only the precomputed
 * per-branch inputs (flag byte, input channels), never the BpInfo
 * records.
 *
 * Mirrors TraceReplayer op for op: a fetch op estimates (and samples
 * the confidence level), a finalize op trains committed branches only.
 * Quadrants accumulate at fetch instead of at event delivery — the
 * same (correct, high, willCommit) triples in a different order, so
 * the summed counts are bit-identical to ConfidenceCollector's; the
 * LevelSweep likewise matches LevelCollector (committed branches,
 * level sampled at fetch).
 */
/**
 * Branch-free quadrant accumulator: counts indexed by
 * (correct << 1) | high, folded into the named QuadrantCounts fields
 * when a walk finishes. record()'s nested data-dependent ifs would
 * mispredict on every confidence flip; an indexed add does not, and
 * addition commutes so the final counts are identical.
 */
struct QuadrantBins
{
    std::uint64_t bins[4] = {};

    void add(unsigned q, std::uint64_t weight) { bins[q] += weight; }

    void
    flushInto(QuadrantCounts &out) const
    {
        out.ilc += bins[0];
        out.ihc += bins[1];
        out.clc += bins[2];
        out.chc += bins[3];
    }
};

template <typename EstimateFn, typename UpdateFn>
inline void
walkBlock(ConfidenceEstimator::Stats &stats, QuadrantCounts &allQ,
          QuadrantCounts &committedQ, LevelSweep *sweep,
          const DecodedTrace &t, const std::uint32_t *ops,
          std::size_t n, EstimateFn estimate, UpdateFn update)
{
    const std::uint8_t *flags = t.flags.data();
    QuadrantBins all, com;
    std::uint64_t estimates = 0;
    std::uint64_t low = 0;
    std::uint64_t updates = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t op = ops[k];
        const std::size_t i = op >> 1;
        const std::uint8_t f = flags[i];
        if (op & 1u) { // fetch: estimate
            unsigned level = 0;
            const unsigned high = estimate(i, f, level) ? 1u : 0u;
            ++estimates;
            low += high ^ 1u;
            const unsigned correct =
                (f & DecodedTrace::FLAG_CORRECT) ? 1u : 0u;
            const unsigned q = (correct << 1) | high;
            all.add(q, 1);
            const std::uint64_t commits =
                (f & DecodedTrace::FLAG_COMMIT) ? 1u : 0u;
            com.add(q, commits);
            if (sweep != nullptr && commits != 0)
                sweep->record(level, correct != 0);
        } else if (f & DecodedTrace::FLAG_COMMIT) { // finalize: train
            ++updates;
            update(i, f);
        }
    }
    stats.estimates += estimates;
    stats.lowEstimates += low;
    stats.updates += updates;
    all.flushInto(allQ);
    com.flushInto(committedQ);
}

/**
 * The linear pass shared by every stateless lane: such lanes have a
 * no-op update and an estimate precomputed into an input channel, so
 * they cannot observe the fetch/finalize interleaving — every
 * accumulation commutes. One linear pass over the per-branch values
 * (each branch is fetched exactly once) therefore produces
 * bit-identical results to the scheduled walk at a fraction of its
 * cost: no schedule loads and no unpredictable fetch-vs-finalize
 * branch. classify(i, level) returns the high/low verdict and fills
 * the raw sweep level.
 */
template <typename ClassifyFn>
inline void
linearPass(ConfidenceEstimator::Stats &stats, QuadrantCounts &allQ,
           QuadrantCounts &committedQ, LevelSweep *sweep,
           const DecodedTrace &t, ClassifyFn classify)
{
    const std::uint8_t *flags = t.flags.data();
    const std::size_t n = t.size();
    QuadrantBins all, com;
    std::uint64_t low = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t f = flags[i];
        unsigned level = 0;
        const unsigned high = classify(i, level) ? 1u : 0u;
        low += high ^ 1u;
        const unsigned correct =
            (f & DecodedTrace::FLAG_CORRECT) ? 1u : 0u;
        const unsigned q = (correct << 1) | high;
        all.add(q, 1);
        const std::uint64_t commits =
            (f & DecodedTrace::FLAG_COMMIT) ? 1u : 0u;
        com.add(q, commits);
        if (sweep != nullptr && commits != 0)
            sweep->record(level, correct != 0);
    }
    stats.estimates += t.counters.branches;
    stats.lowEstimates += low;
    stats.updates += t.counters.committedBranches;
    all.flushInto(allQ);
    com.flushInto(committedQ);
}

/**
 * One JRS table geometry in the vector path. The resetting-counter
 * update is threshold-independent, so lanes sharing
 * (tableEntries, counterBits, enhanced) evolve identical tables and
 * only their >= threshold classification differs: the walk spills the
 * level seen at each fetch into lvl[i], and each member lane's
 * quadrants then reduce to one countGeU16 over that buffer. Several
 * geometries advance through one schedule pass so the op/flag loads
 * amortize across them.
 */
struct JrsGroupWalk
{
    const std::uint64_t *key = nullptr;
    std::uint16_t *table = nullptr;
    std::uint16_t *lvl = nullptr;
    std::uint64_t mask = 0;
    std::uint16_t max = 0;
    // Branch-free enhanced indexing: idx = ((key << shift) |
    // (pred & predMask)) & mask; shift/predMask are 1 only when
    // enhanced, reproducing JrsEstimator::index() for both modes.
    unsigned shift = 0;
    std::uint64_t predMask = 0;
};

template <std::size_t G>
void
walkJrsGroups(const DecodedTrace &t, const JrsGroupWalk *groups)
{
    const std::uint8_t *flags = t.flags.data();
    const std::uint32_t *ops = t.schedule.data();
    const std::size_t total = t.schedule.size();
    auto forEach = [&](auto fn) {
        [&]<std::size_t... Is>(std::index_sequence<Is...>) {
            (fn(groups[Is]), ...);
        }(std::make_index_sequence<G>{});
    };
    for (std::size_t k = 0; k < total; ++k) {
        const std::uint32_t op = ops[k];
        const std::size_t i = op >> 1;
        const std::uint8_t f = flags[i];
        const std::uint64_t pred =
            (f & DecodedTrace::FLAG_PRED_TAKEN) ? 1u : 0u;
        if (op & 1u) { // fetch: spill the current level
            forEach([&](const JrsGroupWalk &g) {
                const std::uint64_t idx =
                    ((g.key[i] << g.shift) | (pred & g.predMask))
                    & g.mask;
                g.lvl[i] = g.table[idx];
            });
        } else if (f & DecodedTrace::FLAG_COMMIT) { // finalize: train
            forEach([&](const JrsGroupWalk &g) {
                std::uint16_t &ctr = g.table[
                        ((g.key[i] << g.shift) | (pred & g.predMask))
                        & g.mask];
                const auto inc = static_cast<std::uint16_t>(
                        ctr + (ctr < g.max ? 1 : 0));
                ctr = (f & DecodedTrace::FLAG_CORRECT) ? inc : 0;
            });
        }
    }
}

std::uint8_t
satBitFor(SatCountersVariant variant)
{
    switch (variant) {
      case SatCountersVariant::Selected:
        return SAT_BIT_SELECTED;
      case SatCountersVariant::BothStrong:
        return SAT_BIT_BOTH;
      case SatCountersVariant::EitherStrong:
        return SAT_BIT_EITHER;
    }
    return SAT_BIT_SELECTED;
}

} // anonymous namespace

BatchReplayer::BatchReplayer(std::shared_ptr<const DecodedTrace> trace)
    : src(std::move(trace))
{
    if (!src)
        panic("BatchReplayer needs a decoded trace");
}

unsigned
BatchReplayer::attachJrs(const JrsConfig &cfg, bool sweep_levels)
{
    if (!isPowerOfTwo(cfg.tableEntries))
        fatal("JRS table size must be a power of two");
    if (cfg.counterBits == 0 || cfg.counterBits > 16)
        fatal("JRS counter width must be in [1, 16]");
    Lane lane;
    lane.kind = SweepLaneKind::Jrs;
    lane.chanName = CHANNEL_JRS_KEY;
    lane.chan = src->findChannel(CHANNEL_JRS_KEY);
    if (lane.chan == nullptr)
        fatal(std::string("JRS sweep lane needs the '")
              + CHANNEL_JRS_KEY + "' input channel");
    lane.jrs = cfg;
    lane.jrsMax =
        static_cast<std::uint16_t>((1u << cfg.counterBits) - 1);
    lane.sweepLevels = sweep_levels;
    lane.maxLevel = lane.jrsMax;
    lanes.push_back(std::move(lane));
    return static_cast<unsigned>(lanes.size() - 1);
}

unsigned
BatchReplayer::attachSatCounters(SatCountersVariant variant)
{
    Lane lane;
    lane.kind = SweepLaneKind::SatCounters;
    lane.chanName = CHANNEL_SAT_BITS;
    lane.chan = src->findChannel(CHANNEL_SAT_BITS);
    if (lane.chan == nullptr)
        fatal(std::string("sat-counters sweep lane needs the '")
              + CHANNEL_SAT_BITS + "' input channel");
    lane.satVariant = variant;
    lanes.push_back(std::move(lane));
    return static_cast<unsigned>(lanes.size() - 1);
}

unsigned
BatchReplayer::attachPattern()
{
    Lane lane;
    lane.kind = SweepLaneKind::Pattern;
    lane.chanName = CHANNEL_PATTERN_CONF;
    lane.chan = src->findChannel(CHANNEL_PATTERN_CONF);
    if (lane.chan == nullptr)
        fatal(std::string("pattern sweep lane needs the '")
              + CHANNEL_PATTERN_CONF + "' input channel");
    lanes.push_back(std::move(lane));
    return static_cast<unsigned>(lanes.size() - 1);
}

unsigned
BatchReplayer::attachChannelThreshold(const std::string &channel,
                                      unsigned threshold,
                                      bool sweep_levels)
{
    Lane lane;
    lane.kind = SweepLaneKind::Channel;
    lane.chanName = channel;
    lane.chan = src->findChannel(channel);
    lane.chanThreshold = threshold;
    lane.sweepLevels = sweep_levels;
    lane.maxLevel = lane.chan != nullptr
        ? std::min(lane.chan->levelMax, 65535u) : 0;
    lanes.push_back(std::move(lane));
    return static_cast<unsigned>(lanes.size() - 1);
}

unsigned
BatchReplayer::attachEstimator(ConfidenceEstimator *estimator,
                               const LevelSource *levels,
                               unsigned max_level)
{
    if (estimator == nullptr)
        panic("BatchReplayer::attachEstimator: null estimator");
    Lane lane;
    lane.kind = SweepLaneKind::Virtual;
    lane.est = estimator;
    lane.levelSrc = levels;
    lane.sweepLevels = levels != nullptr;
    lane.maxLevel = max_level;
    lanes.push_back(std::move(lane));
    return static_cast<unsigned>(lanes.size() - 1);
}

void
BatchReplayer::attachPredictor(BranchPredictor *pred)
{
    predictor = pred;
}

void
BatchReplayer::resetLane(Lane &lane)
{
    lane.stats = {};
    lane.committedQ = {};
    lane.allQ = {};
    lane.sweep =
        lane.sweepLevels ? LevelSweep(lane.maxLevel) : LevelSweep(0);
    if (lane.kind == SweepLaneKind::Jrs)
        lane.table.assign(lane.jrs.tableEntries, 0);
}

void
BatchReplayer::runLaneBlock(Lane &lane, const std::uint32_t *ops,
                            std::size_t n)
{
    const DecodedTrace &t = *src;
    LevelSweep *sweep = lane.sweepLevels ? &lane.sweep : nullptr;

    switch (lane.kind) {
      case SweepLaneKind::Jrs: {
        // Index math is JrsEstimator::index() over the precomputed
        // jrs-key channel; the enhanced bit comes from the flag byte,
        // so the loop touches key + flags + table only. The geometry
        // is baked in per instantiation to keep the loop branch-free.
        const std::uint64_t *key = lane.chan->u64.data();
        std::uint16_t *table = lane.table.data();
        const std::uint64_t mask = lane.jrs.tableEntries - 1;
        const unsigned threshold = lane.jrs.threshold;
        const std::uint16_t max = lane.jrsMax;
        auto runGeometry = [&](auto enh) {
            constexpr bool ENHANCED = decltype(enh)::value;
            auto index = [key, mask](std::size_t i, std::uint8_t f) {
                std::uint64_t idx = key[i];
                if constexpr (ENHANCED)
                    idx = (idx << 1)
                        | ((f & DecodedTrace::FLAG_PRED_TAKEN) ? 1u
                                                               : 0u);
                return idx & mask;
            };
            walkBlock(
                    lane.stats, lane.allQ, lane.committedQ, sweep, t,
                    ops, n,
                    [table, threshold, index](std::size_t i,
                                              std::uint8_t f,
                                              unsigned &level) {
                        level = table[index(i, f)];
                        return level >= threshold;
                    },
                    [table, max, index](std::size_t i,
                                        std::uint8_t f) {
                        // Saturate-or-reset as selects, not branches:
                        // the correct bit flips too often to predict.
                        std::uint16_t &ctr = table[index(i, f)];
                        const auto inc = static_cast<std::uint16_t>(
                                ctr + (ctr < max ? 1 : 0));
                        ctr = (f & DecodedTrace::FLAG_CORRECT)
                            ? inc : 0;
                    });
        };
        if (lane.jrs.enhanced)
            runGeometry(std::true_type{});
        else
            runGeometry(std::false_type{});
        break;
      }
      // Full runs route the stateless kinds through
      // runStatelessLane() / the SIMD kernels; these scheduled walks
      // serve the windowed interfaces (runOps under the scalar tier),
      // where the per-op accumulation makes window totals trivially
      // bit-identical to the scalar full engine.
      case SweepLaneKind::SatCounters: {
        const std::uint8_t bit = satBitFor(lane.satVariant);
        const std::uint8_t *vals = lane.chan->u8.data();
        walkBlock(lane.stats, lane.allQ, lane.committedQ, sweep, t,
                  ops, n,
                  [vals, bit](std::size_t i, std::uint8_t, unsigned &) {
                      return (vals[i] & bit) != 0;
                  },
                  [](std::size_t, std::uint8_t) {});
        break;
      }
      case SweepLaneKind::Pattern: {
        const std::uint8_t *vals = lane.chan->u8.data();
        walkBlock(lane.stats, lane.allQ, lane.committedQ, sweep, t,
                  ops, n,
                  [vals](std::size_t i, std::uint8_t, unsigned &) {
                      return vals[i] != 0;
                  },
                  [](std::size_t, std::uint8_t) {});
        break;
      }
      case SweepLaneKind::Channel: {
        const unsigned threshold = lane.chanThreshold;
        if (lane.chan == nullptr) {
            walkBlock(lane.stats, lane.allQ, lane.committedQ, sweep, t,
                      ops, n,
                      [threshold](std::size_t, std::uint8_t,
                                  unsigned &) {
                          return 0u >= threshold;
                      },
                      [](std::size_t, std::uint8_t) {});
            break;
        }
        const InputChannel *chan = lane.chan;
        walkBlock(lane.stats, lane.allQ, lane.committedQ, sweep, t,
                  ops, n,
                  [chan, threshold](std::size_t i, std::uint8_t,
                                    unsigned &level) {
                      const std::uint64_t v = chan->value(i);
                      level = static_cast<unsigned>(
                              std::min<std::uint64_t>(v, 65535u));
                      return v >= threshold;
                  },
                  [](std::size_t, std::uint8_t) {});
        break;
      }
      case SweepLaneKind::Virtual:
        walkBlock(
                lane.stats, lane.allQ, lane.committedQ, sweep, t,
                ops, n,
                [&t, &lane](std::size_t i, std::uint8_t,
                            unsigned &level) {
                    if (lane.levelSrc != nullptr)
                        level = std::min(
                                lane.levelSrc->readLevel(t.pc[i],
                                                         t.info[i]),
                                65535u);
                    return lane.est->estimate(t.pc[i], t.info[i]);
                },
                [&t, &lane](std::size_t i, std::uint8_t f) {
                    lane.est->update(
                            t.pc[i],
                            (f & DecodedTrace::FLAG_TAKEN) != 0,
                            (f & DecodedTrace::FLAG_CORRECT) != 0,
                            t.info[i]);
                });
        break;
    }
}

void
BatchReplayer::runStatelessLane(Lane &lane)
{
    const DecodedTrace &t = *src;
    LevelSweep *sweep = lane.sweepLevels ? &lane.sweep : nullptr;

    switch (lane.kind) {
      case SweepLaneKind::SatCounters: {
        const std::uint8_t bit = satBitFor(lane.satVariant);
        const std::uint8_t *vals = lane.chan->u8.data();
        linearPass(lane.stats, lane.allQ, lane.committedQ, sweep, t,
                   [vals, bit](std::size_t i, unsigned &) {
                       return (vals[i] & bit) != 0;
                   });
        break;
      }
      case SweepLaneKind::Pattern: {
        const std::uint8_t *vals = lane.chan->u8.data();
        linearPass(lane.stats, lane.allQ, lane.committedQ, sweep, t,
                   [vals](std::size_t i, unsigned &) {
                       return vals[i] != 0;
                   });
        break;
      }
      case SweepLaneKind::Channel: {
        const unsigned threshold = lane.chanThreshold;
        if (lane.chan == nullptr) {
            // Absent channel: every value reads 0 (see attach doc).
            linearPass(lane.stats, lane.allQ, lane.committedQ, sweep,
                       t, [threshold](std::size_t, unsigned &) {
                           return 0u >= threshold;
                       });
            break;
        }
        auto runWidth = [&](const auto *vals) {
            linearPass(lane.stats, lane.allQ, lane.committedQ, sweep,
                       t,
                       [vals, threshold](std::size_t i,
                                         unsigned &level) {
                           const std::uint64_t v = vals[i];
                           level = static_cast<unsigned>(
                                   std::min<std::uint64_t>(v, 65535u));
                           return v >= threshold;
                       });
        };
        switch (lane.chan->width) {
          case InputWidth::U8:
            runWidth(lane.chan->u8.data());
            break;
          case InputWidth::U16:
            runWidth(lane.chan->u16.data());
            break;
          case InputWidth::U32:
            runWidth(lane.chan->u32.data());
            break;
          case InputWidth::U64:
            runWidth(lane.chan->u64.data());
            break;
        }
        break;
      }
      case SweepLaneKind::Jrs:
      case SweepLaneKind::Virtual:
        // Stateful: walked per block via runLaneBlock().
        break;
    }
}

bool
BatchReplayer::runPredictorBlock(const std::uint32_t *ops,
                                 std::size_t n, std::uint64_t &fetched,
                                 std::string *error)
{
    const DecodedTrace &t = *src;
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t op = ops[k];
        const std::size_t i = op >> 1;
        if (op & 1u) {
            const BpInfo live = predictor->predict(t.pc[i]);
            if (live.predTaken != t.info[i].predTaken) {
                if (error != nullptr)
                    *error = "replay predictor diverged from trace at "
                             "branch " + std::to_string(fetched)
                             + " (predictor kind/config mismatch?)";
                return false;
            }
            ++fetched;
        } else if (t.flags[i] & DecodedTrace::FLAG_COMMIT) {
            predictor->update(t.pc[i],
                              (t.flags[i] & DecodedTrace::FLAG_TAKEN)
                                  != 0,
                              t.info[i]);
        }
    }
    return true;
}

bool
BatchReplayer::run(std::string *error)
{
    for (Lane &lane : lanes)
        resetLane(lane);

    const KernelDispatch d = kernelDispatch();
    if (d == KernelDispatch::Scalar)
        return runScalar(error);
    return runVector(d, error);
}

void
BatchReplayer::resetLanes()
{
    for (Lane &lane : lanes)
        resetLane(lane);
}

void
BatchReplayer::rebind(std::shared_ptr<const DecodedTrace> trace)
{
    if (!trace)
        panic("BatchReplayer::rebind: null trace");
    src = std::move(trace);
    for (Lane &lane : lanes) {
        if (lane.chanName.empty())
            continue;
        lane.chan = src->findChannel(lane.chanName);
        if (lane.chan == nullptr
            && lane.kind != SweepLaneKind::Channel)
            fatal("BatchReplayer::rebind: trace chunk lacks the '"
                  + lane.chanName + "' input channel");
    }
}

void
BatchReplayer::runLaneOpsScheduled(Lane &lane, std::size_t opBegin,
                                   std::size_t opEnd)
{
    const std::uint32_t *sched = src->schedule.data();
    for (std::size_t base = opBegin; base < opEnd; base += BLOCK_OPS) {
        const std::size_t n = std::min(BLOCK_OPS, opEnd - base);
        runLaneBlock(lane, sched + base, n);
    }
}

bool
BatchReplayer::runOps(std::size_t opBegin, std::size_t opEnd,
                      std::string *error)
{
    if (predictor != nullptr) {
        if (error != nullptr)
            *error = "runOps does not support an attached predictor";
        return false;
    }
    opEnd = std::min(opEnd, src->schedule.size());
    if (opBegin >= opEnd)
        return true;

    const KernelDispatch d = kernelDispatch();
    bool anyStateless = false;
    for (Lane &lane : lanes) {
        const bool stateful = lane.kind == SweepLaneKind::Jrs
                              || lane.kind == SweepLaneKind::Virtual;
        if (stateful || d == KernelDispatch::Scalar)
            runLaneOpsScheduled(lane, opBegin, opEnd);
        else
            anyStateless = true;
    }
    if (!anyStateless)
        return true;

    // One shared scan of the window: fetch ops appear in increasing
    // branch order, so the window's fetches cover one contiguous
    // branch range — which is what lets the stateless lanes classify
    // it through the same SIMD kernels as a full run.
    const std::uint32_t *ops = src->schedule.data();
    const std::uint8_t *flags = src->flags.data();
    std::size_t first = 0;
    std::size_t count = 0;
    std::uint64_t updates = 0;
    for (std::size_t k = opBegin; k < opEnd; ++k) {
        const std::uint32_t op = ops[k];
        const std::size_t i = op >> 1;
        if (op & 1u) {
            if (count == 0)
                first = i;
            ++count;
        } else if (flags[i] & DecodedTrace::FLAG_COMMIT) {
            ++updates;
        }
    }

    LaneCounts corr{};
    LaneCounts comm{};
    if (count != 0) {
        corr = countBitU8(d, flags + first, flags + first, count,
                          DecodedTrace::FLAG_CORRECT);
        comm = countBitU8(d, flags + first, flags + first, count,
                          DecodedTrace::FLAG_COMMIT);
    }
    for (Lane &lane : lanes) {
        if (lane.kind == SweepLaneKind::SatCounters
            || lane.kind == SweepLaneKind::Pattern
            || lane.kind == SweepLaneKind::Channel)
            runStatelessLaneRange(lane, d, first, count, corr.high,
                                  comm.high, corr.highCommit, updates);
    }
    return true;
}

bool
BatchReplayer::warmOps(std::size_t opBegin, std::size_t opEnd,
                       std::string *error)
{
    if (predictor != nullptr) {
        if (error != nullptr)
            *error = "warmOps does not support an attached predictor";
        return false;
    }
    opEnd = std::min(opEnd, src->schedule.size());
    if (opBegin >= opEnd)
        return true;

    for (Lane &lane : lanes) {
        if (lane.kind != SweepLaneKind::Jrs
            && lane.kind != SweepLaneKind::Virtual)
            continue; // stateless: nothing to warm
        // Train through the ordinary scheduled walk, then discard
        // everything it accumulated — only the table / estimator
        // state carries forward.
        const ConfidenceEstimator::Stats savedStats = lane.stats;
        const QuadrantCounts savedAll = lane.allQ;
        const QuadrantCounts savedCommitted = lane.committedQ;
        const bool savedSweep = lane.sweepLevels;
        lane.sweepLevels = false;
        runLaneOpsScheduled(lane, opBegin, opEnd);
        lane.sweepLevels = savedSweep;
        lane.stats = savedStats;
        lane.allQ = savedAll;
        lane.committedQ = savedCommitted;
    }
    return true;
}

void
BatchReplayer::runStatelessLaneRange(Lane &lane, KernelDispatch d,
                                     std::size_t first,
                                     std::size_t count,
                                     std::uint64_t corrAll,
                                     std::uint64_t committed,
                                     std::uint64_t corrCommit,
                                     std::uint64_t updates)
{
    const std::uint8_t *flags = src->flags.data() + first;
    LaneCounts k{};
    switch (lane.kind) {
      case SweepLaneKind::SatCounters:
        if (count != 0)
            k = countBitU8(d, lane.chan->u8.data() + first, flags,
                           count, satBitFor(lane.satVariant));
        break;
      case SweepLaneKind::Pattern:
        if (count != 0)
            k = countGeU8(d, lane.chan->u8.data() + first, flags,
                          count, 1);
        break;
      case SweepLaneKind::Channel: {
        if (lane.chan == nullptr) {
            // Absent channel: every value reads 0.
            if (lane.chanThreshold == 0)
                k = LaneCounts{count, corrAll, committed, corrCommit};
            if (lane.sweepLevels) {
                lane.sweep.add(0, true, corrCommit);
                lane.sweep.add(0, false, committed - corrCommit);
            }
            break;
        }
        if (count == 0)
            break;
        const std::uint64_t th = lane.chanThreshold;
        switch (lane.chan->width) {
          case InputWidth::U8:
            k = countGeU8(d, lane.chan->u8.data() + first, flags,
                          count, th);
            break;
          case InputWidth::U16:
            k = countGeU16(d, lane.chan->u16.data() + first, flags,
                           count, th);
            break;
          case InputWidth::U32:
            k = countGeU32(lane.chan->u32.data() + first, flags, count,
                           th);
            break;
          case InputWidth::U64:
            k = countGeU64(lane.chan->u64.data() + first, flags, count,
                           th);
            break;
        }
        if (lane.sweepLevels) {
            // Accumulating histogram (unlike the full run's shared
            // replace): windows must sum across calls.
            const InputChannel *chan = lane.chan;
            for (std::size_t i = 0; i < count; ++i) {
                const std::uint8_t f = flags[i];
                if ((f & DecodedTrace::FLAG_COMMIT) == 0)
                    continue;
                const std::uint64_t v = chan->value(first + i);
                lane.sweep.record(
                        static_cast<unsigned>(
                                std::min<std::uint64_t>(v, 65535u)),
                        (f & DecodedTrace::FLAG_CORRECT) != 0);
            }
        }
        break;
      }
      case SweepLaneKind::Jrs:
      case SweepLaneKind::Virtual:
        return; // stateful: scheduled walk
    }
    applyDerivedCountsRange(lane, k, corrAll, committed, corrCommit,
                            count, count, updates);
}

bool
BatchReplayer::runScalar(std::string *error)
{
    bool anyScheduled = predictor != nullptr;
    for (Lane &lane : lanes) {
        if (lane.kind == SweepLaneKind::SatCounters
            || lane.kind == SweepLaneKind::Pattern
            || lane.kind == SweepLaneKind::Channel)
            runStatelessLane(lane);
        else
            anyScheduled = true;
    }
    if (!anyScheduled)
        return true;

    const ColumnView<std::uint32_t> &sched = src->schedule;
    const std::size_t total = sched.size();
    std::uint64_t fetched = 0;
    for (std::size_t base = 0; base < total; base += BLOCK_OPS) {
        const std::size_t n = std::min(BLOCK_OPS, total - base);
        const std::uint32_t *block = sched.data() + base;
        // Estimators read the recorded BpInfo, never the live
        // predictor, so predictor-before-lanes order within a block
        // cannot affect lane results.
        if (predictor != nullptr
            && !runPredictorBlock(block, n, fetched, error))
            return false;
        for (Lane &lane : lanes) {
            if (lane.kind == SweepLaneKind::Jrs
                || lane.kind == SweepLaneKind::Virtual)
                runLaneBlock(lane, block, n);
        }
    }
    return true;
}

void
BatchReplayer::applyDerivedCounts(Lane &lane, const LaneCounts &counts,
                                  std::uint64_t corrAll,
                                  std::uint64_t committed,
                                  std::uint64_t corrCommit)
{
    applyDerivedCountsRange(lane, counts, corrAll, committed,
                            corrCommit, src->size(),
                            src->counters.branches,
                            src->counters.committedBranches);
}

void
BatchReplayer::applyDerivedCountsRange(Lane &lane,
                                       const LaneCounts &counts,
                                       std::uint64_t corrAll,
                                       std::uint64_t committed,
                                       std::uint64_t corrCommit,
                                       std::uint64_t records,
                                       std::uint64_t branches,
                                       std::uint64_t updates)
{
    // The four kernel counts plus the lane-independent populations
    // (record count, correct, committed, correct&committed) determine
    // every quadrant exactly; all terms are exact integer sums over
    // the same per-branch verdicts the scalar walk bins one at a time.
    const std::uint64_t n = records;
    const std::uint64_t hi = counts.high;
    const std::uint64_t hiCorr = counts.highCorrect;
    const std::uint64_t hiComm = counts.highCommit;
    const std::uint64_t hiCorrComm = counts.highCorrectCommit;
    lane.allQ.chc += hiCorr;
    lane.allQ.ihc += hi - hiCorr;
    lane.allQ.clc += corrAll - hiCorr;
    lane.allQ.ilc += (n - corrAll) - (hi - hiCorr);
    lane.committedQ.chc += hiCorrComm;
    lane.committedQ.ihc += hiComm - hiCorrComm;
    lane.committedQ.clc += corrCommit - hiCorrComm;
    lane.committedQ.ilc += (committed - corrCommit) - (hiComm - hiCorrComm);
    lane.stats.estimates += branches;
    lane.stats.lowEstimates += n - hi;
    lane.stats.updates += updates;
}

bool
BatchReplayer::runVector(KernelDispatch d, std::string *error)
{
    const DecodedTrace &t = *src;
    const std::size_t n = t.size();
    const std::uint8_t *flags = t.flags.data();

    // Lane-independent complements of the kernel counts: classify the
    // flag column against its own correct/commit bits.
    const LaneCounts corr =
        countBitU8(d, flags, flags, n, DecodedTrace::FLAG_CORRECT);
    const LaneCounts comm =
        countBitU8(d, flags, flags, n, DecodedTrace::FLAG_COMMIT);
    const std::uint64_t corrAll = corr.high;
    const std::uint64_t committed = comm.high;
    const std::uint64_t corrCommit = corr.highCommit;

    // Shared committed-level histograms: the (level, correct)
    // histogram of a channel is threshold-independent, so lanes
    // sweeping the same channel share one scalar build.
    std::vector<std::pair<const InputChannel *, LevelSweep>> chanHists;
    auto channelHistogram = [&](const Lane &lane) -> const LevelSweep & {
        for (const auto &entry : chanHists)
            if (entry.first == lane.chan)
                return entry.second;
        LevelSweep h(lane.maxLevel);
        const InputChannel *chan = lane.chan;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t f = flags[i];
            if ((f & DecodedTrace::FLAG_COMMIT) == 0)
                continue;
            const std::uint64_t v = chan->value(i);
            h.record(static_cast<unsigned>(
                             std::min<std::uint64_t>(v, 65535u)),
                     (f & DecodedTrace::FLAG_CORRECT) != 0);
        }
        chanHists.emplace_back(lane.chan, std::move(h));
        return chanHists.back().second;
    };

    bool anyVirtual = false;
    std::vector<Lane *> jrsLanes;
    for (Lane &lane : lanes) {
        switch (lane.kind) {
          case SweepLaneKind::SatCounters:
            applyDerivedCounts(
                    lane,
                    countBitU8(d, lane.chan->u8.data(), flags, n,
                               satBitFor(lane.satVariant)),
                    corrAll, committed, corrCommit);
            break;
          case SweepLaneKind::Pattern:
            // "any confident bit" == value >= 1 on the u8 column.
            applyDerivedCounts(
                    lane,
                    countGeU8(d, lane.chan->u8.data(), flags, n, 1),
                    corrAll, committed, corrCommit);
            break;
          case SweepLaneKind::Channel: {
            LaneCounts k;
            if (lane.chan == nullptr) {
                // Absent channel: every value reads 0.
                if (lane.chanThreshold == 0)
                    k = LaneCounts{n, corrAll, committed, corrCommit};
                if (lane.sweepLevels) {
                    lane.sweep.add(0, true, corrCommit);
                    lane.sweep.add(0, false, committed - corrCommit);
                }
            } else {
                const std::uint64_t th = lane.chanThreshold;
                switch (lane.chan->width) {
                  case InputWidth::U8:
                    k = countGeU8(d, lane.chan->u8.data(), flags, n,
                                  th);
                    break;
                  case InputWidth::U16:
                    k = countGeU16(d, lane.chan->u16.data(), flags, n,
                                   th);
                    break;
                  case InputWidth::U32:
                    k = countGeU32(lane.chan->u32.data(), flags, n,
                                   th);
                    break;
                  case InputWidth::U64:
                    k = countGeU64(lane.chan->u64.data(), flags, n,
                                   th);
                    break;
                }
                if (lane.sweepLevels)
                    lane.sweep = channelHistogram(lane);
            }
            applyDerivedCounts(lane, k, corrAll, committed,
                               corrCommit);
            break;
          }
          case SweepLaneKind::Jrs:
            jrsLanes.push_back(&lane);
            break;
          case SweepLaneKind::Virtual:
            anyVirtual = true;
            break;
        }
    }

    // Predictor and virtual-estimator lanes keep the scheduled block
    // walk: they carry opaque per-object state the kernels cannot
    // reproduce.
    if (predictor != nullptr || anyVirtual) {
        const std::uint32_t *sched = t.schedule.data();
        const std::size_t total = t.schedule.size();
        std::uint64_t fetched = 0;
        for (std::size_t base = 0; base < total; base += BLOCK_OPS) {
            const std::size_t cnt = std::min(BLOCK_OPS, total - base);
            const std::uint32_t *block = sched + base;
            if (predictor != nullptr
                && !runPredictorBlock(block, cnt, fetched, error))
                return false;
            for (Lane &lane : lanes) {
                if (lane.kind == SweepLaneKind::Virtual)
                    runLaneBlock(lane, block, cnt);
            }
        }
    }

    if (jrsLanes.empty())
        return true;

    // Group JRS lanes by table geometry; each group shares one table
    // walk and one level buffer.
    struct Group
    {
        std::size_t entries;
        unsigned bits;
        bool enhanced;
        std::vector<Lane *> members;
        std::vector<std::uint16_t> table;
        std::uint16_t *lvl = nullptr;
    };
    std::vector<Group> groups;
    for (Lane *lane : jrsLanes) {
        Group *g = nullptr;
        for (Group &cand : groups) {
            if (cand.entries == lane->jrs.tableEntries
                && cand.bits == lane->jrs.counterBits
                && cand.enhanced == lane->jrs.enhanced) {
                g = &cand;
                break;
            }
        }
        if (g == nullptr) {
            groups.push_back(Group{lane->jrs.tableEntries,
                                   lane->jrs.counterBits,
                                   lane->jrs.enhanced,
                                   {},
                                   {},
                                   nullptr});
            g = &groups.back();
        }
        g->members.push_back(lane);
    }

    if (levelBufs.size() < groups.size())
        levelBufs.resize(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        levelBufs[gi].resize(n);
        groups[gi].lvl = levelBufs[gi].data();
        groups[gi].table.assign(groups[gi].entries, 0);
    }

    for (std::size_t base = 0; base < groups.size();
         base += JRS_GROUPS_PER_PASS) {
        const std::size_t cnt =
            std::min(JRS_GROUPS_PER_PASS, groups.size() - base);
        JrsGroupWalk walk[JRS_GROUPS_PER_PASS];
        for (std::size_t j = 0; j < cnt; ++j) {
            Group &g = groups[base + j];
            Lane *ref = g.members.front();
            walk[j] = JrsGroupWalk{ref->chan->u64.data(),
                                   g.table.data(),
                                   g.lvl,
                                   static_cast<std::uint64_t>(g.entries)
                                       - 1,
                                   ref->jrsMax,
                                   g.enhanced ? 1u : 0u,
                                   g.enhanced ? 1u : 0u};
        }
        switch (cnt) {
          case 1:
            walkJrsGroups<1>(t, walk);
            break;
          case 2:
            walkJrsGroups<2>(t, walk);
            break;
          case 3:
            walkJrsGroups<3>(t, walk);
            break;
          default:
            walkJrsGroups<4>(t, walk);
            break;
        }
    }

    for (Group &g : groups) {
        bool anySweep = false;
        for (const Lane *lane : g.members)
            anySweep = anySweep || lane->sweepLevels;
        LevelSweep hist(g.members.front()->maxLevel);
        if (anySweep) {
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint8_t f = flags[i];
                if (f & DecodedTrace::FLAG_COMMIT)
                    hist.record(g.lvl[i],
                                (f & DecodedTrace::FLAG_CORRECT) != 0);
            }
        }
        for (Lane *lane : g.members) {
            applyDerivedCounts(*lane,
                               countGeU16(d, g.lvl, flags, n,
                                          lane->jrs.threshold),
                               corrAll, committed, corrCommit);
            if (lane->sweepLevels)
                lane->sweep = hist;
        }
    }
    return true;
}

} // namespace confsim
