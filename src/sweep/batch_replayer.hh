/**
 * @file
 * BatchReplayer: evaluate N estimator configurations in one pass over
 * one DecodedTrace.
 *
 * Each attached configuration is a *lane*. The replayer walks the
 * precomputed operation schedule in cache-sized blocks and, per block,
 * advances every lane — so the shared trace data (ops, flags, input
 * channels) is hot in cache across all lanes while each lane's private
 * table stays resident for the whole block. The hot estimators (JRS,
 * saturating counters, pattern history, predictor-native confidence)
 * run as template-devirtualized kernels whose inner loop is pure table
 * arithmetic over the decode-time estimator-input channels (see
 * bpred/estimator_input.hh): no virtual dispatch, no BranchEvent
 * reconstruction, no per-config distance bookkeeping. Any other
 * ConfidenceEstimator attaches through the virtual fallback lane and
 * is driven through the exact estimate()/update() sequence a
 * TraceReplayer would issue.
 *
 * Results per lane — committed and all-branch quadrants, estimator
 * Stats counters, and (optionally) a LevelSweep over the raw
 * confidence level — are bit-identical to replaying the same
 * configuration alone through TraceReplayer + ConfidenceCollector /
 * LevelCollector: the schedule preserves the estimate/update
 * interleaving exactly, and quadrant/sweep accumulation is
 * order-independent summation.
 *
 * Two equivalent execution strategies back run():
 *  - the scalar path (the always-available fallback, also forced by
 *    CONFSIM_FORCE_SCALAR=1): per-block devirtualized walks exactly as
 *    in earlier revisions;
 *  - the vector path (default): stateless lanes classify whole columns
 *    through the SIMD kernels in sweep/sweep_kernels.hh, and JRS lanes
 *    are regrouped by table geometry — lanes sharing
 *    (entries, bits, enhanced) share one table walk that spills the
 *    per-branch confidence level into a u16 buffer (up to
 *    JRS_GROUPS_PER_PASS geometries advanced per schedule pass), after
 *    which each lane's quadrants reduce to one SIMD >=threshold count
 *    over that buffer. All reductions are exact integer sums over the
 *    same per-branch verdicts, so both paths produce bit-identical
 *    results (guarded by ctests).
 *
 * Not supported (by design): BranchEventSinks. Sinks observe the
 * per-event estimateBits aggregate across estimators, which is a
 * cross-lane property; per-config sweeps never need it, and dropping
 * it is what lets lanes advance independently.
 */

#ifndef CONFSIM_SWEEP_BATCH_REPLAYER_HH
#define CONFSIM_SWEEP_BATCH_REPLAYER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "confidence/estimator.hh"
#include "confidence/jrs.hh"
#include "confidence/sat_counters.hh"
#include "harness/level_sweep.hh" // header-only; no harness link dep
#include "metrics/quadrant.hh"
#include "sweep/decoded_trace.hh"
#include "sweep/sweep_kernels.hh"

namespace confsim
{

/** Lane implementation selector (see attach methods). */
enum class SweepLaneKind
{
    Jrs,         ///< devirtualized JRS resetting-counter kernel
    SatCounters, ///< devirtualized saturating-counters kernel
    Pattern,     ///< devirtualized history-pattern kernel
    Channel,     ///< threshold over any estimator-input channel
    Virtual,     ///< fallback driving a ConfidenceEstimator object
};

/**
 * The batched sweep engine. Attach lanes, then run(); results are read
 * per lane afterwards. run() restarts kernel lanes from power-on state
 * each call; virtual lanes follow TraceReplayer's convention — the
 * attached estimator object keeps its trained state across runs, reset
 * it for independent passes.
 */
class BatchReplayer
{
  public:
    /** @param trace shared immutable decoded trace (zero-copy across
     *         threads and replayers). */
    explicit BatchReplayer(std::shared_ptr<const DecodedTrace> trace);

    /**
     * Attach a devirtualized JRS lane. The trace must carry the
     * "jrs-key" input channel (every classic plugin set does).
     * @param cfg table geometry/threshold (validated like JrsEstimator).
     * @param sweep_levels also record a LevelSweep of raw MDC values
     *        over committed branches (cf. LevelCollector), enabling a
     *        full threshold sweep from this one lane.
     * @return lane index.
     */
    unsigned attachJrs(const JrsConfig &cfg, bool sweep_levels = false);

    /** Attach a devirtualized saturating-counters lane (requires the
     *  "sat-bits" channel).
     *  @return lane index. */
    unsigned attachSatCounters(SatCountersVariant variant);

    /** Attach a devirtualized history-pattern lane (requires the
     *  "pattern-conf" channel).
     *  @return lane index. */
    unsigned attachPattern();

    /**
     * Attach a stateless threshold lane over any estimator-input
     * channel: high confidence iff channel value >= @p threshold, with
     * the raw value as the sweep level. This is how predictor-native
     * confidence ("perc-margin", "tage-conf") enters a sweep. A trace
     * decoded without the channel yields all-zero values — matching
     * what a live NativeConfidenceEstimator sees from a predictor
     * that never sets nativeConf.
     * @param channel channel name to bind.
     * @param threshold high-confidence cut.
     * @param sweep_levels also record a LevelSweep over committed
     *        branches, sized by the channel's declared levelMax.
     * @return lane index.
     */
    unsigned attachChannelThreshold(const std::string &channel,
                                    unsigned threshold,
                                    bool sweep_levels = false);

    /**
     * Attach the virtual fallback lane for any estimator.
     * @param estimator driven exactly as by TraceReplayer (non-owning).
     * @param levels optional level source sampled at fetch; enables
     *        the lane's LevelSweep (committed branches, clamped like
     *        the BranchEvent level fields).
     * @param max_level LevelSweep clamp when @p levels is attached.
     * @return lane index.
     */
    unsigned attachEstimator(ConfidenceEstimator *estimator,
                             const LevelSource *levels = nullptr,
                             unsigned max_level = 64);

    /**
     * Optionally attach a branch predictor, driven through the same
     * predict()/update() sequence as the live run with the same
     * divergence check as TraceReplayer::attachPredictor.
     */
    void attachPredictor(BranchPredictor *predictor);

    /**
     * Replay the trace through every lane.
     * @param error receives a description on predictor divergence.
     * @return false on divergence (lane state is part-replayed).
     */
    bool run(std::string *error = nullptr);

    /**
     * Reset every lane to power-on state (tables cleared, accumulators
     * zeroed). run() does this implicitly; the incremental interfaces
     * below (runOps/warmOps, typically across rebind()s) require one
     * explicit reset up front.
     */
    void resetLanes();

    /**
     * Re-point the replayer at another decoded trace — a later chunk
     * of the same logical stream — re-resolving every lane's input
     * channel by name. Lane state (tables, virtual estimators,
     * accumulated results) is preserved, which is what lets one lane
     * set replay a chunked 10^8..10^9-branch stream that is never
     * materialized whole. A channel a kernel lane depends on must
     * exist in the new trace; a Channel lane's column may be absent
     * (values read as 0, as at attach time).
     */
    void rebind(std::shared_ptr<const DecodedTrace> trace);

    /**
     * Detailed replay of schedule ops [opBegin, opEnd) of the current
     * trace: every lane advances and accumulates exactly as a full
     * run() would over those ops. Stateful lanes take the scalar
     * block walk; stateless lanes classify the ops' branch range
     * through the SIMD kernels (scalar walk under the scalar tier) —
     * both orders sum identically, so windowed totals are
     * bit-identical to the full engine when the windows tile the
     * whole schedule. Does not reset lanes. Not supported with an
     * attached predictor.
     */
    bool runOps(std::size_t opBegin, std::size_t opEnd,
                std::string *error = nullptr);

    /**
     * Functional warm-up over schedule ops [opBegin, opEnd): stateful
     * lanes (JRS tables, virtual estimators) train exactly as in a
     * detailed run, but no results are accumulated — quadrants,
     * stats, and level sweeps are unchanged on return. Stateless
     * lanes have nothing to warm and are skipped entirely, which is
     * what makes skipping cheap. Not supported with an attached
     * predictor.
     */
    bool warmOps(std::size_t opBegin, std::size_t opEnd,
                 std::string *error = nullptr);

    /**
     * Schedule ops per block of the scheduled (predictor / virtual /
     * scalar-path) walks. One block touches at most this many branch
     * records, so the shared trace data a block pulls in stays cached
     * while every lane walks it.
     */
    static constexpr std::size_t BLOCK_OPS = 8192;

    /** Max JRS table geometries advanced per vector-path schedule
     *  pass; geometries beyond this run in further passes. */
    static constexpr std::size_t JRS_GROUPS_PER_PASS = 4;

    /**
     * Pin this replayer to a specific kernel tier instead of the
     * process-wide selectedKernelDispatch() (testing hook; the
     * SIMD-vs-scalar equivalence tests compare every supported tier).
     */
    void setKernelOverride(KernelDispatch d) { kernelOverride = d; }

    /** The kernel tier run() will use. */
    KernelDispatch kernelDispatch() const
    {
        return kernelOverride.value_or(selectedKernelDispatch());
    }

    /** Number of attached lanes. */
    std::size_t laneCount() const { return lanes.size(); }

    /** Committed-branch quadrants of lane @p lane. */
    const QuadrantCounts &committed(unsigned lane) const
    {
        return lanes[lane].committedQ;
    }

    /** All-branch quadrants of lane @p lane. */
    const QuadrantCounts &all(unsigned lane) const
    {
        return lanes[lane].allQ;
    }

    /**
     * Estimator Stats counters of lane @p lane, maintained by the
     * kernel loops; equal to the estimator object's own stats() for a
     * fresh virtual-lane estimator.
     */
    const ConfidenceEstimator::Stats &estimatorStats(unsigned lane) const
    {
        return lanes[lane].stats;
    }

    /** Whether lane @p lane records a LevelSweep. */
    bool hasLevels(unsigned lane) const
    {
        return lanes[lane].sweepLevels;
    }

    /** Committed-branch LevelSweep of lane @p lane (hasLevels only). */
    const LevelSweep &levels(unsigned lane) const
    {
        return lanes[lane].sweep;
    }

    /** Aggregate replay counters (a property of the trace). */
    const ReplayStats &replayStats() const { return src->counters; }

    /** The shared decoded trace. */
    const DecodedTrace &trace() const { return *src; }

  private:
    /**
     * One attached configuration. Cache-line aligned so the mutable
     * accumulator block (stats/quadrants/sweep) of adjacent lanes —
     * and of the last lane and whatever follows the vector — never
     * share a line when shards run on pool threads.
     */
    struct alignas(64) Lane
    {
        SweepLaneKind kind = SweepLaneKind::Virtual;

        /** Bound input channel (owned by the shared trace): the
         *  jrs-key column for Jrs lanes, the sat-bits/pattern-conf
         *  column for the stateless kernels, the named column for
         *  Channel lanes (null = absent, all values read as 0). */
        const InputChannel *chan = nullptr;

        /** Channel name behind @ref chan, kept so rebind() can
         *  re-resolve the column in a new trace chunk (empty for
         *  Virtual lanes, which read BpInfo directly). */
        std::string chanName;

        // JRS kernel state.
        JrsConfig jrs;
        std::uint16_t jrsMax = 0;
        std::vector<std::uint16_t> table;

        // Saturating-counters kernel state.
        SatCountersVariant satVariant = SatCountersVariant::Selected;

        // Channel-threshold kernel state.
        unsigned chanThreshold = 0;

        // Virtual fallback (non-owning).
        ConfidenceEstimator *est = nullptr;
        const LevelSource *levelSrc = nullptr;
        unsigned maxLevel = 0;

        // Per-lane results.
        ConfidenceEstimator::Stats stats;
        QuadrantCounts committedQ;
        QuadrantCounts allQ;
        bool sweepLevels = false;
        LevelSweep sweep{0};
    };

    void resetLane(Lane &lane);
    void runStatelessLane(Lane &lane);
    void runLaneBlock(Lane &lane, const std::uint32_t *ops,
                      std::size_t n);
    void runLaneOpsScheduled(Lane &lane, std::size_t opBegin,
                             std::size_t opEnd);
    void runStatelessLaneRange(Lane &lane, KernelDispatch d,
                               std::size_t first, std::size_t count,
                               std::uint64_t corrAll,
                               std::uint64_t committed,
                               std::uint64_t corrCommit,
                               std::uint64_t updates);
    bool runPredictorBlock(const std::uint32_t *ops, std::size_t n,
                           std::uint64_t &fetched, std::string *error);

    bool runScalar(std::string *error);
    bool runVector(KernelDispatch d, std::string *error);
    void applyDerivedCounts(Lane &lane, const LaneCounts &counts,
                            std::uint64_t corrAll,
                            std::uint64_t committed,
                            std::uint64_t corrCommit);
    void applyDerivedCountsRange(Lane &lane, const LaneCounts &counts,
                                 std::uint64_t corrAll,
                                 std::uint64_t committed,
                                 std::uint64_t corrCommit,
                                 std::uint64_t records,
                                 std::uint64_t branches,
                                 std::uint64_t updates);

    std::shared_ptr<const DecodedTrace> src;
    std::vector<Lane> lanes;
    BranchPredictor *predictor = nullptr;
    std::optional<KernelDispatch> kernelOverride;

    /** Reused per-geometry confidence-level buffers (vector path). */
    std::vector<std::vector<std::uint16_t>> levelBufs;
};

} // namespace confsim

#endif // CONFSIM_SWEEP_BATCH_REPLAYER_HH
