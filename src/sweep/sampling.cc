#include "sweep/sampling.hh"

#include <algorithm>
#include <cmath>

namespace confsim
{

namespace
{

/** splitmix64 finalizer: decorrelates the phase from small seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // anonymous namespace

std::vector<SampleWindow>
layoutSampleWindows(std::uint64_t totalOps, const SamplingPlan &plan,
                    std::uint64_t strideOverride)
{
    std::vector<SampleWindow> windows;
    if (totalOps == 0)
        return windows;
    if (!plan.enabled() || plan.windowOps >= totalOps) {
        windows.push_back(SampleWindow{0, 0, totalOps});
        return windows;
    }
    const std::uint64_t stride = std::max(
            plan.windowOps,
            strideOverride != 0 ? strideOverride : plan.strideOps);
    // Full coverage needs no phase: back-to-back windows tile the
    // trace exactly (the sampled engine then sees every op once).
    const std::uint64_t phase =
        stride == plan.windowOps ? 0 : mix64(plan.seed) % stride;
    for (std::uint64_t start = phase; start < totalOps;
         start += stride) {
        SampleWindow w;
        w.begin = start;
        w.end = std::min(start + plan.windowOps, totalOps);
        w.warmBegin =
            start - std::min<std::uint64_t>(plan.warmupOps, start);
        windows.push_back(w);
    }
    if (windows.empty()) {
        // Phase landed past a short trace: fall back to one trailing
        // window so every layout samples something.
        const std::uint64_t begin =
            totalOps > plan.windowOps ? totalOps - plan.windowOps : 0;
        windows.push_back(SampleWindow{
                begin - std::min<std::uint64_t>(plan.warmupOps, begin),
                begin, totalOps});
    }
    return windows;
}

double
SampledLaneStats::maxHalfWidth() const
{
    double hw = -1.0;
    for (const SampledMetric *m :
         {&mispredictRate, &sens, &spec, &pvp, &pvn}) {
        if (m->defined())
            hw = std::max(hw, m->halfWidth);
    }
    return hw;
}

void
WindowStatAccumulator::reset()
{
    *this = WindowStatAccumulator{};
}

void
WindowStatAccumulator::addWindow(const QuadrantCounts &delta)
{
    pooledQ += delta;
    const std::uint64_t total = delta.total();
    if (total != 0)
        rate.add(delta.ihc + delta.ilc, total);
    if (delta.chc + delta.clc != 0)
        se.add(delta.chc, delta.chc + delta.clc);
    if (delta.ihc + delta.ilc != 0)
        sp.add(delta.ilc, delta.ihc + delta.ilc);
    if (delta.chc + delta.ihc != 0)
        pp.add(delta.chc, delta.chc + delta.ihc);
    if (delta.clc + delta.ilc != 0)
        pn.add(delta.ilc, delta.clc + delta.ilc);
}

SampledMetric
WindowStatAccumulator::finalizeSeries(const Series &s, double fpc)
{
    SampledMetric m;
    m.windows = s.n;
    if (s.n == 0)
        return m; // never observed: undefined interval
    // Pooled ratio over the windows that observed the metric. (For
    // every metric this equals the ratio over the pooled quadrants:
    // windows skipped by the series contribute zero to both sums.)
    const double r = s.sumY / s.sumX;
    m.value = r;
    m.mean = r; // the ratio-estimator CI is centred on the pooled value
    if (fpc == 0.0) {
        // Full coverage: the pooled value is the population value.
        m.halfWidth = 0.0;
        return m;
    }
    if (s.n < 2)
        return m; // one observation: no variance estimate
    // Taylor-linearized ratio-estimator variance: residuals
    // d_i = y_i - r * x_i sum to zero by construction of r, so their
    // sample variance is sum(d_i^2) / (n - 1).
    const double n = static_cast<double>(s.n);
    const double sumD2 = std::max(
            0.0, s.sumYY - 2.0 * r * s.sumXY + r * r * s.sumXX);
    const double varD = sumD2 / (n - 1.0);
    const double meanX = s.sumX / n;
    m.halfWidth =
        SAMPLING_Z99 * std::sqrt(varD / n) / meanX * fpc;
    return m;
}

SampledLaneStats
WindowStatAccumulator::finalize(double sampledFraction) const
{
    const double fpc =
        sampledFraction >= 1.0
            ? 0.0
            : std::sqrt(std::max(0.0, 1.0 - sampledFraction));
    SampledLaneStats out;
    out.mispredictRate = finalizeSeries(rate, fpc);
    out.sens = finalizeSeries(se, fpc);
    out.spec = finalizeSeries(sp, fpc);
    out.pvp = finalizeSeries(pp, fpc);
    out.pvn = finalizeSeries(pn, fpc);
    return out;
}

} // namespace confsim
