/**
 * @file
 * DecodedTrace: structure-of-arrays form of a recorded branch trace,
 * decoded once and shared immutably by every configuration of a
 * batched estimator sweep.
 *
 * A TraceReplayer pass re-derives three things per configuration that
 * are in fact properties of the *trace alone*:
 *
 *  - the record decode (varint/delta decompression),
 *  - the fetch/finalize interleaving (the live pipeline's
 *    resolve-before-fetch schedule, reconstructed from the pending
 *    queue), and
 *  - the four misprediction-distance streams (functions of the
 *    correct/willCommit bits and the schedule only).
 *
 * buildDecodedTrace() computes all three exactly once, plus every
 * *estimator input* — a confidence input that is a pure function of
 * the recorded (pc, BpInfo) — via the trace's EstimatorInputPlugin
 * set (see bpred/estimator_input.hh). Each plugin fills one named,
 * typed InputChannel column; BatchReplayer lanes bind to channels by
 * name, so a sweep over N configurations pays the decode and input
 * derivation once instead of N times and its inner loop touches only
 * contiguous arrays.
 *
 * Schedule encoding: one uint32 per operation, branch index in the
 * high bits, bit 0 set for a fetch (estimate) and clear for a
 * finalization (update/delivery of a previously fetched branch).
 * Replaying the operations in order drives estimators through exactly
 * the estimate/update sequence TraceReplayer produces — that is what
 * makes batched results bit-identical to per-config replay.
 */

#ifndef CONFSIM_SWEEP_DECODED_TRACE_HH
#define CONFSIM_SWEEP_DECODED_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "bpred/estimator_input.hh"
#include "common/types.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_replayer.hh"

namespace confsim
{

/**
 * One SoA column of a DecodedTrace: either an owned std::vector
 * (filled by buildDecodedTrace) or a zero-copy view into external
 * storage (bound from an mmap-ed decoded-trace artifact; the owner
 * parks the backing mapping in DecodedTrace::backing). Exposes just
 * the vector surface the decode/replay code uses, so consumers are
 * oblivious to which mode a column is in.
 */
template <typename T>
class ColumnView
{
  public:
    void reserve(std::size_t count) { own.reserve(count); }

    void push_back(const T &v) { own.push_back(v); }

    /** Point the column at @p count externally-owned elements
     *  (releases any owned storage). */
    void
    bind(const T *p, std::size_t count)
    {
        own.clear();
        own.shrink_to_fit();
        ext = p;
        extLen = count;
    }

    const T *data() const { return ext != nullptr ? ext : own.data(); }

    std::size_t size() const
    {
        return ext != nullptr ? extLen : own.size();
    }

    bool empty() const { return size() == 0; }

    const T &operator[](std::size_t i) const { return data()[i]; }

    const T *begin() const { return data(); }
    const T *end() const { return data() + size(); }

  private:
    std::vector<T> own;
    const T *ext = nullptr;
    std::size_t extLen = 0;
};

/**
 * One decode-time estimator-input column: the values an
 * EstimatorInputPlugin derived for every branch, stored at the
 * plugin's declared width. Exactly one of the u8/u16/u32/u64 vectors
 * (matching `width`) is populated.
 */
struct InputChannel
{
    std::string name;  ///< EstimatorInputPlugin::channel()
    InputWidth width = InputWidth::U8;
    unsigned levelMax = 0; ///< EstimatorInputPlugin::levelMax()

    ColumnView<std::uint8_t> u8;
    ColumnView<std::uint16_t> u16;
    ColumnView<std::uint32_t> u32;
    ColumnView<std::uint64_t> u64;

    /** Generic (width-dispatching) read of branch @p i's value. */
    std::uint64_t
    value(std::size_t i) const
    {
        switch (width) {
          case InputWidth::U8:
            return u8[i];
          case InputWidth::U16:
            return u16[i];
          case InputWidth::U32:
            return u32[i];
          case InputWidth::U64:
            return u64[i];
        }
        return 0;
    }
};

/** Flat, immutable SoA view of one recorded branch stream. */
struct DecodedTrace
{
    /// @name Per-branch outcome flag bits (see flags vector)
    /// @{
    static constexpr std::uint8_t FLAG_TAKEN = 1u << 0;
    static constexpr std::uint8_t FLAG_CORRECT = 1u << 1;
    static constexpr std::uint8_t FLAG_COMMIT = 1u << 2;
    static constexpr std::uint8_t FLAG_PRED_TAKEN = 1u << 3;
    /// @}

    /** Schedule op: branch @p index fetched (estimate point). */
    static constexpr std::uint32_t opFetch(std::size_t index)
    {
        return static_cast<std::uint32_t>((index << 1) | 1u);
    }

    /** Schedule op: branch @p index finalized (update point). */
    static constexpr std::uint32_t opFinalize(std::size_t index)
    {
        return static_cast<std::uint32_t>(index << 1);
    }

    std::string meta; ///< header metadata blob of the source trace

    /// @name Per-branch record fields, indexed in fetch order
    /// @{
    ColumnView<Addr> pc;
    ColumnView<BpInfo> info;
    ColumnView<std::uint8_t> flags; ///< FLAG_* bits above
    ColumnView<Cycle> fetchCycle;
    ColumnView<Cycle> resolveCycle;
    /// @}

    /**
     * Estimator-input columns, one per plugin of the set the trace
     * was decoded with, in plugin order. Kernel lanes bind to these
     * by name (see findChannel) so they never touch the BpInfo array.
     */
    std::vector<InputChannel> channels;

    /**
     * Precomputed fetch/finalize interleaving: 2 * size() ops encoding
     * the exact operation order a TraceReplayer would execute
     * (finalize every pending branch whose resolve cycle is at or
     * before the next fetch cycle, then fetch; drain at the end).
     */
    ColumnView<std::uint32_t> schedule;

    /// @name Precomputed per-branch misprediction distances
    /// The value BranchEvent would carry at this branch's fetch,
    /// following the pipeline's exact bookkeeping rules (precise
    /// distances advance/reset at fetch, perceived distances reset at
    /// the finalization of a committed mispredict).
    /// @{
    ColumnView<std::uint64_t> preciseDistAll;
    ColumnView<std::uint64_t> preciseDistCommitted;
    ColumnView<std::uint64_t> perceivedDistAll;
    ColumnView<std::uint64_t> perceivedDistCommitted;
    /// @}

    /** Aggregate counters, identical to a TraceReplayer pass's. */
    ReplayStats counters;

    /**
     * When the columns were bound zero-copy from an mmap-ed artifact,
     * this holds the mapping alive for the trace's lifetime (null for
     * a trace built by buildDecodedTrace).
     */
    std::shared_ptr<const void> backing;

    /** Number of branch records. */
    std::size_t size() const { return pc.size(); }

    /** @return the channel named @p name, or nullptr when the trace
     *  was decoded without a plugin providing it. */
    const InputChannel *findChannel(std::string_view name) const;
};

/**
 * Build the SoA form (schedule, distances, estimator-input channels)
 * from a materialized trace, deriving the channels with the given
 * plugin set (normally the recording predictor's
 * estimatorInputPlugins()).
 * @return false (with @p error set when non-null) if the trace is too
 *         large for 32-bit schedule indices or the plugin set declares
 *         a duplicate channel name.
 */
bool buildDecodedTrace(const BranchTrace &trace,
                       const EstimatorInputPluginSet &plugins,
                       DecodedTrace &out, std::string *error = nullptr);

/** As above with the classic plugin set (sat-bits, pattern-conf,
 *  jrs-key) every predictor shares. */
bool buildDecodedTrace(const BranchTrace &trace, DecodedTrace &out,
                       std::string *error = nullptr);

/** Decode an encoded trace (header + records) and build the SoA form
 *  with the given plugin set.
 *  @return false on malformed input or an oversized trace. */
bool buildDecodedTrace(std::string_view encoded,
                       const EstimatorInputPluginSet &plugins,
                       DecodedTrace &out, std::string *error = nullptr);

/** Decode an encoded trace and build the SoA form with the classic
 *  plugin set. */
bool buildDecodedTrace(std::string_view encoded, DecodedTrace &out,
                       std::string *error = nullptr);

} // namespace confsim

#endif // CONFSIM_SWEEP_DECODED_TRACE_HH
