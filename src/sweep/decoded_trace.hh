/**
 * @file
 * DecodedTrace: structure-of-arrays form of a recorded branch trace,
 * decoded once and shared immutably by every configuration of a
 * batched estimator sweep.
 *
 * A TraceReplayer pass re-derives three things per configuration that
 * are in fact properties of the *trace alone*:
 *
 *  - the record decode (varint/delta decompression),
 *  - the fetch/finalize interleaving (the live pipeline's
 *    resolve-before-fetch schedule, reconstructed from the pending
 *    queue), and
 *  - the four misprediction-distance streams (functions of the
 *    correct/willCommit bits and the schedule only).
 *
 * buildDecodedTrace() computes all three exactly once. The result is
 * flat vectors (pc, BpInfo, outcome flags, cycles, distances) plus a
 * precomputed operation schedule, so a sweep over N configurations
 * pays the decode and bookkeeping once instead of N times and its
 * inner loop touches only contiguous arrays (see BatchReplayer).
 *
 * Schedule encoding: one uint32 per operation, branch index in the
 * high bits, bit 0 set for a fetch (estimate) and clear for a
 * finalization (update/delivery of a previously fetched branch).
 * Replaying the operations in order drives estimators through exactly
 * the estimate/update sequence TraceReplayer produces — that is what
 * makes batched results bit-identical to per-config replay.
 */

#ifndef CONFSIM_SWEEP_DECODED_TRACE_HH
#define CONFSIM_SWEEP_DECODED_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/types.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_replayer.hh"

namespace confsim
{

/** Flat, immutable SoA view of one recorded branch stream. */
struct DecodedTrace
{
    /// @name Per-branch outcome flag bits (see flags vector)
    /// @{
    static constexpr std::uint8_t FLAG_TAKEN = 1u << 0;
    static constexpr std::uint8_t FLAG_CORRECT = 1u << 1;
    static constexpr std::uint8_t FLAG_COMMIT = 1u << 2;
    static constexpr std::uint8_t FLAG_PRED_TAKEN = 1u << 3;
    /// @}

    /// @name Precomputed estimator-input flag bits
    /// Confidence decisions that are pure functions of the recorded
    /// BpInfo are evaluated once at decode time, so the corresponding
    /// kernel lanes read one byte per branch instead of the whole
    /// BpInfo record (see BatchReplayer).
    /// @{
    /// SatCountersVariant::Selected estimate (selected counter strong).
    static constexpr std::uint8_t FLAG_SAT_SELECTED = 1u << 4;
    /// SatCountersVariant::BothStrong estimate.
    static constexpr std::uint8_t FLAG_SAT_BOTH = 1u << 5;
    /// SatCountersVariant::EitherStrong estimate.
    static constexpr std::uint8_t FLAG_SAT_EITHER = 1u << 6;
    /// PatternEstimator confident-pattern estimate.
    static constexpr std::uint8_t FLAG_PATTERN_CONF = 1u << 7;
    /// @}

    /** Schedule op: branch @p index fetched (estimate point). */
    static constexpr std::uint32_t opFetch(std::size_t index)
    {
        return static_cast<std::uint32_t>((index << 1) | 1u);
    }

    /** Schedule op: branch @p index finalized (update point). */
    static constexpr std::uint32_t opFinalize(std::size_t index)
    {
        return static_cast<std::uint32_t>(index << 1);
    }

    std::string meta; ///< header metadata blob of the source trace

    /// @name Per-branch record fields, indexed in fetch order
    /// @{
    std::vector<Addr> pc;
    std::vector<BpInfo> info;
    std::vector<std::uint8_t> flags; ///< FLAG_* bits above
    std::vector<Cycle> fetchCycle;
    std::vector<Cycle> resolveCycle;
    /**
     * Precomputed JRS hash base, (pc >> 2) ^ history with the same
     * global-else-local history selection as JrsEstimator. Every JRS
     * table geometry derives its index from this one value (enhanced
     * variants append FLAG_PRED_TAKEN, then mask), so JRS lanes never
     * touch the BpInfo array.
     */
    std::vector<std::uint64_t> jrsKey;
    /// @}

    /**
     * Precomputed fetch/finalize interleaving: 2 * size() ops encoding
     * the exact operation order a TraceReplayer would execute
     * (finalize every pending branch whose resolve cycle is at or
     * before the next fetch cycle, then fetch; drain at the end).
     */
    std::vector<std::uint32_t> schedule;

    /// @name Precomputed per-branch misprediction distances
    /// The value BranchEvent would carry at this branch's fetch,
    /// following the pipeline's exact bookkeeping rules (precise
    /// distances advance/reset at fetch, perceived distances reset at
    /// the finalization of a committed mispredict).
    /// @{
    std::vector<std::uint64_t> preciseDistAll;
    std::vector<std::uint64_t> preciseDistCommitted;
    std::vector<std::uint64_t> perceivedDistAll;
    std::vector<std::uint64_t> perceivedDistCommitted;
    /// @}

    /** Aggregate counters, identical to a TraceReplayer pass's. */
    ReplayStats counters;

    /** Number of branch records. */
    std::size_t size() const { return pc.size(); }
};

/**
 * Build the SoA form (including schedule and distances) from a
 * materialized trace.
 * @return false (with @p error set when non-null) if the trace is too
 *         large for 32-bit schedule indices.
 */
bool buildDecodedTrace(const BranchTrace &trace, DecodedTrace &out,
                       std::string *error = nullptr);

/** Decode an encoded trace (header + records) and build the SoA form.
 *  @return false on malformed input or an oversized trace. */
bool buildDecodedTrace(std::string_view encoded, DecodedTrace &out,
                       std::string *error = nullptr);

} // namespace confsim

#endif // CONFSIM_SWEEP_DECODED_TRACE_HH
