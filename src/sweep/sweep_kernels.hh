/**
 * @file
 * Data-parallel classification kernels of the batched sweep engine.
 *
 * Every stateless sweep lane — and, since the level-buffer retiling,
 * the per-threshold classification of JRS lanes too — reduces to one
 * question per branch: "is this lane's per-branch value at or above a
 * threshold (or is a given bit set)?", combined with the branch's
 * correct/commit flag bits. The kernels here answer it for a whole
 * column at once and return the four population counts
 *
 *   high, high&correct, high&commit, high&correct&commit
 *
 * from which BatchReplayer derives the full quadrant/stats results
 * with closed-form arithmetic (the complements are properties of the
 * trace: total branches, mispredicts, committed branches). All four
 * counts are exact integer sums, so the derived results are
 * bit-identical to the scalar walk's.
 *
 * Implementations, selected by KernelDispatch:
 *  - Scalar: plain branch-free loop (always available; also the
 *    reference the SIMD paths are tested against).
 *  - Swar: portable std::uint64_t SIMD-within-a-register, 8 (u8) or
 *    4 (u16) branches per step. No intrinsics, endian-safe.
 *  - Sse2: 16 branches per step on x86-64 (baseline ISA, no runtime
 *    feature check needed).
 *  - Avx2: 32 branches per step, guarded by a cpuid check.
 *  - Neon: 16 branches per step on AArch64.
 *
 * selectedKernelDispatch() picks the widest supported tier once per
 * process, honouring two environment overrides:
 *   CONFSIM_FORCE_SCALAR=1   force the scalar kernels (CI lane)
 *   CONFSIM_KERNEL=<name>    force a specific tier (scalar, swar,
 *                            sse2, avx2, neon); an unsupported name
 *                            falls back to the best supported tier.
 */

#ifndef CONFSIM_SWEEP_SWEEP_KERNELS_HH
#define CONFSIM_SWEEP_SWEEP_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace confsim
{

/** Kernel implementation tier (see file comment). */
enum class KernelDispatch
{
    Scalar,
    Swar,
    Sse2,
    Avx2,
    Neon,
};

/** Stable lowercase name of @p d ("scalar", "swar", ...). */
const char *kernelDispatchName(KernelDispatch d);

/** Parse a dispatch name; false (out untouched) when unknown. */
bool kernelDispatchFromName(std::string_view name, KernelDispatch &out);

/** Whether @p d is compiled in *and* supported by this CPU. */
bool kernelDispatchSupported(KernelDispatch d);

/** The widest supported tier on this machine (ignores environment). */
KernelDispatch bestKernelDispatch();

/**
 * The tier the sweep engine uses: bestKernelDispatch() unless the
 * CONFSIM_FORCE_SCALAR / CONFSIM_KERNEL environment overrides apply.
 * Evaluated once per process (first call) and cached.
 */
KernelDispatch selectedKernelDispatch();

/**
 * The four high-confidence population counts of one lane over one
 * column. The complements (low, low&correct, ...) follow from the
 * trace's aggregate counters; see BatchReplayer.
 */
struct LaneCounts
{
    std::uint64_t high = 0;              ///< branches classified high
    std::uint64_t highCorrect = 0;       ///< high and predicted right
    std::uint64_t highCommit = 0;        ///< high and will commit
    std::uint64_t highCorrectCommit = 0; ///< high, right, committing

    bool operator==(const LaneCounts &) const = default;
};

/**
 * Count branches with vals[i] >= threshold over a u8 column.
 * @param flags the DecodedTrace per-branch flag bytes (FLAG_CORRECT
 *        at bit 1, FLAG_COMMIT at bit 2), length @p n like @p vals.
 */
LaneCounts countGeU8(KernelDispatch d, const std::uint8_t *vals,
                     const std::uint8_t *flags, std::size_t n,
                     std::uint64_t threshold);

/** Count branches with vals[i] >= threshold over a u16 column. */
LaneCounts countGeU16(KernelDispatch d, const std::uint16_t *vals,
                      const std::uint8_t *flags, std::size_t n,
                      std::uint64_t threshold);

/** Count branches with (vals[i] & bit) != 0 over a u8 column
 *  (@p bit must have exactly one bit set — the SAT_BIT_* layout). */
LaneCounts countBitU8(KernelDispatch d, const std::uint8_t *vals,
                      const std::uint8_t *flags, std::size_t n,
                      std::uint8_t bit);

/** Count branches with vals[i] >= threshold over a u32 column
 *  (scalar; wide key-valued columns are never lane-hot). */
LaneCounts countGeU32(const std::uint32_t *vals,
                      const std::uint8_t *flags, std::size_t n,
                      std::uint64_t threshold);

/** As countGeU32 for a u64 column. */
LaneCounts countGeU64(const std::uint64_t *vals,
                      const std::uint8_t *flags, std::size_t n,
                      std::uint64_t threshold);

} // namespace confsim

#endif // CONFSIM_SWEEP_SWEEP_KERNELS_HH
