#include "sweep/sweep_kernels.hh"

#include <cstdlib>
#include <cstring>

#include "sweep/decoded_trace.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define CONFSIM_KERNELS_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#define CONFSIM_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace confsim
{
namespace
{

static_assert(DecodedTrace::FLAG_CORRECT == 2,
              "kernels extract the correct flag from bit 1");
static_assert(DecodedTrace::FLAG_COMMIT == 4,
              "kernels extract the commit flag from bit 2");

// ---------------------------------------------------------------------------
// Scalar reference kernels (branch-free; also the tail handler for the
// wide kernels, so the SIMD paths stay exact on any length).
// ---------------------------------------------------------------------------

template <typename V, typename Classify>
inline void accumulateScalar(LaneCounts &c, const V *vals,
                             const std::uint8_t *flags, std::size_t begin,
                             std::size_t end, Classify classify)
{
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint64_t hi = classify(vals[i]) ? 1 : 0;
        const std::uint64_t corr = (flags[i] >> 1) & 1;
        const std::uint64_t comm = (flags[i] >> 2) & 1;
        c.high += hi;
        c.highCorrect += hi & corr;
        c.highCommit += hi & comm;
        c.highCorrectCommit += hi & corr & comm;
    }
}

// ---------------------------------------------------------------------------
// SWAR kernels: 8 (u8) / 4 (u16) branches per 64-bit step. The classic
// parallel-compare trick adds a per-byte constant and reads the carry out
// of the high bit; masking the high bits first (lo = x & ~H) keeps every
// per-byte sum <= 254 so no carry can pollute the neighbouring byte.
// ---------------------------------------------------------------------------

constexpr std::uint64_t REP8_01 = 0x0101010101010101ull;
constexpr std::uint64_t REP8_80 = 0x8080808080808080ull;
constexpr std::uint64_t REP16_0001 = 0x0001000100010001ull;
constexpr std::uint64_t REP16_8000 = 0x8000800080008000ull;

inline std::uint64_t load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/// 0x01 in every byte of the result where the byte of x is >= t (t <= 255).
inline std::uint64_t swarGeBytes(std::uint64_t x, std::uint64_t t)
{
    if (t == 0)
        return REP8_01;
    const std::uint64_t lo = x & ~REP8_80;
    if (t <= 128) {
        // lo + (128 - t) reaches 128 (the spare high bit) iff lo >= t - 0x80
        // fast path; bytes already >= 128 are trivially >= t.
        const std::uint64_t add = (128 - t) * REP8_01;
        return (((lo + add) | x) & REP8_80) >> 7;
    }
    // t in [129, 255]: need the high bit set AND lo >= t - 128.
    const std::uint64_t add = (256 - t) * REP8_01;
    return (((lo + add) & x) & REP8_80) >> 7;
}

/// 0x0001 in every 16-bit lane of the result where the lane of x is >= t
/// (t <= 65535).
inline std::uint64_t swarGeWords(std::uint64_t x, std::uint64_t t)
{
    if (t == 0)
        return REP16_0001;
    const std::uint64_t lo = x & ~REP16_8000;
    if (t <= 32768) {
        const std::uint64_t add = (32768 - t) * REP16_0001;
        return (((lo + add) | x) & REP16_8000) >> 15;
    }
    const std::uint64_t add = (65536 - t) * REP16_0001;
    return (((lo + add) & x) & REP16_8000) >> 15;
}

inline void swarAccumulate8(LaneCounts &c, std::uint64_t hi01,
                            std::uint64_t f)
{
    // hi01 holds 0x00/0x01 bytes; popcount over ANDed 0x01-byte masks
    // counts matching byte positions.
    const std::uint64_t corr01 = (f >> 1) & REP8_01;
    const std::uint64_t comm01 = (f >> 2) & REP8_01;
    c.high += static_cast<std::uint64_t>(__builtin_popcountll(hi01));
    c.highCorrect +=
        static_cast<std::uint64_t>(__builtin_popcountll(hi01 & corr01));
    c.highCommit +=
        static_cast<std::uint64_t>(__builtin_popcountll(hi01 & comm01));
    c.highCorrectCommit += static_cast<std::uint64_t>(
        __builtin_popcountll(hi01 & corr01 & comm01));
}

LaneCounts countGeU8Swar(const std::uint8_t *vals, const std::uint8_t *flags,
                         std::size_t n, std::uint64_t t)
{
    LaneCounts c;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        swarAccumulate8(c, swarGeBytes(load64(vals + i), t),
                        load64(flags + i));
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint8_t v) { return v >= t; });
    return c;
}

LaneCounts countBitU8Swar(const std::uint8_t *vals, const std::uint8_t *flags,
                          std::size_t n, std::uint8_t bit)
{
    LaneCounts c;
    unsigned shift = 0;
    while ((bit >> shift) != 1)
        ++shift;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const std::uint64_t hi01 = (load64(vals + i) >> shift) & REP8_01;
        swarAccumulate8(c, hi01, load64(flags + i));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [bit](std::uint8_t v) { return (v & bit) != 0; });
    return c;
}

LaneCounts countGeU16Swar(const std::uint16_t *vals,
                          const std::uint8_t *flags, std::size_t n,
                          std::uint64_t t)
{
    LaneCounts c;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // Assemble lanes explicitly so lane k always sits at bits
        // [16k, 16k+16) regardless of host endianness.
        const std::uint64_t x = static_cast<std::uint64_t>(vals[i]) |
                                (static_cast<std::uint64_t>(vals[i + 1])
                                 << 16) |
                                (static_cast<std::uint64_t>(vals[i + 2])
                                 << 32) |
                                (static_cast<std::uint64_t>(vals[i + 3])
                                 << 48);
        const std::uint64_t hi = swarGeWords(x, t);
        const std::uint64_t corr =
            (static_cast<std::uint64_t>((flags[i] >> 1) & 1)) |
            (static_cast<std::uint64_t>((flags[i + 1] >> 1) & 1) << 16) |
            (static_cast<std::uint64_t>((flags[i + 2] >> 1) & 1) << 32) |
            (static_cast<std::uint64_t>((flags[i + 3] >> 1) & 1) << 48);
        const std::uint64_t comm =
            (static_cast<std::uint64_t>((flags[i] >> 2) & 1)) |
            (static_cast<std::uint64_t>((flags[i + 1] >> 2) & 1) << 16) |
            (static_cast<std::uint64_t>((flags[i + 2] >> 2) & 1) << 32) |
            (static_cast<std::uint64_t>((flags[i + 3] >> 2) & 1) << 48);
        c.high += static_cast<std::uint64_t>(__builtin_popcountll(hi));
        c.highCorrect +=
            static_cast<std::uint64_t>(__builtin_popcountll(hi & corr));
        c.highCommit +=
            static_cast<std::uint64_t>(__builtin_popcountll(hi & comm));
        c.highCorrectCommit += static_cast<std::uint64_t>(
            __builtin_popcountll(hi & corr & comm));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint16_t v) { return v >= t; });
    return c;
}

// ---------------------------------------------------------------------------
// x86 kernels.
// ---------------------------------------------------------------------------

#if CONFSIM_KERNELS_X86

inline void maskAccumulate(LaneCounts &c, std::uint32_t hiM,
                           std::uint32_t corrM, std::uint32_t commM)
{
    c.high += static_cast<std::uint64_t>(__builtin_popcount(hiM));
    c.highCorrect += static_cast<std::uint64_t>(__builtin_popcount(hiM & corrM));
    c.highCommit += static_cast<std::uint64_t>(__builtin_popcount(hiM & commM));
    c.highCorrectCommit +=
        static_cast<std::uint64_t>(__builtin_popcount(hiM & corrM & commM));
}

LaneCounts countGeU8Sse2(const std::uint8_t *vals, const std::uint8_t *flags,
                         std::size_t n, std::uint64_t t)
{
    LaneCounts c;
    const __m128i vt = _mm_set1_epi8(static_cast<char>(t));
    const __m128i corrBit = _mm_set1_epi8(2);
    const __m128i commBit = _mm_set1_epi8(4);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(vals + i));
        const __m128i f =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(flags + i));
        // max_epu8(x, t) == x  <=>  x >= t (unsigned).
        const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(x, vt), x);
        const __m128i corr = _mm_cmpeq_epi8(_mm_and_si128(f, corrBit), corrBit);
        const __m128i comm = _mm_cmpeq_epi8(_mm_and_si128(f, commBit), commBit);
        maskAccumulate(c, static_cast<std::uint32_t>(_mm_movemask_epi8(ge)),
                       static_cast<std::uint32_t>(_mm_movemask_epi8(corr)),
                       static_cast<std::uint32_t>(_mm_movemask_epi8(comm)));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint8_t v) { return v >= t; });
    return c;
}

LaneCounts countBitU8Sse2(const std::uint8_t *vals, const std::uint8_t *flags,
                          std::size_t n, std::uint8_t bit)
{
    LaneCounts c;
    const __m128i vb = _mm_set1_epi8(static_cast<char>(bit));
    const __m128i corrBit = _mm_set1_epi8(2);
    const __m128i commBit = _mm_set1_epi8(4);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(vals + i));
        const __m128i f =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(flags + i));
        const __m128i hi = _mm_cmpeq_epi8(_mm_and_si128(x, vb), vb);
        const __m128i corr = _mm_cmpeq_epi8(_mm_and_si128(f, corrBit), corrBit);
        const __m128i comm = _mm_cmpeq_epi8(_mm_and_si128(f, commBit), commBit);
        maskAccumulate(c, static_cast<std::uint32_t>(_mm_movemask_epi8(hi)),
                       static_cast<std::uint32_t>(_mm_movemask_epi8(corr)),
                       static_cast<std::uint32_t>(_mm_movemask_epi8(comm)));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [bit](std::uint8_t v) { return (v & bit) != 0; });
    return c;
}

LaneCounts countGeU16Sse2(const std::uint16_t *vals,
                          const std::uint8_t *flags, std::size_t n,
                          std::uint64_t t)
{
    LaneCounts c;
    // SSE2 has no unsigned 16-bit max/compare; use saturating subtract:
    // sat(t - x) == 0  <=>  x >= t.
    const __m128i vt = _mm_set1_epi16(static_cast<short>(t));
    const __m128i zero = _mm_setzero_si128();
    const __m128i corrBit = _mm_set1_epi8(2);
    const __m128i commBit = _mm_set1_epi8(4);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(vals + i));
        const __m128i x1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(vals + i + 8));
        const __m128i m0 = _mm_cmpeq_epi16(_mm_subs_epu16(vt, x0), zero);
        const __m128i m1 = _mm_cmpeq_epi16(_mm_subs_epu16(vt, x1), zero);
        // packs is order-preserving within 128 bits: byte k = lane k verdict.
        const __m128i ge = _mm_packs_epi16(m0, m1);
        const __m128i f =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(flags + i));
        const __m128i corr = _mm_cmpeq_epi8(_mm_and_si128(f, corrBit), corrBit);
        const __m128i comm = _mm_cmpeq_epi8(_mm_and_si128(f, commBit), commBit);
        maskAccumulate(c, static_cast<std::uint32_t>(_mm_movemask_epi8(ge)),
                       static_cast<std::uint32_t>(_mm_movemask_epi8(corr)),
                       static_cast<std::uint32_t>(_mm_movemask_epi8(comm)));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint16_t v) { return v >= t; });
    return c;
}

__attribute__((target("avx2"))) LaneCounts
countGeU8Avx2(const std::uint8_t *vals, const std::uint8_t *flags,
              std::size_t n, std::uint64_t t)
{
    LaneCounts c;
    const __m256i vt = _mm256_set1_epi8(static_cast<char>(t));
    const __m256i corrBit = _mm256_set1_epi8(2);
    const __m256i commBit = _mm256_set1_epi8(4);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(vals + i));
        const __m256i f =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(flags + i));
        const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x, vt), x);
        const __m256i corr =
            _mm256_cmpeq_epi8(_mm256_and_si256(f, corrBit), corrBit);
        const __m256i comm =
            _mm256_cmpeq_epi8(_mm256_and_si256(f, commBit), commBit);
        maskAccumulate(c, static_cast<std::uint32_t>(_mm256_movemask_epi8(ge)),
                       static_cast<std::uint32_t>(_mm256_movemask_epi8(corr)),
                       static_cast<std::uint32_t>(_mm256_movemask_epi8(comm)));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint8_t v) { return v >= t; });
    return c;
}

__attribute__((target("avx2"))) LaneCounts
countBitU8Avx2(const std::uint8_t *vals, const std::uint8_t *flags,
               std::size_t n, std::uint8_t bit)
{
    LaneCounts c;
    const __m256i vb = _mm256_set1_epi8(static_cast<char>(bit));
    const __m256i corrBit = _mm256_set1_epi8(2);
    const __m256i commBit = _mm256_set1_epi8(4);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(vals + i));
        const __m256i f =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(flags + i));
        const __m256i hi = _mm256_cmpeq_epi8(_mm256_and_si256(x, vb), vb);
        const __m256i corr =
            _mm256_cmpeq_epi8(_mm256_and_si256(f, corrBit), corrBit);
        const __m256i comm =
            _mm256_cmpeq_epi8(_mm256_and_si256(f, commBit), commBit);
        maskAccumulate(c, static_cast<std::uint32_t>(_mm256_movemask_epi8(hi)),
                       static_cast<std::uint32_t>(_mm256_movemask_epi8(corr)),
                       static_cast<std::uint32_t>(_mm256_movemask_epi8(comm)));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [bit](std::uint8_t v) { return (v & bit) != 0; });
    return c;
}

__attribute__((target("avx2"))) LaneCounts
countGeU16Avx2(const std::uint16_t *vals, const std::uint8_t *flags,
               std::size_t n, std::uint64_t t)
{
    LaneCounts c;
    const __m256i vt = _mm256_set1_epi16(static_cast<short>(t));
    const __m256i corrBit = _mm256_set1_epi8(2);
    const __m256i commBit = _mm256_set1_epi8(4);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(vals + i));
        const __m256i x1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(vals + i + 16));
        const __m256i m0 = _mm256_cmpeq_epi16(_mm256_max_epu16(x0, vt), x0);
        const __m256i m1 = _mm256_cmpeq_epi16(_mm256_max_epu16(x1, vt), x1);
        // packs interleaves 128-bit halves (a0 b0 a1 b1); permute the
        // 64-bit quadrants back to linear order before movemask.
        const __m256i packed = _mm256_packs_epi16(m0, m1);
        const __m256i ge =
            _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 1, 2, 0));
        const __m256i f =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(flags + i));
        const __m256i corr =
            _mm256_cmpeq_epi8(_mm256_and_si256(f, corrBit), corrBit);
        const __m256i comm =
            _mm256_cmpeq_epi8(_mm256_and_si256(f, commBit), commBit);
        maskAccumulate(c, static_cast<std::uint32_t>(_mm256_movemask_epi8(ge)),
                       static_cast<std::uint32_t>(_mm256_movemask_epi8(corr)),
                       static_cast<std::uint32_t>(_mm256_movemask_epi8(comm)));
    }
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint16_t v) { return v >= t; });
    return c;
}

#endif // CONFSIM_KERNELS_X86

// ---------------------------------------------------------------------------
// AArch64 NEON kernels.
// ---------------------------------------------------------------------------

#if CONFSIM_KERNELS_NEON

inline void neonAccumulate(LaneCounts &c, uint8x16_t hi, uint8x16_t corr,
                           uint8x16_t comm)
{
    // hi/corr/comm hold 0x01/0x00 bytes; horizontal add counts them.
    c.high += vaddvq_u8(hi);
    c.highCorrect += vaddvq_u8(vandq_u8(hi, corr));
    c.highCommit += vaddvq_u8(vandq_u8(hi, comm));
    c.highCorrectCommit += vaddvq_u8(vandq_u8(vandq_u8(hi, corr), comm));
}

LaneCounts countGeU8Neon(const std::uint8_t *vals, const std::uint8_t *flags,
                         std::size_t n, std::uint64_t t)
{
    LaneCounts c;
    const uint8x16_t vt = vdupq_n_u8(static_cast<std::uint8_t>(t));
    const uint8x16_t one = vdupq_n_u8(1);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t x = vld1q_u8(vals + i);
        const uint8x16_t f = vld1q_u8(flags + i);
        const uint8x16_t hi = vandq_u8(vcgeq_u8(x, vt), one);
        const uint8x16_t corr = vandq_u8(vshrq_n_u8(f, 1), one);
        const uint8x16_t comm = vandq_u8(vshrq_n_u8(f, 2), one);
        neonAccumulate(c, hi, corr, comm);
    }
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint8_t v) { return v >= t; });
    return c;
}

LaneCounts countBitU8Neon(const std::uint8_t *vals, const std::uint8_t *flags,
                          std::size_t n, std::uint8_t bit)
{
    LaneCounts c;
    const uint8x16_t vb = vdupq_n_u8(bit);
    const uint8x16_t one = vdupq_n_u8(1);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t x = vld1q_u8(vals + i);
        const uint8x16_t f = vld1q_u8(flags + i);
        const uint8x16_t hi = vandq_u8(vtstq_u8(x, vb), one);
        const uint8x16_t corr = vandq_u8(vshrq_n_u8(f, 1), one);
        const uint8x16_t comm = vandq_u8(vshrq_n_u8(f, 2), one);
        neonAccumulate(c, hi, corr, comm);
    }
    accumulateScalar(c, vals, flags, i, n,
                     [bit](std::uint8_t v) { return (v & bit) != 0; });
    return c;
}

LaneCounts countGeU16Neon(const std::uint16_t *vals,
                          const std::uint8_t *flags, std::size_t n,
                          std::uint64_t t)
{
    LaneCounts c;
    const uint16x8_t vt = vdupq_n_u16(static_cast<std::uint16_t>(t));
    const uint16x8_t one16 = vdupq_n_u16(1);
    const uint8x16_t one8 = vdupq_n_u8(1);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint16x8_t m0 =
            vandq_u16(vcgeq_u16(vld1q_u16(vals + i), vt), one16);
        const uint16x8_t m1 =
            vandq_u16(vcgeq_u16(vld1q_u16(vals + i + 8), vt), one16);
        const uint8x16_t hi = vcombine_u8(vmovn_u16(m0), vmovn_u16(m1));
        const uint8x16_t f = vld1q_u8(flags + i);
        const uint8x16_t corr = vandq_u8(vshrq_n_u8(f, 1), one8);
        const uint8x16_t comm = vandq_u8(vshrq_n_u8(f, 2), one8);
        neonAccumulate(c, hi, corr, comm);
    }
    accumulateScalar(c, vals, flags, i, n,
                     [t](std::uint16_t v) { return v >= t; });
    return c;
}

#endif // CONFSIM_KERNELS_NEON

bool cpuHasAvx2()
{
#if CONFSIM_KERNELS_X86
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

} // namespace

const char *kernelDispatchName(KernelDispatch d)
{
    switch (d) {
    case KernelDispatch::Scalar:
        return "scalar";
    case KernelDispatch::Swar:
        return "swar";
    case KernelDispatch::Sse2:
        return "sse2";
    case KernelDispatch::Avx2:
        return "avx2";
    case KernelDispatch::Neon:
        return "neon";
    }
    return "scalar";
}

bool kernelDispatchFromName(std::string_view name, KernelDispatch &out)
{
    if (name == "scalar")
        out = KernelDispatch::Scalar;
    else if (name == "swar")
        out = KernelDispatch::Swar;
    else if (name == "sse2")
        out = KernelDispatch::Sse2;
    else if (name == "avx2")
        out = KernelDispatch::Avx2;
    else if (name == "neon")
        out = KernelDispatch::Neon;
    else
        return false;
    return true;
}

bool kernelDispatchSupported(KernelDispatch d)
{
    switch (d) {
    case KernelDispatch::Scalar:
    case KernelDispatch::Swar:
        return true;
    case KernelDispatch::Sse2:
#if CONFSIM_KERNELS_X86
        return true;
#else
        return false;
#endif
    case KernelDispatch::Avx2:
        return cpuHasAvx2();
    case KernelDispatch::Neon:
#if CONFSIM_KERNELS_NEON
        return true;
#else
        return false;
#endif
    }
    return false;
}

KernelDispatch bestKernelDispatch()
{
#if CONFSIM_KERNELS_X86
    return cpuHasAvx2() ? KernelDispatch::Avx2 : KernelDispatch::Sse2;
#elif CONFSIM_KERNELS_NEON
    return KernelDispatch::Neon;
#else
    return KernelDispatch::Swar;
#endif
}

KernelDispatch selectedKernelDispatch()
{
    static const KernelDispatch selected = [] {
        const char *force = std::getenv("CONFSIM_FORCE_SCALAR");
        if (force != nullptr && force[0] == '1' && force[1] == '\0')
            return KernelDispatch::Scalar;
        if (const char *name = std::getenv("CONFSIM_KERNEL")) {
            KernelDispatch d;
            if (kernelDispatchFromName(name, d) && kernelDispatchSupported(d))
                return d;
        }
        return bestKernelDispatch();
    }();
    return selected;
}

LaneCounts countGeU8(KernelDispatch d, const std::uint8_t *vals,
                     const std::uint8_t *flags, std::size_t n,
                     std::uint64_t threshold)
{
    if (threshold > 0xff)
        return {}; // every branch classifies low
    switch (d) {
#if CONFSIM_KERNELS_X86
    case KernelDispatch::Avx2:
        if (cpuHasAvx2())
            return countGeU8Avx2(vals, flags, n, threshold);
        [[fallthrough]];
    case KernelDispatch::Sse2:
        return countGeU8Sse2(vals, flags, n, threshold);
#endif
#if CONFSIM_KERNELS_NEON
    case KernelDispatch::Neon:
        return countGeU8Neon(vals, flags, n, threshold);
#endif
    case KernelDispatch::Swar:
        return countGeU8Swar(vals, flags, n, threshold);
    default:
        break;
    }
    LaneCounts c;
    accumulateScalar(c, vals, flags, 0, n,
                     [threshold](std::uint8_t v) { return v >= threshold; });
    return c;
}

LaneCounts countGeU16(KernelDispatch d, const std::uint16_t *vals,
                      const std::uint8_t *flags, std::size_t n,
                      std::uint64_t threshold)
{
    if (threshold > 0xffff)
        return {};
    switch (d) {
#if CONFSIM_KERNELS_X86
    case KernelDispatch::Avx2:
        if (cpuHasAvx2())
            return countGeU16Avx2(vals, flags, n, threshold);
        [[fallthrough]];
    case KernelDispatch::Sse2:
        return countGeU16Sse2(vals, flags, n, threshold);
#endif
#if CONFSIM_KERNELS_NEON
    case KernelDispatch::Neon:
        return countGeU16Neon(vals, flags, n, threshold);
#endif
    case KernelDispatch::Swar:
        return countGeU16Swar(vals, flags, n, threshold);
    default:
        break;
    }
    LaneCounts c;
    accumulateScalar(c, vals, flags, 0, n,
                     [threshold](std::uint16_t v) { return v >= threshold; });
    return c;
}

LaneCounts countBitU8(KernelDispatch d, const std::uint8_t *vals,
                      const std::uint8_t *flags, std::size_t n,
                      std::uint8_t bit)
{
    if (bit == 0)
        return {}; // (v & 0) is never set
    switch (d) {
#if CONFSIM_KERNELS_X86
    case KernelDispatch::Avx2:
        if (cpuHasAvx2())
            return countBitU8Avx2(vals, flags, n, bit);
        [[fallthrough]];
    case KernelDispatch::Sse2:
        return countBitU8Sse2(vals, flags, n, bit);
#endif
#if CONFSIM_KERNELS_NEON
    case KernelDispatch::Neon:
        return countBitU8Neon(vals, flags, n, bit);
#endif
    case KernelDispatch::Swar:
        return countBitU8Swar(vals, flags, n, bit);
    default:
        break;
    }
    LaneCounts c;
    accumulateScalar(c, vals, flags, 0, n,
                     [bit](std::uint8_t v) { return (v & bit) != 0; });
    return c;
}

LaneCounts countGeU32(const std::uint32_t *vals, const std::uint8_t *flags,
                      std::size_t n, std::uint64_t threshold)
{
    LaneCounts c;
    accumulateScalar(c, vals, flags, 0, n,
                     [threshold](std::uint32_t v) { return v >= threshold; });
    return c;
}

LaneCounts countGeU64(const std::uint64_t *vals, const std::uint8_t *flags,
                      std::size_t n, std::uint64_t threshold)
{
    LaneCounts c;
    accumulateScalar(c, vals, flags, 0, n,
                     [threshold](std::uint64_t v) { return v >= threshold; });
    return c;
}

} // namespace confsim
