#include "sweep/decoded_trace.hh"

#include <algorithm>

namespace confsim
{

namespace
{

/** Per-branch flag byte: the four outcome bits. */
std::uint8_t
recordFlags(const TraceRecord &rec)
{
    std::uint8_t f = 0;
    if (rec.taken)
        f |= DecodedTrace::FLAG_TAKEN;
    if (rec.correct)
        f |= DecodedTrace::FLAG_CORRECT;
    if (rec.willCommit)
        f |= DecodedTrace::FLAG_COMMIT;
    if (rec.info.predTaken)
        f |= DecodedTrace::FLAG_PRED_TAKEN;
    return f;
}

/** Append @p value to the column matching @p chan's width. */
void
channelPush(InputChannel &chan, std::uint64_t value)
{
    switch (chan.width) {
      case InputWidth::U8:
        chan.u8.push_back(static_cast<std::uint8_t>(value));
        break;
      case InputWidth::U16:
        chan.u16.push_back(static_cast<std::uint16_t>(value));
        break;
      case InputWidth::U32:
        chan.u32.push_back(static_cast<std::uint32_t>(value));
        break;
      case InputWidth::U64:
        chan.u64.push_back(value);
        break;
    }
}

} // anonymous namespace

const InputChannel *
DecodedTrace::findChannel(std::string_view name) const
{
    for (const InputChannel &chan : channels) {
        if (chan.name == name)
            return &chan;
    }
    return nullptr;
}

bool
buildDecodedTrace(const BranchTrace &trace,
                  const EstimatorInputPluginSet &plugins,
                  DecodedTrace &out, std::string *error)
{
    const std::size_t n = trace.records.size();
    // Schedule ops carry the branch index in 31 bits.
    if (n >= (std::size_t{1} << 31)) {
        if (error != nullptr)
            *error = "trace too large for a decoded sweep ("
                     + std::to_string(n) + " records)";
        return false;
    }

    out = DecodedTrace{};
    out.meta = trace.meta;
    out.pc.reserve(n);
    out.info.reserve(n);
    out.flags.reserve(n);
    out.fetchCycle.reserve(n);
    out.resolveCycle.reserve(n);
    out.schedule.reserve(2 * n);
    out.preciseDistAll.reserve(n);
    out.preciseDistCommitted.reserve(n);
    out.perceivedDistAll.reserve(n);
    out.perceivedDistCommitted.reserve(n);

    out.channels.reserve(plugins.size());
    for (const auto &plugin : plugins) {
        InputChannel chan;
        chan.name = plugin->channel();
        chan.width = plugin->width();
        chan.levelMax = plugin->levelMax();
        if (out.findChannel(chan.name) != nullptr) {
            if (error != nullptr)
                *error = "duplicate estimator-input channel '"
                         + chan.name + "'";
            return false;
        }
        switch (chan.width) {
          case InputWidth::U8:
            chan.u8.reserve(n);
            break;
          case InputWidth::U16:
            chan.u16.reserve(n);
            break;
          case InputWidth::U32:
            chan.u32.reserve(n);
            break;
          case InputWidth::U64:
            chan.u64.reserve(n);
            break;
        }
        out.channels.push_back(std::move(chan));
    }

    for (const TraceRecord &rec : trace.records) {
        out.pc.push_back(rec.pc);
        out.info.push_back(rec.info);
        out.flags.push_back(recordFlags(rec));
        out.fetchCycle.push_back(rec.fetchCycle);
        out.resolveCycle.push_back(rec.resolveCycle);
        for (std::size_t p = 0; p < plugins.size(); ++p) {
            std::uint64_t v = plugins[p]->derive(rec.pc, rec.info);
            InputChannel &chan = out.channels[p];
            // Clamp level-valued channels so sweep histograms sized
            // by levelMax can never be overrun (levelMax 0 marks a
            // key-valued channel, e.g. the JRS hash base).
            if (chan.levelMax > 0)
                v = std::min<std::uint64_t>(v, chan.levelMax);
            channelPush(chan, v);
        }
    }

    // Reconstruct the fetch/finalize interleaving once. TraceReplayer
    // keeps a FIFO of fetched-but-unresolved branches and, before each
    // fetch, finalizes every front entry whose resolve cycle is at or
    // before the new fetch cycle — so the pending set is always the
    // contiguous index range [front, i).
    //
    // The four distance streams ride along: precise distances advance
    // at fetch from the *actual* outcome, perceived distances advance
    // at fetch but reset only when a committed mispredict finalizes.
    std::uint64_t preciseAll = 0;
    std::uint64_t preciseCommitted = 0;
    std::uint64_t perceivedAll = 0;
    std::uint64_t perceivedCommitted = 0;

    auto finalize = [&](std::size_t f) {
        out.schedule.push_back(DecodedTrace::opFinalize(f));
        const std::uint8_t fl = out.flags[f];
        if ((fl & DecodedTrace::FLAG_COMMIT)
            && !(fl & DecodedTrace::FLAG_CORRECT)) {
            perceivedAll = 0;
            perceivedCommitted = 0;
        }
    };

    std::size_t front = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (front < i
               && out.resolveCycle[front] <= out.fetchCycle[i])
            finalize(front++);

        out.schedule.push_back(DecodedTrace::opFetch(i));

        out.preciseDistAll.push_back(preciseAll + 1);
        out.preciseDistCommitted.push_back(preciseCommitted + 1);
        out.perceivedDistAll.push_back(perceivedAll + 1);
        out.perceivedDistCommitted.push_back(perceivedCommitted + 1);

        const std::uint8_t f = out.flags[i];
        const bool correct = (f & DecodedTrace::FLAG_CORRECT) != 0;
        const bool commits = (f & DecodedTrace::FLAG_COMMIT) != 0;

        ++perceivedAll;
        if (commits)
            ++perceivedCommitted;
        if (correct) {
            ++preciseAll;
            if (commits)
                ++preciseCommitted;
        } else {
            preciseAll = 0;
            if (commits)
                preciseCommitted = 0;
        }

        ++out.counters.branches;
        if (commits)
            ++out.counters.committedBranches;
        if (!correct) {
            ++out.counters.mispredicts;
            if (commits)
                ++out.counters.committedMispredicts;
        }
    }
    while (front < n)
        finalize(front++);

    return true;
}

bool
buildDecodedTrace(const BranchTrace &trace, DecodedTrace &out,
                  std::string *error)
{
    return buildDecodedTrace(trace, classicEstimatorInputPlugins(),
                             out, error);
}

bool
buildDecodedTrace(std::string_view encoded,
                  const EstimatorInputPluginSet &plugins,
                  DecodedTrace &out, std::string *error)
{
    BranchTrace trace;
    if (!decodeTrace(encoded, trace, error))
        return false;
    return buildDecodedTrace(trace, plugins, out, error);
}

bool
buildDecodedTrace(std::string_view encoded, DecodedTrace &out,
                  std::string *error)
{
    BranchTrace trace;
    if (!decodeTrace(encoded, trace, error))
        return false;
    return buildDecodedTrace(trace, out, error);
}

} // namespace confsim
