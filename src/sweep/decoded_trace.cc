#include "sweep/decoded_trace.hh"

#include "confidence/pattern.hh"

namespace confsim
{

namespace
{

/**
 * Per-branch flag byte: outcome bits plus the estimator decisions that
 * depend only on the recorded BpInfo. The saturating-counter variants
 * mirror SatCountersEstimator::doEstimate() and the pattern bit
 * mirrors PatternEstimator::estimate() verbatim — precomputing them
 * here is what lets those kernel lanes run on one byte per branch.
 */
std::uint8_t
recordFlags(const TraceRecord &rec)
{
    const BpInfo &bi = rec.info;
    std::uint8_t f = 0;
    if (rec.taken)
        f |= DecodedTrace::FLAG_TAKEN;
    if (rec.correct)
        f |= DecodedTrace::FLAG_CORRECT;
    if (rec.willCommit)
        f |= DecodedTrace::FLAG_COMMIT;
    if (bi.predTaken)
        f |= DecodedTrace::FLAG_PRED_TAKEN;

    const bool selected_strong =
        bi.counterValue == 0 || bi.counterValue == bi.counterMax;
    if (selected_strong)
        f |= DecodedTrace::FLAG_SAT_SELECTED;
    const bool both = bi.hasComponents
        ? (bi.bimodalStrong && bi.gshareStrong) : selected_strong;
    if (both)
        f |= DecodedTrace::FLAG_SAT_BOTH;
    const bool either = bi.hasComponents
        ? (bi.bimodalStrong || bi.gshareStrong) : selected_strong;
    if (either)
        f |= DecodedTrace::FLAG_SAT_EITHER;

    const bool pattern = bi.localHistoryBits > 0
        ? PatternEstimator::isConfidentPattern(bi.localHistory,
                                               bi.localHistoryBits)
        : PatternEstimator::isConfidentPattern(bi.globalHistory,
                                               bi.globalHistoryBits);
    if (pattern)
        f |= DecodedTrace::FLAG_PATTERN_CONF;
    return f;
}

} // anonymous namespace

bool
buildDecodedTrace(const BranchTrace &trace, DecodedTrace &out,
                  std::string *error)
{
    const std::size_t n = trace.records.size();
    // Schedule ops carry the branch index in 31 bits.
    if (n >= (std::size_t{1} << 31)) {
        if (error != nullptr)
            *error = "trace too large for a decoded sweep ("
                     + std::to_string(n) + " records)";
        return false;
    }

    out = DecodedTrace{};
    out.meta = trace.meta;
    out.pc.reserve(n);
    out.info.reserve(n);
    out.flags.reserve(n);
    out.fetchCycle.reserve(n);
    out.resolveCycle.reserve(n);
    out.jrsKey.reserve(n);
    out.schedule.reserve(2 * n);
    out.preciseDistAll.reserve(n);
    out.preciseDistCommitted.reserve(n);
    out.perceivedDistAll.reserve(n);
    out.perceivedDistCommitted.reserve(n);

    for (const TraceRecord &rec : trace.records) {
        out.pc.push_back(rec.pc);
        out.info.push_back(rec.info);
        out.flags.push_back(recordFlags(rec));
        out.fetchCycle.push_back(rec.fetchCycle);
        out.resolveCycle.push_back(rec.resolveCycle);
        // Same global-else-local history selection as JrsEstimator.
        const std::uint64_t hist = rec.info.globalHistoryBits > 0
            ? rec.info.globalHistory : rec.info.localHistory;
        out.jrsKey.push_back((rec.pc >> 2) ^ hist);
    }

    // Reconstruct the fetch/finalize interleaving once. TraceReplayer
    // keeps a FIFO of fetched-but-unresolved branches and, before each
    // fetch, finalizes every front entry whose resolve cycle is at or
    // before the new fetch cycle — so the pending set is always the
    // contiguous index range [front, i).
    //
    // The four distance streams ride along: precise distances advance
    // at fetch from the *actual* outcome, perceived distances advance
    // at fetch but reset only when a committed mispredict finalizes.
    std::uint64_t preciseAll = 0;
    std::uint64_t preciseCommitted = 0;
    std::uint64_t perceivedAll = 0;
    std::uint64_t perceivedCommitted = 0;

    auto finalize = [&](std::size_t f) {
        out.schedule.push_back(DecodedTrace::opFinalize(f));
        const std::uint8_t fl = out.flags[f];
        if ((fl & DecodedTrace::FLAG_COMMIT)
            && !(fl & DecodedTrace::FLAG_CORRECT)) {
            perceivedAll = 0;
            perceivedCommitted = 0;
        }
    };

    std::size_t front = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (front < i
               && out.resolveCycle[front] <= out.fetchCycle[i])
            finalize(front++);

        out.schedule.push_back(DecodedTrace::opFetch(i));

        out.preciseDistAll.push_back(preciseAll + 1);
        out.preciseDistCommitted.push_back(preciseCommitted + 1);
        out.perceivedDistAll.push_back(perceivedAll + 1);
        out.perceivedDistCommitted.push_back(perceivedCommitted + 1);

        const std::uint8_t f = out.flags[i];
        const bool correct = (f & DecodedTrace::FLAG_CORRECT) != 0;
        const bool commits = (f & DecodedTrace::FLAG_COMMIT) != 0;

        ++perceivedAll;
        if (commits)
            ++perceivedCommitted;
        if (correct) {
            ++preciseAll;
            if (commits)
                ++preciseCommitted;
        } else {
            preciseAll = 0;
            if (commits)
                preciseCommitted = 0;
        }

        ++out.counters.branches;
        if (commits)
            ++out.counters.committedBranches;
        if (!correct) {
            ++out.counters.mispredicts;
            if (commits)
                ++out.counters.committedMispredicts;
        }
    }
    while (front < n)
        finalize(front++);

    return true;
}

bool
buildDecodedTrace(std::string_view encoded, DecodedTrace &out,
                  std::string *error)
{
    BranchTrace trace;
    if (!decodeTrace(encoded, trace, error))
        return false;
    return buildDecodedTrace(trace, out, error);
}

} // namespace confsim
