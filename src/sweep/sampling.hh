/**
 * @file
 * Statistical sampling of batched sweeps: SMARTS-style systematic
 * window selection plus CLT confidence intervals over the per-window
 * quadrant deltas.
 *
 * A SamplingPlan turns one full-trace replay into a sequence of short
 * *detailed windows* (every lane simulated exactly, results
 * accumulated) separated by *skipped* regions. Stateful lanes (JRS
 * tables, virtual estimators) get a functional warm-up run over the
 * ops immediately preceding each window — tables train, nothing is
 * counted — so their in-window behaviour approximates the fully
 * trained state. Stateless lanes are pure per-branch classifications
 * and need no warm-up at all.
 *
 * Each detailed window contributes one (numerator, denominator)
 * observation per metric (misprediction rate, SENS, SPEC, PVP, PVN
 * over committed branches). The reported point estimate is the pooled
 * ratio-of-sums R = sum(y) / sum(x), and the interval around it is the
 * classic survey-sampling ratio estimator (Taylor linearization):
 *
 *     R +- Z99 * sqrt(s_d^2 / n) / mean(x) * sqrt(1 - f)
 *
 * with d_i = y_i - R * x_i (which sum to zero by construction, so
 * s_d^2 = sum(d_i^2) / (n - 1)), n the number of windows observing the
 * metric, and f the sampled fraction of the population (the
 * finite-population correction: as coverage approaches 100%, the
 * interval collapses to the exact answer). Weighting windows by their
 * denominators keeps the interval centred on the pooled value even
 * when per-window denominators vary wildly — an unweighted mean of
 * window ratios is a biased estimate of the pooled ratio on phased
 * real traces, and intervals centred on it can systematically exclude
 * the ground truth.
 *
 * A degenerate plan (window >= trace) is defined to be exactly one
 * window covering every op with no warm-up: the sampled engine then
 * performs the same work as the full engine and its results are
 * bit-identical to it.
 */

#ifndef CONFSIM_SWEEP_SAMPLING_HH
#define CONFSIM_SWEEP_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "metrics/quadrant.hh"

namespace confsim
{

/** Two-sided 99% normal quantile used by every sampled interval. */
inline constexpr double SAMPLING_Z99 = 2.5758293035489004;

/** Systematic-sampling schedule of one sweep execution. */
struct SamplingPlan
{
    /** Detailed (fully simulated) schedule ops per window; 0 disables
     *  sampling entirely. A window at least as long as the trace
     *  degenerates to one full-fidelity pass. */
    std::uint64_t windowOps = 0;
    /** Window start-to-start distance in ops; values below windowOps
     *  (including 0) are clamped up to windowOps (full coverage). */
    std::uint64_t strideOps = 0;
    /** Functional warm-up ops run before each window: stateful lanes
     *  train, nothing is accumulated. */
    std::uint64_t warmupOps = 0;
    /**
     * Adaptive target: largest acceptable 99% CI half-width across
     * every reported metric of every lane. 0 runs exactly one pass;
     * > 0 halves the stride and reruns (up to maxPasses passes, or
     * until the stride reaches full coverage) while any defined
     * half-width exceeds the target.
     */
    double targetHalfWidth = 0.0;
    /** Phase seed: shifts where the first window lands inside the
     *  first stride, so repeated studies can vary their sample. */
    std::uint64_t seed = 1;
    /** Adaptive-pass cap (>= 1). */
    unsigned maxPasses = 6;

    bool enabled() const { return windowOps > 0; }

    bool operator==(const SamplingPlan &) const = default;
};

/** One detailed window in schedule-op space. */
struct SampleWindow
{
    std::uint64_t warmBegin = 0; ///< warm-up starts here (may == begin)
    std::uint64_t begin = 0;     ///< first detailed op
    std::uint64_t end = 0;       ///< one past the last detailed op

    bool operator==(const SampleWindow &) const = default;
};

/**
 * Lay the plan's windows over a trace of @p totalOps schedule ops.
 * Systematic: window k starts at phase + k * stride with
 * phase = hash(seed) % stride, each preceded by up to warmupOps
 * warm-up ops (clamped at 0). Degenerate plans (disabled, or
 * windowOps >= totalOps) produce the single window [0, totalOps) with
 * no warm-up. Always returns at least one window for a non-empty
 * trace.
 * @param strideOverride when nonzero, replaces plan.strideOps (the
 *        adaptive loop passes progressively halved strides).
 */
std::vector<SampleWindow>
layoutSampleWindows(std::uint64_t totalOps, const SamplingPlan &plan,
                    std::uint64_t strideOverride = 0);

/** Point estimate + 99% CI of one sampled metric. */
struct SampledMetric
{
    double value = 0.0;     ///< pooled ratio-of-sums over all windows
    /** CI centre. The ratio-estimator interval is centred on the
     *  pooled value, so this equals @ref value whenever the metric was
     *  observed at all; it is kept as a separate field so reports stay
     *  explicit about what the interval brackets. */
    double mean = 0.0;
    double halfWidth = -1.0; ///< 99% CI half-width; < 0 = undefined
    std::uint64_t windows = 0; ///< windows with a defined value

    bool defined() const { return halfWidth >= 0.0; }
    bool contains(double truth) const
    {
        return defined() && truth >= mean - halfWidth
               && truth <= mean + halfWidth;
    }
};

/** Everything a sampled execution reports for one lane. */
struct SampledLaneStats
{
    SampledMetric mispredictRate; ///< (ihc+ilc)/total, committed
    SampledMetric sens;
    SampledMetric spec;
    SampledMetric pvp;
    SampledMetric pvn;

    std::uint64_t windows = 0;     ///< detailed windows simulated
    unsigned passes = 1;           ///< adaptive passes executed
    std::uint64_t opsDetailed = 0; ///< ops simulated in windows
    std::uint64_t opsWarmup = 0;   ///< ops run as functional warm-up
    std::uint64_t opsSkipped = 0;  ///< ops never touched
    std::uint64_t opsTotal = 0;    ///< schedule ops in the population

    /** Largest defined half-width (adaptive stop criterion);
     *  -1 when no metric has a defined interval. */
    double maxHalfWidth() const;
};

/**
 * Online per-window accumulator for one lane: feed the committed
 * quadrant delta of each detailed window, then finalize() into the
 * five metric CIs.
 */
class WindowStatAccumulator
{
  public:
    void reset();

    /** Record one window's committed-quadrant delta. */
    void addWindow(const QuadrantCounts &delta);

    /**
     * Compute the metric CIs. @p sampledFraction is detailed ops over
     * total ops; at >= 1 every interval is exact (half-width 0, mean
     * = pooled value). Otherwise a metric's interval is defined only
     * when at least two windows produced a value for it.
     */
    SampledLaneStats finalize(double sampledFraction) const;

    const QuadrantCounts &pooled() const { return pooledQ; }

  private:
    /** Per-window (numerator, denominator) moments of one ratio
     *  metric; everything finalizeSeries() needs for the pooled ratio
     *  and its linearized variance. */
    struct Series
    {
        std::uint64_t n = 0;
        double sumX = 0.0;  ///< sum of denominators
        double sumY = 0.0;  ///< sum of numerators
        double sumXX = 0.0; ///< sum of x^2
        double sumYY = 0.0; ///< sum of y^2
        double sumXY = 0.0; ///< sum of x*y

        void
        add(std::uint64_t num, std::uint64_t den)
        {
            const double x = static_cast<double>(den);
            const double y = static_cast<double>(num);
            ++n;
            sumX += x;
            sumY += y;
            sumXX += x * x;
            sumYY += y * y;
            sumXY += x * y;
        }
    };

    static SampledMetric finalizeSeries(const Series &s, double fpc);

    QuadrantCounts pooledQ;
    Series rate, se, sp, pp, pn;
};

} // namespace confsim

#endif // CONFSIM_SWEEP_SAMPLING_HH
