#include "trace/trace_reader.hh"

#include <cstdio>
#include <cstring>

#include "common/fault_injection.hh"
#include "trace/trace_writer.hh"

namespace confsim
{

TraceReader::TraceReader(std::string_view data) : data(data)
{
    if (data.size() < sizeof(TRACE_MAGIC)
        || std::memcmp(data.data(), TRACE_MAGIC,
                       sizeof(TRACE_MAGIC)) != 0) {
        fail("bad magic (not a confsim branch trace)");
        return;
    }
    pos = sizeof(TRACE_MAGIC);

    if (!traceReadVarint(data, pos, formatVersion)) {
        fail("truncated header (version)");
        return;
    }
    if (formatVersion != TRACE_VERSION
        && formatVersion != TRACE_VERSION_NATIVE) {
        fail("unsupported trace version "
             + std::to_string(formatVersion));
        return;
    }

    std::uint64_t meta_len = 0;
    if (!traceReadVarint(data, pos, meta_len)
        || meta_len > data.size() - pos) {
        fail("truncated header (metadata)");
        return;
    }
    metaBlob = data.substr(pos, meta_len);
    pos += meta_len;
}

TraceReader::Status
TraceReader::fail(const std::string &what)
{
    if (err.empty())
        err = "trace offset " + std::to_string(pos) + ": " + what;
    done = true;
    return Status::Error;
}

TraceReader::Status
TraceReader::next(TraceRecord &rec)
{
    if (!err.empty())
        return Status::Error;
    if (done)
        return Status::End;

    std::uint64_t flags = 0;
    if (!traceReadVarint(data, pos, flags))
        return fail("truncated record (flags)");
    if ((flags & traceUnknownFlagMask(formatVersion)) != 0)
        return fail("unknown flag bits (corrupt or newer format)");

    if ((flags & TRACE_FLAG_END) != 0) {
        std::uint64_t expected = 0;
        if (!traceReadVarint(data, pos, expected))
            return fail("truncated end marker");
        if (expected != count)
            return fail("record count mismatch (expected "
                        + std::to_string(expected) + ", decoded "
                        + std::to_string(count) + ")");
        if (pos != data.size())
            return fail("trailing bytes after end marker");
        done = true;
        return Status::End;
    }

    if ((flags & TRACE_FLAG_META) != 0) {
        std::uint64_t cmax = 0, ghbits = 0, lhbits = 0;
        if (!traceReadVarint(data, pos, cmax)
            || !traceReadVarint(data, pos, ghbits)
            || !traceReadVarint(data, pos, lhbits))
            return fail("truncated record (meta fields)");
        if (ghbits > 64 || lhbits > 64)
            return fail("history width exceeds 64 bits");
        state.counterMax = static_cast<unsigned>(cmax);
        state.globalHistoryBits = static_cast<unsigned>(ghbits);
        state.localHistoryBits = static_cast<unsigned>(lhbits);
    } else if (state.first) {
        return fail("first record lacks meta fields");
    }

    std::uint64_t pc_delta = 0, counter = 0, gh = 0, lh = 0;
    std::uint64_t fc_delta = 0, rc_delta = 0;
    std::uint64_t native_conf = 0;
    if (!traceReadVarint(data, pos, pc_delta)
        || !traceReadVarint(data, pos, counter))
        return fail("truncated record (pc/counter)");
    if ((flags & TRACE_FLAG_NATIVE_CONF) != 0) {
        if (!traceReadVarint(data, pos, native_conf))
            return fail("truncated record (native confidence)");
        if (native_conf > 0xffffffffu)
            return fail("native confidence exceeds 32 bits");
    }
    if (state.globalHistoryBits > 0) {
        if ((flags & TRACE_FLAG_GH_SHIFT) != 0)
            gh = traceShiftedHistory(state, state.globalHistoryBits);
        else if (!traceReadVarint(data, pos, gh))
            return fail("truncated record (global history)");
    } else if ((flags & TRACE_FLAG_GH_SHIFT) != 0) {
        return fail("GH_SHIFT flag without global history");
    }
    if (state.localHistoryBits > 0
        && !traceReadVarint(data, pos, lh))
        return fail("truncated record (local history)");
    if (!traceReadVarint(data, pos, fc_delta)
        || !traceReadVarint(data, pos, rc_delta))
        return fail("truncated record (cycles)");

    // Every field of rec (including all of info) is assigned below, so
    // no clearing pass is needed.
    rec.pc = static_cast<Addr>(
            static_cast<std::int64_t>(state.prevPc)
            + traceZigzagDecode(pc_delta));
    rec.taken = (flags & TRACE_FLAG_TAKEN) != 0;
    rec.correct = (flags & TRACE_FLAG_CORRECT) != 0;
    rec.willCommit = (flags & TRACE_FLAG_WRONG_PATH) == 0;
    rec.fetchCycle = state.prevFetchCycle + fc_delta;
    rec.resolveCycle = rec.fetchCycle + rc_delta;

    BpInfo &info = rec.info;
    info.predTaken = (flags & TRACE_FLAG_PRED_TAKEN) != 0;
    info.counterValue = static_cast<unsigned>(counter);
    info.counterMax = state.counterMax;
    info.globalHistory = gh;
    info.globalHistoryBits = state.globalHistoryBits;
    info.localHistory = lh;
    info.localHistoryBits = state.localHistoryBits;
    info.hasComponents = (flags & TRACE_FLAG_HAS_COMPONENTS) != 0;
    info.bimodalStrong = (flags & TRACE_FLAG_BIMODAL_STRONG) != 0;
    info.gshareStrong = (flags & TRACE_FLAG_GSHARE_STRONG) != 0;
    info.bimodalPredTaken = (flags & TRACE_FLAG_BIMODAL_TAKEN) != 0;
    info.gsharePredTaken = (flags & TRACE_FLAG_GSHARE_TAKEN) != 0;
    info.metaChoseGshare = (flags & TRACE_FLAG_META_GSHARE) != 0;
    info.nativeConf = static_cast<std::uint32_t>(native_conf);
    info.hasNativeConf = (flags & TRACE_FLAG_NATIVE_CONF) != 0;

    state.prevPc = rec.pc;
    state.prevFetchCycle = rec.fetchCycle;
    state.prevGlobalHistory = info.globalHistory;
    state.prevPredTaken = info.predTaken;
    state.first = false;
    ++count;
    return Status::Record;
}

bool
decodeTrace(std::string_view data, BranchTrace &out, std::string *error)
{
    TraceReader reader(data);
    if (!reader.ok()) {
        if (error != nullptr)
            *error = reader.error();
        return false;
    }
    out.meta = std::string(reader.meta());
    out.records.clear();
    TraceRecord rec;
    for (;;) {
        switch (reader.next(rec)) {
          case TraceReader::Status::Record:
            out.records.push_back(rec);
            break;
          case TraceReader::Status::End:
            return true;
          case TraceReader::Status::Error:
            if (error != nullptr)
                *error = reader.error();
            return false;
        }
    }
}

std::string
encodeTrace(const BranchTrace &trace)
{
    TraceWriter writer;
    BranchEvent ev;
    for (const TraceRecord &rec : trace.records) {
        ev.pc = rec.pc;
        ev.info = rec.info;
        ev.taken = rec.taken;
        ev.correct = rec.correct;
        ev.willCommit = rec.willCommit;
        ev.fetchCycle = rec.fetchCycle;
        ev.resolveCycle = rec.resolveCycle;
        writer.onEvent(ev);
    }
    return writer.encode(trace.meta);
}

bool
readTraceFile(const std::string &path, std::string &data,
              std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return false;
    }
    data.clear();
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        if (error != nullptr)
            *error = "read error on '" + path + "'";
        return false;
    }
    // Models silent media corruption between write and read; the
    // decoder downstream must reject the damage, not crash on it.
    FaultInjector::instance().onTraceFileRead(data);
    return true;
}

} // namespace confsim
