/**
 * @file
 * TraceWriter: a BranchEventSink that records the branch stream of a
 * live simulation into the compact binary trace format.
 *
 * Attach it to a Pipeline (pipe.attachSink(&writer)) or pass it to
 * runTrace(); because the pipeline delivers events in fetch (seq)
 * order — committed branches at resolution, wrong-path branches at
 * squash, both strictly ordered by seq — the writer sees exactly the
 * stream a replayer must reproduce.
 *
 * Recording is only meaningful for *estimator-only* runs: with gating
 * or eager execution enabled the branch stream itself depends on the
 * attached estimator, so a recorded trace would not generalize to
 * other estimator sets.
 */

#ifndef CONFSIM_TRACE_TRACE_WRITER_HH
#define CONFSIM_TRACE_TRACE_WRITER_HH

#include <cstdint>
#include <string>

#include "pipeline/pipeline.hh"
#include "trace/trace_format.hh"

namespace confsim
{

/** Records BranchEvents into an in-memory encoded trace. */
class TraceWriter final : public BranchEventSink
{
  public:
    /** Encode one branch event (estimate bits and levels are derived
     *  data and are not recorded). */
    void onEvent(const BranchEvent &ev) override;

    /** Branches recorded so far. */
    std::uint64_t branchCount() const { return count; }

    /** Encoded record bytes so far (header/footer excluded). */
    std::size_t bodyBytes() const { return body.size(); }

    /**
     * Assemble the complete encoded trace: header, @p meta blob
     * (conventionally a JSON document describing the recording run),
     * all records, and the end marker. The writer stays usable —
     * further events keep appending and a later encode() re-emits the
     * longer trace.
     */
    std::string encode(const std::string &meta = "") const;

    /**
     * Write encode(@p meta) to @p path.
     * @return false (with @p error set when non-null) on I/O failure.
     */
    bool writeFile(const std::string &path,
                   const std::string &meta = "",
                   std::string *error = nullptr) const;

    /** Format version encode() will emit: TRACE_VERSION_NATIVE once
     *  any recorded branch carried a native confidence level,
     *  TRACE_VERSION (byte-identical to pre-plugin traces) before. */
    std::uint64_t version() const
    {
        return usedNativeConf ? TRACE_VERSION_NATIVE : TRACE_VERSION;
    }

  private:
    std::string body;
    TraceCodecState state;
    std::uint64_t count = 0;
    bool usedNativeConf = false;
};

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_WRITER_HH
