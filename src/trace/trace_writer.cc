#include "trace/trace_writer.hh"

#include <cstdio>

namespace confsim
{

void
TraceWriter::onEvent(const BranchEvent &ev)
{
    TraceRecord rec;
    rec.pc = ev.pc;
    rec.info = ev.info;
    rec.taken = ev.taken;
    rec.correct = ev.correct;
    rec.willCommit = ev.willCommit;
    rec.fetchCycle = ev.fetchCycle;
    rec.resolveCycle = ev.resolveCycle;
    traceEncodeRecord(body, state, rec);
    if (ev.info.hasNativeConf)
        usedNativeConf = true;
    ++count;
}

std::string
TraceWriter::encode(const std::string &meta) const
{
    std::string out;
    out.reserve(sizeof(TRACE_MAGIC) + 24 + meta.size() + body.size());
    out.append(TRACE_MAGIC, sizeof(TRACE_MAGIC));
    traceAppendVarint(out, version());
    traceAppendVarint(out, meta.size());
    out += meta;
    out += body;
    traceAppendVarint(out, TRACE_FLAG_END);
    traceAppendVarint(out, count);
    return out;
}

bool
TraceWriter::writeFile(const std::string &path, const std::string &meta,
                       std::string *error) const
{
    const std::string data = encode(meta);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    const std::size_t written =
        std::fwrite(data.data(), 1, data.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != data.size() || !closed) {
        if (error != nullptr)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

} // namespace confsim
