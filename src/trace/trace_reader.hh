/**
 * @file
 * TraceReader: streaming decoder for the binary branch-trace format.
 *
 * The reader is a cursor over an encoded byte buffer it does not own;
 * it validates the header up front and each record as it goes, and
 * detects truncation via the mandatory end marker (a trace without a
 * matching end marker + record count is rejected, never silently
 * shortened). Malformed input yields a clean error string — never
 * undefined behaviour.
 *
 * For tests and tools that want the whole trace materialized,
 * decodeTrace() fills a BranchTrace (meta + record vector), and
 * encodeTrace() is its inverse; a decode→encode round trip is
 * byte-identical.
 */

#ifndef CONFSIM_TRACE_TRACE_READER_HH
#define CONFSIM_TRACE_TRACE_READER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace_format.hh"

namespace confsim
{

/** Fully decoded in-memory trace. */
struct BranchTrace
{
    std::string meta;                 ///< header metadata blob
    std::vector<TraceRecord> records; ///< branch stream in fetch order
};

/**
 * Streaming cursor over an encoded trace. The underlying buffer is
 * borrowed and must outlive the reader.
 */
class TraceReader
{
  public:
    /** Result of next(). */
    enum class Status
    {
        Record, ///< a record was decoded
        End,    ///< clean end of trace (count verified)
        Error,  ///< malformed input; see error()
    };

    /** Bind to @p data and validate the header; on failure ok() is
     *  false and error() describes the problem. */
    explicit TraceReader(std::string_view data);

    /** Header parsed successfully (check before reading records). */
    bool ok() const { return err.empty(); }

    /** Description of the first decode failure ("" while healthy). */
    const std::string &error() const { return err; }

    /** Header metadata blob. */
    std::string_view meta() const { return metaBlob; }

    /**
     * Decode the next record into @p rec.
     * After Status::End the reader stays at end; after Status::Error
     * the reader is poisoned (further calls keep returning Error).
     */
    Status next(TraceRecord &rec);

    /** Records decoded so far. */
    std::uint64_t recordsRead() const { return count; }

    /** Format version from the header (TRACE_VERSION or
     *  TRACE_VERSION_NATIVE); 0 before a header parsed. */
    std::uint64_t version() const { return formatVersion; }

  private:
    Status fail(const std::string &what);

    std::string_view data;
    std::size_t pos = 0;
    std::uint64_t formatVersion = 0;
    TraceCodecState state;
    std::string_view metaBlob;
    std::string err;
    std::uint64_t count = 0;
    bool done = false;
};

/**
 * Decode a complete trace into @p out.
 * @return false (with @p error set when non-null) on malformed input.
 */
bool decodeTrace(std::string_view data, BranchTrace &out,
                 std::string *error = nullptr);

/** Encode @p trace into the binary format (inverse of decodeTrace). */
std::string encodeTrace(const BranchTrace &trace);

/**
 * Read the file at @p path into @p data.
 * @return false (with @p error set when non-null) on I/O failure.
 */
bool readTraceFile(const std::string &path, std::string &data,
                   std::string *error = nullptr);

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_READER_HH
