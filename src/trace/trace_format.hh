/**
 * @file
 * Compact binary branch-trace format: the on-disk/in-memory encoding
 * shared by TraceWriter and TraceReader.
 *
 * A trace captures the complete branch stream of one *estimator-only*
 * simulation — every conditional branch in fetch order with its
 * predictor-internal state (BpInfo), outcome, and fetch/resolve timing
 * — so that any set of confidence estimators, level sources, and event
 * sinks can later be replayed against it at memory speed with
 * bit-identical results (see TraceReplayer).
 *
 * Layout
 * ------
 *   magic      4 bytes  "CFTR"
 *   version    varint   TRACE_VERSION
 *   meta-len   varint   length of the metadata blob
 *   meta       bytes    free-form metadata (conventionally JSON)
 *   records    ...      one encoded record per branch, fetch order
 *   end        record whose flags carry FLAG_END, followed by a
 *              varint record count that must match the number of
 *              records decoded (truncation / corruption check)
 *
 * Records are delta/varint encoded against the previous record, with
 * rarely-changing fields (counterMax, history widths) emitted only
 * when they change (FLAG_META). Typical cost is 7-8 bytes per branch.
 * Derived per-branch values — seq, estimateBits, levels, and the four
 * misprediction distances — are deterministic functions of the stream
 * and the replayed estimator set, so they are reconstructed on replay
 * instead of stored (the trace_test golden tests enforce equality).
 *
 * Field order per record:
 *   flags                  varint   FLAG_* bits below
 *   [counterMax]           varint   iff FLAG_META
 *   [globalHistoryBits]    varint   iff FLAG_META
 *   [localHistoryBits]     varint   iff FLAG_META
 *   pc                     zigzag   delta vs previous record's pc
 *   counterValue           varint
 *   [nativeConf]           varint   iff FLAG_NATIVE_CONF (version 2)
 *   [globalHistory]        varint   iff globalHistoryBits > 0 and
 *                                   not FLAG_GH_SHIFT
 *   [localHistory]         varint   iff localHistoryBits > 0
 *   fetchCycle             varint   delta vs previous fetchCycle
 *   resolveCycle           varint   delta vs this record's fetchCycle
 *
 * FLAG_GH_SHIFT exploits speculative history maintenance: between
 * consecutive fetches the predictors shift the predicted direction
 * into the global history register, so most records satisfy
 * gh == ((prev_gh << 1) | prev_predTaken) & mask and need no explicit
 * history value. The chain breaks only across misprediction repairs,
 * where the explicit varint is emitted.
 */

#ifndef CONFSIM_TRACE_TRACE_FORMAT_HH
#define CONFSIM_TRACE_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "bpred/branch_predictor.hh"
#include "common/types.hh"

namespace confsim
{

/** Leading magic bytes of every encoded trace. */
inline constexpr char TRACE_MAGIC[4] = {'C', 'F', 'T', 'R'};

/**
 * Baseline format version: no predictor-native confidence fields.
 * TraceWriter emits this whenever no recorded branch carried a native
 * confidence level, so predictors from before the estimator-input
 * plugin layer produce byte-identical traces.
 */
inline constexpr std::uint64_t TRACE_VERSION = 1;

/**
 * Format version adding per-record predictor-native confidence
 * (TRACE_FLAG_NATIVE_CONF + a varint level). Emitted only when some
 * record actually uses it; readers accept both versions.
 */
inline constexpr std::uint64_t TRACE_VERSION_NATIVE = 2;

/// @name Per-record flag bits
/// @{
inline constexpr std::uint64_t TRACE_FLAG_TAKEN = 1u << 0;
inline constexpr std::uint64_t TRACE_FLAG_CORRECT = 1u << 1;
inline constexpr std::uint64_t TRACE_FLAG_PRED_TAKEN = 1u << 2;
/// Set for wrong-path branches (committed is the common case, so the
/// inverted sense keeps typical flags within a one-byte varint).
inline constexpr std::uint64_t TRACE_FLAG_WRONG_PATH = 1u << 3;
/// globalHistory follows the speculative shift rule; its varint is
/// omitted. Kept below bit 7 so history-only predictors still encode
/// one-byte flags.
inline constexpr std::uint64_t TRACE_FLAG_GH_SHIFT = 1u << 4;
inline constexpr std::uint64_t TRACE_FLAG_HAS_COMPONENTS = 1u << 5;
inline constexpr std::uint64_t TRACE_FLAG_BIMODAL_STRONG = 1u << 6;
inline constexpr std::uint64_t TRACE_FLAG_GSHARE_STRONG = 1u << 7;
inline constexpr std::uint64_t TRACE_FLAG_BIMODAL_TAKEN = 1u << 8;
inline constexpr std::uint64_t TRACE_FLAG_GSHARE_TAKEN = 1u << 9;
inline constexpr std::uint64_t TRACE_FLAG_META_GSHARE = 1u << 10;
/// counterMax / history-width varints follow the flags.
inline constexpr std::uint64_t TRACE_FLAG_META = 1u << 11;
/// End-of-trace marker; a varint record count follows instead of a
/// record body.
inline constexpr std::uint64_t TRACE_FLAG_END = 1u << 12;
/// A varint nativeConf level follows counterValue
/// (TRACE_VERSION_NATIVE records only).
inline constexpr std::uint64_t TRACE_FLAG_NATIVE_CONF =
    std::uint64_t{1} << 13;
/// @}

/**
 * Flag bits a reader of @p version must reject: anything the version
 * does not define is from a future format (or corruption). Keeping
 * the mask per-version means a baseline trace cannot smuggle in
 * native-confidence bits.
 */
inline constexpr std::uint64_t
traceUnknownFlagMask(std::uint64_t version)
{
    const unsigned known = version >= TRACE_VERSION_NATIVE ? 14 : 13;
    return ~((std::uint64_t{1} << known) - 1);
}

/** Longest legal LEB128 varint (10 bytes encode any uint64). */
inline constexpr std::size_t TRACE_MAX_VARINT_BYTES = 10;

/**
 * One decoded branch record: everything a live BranchEventSink /
 * estimator would have observed about the branch at fetch, minus the
 * derived fields (seq, estimates, levels, distances) that replay
 * reconstructs.
 */
struct TraceRecord
{
    Addr pc = 0;             ///< branch address
    BpInfo info;             ///< prediction + predictor state at fetch
    bool taken = false;      ///< actual direction (under its path)
    bool correct = false;    ///< prediction matched outcome
    bool willCommit = false; ///< fetched on the architected path
    Cycle fetchCycle = 0;    ///< cycle the branch was fetched
    Cycle resolveCycle = 0;  ///< resolution (or squash) cycle

    bool operator==(const TraceRecord &) const = default;
};

/// @name Varint primitives
/// @{

/** Append @p value as LEB128 to @p out. */
void traceAppendVarint(std::string &out, std::uint64_t value);

/** Zigzag-map a signed delta into the varint-friendly domain. */
inline std::uint64_t
traceZigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1)
        ^ static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of traceZigzagEncode. */
inline std::int64_t
traceZigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1)
        ^ -static_cast<std::int64_t>(v & 1);
}

/** Multi-byte tail of traceReadVarint (see below). */
bool traceReadVarintSlow(std::string_view data, std::size_t &pos,
                         std::uint64_t &value);

/**
 * Decode one LEB128 varint from @p data starting at @p pos.
 * On success advances @p pos past the varint and stores the value.
 * @return false on truncation or an over-long (>10 byte) encoding.
 *
 * Inline fast path for the single-byte case — the vast majority of
 * fields in a delta-encoded trace — with the generic loop out of line.
 */
inline bool
traceReadVarint(std::string_view data, std::size_t &pos,
                std::uint64_t &value)
{
    if (pos < data.size()) {
        const auto byte = static_cast<unsigned char>(data[pos]);
        if (byte < 0x80) {
            value = byte;
            ++pos;
            return true;
        }
    }
    return traceReadVarintSlow(data, pos, value);
}

/// @}

/**
 * Delta-encoder state shared by writer and reader; both sides must
 * evolve it identically for the deltas to be meaningful.
 */
struct TraceCodecState
{
    Addr prevPc = 0;
    Cycle prevFetchCycle = 0;
    std::uint64_t prevGlobalHistory = 0;
    bool prevPredTaken = false;
    unsigned counterMax = 0;
    unsigned globalHistoryBits = 0;
    unsigned localHistoryBits = 0;
    bool first = true;
};

/** All-ones mask of a @p bits wide history register. */
inline std::uint64_t
traceHistoryMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
}

/** The globalHistory value FLAG_GH_SHIFT predicts for the next record:
 *  the previous record's history with its predicted direction shifted
 *  in, under @p bits (the *current* record's width). */
inline std::uint64_t
traceShiftedHistory(const TraceCodecState &state, unsigned bits)
{
    return ((state.prevGlobalHistory << 1)
            | (state.prevPredTaken ? 1 : 0))
        & traceHistoryMask(bits);
}

/** Append the encoding of @p rec to @p out, advancing @p state. */
void traceEncodeRecord(std::string &out, TraceCodecState &state,
                       const TraceRecord &rec);

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_FORMAT_HH
