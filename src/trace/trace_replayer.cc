#include "trace/trace_replayer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace confsim
{

unsigned
TraceReplayer::attachEstimator(ConfidenceEstimator *estimator)
{
    if (estimators.size() >= MAX_ESTIMATORS)
        fatal("too many confidence estimators attached");
    estimators.push_back(estimator);
    return static_cast<unsigned>(estimators.size() - 1);
}

unsigned
TraceReplayer::attachLevelReader(const LevelSource *source)
{
    if (levelSources.size() >= MAX_LEVEL_READERS)
        fatal("too many level readers attached");
    levelSources.push_back(source);
    return static_cast<unsigned>(levelSources.size() - 1);
}

void
TraceReplayer::attachSink(BranchEventSink *sink)
{
    sinks.push_back(sink);
}

void
TraceReplayer::attachPredictor(BranchPredictor *pred)
{
    predictor = pred;
}

void
TraceReplayer::deliver(const BranchEvent &ev)
{
    for (auto *sink : sinks)
        sink->onEvent(ev);
}

void
TraceReplayer::begin()
{
    pending.clear();
    counters = ReplayStats{};
    nextSeq = 0;
    preciseDistAll = 0;
    preciseDistCommitted = 0;
    perceivedDistAll = 0;
    perceivedDistCommitted = 0;
}

/**
 * Finalize the oldest pending branch: the replay-side counterpart of
 * Pipeline::resolveFront (committed branch: predictor update, estimator
 * updates, delivery, perceived-distance reset on a mispredict) and of
 * the per-branch delivery in Pipeline::squashYounger (wrong-path
 * branch: delivery only). The trace records a squashed branch's
 * resolveCycle as its squash cycle, so queue order plus the cycle
 * comparison in fetch() reproduces the live delivery order.
 */
void
TraceReplayer::finalizeFront()
{
    // Work on the slot in place; estimators and sinks never touch the
    // pending queue, so the reference stays valid until the pop below.
    const BranchEvent &ev = pending.front();

    if (ev.willCommit) {
        if (predictor != nullptr)
            predictor->update(ev.pc, ev.taken, ev.info);
        for (auto *estimator : estimators)
            estimator->update(ev.pc, ev.taken, ev.correct, ev.info);
        deliver(ev);
        if (!ev.correct) {
            perceivedDistAll = 0;
            perceivedDistCommitted = 0;
        }
    } else {
        deliver(ev);
    }
    pending.pop_front();
}

bool
TraceReplayer::fetch(const TraceRecord &rec, std::string *error)
{
    // A live tick resolves before it fetches, so every branch whose
    // resolve cycle is at or before this fetch cycle finalizes first.
    while (!pending.empty()
           && pending.front().resolveCycle <= rec.fetchCycle) {
        finalizeFront();
    }

    if (predictor != nullptr) {
        const BpInfo live = predictor->predict(rec.pc);
        if (live.predTaken != rec.info.predTaken) {
            if (error != nullptr)
                *error = "replay predictor diverged from trace at "
                         "branch " + std::to_string(counters.branches)
                         + " (predictor kind/config mismatch?)";
            return false;
        }
    }

    // Build the event directly in its (recycled) queue slot — it is
    // large enough that stack-construct + copy shows up on the replay
    // hot path. Every field is assigned below: the derived ones
    // (estimateBits, levels) start from their live zero state, the
    // rest come from the record.
    BranchEvent &ev = pending.push_slot();
    ev.seq = nextSeq++;
    ev.pc = rec.pc;
    ev.info = rec.info;
    ev.taken = rec.taken;
    ev.correct = rec.correct;
    ev.willCommit = rec.willCommit;
    ev.fetchCycle = rec.fetchCycle;
    ev.resolveCycle = rec.resolveCycle;
    ev.estimateBits = 0;
    for (unsigned j = 0; j < MAX_LEVEL_READERS; ++j)
        ev.levels[j] = 0;

    for (unsigned i = 0; i < estimators.size(); ++i)
        if (estimators[i]->estimate(rec.pc, rec.info))
            ev.estimateBits |= (1u << i);
    for (unsigned j = 0; j < levelSources.size(); ++j) {
        const unsigned level =
            levelSources[j]->readLevel(rec.pc, rec.info);
        ev.levels[j] = static_cast<std::uint16_t>(
                std::min(level, 65535u));
    }

    ev.preciseDistAll = preciseDistAll + 1;
    ev.preciseDistCommitted = preciseDistCommitted + 1;
    ev.perceivedDistAll = perceivedDistAll + 1;
    ev.perceivedDistCommitted = perceivedDistCommitted + 1;

    ++perceivedDistAll;
    if (rec.willCommit)
        ++perceivedDistCommitted;

    if (rec.correct) {
        ++preciseDistAll;
        if (rec.willCommit)
            ++preciseDistCommitted;
    } else {
        preciseDistAll = 0;
        if (rec.willCommit)
            preciseDistCommitted = 0;
    }

    ++counters.branches;
    if (rec.willCommit)
        ++counters.committedBranches;
    if (!rec.correct) {
        ++counters.mispredicts;
        if (rec.willCommit)
            ++counters.committedMispredicts;
    }
    return true;
}

void
TraceReplayer::drain()
{
    while (!pending.empty())
        finalizeFront();
}

bool
TraceReplayer::replay(std::string_view encoded, ReplayStats *stats,
                      std::string *error)
{
    TraceReader reader(encoded);
    if (!reader.ok()) {
        if (error != nullptr)
            *error = reader.error();
        return false;
    }

    begin();
    TraceRecord rec;
    for (;;) {
        switch (reader.next(rec)) {
          case TraceReader::Status::Record:
            if (!fetch(rec, error))
                return false; // attached state is part-replayed
            break;
          case TraceReader::Status::End:
            drain();
            if (stats != nullptr)
                *stats = counters;
            return true;
          case TraceReader::Status::Error:
            if (error != nullptr)
                *error = reader.error();
            return false;
        }
    }
}

bool
TraceReplayer::replay(const BranchTrace &trace, ReplayStats *stats,
                      std::string *error)
{
    begin();
    for (const TraceRecord &rec : trace.records)
        if (!fetch(rec, error))
            return false;
    drain();
    if (stats != nullptr)
        *stats = counters;
    return true;
}

} // namespace confsim
