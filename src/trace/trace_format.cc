#include "trace/trace_format.hh"

namespace confsim
{

void
traceAppendVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

bool
traceReadVarintSlow(std::string_view data, std::size_t &pos,
                    std::uint64_t &value)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (std::size_t n = 0; n < TRACE_MAX_VARINT_BYTES; ++n) {
        if (pos >= data.size())
            return false; // truncated
        const auto byte =
            static_cast<unsigned char>(data[pos++]);
        if (shift == 63 && (byte & 0x7e) != 0)
            return false; // overflows 64 bits
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            value = v;
            return true;
        }
        shift += 7;
    }
    return false; // over-long encoding
}

void
traceEncodeRecord(std::string &out, TraceCodecState &state,
                  const TraceRecord &rec)
{
    const BpInfo &info = rec.info;

    std::uint64_t flags = 0;
    if (rec.taken)
        flags |= TRACE_FLAG_TAKEN;
    if (rec.correct)
        flags |= TRACE_FLAG_CORRECT;
    if (info.predTaken)
        flags |= TRACE_FLAG_PRED_TAKEN;
    if (!rec.willCommit)
        flags |= TRACE_FLAG_WRONG_PATH;
    if (info.hasComponents)
        flags |= TRACE_FLAG_HAS_COMPONENTS;
    if (info.bimodalStrong)
        flags |= TRACE_FLAG_BIMODAL_STRONG;
    if (info.gshareStrong)
        flags |= TRACE_FLAG_GSHARE_STRONG;
    if (info.bimodalPredTaken)
        flags |= TRACE_FLAG_BIMODAL_TAKEN;
    if (info.gsharePredTaken)
        flags |= TRACE_FLAG_GSHARE_TAKEN;
    if (info.metaChoseGshare)
        flags |= TRACE_FLAG_META_GSHARE;
    if (info.hasNativeConf)
        flags |= TRACE_FLAG_NATIVE_CONF;

    const bool meta = state.first
        || info.counterMax != state.counterMax
        || info.globalHistoryBits != state.globalHistoryBits
        || info.localHistoryBits != state.localHistoryBits;
    if (meta)
        flags |= TRACE_FLAG_META;

    const bool gh_shift = info.globalHistoryBits > 0
        && info.globalHistory
               == traceShiftedHistory(state, info.globalHistoryBits);
    if (gh_shift)
        flags |= TRACE_FLAG_GH_SHIFT;

    traceAppendVarint(out, flags);
    if (meta) {
        traceAppendVarint(out, info.counterMax);
        traceAppendVarint(out, info.globalHistoryBits);
        traceAppendVarint(out, info.localHistoryBits);
        state.counterMax = info.counterMax;
        state.globalHistoryBits = info.globalHistoryBits;
        state.localHistoryBits = info.localHistoryBits;
    }

    traceAppendVarint(out, traceZigzagEncode(
            static_cast<std::int64_t>(rec.pc)
            - static_cast<std::int64_t>(state.prevPc)));
    traceAppendVarint(out, info.counterValue);
    if (info.hasNativeConf)
        traceAppendVarint(out, info.nativeConf);
    if (state.globalHistoryBits > 0 && !gh_shift)
        traceAppendVarint(out, info.globalHistory);
    if (state.localHistoryBits > 0)
        traceAppendVarint(out, info.localHistory);
    traceAppendVarint(out, rec.fetchCycle - state.prevFetchCycle);
    traceAppendVarint(out, rec.resolveCycle - rec.fetchCycle);

    state.prevPc = rec.pc;
    state.prevFetchCycle = rec.fetchCycle;
    state.prevGlobalHistory = info.globalHistory;
    state.prevPredTaken = info.predTaken;
    state.first = false;
}

} // namespace confsim
