/**
 * @file
 * TraceReplayer: drive confidence estimators, level sources, and
 * branch-event sinks from a recorded branch trace, reproducing a live
 * pipeline run bit for bit — at memory speed, with no interpreter,
 * cache model, or wrong-path execution.
 *
 * Fidelity rests on reproducing the live pipeline's *operation order*.
 * In a live run, estimate() happens at fetch (seq order) and update()
 * at resolution (also seq order, committed branches only), and the two
 * interleave according to fetch/resolve cycle timing. The trace stores
 * records in fetch order with both cycles; the replayer keeps a
 * pending queue and, before each fetch, finalizes every older branch
 * whose resolve cycle is at or before the new fetch cycle — exactly
 * the resolve-then-fetch order of Pipeline::tick. Derived per-event
 * data (seq, estimate bits, levels, the four misprediction distances)
 * is recomputed with the pipeline's own bookkeeping rules, so sinks
 * observe an identical event stream.
 *
 * Replay is valid only for estimator-only experiments: a trace records
 * one fixed branch stream, so anything that lets the estimator steer
 * the pipeline (gating, eager execution) cannot be replayed.
 */

#ifndef CONFSIM_TRACE_TRACE_REPLAYER_HH
#define CONFSIM_TRACE_TRACE_REPLAYER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/ring_buffer.hh"
#include "confidence/estimator.hh"
#include "pipeline/pipeline.hh"
#include "trace/trace_reader.hh"

namespace confsim
{

/** Aggregate counters from one replay pass. */
struct ReplayStats
{
    std::uint64_t branches = 0;           ///< records replayed
    std::uint64_t committedBranches = 0;  ///< willCommit records
    std::uint64_t mispredicts = 0;        ///< incl. wrong path
    std::uint64_t committedMispredicts = 0;

    bool operator==(const ReplayStats &) const = default;
};

/**
 * The replay engine. Mirror of the Pipeline attachment API: attach
 * estimators/level readers/sinks (non-owning, in the same order as the
 * live run they are compared against), then replay(). The replayer is
 * reusable — each replay() starts from a fresh stream position — but
 * attached estimators keep their trained state; reset them between
 * passes for independent runs.
 */
class TraceReplayer
{
  public:
    /**
     * Attach a confidence estimator: estimate() per branch at fetch,
     * update() at resolution for committed branches.
     * @return index of the estimator's bit in BranchEvent::estimateBits.
     */
    unsigned attachEstimator(ConfidenceEstimator *estimator);

    /** Attach a level source sampled at fetch (cf. Pipeline).
     *  @return index into BranchEvent::levels. */
    unsigned attachLevelReader(const LevelSource *source);

    /** Attach a branch event sink (delivery in attach order). */
    void attachSink(BranchEventSink *sink);

    /**
     * Optionally attach a branch predictor. It is driven through the
     * same predict()/update() sequence as the live run — reproducing
     * its statistics and final table state — and its predicted
     * directions are checked against the trace, so replaying against
     * a mismatched predictor fails loudly instead of corrupting
     * results. Estimators always see the recorded BpInfo.
     */
    void attachPredictor(BranchPredictor *predictor);

    /**
     * Replay an encoded trace (header + records).
     * @param encoded complete encoded trace bytes.
     * @param stats receives aggregate counters (optional).
     * @param error receives a description on failure (optional).
     * @return false on malformed input or predictor mismatch.
     */
    bool replay(std::string_view encoded, ReplayStats *stats = nullptr,
                std::string *error = nullptr);

    /** Replay an already-decoded trace. */
    bool replay(const BranchTrace &trace, ReplayStats *stats = nullptr,
                std::string *error = nullptr);

  private:
    void begin();
    bool fetch(const TraceRecord &rec, std::string *error);
    void finalizeFront();
    void drain();
    void deliver(const BranchEvent &ev);

    std::vector<ConfidenceEstimator *> estimators;
    std::vector<const LevelSource *> levelSources;
    std::vector<BranchEventSink *> sinks;
    BranchPredictor *predictor = nullptr;

    RingBuffer<BranchEvent> pending;
    ReplayStats counters;
    SeqNum nextSeq = 0;

    // Distance bookkeeping, mirroring Pipeline exactly.
    std::uint64_t preciseDistAll = 0;
    std::uint64_t preciseDistCommitted = 0;
    std::uint64_t perceivedDistAll = 0;
    std::uint64_t perceivedDistCommitted = 0;
};

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_REPLAYER_HH
