/**
 * @file
 * Worker process spawning for the confsim serve daemon: fork/exec of
 * a command with stdin/stdout pipes, non-blocking reaping, and
 * termination. The daemon writes task lines to the child's stdin and
 * reads result lines from its stdout; a SIGKILLed/crashed child is
 * detected by stdout EOF + a signal exit status.
 */

#ifndef CONFSIM_COMMON_SUBPROCESS_HH
#define CONFSIM_COMMON_SUBPROCESS_HH

#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/local_socket.hh"

namespace confsim
{

/** How a reaped child ended. */
struct ExitStatus
{
    bool signaled = false; ///< killed by a signal (crash/SIGKILL/OOM)
    int code = 0;          ///< exit code, or the signal number

    bool ok() const { return !signaled && code == 0; }

    /** "exit N" / "signal N" for logs and error messages. */
    std::string describe() const;
};

/**
 * A spawned child with pipes to its stdin/stdout (stderr is
 * inherited). Movable; the destructor does NOT kill or reap — the
 * owner decides (the daemon kills + reaps explicitly).
 */
struct ChildProcess
{
    pid_t pid = -1;
    OwnedFd toChild;   ///< write end of the child's stdin
    OwnedFd fromChild; ///< read end of the child's stdout

    bool running() const { return pid > 0; }
};

/**
 * fork/exec @p argv (argv[0] = executable path) with fresh pipes on
 * the child's stdin/stdout. The parent-side pipe fds are CLOEXEC so
 * sibling workers never inherit each other's pipes; @p fromChild is
 * set non-blocking for the daemon's poll loop.
 * @throws ConfsimError{Io} if pipe/fork fails; exec failure in the
 *         child exits 127 (surfaces via waitChild).
 */
ChildProcess spawnChild(const std::vector<std::string> &argv);

/**
 * Reap @p pid. Blocking when @p block; otherwise returns nullopt if
 * the child is still running.
 */
std::optional<ExitStatus> waitChild(pid_t pid, bool block);

/** Send @p signo (default SIGKILL) to @p pid; ignores ESRCH. */
void killChild(pid_t pid, int signo = 9);

/** Absolute path of the running executable (/proc/self/exe). */
std::string selfExecutablePath();

} // namespace confsim

#endif // CONFSIM_COMMON_SUBPROCESS_HH
