#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace confsim
{

namespace
{

const JsonValue NULL_VALUE;
const std::string EMPTY_STRING;

} // anonymous namespace

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.tag = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.tag = Kind::Object;
    return v;
}

bool
JsonValue::asBool(bool fallback) const
{
    return tag == Kind::Bool ? boolVal : fallback;
}

std::int64_t
JsonValue::asInt(std::int64_t fallback) const
{
    switch (tag) {
      case Kind::Int:
        return intVal;
      case Kind::Uint:
        return static_cast<std::int64_t>(uintVal);
      case Kind::Double:
        return static_cast<std::int64_t>(doubleVal);
      default:
        return fallback;
    }
}

std::uint64_t
JsonValue::asUint(std::uint64_t fallback) const
{
    switch (tag) {
      case Kind::Int:
        return intVal < 0 ? fallback
                          : static_cast<std::uint64_t>(intVal);
      case Kind::Uint:
        return uintVal;
      case Kind::Double:
        return doubleVal < 0.0 ? fallback
                               : static_cast<std::uint64_t>(doubleVal);
      default:
        return fallback;
    }
}

double
JsonValue::asDouble(double fallback) const
{
    switch (tag) {
      case Kind::Int:
        return static_cast<double>(intVal);
      case Kind::Uint:
        return static_cast<double>(uintVal);
      case Kind::Double:
        return doubleVal;
      default:
        return fallback;
    }
}

const std::string &
JsonValue::asString() const
{
    return tag == Kind::String ? stringVal : EMPTY_STRING;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (tag == Kind::Null)
        tag = Kind::Array;
    items.push_back(std::move(v));
    return items.back();
}

std::size_t
JsonValue::size() const
{
    if (tag == Kind::Array)
        return items.size();
    if (tag == Kind::Object)
        return fields.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (tag != Kind::Array || i >= items.size())
        return NULL_VALUE;
    return items[i];
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (tag == Kind::Null)
        tag = Kind::Object;
    for (auto &member : fields)
        if (member.first == key)
            return member.second;
    fields.emplace_back(key, JsonValue());
    return fields.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (tag != Kind::Object)
        return nullptr;
    for (const auto &member : fields)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

bool
JsonValue::contains(const std::string &key) const
{
    return find(key) != nullptr;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (isNumber() && other.isNumber()) {
        if (tag == Kind::Double || other.tag == Kind::Double)
            return asDouble() == other.asDouble();
        // Both integral: compare with sign awareness.
        const bool neg = tag == Kind::Int && intVal < 0;
        const bool other_neg =
            other.tag == Kind::Int && other.intVal < 0;
        if (neg != other_neg)
            return false;
        return neg ? asInt() == other.asInt()
                   : asUint() == other.asUint();
    }
    if (tag != other.tag)
        return false;
    switch (tag) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return boolVal == other.boolVal;
      case Kind::String:
        return stringVal == other.stringVal;
      case Kind::Array:
        return items == other.items;
      case Kind::Object:
        return fields == other.fields;
      default:
        return false; // unreachable; numbers handled above
    }
}

namespace
{

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // anonymous namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[40];
    switch (tag) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(intVal));
        out += buf;
        break;
      case Kind::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uintVal));
        out += buf;
        break;
      case Kind::Double:
        if (std::isfinite(doubleVal)) {
            // %.17g guarantees an exact double round trip; force a
            // marker so the parser keeps it a Double.
            std::snprintf(buf, sizeof(buf), "%.17g", doubleVal);
            out += buf;
            if (std::string(buf).find_first_of(".eE")
                    == std::string::npos)
                out += ".0";
        } else {
            out += "null"; // JSON has no inf/nan
        }
        break;
      case Kind::String:
        escapeTo(out, stringVal);
        break;
      case Kind::Array:
        if (items.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ",";
            newlineIndent(out, indent, depth + 1);
            items[i].dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        if (fields.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i)
                out += ",";
            newlineIndent(out, indent, depth + 1);
            escapeTo(out, fields[i].first);
            out += indent > 0 ? ": " : ":";
            fields[i].second.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace
{

/** Strict recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    Parser(const std::string &text) : src(text) {}

    JsonValue
    parseDocument(std::string *error)
    {
        JsonValue v = parseValue();
        skipWs();
        if (ok && pos != src.size())
            fail("trailing characters after document");
        if (!ok) {
            if (error)
                *error = message + " at offset "
                    + std::to_string(errorPos);
            return JsonValue();
        }
        return v;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok) {
            ok = false;
            message = why;
            errorPos = pos;
        }
    }

    void
    skipWs()
    {
        while (pos < src.size()
               && (src[pos] == ' ' || src[pos] == '\t'
                   || src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n])
            ++n;
        if (src.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        if (++depth > MAX_DEPTH) {
            fail("nesting too deep");
            --depth;
            return JsonValue();
        }
        JsonValue v;
        if (pos >= src.size()) {
            fail("unexpected end of input");
        } else if (src[pos] == '{') {
            v = parseObject();
        } else if (src[pos] == '[') {
            v = parseArray();
        } else if (src[pos] == '"') {
            std::string s;
            if (parseString(s))
                v = JsonValue(std::move(s));
        } else if (literal("true")) {
            v = JsonValue(true);
        } else if (literal("false")) {
            v = JsonValue(false);
        } else if (literal("null")) {
            // default-constructed Null
        } else {
            v = parseNumber();
        }
        --depth;
        return v;
    }

    JsonValue
    parseObject()
    {
        JsonValue obj = JsonValue::object();
        ++pos; // '{'
        skipWs();
        if (consume('}'))
            return obj;
        while (ok) {
            skipWs();
            std::string key;
            if (!parseString(key))
                break;
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                break;
            }
            obj[key] = parseValue();
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return obj;
            fail("expected ',' or '}' in object");
        }
        return obj;
    }

    JsonValue
    parseArray()
    {
        JsonValue arr = JsonValue::array();
        ++pos; // '['
        skipWs();
        if (consume(']'))
            return arr;
        while (ok) {
            arr.push(parseValue());
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return arr;
            fail("expected ',' or ']' in array");
        }
        return arr;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        while (pos < src.size()) {
            const char c = src[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= src.size())
                    break;
                const char esc = src[pos++];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos + 4 > src.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = src[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |=
                                static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |=
                                static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape digit");
                            return false;
                        }
                    }
                    // Encode the code point as UTF-8 (BMP only; the
                    // writer never emits surrogate pairs).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                                0x80 | ((code >> 6) & 0x3F));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape character");
                    return false;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return false;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < src.size() && src[pos] == '-')
            ++pos;
        const std::size_t int_start = pos;
        bool has_digits = false;
        while (pos < src.size() && std::isdigit(
                       static_cast<unsigned char>(src[pos]))) {
            ++pos;
            has_digits = true;
        }
        // RFC 8259: no leading zeros ("01"), no empty integer part.
        if (pos - int_start > 1 && src[int_start] == '0') {
            fail("leading zeros in number");
            return JsonValue();
        }
        bool floating = false;
        if (pos < src.size() && src[pos] == '.') {
            floating = true;
            ++pos;
            const std::size_t frac_start = pos;
            while (pos < src.size() && std::isdigit(
                           static_cast<unsigned char>(src[pos])))
                ++pos;
            if (pos == frac_start) {
                fail("expected digits after decimal point");
                return JsonValue();
            }
        }
        if (pos < src.size() && (src[pos] == 'e' || src[pos] == 'E')) {
            floating = true;
            ++pos;
            if (pos < src.size()
                && (src[pos] == '+' || src[pos] == '-'))
                ++pos;
            const std::size_t exp_start = pos;
            while (pos < src.size() && std::isdigit(
                           static_cast<unsigned char>(src[pos])))
                ++pos;
            if (pos == exp_start) {
                fail("expected digits in exponent");
                return JsonValue();
            }
        }
        if (!has_digits) {
            fail("invalid value");
            return JsonValue();
        }
        const std::string token = src.substr(start, pos - start);
        if (floating)
            return JsonValue(std::strtod(token.c_str(), nullptr));
        if (token[0] == '-')
            return JsonValue(static_cast<std::int64_t>(
                    std::strtoll(token.c_str(), nullptr, 10)));
        return JsonValue(static_cast<std::uint64_t>(
                std::strtoull(token.c_str(), nullptr, 10)));
    }

    static constexpr int MAX_DEPTH = 128;

    const std::string &src;
    std::size_t pos = 0;
    int depth = 0;
    bool ok = true;
    std::string message;
    std::size_t errorPos = 0;
};

} // anonymous namespace

JsonValue
JsonValue::parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    Parser parser(text);
    return parser.parseDocument(error);
}

} // namespace confsim
