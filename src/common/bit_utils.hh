/**
 * @file
 * Small bit-manipulation helpers used by table-indexed structures.
 */

#ifndef CONFSIM_COMMON_BIT_UTILS_HH
#define CONFSIM_COMMON_BIT_UTILS_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace confsim
{

/** @return true iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Integer base-2 logarithm of a power of two.
 * @param v value to take the logarithm of; must be a power of two.
 * @return floor(log2(v)).
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** @return a mask with the low @p bits bits set. */
constexpr std::uint64_t
lowBitMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << bits) - 1);
}

/**
 * Fold the bits of an address into @p bits bits by xor-ing successive
 * chunks, discarding the low @p shift alignment bits first.
 */
inline std::uint64_t
foldAddress(Addr addr, unsigned bits, unsigned shift = 2)
{
    std::uint64_t v = addr >> shift;
    std::uint64_t result = 0;
    while (v != 0) {
        result ^= v & lowBitMask(bits);
        v >>= bits;
    }
    return result;
}

} // namespace confsim

#endif // CONFSIM_COMMON_BIT_UTILS_HH
