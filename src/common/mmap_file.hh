/**
 * @file
 * Read-only memory-mapped files. MappedFile is the zero-copy backing
 * of mmap-able artifacts (see harness/artifact_store.hh): consumers
 * hold a shared_ptr to the mapping and read column data in place, so
 * a warm load costs page faults instead of decode work.
 *
 * On POSIX the file is mapped PROT_READ/MAP_PRIVATE; elsewhere the
 * class degrades to reading the file into heap memory — same
 * interface, no zero-copy. mapped() tells the two apart.
 */

#ifndef CONFSIM_COMMON_MMAP_FILE_HH
#define CONFSIM_COMMON_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace confsim
{

/**
 * An immutable byte view of one file, mmap-backed where available.
 * Instances are created via map() and shared by const pointer; the
 * mapping lives until the last reference drops.
 */
class MappedFile
{
  public:
    /**
     * Map @p path read-only.
     * @return null (with @p error set when non-null) when the file
     *         cannot be opened, sized, or mapped.
     */
    static std::shared_ptr<const MappedFile>
    map(const std::string &path, std::string *error = nullptr);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** First byte of the file (null iff the file is empty). */
    const std::uint8_t *data() const { return bytes; }

    /** File size in bytes. */
    std::size_t size() const { return length; }

    /** True when mmap-backed, false on the heap fallback. */
    bool mapped() const { return viaMmap; }

  private:
    MappedFile() = default;

    const std::uint8_t *bytes = nullptr;
    std::size_t length = 0;
    bool viaMmap = false;
    std::vector<std::uint8_t> heap; ///< fallback storage
};

} // namespace confsim

#endif // CONFSIM_COMMON_MMAP_FILE_HH
