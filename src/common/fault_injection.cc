#include "common/fault_injection.hh"

#include <cerrno>
#include <cstdlib>

namespace confsim
{

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultPlan &newPlan)
{
    std::lock_guard<std::mutex> lock(mtx);
    plan = newPlan;
    artifactReads.store(0, std::memory_order_relaxed);
    artifactWrites.store(0, std::memory_order_relaxed);
    traceReads.store(0, std::memory_order_relaxed);
    taskAttempts.store(0, std::memory_order_relaxed);
    workerSpawns.store(0, std::memory_order_relaxed);
    clientResponses.store(0, std::memory_order_relaxed);
    active.store(true, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mtx);
    active.store(false, std::memory_order_release);
    plan = FaultPlan{};
}

namespace
{

/** Flip one byte near the middle of @p bytes (offset is deterministic
 *  for a given payload size, and never the very first byte so magic
 *  checks alone don't mask the corruption path). */
void
flipMiddleByte(std::string &bytes)
{
    if (bytes.empty())
        return;
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
}

} // anonymous namespace

void
FaultInjector::onArtifactRead(std::string &bytes)
{
    if (!armed())
        return;
    const std::uint64_t n =
        artifactReads.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(mtx);
    if (plan.flipArtifactRead != 0 && n == plan.flipArtifactRead)
        flipMiddleByte(bytes);
}

void
FaultInjector::onArtifactWrite(std::string &bytes)
{
    if (!armed())
        return;
    const std::uint64_t n =
        artifactWrites.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(mtx);
    if (plan.truncateArtifactWrite != 0
        && n == plan.truncateArtifactWrite)
        bytes.resize(bytes.size() / 2);
}

void
FaultInjector::onTraceFileRead(std::string &bytes)
{
    if (!armed())
        return;
    const std::uint64_t n =
        traceReads.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(mtx);
    if (plan.flipTraceRead != 0 && n == plan.flipTraceRead)
        flipMiddleByte(bytes);
}

TaskFault
FaultInjector::onTaskAttempt()
{
    if (!armed())
        return TaskFault::None;
    const std::uint64_t n =
        taskAttempts.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(mtx);
    if (plan.failTask != 0 && n == plan.failTask)
        return TaskFault::ThrowFatal;
    if (plan.transientTask != 0 && n >= plan.transientTask
        && n < plan.transientTask + plan.transientCount)
        return TaskFault::ThrowTransient;
    if (plan.stallTask != 0 && n == plan.stallTask)
        return TaskFault::Stall;
    return TaskFault::None;
}

bool
FaultInjector::onWorkerSpawn()
{
    if (!armed())
        return false;
    const std::uint64_t n =
        workerSpawns.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(mtx);
    return plan.killWorker != 0 && n == plan.killWorker;
}

bool
FaultInjector::onClientResponse()
{
    if (!armed())
        return false;
    const std::uint64_t n =
        clientResponses.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(mtx);
    return plan.dropConnection != 0 && n == plan.dropConnection;
}

bool
parseFaultPlan(const std::string &spec, FaultPlan &plan,
               std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    auto parseOrdinal = [&](const std::string &text,
                            std::uint64_t &out) {
        if (text.empty())
            return false;
        errno = 0;
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(text.c_str(), &end, 10);
        if (errno == ERANGE || end == text.c_str() || *end != '\0')
            return false;
        out = v;
        return true;
    };

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("fault '" + item + "': expected name=N");
        const std::string name = item.substr(0, eq);
        std::string value = item.substr(eq + 1);

        std::uint64_t count = 1;
        if (name == "transient-task") {
            const std::size_t colon = value.find(':');
            if (colon != std::string::npos) {
                if (!parseOrdinal(value.substr(colon + 1), count)
                    || count == 0)
                    return fail("transient-task: bad window length");
                value = value.substr(0, colon);
            }
        }

        std::uint64_t n = 0;
        if (!parseOrdinal(value, n))
            return fail("fault '" + name + "': bad ordinal '" + value
                        + "'");

        if (name == "flip-artifact-read") {
            plan.flipArtifactRead = n;
        } else if (name == "truncate-artifact-write") {
            plan.truncateArtifactWrite = n;
        } else if (name == "flip-trace-read") {
            plan.flipTraceRead = n;
        } else if (name == "fail-task") {
            plan.failTask = n;
        } else if (name == "transient-task") {
            plan.transientTask = n;
            plan.transientCount = count;
        } else if (name == "stall-task") {
            plan.stallTask = n;
        } else if (name == "kill-worker") {
            plan.killWorker = n;
        } else if (name == "drop-connection") {
            plan.dropConnection = n;
        } else {
            return fail("unknown fault '" + name + "'");
        }
    }
    return true;
}

} // namespace confsim
