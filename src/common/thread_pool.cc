#include "common/thread_pool.hh"

namespace confsim
{

ThreadPool::ThreadPool(unsigned threads)
{
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &worker : workers)
        worker.join();
}

unsigned
ThreadPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(job));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job(); // packaged_task captures any exception in its future
    }
}

} // namespace confsim
