/**
 * @file
 * Plain-text table renderer and CSV writer used by the benchmark
 * harness to print paper-style tables and figure series.
 */

#ifndef CONFSIM_COMMON_TABLE_HH
#define CONFSIM_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace confsim
{

/**
 * A simple column-aligned text table. Cells are strings; helpers format
 * percentages and counts the way the paper's tables do.
 */
class TextTable
{
  public:
    /** @param column_headers header cell for each column. */
    explicit TextTable(std::vector<std::string> column_headers);

    /** Append a full row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header separator. */
    std::string render() const;

    /** Render as comma-separated values (header + rows). */
    std::string renderCsv() const;

    /** Number of data rows. */
    std::size_t rowCount() const { return rows.size(); }

    /** Format a fraction as a paper-style percentage, e.g. "96%". */
    static std::string pct(double fraction, int decimals = 0);

    /** Format a double with fixed decimals. */
    static std::string num(double value, int decimals = 2);

    /** Format an integer count. */
    static std::string count(std::uint64_t value);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace confsim

#endif // CONFSIM_COMMON_TABLE_HH
