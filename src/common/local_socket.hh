/**
 * @file
 * Minimal Unix-domain stream sockets for the confsim serve protocol:
 * a RAII fd wrapper, listen/accept/connect helpers, full-buffer send,
 * and a LineSplitter that reassembles newline-delimited frames from
 * arbitrary read chunks (the daemon's per-connection input buffer).
 *
 * Everything throws ConfsimError{Io} on syscall failure; accept and
 * read surface EOF/EAGAIN as ordinary return values so the caller's
 * poll loop stays in charge.
 */

#ifndef CONFSIM_COMMON_LOCAL_SOCKET_HH
#define CONFSIM_COMMON_LOCAL_SOCKET_HH

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

namespace confsim
{

/** Owning file descriptor (closes on destruction; movable). */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : fd_(fd) {}
    ~OwnedFd() { reset(); }

    OwnedFd(OwnedFd &&other) noexcept : fd_(other.release()) {}
    OwnedFd &
    operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Close now (idempotent). */
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on a Unix-domain stream socket at @p path, unlinking
 * any stale socket file first. The path must fit sockaddr_un
 * (~107 bytes). CLOEXEC is set so worker processes never inherit it.
 * @throws ConfsimError{Io} on failure.
 */
OwnedFd listenUnixSocket(const std::string &path, int backlog = 64);

/**
 * Connect to the daemon's socket at @p path.
 * @throws ConfsimError{Io} (ECONNREFUSED/ENOENT become "is the daemon
 *         running?" messages).
 */
OwnedFd connectUnixSocket(const std::string &path);

/**
 * Accept one pending connection (CLOEXEC). Returns an invalid fd if
 * the listen socket has none ready (EAGAIN/ECONNABORTED).
 * @throws ConfsimError{Io} on other failures.
 */
OwnedFd acceptConnection(int listenFd);

/**
 * Write all of @p data to @p fd, retrying short writes and EINTR.
 * @return false if the peer vanished (EPIPE/ECONNRESET) or a send
 *         timeout (SO_SNDTIMEO) expired — the daemon treats both as
 *         a disconnect, not an error.
 * @throws ConfsimError{Io} on any other failure.
 */
bool sendAll(int fd, const std::string &data);

/**
 * Read one chunk (up to @p maxBytes) from @p fd into @p out
 * (appended). Returns the byte count, 0 on EOF, nullopt if the read
 * would block (EAGAIN on a nonblocking fd).
 * @throws ConfsimError{Io} on failure.
 */
std::optional<std::size_t> readChunk(int fd, std::string &out,
                                     std::size_t maxBytes = 65536);

/**
 * Reassembles newline-terminated lines from arbitrary input chunks.
 * Feed bytes as they arrive; nextLine() yields each complete line
 * (without its '\n') in order. A maximum line length bounds memory
 * against a client that never sends a newline: once exceeded, the
 * splitter enters an overflow state — the caller should answer with a
 * structured error and drop the connection.
 */
class LineSplitter
{
  public:
    explicit LineSplitter(std::size_t maxLineBytes = 1 << 20)
        : maxLine(maxLineBytes)
    {}

    /** Append an input chunk. No-op once overflowed. */
    void feed(const std::string &chunk);

    /** Pop the next complete line, if any. */
    std::optional<std::string> nextLine();

    /** A line exceeded the maximum length (sticky). */
    bool overflowed() const { return overflow; }

    /** Bytes buffered awaiting a newline. */
    std::size_t pendingBytes() const { return buf.size() - pos; }

  private:
    std::string buf;
    std::size_t pos = 0; ///< start of the unconsumed region
    std::size_t maxLine;
    bool overflow = false;
};

} // namespace confsim

#endif // CONFSIM_COMMON_LOCAL_SOCKET_HH
