#include "common/stats_registry.hh"

namespace confsim
{

namespace
{

/**
 * Navigate a dotted path below @p root, creating objects along the
 * way, and return the leaf slot.
 */
JsonValue &
slotFor(JsonValue &root, const std::string &path)
{
    JsonValue *node = &root;
    std::size_t start = 0;
    for (;;) {
        const std::size_t dot = path.find('.', start);
        if (dot == std::string::npos)
            return (*node)[path.substr(start)];
        node = &(*node)[path.substr(start, dot - start)];
        start = dot + 1;
    }
}

} // anonymous namespace

std::string
StatsRegistry::fullPath(const std::string &stat_name) const
{
    std::string path;
    for (const auto &scope : scopeStack) {
        path += scope;
        path += '.';
    }
    path += stat_name;
    return path;
}

void
StatsRegistry::addCounter(const std::string &stat_name,
                          std::uint64_t *value,
                          const std::string &description)
{
    Entry e;
    e.path = fullPath(stat_name);
    e.description = description;
    e.kind = StatKind::Counter;
    e.counter = value;
    e.owner = objectStack.empty() ? nullptr : objectStack.back();
    stats.push_back(std::move(e));
}

void
StatsRegistry::addRatio(const std::string &stat_name,
                        const std::uint64_t *numerator,
                        const std::uint64_t *denominator,
                        const std::string &description)
{
    Entry e;
    e.path = fullPath(stat_name);
    e.description = description;
    e.kind = StatKind::Ratio;
    e.num = numerator;
    e.den = denominator;
    e.owner = objectStack.empty() ? nullptr : objectStack.back();
    stats.push_back(std::move(e));
}

void
StatsRegistry::addHistogram(const std::string &stat_name,
                            const Histogram *histogram,
                            const std::string &description)
{
    Entry e;
    e.path = fullPath(stat_name);
    e.description = description;
    e.kind = StatKind::Histogram;
    e.histogram = histogram;
    e.owner = objectStack.empty() ? nullptr : objectStack.back();
    stats.push_back(std::move(e));
}

void
StatsRegistry::registerObject(const std::string &path, SimObject &obj)
{
    ObjectRecord rec;
    rec.path = fullPath(path);
    rec.object = &obj;
    objectRecords.push_back(rec);

    StatsScope scope(*this, path);
    objectStack.push_back(&obj);
    obj.registerStats(*this);
    objectStack.pop_back();
}

std::size_t
StatsRegistry::countersOwnedBy(const SimObject &obj) const
{
    std::size_t count = 0;
    for (const auto &e : stats)
        if (e.owner == &obj && e.kind == StatKind::Counter)
            ++count;
    return count;
}

bool
StatsRegistry::countersZeroFor(const SimObject &obj) const
{
    for (const auto &e : stats)
        if (e.owner == &obj && e.kind == StatKind::Counter
            && *e.counter != 0)
            return false;
    return true;
}

void
StatsRegistry::zeroCounters()
{
    for (auto &e : stats)
        if (e.kind == StatKind::Counter)
            *e.counter = 0;
}

void
StatsRegistry::resetObjects()
{
    for (auto &rec : objectRecords)
        rec.object->reset();
}

JsonValue
StatsRegistry::statsJson() const
{
    JsonValue root = JsonValue::object();
    for (const auto &e : stats) {
        JsonValue &slot = slotFor(root, e.path);
        switch (e.kind) {
          case StatKind::Counter:
            slot = JsonValue(*e.counter);
            break;
          case StatKind::Ratio:
            slot = JsonValue(
                    *e.den == 0
                        ? 0.0
                        : static_cast<double>(*e.num)
                            / static_cast<double>(*e.den));
            break;
          case StatKind::Histogram: {
            JsonValue h = JsonValue::object();
            JsonValue buckets = JsonValue::array();
            for (std::size_t i = 0; i < e.histogram->size(); ++i)
                buckets.push(JsonValue(e.histogram->bucket(i)));
            h["buckets"] = std::move(buckets);
            h["overflow"] = JsonValue(e.histogram->overflow());
            h["total"] = JsonValue(e.histogram->total());
            slot = std::move(h);
            break;
          }
        }
    }
    return root;
}

JsonValue
StatsRegistry::configJson() const
{
    JsonValue root = JsonValue::object();
    for (const auto &rec : objectRecords) {
        JsonValue &slot = slotFor(root, rec.path);
        if (!slot.isObject())
            slot = JsonValue::object();
        ConfigWriter writer(slot);
        writer.putString("name", rec.object->name());
        rec.object->describeConfig(writer);
    }
    return root;
}

} // namespace confsim
