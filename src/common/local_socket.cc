#include "common/local_socket.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/confsim_error.hh"

namespace confsim
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw ConfsimError(ErrorCode::Io,
                       what + ": " + std::strerror(errno));
}

void
fillAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw ConfsimError(ErrorCode::InvalidConfig,
                           "socket path '" + path
                           + "' is empty or too long (max "
                           + std::to_string(sizeof(addr.sun_path) - 1)
                           + " bytes)");
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

OwnedFd
newUnixSocket()
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throwErrno("socket");
    return OwnedFd(fd);
}

} // anonymous namespace

void
OwnedFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

OwnedFd
listenUnixSocket(const std::string &path, int backlog)
{
    sockaddr_un addr;
    fillAddr(path, addr);
    OwnedFd fd = newUnixSocket();
    // A stale socket file from a dead daemon would make bind fail
    // with EADDRINUSE; a live daemon still holds its listen fd, so a
    // second daemon on the same path steals the file — callers pick
    // per-instance paths.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind '" + path + "'");
    if (::listen(fd.get(), backlog) != 0)
        throwErrno("listen '" + path + "'");
    return fd;
}

OwnedFd
connectUnixSocket(const std::string &path)
{
    sockaddr_un addr;
    fillAddr(path, addr);
    OwnedFd fd = newUnixSocket();
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno == ECONNREFUSED || errno == ENOENT)
            throw ConfsimError(
                    ErrorCode::Io,
                    "cannot connect to '" + path
                    + "' — is the daemon running? ("
                    + std::strerror(errno) + ")");
        throwErrno("connect '" + path + "'");
    }
    return fd;
}

OwnedFd
acceptConnection(int listenFd)
{
    for (;;) {
        int fd = ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0)
            return OwnedFd(fd);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK
            || errno == ECONNABORTED)
            return OwnedFd();
        throwErrno("accept");
    }
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN on a blocking socket = SO_SNDTIMEO expired: the
            // peer stopped reading. Treat like a disconnect so one
            // stuck client can never wedge the daemon.
            if (errno == EPIPE || errno == ECONNRESET
                || errno == EAGAIN || errno == EWOULDBLOCK)
                return false;
            throwErrno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::size_t>
readChunk(int fd, std::string &out, std::size_t maxBytes)
{
    char buf[65536];
    if (maxBytes > sizeof(buf))
        maxBytes = sizeof(buf);
    for (;;) {
        const ssize_t n = ::read(fd, buf, maxBytes);
        if (n >= 0) {
            out.append(buf, static_cast<std::size_t>(n));
            return static_cast<std::size_t>(n);
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return std::nullopt;
        if (errno == ECONNRESET)
            return std::size_t{0}; // peer vanished == EOF
        throwErrno("read");
    }
}

void
LineSplitter::feed(const std::string &chunk)
{
    if (overflow)
        return;
    // Compact once the consumed prefix dominates, keeping the buffer
    // bounded by pending data rather than connection lifetime.
    if (pos > 4096 && pos > buf.size() / 2) {
        buf.erase(0, pos);
        pos = 0;
    }
    buf += chunk;
    if (buf.size() - pos > maxLine
        && buf.find('\n', pos) == std::string::npos)
        overflow = true;
}

std::optional<std::string>
LineSplitter::nextLine()
{
    if (overflow)
        return std::nullopt;
    const std::size_t nl = buf.find('\n', pos);
    if (nl == std::string::npos)
        return std::nullopt;
    if (nl - pos > maxLine) {
        overflow = true;
        return std::nullopt;
    }
    std::string line = buf.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
}

} // namespace confsim
