/**
 * @file
 * N-bit saturating counter, the workhorse state element of branch
 * predictors and of the JRS miss-distance counter (MDC) tables.
 */

#ifndef CONFSIM_COMMON_SAT_COUNTER_HH
#define CONFSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace confsim
{

/**
 * An unsigned saturating counter with a configurable bit width.
 *
 * For a 2-bit branch-direction counter the conventional encoding is
 * 0 = strongly not-taken, 1 = weakly not-taken, 2 = weakly taken,
 * 3 = strongly taken; taken() and isWeak() implement that reading.
 */
class SatCounter
{
  public:
    /**
     * @param bits counter width in bits (1..16).
     * @param initial initial counter value (clamped to the maximum).
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal((1u << bits) - 1),
          value(initial > maxVal ? maxVal : initial)
    {
        if (bits == 0 || bits > 16)
            fatal("SatCounter width must be in [1, 16]");
    }

    /** Increment, saturating at the maximum value. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Reset the counter to zero (JRS "resetting counter" semantics). */
    void reset() { value = 0; }

    /** Set the counter to its maximum value. */
    void saturate() { value = maxVal; }

    /** Current raw counter value. */
    unsigned read() const { return value; }

    /** Maximum representable value. */
    unsigned max() const { return maxVal; }

    /** Direction reading: counters in the upper half predict taken. */
    bool taken() const { return value > maxVal / 2; }

    /**
     * Hysteresis reading: the two transitional middle states of the
     * classic 2-bit FSM are "weak"; the saturated extremes are "strong".
     * Generalised to n bits as "neither 0 nor max".
     */
    bool isWeak() const { return value != 0 && value != maxVal; }

    /** True when fully saturated in either direction. */
    bool isStrong() const { return !isWeak(); }

    /**
     * Move the counter toward the given outcome (standard bimodal
     * update rule).
     * @param outcome_taken the resolved branch direction.
     */
    void
    update(bool outcome_taken)
    {
        if (outcome_taken)
            increment();
        else
            decrement();
    }

  private:
    unsigned maxVal;
    unsigned value;
};

} // namespace confsim

#endif // CONFSIM_COMMON_SAT_COUNTER_HH
