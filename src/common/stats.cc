#include "common/stats.hh"

#include <cmath>

namespace confsim
{

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        runningMean = x;
        m2 = 0.0;
        minVal = x;
        maxVal = x;
        return;
    }
    const double delta = x - runningMean;
    runningMean += delta / static_cast<double>(n);
    m2 += delta * (x - runningMean);
    if (x < minVal)
        minVal = x;
    if (x > maxVal)
        maxVal = x;
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    n = 0;
    total = 0.0;
    runningMean = 0.0;
    m2 = 0.0;
    minVal = 0.0;
    maxVal = 0.0;
}

Histogram::Histogram(std::size_t num_buckets)
    : counts(num_buckets, 0)
{
}

void
Histogram::add(std::uint64_t x)
{
    ++totalCount;
    if (x < counts.size())
        ++counts[x];
    else
        ++overflowCount;
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    return i < counts.size() ? counts[i] : 0;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    overflowCount = 0;
    totalCount = 0;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        const double clamped = v > 1e-12 ? v : 1e-12;
        log_sum += std::log(clamped);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace confsim
