/**
 * @file
 * Dependency-free content checksums for artifact framing.
 *
 * The artifact store and the sweep journal frame every payload with an
 * XXH64 digest so that torn writes, bit rot, and truncation are
 * detected before a corrupt artifact can influence results. XXH64 is
 * used (rather than a cryptographic hash) because the threat model is
 * accidental corruption, not an adversary, and the checksum sits on
 * the artifact-load fast path.
 *
 * The implementation follows the public XXH64 specification
 * (Yann Collet, BSD); equal inputs produce equal digests on every
 * platform and standard library, which makes the digests safe to
 * persist and compare across runs and machines.
 */

#ifndef CONFSIM_COMMON_CHECKSUM_HH
#define CONFSIM_COMMON_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace confsim
{

/**
 * XXH64 digest of @p len bytes at @p data.
 * @param seed digest seed; distinct seeds give independent digests.
 */
std::uint64_t xxhash64(const void *data, std::size_t len,
                       std::uint64_t seed = 0);

/** XXH64 of a byte string. */
inline std::uint64_t
xxhash64(std::string_view data, std::uint64_t seed = 0)
{
    return xxhash64(data.data(), data.size(), seed);
}

/** @p value as a fixed-width 16-digit lowercase hex string (the
 *  filename-safe spelling of a content key). */
std::string hexDigest(std::uint64_t value);

} // namespace confsim

#endif // CONFSIM_COMMON_CHECKSUM_HH
