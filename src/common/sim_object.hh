/**
 * @file
 * Uniform component interface for every stateful simulator object.
 *
 * Each branch predictor, confidence estimator, cache, BTB, pipeline
 * and speculation-control policy is a SimObject: it has a canonical
 * name, can restore its power-on state, registers its statistics with
 * a StatsRegistry (hierarchical dotted paths, pointers into the
 * component's own counters — zero hot-path overhead), and describes
 * its construction-time configuration to a ConfigWriter. The registry
 * is the single source of truth for component labels and the substrate
 * behind `confsim --json` / `--config` serialization.
 */

#ifndef CONFSIM_COMMON_SIM_OBJECT_HH
#define CONFSIM_COMMON_SIM_OBJECT_HH

#include <string>

namespace confsim
{

class StatsRegistry;
class ConfigWriter;

/**
 * Base interface of every stateful simulator component.
 */
class SimObject
{
  public:
    virtual ~SimObject() = default;

    /** Canonical component name, e.g. "gshare" or "icache". */
    virtual std::string name() const = 0;

    /** Restore the power-on state, including any registered stats. */
    virtual void reset() = 0;

    /**
     * Register this object's statistics under the registry's current
     * scope. The default registers nothing (stateless components).
     * Registered pointers must stay valid for the registry's lifetime.
     */
    virtual void registerStats(StatsRegistry &) {}

    /**
     * Describe construction-time configuration (geometry, thresholds,
     * latencies). The default describes nothing.
     */
    virtual void describeConfig(ConfigWriter &) const {}
};

} // namespace confsim

#endif // CONFSIM_COMMON_SIM_OBJECT_HH
