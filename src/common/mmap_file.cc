#include "common/mmap_file.hh"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define CONFSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace confsim
{

std::shared_ptr<const MappedFile>
MappedFile::map(const std::string &path, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return std::shared_ptr<const MappedFile>();
    };

    // make_shared needs a public ctor; wrap the private one.
    std::shared_ptr<MappedFile> file(new MappedFile());

#if CONFSIM_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail("cannot open '" + path + "': "
                    + std::strerror(errno));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return fail("cannot stat '" + path + "': "
                    + std::strerror(err));
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        file->viaMmap = true;
        return file;
    }
    void *addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping outlives the descriptor either way.
    ::close(fd);
    if (addr == MAP_FAILED)
        return fail("cannot mmap '" + path + "': "
                    + std::strerror(errno));
    file->bytes = static_cast<const std::uint8_t *>(addr);
    file->length = size;
    file->viaMmap = true;
#else
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail("cannot open '" + path + "'");
    file->heap.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return fail("cannot read '" + path + "'");
    file->bytes = file->heap.data();
    file->length = file->heap.size();
#endif
    return file;
}

MappedFile::~MappedFile()
{
#if CONFSIM_HAVE_MMAP
    if (viaMmap && bytes != nullptr)
        ::munmap(const_cast<std::uint8_t *>(bytes), length);
#endif
}

} // namespace confsim
