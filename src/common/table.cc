#include "common/table.hh"

#include <algorithm>
#include <cinttypes>
#include <sstream>

#include "common/logging.hh"

namespace confsim
{

TextTable::TextTable(std::vector<std::string> column_headers)
    : headers(std::move(column_headers))
{
    if (headers.empty())
        fatal("TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers.size())
        fatal("TextTable row width mismatch");
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };

    emit_row(headers);
    std::size_t rule_len = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(rule_len, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emit_row(headers);
    for (const auto &row : rows)
        emit_row(row);
    return out.str();
}

std::string
TextTable::pct(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
TextTable::num(double value, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TextTable::count(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    return buf;
}

} // namespace confsim
