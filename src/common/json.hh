/**
 * @file
 * Dependency-free JSON document model with a writer and a strict
 * recursive-descent parser. This backs machine-readable experiment
 * output (`confsim --json`), config files (`--config file.json`), and
 * the StatsRegistry serialization, so it preserves what a simulator
 * cares about: 64-bit counters survive a write/read round trip
 * bit-exactly (signed, unsigned and floating-point numbers are kept
 * distinct) and object members keep insertion order, making output
 * deterministic and diffable.
 */

#ifndef CONFSIM_COMMON_JSON_HH
#define CONFSIM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace confsim
{

/**
 * One JSON value: null, bool, number (int/uint/double), string, array
 * or object. Objects preserve member insertion order.
 */
class JsonValue
{
  public:
    /** Discriminator of the held value. */
    enum class Kind
    {
        Null,
        Bool,
        Int,    ///< negative integers
        Uint,   ///< non-negative integers (counters)
        Double, ///< anything with a fraction or exponent
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(bool v) : tag(Kind::Bool), boolVal(v) {}
    JsonValue(std::int64_t v) : tag(Kind::Int), intVal(v) {}
    JsonValue(std::uint64_t v) : tag(Kind::Uint), uintVal(v) {}
    JsonValue(double v) : tag(Kind::Double), doubleVal(v) {}
    JsonValue(const char *v) : tag(Kind::String), stringVal(v) {}
    JsonValue(std::string v) : tag(Kind::String), stringVal(std::move(v))
    {
    }

    /** Fresh empty array. */
    static JsonValue array();

    /** Fresh empty object. */
    static JsonValue object();

    Kind kind() const { return tag; }
    bool isNull() const { return tag == Kind::Null; }
    bool isBool() const { return tag == Kind::Bool; }
    bool
    isNumber() const
    {
        return tag == Kind::Int || tag == Kind::Uint
            || tag == Kind::Double;
    }
    bool isString() const { return tag == Kind::String; }
    bool isArray() const { return tag == Kind::Array; }
    bool isObject() const { return tag == Kind::Object; }

    /** Bool value; @p fallback when not a bool. */
    bool asBool(bool fallback = false) const;

    /** Numeric value as signed 64-bit (truncating doubles). */
    std::int64_t asInt(std::int64_t fallback = 0) const;

    /** Numeric value as unsigned 64-bit (truncating doubles). */
    std::uint64_t asUint(std::uint64_t fallback = 0) const;

    /** Numeric value as double. */
    double asDouble(double fallback = 0.0) const;

    /** String value; empty when not a string. */
    const std::string &asString() const;

    /// @name Array operations
    /// @{

    /** Append to an array (converts a Null value into an array). */
    JsonValue &push(JsonValue v);

    /** Element count (array or object members). */
    std::size_t size() const;

    /** Array element @p i; a shared Null when out of range. */
    const JsonValue &at(std::size_t i) const;

    /** All array elements. */
    const std::vector<JsonValue> &elements() const { return items; }

    /// @}
    /// @name Object operations
    /// @{

    /**
     * Member lookup, inserting a Null member (and converting a Null
     * value into an object) when @p key is absent.
     */
    JsonValue &operator[](const std::string &key);

    /** Member lookup without insertion; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** True when the object has a member named @p key. */
    bool contains(const std::string &key) const;

    /** All object members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return fields;
    }

    /// @}

    /** Deep structural equality (Int/Uint/Double compare by value). */
    bool operator==(const JsonValue &other) const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits a compact single line. Doubles print with enough
     * digits to round-trip exactly.
     */
    std::string dump(int indent = 2) const;

    /**
     * Parse a complete JSON document.
     * @param text the document.
     * @param error receives a message with offset on failure (optional).
     * @return the parsed value, or a Null value on error (with
     *         @p error set — a bare `null` document sets no error).
     */
    static JsonValue parse(const std::string &text,
                           std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind tag = Kind::Null;
    bool boolVal = false;
    std::int64_t intVal = 0;
    std::uint64_t uintVal = 0;
    double doubleVal = 0.0;
    std::string stringVal;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;
};

} // namespace confsim

#endif // CONFSIM_COMMON_JSON_HH
