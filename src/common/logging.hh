/**
 * @file
 * Error-reporting helpers in the gem5 fatal/panic tradition.
 *
 * fatal() is for user error (bad configuration); panic() is for internal
 * invariant violations that should never happen regardless of input.
 */

#ifndef CONFSIM_COMMON_LOGGING_HH
#define CONFSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace confsim
{

/**
 * Abort the process for an internal error. Use for simulator bugs.
 * @param msg description of the violated invariant.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process for a user/configuration error.
 * @param msg description of the bad input.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/**
 * Print a non-fatal warning about questionable behaviour.
 * @param msg description of the condition.
 */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace confsim

#endif // CONFSIM_COMMON_LOGGING_HH
