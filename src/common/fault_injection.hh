/**
 * @file
 * Deterministic fault injection for exercising recovery paths.
 *
 * A FaultPlan names the nth occurrence of an operation to sabotage —
 * the nth artifact read gets a byte flipped, the nth artifact write is
 * truncated mid-frame, the nth task attempt throws or stalls — and
 * the process-wide FaultInjector counts occurrences and applies the
 * plan. Ordinals are 1-based and deterministic under serial execution
 * (jobs = 0/1), which is how the ctest recovery suites run; 0 disables
 * a fault.
 *
 * The hooks are threaded through the artifact store, the parallel
 * runner, and the trace file reader; when no plan is armed every hook
 * is a relaxed atomic load and a branch, so production runs pay
 * effectively nothing.
 *
 * Plans can also be armed from the environment (CONFSIM_FAULT_PLAN)
 * via parseFaultPlan(), e.g.:
 *
 *   CONFSIM_FAULT_PLAN=fail-task=3 confsim --sweep grid.json
 *   CONFSIM_FAULT_PLAN=flip-artifact-read=1,transient-task=2:1 ...
 */

#ifndef CONFSIM_COMMON_FAULT_INJECTION_HH
#define CONFSIM_COMMON_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace confsim
{

/** Which deterministic faults to inject (0 = fault disabled). */
struct FaultPlan
{
    /** Flip one byte of the nth artifact-store read. */
    std::uint64_t flipArtifactRead = 0;
    /** Truncate the nth artifact-store write mid-frame. */
    std::uint64_t truncateArtifactWrite = 0;
    /** Flip one byte of the nth trace file read. */
    std::uint64_t flipTraceRead = 0;
    /** nth task attempt throws a fatal (non-retryable) error. */
    std::uint64_t failTask = 0;
    /**
     * First task-attempt ordinal of a transient failure window:
     * attempts [transientTask, transientTask + transientCount) throw
     * ErrorCode::Transient. With retry enabled the window models a
     * task that fails transientCount times and then succeeds.
     */
    std::uint64_t transientTask = 0;
    std::uint64_t transientCount = 1;
    /** nth task attempt stalls until its cancel token fires (the
     *  deterministic stand-in for a runaway workload). */
    std::uint64_t stallTask = 0;
    /** SIGKILL the nth spawned serve worker mid-shard (the daemon
     *  flags that worker to die after computing, before replying). */
    std::uint64_t killWorker = 0;
    /** Close the nth client connection mid-response (the daemon drops
     *  the socket after writing half the response line). */
    std::uint64_t dropConnection = 0;

    bool operator==(const FaultPlan &) const = default;
};

/** Fault decision for one task attempt. */
enum class TaskFault
{
    None,
    ThrowFatal,
    ThrowTransient,
    Stall,
};

/**
 * Process-wide fault state: a plan plus occurrence counters. Hooks
 * are thread-safe; ordinals are assigned atomically in call order.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Install @p plan and reset all occurrence counters. */
    void arm(const FaultPlan &plan);

    /** Remove any plan (hooks become no-ops). */
    void disarm();

    /** A plan is currently armed. */
    bool armed() const { return active.load(std::memory_order_acquire); }

    /** Artifact-store read hook: may flip one byte of @p bytes. */
    void onArtifactRead(std::string &bytes);

    /** Artifact-store write hook: may truncate @p bytes. */
    void onArtifactWrite(std::string &bytes);

    /** Trace file read hook: may flip one byte of @p bytes. */
    void onTraceFileRead(std::string &bytes);

    /** Task hook: the fault (if any) for this attempt ordinal. */
    TaskFault onTaskAttempt();

    /** Serve worker-spawn hook: true = sabotage this worker (the
     *  daemon tells it to SIGKILL itself mid-shard). */
    bool onWorkerSpawn();

    /** Serve response hook: true = drop this client connection
     *  mid-response. */
    bool onClientResponse();

  private:
    FaultInjector() = default;

    std::atomic<bool> active{false};
    std::mutex mtx; ///< guards plan against arm/disarm races
    FaultPlan plan;
    std::atomic<std::uint64_t> artifactReads{0};
    std::atomic<std::uint64_t> artifactWrites{0};
    std::atomic<std::uint64_t> traceReads{0};
    std::atomic<std::uint64_t> taskAttempts{0};
    std::atomic<std::uint64_t> workerSpawns{0};
    std::atomic<std::uint64_t> clientResponses{0};
};

/**
 * Parse a comma-separated plan spec: `name=N` (or `transient-task=N:K`
 * for an N-start, K-long window). Names: flip-artifact-read,
 * truncate-artifact-write, flip-trace-read, fail-task, transient-task,
 * stall-task, kill-worker, drop-connection.
 * @return false (with @p error set when non-null) on a malformed spec.
 */
bool parseFaultPlan(const std::string &spec, FaultPlan &plan,
                    std::string *error = nullptr);

/** RAII arm/disarm for tests. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan &plan)
    {
        FaultInjector::instance().arm(plan);
    }

    ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace confsim

#endif // CONFSIM_COMMON_FAULT_INJECTION_HH
