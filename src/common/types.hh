/**
 * @file
 * Fundamental scalar types shared by every ConfSim module.
 */

#ifndef CONFSIM_COMMON_TYPES_HH
#define CONFSIM_COMMON_TYPES_HH

#include <cstdint>

namespace confsim
{

/** Program address (instruction or data). */
using Addr = std::uint64_t;

/** Simulated clock cycle. */
using Cycle = std::uint64_t;

/** Monotone instruction sequence number (fetch order, incl. wrong path). */
using SeqNum = std::uint64_t;

/** Machine word of the mini-ISA. */
using Word = std::int64_t;

/** Unsigned machine word of the mini-ISA. */
using UWord = std::uint64_t;

} // namespace confsim

#endif // CONFSIM_COMMON_TYPES_HH
