#include "common/subprocess.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/confsim_error.hh"

namespace confsim
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw ConfsimError(ErrorCode::Io,
                       what + ": " + std::strerror(errno));
}

void
makePipe(int fds[2])
{
    if (::pipe2(fds, O_CLOEXEC) != 0)
        throwErrno("pipe2");
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throwErrno("fcntl O_NONBLOCK");
}

} // anonymous namespace

std::string
ExitStatus::describe() const
{
    return (signaled ? "signal " : "exit ") + std::to_string(code);
}

ChildProcess
spawnChild(const std::vector<std::string> &argv)
{
    if (argv.empty())
        throw ConfsimError(ErrorCode::Internal, "spawnChild: empty argv");

    int inPipe[2];  // parent writes [1] -> child stdin [0]
    int outPipe[2]; // child stdout [1] -> parent reads [0]
    makePipe(inPipe);
    OwnedFd inRead(inPipe[0]), inWrite(inPipe[1]);
    makePipe(outPipe);
    OwnedFd outRead(outPipe[0]), outWrite(outPipe[1]);

    const pid_t pid = ::fork();
    if (pid < 0)
        throwErrno("fork");
    if (pid == 0) {
        // Child: wire the pipe ends onto stdin/stdout (dup2 clears
        // CLOEXEC on the duplicates) and exec. Only async-signal-safe
        // calls between fork and exec.
        if (::dup2(inRead.get(), STDIN_FILENO) < 0
            || ::dup2(outWrite.get(), STDOUT_FILENO) < 0)
            ::_exit(127);
        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &a : argv)
            args.push_back(const_cast<char *>(a.c_str()));
        args.push_back(nullptr);
        ::execv(argv[0].c_str(), args.data());
        ::_exit(127);
    }

    ChildProcess child;
    child.pid = pid;
    child.toChild = std::move(inWrite);
    child.fromChild = std::move(outRead);
    setNonBlocking(child.fromChild.get());
    return child;
}

std::optional<ExitStatus>
waitChild(pid_t pid, bool block)
{
    for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, block ? 0 : WNOHANG);
        if (r == pid) {
            ExitStatus e;
            if (WIFSIGNALED(status)) {
                e.signaled = true;
                e.code = WTERMSIG(status);
            } else if (WIFEXITED(status)) {
                e.code = WEXITSTATUS(status);
            } else {
                continue; // stopped/continued: not an exit
            }
            return e;
        }
        if (r == 0)
            return std::nullopt;
        if (errno == EINTR)
            continue;
        if (errno == ECHILD)
            return std::nullopt; // already reaped
        throwErrno("waitpid");
    }
}

void
killChild(pid_t pid, int signo)
{
    if (pid > 0)
        ::kill(pid, signo);
}

std::string
selfExecutablePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        throwErrno("readlink /proc/self/exe");
    return std::string(buf, static_cast<std::size_t>(n));
}

} // namespace confsim
