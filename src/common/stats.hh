/**
 * @file
 * Lightweight statistics accumulators: running scalar statistics,
 * ratio counters, and bounded histograms. These back every measurement
 * the experiment harness reports.
 */

#ifndef CONFSIM_COMMON_STATS_HH
#define CONFSIM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace confsim
{

/**
 * Accumulates count/sum/min/max/mean/variance of a stream of samples
 * using Welford's online algorithm.
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Add one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n == 0 ? 0.0 : runningMean; }

    /** Population variance; 0 when fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const { return n == 0 ? 0.0 : minVal; }

    /** Largest sample; 0 when empty. */
    double max() const { return n == 0 ? 0.0 : maxVal; }

    /** Discard all samples. */
    void reset();

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double minVal = 0.0;
    double maxVal = 0.0;
};

/**
 * A hit/total ratio counter with a safe quotient.
 */
class RatioStat
{
  public:
    /** Record one event; @p hit says whether it counts as a numerator. */
    void
    record(bool hit)
    {
        ++totalCount;
        if (hit)
            ++hitCount;
    }

    /** Numerator. */
    std::uint64_t hits() const { return hitCount; }

    /** Denominator. */
    std::uint64_t total() const { return totalCount; }

    /** hits/total; 0 when no events recorded. */
    double
    ratio() const
    {
        return totalCount == 0
            ? 0.0
            : static_cast<double>(hitCount)
                / static_cast<double>(totalCount);
    }

    /** Discard all events. */
    void
    reset()
    {
        hitCount = 0;
        totalCount = 0;
    }

  private:
    std::uint64_t hitCount = 0;
    std::uint64_t totalCount = 0;
};

/**
 * Fixed-bucket histogram over [0, buckets); samples at or beyond the last
 * bucket accumulate in an overflow bin. Used for misprediction-distance
 * distributions (Figs. 6-9).
 */
class Histogram
{
  public:
    /** @param num_buckets number of unit-width buckets before overflow. */
    explicit Histogram(std::size_t num_buckets);

    /** Add one sample at integer position @p x. */
    void add(std::uint64_t x);

    /** Count in bucket @p i. */
    std::uint64_t bucket(std::size_t i) const;

    /** Count of samples >= the bucket range. */
    std::uint64_t overflow() const { return overflowCount; }

    /** Total samples. */
    std::uint64_t total() const { return totalCount; }

    /** Number of unit buckets. */
    std::size_t size() const { return counts.size(); }

    /** Discard all samples. */
    void reset();

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t overflowCount = 0;
    std::uint64_t totalCount = 0;
};

/**
 * Geometric mean over a set of strictly positive values; values <= 0 are
 * clamped to a tiny epsilon so a single zero does not zero the mean
 * (matches common benchmarking practice).
 */
double geometricMean(const std::vector<double> &values);

} // namespace confsim

#endif // CONFSIM_COMMON_STATS_HH
