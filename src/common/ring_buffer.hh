/**
 * @file
 * Fixed-layout FIFO ring buffer: the allocation-friendly replacement
 * for std::deque on simulator hot paths (in-flight branch queues,
 * replay pending queues). Storage is a single contiguous power-of-two
 * array that grows geometrically and is then reused forever — steady
 * state does zero allocator work, unlike std::deque's per-chunk
 * churn.
 */

#ifndef CONFSIM_COMMON_RING_BUFFER_HH
#define CONFSIM_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace confsim
{

/**
 * FIFO queue over a power-of-two circular array. Elements are indexed
 * logically: operator[](0) is the front (oldest), operator[](size()-1)
 * the back. pop_front()/clear() destroy value state lazily (slots are
 * overwritten on reuse), which is fine for the trivially-destructible
 * records the simulator queues.
 */
template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    /** Pre-size the backing array (rounded up to a power of two). */
    explicit RingBuffer(std::size_t capacity) { reserve(capacity); }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return slots.size(); }

    /** Ensure room for @p wanted elements without reallocation. */
    void
    reserve(std::size_t wanted)
    {
        if (wanted > slots.size())
            regrow(wanted);
    }

    /** Oldest element. Precondition: !empty(). */
    T &front() { return slots[head]; }
    const T &front() const { return slots[head]; }

    /** Youngest element. Precondition: !empty(). */
    T &back() { return slots[wrap(head + count - 1)]; }
    const T &back() const { return slots[wrap(head + count - 1)]; }

    /** Logical element @p i (0 = front). Precondition: i < size(). */
    T &operator[](std::size_t i) { return slots[wrap(head + i)]; }
    const T &
    operator[](std::size_t i) const
    {
        return slots[wrap(head + i)];
    }

    /** Append to the back, growing the array when full. */
    void
    push_back(T value)
    {
        if (count == slots.size())
            regrow(count + 1);
        slots[wrap(head + count)] = std::move(value);
        ++count;
    }

    /**
     * Append an element and return a reference to its slot WITHOUT
     * clearing it: the storage is recycled, so the caller must assign
     * every field it (or any later reader) will look at. Lets hot
     * paths fill large records in place instead of constructing on
     * the stack and copying in.
     */
    T &
    push_slot()
    {
        if (count == slots.size())
            regrow(count + 1);
        T &slot = slots[wrap(head + count)];
        ++count;
        return slot;
    }

    /** Remove the front element. Precondition: !empty(). */
    void
    pop_front()
    {
        head = wrap(head + 1);
        --count;
    }

    /** Drop every element (capacity is kept). */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::size_t wrap(std::size_t i) const { return i & mask; }

    void
    regrow(std::size_t wanted)
    {
        std::size_t cap = slots.empty() ? 16 : slots.size() * 2;
        while (cap < wanted)
            cap *= 2;
        std::vector<T> grown(cap);
        for (std::size_t i = 0; i < count; ++i)
            grown[i] = std::move(slots[wrap(head + i)]);
        slots = std::move(grown);
        head = 0;
        mask = cap - 1;
    }

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t count = 0;
    std::size_t mask = 0;
};

} // namespace confsim

#endif // CONFSIM_COMMON_RING_BUFFER_HH
