/**
 * @file
 * Fixed-size worker thread pool for fan-out experiment execution.
 *
 * Tasks are arbitrary callables submitted through submit(), which
 * returns a std::future carrying the task's result or exception.
 * Determinism is the caller's job (the pool guarantees nothing about
 * execution *order*, only completion); ParallelRunner layers
 * submission-order result indexing on top.
 */

#ifndef CONFSIM_COMMON_THREAD_POOL_HH
#define CONFSIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace confsim
{

/**
 * A fixed-size std::thread pool.
 *
 * Degenerate modes: 0 threads executes every task inline at submit()
 * (useful for debugging and as the serial reference); 1 thread gives
 * fully ordered asynchronous execution.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = run tasks inline in submit(). */
    explicit ThreadPool(unsigned threads = hardwareConcurrency());

    /** Drains nothing: joins after finishing all queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (0 means inline execution). */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Best guess at the machine's hardware thread count (>= 1 even
     * when the runtime cannot tell).
     */
    static unsigned hardwareConcurrency();

    /**
     * Queue @p fn for execution. The returned future carries the
     * task's return value, or rethrows the exception it exited with.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
                std::forward<Fn>(fn));
        std::future<Result> result = task->get_future();
        if (workers.empty())
            (*task)();
        else
            enqueue([task] { (*task)(); });
        return result;
    }

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace confsim

#endif // CONFSIM_COMMON_THREAD_POOL_HH
