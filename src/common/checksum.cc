#include "common/checksum.hh"

#include <cstring>

namespace confsim
{

namespace
{

constexpr std::uint64_t PRIME1 = 0x9e3779b185ebca87ull;
constexpr std::uint64_t PRIME2 = 0xc2b2ae3d27d4eb4full;
constexpr std::uint64_t PRIME3 = 0x165667b19e3779f9ull;
constexpr std::uint64_t PRIME4 = 0x85ebca77c2b2ae63ull;
constexpr std::uint64_t PRIME5 = 0x27d4eb2f165667c5ull;

inline std::uint64_t
rotl(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline std::uint64_t
read64(const unsigned char *p)
{
    // Byte-wise little-endian load: alignment- and endian-safe.
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

inline std::uint32_t
read32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

inline std::uint64_t
round1(std::uint64_t acc, std::uint64_t input)
{
    acc += input * PRIME2;
    acc = rotl(acc, 31);
    return acc * PRIME1;
}

inline std::uint64_t
mergeRound(std::uint64_t acc, std::uint64_t val)
{
    acc ^= round1(0, val);
    return acc * PRIME1 + PRIME4;
}

} // anonymous namespace

std::uint64_t
xxhash64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    const unsigned char *const end = p + len;
    std::uint64_t h;

    if (len >= 32) {
        std::uint64_t v1 = seed + PRIME1 + PRIME2;
        std::uint64_t v2 = seed + PRIME2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - PRIME1;
        const unsigned char *const limit = end - 32;
        do {
            v1 = round1(v1, read64(p));
            v2 = round1(v2, read64(p + 8));
            v3 = round1(v3, read64(p + 16));
            v4 = round1(v4, read64(p + 24));
            p += 32;
        } while (p <= limit);

        h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
        h = mergeRound(h, v1);
        h = mergeRound(h, v2);
        h = mergeRound(h, v3);
        h = mergeRound(h, v4);
    } else {
        h = seed + PRIME5;
    }

    h += static_cast<std::uint64_t>(len);

    while (p + 8 <= end) {
        h ^= round1(0, read64(p));
        h = rotl(h, 27) * PRIME1 + PRIME4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(read32(p)) * PRIME1;
        h = rotl(h, 23) * PRIME2 + PRIME3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * PRIME5;
        h = rotl(h, 11) * PRIME1;
        ++p;
    }

    h ^= h >> 33;
    h *= PRIME2;
    h ^= h >> 29;
    h *= PRIME3;
    h ^= h >> 32;
    return h;
}

std::string
hexDigest(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace confsim
