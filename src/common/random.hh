/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by the
 * synthetic workload generators. Deliberately not std::mt19937 so that
 * streams are reproducible across standard-library implementations.
 */

#ifndef CONFSIM_COMMON_RANDOM_HH
#define CONFSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace confsim
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * algorithm), seeded via splitmix64 for full state diffusion.
 */
class Rng
{
  public:
    /** @param seed any 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @param bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free reduction is fine here; slight
        // modulo bias is irrelevant for workload synthesis.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace confsim

#endif // CONFSIM_COMMON_RANDOM_HH
