/**
 * @file
 * Structured error type for the fault-tolerance layer.
 *
 * A ConfsimError carries a machine-readable code (so the parallel
 * runner can classify failures as transient vs. fatal without string
 * matching) and a context chain that each layer extends as the error
 * propagates — "read artifact" → "load recorded run" → "sweep shard 3"
 * — giving a TaskReport the full story of a failed task.
 *
 * It derives from std::runtime_error so existing catch sites keep
 * working; what() always reflects the current code, message, and
 * context chain.
 */

#ifndef CONFSIM_COMMON_CONFSIM_ERROR_HH
#define CONFSIM_COMMON_CONFSIM_ERROR_HH

#include <stdexcept>
#include <string>
#include <vector>

namespace confsim
{

/** Failure classification used by retry/recovery policy. */
enum class ErrorCode
{
    Io,              ///< file read/write/rename failure
    CorruptArtifact, ///< checksum/framing validation failure
    Transient,       ///< safe to retry (fault injection, flaky I/O)
    Timeout,         ///< task exceeded its watchdog deadline
    Cancelled,       ///< task cancelled before/while running
    TaskFailed,      ///< a mapped task failed fatally
    InvalidConfig,   ///< malformed user input (grid, plan, flags)
    Internal,        ///< violated invariant (should never happen)
};

/** Stable lowercase name of @p code (JSON/report spelling). */
const char *errorCodeName(ErrorCode code);

/**
 * Exception with an ErrorCode and a context chain.
 *
 * what() renders as:
 *   [code] message (while: outer; inner)
 */
class ConfsimError : public std::runtime_error
{
  public:
    ConfsimError(ErrorCode code, std::string message);

    /** Failure class (drives retry/cancel policy). */
    ErrorCode code() const { return errCode; }

    /** The bare message without code prefix or context. */
    const std::string &message() const { return msg; }

    /** Context frames, innermost first. */
    const std::vector<std::string> &context() const { return frames; }

    /**
     * Append a context frame describing what the catching layer was
     * doing; returns *this so a handler can `throw e.addContext(...)`.
     */
    ConfsimError &addContext(std::string frame);

    /** Code + message + context chain. */
    const char *what() const noexcept override;

  private:
    void rebuild();

    ErrorCode errCode;
    std::string msg;
    std::vector<std::string> frames;
    std::string rendered;
};

} // namespace confsim

#endif // CONFSIM_COMMON_CONFSIM_ERROR_HH
