/**
 * @file
 * Hierarchical statistics registry in the style of production
 * simulators: components register typed statistics (counters, ratios,
 * histograms) under dotted paths ("pipeline.icache.misses"), backed by
 * pointers into the components' own counter fields so the hot path
 * keeps incrementing plain struct members with zero added overhead.
 * The registry serializes the whole component tree — config and stats
 * — to JSON, and can zero every registered counter for regression
 * harnesses.
 */

#ifndef CONFSIM_COMMON_STATS_REGISTRY_HH
#define CONFSIM_COMMON_STATS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/sim_object.hh"
#include "common/stats.hh"

namespace confsim
{

/**
 * Typed key/value sink a SimObject describes its configuration into
 * (see SimObject::describeConfig). Writes members of one JSON object;
 * nesting comes from the registry's object hierarchy, not from the
 * writer.
 */
class ConfigWriter
{
  public:
    /** @param target JSON object the key/value pairs land in. */
    explicit ConfigWriter(JsonValue &target) : obj(target) {}

    void
    putBool(const std::string &key, bool v)
    {
        obj[key] = JsonValue(v);
    }

    void
    putUint(const std::string &key, std::uint64_t v)
    {
        obj[key] = JsonValue(v);
    }

    void
    putInt(const std::string &key, std::int64_t v)
    {
        obj[key] = JsonValue(v);
    }

    void
    putDouble(const std::string &key, double v)
    {
        obj[key] = JsonValue(v);
    }

    void
    putString(const std::string &key, const std::string &v)
    {
        obj[key] = JsonValue(v);
    }

  private:
    JsonValue &obj;
};

/**
 * The component/statistics registry. Register SimObjects (which
 * recursively register their stats and children), then serialize with
 * statsJson()/configJson() or zero the counters with zeroCounters().
 *
 * Paths are dotted and deterministic: registration order defines
 * serialization order, so two identical runs emit identical JSON.
 */
class StatsRegistry
{
  public:
    /** Statistic flavour of one registered entry. */
    enum class StatKind
    {
        Counter,   ///< mutable 64-bit event count
        Ratio,     ///< derived numerator/denominator quotient
        Histogram, ///< bucketed distribution (read-only)
    };

    /** One registered statistic. */
    struct Entry
    {
        std::string path;        ///< full dotted path
        std::string description; ///< one-line meaning
        StatKind kind = StatKind::Counter;
        std::uint64_t *counter = nullptr;     ///< Counter backing
        const std::uint64_t *num = nullptr;   ///< Ratio numerator
        const std::uint64_t *den = nullptr;   ///< Ratio denominator
        const Histogram *histogram = nullptr; ///< Histogram backing
        const SimObject *owner = nullptr;     ///< registering object
    };

    /** One registered component. */
    struct ObjectRecord
    {
        std::string path; ///< full dotted path of the object
        SimObject *object = nullptr;
    };

    /// @name Statistic registration (under the current scope)
    /// @{

    /** Register a mutable event counter. */
    void addCounter(const std::string &stat_name, std::uint64_t *value,
                    const std::string &description = "");

    /** Register a derived num/den ratio (0 when den is 0). */
    void addRatio(const std::string &stat_name,
                  const std::uint64_t *numerator,
                  const std::uint64_t *denominator,
                  const std::string &description = "");

    /** Register a histogram (serialized as buckets + overflow). */
    void addHistogram(const std::string &stat_name,
                      const Histogram *histogram,
                      const std::string &description = "");

    /// @}

    /**
     * Register a component at @p path below the current scope: records
     * the object, then invokes obj.registerStats() with the scope
     * pushed so the object's stats (and child objects) nest under it.
     */
    void registerObject(const std::string &path, SimObject &obj);

    /** All registered statistics in registration order. */
    const std::vector<Entry> &entries() const { return stats; }

    /** All registered components in registration order. */
    const std::vector<ObjectRecord> &objects() const
    {
        return objectRecords;
    }

    /** Number of Counter entries registered by @p obj itself. */
    std::size_t countersOwnedBy(const SimObject &obj) const;

    /** True when every Counter entry registered by @p obj reads 0. */
    bool countersZeroFor(const SimObject &obj) const;

    /** Zero every registered Counter (Ratios/Histograms untouched). */
    void zeroCounters();

    /** Call reset() on every registered object (registration order). */
    void resetObjects();

    /** Hierarchical stats document (counters, ratios, histograms). */
    JsonValue statsJson() const;

    /** Hierarchical config document from each object's describeConfig. */
    JsonValue configJson() const;

  private:
    friend class StatsScope;

    std::string fullPath(const std::string &stat_name) const;

    std::vector<std::string> scopeStack;
    std::vector<const SimObject *> objectStack;
    std::vector<Entry> stats;
    std::vector<ObjectRecord> objectRecords;
};

/**
 * RAII scope for grouping manually registered stats:
 *
 *   StatsScope scope(reg, "frontend");
 *   reg.addCounter("stalls", &stalls);   // -> "frontend.stalls"
 */
class StatsScope
{
  public:
    StatsScope(StatsRegistry &registry, const std::string &prefix)
        : reg(registry)
    {
        reg.scopeStack.push_back(prefix);
    }

    ~StatsScope() { reg.scopeStack.pop_back(); }

    StatsScope(const StatsScope &) = delete;
    StatsScope &operator=(const StatsScope &) = delete;

  private:
    StatsRegistry &reg;
};

} // namespace confsim

#endif // CONFSIM_COMMON_STATS_REGISTRY_HH
