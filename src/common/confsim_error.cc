#include "common/confsim_error.hh"

#include <utility>

namespace confsim
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Io: return "io";
      case ErrorCode::CorruptArtifact: return "corrupt-artifact";
      case ErrorCode::Transient: return "transient";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::TaskFailed: return "task-failed";
      case ErrorCode::InvalidConfig: return "invalid-config";
      case ErrorCode::Internal: return "internal";
    }
    return "unknown";
}

ConfsimError::ConfsimError(ErrorCode code, std::string message)
    : std::runtime_error(message), errCode(code),
      msg(std::move(message))
{
    rebuild();
}

ConfsimError &
ConfsimError::addContext(std::string frame)
{
    frames.push_back(std::move(frame));
    rebuild();
    return *this;
}

void
ConfsimError::rebuild()
{
    rendered = "[";
    rendered += errorCodeName(errCode);
    rendered += "] ";
    rendered += msg;
    if (!frames.empty()) {
        rendered += " (while: ";
        for (std::size_t i = 0; i < frames.size(); ++i) {
            if (i != 0)
                rendered += "; ";
            rendered += frames[i];
        }
        rendered += ")";
    }
}

const char *
ConfsimError::what() const noexcept
{
    return rendered.c_str();
}

} // namespace confsim
