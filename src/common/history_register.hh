/**
 * @file
 * Branch-history shift register with speculative update and repair.
 *
 * Speculative global-history predictors (gshare, McFarling) shift the
 * *predicted* outcome into the history at prediction time and must restore
 * the pre-branch history when a misprediction squashes younger branches.
 * We support that by letting callers snapshot the register value.
 */

#ifndef CONFSIM_COMMON_HISTORY_REGISTER_HH
#define CONFSIM_COMMON_HISTORY_REGISTER_HH

#include <cstdint>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

/**
 * A fixed-width shift register of branch outcomes, newest bit in the
 * least-significant position.
 */
class HistoryRegister
{
  public:
    /** @param bits history length in bits (1..63). */
    explicit HistoryRegister(unsigned bits)
        : widthBits(bits), mask(lowBitMask(bits)), bitsValue(0)
    {
        if (bits == 0 || bits > 63)
            fatal("HistoryRegister width must be in [1, 63]");
    }

    /** Shift in one outcome (true = taken). */
    void
    shiftIn(bool taken)
    {
        bitsValue = ((bitsValue << 1) | (taken ? 1 : 0)) & mask;
    }

    /** Current packed history value. */
    std::uint64_t value() const { return bitsValue; }

    /** Restore a previously captured value (misprediction repair). */
    void restore(std::uint64_t v) { bitsValue = v & mask; }

    /** History length in bits. */
    unsigned width() const { return widthBits; }

    /** Clear all history bits. */
    void clear() { bitsValue = 0; }

  private:
    unsigned widthBits;
    std::uint64_t mask;
    std::uint64_t bitsValue;
};

} // namespace confsim

#endif // CONFSIM_COMMON_HISTORY_REGISTER_HH
