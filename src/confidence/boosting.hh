/**
 * @file
 * Boosting composite estimator (§4.2). Confidence mis-estimations are
 * only weakly clustered, so consecutive low-confidence estimates are
 * approximately independent Bernoulli trials: if one LC estimate is an
 * actual misprediction with probability PVN, then among N consecutive
 * LC estimates *at least one* is a misprediction with probability
 * 1 - (1 - PVN)^N.
 *
 * The boosted signal therefore describes the *pipeline state* ("the
 * instructions beyond this point are unlikely to commit"), not any
 * single branch — which is exactly what SMT fetch gating and pipeline
 * gating consume. This wrapper emits low confidence only once the
 * underlying estimator has produced N consecutive low-confidence
 * estimates.
 */

#ifndef CONFSIM_CONFIDENCE_BOOSTING_HH
#define CONFSIM_CONFIDENCE_BOOSTING_HH

#include <memory>

#include "confidence/estimator.hh"

namespace confsim
{

/** Which confidence class a BoostingEstimator accumulates. */
enum class BoostMode
{
    /** Require N consecutive LC estimates before signalling LC —
     *  boosts the PVN (SMT gating, eager execution, power). */
    LowConfidence,
    /** Require N consecutive HC estimates before signalling HC —
     *  boosts the PVP (bandwidth multithreading, §4.2 last note). */
    HighConfidence,
};

/**
 * Wraps another estimator and requires @p n consecutive estimates of
 * the boosted class before emitting that class itself.
 */
class BoostingEstimator : public ConfidenceEstimator
{
  public:
    /**
     * @param base underlying estimator (owned).
     * @param n number of consecutive estimates required; n = 1
     *        degenerates to the base estimator.
     * @param boost_mode which class is accumulated (default: LC).
     */
    BoostingEstimator(std::unique_ptr<ConfidenceEstimator> base,
                      unsigned n,
                      BoostMode boost_mode = BoostMode::LowConfidence)
        : inner(std::move(base)), required(n == 0 ? 1 : n),
          mode(boost_mode)
    {
    }

    std::string
    name() const override
    {
        const char *tag =
            mode == BoostMode::LowConfidence ? "boost" : "boost-hc";
        return tag + std::to_string(required) + "(" + inner->name()
            + ")";
    }

    void
    describeConfig(ConfigWriter &out) const override
    {
        out.putUint("degree", required);
        out.putString("boost_mode",
                      mode == BoostMode::LowConfidence ? "low" : "high");
        out.putString("base", inner->name());
    }

    /** Boosting degree N. */
    unsigned degree() const { return required; }

    /** Accumulated confidence class. */
    BoostMode boostMode() const { return mode; }

    /** Access to the wrapped estimator. */
    ConfidenceEstimator &base() { return *inner; }

  protected:
    bool
    doEstimate(Addr pc, const BpInfo &info) override
    {
        const bool base_high = inner->estimate(pc, info);
        const bool accumulated = mode == BoostMode::LowConfidence
            ? !base_high : base_high;
        if (!accumulated) {
            consecutive = 0;
            // Outside a run, emit the non-boosted class.
            return mode == BoostMode::LowConfidence;
        }
        ++consecutive;
        const bool fire = consecutive >= required;
        // The boosted class is emitted only once the run is long
        // enough; shorter runs stay conservative.
        return mode == BoostMode::LowConfidence ? !fire : fire;
    }

    void
    doUpdate(Addr pc, bool taken, bool correct,
             const BpInfo &info) override
    {
        inner->update(pc, taken, correct, info);
    }

    void
    doReset() override
    {
        inner->reset();
        consecutive = 0;
    }

  private:
    std::unique_ptr<ConfidenceEstimator> inner;
    unsigned required;
    BoostMode mode;
    unsigned consecutive = 0;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_BOOSTING_HH
