/**
 * @file
 * Pattern-history confidence estimator (Lick et al., for dual-path
 * execution). A small fixed set of branch-history patterns empirically
 * leads to correct predictions in per-address (PAs/SAg) predictors;
 * a branch whose current history matches one of those patterns is high
 * confidence, everything else is low confidence.
 *
 * The confident patterns, per the paper: always taken, almost always
 * taken (exactly one not-taken bit), always not-taken, almost always
 * not-taken (exactly one taken bit), and strictly alternating
 * taken/not-taken.
 */

#ifndef CONFSIM_CONFIDENCE_PATTERN_HH
#define CONFSIM_CONFIDENCE_PATTERN_HH

#include <cstdint>

#include "confidence/estimator.hh"

namespace confsim
{

/**
 * Stateless pattern classifier over the predictor's history register:
 * local history when the predictor has one (SAg), otherwise the global
 * history (gshare/McFarling — where, as the paper found, no dominant
 * patterns exist and the estimator fares poorly).
 */
class PatternEstimator : public ConfidenceEstimator
{
  public:
    PatternEstimator() = default;

    std::string name() const override { return "pattern"; }

    /**
     * Core classifier, exposed for tests.
     * @param history packed history bits.
     * @param bits history width; must be >= 2 for a meaningful match.
     * @return true when the pattern is one of the confident set.
     */
    static bool isConfidentPattern(std::uint64_t history, unsigned bits);

  protected:
    bool doEstimate(Addr pc, const BpInfo &info) override;

    void
    doUpdate(Addr, bool, bool, const BpInfo &) override
    {
        // Stateless: the predictor maintains the history itself.
    }

    void doReset() override {}
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_PATTERN_HH
