/**
 * @file
 * Correct/incorrect-register (CIR) confidence estimators, after
 * Jacobsen, Rotenberg & Smith (MICRO-29, 1996) — the design space the
 * paper's §4.1 contrasts the distance estimator against.
 *
 * A CIR is a shift register of recent prediction *correctness* bits
 * (1 = the prediction was right). Two classic reductions of the CIR to
 * a confidence bit are implemented:
 *
 *  - **Ones counting**: high confidence when at least K of the last N
 *    predictions (mapping to this CIR) were correct.
 *  - **Pattern table**: the CIR value (optionally xor-ed with the
 *    branch address) indexes a table of resetting counters, learning
 *    which correctness patterns precede mispredictions.
 *
 * The CIR itself may be global (one register, like the distance
 *  estimator) or per-address (a tagless table of CIRs, like SAg).
 */

#ifndef CONFSIM_CONFIDENCE_CIR_HH
#define CONFSIM_CONFIDENCE_CIR_HH

#include <vector>

#include "common/history_register.hh"
#include "common/sat_counter.hh"
#include "confidence/estimator.hh"

namespace confsim
{

/** How a CirEstimator reduces the register to a confidence bit. */
enum class CirMode
{
    OnesCount,    ///< HC iff popcount(CIR) >= onesThreshold
    PatternTable, ///< HC iff table[pc ^ CIR] >= counterThreshold
};

/** Configuration of CirEstimator. */
struct CirConfig
{
    CirMode mode = CirMode::OnesCount;
    unsigned cirBits = 8;          ///< correctness-history length
    bool perAddress = false;       ///< per-branch CIRs vs one global
    std::size_t cirTableEntries = 1024; ///< CIR count when perAddress
    unsigned onesThreshold = 8;    ///< OnesCount: required correct bits
    std::size_t tableEntries = 4096; ///< PatternTable: counter count
    unsigned counterBits = 2;      ///< PatternTable: counter width
    unsigned counterThreshold = 3; ///< PatternTable: HC when >= this

    bool operator==(const CirConfig &) const = default;
};

/** @return stable serialization name for a CirMode. */
const char *cirModeName(CirMode mode);

/** Parse @p name back to a CirMode. @return false on unknown name. */
bool cirModeFromName(const std::string &name, CirMode &mode);

/**
 * Confidence from recent prediction-correctness history.
 */
class CirEstimator : public ConfidenceEstimator
{
  public:
    /** @param config register/table geometry and mode. */
    explicit CirEstimator(const CirConfig &config = {});

    std::string name() const override;
    void describeConfig(ConfigWriter &out) const override;

    /** Current CIR value for the branch at @p pc (tests/sweeps). */
    std::uint64_t cirValue(Addr pc) const;

    /** Number of correct bits in the CIR for @p pc. */
    unsigned cirOnes(Addr pc) const;

    /** Active configuration. */
    const CirConfig &config() const { return cfg; }

  protected:
    bool doEstimate(Addr pc, const BpInfo &info) override;
    void doUpdate(Addr pc, bool taken, bool correct,
                  const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t cirIndex(Addr pc) const;
    std::size_t tableIndex(Addr pc) const;

    CirConfig cfg;
    std::vector<HistoryRegister> cirs; ///< size 1 when global
    std::vector<SatCounter> table;     ///< PatternTable mode only
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_CIR_HH
