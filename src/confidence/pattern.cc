#include "confidence/pattern.hh"

#include "common/bit_utils.hh"

namespace confsim
{

namespace
{

/** Population count over the low @p bits bits. */
unsigned
popcountLow(std::uint64_t v, unsigned bits)
{
    v &= lowBitMask(bits);
    unsigned count = 0;
    while (v) {
        v &= v - 1;
        ++count;
    }
    return count;
}

} // anonymous namespace

bool
PatternEstimator::isConfidentPattern(std::uint64_t history, unsigned bits)
{
    if (bits == 0)
        return false;
    const std::uint64_t mask = lowBitMask(bits);
    const std::uint64_t h = history & mask;

    // Always taken / always not-taken.
    if (h == mask || h == 0)
        return true;

    // Almost always taken / not-taken: exactly one dissenting bit.
    const unsigned ones = popcountLow(h, bits);
    if (ones == 1 || ones == bits - 1)
        return true;

    // Strictly alternating: 0101... or 1010...
    const std::uint64_t alt0 = 0x5555555555555555ull & mask;
    const std::uint64_t alt1 = 0xaaaaaaaaaaaaaaaaull & mask;
    if (h == alt0 || h == alt1)
        return true;

    return false;
}

bool
PatternEstimator::doEstimate(Addr pc, const BpInfo &info)
{
    (void)pc;
    if (info.localHistoryBits > 0)
        return isConfidentPattern(info.localHistory,
                                  info.localHistoryBits);
    return isConfidentPattern(info.globalHistory, info.globalHistoryBits);
}

} // namespace confsim
