#include "confidence/pattern.hh"

#include "bpred/estimator_input.hh"

namespace confsim
{

bool
PatternEstimator::isConfidentPattern(std::uint64_t history, unsigned bits)
{
    // Core classifier lives in bpred/estimator_input.cc so the
    // decode-time pattern-conf plugin can share it.
    return confidentHistoryPattern(history, bits);
}

bool
PatternEstimator::doEstimate(Addr pc, const BpInfo &info)
{
    (void)pc;
    if (info.localHistoryBits > 0)
        return isConfidentPattern(info.localHistory,
                                  info.localHistoryBits);
    return isConfidentPattern(info.globalHistory, info.globalHistoryBits);
}

} // namespace confsim
