/**
 * @file
 * Component-structured JRS estimator for the McFarling combining
 * predictor — the paper's §5 future-work item ("a confidence estimator
 * similar to the JRS mechanism designed to better exploit the
 * structure of the McFarling two-level branch predictor").
 *
 * Rationale (§3.5): an estimator works best when its indexing mimics
 * the predictor it corroborates. Plain JRS indexes one MDC table with
 * pc ^ global-history, which matches gshare but not the combiner's
 * bimodal component. This estimator keeps one miss-distance-counter
 * table per component, each indexed exactly like its component
 * (pc ^ history for the gshare side, pc for the bimodal side), trains
 * each with its *own component's* correctness, and reduces the two
 * counters with a configurable rule.
 */

#ifndef CONFSIM_CONFIDENCE_MCF_JRS_HH
#define CONFSIM_CONFIDENCE_MCF_JRS_HH

#include <vector>

#include "common/sat_counter.hh"
#include "confidence/estimator.hh"

namespace confsim
{

/** How the two component MDC readings combine into one estimate. */
enum class McfJrsCombine
{
    Selected,   ///< trust the MDC of the meta-chosen component
    BothAbove,  ///< HC only when both MDCs reach the threshold
    EitherAbove, ///< HC when either MDC reaches the threshold
};

/** @return human-readable combine-rule name. */
const char *mcfJrsCombineName(McfJrsCombine rule);

/** Parse @p name back to a combine rule. @return false on unknown. */
bool mcfJrsCombineFromName(const std::string &name, McfJrsCombine &rule);

/** Configuration of McfJrsEstimator. */
struct McfJrsConfig
{
    std::size_t gshareEntries = 4096;  ///< history-indexed MDC count
    std::size_t bimodalEntries = 4096; ///< pc-indexed MDC count
    unsigned counterBits = 4;          ///< MDC width
    unsigned threshold = 15;           ///< HC when counter >= this
    McfJrsCombine combine = McfJrsCombine::Selected;

    bool operator==(const McfJrsConfig &) const = default;
};

/**
 * Two component-aligned MDC tables with per-component training.
 * Requires a combining predictor's BpInfo (hasComponents); falls back
 * to the history-indexed table alone otherwise.
 */
class McfJrsEstimator : public ConfidenceEstimator
{
  public:
    /** @param config table geometry and combine rule. */
    explicit McfJrsEstimator(const McfJrsConfig &config = {});

    std::string name() const override;
    void describeConfig(ConfigWriter &out) const override;

    /** Raw history-indexed MDC value (sweeps/tests). */
    unsigned readGshareCounter(Addr pc, const BpInfo &info) const;

    /** Raw pc-indexed MDC value (sweeps/tests). */
    unsigned readBimodalCounter(Addr pc) const;

    /** Active configuration. */
    const McfJrsConfig &config() const { return cfg; }

  protected:
    bool doEstimate(Addr pc, const BpInfo &info) override;
    void doUpdate(Addr pc, bool taken, bool correct,
                  const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t gshareIndex(Addr pc, const BpInfo &info) const;
    std::size_t bimodalIndex(Addr pc) const;

    McfJrsConfig cfg;
    std::vector<SatCounter> gshareTable;
    std::vector<SatCounter> bimodalTable;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_MCF_JRS_HH
