/**
 * @file
 * JRS resetting-counter confidence estimator (Jacobsen, Rotenberg &
 * Smith, MICRO-29 1996), plus the paper's *enhanced* variant (§3.2.1).
 *
 * A gshare-like table of miss distance counters (MDCs) is indexed by
 * (branch address xor history). Each correctly predicted branch
 * increments its MDC (saturating); a misprediction resets it to zero.
 * A branch is "high confidence" when its MDC is at or above a
 * threshold — i.e. when enough consecutive correct predictions have
 * mapped there since the last miss, exploiting misprediction
 * clustering.
 *
 * The enhanced variant additionally folds the *predicted direction*
 * into the index, separating the taken/not-taken streams of a branch.
 * In hardware this costs reading both candidate MDC entries and
 * late-selecting with the completed prediction.
 */

#ifndef CONFSIM_CONFIDENCE_JRS_HH
#define CONFSIM_CONFIDENCE_JRS_HH

#include <vector>

#include "common/sat_counter.hh"
#include "confidence/estimator.hh"

namespace confsim
{

/** Configuration for JrsEstimator (paper defaults). */
struct JrsConfig
{
    std::size_t tableEntries = 4096; ///< MDC count (power of two)
    unsigned counterBits = 4;        ///< MDC width
    unsigned threshold = 15;         ///< HC when counter >= threshold
    bool enhanced = true;            ///< fold prediction into the index

    bool operator==(const JrsConfig &) const = default;
};

/**
 * Table of resetting miss-distance counters. Also a LevelSource: the
 * raw MDC value backs single-pass threshold sweeps.
 */
class JrsEstimator : public ConfidenceEstimator, public LevelSource
{
  public:
    /** @param config table geometry and threshold. */
    explicit JrsEstimator(const JrsConfig &config = {});

    std::string name() const override;
    void describeConfig(ConfigWriter &out) const override;

    /**
     * Raw MDC value this prediction maps to, for threshold-sweep
     * harnesses that evaluate every threshold in one simulation pass
     * (the table state is threshold-independent).
     */
    unsigned readCounter(Addr pc, const BpInfo &info) const;

    /** LevelSource: the raw MDC value. */
    unsigned
    readLevel(Addr pc, const BpInfo &info) const override
    {
        return readCounter(pc, info);
    }

    /** Active threshold. */
    unsigned threshold() const { return cfg.threshold; }

    /** Table configuration. */
    const JrsConfig &config() const { return cfg; }

  protected:
    bool doEstimate(Addr pc, const BpInfo &info) override;
    void doUpdate(Addr pc, bool taken, bool correct,
                  const BpInfo &info) override;
    void doReset() override;

  private:
    std::size_t index(Addr pc, const BpInfo &info) const;

    JrsConfig cfg;
    std::vector<SatCounter> table;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_JRS_HH
