#include "confidence/mcf_jrs.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

const char *
mcfJrsCombineName(McfJrsCombine rule)
{
    switch (rule) {
      case McfJrsCombine::Selected: return "selected";
      case McfJrsCombine::BothAbove: return "both";
      case McfJrsCombine::EitherAbove: return "either";
    }
    return "???";
}

bool
mcfJrsCombineFromName(const std::string &name, McfJrsCombine &rule)
{
    if (name == "selected") {
        rule = McfJrsCombine::Selected;
        return true;
    }
    if (name == "both") {
        rule = McfJrsCombine::BothAbove;
        return true;
    }
    if (name == "either") {
        rule = McfJrsCombine::EitherAbove;
        return true;
    }
    return false;
}

McfJrsEstimator::McfJrsEstimator(const McfJrsConfig &config)
    : cfg(config)
{
    if (!isPowerOfTwo(cfg.gshareEntries)
        || !isPowerOfTwo(cfg.bimodalEntries)) {
        fatal("McfJrs table sizes must be powers of two");
    }
    gshareTable.assign(cfg.gshareEntries,
                       SatCounter(cfg.counterBits, 0));
    bimodalTable.assign(cfg.bimodalEntries,
                        SatCounter(cfg.counterBits, 0));
}

std::size_t
McfJrsEstimator::gshareIndex(Addr pc, const BpInfo &info) const
{
    return ((pc >> 2) ^ info.globalHistory) & (cfg.gshareEntries - 1);
}

std::size_t
McfJrsEstimator::bimodalIndex(Addr pc) const
{
    return (pc >> 2) & (cfg.bimodalEntries - 1);
}

unsigned
McfJrsEstimator::readGshareCounter(Addr pc, const BpInfo &info) const
{
    return gshareTable[gshareIndex(pc, info)].read();
}

unsigned
McfJrsEstimator::readBimodalCounter(Addr pc) const
{
    return bimodalTable[bimodalIndex(pc)].read();
}

bool
McfJrsEstimator::doEstimate(Addr pc, const BpInfo &info)
{
    const bool g_high =
        readGshareCounter(pc, info) >= cfg.threshold;
    const bool b_high = readBimodalCounter(pc) >= cfg.threshold;

    if (!info.hasComponents)
        return g_high;

    switch (cfg.combine) {
      case McfJrsCombine::Selected:
        return info.metaChoseGshare ? g_high : b_high;
      case McfJrsCombine::BothAbove:
        return g_high && b_high;
      case McfJrsCombine::EitherAbove:
        return g_high || b_high;
    }
    return g_high;
}

void
McfJrsEstimator::doUpdate(Addr pc, bool taken, bool correct,
                          const BpInfo &info)
{
    SatCounter &gctr = gshareTable[gshareIndex(pc, info)];
    SatCounter &bctr = bimodalTable[bimodalIndex(pc)];

    if (!info.hasComponents) {
        // Single-component predictor: behave like plain JRS.
        if (correct)
            gctr.increment();
        else
            gctr.reset();
        return;
    }

    // Each component MDC tracks *its own component's* miss distance,
    // so a component that keeps being outvoted still accumulates an
    // honest confidence record.
    if (info.gsharePredTaken == taken)
        gctr.increment();
    else
        gctr.reset();
    if (info.bimodalPredTaken == taken)
        bctr.increment();
    else
        bctr.reset();
}

std::string
McfJrsEstimator::name() const
{
    return std::string("mcf-jrs-") + mcfJrsCombineName(cfg.combine);
}

void
McfJrsEstimator::describeConfig(ConfigWriter &out) const
{
    out.putUint("gshare_entries", cfg.gshareEntries);
    out.putUint("bimodal_entries", cfg.bimodalEntries);
    out.putUint("counter_bits", cfg.counterBits);
    out.putUint("threshold", cfg.threshold);
    out.putString("combine", mcfJrsCombineName(cfg.combine));
}

void
McfJrsEstimator::doReset()
{
    for (auto &ctr : gshareTable)
        ctr = SatCounter(cfg.counterBits, 0);
    for (auto &ctr : bimodalTable)
        ctr = SatCounter(cfg.counterBits, 0);
}

} // namespace confsim
