#include "confidence/sat_counters.hh"

namespace confsim
{

const char *
satCountersVariantName(SatCountersVariant variant)
{
    switch (variant) {
      case SatCountersVariant::Selected: return "selected";
      case SatCountersVariant::BothStrong: return "both-strong";
      case SatCountersVariant::EitherStrong: return "either-strong";
    }
    return "???";
}

bool
SatCountersEstimator::doEstimate(Addr pc, const BpInfo &info)
{
    (void)pc;
    const bool selected_strong =
        info.counterValue == 0 || info.counterValue == info.counterMax;

    if (!info.hasComponents)
        return selected_strong;

    switch (policy) {
      case SatCountersVariant::Selected:
        return selected_strong;
      case SatCountersVariant::BothStrong:
        return info.bimodalStrong && info.gshareStrong;
      case SatCountersVariant::EitherStrong:
        return info.bimodalStrong || info.gshareStrong;
    }
    return selected_strong;
}

std::string
SatCountersEstimator::name() const
{
    return std::string("satcnt-") + satCountersVariantName(policy);
}

void
SatCountersEstimator::describeConfig(ConfigWriter &out) const
{
    out.putString("variant", satCountersVariantName(policy));
}

} // namespace confsim
