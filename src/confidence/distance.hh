/**
 * @file
 * Misprediction-distance confidence estimator (§4.1): a single counter
 * of branches seen since the last *detected* (resolved) misprediction.
 * Because mispredictions cluster, a branch far from the last detected
 * miss is likely correct; one close to it is suspect. This is
 * "essentially a JRS confidence estimator with a single MDC register" —
 * nearly free to implement.
 */

#ifndef CONFSIM_CONFIDENCE_DISTANCE_HH
#define CONFSIM_CONFIDENCE_DISTANCE_HH

#include <cstdint>

#include "confidence/estimator.hh"

namespace confsim
{

/**
 * Global distance-since-last-miss counter. estimate() is HC when the
 * distance exceeds the threshold. update() counts resolved branches and
 * resets on a resolved misprediction.
 *
 * In the pipeline model the "distance" advances at branch *resolution*
 * (the paper's perceived timing); in trace-driven mode resolution and
 * prediction coincide.
 */
class DistanceEstimator : public ConfidenceEstimator
{
  public:
    /** @param threshold HC when more than this many branches since the
     *         last detected misprediction. */
    explicit DistanceEstimator(unsigned threshold = 4)
        : minDistance(threshold)
    {
    }

    std::string name() const override { return "distance"; }

    void
    describeConfig(ConfigWriter &out) const override
    {
        out.putUint("distance_threshold", minDistance);
    }

    /** Current branches-since-miss count (exposed for sweeps/tests). */
    std::uint64_t currentDistance() const { return distance; }

    /** Active threshold. */
    unsigned threshold() const { return minDistance; }

  protected:
    bool
    doEstimate(Addr, const BpInfo &) override
    {
        return distance > minDistance;
    }

    void
    doUpdate(Addr, bool, bool correct, const BpInfo &) override
    {
        if (correct)
            ++distance;
        else
            distance = 0;
    }

    void doReset() override { distance = 0; }

  private:
    unsigned minDistance;
    std::uint64_t distance = 0;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_DISTANCE_HH
