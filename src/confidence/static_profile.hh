/**
 * @file
 * Static (profile-based) confidence estimator. A profiling pass runs
 * the program against the *same* branch predictor and records each
 * branch site's prediction accuracy; at estimation time, sites with
 * accuracy at or above a threshold (90% in the paper) are statically
 * high confidence. As the paper notes (§3, footnote 1), the profile
 * cannot come from a simple edge profile — it requires simulating the
 * predictor, because confidence depends on predictor state.
 *
 * The paper evaluates the self-profiled best case (train and test on
 * the same input); ProfileTable supports that directly and also lets a
 * caller train on a different input for cross-input studies.
 */

#ifndef CONFSIM_CONFIDENCE_STATIC_PROFILE_HH
#define CONFSIM_CONFIDENCE_STATIC_PROFILE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "confidence/estimator.hh"

namespace confsim
{

/**
 * Per-branch-site prediction accuracy collected during a profiling run.
 */
class ProfileTable
{
  public:
    /** Record one predicted branch at @p pc. */
    void
    record(Addr pc, bool correct)
    {
        Entry &e = entries[pc];
        ++e.total;
        if (correct)
            ++e.correct;
    }

    /**
     * Accuracy of the branch site at @p pc.
     * @return correct/total, or 0 for never-seen sites (unseen branches
     *         are conservatively low confidence).
     */
    double
    accuracy(Addr pc) const
    {
        auto it = entries.find(pc);
        if (it == entries.end() || it->second.total == 0)
            return 0.0;
        return static_cast<double>(it->second.correct)
            / static_cast<double>(it->second.total);
    }

    /** Number of distinct branch sites profiled. */
    std::size_t size() const { return entries.size(); }

    /** Invoke @p fn(pc, accuracy) for every profiled site. */
    template <typename Fn>
    void
    forEachSite(Fn fn) const
    {
        for (const auto &[pc, e] : entries)
            if (e.total > 0)
                fn(pc, static_cast<double>(e.correct)
                       / static_cast<double>(e.total));
    }

    /** Drop all profile data. */
    void clear() { entries.clear(); }

  private:
    struct Entry
    {
        std::uint64_t correct = 0;
        std::uint64_t total = 0;
    };

    std::unordered_map<Addr, Entry> entries;
};

/**
 * Thresholded static estimator over a ProfileTable.
 */
class StaticEstimator : public ConfidenceEstimator
{
  public:
    /**
     * @param profile accuracy table from a profiling run (borrowed; the
     *        caller keeps it alive).
     * @param threshold sites with accuracy >= threshold are HC.
     */
    StaticEstimator(const ProfileTable &profile, double threshold = 0.9)
        : table(&profile), minAccuracy(threshold)
    {
        // The profile and threshold are fixed for the estimator's
        // lifetime, so the thresholded decision can be precomputed
        // into a flat per-pc table: branch pcs are small instruction
        // indices, and the per-branch hash lookup + divide otherwise
        // dominates estimation cost on large workloads. Sites outside
        // the table (never profiled) stay low confidence.
        Addr max_pc = 0;
        profile.forEachSite([&](Addr pc, double) {
            if (pc > max_pc)
                max_pc = pc;
        });
        if (max_pc < FLAT_TABLE_LIMIT) {
            confident.assign(max_pc + 1, 0);
            profile.forEachSite([&](Addr pc, double accuracy) {
                confident[pc] = accuracy >= minAccuracy ? 1 : 0;
            });
        }
    }

    std::string name() const override { return "static"; }

    void
    describeConfig(ConfigWriter &out) const override
    {
        out.putDouble("accuracy_threshold", minAccuracy);
        out.putUint("profiled_sites", table->size());
    }

    /** Active accuracy threshold. */
    double threshold() const { return minAccuracy; }

  protected:
    bool
    doEstimate(Addr pc, const BpInfo &) override
    {
        if (!confident.empty())
            return pc < confident.size() && confident[pc] != 0;
        return table->accuracy(pc) >= minAccuracy;
    }

    void
    doUpdate(Addr, bool, bool, const BpInfo &) override
    {
        // Static: decided entirely by the offline profile.
    }

    void doReset() override {}

  private:
    /** Largest pc eligible for the precomputed flat table; sparse or
     *  huge address spaces fall back to querying the profile. */
    static constexpr Addr FLAT_TABLE_LIMIT = 1u << 22;

    const ProfileTable *table;
    double minAccuracy;
    std::vector<std::uint8_t> confident;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_STATIC_PROFILE_HH
