/**
 * @file
 * Abstract confidence-estimator interface (§2 of the paper).
 *
 * A confidence estimator corroborates a branch predictor: for every
 * prediction it assigns "high confidence" (the prediction is probably
 * right) or "low confidence" (probably wrong). Estimators see the
 * predictor-internal state through BpInfo, which is how the inexpensive
 * estimators (saturating counters, pattern history) avoid dedicated
 * tables.
 *
 * Protocol per branch:
 *   1. info = predictor->predict(pc)
 *   2. high = estimator->estimate(pc, info)
 *   3. ... branch resolves with outcome `taken` ...
 *   4. estimator->update(pc, taken, correct, info)
 *
 * In the pipeline model, update() is invoked only for branches that
 * actually resolve (committed-path branches); squashed wrong-path
 * branches produce estimates but never train the estimator.
 */

#ifndef CONFSIM_CONFIDENCE_ESTIMATOR_HH
#define CONFSIM_CONFIDENCE_ESTIMATOR_HH

#include <memory>
#include <string>

#include "bpred/branch_predictor.hh"
#include "common/sim_object.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"

namespace confsim
{

/**
 * Interface shared by every confidence estimator.
 *
 * Like BranchPredictor, this is a SimObject with non-virtual
 * estimate()/update() entry points that maintain per-estimator
 * statistics (estimates issued, low-confidence fraction, updates) and
 * dispatch to the concrete implementation (doEstimate/doUpdate).
 */
class ConfidenceEstimator : public SimObject
{
  public:
    /** Registry-visible estimator statistics. */
    struct Stats
    {
        std::uint64_t estimates = 0;    ///< estimate() calls
        std::uint64_t lowEstimates = 0; ///< "low confidence" verdicts
        std::uint64_t updates = 0;      ///< resolved branches trained
    };

    /**
     * Classify the prediction described by @p info for the branch at
     * @p pc.
     * @return true for "high confidence", false for "low confidence".
     */
    bool
    estimate(Addr pc, const BpInfo &info)
    {
        ++estStats.estimates;
        const bool high = doEstimate(pc, info);
        if (!high)
            ++estStats.lowEstimates;
        return high;
    }

    /**
     * Train with a resolved branch.
     * @param pc branch address.
     * @param taken resolved direction.
     * @param correct whether the prediction in @p info was right.
     * @param info the BpInfo from the corresponding predict().
     */
    void
    update(Addr pc, bool taken, bool correct, const BpInfo &info)
    {
        ++estStats.updates;
        doUpdate(pc, taken, correct, info);
    }

    /** Restore the power-on state and zero the statistics. */
    void
    reset() final
    {
        estStats = {};
        doReset();
    }

    void
    registerStats(StatsRegistry &reg) override
    {
        reg.addCounter("estimates", &estStats.estimates,
                       "confidence estimates issued");
        reg.addCounter("low_estimates", &estStats.lowEstimates,
                       "estimates that were low confidence");
        reg.addCounter("updates", &estStats.updates,
                       "resolved branches trained");
        reg.addRatio("low_fraction", &estStats.lowEstimates,
                     &estStats.estimates,
                     "low-confidence share of all estimates");
    }

    /** Statistics since construction or the last reset(). */
    const Stats &stats() const { return estStats; }

  protected:
    /** Concrete classification (see estimate()). */
    virtual bool doEstimate(Addr pc, const BpInfo &info) = 0;

    /** Concrete training (see update()). */
    virtual void doUpdate(Addr pc, bool taken, bool correct,
                          const BpInfo &info) = 0;

    /** Concrete power-on reset. */
    virtual void doReset() = 0;

  private:
    Stats estStats;
};

/**
 * Probe exposing an integer confidence *level* (raw MDC value,
 * distance count, counter state) at prediction time, for single-pass
 * threshold sweeps. Estimators whose internal state is
 * threshold-independent implement this alongside ConfidenceEstimator;
 * harnesses attach sources non-owningly and dispatch through one
 * virtual call per branch instead of a type-erased std::function.
 */
class LevelSource
{
  public:
    virtual ~LevelSource() = default;

    /** Raw level the prediction described by @p info maps to. */
    virtual unsigned readLevel(Addr pc, const BpInfo &info) const = 0;
};

/**
 * Adapts an ad-hoc callable to LevelSource, for probes that are not
 * estimators (e.g. reading a BpInfo field directly):
 *
 *   CallbackLevelSource src([](Addr, const BpInfo &i) {
 *       return i.counterValue;
 *   });
 *   pipe.attachLevelReader(&src);
 */
template <typename Fn>
class CallbackLevelSource final : public LevelSource
{
  public:
    explicit CallbackLevelSource(Fn fn) : fn(std::move(fn)) {}

    unsigned
    readLevel(Addr pc, const BpInfo &info) const override
    {
        return fn(pc, info);
    }

  private:
    mutable Fn fn;
};

/**
 * Baseline estimator that assigns the same confidence to every branch.
 * estimate() == `value`. Useful as a degenerate reference: "always
 * high" has SENS = PVP-at-accuracy = p; "always low" has SPEC = 1 and
 * PVN = misprediction rate.
 */
class ConstantEstimator : public ConfidenceEstimator
{
  public:
    /** @param high_confidence the constant estimate to emit. */
    explicit ConstantEstimator(bool high_confidence)
        : constant(high_confidence)
    {
    }

    std::string
    name() const override
    {
        return constant ? "always-high" : "always-low";
    }

    void
    describeConfig(ConfigWriter &out) const override
    {
        out.putBool("constant_high", constant);
    }

  protected:
    bool
    doEstimate(Addr, const BpInfo &) override
    {
        return constant;
    }

    void doUpdate(Addr, bool, bool, const BpInfo &) override {}

    void doReset() override {}

  private:
    bool constant;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_ESTIMATOR_HH
