#include "confidence/jrs.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

JrsEstimator::JrsEstimator(const JrsConfig &config)
    : cfg(config)
{
    if (!isPowerOfTwo(cfg.tableEntries))
        fatal("JRS table size must be a power of two");
    table.assign(cfg.tableEntries, SatCounter(cfg.counterBits, 0));
}

std::size_t
JrsEstimator::index(Addr pc, const BpInfo &info) const
{
    // Use the history register the underlying predictor actually has:
    // global history for gshare/McFarling, the per-branch history for
    // SAg (the paper's structural-match observation, §3.5).
    const std::uint64_t hist = info.globalHistoryBits > 0
        ? info.globalHistory : info.localHistory;
    std::uint64_t idx = (pc >> 2) ^ hist;
    if (cfg.enhanced)
        idx = (idx << 1) | (info.predTaken ? 1 : 0);
    return idx & (cfg.tableEntries - 1);
}

unsigned
JrsEstimator::readCounter(Addr pc, const BpInfo &info) const
{
    return table[index(pc, info)].read();
}

bool
JrsEstimator::doEstimate(Addr pc, const BpInfo &info)
{
    return readCounter(pc, info) >= cfg.threshold;
}

void
JrsEstimator::doUpdate(Addr pc, bool taken, bool correct,
                       const BpInfo &info)
{
    (void)taken;
    SatCounter &ctr = table[index(pc, info)];
    if (correct)
        ctr.increment();
    else
        ctr.reset();
}

std::string
JrsEstimator::name() const
{
    return cfg.enhanced ? "jrs-enhanced" : "jrs";
}

void
JrsEstimator::describeConfig(ConfigWriter &out) const
{
    out.putUint("table_entries", cfg.tableEntries);
    out.putUint("counter_bits", cfg.counterBits);
    out.putUint("threshold", cfg.threshold);
    out.putBool("enhanced", cfg.enhanced);
}

void
JrsEstimator::doReset()
{
    for (auto &ctr : table)
        ctr = SatCounter(cfg.counterBits, 0);
}

} // namespace confsim
