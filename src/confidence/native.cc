#include "confidence/native.hh"

#include "bpred/perceptron.hh"
#include "bpred/tage.hh"
#include "common/logging.hh"

namespace confsim
{

NativeConfidenceEstimator::NativeConfidenceEstimator(
    const NativeConfidenceConfig &config)
    : cfg(config)
{
    if (cfg.name.empty())
        fatal("native confidence estimator needs a name");
    if (cfg.levelMax > 0 && cfg.threshold > cfg.levelMax)
        fatal("native confidence threshold exceeds the level range");
}

void
NativeConfidenceEstimator::describeConfig(ConfigWriter &out) const
{
    out.putUint("threshold", cfg.threshold);
    out.putUint("level_max", cfg.levelMax);
}

NativeConfidenceConfig
NativeConfidenceEstimator::percConfig(unsigned threshold)
{
    NativeConfidenceConfig cfg;
    cfg.name = "perc-conf";
    cfg.threshold = threshold;
    cfg.levelMax = PERC_CONF_LEVEL_MAX;
    return cfg;
}

NativeConfidenceConfig
NativeConfidenceEstimator::tageConfig(unsigned threshold)
{
    NativeConfidenceConfig cfg;
    cfg.name = "tage-conf";
    cfg.threshold = threshold;
    cfg.levelMax = TAGE_CONF_LEVEL_MAX;
    return cfg;
}

} // namespace confsim
