#include "confidence/cir.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace confsim
{

const char *
cirModeName(CirMode mode)
{
    switch (mode) {
      case CirMode::OnesCount: return "ones-count";
      case CirMode::PatternTable: return "pattern-table";
    }
    return "???";
}

bool
cirModeFromName(const std::string &name, CirMode &mode)
{
    if (name == "ones-count") {
        mode = CirMode::OnesCount;
        return true;
    }
    if (name == "pattern-table") {
        mode = CirMode::PatternTable;
        return true;
    }
    return false;
}

CirEstimator::CirEstimator(const CirConfig &config)
    : cfg(config)
{
    if (cfg.cirBits == 0 || cfg.cirBits > 63)
        fatal("CIR length must be in [1, 63]");
    if (cfg.perAddress && !isPowerOfTwo(cfg.cirTableEntries))
        fatal("CIR table size must be a power of two");
    if (cfg.mode == CirMode::PatternTable
        && !isPowerOfTwo(cfg.tableEntries)) {
        fatal("CIR pattern table size must be a power of two");
    }

    const std::size_t num_cirs =
        cfg.perAddress ? cfg.cirTableEntries : 1;
    cirs.assign(num_cirs, HistoryRegister(cfg.cirBits));
    if (cfg.mode == CirMode::PatternTable)
        table.assign(cfg.tableEntries,
                     SatCounter(cfg.counterBits, 0));
}

std::size_t
CirEstimator::cirIndex(Addr pc) const
{
    if (!cfg.perAddress)
        return 0;
    return (pc >> 2) & (cfg.cirTableEntries - 1);
}

std::size_t
CirEstimator::tableIndex(Addr pc) const
{
    const std::uint64_t cir = cirs[cirIndex(pc)].value();
    return ((pc >> 2) ^ cir) & (cfg.tableEntries - 1);
}

std::uint64_t
CirEstimator::cirValue(Addr pc) const
{
    return cirs[cirIndex(pc)].value();
}

unsigned
CirEstimator::cirOnes(Addr pc) const
{
    std::uint64_t v = cirValue(pc);
    unsigned ones = 0;
    while (v) {
        v &= v - 1;
        ++ones;
    }
    return ones;
}

bool
CirEstimator::doEstimate(Addr pc, const BpInfo &info)
{
    (void)info;
    switch (cfg.mode) {
      case CirMode::OnesCount:
        return cirOnes(pc) >= cfg.onesThreshold;
      case CirMode::PatternTable:
        return table[tableIndex(pc)].read() >= cfg.counterThreshold;
    }
    return false;
}

void
CirEstimator::doUpdate(Addr pc, bool taken, bool correct,
                       const BpInfo &info)
{
    (void)taken;
    (void)info;
    if (cfg.mode == CirMode::PatternTable) {
        // Train the entry that produced this estimate *before*
        // shifting the CIR (resetting-counter semantics, as in JRS).
        SatCounter &ctr = table[tableIndex(pc)];
        if (correct)
            ctr.increment();
        else
            ctr.reset();
    }
    cirs[cirIndex(pc)].shiftIn(correct);
}

std::string
CirEstimator::name() const
{
    std::string base = cfg.mode == CirMode::OnesCount
        ? "cir-ones" : "cir-table";
    return base + (cfg.perAddress ? "-pa" : "-g");
}

void
CirEstimator::describeConfig(ConfigWriter &out) const
{
    out.putString("mode", cirModeName(cfg.mode));
    out.putUint("cir_bits", cfg.cirBits);
    out.putBool("per_address", cfg.perAddress);
    out.putUint("cir_table_entries", cfg.cirTableEntries);
    out.putUint("ones_threshold", cfg.onesThreshold);
    out.putUint("table_entries", cfg.tableEntries);
    out.putUint("counter_bits", cfg.counterBits);
    out.putUint("counter_threshold", cfg.counterThreshold);
}

void
CirEstimator::doReset()
{
    for (auto &cir : cirs)
        cir.clear();
    for (auto &ctr : table)
        ctr = SatCounter(cfg.counterBits, 0);
}

} // namespace confsim
