/**
 * @file
 * Predictor-native confidence estimator: thresholds the confidence
 * level the predictor itself attaches to each prediction
 * (BpInfo::nativeConf) instead of keeping any estimator-side state.
 *
 * This is the paper's "reuse existing predictor state" idea taken to
 * its limit — a perceptron's |weight sum| margin or a TAGE provider's
 * counter-strength/useful packing is confidence information the
 * predictor computes anyway, so the estimator is a pure comparator.
 * The harness sweeps the threshold the same way it sweeps JRS MDC
 * thresholds, which is what lets EXPERIMENTS.md put native and
 * external estimators on one SENS/SPEC frontier.
 */

#ifndef CONFSIM_CONFIDENCE_NATIVE_HH
#define CONFSIM_CONFIDENCE_NATIVE_HH

#include "confidence/estimator.hh"

namespace confsim
{

/** Configuration for NativeConfidenceEstimator. */
struct NativeConfidenceConfig
{
    std::string name = "native";     ///< reported estimator name
    unsigned threshold = 1;          ///< HC when nativeConf >= this
    unsigned levelMax = 0;           ///< largest level the source emits

    bool operator==(const NativeConfidenceConfig &) const = default;
};

/**
 * Stateless comparator over BpInfo::nativeConf. Also a LevelSource:
 * the raw native level backs single-pass threshold sweeps. For
 * predictors without a native signal every level reads 0, so every
 * estimate with a nonzero threshold is low confidence.
 */
class NativeConfidenceEstimator : public ConfidenceEstimator,
                                  public LevelSource
{
  public:
    /** @param config name, threshold, and level range. */
    explicit NativeConfidenceEstimator(
        const NativeConfidenceConfig &config);

    std::string name() const override { return cfg.name; }
    void describeConfig(ConfigWriter &out) const override;

    unsigned
    readLevel(Addr, const BpInfo &info) const override
    {
        return info.nativeConf;
    }

    /** Largest level the producing predictor declares. */
    unsigned levelMax() const { return cfg.levelMax; }

    /**
     * The perceptron-margin estimator ("perc-conf"): thresholds the
     * |weight sum| margin, default threshold 64 of the
     * PERC_CONF_LEVEL_MAX = 1023 range.
     */
    static NativeConfidenceConfig percConfig(unsigned threshold = 64);

    /**
     * The TAGE provider-confidence estimator ("tage-conf"):
     * thresholds the (confDist << 2) | useful packing, default
     * threshold 12 (= confDist 3) of the TAGE_CONF_LEVEL_MAX = 15
     * range.
     */
    static NativeConfidenceConfig tageConfig(unsigned threshold = 12);

  protected:
    bool
    doEstimate(Addr, const BpInfo &info) override
    {
        return info.nativeConf >= cfg.threshold;
    }

    void
    doUpdate(Addr, bool, bool, const BpInfo &) override
    {
        // Stateless: the predictor maintains the level itself.
    }

    void doReset() override {}

  private:
    NativeConfidenceConfig cfg;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_NATIVE_HH
