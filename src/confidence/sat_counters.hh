/**
 * @file
 * Saturating-counters confidence estimator (after Smith 1981): reuse
 * the hysteresis state of the predictor's own direction counters. A
 * branch whose counter is saturated ("strong") is high confidence; a
 * transitional ("weak") counter is low confidence. Costs no extra
 * hardware at all.
 *
 * For the McFarling combining predictor, both component counters are
 * visible and two variants exist (§3.3.1):
 *  - BothStrong:  HC only when *both* components are strong.
 *  - EitherStrong: LC only when *both* components are weak.
 */

#ifndef CONFSIM_CONFIDENCE_SAT_COUNTERS_HH
#define CONFSIM_CONFIDENCE_SAT_COUNTERS_HH

#include "confidence/estimator.hh"

namespace confsim
{

/** Component-combination policy for combining predictors. */
enum class SatCountersVariant
{
    Selected,     ///< use only the selected/only counter's strength
    BothStrong,   ///< HC iff both component counters strong
    EitherStrong, ///< HC iff at least one component counter strong
};

/** @return human-readable variant name. */
const char *satCountersVariantName(SatCountersVariant variant);

/**
 * Stateless estimator reading predictor counter saturation from BpInfo.
 */
class SatCountersEstimator : public ConfidenceEstimator
{
  public:
    /**
     * @param variant component policy; Selected applies to
     *        single-component predictors (gshare, bimodal, SAg), the
     *        other two to McFarling.
     */
    explicit SatCountersEstimator(
            SatCountersVariant variant = SatCountersVariant::Selected)
        : policy(variant)
    {
    }

    std::string name() const override;
    void describeConfig(ConfigWriter &out) const override;

    /** Active component policy. */
    SatCountersVariant variant() const { return policy; }

  protected:
    bool doEstimate(Addr pc, const BpInfo &info) override;

    void
    doUpdate(Addr, bool, bool, const BpInfo &) override
    {
        // The predictor trains its own counters; nothing to do here.
    }

    void doReset() override {}

  private:
    SatCountersVariant policy;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_SAT_COUNTERS_HH
