/**
 * @file
 * JSON (de)serialization for every simulator configuration struct.
 *
 * toJson() emits an object whose keys match the snake_case names the
 * components' describeConfig() methods use, so a dumped configuration
 * reads uniformly whether it came from here or from the registry's
 * configJson(). fromJson() is the inverse: it starts from the struct
 * passed in (callers preload defaults), overrides every key present,
 * and rejects unknown keys and type mismatches with a descriptive
 * error — a typo in a config file fails loudly instead of silently
 * running the default.
 */

#ifndef CONFSIM_HARNESS_CONFIG_JSON_HH
#define CONFSIM_HARNESS_CONFIG_JSON_HH

#include <string>

#include "bpred/bimodal.hh"
#include "bpred/btb.hh"
#include "bpred/gselect.hh"
#include "bpred/gshare.hh"
#include "bpred/mcfarling.hh"
#include "bpred/pas.hh"
#include "bpred/sag.hh"
#include "cache/cache.hh"
#include "common/json.hh"
#include "confidence/cir.hh"
#include "confidence/jrs.hh"
#include "confidence/mcf_jrs.hh"
#include "harness/experiment.hh"
#include "pipeline/pipeline.hh"
#include "workloads/workload.hh"

namespace confsim
{

/// @name Config -> JSON
/// @{
JsonValue toJson(const BimodalConfig &cfg);
JsonValue toJson(const GshareConfig &cfg);
JsonValue toJson(const GselectConfig &cfg);
JsonValue toJson(const McFarlingConfig &cfg);
JsonValue toJson(const SAgConfig &cfg);
JsonValue toJson(const PAsConfig &cfg);
JsonValue toJson(const BtbConfig &cfg);
JsonValue toJson(const CacheConfig &cfg);
JsonValue toJson(const PipelineConfig &cfg);
JsonValue toJson(const JrsConfig &cfg);
JsonValue toJson(const CirConfig &cfg);
JsonValue toJson(const McfJrsConfig &cfg);
JsonValue toJson(const WorkloadConfig &cfg);
JsonValue toJson(const ExperimentConfig &cfg);
/** Counter-exact dump of a run's pipeline statistics (used by the
 *  artifact store to persist RecordedRun payloads). */
JsonValue toJson(const PipelineStats &stats);
/// @}

/// @name JSON -> config
/// Overrides fields of @p cfg from keys present in @p v. On failure
/// returns false and, when @p error is non-null, stores a description.
/// @{
bool fromJson(const JsonValue &v, BimodalConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, GshareConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, GselectConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, McFarlingConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, SAgConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, PAsConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, BtbConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, CacheConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, PipelineConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, JrsConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, CirConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, McfJrsConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, WorkloadConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, ExperimentConfig &cfg,
              std::string *error = nullptr);
bool fromJson(const JsonValue &v, PipelineStats &stats,
              std::string *error = nullptr);
/// @}

} // namespace confsim

#endif // CONFSIM_HARNESS_CONFIG_JSON_HH
