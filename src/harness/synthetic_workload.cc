#include "harness/synthetic_workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "uarch/isa.hh"

namespace confsim
{

namespace
{

/// @name Hash-stream salts
/// Each independent per-index random stream mixes its own salt into
/// the scenario seed, so streams are decorrelated by construction.
/// @{
constexpr std::uint64_t SALT_SITE = 0x53495445u;    // run -> site
constexpr std::uint64_t SALT_CLASS = 0x434c4153u;   // site class
constexpr std::uint64_t SALT_DIR = 0x44495245u;     // biased direction
constexpr std::uint64_t SALT_LOOP = 0x4c4f4f50u;    // loop phase
constexpr std::uint64_t SALT_TAKEN = 0x54414b4eu;   // outcome draw
constexpr std::uint64_t SALT_CORR = 0x434f5252u;    // correlation bit
constexpr std::uint64_t SALT_RIGHT = 0x52494754u;   // correctness draw
constexpr std::uint64_t SALT_PHASE = 0x50484153u;   // phase direction
constexpr std::uint64_t SALT_BURST = 0x42555253u;   // burst region
constexpr std::uint64_t SALT_STRONG = 0x5354524eu;  // counter strength
/// @}

/** splitmix64 finalizer: the counter-based generator core. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform draw in [0, 1) from one hash word. */
double
u01(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Branches sharing one site per consecutive run (temporal locality
 *  without breaking per-index purity). */
constexpr std::uint64_t RUN_SHIFT = 3;

} // anonymous namespace

const std::vector<SyntheticScenario> &
syntheticPresets()
{
    static const std::vector<SyntheticScenario> presets = [] {
        std::vector<SyntheticScenario> v;

        // iid: every site biased at the same accuracy with no
        // structure — the synthetic_stream closed-form regime, now
        // seekable. Misprediction rate == 1 - accuracy exactly in
        // expectation at every distance.
        SyntheticScenario iid;
        iid.name = "iid";
        iid.sites = 64;
        iid.accuracy = 0.90;
        iid.entropy = 0.0;
        iid.loopFraction = 0.0;
        iid.callMix = 0.0;
        v.push_back(iid);

        // clustered: iid plus Markov-like misprediction bursts.
        SyntheticScenario clustered = iid;
        clustered.name = "clustered";
        clustered.burstFraction = 0.25;
        clustered.burstAccuracy = 0.55;
        clustered.burstLength = 32;
        v.push_back(clustered);

        // biased: heavily skewed conditional branches, easy stream.
        SyntheticScenario biased;
        biased.name = "biased";
        biased.accuracy = 0.97;
        biased.entropy = 0.05;
        biased.bias = 0.97;
        biased.loopFraction = 0.15;
        v.push_back(biased);

        // high-entropy: mostly inherently random sites, hard stream.
        SyntheticScenario entropy;
        entropy.name = "high-entropy";
        entropy.accuracy = 0.85;
        entropy.entropy = 0.7;
        entropy.loopFraction = 0.1;
        v.push_back(entropy);

        // loopy: dominated by loop back-edges and calls; mispredicts
        // concentrate on loop exits.
        SyntheticScenario loopy;
        loopy.name = "loopy";
        loopy.entropy = 0.05;
        loopy.loopFraction = 0.6;
        loopy.loopPeriod = 12;
        loopy.callMix = 0.1;
        v.push_back(loopy);

        // phased: stationary mix whose accuracy drifts across eight
        // program phases.
        SyntheticScenario phased;
        phased.name = "phased";
        phased.phases = 8;
        phased.phaseSwing = 0.06;
        v.push_back(phased);

        // mixed: everything at once — the stress scenario.
        SyntheticScenario mixed;
        mixed.name = "mixed";
        mixed.sites = 512;
        mixed.entropy = 0.25;
        mixed.loopFraction = 0.3;
        mixed.callMix = 0.08;
        mixed.correlationDepth = 6;
        mixed.phases = 4;
        mixed.phaseSwing = 0.04;
        mixed.burstFraction = 0.1;
        mixed.burstAccuracy = 0.6;
        v.push_back(mixed);
        return v;
    }();
    return presets;
}

bool
findSyntheticPreset(const std::string &name, SyntheticScenario &out)
{
    for (const SyntheticScenario &p : syntheticPresets()) {
        if (p.name == name) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
syntheticScenarioFromJson(const JsonValue &v, SyntheticScenario &s,
                          std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (!v.isObject())
        return fail("expected a JSON object");

    // "preset" establishes the base scenario first so other keys act
    // as overrides regardless of member order.
    if (const JsonValue *preset = v.find("preset")) {
        if (!preset->isString()
            || !findSyntheticPreset(preset->asString(), s))
            return fail("preset: unknown synthetic preset");
    }

    auto uintKey = [&](const JsonValue &val, auto &field,
                       const char *key) {
        if ((val.kind() != JsonValue::Kind::Uint
             && val.kind() != JsonValue::Kind::Int)
            || val.asInt() < 0)
            return fail(std::string(key)
                        + ": expected an unsigned integer");
        field = static_cast<std::remove_reference_t<decltype(field)>>(
                val.asUint());
        return true;
    };
    auto fracKey = [&](const JsonValue &val, double &field,
                       const char *key) {
        if (!val.isNumber() || val.asDouble() < 0.0
            || val.asDouble() > 1.0)
            return fail(std::string(key)
                        + ": expected a number in [0, 1]");
        field = val.asDouble();
        return true;
    };

    for (const auto &[key, val] : v.members()) {
        if (key == "preset") {
            continue; // handled above
        } else if (key == "name") {
            if (!val.isString() || val.asString().empty())
                return fail("name: expected a non-empty string");
            s.name = val.asString();
        } else if (key == "branches") {
            if (!uintKey(val, s.branches, "branches"))
                return false;
            if (s.branches == 0)
                return fail("branches: must be positive");
        } else if (key == "sites") {
            if (!uintKey(val, s.sites, "sites"))
                return false;
            if (s.sites == 0)
                return fail("sites: must be positive");
        } else if (key == "accuracy") {
            if (!fracKey(val, s.accuracy, "accuracy"))
                return false;
        } else if (key == "entropy") {
            if (!fracKey(val, s.entropy, "entropy"))
                return false;
        } else if (key == "bias") {
            if (!fracKey(val, s.bias, "bias"))
                return false;
        } else if (key == "correlation_depth") {
            if (!uintKey(val, s.correlationDepth, "correlation_depth"))
                return false;
        } else if (key == "loop_fraction") {
            if (!fracKey(val, s.loopFraction, "loop_fraction"))
                return false;
        } else if (key == "loop_period") {
            if (!uintKey(val, s.loopPeriod, "loop_period"))
                return false;
            if (s.loopPeriod < 2)
                return fail("loop_period: must be >= 2");
        } else if (key == "call_mix") {
            if (!fracKey(val, s.callMix, "call_mix"))
                return false;
        } else if (key == "phases") {
            if (!uintKey(val, s.phases, "phases"))
                return false;
            if (s.phases == 0)
                return fail("phases: must be positive");
        } else if (key == "phase_swing") {
            if (!fracKey(val, s.phaseSwing, "phase_swing"))
                return false;
        } else if (key == "burst_fraction") {
            if (!fracKey(val, s.burstFraction, "burst_fraction"))
                return false;
        } else if (key == "burst_accuracy") {
            if (!fracKey(val, s.burstAccuracy, "burst_accuracy"))
                return false;
        } else if (key == "burst_length") {
            if (!uintKey(val, s.burstLength, "burst_length"))
                return false;
            if (s.burstLength == 0)
                return fail("burst_length: must be positive");
        } else if (key == "history_bits") {
            if (!uintKey(val, s.historyBits, "history_bits"))
                return false;
            if (s.historyBits == 0 || s.historyBits > 32)
                return fail("history_bits: must be in [1, 32]");
        } else if (key == "seed") {
            if (!uintKey(val, s.seed, "seed"))
                return false;
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    if (s.loopFraction + s.callMix + s.entropy > 1.0)
        return fail("loop_fraction + call_mix + entropy must be <= 1");
    return true;
}

JsonValue
syntheticScenarioToJson(const SyntheticScenario &s)
{
    JsonValue v = JsonValue::object();
    v["name"] = JsonValue(s.name);
    v["branches"] = JsonValue(std::uint64_t{s.branches});
    v["sites"] = JsonValue(std::uint64_t{s.sites});
    v["accuracy"] = JsonValue(s.accuracy);
    v["entropy"] = JsonValue(s.entropy);
    v["bias"] = JsonValue(s.bias);
    v["correlation_depth"] =
        JsonValue(std::uint64_t{s.correlationDepth});
    v["loop_fraction"] = JsonValue(s.loopFraction);
    v["loop_period"] = JsonValue(std::uint64_t{s.loopPeriod});
    v["call_mix"] = JsonValue(s.callMix);
    v["phases"] = JsonValue(std::uint64_t{s.phases});
    v["phase_swing"] = JsonValue(s.phaseSwing);
    v["burst_fraction"] = JsonValue(s.burstFraction);
    v["burst_accuracy"] = JsonValue(s.burstAccuracy);
    v["burst_length"] = JsonValue(std::uint64_t{s.burstLength});
    v["history_bits"] = JsonValue(std::uint64_t{s.historyBits});
    v["seed"] = JsonValue(std::uint64_t{s.seed});
    return v;
}

SyntheticWorkloadGenerator::SyntheticWorkloadGenerator(
        const SyntheticScenario &s)
    : scn(s)
{
    if (scn.branches == 0)
        fatal("synthetic scenario needs at least one branch");
    if (scn.sites == 0 || scn.loopPeriod < 2 || scn.phases == 0
        || scn.burstLength == 0 || scn.historyBits == 0
        || scn.historyBits > 32)
        fatal("synthetic scenario '" + scn.name
              + "' has out-of-range parameters");

    // Site attributes are index-hashed too, so the table is just a
    // cache; per-class cut points partition [0, 1).
    const double loopCut = scn.loopFraction;
    const double callCut = loopCut + scn.callMix;
    const double randomCut = callCut + scn.entropy;
    sites.resize(scn.sites);
    for (std::uint32_t i = 0; i < scn.sites; ++i) {
        Site &site = sites[i];
        const double u = u01(mix64(scn.seed ^ SALT_CLASS
                                   ^ (std::uint64_t{i} << 32)));
        if (u < loopCut)
            site.cls = SiteClass::Loop;
        else if (u < callCut)
            site.cls = SiteClass::Call;
        else if (u < randomCut)
            site.cls = SiteClass::Random;
        else
            site.cls = SiteClass::Biased;
        site.dir = (mix64(scn.seed ^ SALT_DIR
                          ^ (std::uint64_t{i} << 32)) & 1) != 0;
        site.loopOffset = static_cast<std::uint32_t>(
                mix64(scn.seed ^ SALT_LOOP
                      ^ (std::uint64_t{i} << 32)) % scn.loopPeriod);
    }
}

std::shared_ptr<const DecodedTrace>
SyntheticWorkloadGenerator::chunk(std::uint64_t b0,
                                  std::uint64_t b1) const
{
    b1 = std::min(b1, scn.branches);
    if (b0 >= b1)
        panic("SyntheticWorkloadGenerator::chunk: empty range");
    const std::uint64_t n = b1 - b0;
    if (2 * n > 0x7fffffffull)
        panic("SyntheticWorkloadGenerator::chunk: range too large for "
              "32-bit schedule encoding");

    // Everything below is a pure function of (scenario, index) except
    // the rolling global history, reconstructed here in
    // O(historyBits) by replaying the last historyBits outcomes
    // before b0.
    auto takenAt = [&](std::uint64_t i) {
        const std::uint64_t run = i >> RUN_SHIFT;
        const std::uint32_t s = static_cast<std::uint32_t>(
                mix64(scn.seed ^ SALT_SITE ^ run) % scn.sites);
        const Site &site = sites[s];
        switch (site.cls) {
          case SiteClass::Loop:
            return (i + site.loopOffset) % scn.loopPeriod
                   != scn.loopPeriod - 1;
          case SiteClass::Call:
            return true;
          case SiteClass::Random:
            if (scn.correlationDepth > 0)
                return (mix64(scn.seed ^ SALT_CORR
                              ^ (i / scn.correlationDepth))
                        & 1) != 0;
            return (mix64(scn.seed ^ SALT_TAKEN ^ i) & 1) != 0;
          case SiteClass::Biased:
            return (u01(mix64(scn.seed ^ SALT_TAKEN ^ i)) < scn.bias)
                   == site.dir;
        }
        return false;
    };

    const std::uint64_t histMask =
        scn.historyBits >= 64 ? ~0ull : (1ull << scn.historyBits) - 1;
    std::uint64_t history = 0;
    const std::uint64_t back =
        std::min<std::uint64_t>(scn.historyBits, b0);
    for (std::uint64_t j = b0 - back; j < b0; ++j)
        history = ((history << 1) | (takenAt(j) ? 1u : 0u)) & histMask;

    const EstimatorInputPluginSet plugins =
        classicEstimatorInputPlugins();
    auto out = std::make_shared<DecodedTrace>();
    DecodedTrace &t = *out;
    t.meta = "synthetic:" + scn.name;
    t.pc.reserve(n);
    t.info.reserve(n);
    t.flags.reserve(n);
    t.schedule.reserve(2 * n);
    for (const auto &plugin : plugins) {
        InputChannel chan;
        chan.name = plugin->channel();
        chan.width = plugin->width();
        chan.levelMax = plugin->levelMax();
        switch (chan.width) {
          case InputWidth::U8:
            chan.u8.reserve(n);
            break;
          case InputWidth::U16:
            chan.u16.reserve(n);
            break;
          case InputWidth::U32:
            chan.u32.reserve(n);
            break;
          case InputWidth::U64:
            chan.u64.reserve(n);
            break;
        }
        t.channels.push_back(std::move(chan));
    }

    const double branchesD = static_cast<double>(scn.branches);
    for (std::uint64_t i = b0; i < b1; ++i) {
        const std::uint64_t run = i >> RUN_SHIFT;
        const std::uint32_t s = static_cast<std::uint32_t>(
                mix64(scn.seed ^ SALT_SITE ^ run) % scn.sites);
        const Site &site = sites[s];
        const bool taken = takenAt(i);

        // Per-class base correctness, then phase drift and bursts.
        double p;
        switch (site.cls) {
          case SiteClass::Loop:
            p = (i + site.loopOffset) % scn.loopPeriod
                        == scn.loopPeriod - 1
                    ? 0.30  // exits surprise the predictor
                    : 0.98; // body iterations are easy
            break;
          case SiteClass::Call:
            p = 0.995;
            break;
          case SiteClass::Random:
            p = scn.correlationDepth > 0 ? 0.8 : 0.6;
            break;
          case SiteClass::Biased:
          default:
            p = scn.accuracy;
            break;
        }
        if (scn.phases > 1) {
            const std::uint64_t phase = static_cast<std::uint64_t>(
                    static_cast<double>(i) * scn.phases / branchesD);
            const double sign =
                (mix64(scn.seed ^ SALT_PHASE ^ phase) & 1) != 0
                    ? 1.0 : -1.0;
            p += sign * scn.phaseSwing;
        }
        if (scn.burstFraction > 0.0) {
            const std::uint64_t region = i / scn.burstLength;
            if (u01(mix64(scn.seed ^ SALT_BURST ^ region))
                < scn.burstFraction)
                p = std::min(p, scn.burstAccuracy);
        }
        p = std::clamp(p, 0.02, 0.999);
        const bool correct =
            u01(mix64(scn.seed ^ SALT_RIGHT ^ i)) < p;
        const bool predTaken = correct == taken;

        BpInfo info;
        info.predTaken = predTaken;
        // Counter strength tracks correctness loosely (strong-correct
        // more often than strong-wrong), giving satcnt-style
        // estimators realistic, non-degenerate SENS/SPEC.
        const bool strong =
            u01(mix64(scn.seed ^ SALT_STRONG ^ i))
            < (correct ? 0.85 : 0.45);
        info.counterValue =
            predTaken ? (strong ? 3u : 2u) : (strong ? 0u : 1u);
        info.counterMax = 3;
        info.globalHistory = history;
        info.globalHistoryBits = scn.historyBits;

        const Addr pc = CODE_BASE + 4 * static_cast<Addr>(s);
        t.pc.push_back(pc);
        t.info.push_back(info);
        std::uint8_t flags = DecodedTrace::FLAG_COMMIT;
        if (taken)
            flags |= DecodedTrace::FLAG_TAKEN;
        if (correct)
            flags |= DecodedTrace::FLAG_CORRECT;
        if (predTaken)
            flags |= DecodedTrace::FLAG_PRED_TAKEN;
        t.flags.push_back(flags);

        for (std::size_t pi = 0; pi < plugins.size(); ++pi) {
            std::uint64_t v = plugins[pi]->derive(pc, info);
            InputChannel &chan = t.channels[pi];
            if (chan.levelMax > 0)
                v = std::min<std::uint64_t>(v, chan.levelMax);
            switch (chan.width) {
              case InputWidth::U8:
                chan.u8.push_back(static_cast<std::uint8_t>(v));
                break;
              case InputWidth::U16:
                chan.u16.push_back(static_cast<std::uint16_t>(v));
                break;
              case InputWidth::U32:
                chan.u32.push_back(static_cast<std::uint32_t>(v));
                break;
              case InputWidth::U64:
                chan.u64.push_back(v);
                break;
            }
        }

        const std::size_t local = static_cast<std::size_t>(i - b0);
        t.schedule.push_back(DecodedTrace::opFetch(local));
        t.schedule.push_back(DecodedTrace::opFinalize(local));

        history = ((history << 1) | (taken ? 1u : 0u)) & histMask;
        t.counters.branches += 1;
        t.counters.committedBranches += 1;
        if (!correct) {
            t.counters.mispredicts += 1;
            t.counters.committedMispredicts += 1;
        }
    }
    return out;
}

std::shared_ptr<const DecodedTrace>
SyntheticOpSource::cover(std::uint64_t opBegin, std::uint64_t opEnd,
                         std::uint64_t &localBegin,
                         std::uint64_t &coveredEnd)
{
    const std::uint64_t total = totalOps();
    opEnd = std::min(opEnd, total);
    if (opBegin >= opEnd)
        return nullptr;

    const std::uint64_t bFirst = opBegin >> 1;
    if (!cached || bFirst < cachedBegin || bFirst >= cachedEnd) {
        // Generate exactly the branches the request needs (capped):
        // skipped regions of a sampling plan are never produced.
        const std::uint64_t bEnd = std::min(
                {(opEnd + 1) >> 1, gen.branches(),
                 bFirst + CHUNK_BRANCHES});
        cached = gen.chunk(bFirst, bEnd);
        cachedBegin = bFirst;
        cachedEnd = bEnd;
    }
    localBegin = opBegin - 2 * cachedBegin;
    coveredEnd = std::min(opEnd, 2 * cachedEnd);
    return cached;
}

} // namespace confsim
