/**
 * @file
 * Grid sweeps over estimator configurations: one decoded trace per
 * (predictor, workload), evaluated for N configurations in batched
 * passes (sweep/batch_replayer.hh). A (config x threshold) grid costs
 * only config passes — level-capable lanes record a LevelSweep and
 * every threshold's quadrants are derived from it afterwards.
 *
 * The grid is describable as JSON (confsim --sweep grid.json); the
 * runner shards configurations across the parallel runner's workers,
 * every shard reading the same immutable DecodedTrace zero-copy, and
 * merges shards in a fixed order so serial and parallel runs emit
 * byte-identical results.
 */

#ifndef CONFSIM_HARNESS_SWEEP_HH
#define CONFSIM_HARNESS_SWEEP_HH

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/json.hh"
#include "common/thread_pool.hh"
#include "confidence/estimator.hh"
#include "confidence/jrs.hh"
#include "confidence/static_profile.hh"
#include "harness/level_sweep.hh"
#include "harness/parallel_runner.hh"
#include "harness/synthetic_workload.hh"
#include "metrics/quadrant.hh"
#include "pipeline/pipeline.hh"
#include "sweep/sampling.hh"
#include "workloads/workload.hh"

namespace confsim
{

/** Tunable knobs consumed by makeNamedEstimator(). */
struct SweepEstimatorParams
{
    JrsConfig jrs;                  ///< JRS geometry/threshold
    unsigned distanceThreshold = 4; ///< distance estimator "> n"
    double staticThreshold = 0.9;   ///< static estimator accuracy bar
    /// perc-conf: HC when the perceptron margin is >= this.
    unsigned percThreshold = 64;
    /// tage-conf: HC when the TAGE (confDist << 2) | useful packing
    /// is >= this (12 = provider counter fully saturated).
    unsigned tageThreshold = 12;

    bool operator==(const SweepEstimatorParams &) const = default;
};

/**
 * Build an estimator by its CLI name (jrs, jrs-base, satcnt,
 * satcnt-both, satcnt-either, pattern, static, distance, cir-ones,
 * cir-table, mcf-jrs, boost2, boost3, perc-conf, tage-conf,
 * always-high, always-low).
 * @param kind selects the satcnt variant (BothStrong on McFarling).
 * @param profile backs "static"; must outlive the estimator.
 * @return nullptr if @p name is not a known estimator.
 */
std::unique_ptr<ConfidenceEstimator>
makeNamedEstimator(const std::string &name,
                   const SweepEstimatorParams &params,
                   PredictorKind kind, const ProfileTable &profile);

/** One configuration column of the grid. */
struct SweepEstimatorSpec
{
    std::string label;     ///< display label (defaults to estimator)
    std::string estimator; ///< makeNamedEstimator() name
    SweepEstimatorParams params;
};

/** A full sweep request. */
struct SweepGrid
{
    PredictorKind kind = PredictorKind::Gshare;
    /**
     * Mixed-predictor mode: when non-empty, the grid is evaluated for
     * every listed predictor in one call (`kind` is ignored), each
     * (predictor, workload) pair decoding its own trace, and every
     * SweepWorkloadResult / aggregate carries the predictor name.
     * Empty (the default) keeps the single-predictor output format
     * byte-for-byte.
     */
    std::vector<PredictorKind> kinds;
    /** Workload names; empty = every standard workload. */
    std::vector<std::string> workloads;
    WorkloadConfig workload;
    PipelineConfig pipeline;
    /**
     * Confidence-level thresholds evaluated per level-capable lane
     * (currently jrs/jrs-base): quadrants for "high iff level >= t".
     */
    std::vector<unsigned> thresholds;
    std::vector<SweepEstimatorSpec> estimators;
    /** Configurations per batched pass (and per parallel task). */
    unsigned shardSize = 8;
    /**
     * Sampled execution (JSON key "sampling"): when enabled, every
     * (predictor, workload) evaluation replays only the plan's
     * detailed windows and each config result carries a `sampled`
     * block with per-metric 99% confidence intervals. Disabled (the
     * default) keeps full-fidelity replay and the output format
     * byte-stable; since the key is emitted only when enabled, sampled
     * grids get a different sweepGridKey() and thus never share a
     * journal with full-replay runs.
     */
    SamplingPlan sampling;
    /**
     * Synthetic workload family (JSON key "synthetic"): generated
     * scenarios evaluated after the standard workloads. When
     * `workloads` is empty and this is non-empty, *only* the synthetic
     * scenarios run (an empty grid otherwise means "every standard
     * workload"). Scenario streams are generated on the fly in chunks,
     * never materialized whole, and their results carry zero pipeline
     * stats ("static" estimators are rejected — no program profile
     * exists). Like `sampling`, the key is emitted only when
     * non-empty, so journal identities of old grids are unchanged.
     */
    std::vector<SyntheticScenario> synthetic;
};

/** Per-threshold committed-branch quadrants of a level sweep. */
struct SweepThresholdResult
{
    unsigned threshold = 0;
    QuadrantCounts committed;
};

/** Results of one configuration over one workload. */
struct SweepConfigResult
{
    std::string label;
    std::string estimator;
    QuadrantCounts committed;
    QuadrantCounts all;
    ConfidenceEstimator::Stats stats;
    bool hasLevels = false;
    std::vector<SweepThresholdResult> thresholds;
    /** Sampled-execution report (grid.sampling enabled only): the
     *  quadrants/stats above are then pooled over the plan's detailed
     *  windows, and this carries the per-metric 99% CIs. */
    std::optional<SampledLaneStats> sampled;
};

/** Results of every configuration over one workload. */
struct SweepWorkloadResult
{
    std::string workload;
    /** Predictor name in mixed-predictor mode; empty in single mode
     *  (the grid's one predictor applies to every workload). */
    std::string predictor;
    PipelineStats pipe;
    std::vector<SweepConfigResult> configs;
};

/** The whole grid's results. */
struct SweepResult
{
    SweepGrid grid;
    std::vector<SweepWorkloadResult> workloads;
};

/**
 * Grid-determined decomposition of a sweep into shard tasks. Task
 * t = (kind ki = t / tasksPerKind(), entry wi = (t % tasksPerKind())
 * / shards, shard si = t % shards) — workload-major and independent
 * of the job count or execution mode, so a journal written by any
 * executor (threads, worker processes, the serve daemon) resumes
 * under any other. Single-predictor mode has kinds == 1 (ki == 0
 * always), i.e. the original t = wi * shards + si plan.
 */
struct SweepTaskPlan
{
    std::size_t kinds = 0;     ///< predictor kinds (1 in single mode)
    std::size_t entries = 0;   ///< workload entries (recorded + synthetic)
    std::size_t shards = 0;    ///< configuration shards per (kind, entry)
    std::size_t shardSize = 0; ///< configurations per shard (>= 1)
    std::size_t configs = 0;   ///< total grid configurations

    std::size_t tasksPerKind() const { return entries * shards; }
    std::size_t tasks() const { return kinds * tasksPerKind(); }
    std::size_t kindIndex(std::size_t t) const
    {
        return t / tasksPerKind();
    }
    std::size_t entryIndex(std::size_t t) const
    {
        return (t % tasksPerKind()) / shards;
    }
    std::size_t firstConfig(std::size_t t) const
    {
        return (t % shards) * shardSize;
    }
    std::size_t configCount(std::size_t t) const
    {
        return std::min(shardSize, configs - firstConfig(t));
    }
};

/** The grid's task decomposition (shared by every executor). */
SweepTaskPlan sweepTaskPlan(const SweepGrid &grid);

/**
 * Evaluate one task of the plan and return its journal payload: the
 * JSON array of per-config results, byte-identical (via dump()) to
 * what runSweepGrid() journals for the same task. This is the worker
 * process's unit of work. fatal()s if @p task is out of range.
 */
JsonValue sweepTaskPayloadJson(const SweepGrid &grid, std::size_t task);

/** Whether @p payload parses as a valid shard payload (the array
 *  sweepTaskPayloadJson returns). */
bool sweepTaskPayloadValid(const JsonValue &payload,
                           std::string *error = nullptr);

/** Execution knobs of one runSweepGrid() call. */
struct SweepExecOptions
{
    /** Worker threads (0 = inline/serial). */
    unsigned jobs = ThreadPool::hardwareConcurrency();
    /**
     * Checkpoint journal file; empty disables checkpointing. Each
     * completed shard is journaled, and a rerun of the same grid
     * resumes from the journal with byte-identical final output.
     */
    std::string journalPath;
    /** Retry/deadline policy applied to the shard tasks. */
    RunnerPolicy policy;
};

/** What one runSweepGrid() call did (observability, not results). */
struct SweepExecReport
{
    RunnerSummary runner;
    std::uint64_t resumedShards = 0; ///< shards loaded from journal
};

/**
 * Run the grid: decode each (predictor, workload) trace once (cached),
 * shard the configurations, and batch-replay each shard. Tasks fan out
 * over @p jobs workers (0 = inline); results are merged in (workload,
 * configuration) order, so any job count produces identical output.
 * Unknown workload or estimator names fatal() — validate via
 * sweepGridFromJson() first for recoverable errors.
 */
SweepResult
runSweepGrid(const SweepGrid &grid,
             unsigned jobs = ThreadPool::hardwareConcurrency());

/**
 * As above, with checkpointing and a task policy. Shard task indices
 * are grid-determined (workload-major), so a journal written under
 * any job count resumes under any other.
 * @throws ConfsimError{TaskFailed} carrying every failed task's
 *         report when any shard fails; completed shards are already
 *         journaled, so a rerun only recomputes the failures.
 */
SweepResult
runSweepGrid(const SweepGrid &grid, const SweepExecOptions &options,
             SweepExecReport *report = nullptr);

/** Stable identity of a grid (binds journals to their grid). */
std::uint64_t sweepGridKey(const SweepGrid &grid);

/**
 * Parse a grid from JSON. Strict: unknown keys, type mismatches,
 * unknown predictor/workload/estimator names fail with a description.
 */
bool sweepGridFromJson(const JsonValue &v, SweepGrid &grid,
                       std::string *error = nullptr);

/** The grid back as JSON (round-trips through sweepGridFromJson). */
JsonValue sweepGridToJson(const SweepGrid &grid);

/** The full result document (grid echo, per-workload per-config
 *  quadrants/stats/threshold sweeps, cross-workload aggregates). */
JsonValue sweepResultToJson(const SweepResult &result);

/** A sampled-execution report as JSON (the "sampled" block of a
 *  config result; also emitted by confsim's standalone synthetic
 *  runs). */
JsonValue sampledLaneStatsToJson(const SampledLaneStats &s);

/** One configuration's results as JSON (the per-config object of
 *  sweepResultToJson; also the journal's shard payload element). */
JsonValue sweepConfigResultToJson(const SweepConfigResult &c);

/** Inverse of sweepConfigResultToJson (strict). */
bool sweepConfigResultFromJson(const JsonValue &v,
                               SweepConfigResult &c,
                               std::string *error = nullptr);

} // namespace confsim

#endif // CONFSIM_HARNESS_SWEEP_HH
