/**
 * @file
 * Reusable BranchEvent collectors. A bench composes the collectors it
 * needs into one sink; each collector aggregates a different view of
 * the branch stream (confidence quadrants, level sweeps, distance
 * profiles, mis-estimation clustering).
 */

#ifndef CONFSIM_HARNESS_COLLECTORS_HH
#define CONFSIM_HARNESS_COLLECTORS_HH

#include <cstdint>
#include <vector>

#include "harness/distance_profile.hh"
#include "harness/level_sweep.hh"
#include "metrics/quadrant.hh"
#include "pipeline/pipeline.hh"

namespace confsim
{

/**
 * Quadrant counts per attached estimator, split into committed-only
 * (what the paper reports) and all-branch views.
 */
class ConfidenceCollector : public BranchEventSink
{
  public:
    /** @param num_estimators number of estimator bits in the events. */
    explicit ConfidenceCollector(std::size_t num_estimators)
        : committedQ(num_estimators), allQ(num_estimators)
    {
    }

    /** Feed one branch event. */
    void
    onEvent(const BranchEvent &ev) override
    {
        for (std::size_t i = 0; i < committedQ.size(); ++i) {
            const bool high = ev.estimate(static_cast<unsigned>(i));
            allQ[i].record(ev.correct, high);
            if (ev.willCommit)
                committedQ[i].record(ev.correct, high);
        }
    }

    /** Committed-branch quadrants of estimator @p i. */
    const QuadrantCounts &
    committed(std::size_t i) const
    {
        return committedQ[i];
    }

    /** All-branch quadrants of estimator @p i. */
    const QuadrantCounts &all(std::size_t i) const { return allQ[i]; }

  private:
    std::vector<QuadrantCounts> committedQ;
    std::vector<QuadrantCounts> allQ;
};

/**
 * Level sweeps per attached level reader (committed branches only,
 * matching the paper's reporting).
 */
class LevelCollector : public BranchEventSink
{
  public:
    /**
     * @param num_readers number of level readers in the events.
     * @param max_level clamp for recorded levels.
     */
    LevelCollector(std::size_t num_readers, unsigned max_level)
        : sweeps(num_readers, LevelSweep(max_level))
    {
    }

    /** Feed one branch event. */
    void
    onEvent(const BranchEvent &ev) override
    {
        if (!ev.willCommit)
            return;
        for (std::size_t j = 0; j < sweeps.size(); ++j)
            sweeps[j].record(ev.levels[j], ev.correct);
    }

    /** Sweep histogram of reader @p j. */
    const LevelSweep &sweep(std::size_t j) const { return sweeps[j]; }

    /** Mutable access for merging across workloads. */
    LevelSweep &sweep(std::size_t j) { return sweeps[j]; }

  private:
    std::vector<LevelSweep> sweeps;
};

/**
 * The four misprediction-distance profiles of Figures 6-9.
 */
class DistanceCollector : public BranchEventSink
{
  public:
    /** @param buckets distance buckets per profile. */
    explicit DistanceCollector(std::size_t buckets = 64)
        : preciseAll(buckets), preciseCommitted(buckets),
          perceivedAll(buckets), perceivedCommitted(buckets)
    {
    }

    /** Feed one branch event. */
    void
    onEvent(const BranchEvent &ev) override
    {
        preciseAll.record(ev.preciseDistAll, !ev.correct);
        perceivedAll.record(ev.perceivedDistAll, !ev.correct);
        if (ev.willCommit) {
            preciseCommitted.record(ev.preciseDistCommitted,
                                    !ev.correct);
            perceivedCommitted.record(ev.perceivedDistCommitted,
                                      !ev.correct);
        }
    }

    DistanceProfile preciseAll;       ///< Figs. 6/7 "all branches"
    DistanceProfile preciseCommitted; ///< Figs. 6/7 "committed"
    DistanceProfile perceivedAll;     ///< Figs. 8/9 "all branches"
    DistanceProfile perceivedCommitted; ///< Figs. 8/9 "committed"
};

/**
 * §4.1 second experiment: do confidence *mis-estimations* cluster?
 * Tracks, over the committed stream, the mis-estimation rate as a
 * function of distance since the last mis-estimation, per estimator.
 * (A mis-estimation is HC-but-incorrect or LC-but-correct.)
 */
class MisestimationCollector : public BranchEventSink
{
  public:
    /**
     * @param num_estimators estimator bits in the events.
     * @param buckets distance buckets.
     */
    MisestimationCollector(std::size_t num_estimators,
                           std::size_t buckets = 32)
        : profiles(num_estimators, DistanceProfile(buckets)),
          distances(num_estimators, 0)
    {
    }

    /** Feed one branch event (committed stream only). */
    void
    onEvent(const BranchEvent &ev) override
    {
        if (!ev.willCommit)
            return;
        for (std::size_t i = 0; i < profiles.size(); ++i) {
            const bool high = ev.estimate(static_cast<unsigned>(i));
            const bool misestimated = high != ev.correct;
            profiles[i].record(distances[i] + 1, misestimated);
            if (misestimated)
                distances[i] = 0;
            else
                ++distances[i];
        }
    }

    /** Mis-estimation-rate profile of estimator @p i. */
    const DistanceProfile &
    profile(std::size_t i) const
    {
        return profiles[i];
    }

  private:
    std::vector<DistanceProfile> profiles;
    std::vector<std::uint64_t> distances;
};

} // namespace confsim

#endif // CONFSIM_HARNESS_COLLECTORS_HH
