#include "harness/sweep.hh"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "bpred/perceptron.hh"
#include "bpred/tage.hh"
#include "common/checksum.hh"
#include "common/logging.hh"
#include "confidence/boosting.hh"
#include "confidence/cir.hh"
#include "confidence/distance.hh"
#include "confidence/mcf_jrs.hh"
#include "confidence/native.hh"
#include "confidence/pattern.hh"
#include "confidence/sat_counters.hh"
#include "harness/config_json.hh"
#include "harness/experiment_cache.hh"
#include "harness/parallel_runner.hh"
#include "harness/sampled_replay.hh"
#include "harness/sweep_journal.hh"
#include "sweep/batch_replayer.hh"

namespace confsim
{

std::unique_ptr<ConfidenceEstimator>
makeNamedEstimator(const std::string &name,
                   const SweepEstimatorParams &params,
                   PredictorKind kind, const ProfileTable &profile)
{
    if (name == "jrs")
        return std::make_unique<JrsEstimator>(params.jrs);
    if (name == "jrs-base") {
        JrsConfig jrs = params.jrs;
        jrs.enhanced = false;
        return std::make_unique<JrsEstimator>(jrs);
    }
    if (name == "satcnt")
        return std::make_unique<SatCountersEstimator>(
                kind == PredictorKind::McFarling
                    ? SatCountersVariant::BothStrong
                    : SatCountersVariant::Selected);
    if (name == "satcnt-both")
        return std::make_unique<SatCountersEstimator>(
                SatCountersVariant::BothStrong);
    if (name == "satcnt-either")
        return std::make_unique<SatCountersEstimator>(
                SatCountersVariant::EitherStrong);
    if (name == "pattern")
        return std::make_unique<PatternEstimator>();
    if (name == "static")
        return std::make_unique<StaticEstimator>(
                profile, params.staticThreshold);
    if (name == "distance")
        return std::make_unique<DistanceEstimator>(
                params.distanceThreshold);
    if (name == "cir-ones") {
        CirConfig cir;
        cir.mode = CirMode::OnesCount;
        return std::make_unique<CirEstimator>(cir);
    }
    if (name == "cir-table") {
        CirConfig cir;
        cir.mode = CirMode::PatternTable;
        return std::make_unique<CirEstimator>(cir);
    }
    if (name == "mcf-jrs")
        return std::make_unique<McfJrsEstimator>();
    if (name == "perc-conf")
        return std::make_unique<NativeConfidenceEstimator>(
                NativeConfidenceEstimator::percConfig(
                        params.percThreshold));
    if (name == "tage-conf")
        return std::make_unique<NativeConfidenceEstimator>(
                NativeConfidenceEstimator::tageConfig(
                        params.tageThreshold));
    if (name == "boost2" || name == "boost3")
        return std::make_unique<BoostingEstimator>(
                std::make_unique<JrsEstimator>(params.jrs),
                name == "boost2" ? 2 : 3);
    if (name == "always-high")
        return std::make_unique<ConstantEstimator>(true);
    if (name == "always-low")
        return std::make_unique<ConstantEstimator>(false);
    return nullptr;
}

namespace
{

/** Names the batched kernels cover; everything else goes through the
 *  virtual fallback lane. */
bool
isJrsLane(const std::string &name)
{
    return name == "jrs" || name == "jrs-base";
}

const ProfileTable &
emptyProfile()
{
    static const ProfileTable table;
    return table;
}

/** Attach one grid column to @p replayer; returns the owner of a
 *  virtual lane's estimator (nullptr for kernel lanes). @p kind is
 *  the predictor the shard's trace was recorded with (grid.kind in
 *  single mode, the task's entry of grid.kinds in mixed mode). */
std::unique_ptr<ConfidenceEstimator>
attachConfig(BatchReplayer &replayer, const SweepGrid &grid,
             PredictorKind kind, const SweepEstimatorSpec &spec,
             const ProfileTable &profile)
{
    const std::string &n = spec.estimator;
    const bool sweep_levels = !grid.thresholds.empty();
    if (isJrsLane(n)) {
        JrsConfig jrs = spec.params.jrs;
        if (n == "jrs-base")
            jrs.enhanced = false;
        replayer.attachJrs(jrs, sweep_levels);
        return nullptr;
    }
    if (n == "satcnt") {
        replayer.attachSatCounters(
                kind == PredictorKind::McFarling
                    ? SatCountersVariant::BothStrong
                    : SatCountersVariant::Selected);
        return nullptr;
    }
    if (n == "satcnt-both") {
        replayer.attachSatCounters(SatCountersVariant::BothStrong);
        return nullptr;
    }
    if (n == "satcnt-either") {
        replayer.attachSatCounters(SatCountersVariant::EitherStrong);
        return nullptr;
    }
    if (n == "pattern") {
        replayer.attachPattern();
        return nullptr;
    }
    if (n == "perc-conf") {
        replayer.attachChannelThreshold(CHANNEL_PERC_MARGIN,
                                        spec.params.percThreshold,
                                        sweep_levels);
        return nullptr;
    }
    if (n == "tage-conf") {
        replayer.attachChannelThreshold(CHANNEL_TAGE_CONF,
                                        spec.params.tageThreshold,
                                        sweep_levels);
        return nullptr;
    }
    auto est = makeNamedEstimator(n, spec.params, kind, profile);
    if (!est)
        fatal("unknown estimator '" + n + "' in sweep grid");
    replayer.attachEstimator(est.get());
    return est;
}

/**
 * One row of the sweep's evaluation plan: a standard (recorded)
 * workload or a synthetic scenario. Pointers alias the grid / the
 * static registry, both of which outlive every task.
 */
struct SweepEntry
{
    const WorkloadSpec *spec = nullptr;      ///< recorded entry
    const SyntheticScenario *scn = nullptr;  ///< synthetic entry

    const std::string &name() const
    {
        return spec != nullptr ? spec->name : scn->name;
    }
};

/** One parallel task: one (predictor, entry), one shard of
 *  configurations. */
std::vector<SweepConfigResult>
runShard(const SweepGrid &grid, PredictorKind kind,
         const SweepEntry &entry, std::size_t first, std::size_t count)
{
    // Recorded entries replay the cached decoded trace; synthetic
    // entries stream generated chunks through an OpSource (the
    // initial one-branch chunk only exists so lane attachment can
    // resolve the input channels).
    std::shared_ptr<const DecodedRun> decoded;
    std::shared_ptr<const DecodedTrace> initial;
    std::unique_ptr<OpSource> source;
    if (entry.spec != nullptr) {
        decoded = cachedDecodedRun(kind, *entry.spec, grid.workload,
                                   grid.pipeline);
        initial = std::shared_ptr<const DecodedTrace>(decoded,
                                                      &decoded->trace);
        if (grid.sampling.enabled())
            source = std::make_unique<MaterializedOpSource>(initial);
    } else {
        auto synth = std::make_unique<SyntheticOpSource>(*entry.scn);
        std::uint64_t localBegin = 0;
        std::uint64_t coveredEnd = 0;
        initial = synth->cover(0, 2, localBegin, coveredEnd);
        source = std::move(synth);
    }
    BatchReplayer replayer(initial);

    // Owners of virtual-lane estimators; the cached profile (shared,
    // immutable) backs any "static" column and must outlive them.
    std::shared_ptr<const ProfileTable> profile;
    std::vector<std::unique_ptr<ConfidenceEstimator>> owned;
    for (std::size_t c = first; c < first + count; ++c) {
        const SweepEstimatorSpec &est = grid.estimators[c];
        if (est.estimator == "static" && !profile) {
            if (entry.spec == nullptr)
                fatal("'static' estimator needs a program profile; "
                      "synthetic workloads have none");
            profile = cachedProfile(kind, *entry.spec, grid.workload);
        }
        auto owner = attachConfig(replayer, grid, kind, est,
                                  profile ? *profile : emptyProfile());
        if (owner)
            owned.push_back(std::move(owner));
    }

    std::string error;
    std::vector<SampledLaneStats> sampled;
    bool ok;
    if (grid.sampling.enabled())
        ok = runSampledReplay(replayer, *source, grid.sampling,
                              sampled, &error);
    else if (entry.spec == nullptr)
        ok = runFullReplayStreamed(replayer, *source, &error);
    else
        ok = replayer.run(&error);
    if (!ok)
        panic("sweep replay for '" + entry.name() + "' failed: "
              + error);

    std::vector<SweepConfigResult> results(count);
    for (std::size_t j = 0; j < count; ++j) {
        SweepConfigResult &r = results[j];
        const unsigned lane = static_cast<unsigned>(j);
        r.label = grid.estimators[first + j].label;
        r.estimator = grid.estimators[first + j].estimator;
        r.committed = replayer.committed(lane);
        r.all = replayer.all(lane);
        r.stats = replayer.estimatorStats(lane);
        r.hasLevels = replayer.hasLevels(lane);
        if (r.hasLevels) {
            const LevelSweep &levels = replayer.levels(lane);
            for (unsigned t : grid.thresholds)
                r.thresholds.push_back({t, levels.atThresholdGe(t)});
        }
        if (!sampled.empty())
            r.sampled = sampled[lane];
    }
    return results;
}

std::vector<SweepEntry>
resolveEntries(const SweepGrid &grid)
{
    const auto &all = standardWorkloads();
    std::vector<SweepEntry> entries;
    if (grid.workloads.empty()) {
        // Empty normally means every standard workload; with synthetic
        // scenarios present it means synthetic-only.
        if (grid.synthetic.empty()) {
            for (const WorkloadSpec &s : all)
                entries.push_back(SweepEntry{&s, nullptr});
        }
    } else {
        for (const std::string &name : grid.workloads) {
            const auto it = std::find_if(
                    all.begin(), all.end(),
                    [&](const WorkloadSpec &s) {
                        return s.name == name;
                    });
            if (it == all.end())
                fatal("unknown workload '" + name
                      + "' in sweep grid");
            entries.push_back(SweepEntry{&*it, nullptr});
        }
    }
    for (const SyntheticScenario &s : grid.synthetic)
        entries.push_back(SweepEntry{nullptr, &s});
    return entries;
}

/** Journal payload of one shard: array of per-config results. */
std::string
shardPayload(const std::vector<SweepConfigResult> &results)
{
    JsonValue arr = JsonValue::array();
    for (const SweepConfigResult &c : results)
        arr.push(sweepConfigResultToJson(c));
    return arr.dump();
}

/** Inverse of shardPayload(); nullopt on any mismatch. */
std::optional<std::vector<SweepConfigResult>>
parseShardPayload(const std::string &payload)
{
    std::string error;
    const JsonValue arr = JsonValue::parse(payload, &error);
    if (!error.empty() || !arr.isArray())
        return std::nullopt;
    std::vector<SweepConfigResult> results;
    for (const JsonValue &e : arr.elements()) {
        SweepConfigResult c;
        if (!sweepConfigResultFromJson(e, c))
            return std::nullopt;
        results.push_back(std::move(c));
    }
    return results;
}

/** The grid's predictor list (single mode = one entry, grid.kind). */
std::vector<PredictorKind>
resolveKinds(const SweepGrid &grid)
{
    return grid.kinds.empty()
        ? std::vector<PredictorKind>{grid.kind} : grid.kinds;
}

} // anonymous namespace

SweepResult
runSweepGrid(const SweepGrid &grid, unsigned jobs)
{
    SweepExecOptions options;
    options.jobs = jobs;
    return runSweepGrid(grid, options);
}

SweepTaskPlan
sweepTaskPlan(const SweepGrid &grid)
{
    SweepTaskPlan plan;
    plan.kinds = grid.kinds.empty() ? 1 : grid.kinds.size();
    plan.entries = resolveEntries(grid).size();
    plan.configs = grid.estimators.size();
    plan.shardSize = std::max<std::size_t>(grid.shardSize, 1);
    plan.shards = plan.configs == 0
        ? 0 : (plan.configs + plan.shardSize - 1) / plan.shardSize;
    return plan;
}

JsonValue
sweepTaskPayloadJson(const SweepGrid &grid, std::size_t task)
{
    const SweepTaskPlan plan = sweepTaskPlan(grid);
    if (plan.tasks() == 0 || task >= plan.tasks())
        fatal("sweep task index " + std::to_string(task)
              + " out of range (grid has "
              + std::to_string(plan.tasks()) + " tasks)");
    const std::vector<SweepEntry> entries = resolveEntries(grid);
    const std::vector<PredictorKind> kindsList = resolveKinds(grid);
    const auto results = runShard(grid, kindsList[plan.kindIndex(task)],
                                  entries[plan.entryIndex(task)],
                                  plan.firstConfig(task),
                                  plan.configCount(task));
    JsonValue arr = JsonValue::array();
    for (const SweepConfigResult &c : results)
        arr.push(sweepConfigResultToJson(c));
    return arr;
}

bool
sweepTaskPayloadValid(const JsonValue &payload, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (!payload.isArray() || payload.size() == 0)
        return fail("payload: expected a non-empty array of config "
                    "results");
    for (const JsonValue &e : payload.elements()) {
        SweepConfigResult c;
        std::string sub;
        if (!sweepConfigResultFromJson(e, c, &sub))
            return fail("payload: " + sub);
    }
    return true;
}

std::uint64_t
sweepGridKey(const SweepGrid &grid)
{
    return xxhash64(sweepGridToJson(grid).dump());
}

SweepResult
runSweepGrid(const SweepGrid &grid, const SweepExecOptions &options,
             SweepExecReport *report)
{
    const std::vector<SweepEntry> entries = resolveEntries(grid);
    // Single mode runs grid.kind; mixed mode runs each listed kind as
    // an outer loop over the same (workload, shard) plan, so the task
    // index reduces to the single-mode one when kinds has one entry.
    const bool multi = !grid.kinds.empty();
    const std::vector<PredictorKind> kindsList = resolveKinds(grid);
    const SweepTaskPlan plan = sweepTaskPlan(grid);
    const std::size_t shards = plan.shards;
    const std::size_t tasks = plan.tasks();

    std::unique_ptr<SweepJournal> journal;
    if (!options.journalPath.empty())
        journal = std::make_unique<SweepJournal>(options.journalPath,
                                                 sweepGridKey(grid));

    // The plan's task index (see SweepTaskPlan) is grid-determined
    // and jobs-independent, so a journal written under one job count
    // resumes under any other, and the in-order merge below is
    // identical for any job count.
    std::vector<std::optional<std::vector<SweepConfigResult>>>
        parts(tasks);
    std::vector<std::size_t> pending;
    for (std::size_t t = 0; t < tasks; ++t) {
        std::string payload;
        if (journal && journal->lookup(t, payload)) {
            if (auto parsed = parseShardPayload(payload)) {
                parts[t] = std::move(*parsed);
                continue;
            }
        }
        pending.push_back(t);
    }

    ParallelRunner runner(options.jobs);
    auto outcome = runner.mapReported(
            pending.size(),
            [&](TaskContext &ctx) {
                const std::size_t t = pending[ctx.index];
                auto results =
                    runShard(grid, kindsList[plan.kindIndex(t)],
                             entries[plan.entryIndex(t)],
                             plan.firstConfig(t), plan.configCount(t));
                // Checkpoint before returning: a later fatal task (or
                // a kill) must not lose this completed shard.
                if (journal)
                    journal->append(t, shardPayload(results));
                return results;
            },
            options.policy);

    if (report) {
        report->runner = outcome.summary();
        report->resumedShards = tasks - pending.size();
    }
    if (!outcome.ok())
        throw ParallelRunner::mapFailure(outcome.reports);
    for (std::size_t i = 0; i < pending.size(); ++i)
        parts[pending[i]] = std::move(*outcome.results[i]);

    SweepResult result;
    result.grid = grid;
    for (std::size_t ki = 0; ki < kindsList.size(); ++ki) {
        for (std::size_t wi = 0; wi < entries.size(); ++wi) {
            SweepWorkloadResult wl;
            wl.workload = entries[wi].name();
            if (multi)
                wl.predictor = predictorKindName(kindsList[ki]);
            // Synthetic streams never ran a pipeline: zero stats.
            if (entries[wi].spec != nullptr)
                wl.pipe = cachedDecodedRun(kindsList[ki],
                                           *entries[wi].spec,
                                           grid.workload,
                                           grid.pipeline)->pipe;
            for (std::size_t si = 0; si < shards; ++si) {
                auto &part =
                    *parts[ki * plan.tasksPerKind() + wi * shards
                           + si];
                for (auto &config : part)
                    wl.configs.push_back(std::move(config));
            }
            result.workloads.push_back(std::move(wl));
        }
    }
    return result;
}

namespace
{

JsonValue
quadrantsToJson(const QuadrantCounts &q)
{
    JsonValue v = JsonValue::object();
    v["chc"] = JsonValue(std::uint64_t{q.chc});
    v["ihc"] = JsonValue(std::uint64_t{q.ihc});
    v["clc"] = JsonValue(std::uint64_t{q.clc});
    v["ilc"] = JsonValue(std::uint64_t{q.ilc});
    return v;
}

bool
quadrantsFromJson(const JsonValue *v, QuadrantCounts &q)
{
    if (v == nullptr || !v->isObject())
        return false;
    for (const char *key : {"chc", "ihc", "clc", "ilc"}) {
        const JsonValue *field = v->find(key);
        if (field == nullptr
            || (field->kind() != JsonValue::Kind::Uint
                && field->kind() != JsonValue::Kind::Int))
            return false;
    }
    q.chc = v->find("chc")->asUint();
    q.ihc = v->find("ihc")->asUint();
    q.clc = v->find("clc")->asUint();
    q.ilc = v->find("ilc")->asUint();
    return true;
}

const JsonValue *
uintMember(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr
        || (v->kind() != JsonValue::Kind::Uint
            && v->kind() != JsonValue::Kind::Int))
        return nullptr;
    return v;
}

JsonValue
sampledMetricToJson(const SampledMetric &m)
{
    JsonValue v = JsonValue::object();
    v["value"] = JsonValue(m.value);
    v["mean"] = JsonValue(m.mean);
    v["windows"] = JsonValue(std::uint64_t{m.windows});
    // ci99 is present exactly when the interval is defined (>= 2
    // observing windows, or exact full coverage).
    if (m.defined())
        v["ci99"] = JsonValue(m.halfWidth);
    return v;
}

bool
sampledMetricFromJson(const JsonValue *v, SampledMetric &m)
{
    if (v == nullptr || !v->isObject())
        return false;
    const JsonValue *value = v->find("value");
    const JsonValue *mean = v->find("mean");
    const JsonValue *windows = uintMember(*v, "windows");
    if (value == nullptr || !value->isNumber() || mean == nullptr
        || !mean->isNumber() || windows == nullptr)
        return false;
    m.value = value->asDouble();
    m.mean = mean->asDouble();
    m.windows = windows->asUint();
    m.halfWidth = -1.0;
    if (const JsonValue *ci = v->find("ci99")) {
        if (!ci->isNumber() || ci->asDouble() < 0.0)
            return false;
        m.halfWidth = ci->asDouble();
    }
    return true;
}

JsonValue
sampledStatsToJson(const SampledLaneStats &s)
{
    JsonValue v = JsonValue::object();
    v["windows"] = JsonValue(std::uint64_t{s.windows});
    v["passes"] = JsonValue(std::uint64_t{s.passes});
    v["ops_detailed"] = JsonValue(std::uint64_t{s.opsDetailed});
    v["ops_warmup"] = JsonValue(std::uint64_t{s.opsWarmup});
    v["ops_skipped"] = JsonValue(std::uint64_t{s.opsSkipped});
    v["ops_total"] = JsonValue(std::uint64_t{s.opsTotal});
    JsonValue metrics = JsonValue::object();
    metrics["mispredict_rate"] = sampledMetricToJson(s.mispredictRate);
    metrics["sens"] = sampledMetricToJson(s.sens);
    metrics["spec"] = sampledMetricToJson(s.spec);
    metrics["pvp"] = sampledMetricToJson(s.pvp);
    metrics["pvn"] = sampledMetricToJson(s.pvn);
    v["metrics"] = metrics;
    return v;
}

bool
sampledStatsFromJson(const JsonValue &v, SampledLaneStats &s)
{
    if (!v.isObject())
        return false;
    const JsonValue *windows = uintMember(v, "windows");
    const JsonValue *passes = uintMember(v, "passes");
    const JsonValue *detailed = uintMember(v, "ops_detailed");
    const JsonValue *warmup = uintMember(v, "ops_warmup");
    const JsonValue *skipped = uintMember(v, "ops_skipped");
    const JsonValue *total = uintMember(v, "ops_total");
    const JsonValue *metrics = v.find("metrics");
    if (windows == nullptr || passes == nullptr || detailed == nullptr
        || warmup == nullptr || skipped == nullptr || total == nullptr
        || metrics == nullptr || !metrics->isObject())
        return false;
    s.windows = windows->asUint();
    s.passes = static_cast<unsigned>(passes->asUint());
    s.opsDetailed = detailed->asUint();
    s.opsWarmup = warmup->asUint();
    s.opsSkipped = skipped->asUint();
    s.opsTotal = total->asUint();
    return sampledMetricFromJson(metrics->find("mispredict_rate"),
                                 s.mispredictRate)
           && sampledMetricFromJson(metrics->find("sens"), s.sens)
           && sampledMetricFromJson(metrics->find("spec"), s.spec)
           && sampledMetricFromJson(metrics->find("pvp"), s.pvp)
           && sampledMetricFromJson(metrics->find("pvn"), s.pvn);
}

JsonValue
samplingPlanToJson(const SamplingPlan &p)
{
    JsonValue v = JsonValue::object();
    v["window_ops"] = JsonValue(std::uint64_t{p.windowOps});
    v["stride_ops"] = JsonValue(std::uint64_t{p.strideOps});
    v["warmup_ops"] = JsonValue(std::uint64_t{p.warmupOps});
    v["target_half_width"] = JsonValue(p.targetHalfWidth);
    v["seed"] = JsonValue(std::uint64_t{p.seed});
    v["max_passes"] = JsonValue(std::uint64_t{p.maxPasses});
    return v;
}

bool
samplingPlanFromJson(const JsonValue &v, SamplingPlan &p,
                     std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (!v.isObject())
        return fail("expected a JSON object");
    for (const auto &[key, val] : v.members()) {
        const bool isUint =
            (val.kind() == JsonValue::Kind::Uint
             || val.kind() == JsonValue::Kind::Int)
            && val.asInt() >= 0;
        if (key == "window_ops") {
            if (!isUint)
                return fail("window_ops: expected an unsigned integer");
            p.windowOps = val.asUint();
        } else if (key == "stride_ops") {
            if (!isUint)
                return fail("stride_ops: expected an unsigned integer");
            p.strideOps = val.asUint();
        } else if (key == "warmup_ops") {
            if (!isUint)
                return fail("warmup_ops: expected an unsigned integer");
            p.warmupOps = val.asUint();
        } else if (key == "target_half_width") {
            if (!val.isNumber() || val.asDouble() < 0.0
                || val.asDouble() >= 1.0)
                return fail("target_half_width: expected a number in "
                            "[0, 1)");
            p.targetHalfWidth = val.asDouble();
        } else if (key == "seed") {
            if (!isUint)
                return fail("seed: expected an unsigned integer");
            p.seed = val.asUint();
        } else if (key == "max_passes") {
            if (!isUint || val.asUint() == 0)
                return fail("max_passes: expected a positive integer");
            p.maxPasses = static_cast<unsigned>(val.asUint());
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    if (p.windowOps == 0)
        return fail("missing or zero 'window_ops' (use no \"sampling\" "
                    "key for full replay)");
    return true;
}

} // anonymous namespace

JsonValue
sampledLaneStatsToJson(const SampledLaneStats &s)
{
    return sampledStatsToJson(s);
}

JsonValue
sweepConfigResultToJson(const SweepConfigResult &c)
{
    JsonValue e = JsonValue::object();
    e["label"] = JsonValue(c.label);
    e["estimator"] = JsonValue(c.estimator);
    JsonValue quads = JsonValue::object();
    quads["committed"] = quadrantsToJson(c.committed);
    quads["all"] = quadrantsToJson(c.all);
    e["quadrants"] = quads;
    JsonValue stats = JsonValue::object();
    stats["estimates"] = JsonValue(std::uint64_t{c.stats.estimates});
    stats["low_estimates"] =
        JsonValue(std::uint64_t{c.stats.lowEstimates});
    stats["updates"] = JsonValue(std::uint64_t{c.stats.updates});
    e["stats"] = stats;
    if (c.hasLevels) {
        JsonValue thresholds = JsonValue::array();
        for (const SweepThresholdResult &t : c.thresholds) {
            JsonValue tv = JsonValue::object();
            tv["threshold"] = JsonValue(std::uint64_t{t.threshold});
            tv["committed"] = quadrantsToJson(t.committed);
            thresholds.push(tv);
        }
        e["thresholds"] = thresholds;
    }
    if (c.sampled)
        e["sampled"] = sampledStatsToJson(*c.sampled);
    return e;
}

bool
sweepConfigResultFromJson(const JsonValue &v, SweepConfigResult &c,
                          std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (!v.isObject())
        return fail("expected a JSON object");
    const JsonValue *label = v.find("label");
    const JsonValue *estimator = v.find("estimator");
    if (label == nullptr || !label->isString()
        || estimator == nullptr || !estimator->isString())
        return fail("missing label/estimator");
    c.label = label->asString();
    c.estimator = estimator->asString();

    const JsonValue *quads = v.find("quadrants");
    if (quads == nullptr || !quads->isObject()
        || !quadrantsFromJson(quads->find("committed"), c.committed)
        || !quadrantsFromJson(quads->find("all"), c.all))
        return fail("bad quadrants");

    const JsonValue *stats = v.find("stats");
    if (stats == nullptr || !stats->isObject())
        return fail("missing stats");
    const JsonValue *estimates = uintMember(*stats, "estimates");
    const JsonValue *lowEstimates =
        uintMember(*stats, "low_estimates");
    const JsonValue *updates = uintMember(*stats, "updates");
    if (estimates == nullptr || lowEstimates == nullptr
        || updates == nullptr)
        return fail("bad stats");
    c.stats.estimates = estimates->asUint();
    c.stats.lowEstimates = lowEstimates->asUint();
    c.stats.updates = updates->asUint();

    c.hasLevels = v.contains("thresholds");
    c.thresholds.clear();
    if (c.hasLevels) {
        const JsonValue *thresholds = v.find("thresholds");
        if (!thresholds->isArray())
            return fail("bad thresholds");
        for (const JsonValue &tv : thresholds->elements()) {
            if (!tv.isObject())
                return fail("bad thresholds");
            const JsonValue *threshold = uintMember(tv, "threshold");
            SweepThresholdResult t;
            if (threshold == nullptr
                || !quadrantsFromJson(tv.find("committed"),
                                      t.committed))
                return fail("bad thresholds");
            t.threshold = static_cast<unsigned>(threshold->asUint());
            c.thresholds.push_back(t);
        }
    }
    c.sampled.reset();
    if (const JsonValue *sampled = v.find("sampled")) {
        SampledLaneStats s;
        if (!sampledStatsFromJson(*sampled, s))
            return fail("bad sampled block");
        c.sampled = s;
    }
    return true;
}

bool
sweepGridFromJson(const JsonValue &v, SweepGrid &grid,
                  std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (!v.isObject())
        return fail("expected a JSON object");

    for (const auto &[key, val] : v.members()) {
        if (key == "predictor") {
            if (!val.isString()
                || !predictorKindFromName(val.asString(), grid.kind))
                return fail("predictor: unknown predictor kind");
        } else if (key == "predictors") {
            if (!val.isArray() || val.size() == 0)
                return fail("predictors: expected a non-empty array "
                            "of predictor names");
            grid.kinds.clear();
            for (const JsonValue &p : val.elements()) {
                PredictorKind kind = PredictorKind::Gshare;
                if (!p.isString()
                    || !predictorKindFromName(p.asString(), kind))
                    return fail("predictors: unknown predictor kind");
                grid.kinds.push_back(kind);
            }
        } else if (key == "workloads") {
            if (!val.isArray())
                return fail("workloads: expected an array of names");
            grid.workloads.clear();
            for (const JsonValue &w : val.elements()) {
                if (!w.isString())
                    return fail("workloads: expected an array of "
                                "names");
                grid.workloads.push_back(w.asString());
            }
        } else if (key == "workload_config") {
            std::string sub;
            if (!fromJson(val, grid.workload, &sub))
                return fail("workload_config: " + sub);
        } else if (key == "pipeline") {
            std::string sub;
            if (!fromJson(val, grid.pipeline, &sub))
                return fail("pipeline: " + sub);
        } else if (key == "thresholds") {
            if (!val.isArray())
                return fail("thresholds: expected an array of "
                            "unsigned integers");
            grid.thresholds.clear();
            for (const JsonValue &t : val.elements()) {
                if (t.kind() != JsonValue::Kind::Uint
                    && (t.kind() != JsonValue::Kind::Int
                        || t.asInt() < 0))
                    return fail("thresholds: expected an array of "
                                "unsigned integers");
                grid.thresholds.push_back(
                        static_cast<unsigned>(t.asUint()));
            }
        } else if (key == "shard_size") {
            if ((val.kind() != JsonValue::Kind::Uint
                 && val.kind() != JsonValue::Kind::Int)
                || val.asInt() < 0 || val.asUint() == 0)
                return fail("shard_size: expected a positive integer");
            grid.shardSize = static_cast<unsigned>(val.asUint());
        } else if (key == "sampling") {
            std::string sub;
            if (!samplingPlanFromJson(val, grid.sampling, &sub))
                return fail("sampling: " + sub);
        } else if (key == "synthetic") {
            if (!val.isArray() || val.size() == 0)
                return fail("synthetic: expected a non-empty array of "
                            "scenario objects");
            grid.synthetic.clear();
            for (const JsonValue &sv : val.elements()) {
                SyntheticScenario scn;
                std::string sub;
                if (!syntheticScenarioFromJson(sv, scn, &sub))
                    return fail("synthetic: " + sub);
                grid.synthetic.push_back(std::move(scn));
            }
        } else if (key == "estimators") {
            if (!val.isArray() || val.size() == 0)
                return fail("estimators: expected a non-empty array");
            grid.estimators.clear();
            for (const JsonValue &e : val.elements()) {
                if (!e.isObject())
                    return fail("estimators: expected objects");
                SweepEstimatorSpec spec;
                for (const auto &[ekey, eval] : e.members()) {
                    if (ekey == "label") {
                        if (!eval.isString())
                            return fail("label: expected a string");
                        spec.label = eval.asString();
                    } else if (ekey == "estimator") {
                        if (!eval.isString())
                            return fail("estimator: expected a string");
                        spec.estimator = eval.asString();
                    } else if (ekey == "jrs") {
                        std::string sub;
                        if (!fromJson(eval, spec.params.jrs, &sub))
                            return fail("jrs: " + sub);
                    } else if (ekey == "distance_threshold") {
                        if ((eval.kind() != JsonValue::Kind::Uint
                             && eval.kind() != JsonValue::Kind::Int)
                            || eval.asInt() < 0)
                            return fail("distance_threshold: expected "
                                        "an unsigned integer");
                        spec.params.distanceThreshold =
                            static_cast<unsigned>(eval.asUint());
                    } else if (ekey == "static_threshold") {
                        if (!eval.isNumber())
                            return fail("static_threshold: expected a "
                                        "number");
                        spec.params.staticThreshold = eval.asDouble();
                    } else if (ekey == "perc_threshold") {
                        if ((eval.kind() != JsonValue::Kind::Uint
                             && eval.kind() != JsonValue::Kind::Int)
                            || eval.asInt() < 0
                            || eval.asUint() > PERC_CONF_LEVEL_MAX)
                            return fail("perc_threshold: expected an "
                                        "unsigned integer <= "
                                        + std::to_string(
                                                PERC_CONF_LEVEL_MAX));
                        spec.params.percThreshold =
                            static_cast<unsigned>(eval.asUint());
                    } else if (ekey == "tage_threshold") {
                        if ((eval.kind() != JsonValue::Kind::Uint
                             && eval.kind() != JsonValue::Kind::Int)
                            || eval.asInt() < 0
                            || eval.asUint() > TAGE_CONF_LEVEL_MAX)
                            return fail("tage_threshold: expected an "
                                        "unsigned integer <= "
                                        + std::to_string(
                                                TAGE_CONF_LEVEL_MAX));
                        spec.params.tageThreshold =
                            static_cast<unsigned>(eval.asUint());
                    } else {
                        return fail("estimators: unknown key '" + ekey
                                    + "'");
                    }
                }
                if (spec.estimator.empty())
                    return fail("estimators: missing 'estimator'");
                if (spec.label.empty())
                    spec.label = spec.estimator;
                // Validate the name (and any satcnt/pattern spelling)
                // up front so the runner never fatal()s on it.
                if (!makeNamedEstimator(spec.estimator, spec.params,
                                        grid.kind, emptyProfile()))
                    return fail("estimators: unknown estimator '"
                                + spec.estimator + "'");
                grid.estimators.push_back(std::move(spec));
            }
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    if (grid.estimators.empty())
        return fail("missing 'estimators'");

    const auto &all = standardWorkloads();
    for (const std::string &name : grid.workloads) {
        if (std::none_of(all.begin(), all.end(),
                         [&](const WorkloadSpec &s) {
                             return s.name == name;
                         }))
            return fail("workloads: unknown workload '" + name + "'");
    }
    if (!grid.synthetic.empty()) {
        for (const SweepEstimatorSpec &spec : grid.estimators) {
            if (spec.estimator == "static")
                return fail("synthetic workloads do not support the "
                            "'static' estimator (no program profile "
                            "exists for a generated stream)");
        }
    }
    return true;
}

JsonValue
sweepGridToJson(const SweepGrid &grid)
{
    JsonValue v = JsonValue::object();
    v["predictor"] = JsonValue(std::string(
            predictorKindName(grid.kind)));
    // Emitted only in mixed-predictor mode so single-predictor grids
    // round-trip byte-identically to the pre-plugin format.
    if (!grid.kinds.empty()) {
        JsonValue kinds = JsonValue::array();
        for (PredictorKind kind : grid.kinds)
            kinds.push(JsonValue(std::string(predictorKindName(kind))));
        v["predictors"] = kinds;
    }
    JsonValue workloads = JsonValue::array();
    for (const std::string &name : grid.workloads)
        workloads.push(JsonValue(name));
    v["workloads"] = workloads;
    v["workload_config"] = toJson(grid.workload);
    v["pipeline"] = toJson(grid.pipeline);
    JsonValue thresholds = JsonValue::array();
    for (unsigned t : grid.thresholds)
        thresholds.push(JsonValue(std::uint64_t{t}));
    v["thresholds"] = thresholds;
    v["shard_size"] = JsonValue(std::uint64_t{grid.shardSize});
    // Sampling plan and synthetic scenarios are emitted only when
    // present: old grids stay byte-stable, and — since sweepGridKey()
    // hashes this JSON — a sampled (or synthetic) grid can never
    // resume from a full-replay journal or vice versa.
    if (grid.sampling != SamplingPlan{})
        v["sampling"] = samplingPlanToJson(grid.sampling);
    if (!grid.synthetic.empty()) {
        JsonValue synthetic = JsonValue::array();
        for (const SyntheticScenario &s : grid.synthetic)
            synthetic.push(syntheticScenarioToJson(s));
        v["synthetic"] = synthetic;
    }
    JsonValue estimators = JsonValue::array();
    for (const SweepEstimatorSpec &spec : grid.estimators) {
        JsonValue e = JsonValue::object();
        e["label"] = JsonValue(spec.label);
        e["estimator"] = JsonValue(spec.estimator);
        e["jrs"] = toJson(spec.params.jrs);
        e["distance_threshold"] =
            JsonValue(std::uint64_t{spec.params.distanceThreshold});
        e["static_threshold"] = JsonValue(spec.params.staticThreshold);
        // Native-confidence knobs: emitted only when they differ from
        // the defaults, keeping pre-plugin grid echoes byte-stable.
        const SweepEstimatorParams defaults;
        if (spec.params.percThreshold != defaults.percThreshold)
            e["perc_threshold"] =
                JsonValue(std::uint64_t{spec.params.percThreshold});
        if (spec.params.tageThreshold != defaults.tageThreshold)
            e["tage_threshold"] =
                JsonValue(std::uint64_t{spec.params.tageThreshold});
        estimators.push(e);
    }
    v["estimators"] = estimators;
    return v;
}

JsonValue
sweepResultToJson(const SweepResult &result)
{
    JsonValue doc = JsonValue::object();
    doc["grid"] = sweepGridToJson(result.grid);

    JsonValue workloads = JsonValue::array();
    for (const SweepWorkloadResult &wl : result.workloads) {
        JsonValue w = JsonValue::object();
        w["workload"] = JsonValue(wl.workload);
        if (!wl.predictor.empty())
            w["predictor"] = JsonValue(wl.predictor);
        JsonValue configs = JsonValue::array();
        for (const SweepConfigResult &c : wl.configs)
            configs.push(sweepConfigResultToJson(c));
        w["configs"] = configs;
        workloads.push(w);
    }
    doc["workloads"] = workloads;

    // Paper-style aggregate per configuration: normalize each
    // workload's committed quadrants and average the fractions. In
    // mixed-predictor mode the workload list is grouped by predictor
    // (runSweepGrid emits kind-major order), and each predictor gets
    // its own aggregate block tagged with the predictor name; single
    // mode has one anonymous group, the pre-plugin format.
    JsonValue aggregate = JsonValue::array();
    std::size_t group_begin = 0;
    while (group_begin < result.workloads.size()) {
        const std::string &pred =
            result.workloads[group_begin].predictor;
        std::size_t group_end = group_begin;
        while (group_end < result.workloads.size()
               && result.workloads[group_end].predictor == pred)
            ++group_end;
        const std::size_t nconfigs =
            result.workloads[group_begin].configs.size();
        for (std::size_t c = 0; c < nconfigs; ++c) {
            std::vector<QuadrantCounts> runs;
            for (std::size_t wi = group_begin; wi < group_end; ++wi)
                runs.push_back(
                        result.workloads[wi].configs[c].committed);
            const QuadrantFractions f = aggregateQuadrants(runs);
            JsonValue a = JsonValue::object();
            a["label"] = JsonValue(
                    result.workloads[group_begin].configs[c].label);
            if (!pred.empty())
                a["predictor"] = JsonValue(pred);
            a["chc"] = JsonValue(f.chc);
            a["ihc"] = JsonValue(f.ihc);
            a["clc"] = JsonValue(f.clc);
            a["ilc"] = JsonValue(f.ilc);
            a["sens"] = JsonValue(f.sens());
            a["spec"] = JsonValue(f.spec());
            a["pvp"] = JsonValue(f.pvp());
            a["pvn"] = JsonValue(f.pvn());
            aggregate.push(a);
        }
        group_begin = group_end;
    }
    doc["aggregate"] = aggregate;
    return doc;
}

} // namespace confsim
