/**
 * @file
 * Static-threshold tuning — the paper's §5 future-work item: "an
 * algorithm to tune static confidence estimation to achieve a
 * particular goal for PVN or SPEC".
 *
 * The static estimator's single knob is its per-site accuracy
 * threshold. Because raising the threshold moves progressively more
 * accurate sites into the low-confidence class, SPEC rises
 * monotonically with the threshold while PVN falls monotonically
 * (the LC class dilutes with correct predictions). The tuner records
 * one (site-accuracy, outcome) histogram from a tuning run and then
 * answers, in closed form per candidate threshold:
 *
 *  - thresholdForSpec(t): smallest threshold whose SPEC >= t
 *    (maximising SENS subject to the coverage goal);
 *  - thresholdForPvn(t): largest threshold whose PVN >= t
 *    (maximising SPEC subject to the precision goal).
 */

#ifndef CONFSIM_HARNESS_STATIC_TUNER_HH
#define CONFSIM_HARNESS_STATIC_TUNER_HH

#include <optional>

#include "bpred/branch_predictor.hh"
#include "confidence/static_profile.hh"
#include "harness/level_sweep.hh"
#include "uarch/isa.hh"

namespace confsim
{

/**
 * Accuracy-threshold sweep for the static estimator, built from one
 * tuning run.
 */
class StaticTuner
{
  public:
    StaticTuner() : sweep(PERCENT_LEVELS) {}

    /**
     * Record one branch of the tuning run.
     * @param site_accuracy profile accuracy of the branch site [0,1].
     * @param correct whether this prediction was correct.
     */
    void
    record(double site_accuracy, bool correct)
    {
        sweep.record(levelOf(site_accuracy), correct);
    }

    /** Quadrants of the static estimator at @p threshold in [0,1]. */
    QuadrantCounts
    quadrantsAt(double threshold) const
    {
        return sweep.atThresholdGe(levelOf(threshold));
    }

    /**
     * Smallest threshold achieving SPEC >= @p target.
     * @return threshold in [0,1], or nullopt if unreachable.
     */
    std::optional<double> thresholdForSpec(double target) const;

    /**
     * Largest threshold achieving PVN >= @p target (with a nonempty
     * low-confidence class).
     * @return threshold in [0,1], or nullopt if unreachable.
     */
    std::optional<double> thresholdForPvn(double target) const;

    /** Total branches recorded. */
    std::uint64_t total() const { return sweep.total(); }

  private:
    static constexpr unsigned PERCENT_LEVELS = 100;

    static unsigned
    levelOf(double accuracy)
    {
        if (accuracy <= 0.0)
            return 0;
        if (accuracy >= 1.0)
            return PERCENT_LEVELS;
        return static_cast<unsigned>(accuracy * PERCENT_LEVELS);
    }

    LevelSweep sweep;
};

/**
 * Convenience driver: profile @p prog with a fresh predictor of
 * @p kind, then run the tuning trace (same input — the paper's
 * self-profiled setup) and return the populated tuner.
 */
StaticTuner buildStaticTuner(const Program &prog, PredictorKind kind);

} // namespace confsim

#endif // CONFSIM_HARNESS_STATIC_TUNER_HH
