/**
 * @file
 * Sampled execution of a BatchReplayer lane set: drive the lanes over
 * the systematically chosen windows of a SamplingPlan (see
 * sweep/sampling.hh) instead of the whole op stream, with functional
 * warm-up ahead of each window, and reduce the per-window quadrant
 * deltas to per-lane confidence intervals.
 *
 * The op stream is abstracted as an OpSource so the same driver runs
 * over a fully materialized DecodedTrace (recorded workloads) or over
 * bounded-size chunks generated on demand (SyntheticOpSource) — the
 * latter is what makes 10^8..10^9-branch populations tractable: ops a
 * plan skips are never even generated.
 *
 * Adaptive mode (plan.targetHalfWidth > 0) reruns the whole schedule
 * with the stride halved until every lane's defined 99% CI half-widths
 * meet the target, the stride collapses to full coverage, or maxPasses
 * is exhausted. Each pass restarts from power-on state, so the
 * reported pass is self-contained and reproducible on its own.
 */

#ifndef CONFSIM_HARNESS_SAMPLED_REPLAY_HH
#define CONFSIM_HARNESS_SAMPLED_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sweep/batch_replayer.hh"
#include "sweep/decoded_trace.hh"
#include "sweep/sampling.hh"

namespace confsim
{

/**
 * A (possibly virtual) stream of schedule ops, served as DecodedTrace
 * pieces. Op indices are global over the whole stream; cover() maps a
 * global range onto one resident trace piece at a time.
 */
class OpSource
{
  public:
    virtual ~OpSource() = default;

    /** Schedule ops in the whole stream. */
    virtual std::uint64_t totalOps() const = 0;

    /**
     * Make ops [opBegin, opEnd) (or a non-empty prefix of them)
     * resident. @p localBegin receives opBegin's index within the
     * returned trace's schedule; @p coveredEnd receives the global end
     * of the resident prefix (callers loop until the range drains).
     * @return the trace piece, or nullptr on failure.
     */
    virtual std::shared_ptr<const DecodedTrace>
    cover(std::uint64_t opBegin, std::uint64_t opEnd,
          std::uint64_t &localBegin, std::uint64_t &coveredEnd) = 0;
};

/** OpSource over one fully materialized trace (the recorded case). */
class MaterializedOpSource final : public OpSource
{
  public:
    explicit MaterializedOpSource(
            std::shared_ptr<const DecodedTrace> trace)
        : src(std::move(trace))
    {
    }

    std::uint64_t totalOps() const override
    {
        return src->schedule.size();
    }

    std::shared_ptr<const DecodedTrace>
    cover(std::uint64_t opBegin, std::uint64_t opEnd,
          std::uint64_t &localBegin, std::uint64_t &coveredEnd) override
    {
        localBegin = opBegin;
        coveredEnd = std::min<std::uint64_t>(opEnd,
                                             src->schedule.size());
        return src;
    }

  private:
    std::shared_ptr<const DecodedTrace> src;
};

/**
 * Advance @p replayer over global ops [opBegin, opEnd) of @p source,
 * rebinding across trace pieces as needed. @p warm selects functional
 * warm-up (warmOps) over detailed accumulation (runOps). Does not
 * reset lanes.
 */
bool runOpsStreamed(BatchReplayer &replayer, OpSource &source,
                    std::uint64_t opBegin, std::uint64_t opEnd,
                    bool warm, std::string *error = nullptr);

/**
 * Full-fidelity streamed replay: reset lanes, then run every op of
 * @p source in order. For a MaterializedOpSource this accumulates the
 * exact totals of BatchReplayer::run(); it is the ground-truth
 * baseline the sampled intervals are validated against.
 */
bool runFullReplayStreamed(BatchReplayer &replayer, OpSource &source,
                           std::string *error = nullptr);

/**
 * Execute @p plan over @p source: per pass, reset lanes, warm up and
 * replay each window, accumulate per-lane per-window committed
 * quadrant deltas, and finalize into one SampledLaneStats per attached
 * lane (appended to @p out in lane order). After the call the
 * replayer's own accumulators hold the final pass's pooled totals, and
 * committed(lane) equals the pooled quadrants behind out[lane].
 *
 * A degenerate plan (disabled, or windowOps >= total ops) runs exactly
 * one all-covering window: identical work and bit-identical totals to
 * runFullReplayStreamed, with every interval exact (half-width 0).
 */
bool runSampledReplay(BatchReplayer &replayer, OpSource &source,
                      const SamplingPlan &plan,
                      std::vector<SampledLaneStats> &out,
                      std::string *error = nullptr);

} // namespace confsim

#endif // CONFSIM_HARNESS_SAMPLED_REPLAY_HH
