/**
 * @file
 * Append-only checkpoint journal for resumable sweeps.
 *
 * One journal file records the completed shards of one sweep grid:
 * a fixed header binds the file to the grid (so a stale journal from
 * a different grid is discarded, not misapplied), then one framed,
 * checksummed entry per completed task. A process killed mid-sweep
 * leaves a valid prefix — load() truncates any torn trailing entry —
 * and the next run of the same grid replays journaled shards instead
 * of recomputing them, producing byte-identical final output.
 *
 * File layout:
 *   magic    "CSWJ"
 *   version  u32 LE
 *   grid key u64 LE     xxhash64 of the grid's canonical JSON
 * then per entry:
 *   magic    "CSJE"
 *   task     u64 LE     grid-determined task index (jobs-independent)
 *   len      u64 LE     payload length
 *   checksum u64 LE     xxhash64(payload)
 *   payload  bytes      shard results as JSON
 *
 * Duplicate task entries are legal (last one wins); an entry whose
 * checksum fails ends the valid prefix.
 */

#ifndef CONFSIM_HARNESS_SWEEP_JOURNAL_HH
#define CONFSIM_HARNESS_SWEEP_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace confsim
{

/**
 * One on-disk checkpoint journal. Thread-safe: append() may be called
 * from concurrent runner tasks.
 */
class SweepJournal
{
  public:
    /**
     * Open (or create) the journal at @p path for the grid identified
     * by @p gridKey. An existing journal with a different key, a bad
     * header, or a torn tail is truncated to its longest valid prefix
     * (possibly empty) before appending resumes.
     * @throws ConfsimError{Io} when the file cannot be created.
     */
    SweepJournal(std::string path, std::uint64_t gridKey);

    /** Journal file path. */
    const std::string &path() const { return filePath; }

    /** Completed task count recovered from disk at open. */
    std::size_t recovered() const { return recoveredCount; }

    /**
     * Fetch the journaled payload of @p task into @p payload.
     * @return true when the task has a valid journal entry.
     */
    bool lookup(std::uint64_t task, std::string &payload) const;

    /**
     * Append a completed-task entry and flush it to disk. A failed
     * append is non-fatal (the shard is simply recomputed next run)
     * but the entry is dropped from the in-memory view too, so
     * lookup() never claims more than the file holds.
     * @return true when the entry reached the file.
     */
    bool append(std::uint64_t task, std::string_view payload);

  private:
    void recover(std::uint64_t gridKey);

    std::string filePath;
    mutable std::mutex mtx;
    std::map<std::uint64_t, std::string> entries;
    std::ofstream out;
    std::size_t recoveredCount = 0;
};

} // namespace confsim

#endif // CONFSIM_HARNESS_SWEEP_JOURNAL_HH
