#include "harness/parallel_runner.hh"

#include <algorithm>

namespace confsim
{

const char *
taskStatusName(TaskStatus status)
{
    switch (status) {
      case TaskStatus::Ok: return "ok";
      case TaskStatus::Failed: return "failed";
      case TaskStatus::TimedOut: return "timed-out";
      case TaskStatus::Cancelled: return "cancelled";
    }
    return "unknown";
}

// ------------------------------------------------------------ CancelToken

void
CancelToken::cancel()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        flag = true;
    }
    cv.notify_all();
}

bool
CancelToken::cancelled() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return flag;
}

void
CancelToken::waitCancelled() const
{
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [this] { return flag; });
}

bool
CancelToken::waitFor(std::chrono::milliseconds d) const
{
    std::unique_lock<std::mutex> lock(mtx);
    return cv.wait_for(lock, d, [this] { return flag; });
}

// ----------------------------------------------------------- TaskWatchdog

TaskWatchdog::TaskWatchdog(std::chrono::milliseconds deadline)
    : deadline(deadline)
{
}

TaskWatchdog::~TaskWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    if (monitor.joinable())
        monitor.join();
}

void
TaskWatchdog::watch(std::size_t index, CancelToken *token)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        entries.push_back({index,
                           std::chrono::steady_clock::now() + deadline,
                           token, false});
        if (!monitor.joinable())
            monitor = std::thread([this] { monitorLoop(); });
    }
    cv.notify_all();
}

bool
TaskWatchdog::unwatch(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mtx);
    const auto it = std::find_if(
            entries.begin(), entries.end(),
            [index](const Entry &e) { return e.index == index; });
    if (it == entries.end())
        return false;
    const bool expired = it->expired;
    entries.erase(it);
    cv.notify_all();
    return expired;
}

void
TaskWatchdog::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (!stopping) {
        // Earliest pending deadline, if any entry is still healthy.
        auto next = std::chrono::steady_clock::time_point::max();
        for (const Entry &e : entries)
            if (!e.expired)
                next = std::min(next, e.deadline);

        if (next == std::chrono::steady_clock::time_point::max()) {
            cv.wait(lock);
            continue;
        }
        cv.wait_until(lock, next);

        const auto now = std::chrono::steady_clock::now();
        for (Entry &e : entries) {
            if (!e.expired && e.deadline <= now) {
                e.expired = true;
                e.token->cancel();
            }
        }
    }
}

// --------------------------------------------------- ParallelRunner bits

void
ParallelRunner::applyTaskFault(TaskContext &ctx)
{
    switch (FaultInjector::instance().onTaskAttempt()) {
      case TaskFault::None:
        return;
      case TaskFault::ThrowFatal:
        throw ConfsimError(ErrorCode::TaskFailed,
                           "injected fatal task fault")
                .addContext("task " + std::to_string(ctx.index)
                            + " attempt "
                            + std::to_string(ctx.attempt));
      case TaskFault::ThrowTransient:
        throw ConfsimError(ErrorCode::Transient,
                           "injected transient task fault")
                .addContext("task " + std::to_string(ctx.index)
                            + " attempt "
                            + std::to_string(ctx.attempt));
      case TaskFault::Stall:
        // The deterministic stand-in for a runaway workload: block
        // until the watchdog (or an external cancel) fires, then
        // surface the cancellation.
        ctx.cancel.waitCancelled();
        throw ConfsimError(ErrorCode::Cancelled,
                           "injected stall cancelled")
                .addContext("task " + std::to_string(ctx.index)
                            + " attempt "
                            + std::to_string(ctx.attempt));
    }
}

void
ParallelRunner::timeoutReport(TaskReport &report,
                              const RunnerPolicy &policy,
                              std::atomic<bool> &fatal)
{
    report.status = TaskStatus::TimedOut;
    report.errors.push_back(
            "[timeout] exceeded deadline of "
            + std::to_string(policy.deadline.count()) + " ms");
    if (policy.cancelOnFatal)
        fatal.store(true, std::memory_order_release);
}

bool
ParallelRunner::describeFailure(std::exception_ptr error,
                                std::vector<std::string> &errors)
{
    try {
        std::rethrow_exception(error);
    } catch (const ConfsimError &e) {
        errors.push_back(e.what());
        return e.code() == ErrorCode::Transient;
    } catch (const std::exception &e) {
        errors.push_back(e.what());
        return false;
    } catch (...) {
        errors.push_back("non-standard exception");
        return false;
    }
}

std::chrono::milliseconds
ParallelRunner::backoffDelay(const RunnerPolicy &policy,
                             std::size_t index, unsigned attempt)
{
    // min(cap, base << (attempt - 1)), shift clamped against overflow.
    const unsigned shift = std::min(attempt - 1, 20u);
    std::chrono::milliseconds delay(policy.backoffBase.count()
                                    << shift);
    delay = std::min(delay, policy.backoffCap);
    // Deterministic jitter in [0, delay]: a pure function of (seed,
    // task, attempt), so reruns back off identically.
    Rng rng(policy.jitterSeed
            ^ (static_cast<std::uint64_t>(index)
               * 0x9e3779b97f4a7c15ull)
            ^ attempt);
    const auto jitter = std::chrono::milliseconds(
            static_cast<std::int64_t>(rng.below(
                    static_cast<std::uint64_t>(delay.count()) + 1)));
    return delay + jitter;
}

ConfsimError
ParallelRunner::mapFailure(const std::vector<TaskReport> &reports)
{
    std::uint64_t failed = 0;
    for (const TaskReport &r : reports)
        if (!r.ok())
            ++failed;

    ConfsimError error(
            ErrorCode::TaskFailed,
            std::to_string(failed) + " of "
                + std::to_string(reports.size()) + " tasks failed");
    for (const TaskReport &r : reports) {
        if (r.ok())
            continue;
        std::string frame = "task " + std::to_string(r.index) + " ("
                            + taskStatusName(r.status) + ")";
        for (const std::string &e : r.errors)
            frame += ": " + e;
        error.addContext(std::move(frame));
    }
    return error;
}

} // namespace confsim
