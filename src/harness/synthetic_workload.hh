/**
 * @file
 * Parameterized synthetic workload generator: statistically controlled
 * branch populations, produced directly in DecodedTrace (SoA) form in
 * bounded-size chunks so 10^8..10^9-branch scenarios replay without
 * ever materializing a full trace.
 *
 * This generalizes harness/synthetic_stream.hh (kept unchanged — its
 * closed-form IID/Markov guarantees back the metrics tests) into a
 * registered workload family following the branch-predictability
 * taxonomy: per-site *entropy* (fraction of inherently random sites),
 * *bias* (direction skew of biased sites), *correlation depth*
 * (periodic global patterns), *loop/call mix* (well-behaved structural
 * branches), *phase changes* (slow accuracy drift), and *misprediction
 * bursts* (Markov-like clustering), all as JSON knobs.
 *
 * Every per-branch quantity is a pure function of (scenario, index)
 * via counter-based hashing — the generator is O(1)-seekable, which is
 * what lets the sampled sweep engine skip billions of branches between
 * detailed windows at zero generation cost. The only rolling state,
 * the global history register, is recomputed in O(historyBits) at any
 * seek point.
 *
 * Generated chunks carry the classic estimator-input channels
 * (sat-bits, pattern-conf, jrs-key), real rolling global history, and
 * an alternating fetch/finalize schedule (every branch commits; there
 * is no pipeline, so no wrong-path fetches and no overlap). Cycle and
 * distance columns are left empty — BatchReplayer never reads them.
 */

#ifndef CONFSIM_HARNESS_SYNTHETIC_WORKLOAD_HH
#define CONFSIM_HARNESS_SYNTHETIC_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/sampled_replay.hh"
#include "sweep/decoded_trace.hh"

namespace confsim
{

/** Knobs of one synthetic branch population. */
struct SyntheticScenario
{
    std::string name = "synthetic"; ///< report/artifact label
    std::uint64_t branches = 1'000'000;
    unsigned sites = 256; ///< distinct static branch addresses

    /** Steady-state P(correct) of *biased* sites. */
    double accuracy = 0.92;
    /** Fraction of sites that are inherently random (hard). */
    double entropy = 0.3;
    /** Direction skew of biased sites (P(site-preferred direction)). */
    double bias = 0.9;
    /** > 0 overlays a periodic direction pattern of this period on
     *  random sites (history-correlated behaviour). */
    unsigned correlationDepth = 0;
    /** Fraction of sites that are loop back-edges. */
    double loopFraction = 0.25;
    unsigned loopPeriod = 16; ///< loop trip count (exit every Nth)
    /** Fraction of sites that are call/always-taken branches. */
    double callMix = 0.0;
    /** Number of accuracy phases across the stream (1 = stationary). */
    unsigned phases = 1;
    /** Per-phase accuracy perturbation (+/- this, phase-hashed). */
    double phaseSwing = 0.0;
    /** Fraction of burstLength-branch regions degraded to
     *  burstAccuracy (misprediction clustering). */
    double burstFraction = 0.0;
    double burstAccuracy = 0.6;
    unsigned burstLength = 64;
    /** Global-history register width carried in BpInfo. */
    unsigned historyBits = 12;
    std::uint64_t seed = 1;

    bool operator==(const SyntheticScenario &) const = default;
};

/** Named scenario presets (iid, clustered, biased, high-entropy,
 *  loopy, phased, mixed) in registry order. */
const std::vector<SyntheticScenario> &syntheticPresets();

/** Look up a preset by name. @return false when unknown. */
bool findSyntheticPreset(const std::string &name,
                         SyntheticScenario &out);

/**
 * Parse a scenario from JSON (strict: unknown keys fail). The optional
 * "preset" key selects a preset as the base; other keys override it.
 */
bool syntheticScenarioFromJson(const JsonValue &v, SyntheticScenario &s,
                               std::string *error = nullptr);

/** The scenario back as JSON (round-trips; every knob emitted). */
JsonValue syntheticScenarioToJson(const SyntheticScenario &s);

/**
 * The generator: builds DecodedTrace chunks of any branch subrange of
 * the scenario's stream. Thread-compatible (const after construction).
 */
class SyntheticWorkloadGenerator
{
  public:
    explicit SyntheticWorkloadGenerator(const SyntheticScenario &s);

    const SyntheticScenario &scenario() const { return scn; }

    /** Branch records in the full stream. */
    std::uint64_t branches() const { return scn.branches; }

    /**
     * Generate branches [b0, b1) as a self-contained DecodedTrace:
     * records indexed locally, schedule = alternating
     * fetch(k)/finalize(k), classic input channels filled, counters
     * covering the chunk. @p b1 is clamped to branches().
     */
    std::shared_ptr<const DecodedTrace>
    chunk(std::uint64_t b0, std::uint64_t b1) const;

  private:
    enum class SiteClass : std::uint8_t
    {
        Loop,
        Call,
        Random,
        Biased,
    };

    struct Site
    {
        SiteClass cls = SiteClass::Biased;
        bool dir = false;          ///< biased sites' preferred direction
        std::uint32_t loopOffset = 0;
    };

    SyntheticScenario scn;
    std::vector<Site> sites;
};

/**
 * OpSource adapter over a generator: serves any op range from cached
 * bounded-size chunks generated on demand, so only the ops a sampling
 * plan actually touches are ever produced.
 */
class SyntheticOpSource final : public OpSource
{
  public:
    /** Largest branch count generated per chunk (caps resident
     *  memory; fits 32-bit schedule encoding with huge margin). */
    static constexpr std::uint64_t CHUNK_BRANCHES = 1ull << 22;

    explicit SyntheticOpSource(SyntheticScenario scenario)
        : gen(std::move(scenario))
    {
    }

    const SyntheticWorkloadGenerator &generator() const { return gen; }

    std::uint64_t totalOps() const override
    {
        return 2 * gen.branches();
    }

    std::shared_ptr<const DecodedTrace>
    cover(std::uint64_t opBegin, std::uint64_t opEnd,
          std::uint64_t &localBegin, std::uint64_t &coveredEnd) override;

  private:
    SyntheticWorkloadGenerator gen;
    std::shared_ptr<const DecodedTrace> cached;
    std::uint64_t cachedBegin = 0; ///< first branch of cached chunk
    std::uint64_t cachedEnd = 0;   ///< one past last branch
};

} // namespace confsim

#endif // CONFSIM_HARNESS_SYNTHETIC_WORKLOAD_HH
