#include "harness/sweep_service.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/checksum.hh"
#include "common/confsim_error.hh"
#include "common/fault_injection.hh"
#include "common/local_socket.hh"
#include "common/logging.hh"
#include "common/subprocess.hh"
#include "harness/experiment_cache.hh"

namespace confsim
{

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

namespace
{

bool
jobStateFromName(const std::string &name, JobState &state)
{
    for (JobState s : {JobState::Queued, JobState::Running,
                       JobState::Done, JobState::Failed,
                       JobState::Cancelled}) {
        if (name == jobStateName(s)) {
            state = s;
            return true;
        }
    }
    return false;
}

/** Write @p bytes to @p path via temp + rename (same directory). */
bool
writeFileReplacing(const std::string &path, const std::string &bytes)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out.good()) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

const JsonValue *
uintField(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr
        || (v->kind() != JsonValue::Kind::Uint
            && (v->kind() != JsonValue::Kind::Int || v->asInt() < 0)))
        return nullptr;
    return v;
}

JsonValue
okResponse()
{
    JsonValue v = JsonValue::object();
    v["ok"] = JsonValue(true);
    return v;
}

} // anonymous namespace

JsonValue
ServeCore::errorResponse(const std::string &code,
                         const std::string &message)
{
    JsonValue v = JsonValue::object();
    v["ok"] = JsonValue(false);
    JsonValue e = JsonValue::object();
    e["code"] = JsonValue(code);
    e["message"] = JsonValue(message);
    v["error"] = e;
    return v;
}

ServeCore::ServeCore(const ServeOptions &options) : opts(options)
{
    if (opts.artifactDir.empty())
        throw ConfsimError(ErrorCode::InvalidConfig,
                           "confsim serve needs --artifact-dir (the "
                           "shared journal/job/artifact directory)");
    jobsDir = opts.artifactDir + "/jobs";
    std::error_code ec;
    std::filesystem::create_directories(jobsDir, ec);
    if (ec)
        throw ConfsimError(ErrorCode::Io,
                           "cannot create jobs directory '" + jobsDir
                           + "': " + ec.message());
    recoverJobs();
}

std::string
ServeCore::jobFilePath(const std::string &id) const
{
    return jobsDir + "/" + id + ".json";
}

std::string
ServeCore::resultFilePath(const std::string &id) const
{
    return jobsDir + "/" + id + ".result.json";
}

std::string
ServeCore::journalPathFor(std::uint64_t gridKey) const
{
    // The same path `confsim --sweep --artifact-dir` uses, so the
    // daemon resumes CLI-started grids (and vice versa) and dedupes
    // against them shard-for-shard.
    return opts.artifactDir + "/sweep-" + hexDigest(gridKey)
           + ".journal";
}

JsonValue
ServeCore::handleRequest(const std::string &line)
{
    std::string err;
    const JsonValue req = JsonValue::parse(line, &err);
    if (!err.empty())
        return errorResponse("invalid-request", "bad JSON: " + err);
    if (!req.isObject())
        return errorResponse("invalid-request",
                             "expected a JSON object");
    const JsonValue *op = req.find("op");
    if (op == nullptr || !op->isString())
        return errorResponse("invalid-request",
                             "missing string key 'op'");
    const std::string name = op->asString();

    struct OpSpec
    {
        const char *name;
        std::vector<const char *> keys;
    };
    static const std::vector<OpSpec> ops = {
        {"ping", {"op"}},
        {"submit", {"op", "grid", "client", "priority"}},
        {"status", {"op", "job"}},
        {"result", {"op", "job"}},
        {"cancel", {"op", "job"}},
        {"shutdown", {"op"}},
    };
    const auto spec = std::find_if(ops.begin(), ops.end(),
                                   [&](const OpSpec &s) {
                                       return name == s.name;
                                   });
    if (spec == ops.end())
        return errorResponse("invalid-request",
                             "unknown op '" + name + "'");
    for (const auto &[key, value] : req.members()) {
        if (std::none_of(spec->keys.begin(), spec->keys.end(),
                         [&](const char *k) { return key == k; }))
            return errorResponse("invalid-request",
                                 "unknown key '" + key + "' for op '"
                                 + name + "'");
    }

    if (name == "ping")
        return okResponse();
    if (name == "submit")
        return handleSubmit(req);
    if (name == "status")
        return handleStatus(req);
    if (name == "result")
        return handleResult(req);
    if (name == "cancel")
        return handleCancel(req);
    // shutdown
    shutdown = true;
    return okResponse();
}

JsonValue
ServeCore::jobStatusJson(const Job &job) const
{
    JsonValue v = JsonValue::object();
    v["job"] = JsonValue(job.id);
    v["state"] = JsonValue(std::string(jobStateName(job.state)));
    v["client"] = JsonValue(job.client);
    v["priority"] = JsonValue(job.priority);
    v["tasks_total"] = JsonValue(std::uint64_t{job.plan.tasks()});
    // A recovered Done job has an empty in-memory done set; its state
    // alone proves every task completed.
    v["tasks_done"] = JsonValue(std::uint64_t{
            job.state == JobState::Done ? job.plan.tasks()
                                        : job.done.size()});
    if (!job.error.empty())
        v["error"] = JsonValue(job.error);
    return v;
}

JsonValue
ServeCore::handleSubmit(const JsonValue &req)
{
    const JsonValue *gridVal = req.find("grid");
    if (gridVal == nullptr)
        return errorResponse("invalid-request", "missing key 'grid'");
    SweepGrid grid;
    std::string err;
    if (!sweepGridFromJson(*gridVal, grid, &err))
        return errorResponse("invalid-request", "grid: " + err);

    std::string client = "default";
    if (const JsonValue *c = req.find("client")) {
        if (!c->isString() || c->asString().empty())
            return errorResponse("invalid-request",
                                 "client: expected a non-empty "
                                 "string");
        client = c->asString();
    }
    std::int64_t priority = 0;
    if (const JsonValue *p = req.find("priority")) {
        if (p->kind() != JsonValue::Kind::Int
            && p->kind() != JsonValue::Kind::Uint)
            return errorResponse("invalid-request",
                                 "priority: expected an integer");
        priority = p->asInt();
    }

    // Identical grids dedupe against queued, running, and completed
    // jobs (failed/cancelled ones don't — resubmission retries, and
    // the shared journal makes the retry resume, not recompute).
    const std::uint64_t key = sweepGridKey(grid);
    for (const auto &[id, job] : jobs) {
        if (job.gridKey == key
            && (job.state == JobState::Queued
                || job.state == JobState::Running
                || job.state == JobState::Done)) {
            JsonValue v = jobStatusJson(job);
            v["ok"] = JsonValue(true);
            v["deduped"] = JsonValue(true);
            return v;
        }
    }

    std::size_t active = 0, clientActive = 0;
    for (const auto &[id, job] : jobs) {
        if (job.terminal())
            continue;
        ++active;
        if (job.client == client)
            ++clientActive;
    }
    if (clientActive >= opts.maxClientJobs)
        return errorResponse(
                "quota-exceeded",
                "client '" + client + "' already has "
                + std::to_string(clientActive)
                + " queued/running jobs (quota "
                + std::to_string(opts.maxClientJobs) + ")");
    if (active >= opts.maxQueuedJobs)
        return errorResponse(
                "admission-rejected",
                "job queue is full (" + std::to_string(active) + "/"
                + std::to_string(opts.maxQueuedJobs)
                + " jobs queued or running); retry later");

    Job job;
    job.seq = nextSeq++;
    job.id = "j" + std::to_string(job.seq);
    job.client = client;
    job.priority = priority;
    job.grid = std::move(grid);
    job.gridKey = key;
    job.plan = sweepTaskPlan(job.grid);
    job.state = JobState::Queued;

    Job &admitted = jobs.emplace(job.id, std::move(job)).first->second;
    attachJournal(admitted);
    persist(admitted);
    if (admitted.pending.empty())
        finalize(admitted); // every shard already journaled

    JsonValue v = jobStatusJson(admitted);
    v["ok"] = JsonValue(true);
    v["deduped"] = JsonValue(false);
    return v;
}

JsonValue
ServeCore::handleStatus(const JsonValue &req)
{
    if (const JsonValue *jobKey = req.find("job")) {
        if (!jobKey->isString())
            return errorResponse("invalid-request",
                                 "job: expected a string");
        const auto it = jobs.find(jobKey->asString());
        if (it == jobs.end())
            return errorResponse("unknown-job",
                                 "no job '" + jobKey->asString()
                                 + "'");
        JsonValue v = jobStatusJson(it->second);
        v["ok"] = JsonValue(true);
        return v;
    }
    JsonValue v = okResponse();
    JsonValue list = JsonValue::array();
    std::size_t active = 0;
    // Seq order = submission order (stable across restarts).
    std::vector<const Job *> ordered;
    for (const auto &[id, job] : jobs)
        ordered.push_back(&job);
    std::sort(ordered.begin(), ordered.end(),
              [](const Job *a, const Job *b) { return a->seq < b->seq; });
    for (const Job *job : ordered) {
        list.push(jobStatusJson(*job));
        if (!job->terminal())
            ++active;
    }
    v["jobs"] = list;
    v["active"] = JsonValue(std::uint64_t{active});
    v["workers"] = JsonValue(std::uint64_t{aliveWorkers});
    v["target_workers"] = JsonValue(std::uint64_t{targetWorkers()});
    return v;
}

JsonValue
ServeCore::handleResult(const JsonValue &req)
{
    const JsonValue *jobKey = req.find("job");
    if (jobKey == nullptr || !jobKey->isString())
        return errorResponse("invalid-request",
                             "missing string key 'job'");
    const auto it = jobs.find(jobKey->asString());
    if (it == jobs.end())
        return errorResponse("unknown-job",
                             "no job '" + jobKey->asString() + "'");
    const Job &job = it->second;
    if (job.state != JobState::Done)
        return errorResponse("job-not-done",
                             "job '" + job.id + "' is "
                             + jobStateName(job.state)
                             + (job.error.empty()
                                    ? std::string()
                                    : ": " + job.error));
    std::string bytes;
    if (!readWholeFile(resultFilePath(job.id), bytes))
        return errorResponse("internal",
                             "result file for '" + job.id
                             + "' is missing");
    std::string err;
    JsonValue doc = JsonValue::parse(bytes, &err);
    if (!err.empty())
        return errorResponse("internal",
                             "result file for '" + job.id
                             + "' is corrupt: " + err);
    JsonValue v = okResponse();
    v["job"] = JsonValue(job.id);
    v["result"] = std::move(doc);
    return v;
}

JsonValue
ServeCore::handleCancel(const JsonValue &req)
{
    const JsonValue *jobKey = req.find("job");
    if (jobKey == nullptr || !jobKey->isString())
        return errorResponse("invalid-request",
                             "missing string key 'job'");
    const auto it = jobs.find(jobKey->asString());
    if (it == jobs.end())
        return errorResponse("unknown-job",
                             "no job '" + jobKey->asString() + "'");
    Job &job = it->second;
    if (job.terminal())
        return errorResponse("job-finished",
                             "job '" + job.id + "' already "
                             + jobStateName(job.state));
    job.state = JobState::Cancelled;
    job.pending.clear();
    job.journal.reset();
    persist(job);
    JsonValue v = jobStatusJson(job);
    v["ok"] = JsonValue(true);
    return v;
}

void
ServeCore::attachJournal(Job &job)
{
    job.journal = std::make_unique<SweepJournal>(
            journalPathFor(job.gridKey), job.gridKey);
    job.pending.clear();
    job.done.clear();
    for (std::uint64_t t = 0; t < job.plan.tasks(); ++t) {
        std::string payload;
        if (job.journal->lookup(t, payload)) {
            std::string err;
            const JsonValue parsed = JsonValue::parse(payload, &err);
            if (err.empty() && sweepTaskPayloadValid(parsed)) {
                job.done.insert(t);
                continue;
            }
        }
        job.pending.insert(t);
    }
}

std::optional<ServeCore::TaskRef>
ServeCore::nextReadyTask()
{
    Job *best = nullptr;
    for (auto &[id, job] : jobs) {
        if (job.terminal() || job.pending.empty())
            continue;
        if (best == nullptr || job.priority > best->priority
            || (job.priority == best->priority && job.seq < best->seq))
            best = &job;
    }
    if (best == nullptr)
        return std::nullopt;
    const std::uint64_t task = *best->pending.begin();
    best->pending.erase(best->pending.begin());
    ++best->inFlight;
    if (best->state == JobState::Queued) {
        best->state = JobState::Running;
        persist(*best);
    }
    return TaskRef{best->id, task};
}

bool
ServeCore::hasPendingWork() const
{
    return std::any_of(jobs.begin(), jobs.end(), [](const auto &kv) {
        return !kv.second.terminal() && !kv.second.pending.empty();
    });
}

const SweepGrid *
ServeCore::jobGrid(const std::string &job) const
{
    const auto it = jobs.find(job);
    return it == jobs.end() ? nullptr : &it->second.grid;
}

bool
ServeCore::jobActive(const std::string &job) const
{
    const auto it = jobs.find(job);
    return it != jobs.end() && !it->second.terminal();
}

void
ServeCore::taskCompleted(const TaskRef &ref, const JsonValue &payload)
{
    const auto it = jobs.find(ref.job);
    if (it == jobs.end())
        return;
    Job &job = it->second;
    if (job.inFlight > 0)
        --job.inFlight;
    if (job.terminal())
        return; // cancelled/failed while the shard was in flight
    std::string err;
    if (!sweepTaskPayloadValid(payload, &err)) {
        failJob(job, "worker returned an invalid payload for task "
                     + std::to_string(ref.task) + ": " + err);
        return;
    }
    // dump() (indent 2) matches what runSweepGrid journals for this
    // task, so daemon and CLI journals stay byte-interchangeable.
    if (job.journal
        && !job.journal->append(ref.task, payload.dump()))
        warn("serve: journal append failed for " + ref.job + " task "
             + std::to_string(ref.task)
             + " (shard will be recomputed at finalize)");
    job.done.insert(ref.task);
    if (job.done.size() == job.plan.tasks() && job.inFlight == 0
        && job.pending.empty())
        finalize(job);
}

std::optional<std::chrono::milliseconds>
ServeCore::taskFailed(const TaskRef &ref, const std::string &error,
                      bool transient)
{
    const auto it = jobs.find(ref.job);
    if (it == jobs.end())
        return std::nullopt;
    Job &job = it->second;
    if (job.inFlight > 0)
        --job.inFlight;
    if (job.terminal())
        return std::nullopt;
    const unsigned attempt = ++job.attempts[ref.task];
    if (transient && attempt < opts.policy.maxAttempts)
        return ParallelRunner::backoffDelay(
                opts.policy, static_cast<std::size_t>(ref.task),
                attempt);
    failJob(job, "task " + std::to_string(ref.task) + ": " + error
                 + (transient
                        ? " (after " + std::to_string(attempt)
                              + " attempts)"
                        : ""));
    return std::nullopt;
}

void
ServeCore::requeueTask(const TaskRef &ref)
{
    const auto it = jobs.find(ref.job);
    if (it == jobs.end() || it->second.terminal())
        return;
    it->second.pending.insert(ref.task);
}

void
ServeCore::failJob(Job &job, const std::string &error)
{
    job.state = JobState::Failed;
    job.error = error;
    job.pending.clear();
    job.journal.reset();
    persist(job);
}

void
ServeCore::finalize(Job &job)
{
    // Close our append handle first; the assembly below re-opens the
    // journal read-only-in-effect (nothing is pending, so it only
    // loads entries — and recomputes inline as a correctness fallback
    // if any entry was lost).
    job.journal.reset();
    SweepExecOptions exec;
    exec.jobs = 0;
    exec.journalPath = journalPathFor(job.gridKey);
    try {
        const SweepResult result = runSweepGrid(job.grid, exec);
        const std::string doc = sweepResultToJson(result).dump(2);
        if (!writeFileReplacing(resultFilePath(job.id), doc)) {
            failJob(job, "cannot write result file");
        } else {
            job.state = JobState::Done;
            job.error.clear();
            persist(job);
        }
    } catch (const ConfsimError &e) {
        failJob(job, std::string("finalize: ") + e.what());
    }
    // The daemon is long-running: drop decoded traces/profiles after
    // each finished grid so memory stays bounded by the active job,
    // not the daemon's history. Warm re-reads come from the mmap
    // artifact store the workers populated.
    clearExperimentCaches();
}

void
ServeCore::workerCrashed()
{
    ++crashStreak;
}

void
ServeCore::workerSucceeded()
{
    crashStreak = 0;
}

unsigned
ServeCore::targetWorkers() const
{
    const unsigned base = std::max(1u, opts.workers);
    return base - std::min(crashStreak, base - 1);
}

void
ServeCore::persist(const Job &job) const
{
    JsonValue v = JsonValue::object();
    v["id"] = JsonValue(job.id);
    v["client"] = JsonValue(job.client);
    v["priority"] = JsonValue(job.priority);
    v["seq"] = JsonValue(std::uint64_t{job.seq});
    v["state"] = JsonValue(std::string(jobStateName(job.state)));
    v["error"] = JsonValue(job.error);
    v["grid"] = sweepGridToJson(job.grid);
    if (!writeFileReplacing(jobFilePath(job.id), v.dump(2)))
        warn("serve: cannot persist job record for " + job.id);
}

void
ServeCore::recoverJobs()
{
    std::error_code ec;
    std::filesystem::directory_iterator dir(jobsDir, ec);
    if (ec)
        return;
    std::vector<std::string> files;
    for (const auto &entry : dir) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 5
            && name.compare(name.size() - 5, 5, ".json") == 0
            && (name.size() < 12
                || name.compare(name.size() - 12, 12, ".result.json")
                       != 0))
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());

    for (const std::string &path : files) {
        std::string bytes;
        if (!readWholeFile(path, bytes))
            continue;
        std::string err;
        const JsonValue v = JsonValue::parse(bytes, &err);
        if (!err.empty() || !v.isObject()) {
            warn("serve: skipping unreadable job record " + path);
            continue;
        }
        const JsonValue *id = v.find("id");
        const JsonValue *client = v.find("client");
        const JsonValue *priority = v.find("priority");
        const JsonValue *seq = uintField(v, "seq");
        const JsonValue *state = v.find("state");
        const JsonValue *error = v.find("error");
        const JsonValue *gridVal = v.find("grid");
        Job job;
        if (id == nullptr || !id->isString() || client == nullptr
            || !client->isString() || priority == nullptr
            || (priority->kind() != JsonValue::Kind::Int
                && priority->kind() != JsonValue::Kind::Uint)
            || seq == nullptr || state == nullptr
            || !state->isString() || error == nullptr
            || !error->isString() || gridVal == nullptr
            || !jobStateFromName(state->asString(), job.state)
            || !sweepGridFromJson(*gridVal, job.grid, &err)) {
            warn("serve: skipping malformed job record " + path);
            continue;
        }
        job.id = id->asString();
        job.client = client->asString();
        job.priority = priority->asInt();
        job.seq = seq->asUint();
        job.error = error->asString();
        job.gridKey = sweepGridKey(job.grid);
        job.plan = sweepTaskPlan(job.grid);
        nextSeq = std::max(nextSeq, job.seq + 1);

        Job &restored =
            jobs.emplace(job.id, std::move(job)).first->second;
        if (restored.terminal())
            continue; // kept for status/result/dedupe only
        // Re-admit an interrupted job: the journal says which shards
        // survived; everything else is pending again. Running becomes
        // Queued until a worker picks a shard up.
        restored.state = JobState::Queued;
        restored.error.clear();
        attachJournal(restored);
        persist(restored);
        if (restored.pending.empty())
            finalize(restored);
    }
}

// ---------------------------------------------------------------------
// The daemon loop.
// ---------------------------------------------------------------------

namespace
{

volatile std::sig_atomic_t g_stopSignal = 0;

void
onStopSignal(int)
{
    g_stopSignal = 1;
}

void
setNonBlockingFd(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** write(2) the whole buffer to a pipe fd; false if the reader died. */
bool
writeAllPipe(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + sent, data.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

using Clock = std::chrono::steady_clock;

/** The poll-loop daemon around one ServeCore. */
class ServiceLoop
{
  public:
    explicit ServiceLoop(const ServeOptions &options) : core(options)
    {}

    int
    run()
    {
        const ServeOptions &o = core.options();
        OwnedFd listenFd = listenUnixSocket(o.socketPath);
        setNonBlockingFd(listenFd.get());

        std::signal(SIGPIPE, SIG_IGN);
        g_stopSignal = 0;
        std::signal(SIGTERM, onStopSignal);
        std::signal(SIGINT, onStopSignal);

        std::fprintf(stderr, "confsim serve: listening on %s\n",
                     o.socketPath.c_str());

        while (!stopping && g_stopSignal == 0) {
            reapWorkers();
            promoteRetries();
            checkDeadlines();
            dispatch();
            pollOnce(listenFd.get());
        }

        for (Worker &w : workers) {
            if (w.proc.running()) {
                killChild(w.proc.pid);
                waitChild(w.proc.pid, true);
            }
        }
        workers.clear();
        clients.clear();
        ::unlink(o.socketPath.c_str());
        return 0;
    }

  private:
    struct Client
    {
        OwnedFd fd;
        LineSplitter lines;

        Client(OwnedFd f, std::size_t maxLine)
            : fd(std::move(f)), lines(maxLine)
        {}
    };

    struct Worker
    {
        ChildProcess proc;
        // Reply lines carry whole shard payloads; allow well beyond
        // the client-request bound.
        LineSplitter lines{std::size_t{1} << 26};
        std::optional<ServeCore::TaskRef> task;
        Clock::time_point deadline{};
        bool doomed = false;   ///< kill-worker fault: dies mid-shard
        bool timedOut = false; ///< we SIGKILLed it (watchdog)
    };

    struct Retry
    {
        ServeCore::TaskRef ref;
        Clock::time_point readyAt;
    };

    void
    reapWorkers()
    {
        for (std::size_t i = 0; i < workers.size();) {
            Worker &w = workers[i];
            const auto status = waitChild(w.proc.pid, false);
            if (!status) {
                ++i;
                continue;
            }
            // Drain any reply that beat the exit through the pipe
            // before classifying this as a lost shard.
            drainWorker(w);
            if (w.task) {
                const ServeCore::TaskRef ref = *w.task;
                if (w.timedOut) {
                    warn("serve: worker pid "
                         + std::to_string(w.proc.pid)
                         + " exceeded the shard deadline; task "
                         + std::to_string(ref.task) + " of " + ref.job
                         + " failed");
                    core.taskFailed(
                            ref,
                            "[timeout] worker exceeded the shard "
                            "deadline and was killed",
                            false);
                } else {
                    warn("serve: worker pid "
                         + std::to_string(w.proc.pid) + " ("
                         + status->describe() + ") died mid-shard; "
                         "retrying task " + std::to_string(ref.task)
                         + " of " + ref.job);
                    core.workerCrashed();
                    scheduleRetryOrFail(
                            ref,
                            "worker (pid "
                            + std::to_string(w.proc.pid) + ", "
                            + status->describe()
                            + ") died mid-shard");
                }
            } else if (!status->ok()) {
                core.workerCrashed();
            }
            workers.erase(workers.begin() + i);
        }
    }

    void
    scheduleRetryOrFail(const ServeCore::TaskRef &ref,
                        const std::string &error)
    {
        const auto delay = core.taskFailed(ref, error, true);
        if (delay)
            retries.push_back({ref, Clock::now() + *delay});
    }

    void
    promoteRetries()
    {
        const auto now = Clock::now();
        for (std::size_t i = 0; i < retries.size();) {
            if (retries[i].readyAt <= now) {
                core.requeueTask(retries[i].ref);
                retries.erase(retries.begin() + i);
            } else {
                ++i;
            }
        }
    }

    void
    checkDeadlines()
    {
        if (core.options().taskDeadline.count() == 0)
            return;
        const auto now = Clock::now();
        for (Worker &w : workers) {
            if (w.task && !w.timedOut && now >= w.deadline) {
                w.timedOut = true;
                killChild(w.proc.pid);
            }
        }
    }

    void
    dispatch()
    {
        core.noteAliveWorkers(static_cast<unsigned>(workers.size()));
        while (workers.size() < core.targetWorkers()
               && core.hasPendingWork())
            spawnWorker();
        for (Worker &w : workers) {
            if (w.task)
                continue;
            const auto ref = core.nextReadyTask();
            if (!ref)
                break;
            sendTask(w, *ref);
        }
    }

    void
    spawnWorker()
    {
        const ServeOptions &o = core.options();
        std::vector<std::string> argv = o.workerArgv;
        if (argv.empty())
            argv = {selfExecutablePath(), "worker", "--artifact-dir",
                    o.artifactDir};
        Worker w;
        try {
            w.proc = spawnChild(argv);
        } catch (const ConfsimError &e) {
            warn(std::string("serve: cannot spawn worker: ")
                 + e.what());
            core.workerCrashed(); // degrade instead of spinning
            return;
        }
        w.doomed = FaultInjector::instance().onWorkerSpawn();
        workers.push_back(std::move(w));
    }

    void
    sendTask(Worker &w, const ServeCore::TaskRef &ref)
    {
        const SweepGrid *grid = core.jobGrid(ref.job);
        if (grid == nullptr) {
            core.taskFailed(ref, "job vanished", false);
            return;
        }
        JsonValue msg = JsonValue::object();
        msg["task"] = JsonValue(std::uint64_t{ref.task});
        msg["grid"] = sweepGridToJson(*grid);
        if (w.doomed)
            msg["die"] = JsonValue(true);
        w.task = ref;
        w.timedOut = false;
        if (core.options().taskDeadline.count() > 0)
            w.deadline = Clock::now() + core.options().taskDeadline;
        if (!writeAllPipe(w.proc.toChild.get(), msg.dump(0) + "\n")) {
            // Worker already dead; reapWorkers() will classify it and
            // retry the shard.
            killChild(w.proc.pid);
        }
    }

    /** Read everything available from a worker pipe and handle any
     *  complete reply lines. */
    void
    drainWorker(Worker &w)
    {
        if (!w.proc.fromChild.valid())
            return;
        for (;;) {
            std::string chunk;
            const auto n = readChunk(w.proc.fromChild.get(), chunk);
            if (!n)
                break; // would block
            if (*n == 0)
                break; // EOF: exit handled by reapWorkers
            w.lines.feed(chunk);
        }
        while (auto line = w.lines.nextLine())
            handleWorkerReply(w, *line);
    }

    void
    handleWorkerReply(Worker &w, const std::string &line)
    {
        if (!w.task) {
            warn("serve: unexpected worker output: " + line);
            return;
        }
        std::string err;
        const JsonValue v = JsonValue::parse(line, &err);
        const JsonValue *task =
            err.empty() && v.isObject() ? v.find("task") : nullptr;
        const JsonValue *ok =
            err.empty() && v.isObject() ? v.find("ok") : nullptr;
        if (task == nullptr
            || task->kind() != JsonValue::Kind::Uint
            || ok == nullptr || !ok->isBool()
            || task->asUint() != w.task->task) {
            // Not a (matching) protocol line — stray output. Ignore;
            // the real reply or the worker's death follows.
            warn("serve: ignoring malformed worker line");
            return;
        }
        const ServeCore::TaskRef ref = *w.task;
        w.task.reset();
        if (ok->asBool()) {
            const JsonValue *payload = v.find("payload");
            if (payload == nullptr) {
                scheduleRetryOrFail(ref, "worker reply missing "
                                         "payload");
                return;
            }
            core.workerSucceeded();
            core.taskCompleted(ref, *payload);
            return;
        }
        std::string code = "internal", message = "worker error";
        if (const JsonValue *e = v.find("error");
            e != nullptr && e->isObject()) {
            if (const JsonValue *c = e->find("code");
                c != nullptr && c->isString())
                code = c->asString();
            if (const JsonValue *m = e->find("message");
                m != nullptr && m->isString())
                message = m->asString();
        }
        const bool transient =
            code == errorCodeName(ErrorCode::Transient);
        const auto delay = core.taskFailed(
                ref, "[" + code + "] " + message, transient);
        if (delay)
            retries.push_back({ref, Clock::now() + *delay});
    }

    void
    pollOnce(int listenFd)
    {
        std::vector<pollfd> fds;
        fds.push_back({listenFd, POLLIN, 0});
        const std::size_t clientBase = fds.size();
        for (const Client &c : clients)
            fds.push_back({c.fd.get(), POLLIN, 0});
        const std::size_t workerBase = fds.size();
        for (const Worker &w : workers)
            fds.push_back({w.proc.fromChild.get(), POLLIN, 0});

        const int timeout = pollTimeoutMs();
        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), timeout);
        if (n < 0) {
            if (errno != EINTR)
                warn(std::string("serve: poll: ")
                     + std::strerror(errno));
            return;
        }

        // Workers first: journaling a finished shard must win any
        // race against a client polling the job's status. (Nothing
        // below mutates the workers vector.)
        const std::size_t nWorkers = workers.size();
        for (std::size_t i = 0; i < nWorkers; ++i) {
            if (fds[workerBase + i].revents & (POLLIN | POLLHUP))
                drainWorker(workers[i]);
        }

        // Snapshot client readiness before accepting (which appends)
        // or erasing (which shifts) — the pollfd mapping is only
        // valid for the clients that existed when fds was built.
        const std::size_t nClients = workerBase - clientBase;
        std::vector<bool> ready(nClients);
        for (std::size_t i = 0; i < nClients; ++i)
            ready[i] = (fds[clientBase + i].revents
                        & (POLLIN | POLLHUP)) != 0;

        if (fds[0].revents & POLLIN)
            acceptClients(listenFd);

        std::size_t idx = 0;
        for (std::size_t i = 0; i < nClients && !stopping; ++i) {
            if (!ready[i]) {
                ++idx;
                continue;
            }
            if (serviceClient(clients[idx]))
                ++idx;
            else
                clients.erase(clients.begin()
                              + static_cast<std::ptrdiff_t>(idx));
        }
    }

    int
    pollTimeoutMs()
    {
        // Wake for the nearest timer (retry backoff, shard deadline)
        // but at least every 50 ms for waitpid-based crash detection.
        Clock::duration next = std::chrono::milliseconds(50);
        const auto now = Clock::now();
        for (const Retry &r : retries)
            next = std::min(next, r.readyAt - now);
        if (core.options().taskDeadline.count() > 0) {
            for (const Worker &w : workers) {
                if (w.task && !w.timedOut)
                    next = std::min(next, w.deadline - now);
            }
        }
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(next)
                .count();
        return static_cast<int>(std::clamp<long long>(ms, 0, 50));
    }

    void
    acceptClients(int listenFd)
    {
        for (;;) {
            OwnedFd fd = acceptConnection(listenFd);
            if (!fd.valid())
                break;
            // Bound response writes: a client that stops reading is
            // dropped by sendAll (SO_SNDTIMEO -> EAGAIN -> false),
            // never blocking the daemon.
            timeval tv{};
            tv.tv_sec = 10;
            ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv,
                         sizeof(tv));
            clients.emplace_back(std::move(fd),
                                 core.options().maxRequestBytes);
        }
    }

    /** Handle readable data on a client. @return false to close. */
    bool
    serviceClient(Client &c)
    {
        std::string chunk;
        const auto n = readChunk(c.fd.get(), chunk);
        if (n && *n == 0)
            return false; // EOF
        if (n)
            c.lines.feed(chunk);
        while (auto line = c.lines.nextLine()) {
            const JsonValue resp = core.handleRequest(*line);
            const bool sent = respond(c, resp);
            if (core.shutdownRequested())
                stopping = true;
            if (!sent || stopping)
                return false;
        }
        if (c.lines.overflowed()) {
            respond(c, ServeCore::errorResponse(
                               "invalid-request",
                               "request line exceeds "
                               + std::to_string(
                                         core.options()
                                             .maxRequestBytes)
                               + " bytes"));
            return false;
        }
        return true;
    }

    /** Write one response line. @return false if the client is gone
     *  (or the drop-connection fault fired). */
    bool
    respond(Client &c, const JsonValue &resp)
    {
        const std::string line = resp.dump(0) + "\n";
        if (FaultInjector::instance().onClientResponse()) {
            // Deterministic mid-response disconnect: deliver half the
            // line, then drop the socket.
            sendAll(c.fd.get(), line.substr(0, line.size() / 2));
            return false;
        }
        return sendAll(c.fd.get(), line);
    }

    ServeCore core;
    std::vector<Client> clients;
    std::vector<Worker> workers;
    std::vector<Retry> retries;
    bool stopping = false;
};

} // anonymous namespace

int
runSweepService(const ServeOptions &options)
{
    ServiceLoop loop(options);
    return loop.run();
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

namespace
{

JsonValue
workerError(std::uint64_t task, const std::string &code,
            const std::string &message)
{
    JsonValue v = JsonValue::object();
    v["task"] = JsonValue(task);
    v["ok"] = JsonValue(false);
    JsonValue e = JsonValue::object();
    e["code"] = JsonValue(code);
    e["message"] = JsonValue(message);
    v["error"] = e;
    return v;
}

JsonValue
workerHandleLine(const std::string &line)
{
    std::string err;
    const JsonValue v = JsonValue::parse(line, &err);
    if (!err.empty() || !v.isObject())
        return workerError(0, "invalid-request",
                           "bad task line: " + err);
    const JsonValue *task = v.find("task");
    if (task == nullptr || task->kind() != JsonValue::Kind::Uint)
        return workerError(0, "invalid-request",
                           "missing uint key 'task'");
    const std::uint64_t t = task->asUint();
    const JsonValue *gridVal = v.find("grid");
    if (gridVal == nullptr)
        return workerError(t, "invalid-request",
                           "missing key 'grid'");
    bool die = false;
    if (const JsonValue *d = v.find("die")) {
        if (!d->isBool())
            return workerError(t, "invalid-request",
                               "die: expected a bool");
        die = d->asBool();
    }
    SweepGrid grid;
    if (!sweepGridFromJson(*gridVal, grid, &err))
        return workerError(t, "invalid-request", "grid: " + err);
    const SweepTaskPlan plan = sweepTaskPlan(grid);
    if (t >= plan.tasks())
        return workerError(t, "invalid-request",
                           "task " + std::to_string(t)
                           + " out of range (grid has "
                           + std::to_string(plan.tasks())
                           + " tasks)");
    try {
        JsonValue payload = sweepTaskPayloadJson(grid, t);
        // kill-worker fault: die after the work, before the reply —
        // the shard is complete in this address space but never
        // journaled, exactly what an OOM kill mid-shard loses.
        if (die)
            ::raise(SIGKILL);
        JsonValue reply = JsonValue::object();
        reply["task"] = JsonValue(t);
        reply["ok"] = JsonValue(true);
        reply["payload"] = std::move(payload);
        return reply;
    } catch (const ConfsimError &e) {
        return workerError(t, errorCodeName(e.code()), e.what());
    } catch (const std::exception &e) {
        return workerError(t, "internal", e.what());
    }
}

} // anonymous namespace

int
runServeWorker()
{
    std::string line;
    while (std::getline(std::cin, line)) {
        const JsonValue reply = workerHandleLine(line);
        const std::string out = reply.dump(0) + "\n";
        if (std::fwrite(out.data(), 1, out.size(), stdout)
                != out.size()
            || std::fflush(stdout) != 0)
            return 1; // daemon went away
    }
    return 0;
}

// ---------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------

JsonValue
serveRequest(const std::string &socketPath, const JsonValue &request)
{
    OwnedFd fd = connectUnixSocket(socketPath);
    if (!sendAll(fd.get(), request.dump(0) + "\n"))
        throw ConfsimError(ErrorCode::Io,
                           "daemon closed the connection while "
                           "receiving the request");
    std::string buf;
    for (;;) {
        const auto n = readChunk(fd.get(), buf);
        if (!n)
            continue; // blocking socket: not reachable in practice
        if (*n == 0)
            throw ConfsimError(ErrorCode::Io,
                               "daemon closed the connection before "
                               "a full response (got "
                               + std::to_string(buf.size())
                               + " bytes)");
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            buf.resize(nl);
            break;
        }
        if (buf.size() > (std::size_t{1} << 30))
            throw ConfsimError(ErrorCode::Io,
                               "response exceeds 1 GiB without a "
                               "newline");
    }
    std::string err;
    JsonValue resp = JsonValue::parse(buf, &err);
    if (!err.empty() || !resp.isObject())
        throw ConfsimError(ErrorCode::Io,
                           "malformed response from daemon: " + err);
    return resp;
}

} // namespace confsim
