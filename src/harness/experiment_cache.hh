/**
 * @file
 * Process-wide build caches for the expensive, *pure* stages of an
 * experiment: synthetic Program construction and the static
 * estimator's profiling pass. Both are deterministic functions of
 * their inputs, so the cached objects are shared immutably across
 * experiments (and across the parallel runner's worker threads)
 * without changing any result bit.
 *
 * Keys are the content of the inputs — workload factory + name +
 * WorkloadConfig for programs, plus the predictor kind for profiles —
 * hashed for the index and compared in full on lookup. Lookups are
 * thread-safe; concurrent misses on the same key build the value
 * exactly once (later arrivals block until it is ready), while misses
 * on distinct keys build concurrently.
 */

#ifndef CONFSIM_HARNESS_EXPERIMENT_CACHE_HH
#define CONFSIM_HARNESS_EXPERIMENT_CACHE_HH

#include <cstdint>
#include <memory>

#include "bpred/branch_predictor.hh"
#include "confidence/static_profile.hh"
#include "workloads/workload.hh"

namespace confsim
{

/** Hit/miss counters of the process-wide experiment caches. */
struct ExperimentCacheStats
{
    std::uint64_t programHits = 0;
    std::uint64_t programMisses = 0;
    std::uint64_t profileHits = 0;
    std::uint64_t profileMisses = 0;
};

/**
 * The workload's Program, built at most once per process for a given
 * (spec, config) and shared immutably afterwards.
 */
std::shared_ptr<const Program>
cachedProgram(const WorkloadSpec &spec, const WorkloadConfig &cfg);

/**
 * The static-estimator ProfileTable for (kind, spec, config): the
 * buildProfile() trace pass with a fresh predictor of @p kind over the
 * cached Program, run at most once per process and shared afterwards.
 */
std::shared_ptr<const ProfileTable>
cachedProfile(PredictorKind kind, const WorkloadSpec &spec,
              const WorkloadConfig &cfg);

/** Snapshot of the cache hit/miss counters. */
ExperimentCacheStats experimentCacheStats();

/** Drop all cached programs and profiles (outstanding shared_ptrs
 *  stay valid) and zero the counters. Mainly for tests/benchmarks. */
void clearExperimentCaches();

} // namespace confsim

#endif // CONFSIM_HARNESS_EXPERIMENT_CACHE_HH
