/**
 * @file
 * Process-wide build caches for the expensive, *pure* stages of an
 * experiment: synthetic Program construction and the static
 * estimator's profiling pass. Both are deterministic functions of
 * their inputs, so the cached objects are shared immutably across
 * experiments (and across the parallel runner's worker threads)
 * without changing any result bit.
 *
 * Keys are the content of the inputs — workload factory + name +
 * WorkloadConfig for programs, plus the predictor kind for profiles —
 * hashed for the index and compared in full on lookup. Lookups are
 * thread-safe; concurrent misses on the same key build the value
 * exactly once (later arrivals block until it is ready), while misses
 * on distinct keys build concurrently.
 */

#ifndef CONFSIM_HARNESS_EXPERIMENT_CACHE_HH
#define CONFSIM_HARNESS_EXPERIMENT_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "bpred/branch_predictor.hh"
#include "common/json.hh"
#include "confidence/static_profile.hh"
#include "pipeline/pipeline.hh"
#include "sweep/decoded_trace.hh"
#include "workloads/workload.hh"

namespace confsim
{

/** Hit/miss counters of the process-wide experiment caches. */
struct ExperimentCacheStats
{
    std::uint64_t programHits = 0;
    std::uint64_t programMisses = 0;
    std::uint64_t profileHits = 0;
    std::uint64_t profileMisses = 0;
    std::uint64_t recordedHits = 0;
    std::uint64_t recordedMisses = 0;
    std::uint64_t decodedHits = 0;
    std::uint64_t decodedMisses = 0;
};

/**
 * The workload's Program, built at most once per process for a given
 * (spec, config) and shared immutably afterwards.
 */
std::shared_ptr<const Program>
cachedProgram(const WorkloadSpec &spec, const WorkloadConfig &cfg);

/**
 * The static-estimator ProfileTable for (kind, spec, config): the
 * buildProfile() trace pass with a fresh predictor of @p kind over the
 * cached Program, run at most once per process and shared afterwards.
 */
std::shared_ptr<const ProfileTable>
cachedProfile(PredictorKind kind, const WorkloadSpec &spec,
              const WorkloadConfig &cfg);

/**
 * One recorded pipeline run: everything an estimator-only experiment
 * needs to skip the pipeline simulation entirely. The branch stream is
 * replayed through a TraceReplayer; the pipeline's statistics and
 * configuration (fixed for a given trace) are carried verbatim.
 */
struct RecordedRun
{
    std::string trace;       ///< encoded branch trace (trace/ format)
    PipelineStats pipe;      ///< stats of the recording run
    JsonValue statsSubtree;  ///< registry statsJson() "pipeline" subtree
    JsonValue configSubtree; ///< registry configJson() "pipeline" subtree
};

/**
 * The recorded pipeline run for (kind, spec, config, pipeline config):
 * a live run of a fresh @p kind predictor over the cached Program with
 * a trace writer attached, run at most once per process and shared
 * afterwards. Estimator sweeps (and the parallel runner's workers)
 * replay this one trace instead of re-simulating the pipeline.
 *
 * The recording run attaches no estimators — estimators are passive
 * observers in a non-gating, non-eager pipeline, so the branch stream
 * and pipeline statistics are identical to a live estimator run's.
 */
std::shared_ptr<const RecordedRun>
cachedRecordedRun(PredictorKind kind, const WorkloadSpec &spec,
                  const WorkloadConfig &cfg,
                  const PipelineConfig &pipeCfg);

/**
 * A recorded run decoded into the sweep engine's structure-of-arrays
 * form: the pipeline-side payload of RecordedRun plus the DecodedTrace
 * (flat outcome arrays, precomputed fetch/finalize schedule and
 * misprediction-distance streams). Decoding and schedule
 * reconstruction are config-independent, so this too is built once per
 * (kind, spec, config, pipeline config) and shared immutably — every
 * BatchReplayer shard reads the same arrays zero-copy.
 */
struct DecodedRun
{
    DecodedTrace trace;      ///< shared structure-of-arrays trace
    PipelineStats pipe;      ///< stats of the recording run
    JsonValue statsSubtree;  ///< registry statsJson() "pipeline" subtree
    JsonValue configSubtree; ///< registry configJson() "pipeline" subtree
};

/**
 * The decoded form of cachedRecordedRun() for the same key, built at
 * most once per process and shared afterwards.
 */
std::shared_ptr<const DecodedRun>
cachedDecodedRun(PredictorKind kind, const WorkloadSpec &spec,
                 const WorkloadConfig &cfg,
                 const PipelineConfig &pipeCfg);

/** Snapshot of the cache hit/miss counters. */
ExperimentCacheStats experimentCacheStats();

/** Drop all cached programs and profiles (outstanding shared_ptrs
 *  stay valid) and zero the counters. Mainly for tests/benchmarks. */
void clearExperimentCaches();

} // namespace confsim

#endif // CONFSIM_HARNESS_EXPERIMENT_CACHE_HH
