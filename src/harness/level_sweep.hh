/**
 * @file
 * Single-pass threshold sweeps. Table-based estimators like JRS keep
 * state that is independent of their confidence threshold, so one
 * simulation can evaluate *every* threshold: record the raw counter
 * level and the prediction outcome per branch, then derive quadrant
 * counts for each candidate threshold afterwards. The same trick works
 * for the misprediction-distance estimator.
 */

#ifndef CONFSIM_HARNESS_LEVEL_SWEEP_HH
#define CONFSIM_HARNESS_LEVEL_SWEEP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "metrics/quadrant.hh"

namespace confsim
{

/**
 * Histogram of (confidence level, prediction outcome) pairs with
 * quadrant extraction for any threshold.
 */
class LevelSweep
{
  public:
    /** @param max_level levels are clamped to [0, max_level]. */
    explicit LevelSweep(unsigned max_level = 64)
        : counts(static_cast<std::size_t>(max_level) + 1)
    {
    }

    /** Record one branch with raw level @p level. */
    void
    record(unsigned level, bool correct)
    {
        if (level >= counts.size())
            level = static_cast<unsigned>(counts.size() - 1);
        ++counts[level][correct ? 1 : 0];
    }

    /** Record @p weight branches at once (bulk histogram building). */
    void
    add(unsigned level, bool correct, std::uint64_t weight)
    {
        if (level >= counts.size())
            level = static_cast<unsigned>(counts.size() - 1);
        counts[level][correct ? 1 : 0] += weight;
    }

    /**
     * Quadrants for the rule "high confidence iff level >= threshold".
     */
    QuadrantCounts
    atThresholdGe(unsigned threshold) const
    {
        QuadrantCounts q;
        for (std::size_t l = 0; l < counts.size(); ++l) {
            const bool high = l >= threshold;
            if (high) {
                q.chc += counts[l][1];
                q.ihc += counts[l][0];
            } else {
                q.clc += counts[l][1];
                q.ilc += counts[l][0];
            }
        }
        return q;
    }

    /**
     * Quadrants for the rule "high confidence iff level > threshold"
     * (the paper's distance-estimator convention).
     */
    QuadrantCounts
    atThresholdGt(unsigned threshold) const
    {
        return atThresholdGe(threshold + 1);
    }

    /** Highest representable level. */
    unsigned maxLevel() const
    {
        return static_cast<unsigned>(counts.size() - 1);
    }

    /** Total branches recorded. */
    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (const auto &c : counts)
            t += c[0] + c[1];
        return t;
    }

    /** Merge another sweep; grows to the larger max level, so no
     *  high-level counts are dropped when the sizes differ. */
    LevelSweep &
    operator+=(const LevelSweep &other)
    {
        if (other.counts.size() > counts.size())
            counts.resize(other.counts.size());
        for (std::size_t l = 0; l < other.counts.size(); ++l) {
            counts[l][0] += other.counts[l][0];
            counts[l][1] += other.counts[l][1];
        }
        return *this;
    }

  private:
    std::vector<std::array<std::uint64_t, 2>> counts;
};

} // namespace confsim

#endif // CONFSIM_HARNESS_LEVEL_SWEEP_HH
