#include "harness/config_json.hh"

#include <algorithm>

namespace confsim
{

namespace
{

/**
 * Field-wise reader over one JSON object: each field() call consumes a
 * key, and finish() rejects keys no field claimed. All setters are
 * no-ops once an error is recorded, so call sites stay linear.
 */
class Reader
{
  public:
    Reader(const JsonValue &v, std::string *error)
        : obj(v), err(error)
    {
        if (!obj.isObject())
            fail("expected a JSON object");
    }

    /** Unsigned field of any width (size_t, unsigned, Cycle, ...). */
    template <typename UInt>
    void
    uintField(const char *key, UInt &out)
    {
        const JsonValue *v = claim(key);
        if (!v)
            return;
        if (v->kind() != JsonValue::Kind::Uint
            && v->kind() != JsonValue::Kind::Int) {
            fail(std::string(key) + ": expected an unsigned integer");
            return;
        }
        if (v->kind() == JsonValue::Kind::Int && v->asInt() < 0) {
            fail(std::string(key) + ": must be non-negative");
            return;
        }
        out = static_cast<UInt>(v->asUint());
    }

    void
    boolField(const char *key, bool &out)
    {
        const JsonValue *v = claim(key);
        if (!v)
            return;
        if (!v->isBool()) {
            fail(std::string(key) + ": expected a boolean");
            return;
        }
        out = v->asBool();
    }

    void
    doubleField(const char *key, double &out)
    {
        const JsonValue *v = claim(key);
        if (!v)
            return;
        if (!v->isNumber()) {
            fail(std::string(key) + ": expected a number");
            return;
        }
        out = v->asDouble();
    }

    void
    stringField(const char *key, std::string &out)
    {
        const JsonValue *v = claim(key);
        if (!v)
            return;
        if (!v->isString()) {
            fail(std::string(key) + ": expected a string");
            return;
        }
        out = v->asString();
    }

    /** Nested sub-object parsed by the matching fromJson overload. */
    template <typename Config>
    void
    nestedField(const char *key, Config &out)
    {
        const JsonValue *v = claim(key);
        if (!v)
            return;
        std::string sub_err;
        if (!fromJson(*v, out, &sub_err))
            fail(std::string(key) + ": " + sub_err);
    }

    /** @return false (with the unknown-key error set) on leftovers. */
    bool
    finish()
    {
        if (!ok)
            return false;
        for (const auto &[key, value] : obj.members()) {
            (void)value;
            if (std::find(claimed.begin(), claimed.end(), key)
                == claimed.end()) {
                return fail("unknown key '" + key + "'");
            }
        }
        return ok;
    }

  private:
    const JsonValue *
    claim(const char *key)
    {
        if (!ok)
            return nullptr;
        claimed.push_back(key);
        return obj.isObject() ? obj.find(key) : nullptr;
    }

    bool
    fail(const std::string &msg)
    {
        if (ok && err)
            *err = msg;
        ok = false;
        return false;
    }

    const JsonValue &obj;
    std::string *err;
    std::vector<std::string> claimed;
    bool ok = true;
};

} // anonymous namespace

JsonValue
toJson(const BimodalConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["table_entries"] = JsonValue(std::uint64_t{cfg.tableEntries});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    return v;
}

bool
fromJson(const JsonValue &v, BimodalConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("table_entries", cfg.tableEntries);
    r.uintField("counter_bits", cfg.counterBits);
    return r.finish();
}

JsonValue
toJson(const GshareConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["table_entries"] = JsonValue(std::uint64_t{cfg.tableEntries});
    v["history_bits"] = JsonValue(std::uint64_t{cfg.historyBits});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    v["speculative_history"] = JsonValue(cfg.speculativeHistory);
    return v;
}

bool
fromJson(const JsonValue &v, GshareConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("table_entries", cfg.tableEntries);
    r.uintField("history_bits", cfg.historyBits);
    r.uintField("counter_bits", cfg.counterBits);
    r.boolField("speculative_history", cfg.speculativeHistory);
    return r.finish();
}

JsonValue
toJson(const GselectConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["addr_bits"] = JsonValue(std::uint64_t{cfg.addrBits});
    v["history_bits"] = JsonValue(std::uint64_t{cfg.historyBits});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    v["speculative_history"] = JsonValue(cfg.speculativeHistory);
    return v;
}

bool
fromJson(const JsonValue &v, GselectConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("addr_bits", cfg.addrBits);
    r.uintField("history_bits", cfg.historyBits);
    r.uintField("counter_bits", cfg.counterBits);
    r.boolField("speculative_history", cfg.speculativeHistory);
    return r.finish();
}

JsonValue
toJson(const McFarlingConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["gshare_entries"] = JsonValue(std::uint64_t{cfg.gshareEntries});
    v["bimodal_entries"] = JsonValue(std::uint64_t{cfg.bimodalEntries});
    v["meta_entries"] = JsonValue(std::uint64_t{cfg.metaEntries});
    v["history_bits"] = JsonValue(std::uint64_t{cfg.historyBits});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    return v;
}

bool
fromJson(const JsonValue &v, McFarlingConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("gshare_entries", cfg.gshareEntries);
    r.uintField("bimodal_entries", cfg.bimodalEntries);
    r.uintField("meta_entries", cfg.metaEntries);
    r.uintField("history_bits", cfg.historyBits);
    r.uintField("counter_bits", cfg.counterBits);
    return r.finish();
}

JsonValue
toJson(const SAgConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["bht_entries"] = JsonValue(std::uint64_t{cfg.bhtEntries});
    v["history_bits"] = JsonValue(std::uint64_t{cfg.historyBits});
    v["pht_entries"] = JsonValue(std::uint64_t{cfg.phtEntries});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    return v;
}

bool
fromJson(const JsonValue &v, SAgConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("bht_entries", cfg.bhtEntries);
    r.uintField("history_bits", cfg.historyBits);
    r.uintField("pht_entries", cfg.phtEntries);
    r.uintField("counter_bits", cfg.counterBits);
    return r.finish();
}

JsonValue
toJson(const PAsConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["history_entries"] = JsonValue(std::uint64_t{cfg.historyEntries});
    v["ways"] = JsonValue(std::uint64_t{cfg.ways});
    v["history_bits"] = JsonValue(std::uint64_t{cfg.historyBits});
    v["pht_entries"] = JsonValue(std::uint64_t{cfg.phtEntries});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    return v;
}

bool
fromJson(const JsonValue &v, PAsConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("history_entries", cfg.historyEntries);
    r.uintField("ways", cfg.ways);
    r.uintField("history_bits", cfg.historyBits);
    r.uintField("pht_entries", cfg.phtEntries);
    r.uintField("counter_bits", cfg.counterBits);
    return r.finish();
}

JsonValue
toJson(const BtbConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["entries"] = JsonValue(std::uint64_t{cfg.entries});
    v["ways"] = JsonValue(std::uint64_t{cfg.ways});
    return v;
}

bool
fromJson(const JsonValue &v, BtbConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("entries", cfg.entries);
    r.uintField("ways", cfg.ways);
    return r.finish();
}

JsonValue
toJson(const CacheConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["size_bytes"] = JsonValue(std::uint64_t{cfg.sizeBytes});
    v["line_bytes"] = JsonValue(std::uint64_t{cfg.lineBytes});
    v["associativity"] = JsonValue(std::uint64_t{cfg.associativity});
    v["hit_latency"] = JsonValue(std::uint64_t{cfg.hitLatency});
    v["miss_latency"] = JsonValue(std::uint64_t{cfg.missLatency});
    return v;
}

bool
fromJson(const JsonValue &v, CacheConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("size_bytes", cfg.sizeBytes);
    r.uintField("line_bytes", cfg.lineBytes);
    r.uintField("associativity", cfg.associativity);
    r.uintField("hit_latency", cfg.hitLatency);
    r.uintField("miss_latency", cfg.missLatency);
    return r.finish();
}

JsonValue
toJson(const PipelineConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["fetch_width"] = JsonValue(std::uint64_t{cfg.fetchWidth});
    v["issue_width"] = JsonValue(std::uint64_t{cfg.issueWidth});
    v["frontend_depth"] = JsonValue(std::uint64_t{cfg.frontendDepth});
    v["mispredict_penalty"] =
        JsonValue(std::uint64_t{cfg.mispredictPenalty});
    v["mult_latency"] = JsonValue(std::uint64_t{cfg.multLatency});
    v["use_caches"] = JsonValue(cfg.useCaches);
    v["icache"] = toJson(cfg.icache);
    v["dcache"] = toJson(cfg.dcache);
    v["blocking_loads"] = JsonValue(cfg.blockingLoads);
    v["use_btb"] = JsonValue(cfg.useBtb);
    v["btb"] = toJson(cfg.btb);
    v["btb_miss_penalty"] =
        JsonValue(std::uint64_t{cfg.btbMissPenalty});
    v["eager_rejoin_penalty"] =
        JsonValue(std::uint64_t{cfg.eagerRejoinPenalty});
    v["max_forks_in_flight"] =
        JsonValue(std::uint64_t{cfg.maxForksInFlight});
    return v;
}

bool
fromJson(const JsonValue &v, PipelineConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("fetch_width", cfg.fetchWidth);
    r.uintField("issue_width", cfg.issueWidth);
    r.uintField("frontend_depth", cfg.frontendDepth);
    r.uintField("mispredict_penalty", cfg.mispredictPenalty);
    r.uintField("mult_latency", cfg.multLatency);
    r.boolField("use_caches", cfg.useCaches);
    r.nestedField("icache", cfg.icache);
    r.nestedField("dcache", cfg.dcache);
    r.boolField("blocking_loads", cfg.blockingLoads);
    r.boolField("use_btb", cfg.useBtb);
    r.nestedField("btb", cfg.btb);
    r.uintField("btb_miss_penalty", cfg.btbMissPenalty);
    r.uintField("eager_rejoin_penalty", cfg.eagerRejoinPenalty);
    r.uintField("max_forks_in_flight", cfg.maxForksInFlight);
    return r.finish();
}

JsonValue
toJson(const JrsConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["table_entries"] = JsonValue(std::uint64_t{cfg.tableEntries});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    v["threshold"] = JsonValue(std::uint64_t{cfg.threshold});
    v["enhanced"] = JsonValue(cfg.enhanced);
    return v;
}

bool
fromJson(const JsonValue &v, JrsConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("table_entries", cfg.tableEntries);
    r.uintField("counter_bits", cfg.counterBits);
    r.uintField("threshold", cfg.threshold);
    r.boolField("enhanced", cfg.enhanced);
    return r.finish();
}

JsonValue
toJson(const CirConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["mode"] = JsonValue(std::string(cirModeName(cfg.mode)));
    v["cir_bits"] = JsonValue(std::uint64_t{cfg.cirBits});
    v["per_address"] = JsonValue(cfg.perAddress);
    v["cir_table_entries"] =
        JsonValue(std::uint64_t{cfg.cirTableEntries});
    v["ones_threshold"] = JsonValue(std::uint64_t{cfg.onesThreshold});
    v["table_entries"] = JsonValue(std::uint64_t{cfg.tableEntries});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    v["counter_threshold"] =
        JsonValue(std::uint64_t{cfg.counterThreshold});
    return v;
}

bool
fromJson(const JsonValue &v, CirConfig &cfg, std::string *error)
{
    Reader r(v, error);
    std::string mode = cirModeName(cfg.mode);
    r.stringField("mode", mode);
    r.uintField("cir_bits", cfg.cirBits);
    r.boolField("per_address", cfg.perAddress);
    r.uintField("cir_table_entries", cfg.cirTableEntries);
    r.uintField("ones_threshold", cfg.onesThreshold);
    r.uintField("table_entries", cfg.tableEntries);
    r.uintField("counter_bits", cfg.counterBits);
    r.uintField("counter_threshold", cfg.counterThreshold);
    if (!r.finish())
        return false;
    if (!cirModeFromName(mode, cfg.mode)) {
        if (error)
            *error = "mode: unknown CIR mode '" + mode + "'";
        return false;
    }
    return true;
}

JsonValue
toJson(const McfJrsConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["gshare_entries"] = JsonValue(std::uint64_t{cfg.gshareEntries});
    v["bimodal_entries"] = JsonValue(std::uint64_t{cfg.bimodalEntries});
    v["counter_bits"] = JsonValue(std::uint64_t{cfg.counterBits});
    v["threshold"] = JsonValue(std::uint64_t{cfg.threshold});
    v["combine"] =
        JsonValue(std::string(mcfJrsCombineName(cfg.combine)));
    return v;
}

bool
fromJson(const JsonValue &v, McfJrsConfig &cfg, std::string *error)
{
    Reader r(v, error);
    std::string combine = mcfJrsCombineName(cfg.combine);
    r.uintField("gshare_entries", cfg.gshareEntries);
    r.uintField("bimodal_entries", cfg.bimodalEntries);
    r.uintField("counter_bits", cfg.counterBits);
    r.uintField("threshold", cfg.threshold);
    r.stringField("combine", combine);
    if (!r.finish())
        return false;
    if (!mcfJrsCombineFromName(combine, cfg.combine)) {
        if (error)
            *error = "combine: unknown combine rule '" + combine + "'";
        return false;
    }
    return true;
}

JsonValue
toJson(const WorkloadConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["scale"] = JsonValue(std::uint64_t{cfg.scale});
    v["seed"] = JsonValue(std::uint64_t{cfg.seed});
    return v;
}

bool
fromJson(const JsonValue &v, WorkloadConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.uintField("scale", cfg.scale);
    r.uintField("seed", cfg.seed);
    return r.finish();
}

JsonValue
toJson(const ExperimentConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v["workload"] = toJson(cfg.workload);
    v["pipeline"] = toJson(cfg.pipeline);
    v["jrs"] = toJson(cfg.jrs);
    v["static_threshold"] = JsonValue(cfg.staticThreshold);
    v["distance_threshold"] =
        JsonValue(std::uint64_t{cfg.distanceThreshold});
    return v;
}

bool
fromJson(const JsonValue &v, ExperimentConfig &cfg, std::string *error)
{
    Reader r(v, error);
    r.nestedField("workload", cfg.workload);
    r.nestedField("pipeline", cfg.pipeline);
    r.nestedField("jrs", cfg.jrs);
    r.doubleField("static_threshold", cfg.staticThreshold);
    r.uintField("distance_threshold", cfg.distanceThreshold);
    return r.finish();
}

JsonValue
toJson(const PipelineStats &stats)
{
    JsonValue v = JsonValue::object();
    v["cycles"] = JsonValue(std::uint64_t{stats.cycles});
    v["committed_insts"] = JsonValue(stats.committedInsts);
    v["all_insts"] = JsonValue(stats.allInsts);
    v["committed_cond_branches"] =
        JsonValue(stats.committedCondBranches);
    v["all_cond_branches"] = JsonValue(stats.allCondBranches);
    v["committed_mispredicts"] = JsonValue(stats.committedMispredicts);
    v["all_mispredicts"] = JsonValue(stats.allMispredicts);
    v["recoveries"] = JsonValue(stats.recoveries);
    v["gated_cycles"] = JsonValue(stats.gatedCycles);
    v["forked_branches"] = JsonValue(stats.forkedBranches);
    v["fork_rescues"] = JsonValue(stats.forkRescues);
    v["forked_fetch_cycles"] = JsonValue(stats.forkedFetchCycles);
    v["icache_misses"] = JsonValue(stats.icacheMisses);
    v["icache_accesses"] = JsonValue(stats.icacheAccesses);
    v["dcache_misses"] = JsonValue(stats.dcacheMisses);
    v["dcache_accesses"] = JsonValue(stats.dcacheAccesses);
    v["btb_lookups"] = JsonValue(stats.btbLookups);
    v["btb_misses"] = JsonValue(stats.btbMisses);
    return v;
}

bool
fromJson(const JsonValue &v, PipelineStats &stats, std::string *error)
{
    Reader r(v, error);
    r.uintField("cycles", stats.cycles);
    r.uintField("committed_insts", stats.committedInsts);
    r.uintField("all_insts", stats.allInsts);
    r.uintField("committed_cond_branches", stats.committedCondBranches);
    r.uintField("all_cond_branches", stats.allCondBranches);
    r.uintField("committed_mispredicts", stats.committedMispredicts);
    r.uintField("all_mispredicts", stats.allMispredicts);
    r.uintField("recoveries", stats.recoveries);
    r.uintField("gated_cycles", stats.gatedCycles);
    r.uintField("forked_branches", stats.forkedBranches);
    r.uintField("fork_rescues", stats.forkRescues);
    r.uintField("forked_fetch_cycles", stats.forkedFetchCycles);
    r.uintField("icache_misses", stats.icacheMisses);
    r.uintField("icache_accesses", stats.icacheAccesses);
    r.uintField("dcache_misses", stats.dcacheMisses);
    r.uintField("dcache_accesses", stats.dcacheAccesses);
    r.uintField("btb_lookups", stats.btbLookups);
    r.uintField("btb_misses", stats.btbMisses);
    return r.finish();
}

} // namespace confsim
