/**
 * @file
 * The confsim serve subsystem: a crash-isolated, multi-process sweep
 * job service over a Unix-domain socket.
 *
 * Three layers:
 *
 *  - ServeCore: the I/O-free brain. Owns job admission (bounded
 *    queue, per-client quotas, priorities, dedupe on sweepGridKey),
 *    the newline-JSON protocol (one strict request object in, one
 *    response object out), per-job task scheduling bookkeeping, the
 *    shared per-grid sweep journals, and job persistence/recovery.
 *    Deterministic and unit-testable without sockets or processes.
 *
 *  - SweepService: the daemon. A poll(2) event loop over the listen
 *    socket, client connections, and worker-process stdout pipes;
 *    spawns `confsim worker` processes (fork/exec of this binary),
 *    feeds them task lines, journals their replies, SIGKILLs workers
 *    that exceed the shard deadline, reaps crashes and retries the
 *    lost shard with the parallel runner's backoff policy, and
 *    degrades the worker pool after crash streaks.
 *
 *  - runServeWorker / serveRequest: the worker-side stdin/stdout
 *    loop and the client-side one-request helper.
 *
 * A job's shards are journaled into the same
 * `<artifactDir>/sweep-<gridkey>.journal` file the CLI `--sweep`
 * path uses, with byte-identical payloads — so a daemon-computed
 * grid, a CLI-computed grid, and a daemon restarted mid-grid all
 * converge on the same journal bytes and the same final stats JSON.
 */

#ifndef CONFSIM_HARNESS_SWEEP_SERVICE_HH
#define CONFSIM_HARNESS_SWEEP_SERVICE_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/parallel_runner.hh"
#include "harness/sweep.hh"
#include "harness/sweep_journal.hh"

namespace confsim
{

/** Configuration of one serve daemon (and its ServeCore). */
struct ServeOptions
{
    /** Unix-domain socket path the daemon listens on. */
    std::string socketPath;
    /** Artifact/journal/job-state directory (required). Shared with
     *  worker processes and with CLI `--artifact-dir` runs. */
    std::string artifactDir;
    /** Target worker-process count (degraded under crash streaks,
     *  never below one). */
    unsigned workers = 2;
    /** Bounded admission: queued + running jobs beyond this are
     *  rejected with a reason (never queued silently, never hang). */
    std::size_t maxQueuedJobs = 16;
    /** Per-client quota on queued + running jobs. */
    std::size_t maxClientJobs = 8;
    /** Maximum request line length; longer requests are rejected and
     *  the connection dropped. */
    std::size_t maxRequestBytes = 1 << 20;
    /** Retry/backoff policy for crashed or transiently-failed
     *  shards (maxAttempts, backoffBase/Cap, jitterSeed). */
    RunnerPolicy policy;
    /** Per-shard watchdog: a worker holding one task longer than
     *  this is SIGKILLed and the job fails with a timeout (zero
     *  disables the watchdog). */
    std::chrono::milliseconds taskDeadline{0};
    /** Worker command override (tests); empty = this executable in
     *  `worker` mode sharing artifactDir. */
    std::vector<std::string> workerArgv;
};

/** Lifecycle of one submitted job. */
enum class JobState
{
    Queued,    ///< admitted, shards not all dispatched
    Running,   ///< at least one shard dispatched to a worker
    Done,      ///< all shards journaled, result file written
    Failed,    ///< a shard failed fatally (or retries exhausted)
    Cancelled, ///< cancelled by a client
};

/** Stable lowercase name of @p state (protocol spelling). */
const char *jobStateName(JobState state);

/**
 * Admission, protocol, scheduling bookkeeping, and persistence —
 * everything the daemon does except actual I/O. Single-threaded by
 * design (the daemon's poll loop is the only caller).
 */
class ServeCore
{
  public:
    /**
     * Creates the jobs directory and recovers persisted jobs:
     * terminal jobs are reloaded for status/dedupe, non-terminal
     * jobs are re-admitted with their journal-recovered shards
     * marked done (finalizing immediately when nothing is pending) —
     * the restart-resume path.
     * @throws ConfsimError when artifactDir is unusable.
     */
    explicit ServeCore(const ServeOptions &options);

    const ServeOptions &options() const { return opts; }

    // --- protocol ----------------------------------------------------

    /**
     * Handle one request line (without trailing newline); returns
     * the response object. Malformed requests get a structured
     * error response and change no state.
     */
    JsonValue handleRequest(const std::string &line);

    /** A client asked the daemon to exit. */
    bool shutdownRequested() const { return shutdown; }

    /** Error response body (also used for transport-level errors
     *  like an over-long request line). */
    static JsonValue errorResponse(const std::string &code,
                                   const std::string &message);

    // --- scheduling (driven by the daemon's loop) --------------------

    /** One dispatched shard: a job and a plan task index. */
    struct TaskRef
    {
        std::string job;
        std::uint64_t task = 0;
    };

    /** Pop the next shard to dispatch: jobs ordered by (priority
     *  desc, submit seq asc), tasks in index order. */
    std::optional<TaskRef> nextReadyTask();

    /** Any admitted job still has undispatched shards. */
    bool hasPendingWork() const;

    /** The job's grid (nullptr when unknown); valid until the next
     *  handleRequest call. */
    const SweepGrid *jobGrid(const std::string &job) const;

    /** The job still wants results (not cancelled/failed). */
    bool jobActive(const std::string &job) const;

    /**
     * A worker returned @p payload for @p ref: validated, journaled,
     * and counted; finalizes the job (assembles the result document
     * from the journal, byte-identical to `confsim --sweep`) when it
     * was the last shard. An invalid payload fails the job.
     */
    void taskCompleted(const TaskRef &ref, const JsonValue &payload);

    /**
     * A dispatched shard was lost (worker crash/kill) or failed.
     * @param transient worker crashes and worker-reported transient
     *        errors are retried; fatal codes and watchdog timeouts
     *        are not.
     * @return the backoff delay to wait before requeueTask() when
     *         the shard will be retried; nullopt when the job just
     *         failed (or no longer wants results).
     */
    std::optional<std::chrono::milliseconds>
    taskFailed(const TaskRef &ref, const std::string &error,
               bool transient);

    /** Return a shard to the pending set after its backoff. */
    void requeueTask(const TaskRef &ref);

    // --- degradation -------------------------------------------------

    /** A worker process died without replying (crash streak +1). */
    void workerCrashed();

    /** A worker completed a shard (resets the crash streak). */
    void workerSucceeded();

    /** Worker-pool size after degradation: opts.workers minus the
     *  crash streak, never below one. */
    unsigned targetWorkers() const;

    /** Live worker count, for status reporting. */
    void noteAliveWorkers(unsigned n) { aliveWorkers = n; }

  private:
    struct Job
    {
        std::string id;
        std::string client;
        std::int64_t priority = 0;
        std::uint64_t seq = 0;
        JobState state = JobState::Queued;
        std::string error;
        SweepGrid grid;
        std::uint64_t gridKey = 0;
        SweepTaskPlan plan;
        std::set<std::uint64_t> pending; ///< not yet dispatched
        std::set<std::uint64_t> done;    ///< journaled shards
        std::map<std::uint64_t, unsigned> attempts;
        std::size_t inFlight = 0;
        std::unique_ptr<SweepJournal> journal;

        bool terminal() const
        {
            return state == JobState::Done || state == JobState::Failed
                   || state == JobState::Cancelled;
        }
    };

    JsonValue handleSubmit(const JsonValue &req);
    JsonValue handleStatus(const JsonValue &req);
    JsonValue handleResult(const JsonValue &req);
    JsonValue handleCancel(const JsonValue &req);
    JsonValue jobStatusJson(const Job &job) const;

    /** Open the job's journal and mark journal-recovered shards
     *  done; every other task becomes pending. */
    void attachJournal(Job &job);

    /** All shards journaled: assemble + write the result file,
     *  transition to Done (Failed on assembly error), persist. */
    void finalize(Job &job);

    void failJob(Job &job, const std::string &error);
    void persist(const Job &job) const;
    void recoverJobs();

    std::string jobFilePath(const std::string &id) const;
    std::string resultFilePath(const std::string &id) const;
    std::string journalPathFor(std::uint64_t gridKey) const;

    ServeOptions opts;
    std::string jobsDir;
    std::map<std::string, Job> jobs;
    std::uint64_t nextSeq = 1;
    unsigned crashStreak = 0;
    unsigned aliveWorkers = 0;
    bool shutdown = false;
};

/**
 * The daemon: binds the socket, runs the poll loop until a client
 * shutdown request or SIGTERM/SIGINT, then kills and reaps workers.
 * @return process exit code.
 */
int runSweepService(const ServeOptions &options);

/**
 * Worker-side loop: read task lines ({"task":N,"grid":{...}}) from
 * stdin, evaluate via sweepTaskPayloadJson(), reply one result line
 * per task on stdout; exits on stdin EOF. The caller must have armed
 * the shared artifact store first.
 * @return process exit code.
 */
int runServeWorker();

/**
 * Client-side helper: one request, one response over @p socketPath.
 * @throws ConfsimError{Io} on connect/transport failure or a
 *         half-delivered response (dropped connection).
 */
JsonValue serveRequest(const std::string &socketPath,
                       const JsonValue &request);

} // namespace confsim

#endif // CONFSIM_HARNESS_SWEEP_SERVICE_HH
