#include "harness/trace_run.hh"

#include <algorithm>

#include "uarch/machine.hh"

namespace confsim
{

TraceRunStats
runTrace(const Program &prog, BranchPredictor &pred,
         const std::vector<ConfidenceEstimator *> &estimators,
         const std::vector<const LevelSource *> &level_sources,
         BranchEventSink *sink, std::uint64_t max_steps)
{
    TraceRunStats stats;
    Machine machine(prog);
    std::uint64_t dist = 0; // branches since last misprediction
    SeqNum seq = 0;

    while (!machine.halted() && stats.instructions < max_steps) {
        const StepInfo si = machine.step();
        if (si.halted)
            break;
        ++stats.instructions;
        if (!si.isCond)
            continue;

        ++stats.condBranches;
        const BpInfo info = pred.predict(si.addr);
        const bool correct = info.predTaken == si.taken;

        BranchEvent ev;
        ev.seq = seq++;
        ev.pc = si.addr;
        ev.info = info;
        ev.taken = si.taken;
        ev.correct = correct;
        ev.willCommit = true;
        ev.preciseDistAll = dist + 1;
        ev.preciseDistCommitted = dist + 1;
        ev.perceivedDistAll = dist + 1;
        ev.perceivedDistCommitted = dist + 1;

        for (unsigned i = 0;
             i < estimators.size() && i < MAX_ESTIMATORS; ++i) {
            if (estimators[i]->estimate(si.addr, info))
                ev.estimateBits |= (1u << i);
        }
        for (unsigned j = 0;
             j < level_sources.size() && j < MAX_LEVEL_READERS; ++j) {
            ev.levels[j] = static_cast<std::uint16_t>(std::min(
                    level_sources[j]->readLevel(si.addr, info),
                    65535u));
        }

        if (correct) {
            ++dist;
        } else {
            ++stats.mispredicts;
            dist = 0;
        }

        pred.update(si.addr, si.taken, info);
        for (auto *estimator : estimators)
            estimator->update(si.addr, si.taken, correct, info);

        if (sink)
            sink->onEvent(ev);
    }
    return stats;
}

ProfileTable
buildProfile(const Program &prog, BranchPredictor &pred,
             std::uint64_t max_steps)
{
    ProfileTable profile;
    CallbackSink recorder([&profile](const BranchEvent &ev) {
        profile.record(ev.pc, ev.correct);
    });
    runTrace(prog, pred, {}, {}, &recorder, max_steps);
    return profile;
}

} // namespace confsim
