#include "harness/sampled_replay.hh"

#include <algorithm>

namespace confsim
{

bool
runOpsStreamed(BatchReplayer &replayer, OpSource &source,
               std::uint64_t opBegin, std::uint64_t opEnd, bool warm,
               std::string *error)
{
    opEnd = std::min(opEnd, source.totalOps());
    std::uint64_t g = opBegin;
    while (g < opEnd) {
        std::uint64_t local = 0;
        std::uint64_t covered = 0;
        auto piece = source.cover(g, opEnd, local, covered);
        if (!piece || covered <= g) {
            if (error != nullptr)
                *error = "op source failed to cover ops "
                         + std::to_string(g) + ".."
                         + std::to_string(opEnd);
            return false;
        }
        if (piece.get() != &replayer.trace())
            replayer.rebind(piece);
        const std::uint64_t localEnd = local + (covered - g);
        const bool ok =
            warm ? replayer.warmOps(local, localEnd, error)
                 : replayer.runOps(local, localEnd, error);
        if (!ok)
            return false;
        g = covered;
    }
    return true;
}

bool
runFullReplayStreamed(BatchReplayer &replayer, OpSource &source,
                      std::string *error)
{
    replayer.resetLanes();
    return runOpsStreamed(replayer, source, 0, source.totalOps(),
                          false, error);
}

bool
runSampledReplay(BatchReplayer &replayer, OpSource &source,
                 const SamplingPlan &plan,
                 std::vector<SampledLaneStats> &out, std::string *error)
{
    const std::uint64_t total = source.totalOps();
    const std::size_t nlanes = replayer.laneCount();
    std::vector<WindowStatAccumulator> acc(nlanes);
    std::vector<QuadrantCounts> before(nlanes);
    std::vector<SampledLaneStats> stats(nlanes);

    const unsigned maxPasses = std::max(plan.maxPasses, 1u);
    for (unsigned pass = 1;; ++pass) {
        // Pass p halves the previous pass's stride; layout clamps the
        // result up to windowOps (full coverage) as the floor.
        const std::uint64_t stride =
            pass == 1 ? 0
                      : std::max<std::uint64_t>(
                                plan.strideOps >> (pass - 1), 1);
        const std::vector<SampleWindow> windows =
            layoutSampleWindows(total, plan, stride);

        replayer.resetLanes();
        for (WindowStatAccumulator &a : acc)
            a.reset();
        std::uint64_t opsDetailed = 0;
        std::uint64_t opsWarmup = 0;
        bool fullCoverage = true;
        std::uint64_t covered = 0;
        for (const SampleWindow &w : windows) {
            if (w.warmBegin < w.begin) {
                if (!runOpsStreamed(replayer, source, w.warmBegin,
                                    w.begin, true, error))
                    return false;
                opsWarmup += w.begin - w.warmBegin;
            }
            for (std::size_t l = 0; l < nlanes; ++l)
                before[l] = replayer.committed(
                        static_cast<unsigned>(l));
            if (!runOpsStreamed(replayer, source, w.begin, w.end,
                                false, error))
                return false;
            opsDetailed += w.end - w.begin;
            for (std::size_t l = 0; l < nlanes; ++l) {
                QuadrantCounts delta = replayer.committed(
                        static_cast<unsigned>(l));
                delta.chc -= before[l].chc;
                delta.ihc -= before[l].ihc;
                delta.clc -= before[l].clc;
                delta.ilc -= before[l].ilc;
                acc[l].addWindow(delta);
            }
            fullCoverage = fullCoverage && w.begin == covered;
            covered = w.end;
        }
        fullCoverage = fullCoverage && covered == total;

        const double fraction =
            total == 0 ? 1.0
                       : static_cast<double>(opsDetailed)
                             / static_cast<double>(total);
        double worst = -1.0;
        for (std::size_t l = 0; l < nlanes; ++l) {
            stats[l] = acc[l].finalize(fullCoverage ? 1.0 : fraction);
            stats[l].windows = windows.size();
            stats[l].passes = pass;
            stats[l].opsDetailed = opsDetailed;
            stats[l].opsWarmup = opsWarmup;
            stats[l].opsTotal = total;
            const std::uint64_t touched = opsDetailed + opsWarmup;
            stats[l].opsSkipped = total > touched ? total - touched : 0;
            worst = std::max(worst, stats[l].maxHalfWidth());
        }
        if (plan.targetHalfWidth <= 0.0 || fullCoverage
            || pass >= maxPasses
            || (worst >= 0.0 && worst <= plan.targetHalfWidth))
            break;
    }

    out.insert(out.end(), stats.begin(), stats.end());
    return true;
}

} // namespace confsim
